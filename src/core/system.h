/**
 * @file
 * GpuUvmSystem: the library's main entry point. Wires the event queue,
 * memory system, UVM runtime, GPU and (optionally) the ETC framework
 * together, runs a workload through its kernel sequence, and reports a
 * RunResult with every statistic the paper's figures need.
 */

#ifndef BAUVM_CORE_SYSTEM_H_
#define BAUVM_CORE_SYSTEM_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/check/model_auditor.h"
#include "src/check/sim_hooks.h"
#include "src/core/engine.h"
#include "src/core/tenant.h"
#include "src/etc/etc_framework.h"
#include "src/gpu/gpu.h"
#include "src/mem/memory_hierarchy.h"
#include "src/sim/config.h"
#include "src/sim/event_queue.h"
#include "src/trace/trace_sink.h"
#include "src/uvm/gpu_memory_manager.h"
#include "src/uvm/uvm_runtime.h"
#include "src/workloads/workload.h"

namespace bauvm
{

/** Everything a figure might want from one simulation run. */
struct RunResult {
    std::string workload;
    std::uint64_t seed = 0;            //!< config.seed used for the run
    Cycle cycles = 0;                  //!< total execution time
    std::uint64_t kernels = 0;
    std::uint64_t instructions = 0;
    std::uint64_t footprint_bytes = 0;
    std::uint64_t capacity_pages = 0;

    // UVM batch statistics (Figs 3, 12-14, 16).
    std::uint64_t batches = 0;
    double avg_batch_pages = 0.0;      //!< demand faults per batch
    double avg_batch_time = 0.0;       //!< cycles
    double avg_handling_time = 0.0;    //!< cycles
    std::uint64_t demand_pages = 0;
    std::uint64_t prefetched_pages = 0;
    std::vector<BatchRecord> batch_records;

    // Eviction statistics (Figs 8, 15, 17).
    std::uint64_t migrations = 0;
    std::uint64_t evictions = 0;
    std::uint64_t premature_evictions = 0;
    double premature_rate = 0.0;

    // Thread oversubscription statistics (Figs 5, 12-13, section 6.5).
    std::uint64_t context_switches = 0;
    std::uint64_t context_switch_cycles = 0;

    // Interconnect utilization.
    std::uint64_t pcie_h2d_bytes = 0;
    std::uint64_t pcie_d2h_bytes = 0;

    // Memory data path statistics (schema bauvm.sweep/1.1): these make
    // translation/fault pressure visible in sweep JSON, so a memory-path
    // regression shows up in experiment exports and not only in the
    // microbenches. All three are deterministic.
    std::uint64_t translations = 0;    //!< line-granular accesses translated
    double tlb_hit_rate = 0.0;         //!< served without a page walk
    double faults_per_kcycle = 0.0;    //!< translation faults per 1k cycles

    // Simulator self-measurement. sim_events is deterministic (kernel
    // events dispatched for this run); host_wall_s / events_per_sec
    // are host-side wall clock and MUST stay out of determinism
    // comparisons and printed figure tables. event_order_digest folds
    // every dispatched event's (when, seq) pair into one value, so two
    // runs agree on it iff they executed the same events in the same
    // order — the byte-identity oracle the --cell-threads differential
    // tests compare. Deterministic, but kept out of sweep JSON.
    std::uint64_t event_order_digest = 0;
    std::uint64_t sim_events = 0;
    double host_wall_s = 0.0;
    double events_per_sec = 0.0;

    // Multi-tenant runs only (schema bauvm.sweep/1.3): one entry per
    // admitted tenant, in TenantId order. Empty for single-tenant runs.
    std::vector<TenantResult> tenants;
};

/** A fully wired simulated system executing one workload. */
class GpuUvmSystem
{
  public:
    explicit GpuUvmSystem(const SimConfig &config);

    /**
     * Builds @p workload at @p scale, sizes device memory from its
     * footprint and the configured memory ratio, runs every kernel the
     * workload produces, and returns the aggregated statistics.
     *
     * The workload's functional results stay in its device arrays, so
     * callers can validate() afterwards.
     */
    RunResult run(Workload &workload, WorkloadScale scale);

    /**
     * Multi-tenant entry point: admits every spec as a tenant session —
     * its own VA slice (aligned so no prefetch tree or eviction chunk
     * spans tenants), per-tenant seed, an SM partition, and a frame
     * budget arbitrated by config.mt.policy — then interleaves all
     * tenants' fault streams into shared UVM batches on one event
     * queue. Deterministic: the same config and specs reproduce the
     * run bit-for-bit.
     *
     * Per-tenant statistics land in RunResult::tenants (slowdown is
     * left 0; callers with a solo reference fill it in). Not
     * compatible with ETC or preload mode. Each tenant's functional
     * results stay in its workload (tenantWorkloads()) for validation.
     */
    RunResult run(const std::vector<TenantSpec> &specs);

    /** The workloads admitted by the multi-tenant run(), in TenantId
     *  order (empty before it runs). */
    const std::vector<std::unique_ptr<Workload>> &tenantWorkloads() const
    {
        return tenant_workloads_;
    }

    // Component access for tests and custom experiments. Hierarchy and
    // runtime come back as base references: the system instantiated
    // the observer-specialized variants behind the engine seam, and
    // everything a caller reads or tweaks after construction lives on
    // the mode-independent bases.
    EventQueue &events() { return events_; }
    GpuMemoryManager &memoryManager() { return manager_; }
    MemoryHierarchyBase &hierarchy() { return engine_->hierarchy(); }
    UvmRuntimeBase &runtime() { return engine_->runtime(); }
    Gpu &gpu() { return engine_->gpu(); }
    const SimConfig &config() const { return config_; }

    /** The run's trace sink, or nullptr when config.trace.enabled is
     *  false. Owned by the system; valid for its whole lifetime. */
    TraceSink *trace() { return trace_.get(); }

    /** The run's model auditor, or nullptr when config.check.enabled
     *  is false. Owned by the system; valid for its whole lifetime. */
    ModelAuditor *audit() { return audit_.get(); }

  private:
    SimConfig config_;
    EventQueue events_;
    // Observers are built first so hooks_ can be handed to every
    // component at construction (components keep it by value). The
    // engine then instantiates the hierarchy/runtime/GPU bundle
    // specialized for exactly the observers that exist — the one place
    // an ObserverMode is chosen at runtime.
    std::unique_ptr<TraceSink> trace_;
    std::unique_ptr<ModelAuditor> audit_;
    SimHooks hooks_;
    GpuMemoryManager manager_;
    std::unique_ptr<EngineBase> engine_;
    std::unique_ptr<EtcFramework> etc_;

    // Multi-tenant state (populated by run(specs) only). Tenant GPUs
    // and hierarchies live inside the engine (they must share its
    // observer mode); the directory maps every page to its owner.
    std::unique_ptr<TenantDirectory> tenant_dir_;
    std::vector<std::unique_ptr<Workload>> tenant_workloads_;
};

/**
 * Convenience wrapper: build the named workload, run it under
 * @p config, optionally validate, and return the result.
 */
RunResult runWorkload(const SimConfig &config, const std::string &name,
                      WorkloadScale scale, bool validate = false);

/**
 * Convenience wrapper around GpuUvmSystem::run(specs): admit every
 * spec as a tenant, run the mix to completion, optionally validate
 * every tenant's functional result.
 */
RunResult runTenantMix(const SimConfig &config,
                       const std::vector<TenantSpec> &specs,
                       bool validate = false);

} // namespace bauvm

#endif // BAUVM_CORE_SYSTEM_H_
