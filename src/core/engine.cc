#include "src/core/engine.h"

namespace bauvm
{

template <ObserverMode M>
EngineT<M>::EngineT(const SimConfig &config, EventQueue &events,
                    GpuMemoryManager &manager, const SimHooks &hooks)
    : events_(events), manager_(manager), hooks_(hooks),
      hierarchy_(config.mem, config.gpu.num_sms, config.uvm.page_bytes,
                 manager.pageTable(), hooks),
      runtime_(config.uvm, events, manager, hierarchy_, hooks)
{
    gpu_ = std::make_unique<Gpu>(config, events, hierarchy_, runtime_,
                                 hooks);
}

template <ObserverMode M>
Gpu &
EngineT<M>::addTenant(const SimConfig &tenant_config,
                      std::uint64_t page_bytes,
                      std::uint32_t track_base)
{
    tenant_hierarchies_.push_back(
        std::make_unique<MemoryHierarchyT<M>>(
            tenant_config.mem, tenant_config.gpu.num_sms, page_bytes,
            manager_.pageTable(), hooks_));
    tenant_gpus_.push_back(std::make_unique<Gpu>(
        tenant_config, events_, *tenant_hierarchies_.back(), runtime_,
        hooks_, track_base));
    return *tenant_gpus_.back();
}

template <ObserverMode M>
void
EngineT<M>::clearTenants()
{
    tenant_gpus_.clear();
    tenant_hierarchies_.clear();
}

template <ObserverMode M>
void
EngineT<M>::wireTenantRouting()
{
    std::vector<MemoryHierarchyBase *> routes;
    routes.reserve(tenant_hierarchies_.size());
    for (const auto &h : tenant_hierarchies_)
        routes.push_back(h.get());
    runtime_.setTenantHierarchies(std::move(routes));
}

template class EngineT<ObserverMode::None>;
template class EngineT<ObserverMode::Trace>;
template class EngineT<ObserverMode::Audit>;
template class EngineT<ObserverMode::Both>;

std::unique_ptr<EngineBase>
makeEngine(const SimConfig &config, EventQueue &events,
           GpuMemoryManager &manager, const SimHooks &hooks)
{
    switch (observerModeFor(hooks.trace != nullptr,
                            hooks.audit != nullptr)) {
    case ObserverMode::Trace:
        return std::make_unique<EngineT<ObserverMode::Trace>>(
            config, events, manager, hooks);
    case ObserverMode::Audit:
        return std::make_unique<EngineT<ObserverMode::Audit>>(
            config, events, manager, hooks);
    case ObserverMode::Both:
        return std::make_unique<EngineT<ObserverMode::Both>>(
            config, events, manager, hooks);
    case ObserverMode::None:
    case ObserverMode::Dynamic:
        break;
    }
    return std::make_unique<EngineT<ObserverMode::None>>(
        config, events, manager, hooks);
}

} // namespace bauvm
