#include "src/core/system.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "src/sim/log.h"
#include "src/workloads/workload_registry.h"

namespace bauvm
{

GpuUvmSystem::GpuUvmSystem(const SimConfig &config)
    : config_(config),
      trace_(config.trace.enabled
                 ? std::make_unique<TraceSink>(config.trace.buffer_records)
                 : nullptr),
      audit_(config.check.enabled
                 ? std::make_unique<ModelAuditor>(config.uvm, &events_,
                                                  trace_.get())
                 : nullptr),
      hooks_{trace_.get(), audit_.get(), &events_},
      manager_(config.uvm, /*capacity: set after build*/ 0, hooks_),
      hierarchy_(config.mem, config.gpu.num_sms, config.uvm.page_bytes,
                 manager_.pageTable(), hooks_),
      runtime_(config.uvm, events_, manager_, hierarchy_, hooks_)
{
    gpu_ = std::make_unique<Gpu>(config_, events_, hierarchy_, runtime_,
                                 hooks_);
    if (config_.etc.enabled) {
        etc_ = std::make_unique<EtcFramework>(
            config_.etc, EtcAppClass::Irregular, manager_, hierarchy_,
            runtime_, gpu_->dispatcher(), config_.gpu.num_sms);
        runtime_.setBatchEndCallback([this](const BatchRecord &) {
            etc_->onBatchEnd(events_.now());
        });
    }
}

RunResult
GpuUvmSystem::run(Workload &workload, WorkloadScale scale)
{
    workload.build(scale, config_.seed);
    if (audit_)
        audit_->setContext(workload.name());

    for (const auto &range : workload.allocator().ranges())
        runtime_.registerAllocation(range.base, range.bytes);

    const std::uint64_t footprint_pages =
        workload.allocator().footprintPages();
    if (config_.memory_ratio > 0.0) {
        auto capacity = static_cast<std::uint64_t>(
            std::ceil(config_.memory_ratio *
                      static_cast<double>(footprint_pages)));
        capacity = std::max<std::uint64_t>(capacity, 4);
        manager_.setCapacityPages(capacity);
    } // else: unlimited (capacity 0)

    if (etc_)
        etc_->applyStatic();

    if (config_.uvm.preload) {
        // Traditional GPU: cudaMemcpy'd everything up front.
        if (config_.memory_ratio > 0.0 && config_.memory_ratio < 1.0)
            fatal("preload requires memory_ratio >= 1 or unlimited");
        for (const auto &range : workload.allocator().ranges()) {
            const PageNum first = range.base / config_.uvm.page_bytes;
            const PageNum last = (range.base + range.bytes - 1) /
                                 config_.uvm.page_bytes;
            for (PageNum vpn = first; vpn <= last; ++vpn) {
                if (manager_.isResident(vpn))
                    continue;
                if (audit_)
                    audit_->onPreload(vpn);
                manager_.reserveFrame();
                manager_.commitPage(vpn, events_.now());
            }
        }
    }

    RunResult r;
    r.workload = workload.name();
    r.seed = config_.seed;
    r.footprint_bytes = workload.footprintBytes();
    r.capacity_pages = manager_.capacityPages();

    const Cycle begin = events_.now();
    const std::uint64_t events_begin = events_.executedEvents();
    const auto wall_begin = std::chrono::steady_clock::now();
    KernelInfo kernel;
    while (workload.nextKernel(&kernel)) {
        gpu_->runKernel(kernel);
        ++r.kernels;
    }
    r.cycles = events_.now() - begin;
    r.sim_events = events_.executedEvents() - events_begin;
    r.host_wall_s = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - wall_begin)
                        .count();
    r.events_per_sec = r.host_wall_s > 0.0
                           ? static_cast<double>(r.sim_events) /
                                 r.host_wall_s
                           : 0.0;

    r.instructions = gpu_->totalIssuedInstructions();
    r.batches = runtime_.batches();
    r.avg_batch_pages = runtime_.averageBatchPages();
    r.avg_batch_time = runtime_.averageProcessingTime();
    r.avg_handling_time = runtime_.averageHandlingTime();
    r.demand_pages = runtime_.demandFaultPages();
    r.prefetched_pages = runtime_.prefetchedPages();
    r.batch_records = runtime_.batchRecords();
    r.migrations = manager_.migrations();
    r.evictions = manager_.evictions();
    r.premature_evictions = manager_.prematureEvictions();
    r.premature_rate = manager_.prematureEvictionRate();
    r.context_switches = gpu_->vtc().contextSwitches();
    r.context_switch_cycles = gpu_->vtc().switchCycles();
    r.pcie_h2d_bytes = runtime_.pcie().bytesMoved(PcieDir::HostToDevice);
    r.pcie_d2h_bytes = runtime_.pcie().bytesMoved(PcieDir::DeviceToHost);
    r.translations = hierarchy_.accesses();
    r.tlb_hit_rate = hierarchy_.tlbHitRate();
    r.faults_per_kcycle =
        r.cycles ? 1000.0 * static_cast<double>(hierarchy_.faults()) /
                       static_cast<double>(r.cycles)
                 : 0.0;
    if (audit_) {
        audit_->finalize(r, manager_.committedFrames(),
                         manager_.pageTable().residentPages());
    }
    return r;
}

RunResult
runWorkload(const SimConfig &config, const std::string &name,
            WorkloadScale scale, bool validate)
{
    auto workload = WorkloadRegistry::instance().create(name);
    GpuUvmSystem system(config);
    RunResult result = system.run(*workload, scale);
    if (validate)
        workload->validate();
    return result;
}

} // namespace bauvm
