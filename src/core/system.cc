#include "src/core/system.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "src/sim/log.h"
#include "src/workloads/workload_registry.h"

namespace bauvm
{

GpuUvmSystem::GpuUvmSystem(const SimConfig &config)
    : config_(config),
      trace_(config.trace.enabled
                 ? std::make_unique<TraceSink>(config.trace.buffer_records)
                 : nullptr),
      audit_(config.check.enabled
                 ? std::make_unique<ModelAuditor>(config.uvm, &events_,
                                                  trace_.get())
                 : nullptr),
      hooks_{trace_.get(), audit_.get(), &events_},
      manager_(config.uvm, /*capacity: set after build*/ 0, hooks_),
      engine_(makeEngine(config_, events_, manager_, hooks_))
{
    if (config_.etc.enabled) {
        etc_ = std::make_unique<EtcFramework>(
            config_.etc, EtcAppClass::Irregular, manager_,
            engine_->hierarchy(), engine_->runtime(),
            engine_->gpu().dispatcher(), config_.gpu.num_sms);
        engine_->runtime().setBatchEndCallback(
            [this](const BatchRecord &) {
                etc_->onBatchEnd(events_.now());
            });
    }
}

RunResult
GpuUvmSystem::run(Workload &workload, WorkloadScale scale)
{
    UvmRuntimeBase &runtime = engine_->runtime();
    MemoryHierarchyBase &hierarchy = engine_->hierarchy();
    Gpu &gpu = engine_->gpu();

    workload.build(scale, config_.seed);
    if (audit_)
        audit_->setContext(workload.name());

    for (const auto &range : workload.allocator().ranges())
        runtime.registerAllocation(range.base, range.bytes);

    const std::uint64_t footprint_pages =
        workload.allocator().footprintPages();
    if (config_.memory_ratio > 0.0) {
        auto capacity = static_cast<std::uint64_t>(
            std::ceil(config_.memory_ratio *
                      static_cast<double>(footprint_pages)));
        capacity = std::max<std::uint64_t>(capacity, 4);
        manager_.setCapacityPages(capacity);
    } // else: unlimited (capacity 0)

    if (etc_)
        etc_->applyStatic();

    if (config_.uvm.preload) {
        // Traditional GPU: cudaMemcpy'd everything up front.
        if (config_.memory_ratio > 0.0 && config_.memory_ratio < 1.0)
            fatal("preload requires memory_ratio >= 1 or unlimited");
        for (const auto &range : workload.allocator().ranges()) {
            const PageNum first = range.base / config_.uvm.page_bytes;
            const PageNum last = (range.base + range.bytes - 1) /
                                 config_.uvm.page_bytes;
            for (PageNum vpn = first; vpn <= last; ++vpn) {
                if (manager_.isResident(vpn))
                    continue;
                if (audit_)
                    audit_->onPreload(vpn);
                manager_.reserveFrame();
                manager_.commitPage(vpn, events_.now());
            }
        }
    }

    RunResult r;
    r.workload = workload.name();
    r.seed = config_.seed;
    r.footprint_bytes = workload.footprintBytes();
    r.capacity_pages = manager_.capacityPages();

    const Cycle begin = events_.now();
    const std::uint64_t events_begin = events_.executedEvents();
    const auto wall_begin = std::chrono::steady_clock::now();
    KernelInfo kernel;
    while (workload.nextKernel(&kernel)) {
        gpu.runKernel(kernel);
        ++r.kernels;
    }
    r.cycles = events_.now() - begin;
    r.sim_events = events_.executedEvents() - events_begin;
    r.event_order_digest = events_.orderDigest();
    r.host_wall_s = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - wall_begin)
                        .count();
    r.events_per_sec = r.host_wall_s > 0.0
                           ? static_cast<double>(r.sim_events) /
                                 r.host_wall_s
                           : 0.0;

    r.instructions = gpu.totalIssuedInstructions();
    r.batches = runtime.batches();
    r.avg_batch_pages = runtime.averageBatchPages();
    r.avg_batch_time = runtime.averageProcessingTime();
    r.avg_handling_time = runtime.averageHandlingTime();
    r.demand_pages = runtime.demandFaultPages();
    r.prefetched_pages = runtime.prefetchedPages();
    r.batch_records = runtime.batchRecords();
    r.migrations = manager_.migrations();
    r.evictions = manager_.evictions();
    r.premature_evictions = manager_.prematureEvictions();
    r.premature_rate = manager_.prematureEvictionRate();
    r.context_switches = gpu.vtc().contextSwitches();
    r.context_switch_cycles = gpu.vtc().switchCycles();
    r.pcie_h2d_bytes = runtime.pcie().bytesMoved(PcieDir::HostToDevice);
    r.pcie_d2h_bytes = runtime.pcie().bytesMoved(PcieDir::DeviceToHost);
    r.translations = hierarchy.accesses();
    r.tlb_hit_rate = hierarchy.tlbHitRate();
    r.faults_per_kcycle =
        r.cycles ? 1000.0 * static_cast<double>(hierarchy.faults()) /
                       static_cast<double>(r.cycles)
                 : 0.0;
    if (audit_) {
        audit_->finalize(r, manager_.committedFrames(),
                         manager_.pageTable().residentPages());
    }
    return r;
}

namespace
{

std::uint64_t
lcm64(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t x = a, y = b;
    while (y != 0) {
        const std::uint64_t t = x % y;
        x = y;
        y = t;
    }
    return a / x * b;
}

/** Per-tenant in-flight kernel state for the shared-queue run. */
struct TenantRun {
    Workload *workload = nullptr;
    Gpu *gpu = nullptr;
    KernelInfo kernel; //!< storage for the in-flight kernel
    bool done = false;
    Cycle done_cycle = 0;
    std::uint64_t kernels = 0;
};

} // namespace

RunResult
GpuUvmSystem::run(const std::vector<TenantSpec> &specs)
{
    UvmRuntimeBase &runtime = engine_->runtime();

    if (specs.empty())
        fatal("GpuUvmSystem: empty tenant mix");
    if (config_.etc.enabled)
        fatal("GpuUvmSystem: ETC is not supported in multi-tenant runs");
    if (config_.uvm.preload)
        fatal("GpuUvmSystem: preload is not supported in multi-tenant "
              "runs");
    if (!(config_.memory_ratio > 0.0))
        fatal("GpuUvmSystem: multi-tenant runs need a finite memory "
              "ratio");
    const auto n = static_cast<std::uint32_t>(specs.size());
    if (config_.gpu.num_sms < n)
        fatal("GpuUvmSystem: %u tenants need at least %u SMs", n, n);

    // --- Build every tenant into its own VA slice. Slices are aligned
    // to both the prefetch-tree span and the eviction chunk, so no
    // structure the runtime moves as a unit ever spans two tenants.
    const std::uint64_t page = config_.uvm.page_bytes;
    const std::uint64_t align = lcm64(
        std::max<std::uint64_t>(config_.uvm.va_block_bytes / page, 1),
        config_.uvm.root_chunk_pages);
    tenant_dir_ = std::make_unique<TenantDirectory>(config_.mt.policy);
    tenant_workloads_.clear();
    engine_->clearTenants();

    std::vector<TenantContext> contexts(n);
    PageNum next_page = 0;
    std::uint64_t total_footprint_pages = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        auto workload =
            WorkloadRegistry::instance().create(specs[i].workload);
        TenantContext &ctx = contexts[i];
        ctx.id = static_cast<TenantId>(i);
        ctx.workload = specs[i].workload;
        ctx.seed = deriveTenantSeed(config_.seed, i);
        ctx.first_vpn = next_page;
        workload->allocator().rebase(ctx.first_vpn * page);
        workload->build(specs[i].scale, ctx.seed);
        const PageNum watermark =
            (workload->allocator().watermark() + page - 1) / page;
        next_page = (watermark + align - 1) / align * align;
        ctx.end_vpn = next_page;
        ctx.footprint_pages = workload->allocator().footprintPages();
        total_footprint_pages += ctx.footprint_pages;
        for (const auto &range : workload->allocator().ranges())
            runtime.registerAllocation(range.base, range.bytes);
        tenant_workloads_.push_back(std::move(workload));
    }

    // --- Device capacity and per-tenant budgets.
    auto capacity = static_cast<std::uint64_t>(
        std::ceil(config_.memory_ratio *
                  static_cast<double>(total_footprint_pages)));
    capacity = std::max<std::uint64_t>(capacity, 4);
    manager_.setCapacityPages(capacity);

    double quota_sum = 0.0;
    for (const TenantSpec &spec : specs) {
        if (spec.quota < 0.0)
            fatal("GpuUvmSystem: negative tenant quota");
        quota_sum += spec.quota;
    }
    for (std::uint32_t i = 0; i < n; ++i) {
        const double share = quota_sum > 0.0
                                 ? specs[i].quota / quota_sum
                                 : 1.0 / static_cast<double>(n);
        TenantContext &ctx = contexts[i];
        ctx.weight = share;
        ctx.quota_pages = std::max<std::uint64_t>(
            static_cast<std::uint64_t>(
                share * static_cast<double>(capacity)),
            4);
        tenant_dir_->add(ctx);
    }

    // --- Wire tenancy through the stack.
    manager_.setTenantDirectory(tenant_dir_.get());
    runtime.setTenantDirectory(tenant_dir_.get());
    if (audit_) {
        audit_->setTenantDirectory(tenant_dir_.get());
        audit_->setContext(tenantMixLabel(specs));
    }

    // --- Partition the SMs: tenant i gets a contiguous share, its own
    // GPU front end and cache/TLB hierarchy, all on the shared event
    // queue, runtime and memory manager. The default gpu_'s advice
    // sink is dropped; each tenant GPU registers its own.
    runtime.clearAdviceCallbacks();
    const std::uint32_t base_sms = config_.gpu.num_sms / n;
    const std::uint32_t extra_sms = config_.gpu.num_sms % n;
    std::uint32_t track_base = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        SimConfig tenant_config = config_;
        tenant_config.gpu.num_sms = base_sms + (i < extra_sms ? 1 : 0);
        engine_->addTenant(tenant_config, page, track_base);
        track_base += tenant_config.gpu.num_sms;
    }
    engine_->wireTenantRouting();

    // --- Run every tenant's kernel chain on the shared queue. Each
    // tenant launches its next kernel from a zero-delay event (never
    // from inside the dispatcher's completion callback, which is
    // still unwinding), so tenants progress independently until the
    // queue drains.
    RunResult r;
    r.workload = tenantMixLabel(specs);
    r.seed = config_.seed;
    r.capacity_pages = manager_.capacityPages();
    for (const auto &w : tenant_workloads_)
        r.footprint_bytes += w->footprintBytes();

    std::vector<TenantRun> runs(n);
    std::function<void(std::uint32_t)> launch_next =
        [&](std::uint32_t i) {
            TenantRun &t = runs[i];
            if (!t.workload->nextKernel(&t.kernel)) {
                t.done = true;
                t.done_cycle = events_.now();
                return;
            }
            ++t.kernels;
            t.gpu->launchKernel(&t.kernel, [&, i] {
                events_.scheduleAfter(0,
                                      [&, i] { launch_next(i); });
            });
        };

    const Cycle begin = events_.now();
    const std::uint64_t events_begin = events_.executedEvents();
    const auto wall_begin = std::chrono::steady_clock::now();
    for (std::uint32_t i = 0; i < n; ++i) {
        runs[i].workload = tenant_workloads_[i].get();
        runs[i].gpu = &engine_->tenantGpu(i);
        launch_next(i);
    }
    events_.run();
    for (std::uint32_t i = 0; i < n; ++i) {
        if (!runs[i].done) {
            panic("GpuUvmSystem: event queue drained but tenant %u "
                  "(%s) has not finished (simulator deadlock)",
                  i, specs[i].workload.c_str());
        }
    }

    r.cycles = events_.now() - begin;
    r.sim_events = events_.executedEvents() - events_begin;
    r.event_order_digest = events_.orderDigest();
    r.host_wall_s = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - wall_begin)
                        .count();
    r.events_per_sec = r.host_wall_s > 0.0
                           ? static_cast<double>(r.sim_events) /
                                 r.host_wall_s
                           : 0.0;

    for (std::uint32_t i = 0; i < n; ++i)
        r.instructions += engine_->tenantGpu(i).totalIssuedInstructions();
    r.batches = runtime.batches();
    r.avg_batch_pages = runtime.averageBatchPages();
    r.avg_batch_time = runtime.averageProcessingTime();
    r.avg_handling_time = runtime.averageHandlingTime();
    r.demand_pages = runtime.demandFaultPages();
    r.prefetched_pages = runtime.prefetchedPages();
    r.batch_records = runtime.batchRecords();
    r.migrations = manager_.migrations();
    r.evictions = manager_.evictions();
    r.premature_evictions = manager_.prematureEvictions();
    r.premature_rate = manager_.prematureEvictionRate();
    for (std::uint32_t i = 0; i < n; ++i) {
        r.context_switches +=
            engine_->tenantGpu(i).vtc().contextSwitches();
        r.context_switch_cycles +=
            engine_->tenantGpu(i).vtc().switchCycles();
    }
    r.pcie_h2d_bytes = runtime.pcie().bytesMoved(PcieDir::HostToDevice);
    r.pcie_d2h_bytes = runtime.pcie().bytesMoved(PcieDir::DeviceToHost);
    std::uint64_t hierarchy_faults = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        r.translations += engine_->tenantHierarchy(i).accesses();
        hierarchy_faults += engine_->tenantHierarchy(i).faults();
    }
    {
        double hits = 0.0;
        for (std::uint32_t i = 0; i < n; ++i) {
            hits += engine_->tenantHierarchy(i).tlbHitRate() *
                    static_cast<double>(
                        engine_->tenantHierarchy(i).accesses());
        }
        r.tlb_hit_rate = r.translations
                             ? hits / static_cast<double>(
                                          r.translations)
                             : 0.0;
    }
    r.faults_per_kcycle =
        r.cycles ? 1000.0 * static_cast<double>(hierarchy_faults) /
                       static_cast<double>(r.cycles)
                 : 0.0;

    r.tenants.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        const auto id = static_cast<TenantId>(i);
        TenantResult &t = r.tenants[i];
        t.id = id;
        t.workload = specs[i].workload;
        t.seed = contexts[i].seed;
        t.cycles = runs[i].done_cycle - begin;
        t.kernels = runs[i].kernels;
        t.instructions =
            engine_->tenantGpu(i).totalIssuedInstructions();
        t.footprint_bytes = tenant_workloads_[i]->footprintBytes();
        t.quota_pages = contexts[i].quota_pages;
        t.demand_pages = runtime.demandPagesOf(id);
        t.evictions_caused = manager_.evictionsCausedBy(id);
        t.evictions_suffered = manager_.evictionsSufferedBy(id);
        t.peak_resident_pages = manager_.peakCommittedFramesOf(id);
        t.avg_lifetime_cycles = manager_.avgLifetimeOf(id);
        r.kernels += t.kernels;
    }

    if (audit_) {
        audit_->finalize(r, manager_.committedFrames(),
                         manager_.pageTable().residentPages());
    }
    return r;
}

RunResult
runWorkload(const SimConfig &config, const std::string &name,
            WorkloadScale scale, bool validate)
{
    auto workload = WorkloadRegistry::instance().create(name);
    GpuUvmSystem system(config);
    RunResult result = system.run(*workload, scale);
    if (validate)
        workload->validate();
    return result;
}

RunResult
runTenantMix(const SimConfig &config,
             const std::vector<TenantSpec> &specs, bool validate)
{
    GpuUvmSystem system(config);
    RunResult result = system.run(specs);
    if (validate) {
        for (const auto &workload : system.tenantWorkloads())
            workload->validate();
    }
    return result;
}

} // namespace bauvm
