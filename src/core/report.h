/**
 * @file
 * Table/CSV output helpers used by the bench binaries so every figure
 * prints in the same format.
 */

#ifndef BAUVM_CORE_REPORT_H_
#define BAUVM_CORE_REPORT_H_

#include <string>
#include <vector>

namespace bauvm
{

/** A simple column-aligned table with an optional CSV rendering. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Formats a double with @p precision decimals. */
    static std::string num(double v, int precision = 3);

    /**
     * Renders aligned columns as a string. Pure function of the rows,
     * so tests can compare parallel vs. serial sweeps byte-for-byte.
     */
    std::string toText() const;

    /** Renders CSV as a string (same determinism note as toText). */
    std::string toCsv() const;

    /** Prints aligned columns to stdout. */
    void print() const;

    /** Prints CSV to stdout. */
    void printCsv() const;

    /** print() or printCsv() depending on @p csv. */
    void emit(bool csv) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Prints a figure banner ("== Figure 11: ... =="). */
void printBanner(const std::string &title);

} // namespace bauvm

#endif // BAUVM_CORE_REPORT_H_
