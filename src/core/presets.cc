#include "src/core/presets.h"

#include "src/sim/log.h"

namespace bauvm
{

const std::vector<Policy> &
allPolicies()
{
    static const std::vector<Policy> policies = {
        Policy::Baseline, Policy::BaselinePcieComp, Policy::To,
        Policy::Ue,       Policy::ToUe,             Policy::Etc,
    };
    return policies;
}

std::string
policyName(Policy policy)
{
    switch (policy) {
      case Policy::Baseline:
        return "BASELINE";
      case Policy::BaselinePcieComp:
        return "BASELINE+PCIeC";
      case Policy::To:
        return "TO";
      case Policy::Ue:
        return "UE";
      case Policy::ToUe:
        return "TO+UE";
      case Policy::Etc:
        return "ETC";
      case Policy::IdealEviction:
        return "IDEAL-EVICTION";
      case Policy::Unlimited:
        return "UNLIMITED";
    }
    fatal("policyName: bad policy");
}

Policy
policyFromName(const std::string &name)
{
    for (Policy p :
         {Policy::Baseline, Policy::BaselinePcieComp, Policy::To,
          Policy::Ue, Policy::ToUe, Policy::Etc, Policy::IdealEviction,
          Policy::Unlimited}) {
        if (policyName(p) == name)
            return p;
    }
    fatal("policyFromName: unknown policy '%s'", name.c_str());
}

SimConfig
paperConfig(double memory_ratio, std::uint64_t seed)
{
    SimConfig config; // defaults in sim/config.h are Table 1 already
    config.memory_ratio = memory_ratio;
    config.seed = seed;
    return config;
}

SimConfig
applyPolicy(SimConfig config, Policy policy)
{
    switch (policy) {
      case Policy::Baseline:
        break;
      case Policy::BaselinePcieComp:
        config.uvm.pcie_compression_ratio = 1.5;
        break;
      case Policy::To:
        config.to.enabled = true;
        break;
      case Policy::Ue:
        config.uvm.unobtrusive_eviction = true;
        break;
      case Policy::ToUe:
        config.to.enabled = true;
        config.uvm.unobtrusive_eviction = true;
        break;
      case Policy::Etc:
        config.etc.enabled = true;
        break;
      case Policy::IdealEviction:
        config.uvm.ideal_eviction = true;
        break;
      case Policy::Unlimited:
        config.memory_ratio = 0.0; // unlimited device memory
        break;
    }
    return config;
}

} // namespace bauvm
