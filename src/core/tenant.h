/**
 * @file
 * Tenant-session types for multi-tenant runs: N workloads sharing one
 * simulated GPU, each with its own slice of the unified virtual address
 * space and a frame budget arbitrated by a SharePolicy (sim/config.h).
 *
 * A TenantSpec is the client-facing request (workload name + relative
 * quota); GpuUvmSystem::run(std::vector<TenantSpec>) lowers the specs
 * to TenantContexts with concrete VA slices and frame quotas, registers
 * them in a TenantDirectory, and threads tenant ids through the fault
 * buffer, batches, and the eviction path. Per-tenant outcomes come back
 * as TenantResults inside the RunResult.
 *
 * VA slices are aligned to both the prefetch-tree span (va_block_bytes)
 * and the eviction chunk (root_chunk_pages), so no 2 MB prefetch tree
 * and no LRU chunk ever spans two tenants — tenantOf() is well defined
 * for every structure the UVM runtime moves as a unit.
 */

#ifndef BAUVM_CORE_TENANT_H_
#define BAUVM_CORE_TENANT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/mem/tenant_directory.h"
#include "src/sim/config.h"
#include "src/sim/types.h"
#include "src/workloads/workload.h"

namespace bauvm
{

// TenantId / kNoTenant live in sim/types.h, and TenantContext /
// TenantDirectory in mem/tenant_directory.h, so the low layers (mem,
// uvm, check) carry attribution without depending on this header.

/** One requested tenant of a multi-tenant run. */
struct TenantSpec {
    std::string workload; //!< registry name, e.g. "BFS-HYB"
    /**
     * Relative memory share. Under StrictQuota it is the fraction of
     * total GPU capacity this tenant may commit; under Proportional it
     * is the tenant's fair-share weight. 0 on every spec means equal
     * shares. Ignored by FreeForAll.
     */
    double quota = 0.0;
    WorkloadScale scale = WorkloadScale::Small;
};

/** Per-tenant slice of a multi-tenant RunResult. */
struct TenantResult {
    TenantId id = 0;
    std::string workload;
    std::uint64_t seed = 0;
    Cycle cycles = 0;            //!< cycle the tenant's last kernel retired
    std::uint64_t kernels = 0;
    std::uint64_t instructions = 0;
    std::uint64_t footprint_bytes = 0;
    std::uint64_t quota_pages = 0;
    std::uint64_t demand_pages = 0; //!< demand migrations attributed here
    std::uint64_t evictions_caused = 0;   //!< victim chosen on its behalf
    std::uint64_t evictions_suffered = 0; //!< its own pages evicted
    std::uint64_t peak_resident_pages = 0;
    double avg_lifetime_cycles = 0.0; //!< mean evicted-page lifetime
    /** mt cycles / solo cycles for the same workload+seed+capacity-share
     *  context; 0 when no solo reference was run. */
    double slowdown = 0.0;
};

/**
 * Per-tenant seed, decorrelated from the base seed and from the other
 * tenants by splitmix64 — the same scheme deriveWorkloadSeed() uses
 * across sweep cells, so tenant i's graph build matches the solo run
 * of the same workload under seed deriveTenantSeed(base, i).
 */
std::uint64_t deriveTenantSeed(std::uint64_t base_seed,
                               std::uint32_t tenant_index);

/** "free-for-all" | "strict" | "proportional". */
std::string sharePolicyName(SharePolicy policy);

/** Inverse of sharePolicyName(); fatal on unknown names. */
SharePolicy sharePolicyFromName(const std::string &name);

/** Display label for a tenant mix, e.g. "BFS-HYB+PR". */
std::string tenantMixLabel(const std::vector<TenantSpec> &specs);

} // namespace bauvm

#endif // BAUVM_CORE_TENANT_H_
