/**
 * @file
 * Named configurations: the Table 1 simulated system and the policy
 * presets evaluated in Fig 11.
 */

#ifndef BAUVM_CORE_PRESETS_H_
#define BAUVM_CORE_PRESETS_H_

#include <string>
#include <vector>

#include "src/sim/config.h"

namespace bauvm
{

/** The memory-management policies compared in the paper. */
enum class Policy {
    Baseline,         //!< state-of-the-art tree prefetching (Zheng+)
    BaselinePcieComp, //!< baseline plus PCIe (de)compression
    To,               //!< thread oversubscription
    Ue,               //!< unobtrusive eviction
    ToUe,             //!< both techniques (the paper's proposal)
    Etc,              //!< Li et al. framework (MT + CC, PE off)
    IdealEviction,    //!< zero-latency eviction (Fig 8 upper bound)
    Unlimited,        //!< infinite device memory (Fig 8 normalizer)
};

/** All policies in Fig 11 presentation order. */
const std::vector<Policy> &allPolicies();

/** Human-readable policy name as the figures print it. */
std::string policyName(Policy policy);

/** Parses a policy name (as printed by policyName); fatal() on error. */
Policy policyFromName(const std::string &name);

/** The paper's Table 1 system with a given oversubscription ratio. */
SimConfig paperConfig(double memory_ratio = 0.5,
                      std::uint64_t seed = 1);

/** Applies one of the Fig 11 policies on top of a base config. */
SimConfig applyPolicy(SimConfig config, Policy policy);

} // namespace bauvm

#endif // BAUVM_CORE_PRESETS_H_
