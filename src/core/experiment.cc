#include "src/core/experiment.h"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "src/sim/log.h"

namespace bauvm
{

BenchOptions
parseBenchArgs(int argc, char **argv)
{
    BenchOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char *what) -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for %s", what);
            return argv[++i];
        };
        if (arg == "--csv") {
            opt.csv = true;
        } else if (arg == "--scale") {
            const std::string v = next("--scale");
            if (v == "tiny")
                opt.scale = WorkloadScale::Tiny;
            else if (v == "small")
                opt.scale = WorkloadScale::Small;
            else if (v == "medium")
                opt.scale = WorkloadScale::Medium;
            else if (v == "large")
                opt.scale = WorkloadScale::Large;
            else
                fatal("unknown scale '%s'", v.c_str());
        } else if (arg == "--ratio") {
            opt.ratio = std::stod(next("--ratio"));
        } else if (arg == "--seed") {
            opt.seed = std::stoull(next("--seed"));
        } else if (arg == "--help" || arg == "-h") {
            std::printf("options: --scale tiny|small|medium|large "
                        "--ratio R --seed N --csv\n");
            std::exit(0);
        } else {
            fatal("unknown argument '%s'", arg.c_str());
        }
    }
    return opt;
}

RunResult
runCell(const std::string &workload, Policy policy,
        const BenchOptions &opt)
{
    SimConfig config = paperConfig(opt.ratio, opt.seed);
    config = applyPolicy(config, policy);
    return runWorkload(config, workload, opt.scale);
}

std::map<std::string, std::map<Policy, RunResult>>
runMatrix(const std::vector<std::string> &workloads,
          const std::vector<Policy> &policies, const BenchOptions &opt,
          bool verbose)
{
    std::map<std::string, std::map<Policy, RunResult>> results;
    for (const auto &w : workloads) {
        for (Policy p : policies) {
            if (verbose) {
                std::fprintf(stderr, "  running %s / %s ...\n",
                             w.c_str(), policyName(p).c_str());
            }
            results[w][p] = runCell(w, p, opt);
        }
    }
    return results;
}

double
amean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            panic("geomean: non-positive value %f", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace bauvm
