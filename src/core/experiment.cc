#include "src/core/experiment.h"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "src/runner/job.h"
#include "src/runner/sweep_runner.h"
#include "src/sim/log.h"
#include "src/workloads/workload_registry.h"

namespace bauvm
{

namespace
{

void
printBenchUsage(std::FILE *out)
{
    std::fprintf(
        out,
        "options: --scale tiny|small|medium|large|huge --ratio R "
        "--seed N --csv --jobs N --cell-threads N --json PATH "
        "--timeout S "
        "--trace[=DIR] --audit --resume[=DIR] --workloads A,B,C\n"
        "  --jobs N     sweep worker threads "
        "(0 = hardware concurrency, default)\n"
        "  --cell-threads N  host threads inside one cell: a multi-\n"
        "               tenant cell runs its solo anchors and the mix\n"
        "               as concurrent units, bit-identical to the\n"
        "               serial run (default 1)\n"
        "  --json PATH  export sweep results as JSON "
        "('-' = stdout)\n"
        "  --timeout S  per-cell soft timeout in seconds\n"
        "  --trace[=DIR] write one chrome://tracing JSON and "
        "one counter CSV per sweep cell (default dir: "
        "traces)\n"
        "  --audit      run every cell under the online model "
        "auditor (invariant violations fail the cell)\n"
        "  --resume[=DIR] checkpoint finished cells in a content-\n"
        "               addressed on-disk cache and load them on the\n"
        "               next run (default dir: .bauvm-cells)\n"
        "  --workloads A,B,C  restrict the bench to a comma-separated\n"
        "               workload subset (names from the registry)\n"
        "  --tenants A:0.5,B:0.5  run every cell as a concurrent\n"
        "               multi-tenant mix (workload:quota pairs; a\n"
        "               missing quota means an equal share)\n"
        "  --share-policy free-for-all|strict|proportional  how\n"
        "               tenants share device memory (default\n"
        "               free-for-all)\n");
}

} // namespace

void
BenchOptions::applyTo(SimConfig &config) const
{
    config.check.enabled = audit;
    config.mt.policy = share_policy;
}

BenchOptions
parseBenchArgs(int argc, char **argv)
{
    BenchOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char *what) -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for %s", what);
            return argv[++i];
        };
        auto next_u64 = [&](const char *what) -> std::uint64_t {
            const std::string v = next(what);
            try {
                return std::stoull(v);
            } catch (const std::exception &) {
                fatal("invalid value '%s' for %s", v.c_str(), what);
            }
        };
        auto next_f64 = [&](const char *what) -> double {
            const std::string v = next(what);
            try {
                return std::stod(v);
            } catch (const std::exception &) {
                fatal("invalid value '%s' for %s", v.c_str(), what);
            }
        };
        if (arg == "--csv") {
            opt.csv = true;
        } else if (arg == "--scale") {
            const std::string v = next("--scale");
            if (v == "tiny")
                opt.scale = WorkloadScale::Tiny;
            else if (v == "small")
                opt.scale = WorkloadScale::Small;
            else if (v == "medium")
                opt.scale = WorkloadScale::Medium;
            else if (v == "large")
                opt.scale = WorkloadScale::Large;
            else if (v == "huge")
                opt.scale = WorkloadScale::Huge;
            else
                fatal("unknown scale '%s'", v.c_str());
        } else if (arg == "--ratio") {
            opt.ratio = next_f64("--ratio");
        } else if (arg == "--seed") {
            opt.seed = next_u64("--seed");
        } else if (arg == "--jobs") {
            opt.jobs = next_u64("--jobs");
        } else if (arg == "--cell-threads") {
            opt.cell_threads = next_u64("--cell-threads");
            if (opt.cell_threads == 0)
                fatal("--cell-threads must be >= 1");
        } else if (arg == "--json") {
            opt.json_path = next("--json");
        } else if (arg == "--timeout") {
            opt.timeout_s = next_f64("--timeout");
            if (opt.timeout_s < 0.0)
                fatal("--timeout must be >= 0");
        } else if (arg == "--trace") {
            opt.trace_dir = "traces";
        } else if (arg.rfind("--trace=", 0) == 0) {
            opt.trace_dir = arg.substr(std::strlen("--trace="));
            if (opt.trace_dir.empty())
                fatal("--trace= requires a directory");
        } else if (arg == "--audit") {
            opt.audit = true;
        } else if (arg == "--workloads") {
            const std::string list = next("--workloads");
            std::size_t start = 0;
            while (start <= list.size()) {
                const std::size_t comma = list.find(',', start);
                const std::string name = list.substr(
                    start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
                if (!name.empty()) {
                    if (!WorkloadRegistry::instance().contains(name)) {
                        fatal("--workloads: unknown workload '%s'",
                              name.c_str());
                    }
                    opt.workloads.push_back(name);
                }
                if (comma == std::string::npos)
                    break;
                start = comma + 1;
            }
            if (opt.workloads.empty())
                fatal("--workloads: empty workload list");
        } else if (arg == "--tenants") {
            const std::string list = next("--tenants");
            std::size_t start = 0;
            while (start <= list.size()) {
                const std::size_t comma = list.find(',', start);
                const std::string item = list.substr(
                    start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
                if (!item.empty()) {
                    TenantSpec t;
                    const std::size_t colon = item.find(':');
                    t.workload = item.substr(0, colon);
                    if (colon != std::string::npos) {
                        try {
                            t.quota = std::stod(item.substr(colon + 1));
                        } catch (const std::exception &) {
                            fatal("--tenants: invalid quota in '%s'",
                                  item.c_str());
                        }
                        if (t.quota < 0.0)
                            fatal("--tenants: negative quota in '%s'",
                                  item.c_str());
                    }
                    if (!WorkloadRegistry::instance().contains(
                            t.workload)) {
                        fatal("--tenants: unknown workload '%s'",
                              t.workload.c_str());
                    }
                    opt.tenants.push_back(std::move(t));
                }
                if (comma == std::string::npos)
                    break;
                start = comma + 1;
            }
            if (opt.tenants.size() < 2)
                fatal("--tenants: need at least two tenants");
        } else if (arg == "--share-policy") {
            opt.share_policy = sharePolicyFromName(
                next("--share-policy"));
        } else if (arg == "--resume") {
            opt.resume_dir = ".bauvm-cells";
        } else if (arg.rfind("--resume=", 0) == 0) {
            opt.resume_dir = arg.substr(std::strlen("--resume="));
            if (opt.resume_dir.empty())
                fatal("--resume= requires a directory");
        } else if (arg == "--help" || arg == "-h") {
            printBenchUsage(stdout);
            std::exit(0);
        } else {
            printBenchUsage(stderr);
            fatal("unknown argument '%s'", arg.c_str());
        }
    }
    return opt;
}

std::string
scaleName(WorkloadScale scale)
{
    switch (scale) {
      case WorkloadScale::Tiny:
        return "tiny";
      case WorkloadScale::Small:
        return "small";
      case WorkloadScale::Medium:
        return "medium";
      case WorkloadScale::Large:
        return "large";
      case WorkloadScale::Huge:
        return "huge";
    }
    fatal("scaleName: bad scale");
}

RunResult
runCell(const std::string &workload, Policy policy,
        const BenchOptions &opt)
{
    // Same seed derivation as SweepRunner, so a direct runCell() call
    // reproduces the matching runMatrix() cell bit-for-bit.
    SimConfig config =
        paperConfig(opt.ratio, deriveWorkloadSeed(opt.seed, workload));
    config = applyPolicy(config, policy);
    opt.applyTo(config);
    return runWorkload(config, workload, opt.scale);
}

std::map<std::string, std::map<Policy, RunResult>>
runMatrix(const std::vector<std::string> &workloads,
          const std::vector<Policy> &policies, const BenchOptions &opt,
          bool verbose)
{
    SweepSpec spec;
    spec.bench = "runMatrix";
    spec.workloads = workloads;
    spec.policies = policies;
    spec.opt = opt;
    spec.verbose = verbose;

    SweepRunner runner(std::move(spec));
    const SweepResult sweep = runner.run();

    std::map<std::string, std::map<Policy, RunResult>> results;
    for (const auto &cell : sweep.cells) {
        if (!cell.ok) {
            warn("runMatrix: cell %s/%s failed: %s",
                 cell.workload.c_str(),
                 policyName(cell.policy).c_str(), cell.error.c_str());
            results[cell.workload][cell.policy] = RunResult{};
            continue;
        }
        results[cell.workload][cell.policy] = cell.result;
    }
    return results;
}

double
amean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty()) {
        warn("geomean: empty input, returning 0");
        return 0.0;
    }
    double log_sum = 0.0;
    for (double v : values) {
        if (!(v > 0.0) || !std::isfinite(v)) {
            // One failed sweep cell yields a 0/inf/nan speedup; keep
            // the bench binary alive and make the bad mean obvious.
            warn("geomean: non-positive value %f, returning 0", v);
            return 0.0;
        }
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace bauvm
