#include "src/core/report.h"

#include <algorithm>
#include <cstdio>

#include "src/sim/log.h"

namespace bauvm
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        panic("Table: row width %zu != header width %zu", cells.size(),
              headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    return buf;
}

std::string
Table::toText() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }
    std::string out;
    auto append_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out += row[c];
            out.append(widths[c] - row[c].size() + 2, ' ');
        }
        out += '\n';
    };
    append_row(headers_);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    out.append(total, '-');
    out += '\n';
    for (const auto &row : rows_)
        append_row(row);
    return out;
}

std::string
Table::toCsv() const
{
    std::string out;
    auto append_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out += row[c];
            out += c + 1 == row.size() ? '\n' : ',';
        }
    };
    append_row(headers_);
    for (const auto &row : rows_)
        append_row(row);
    return out;
}

void
Table::print() const
{
    std::fputs(toText().c_str(), stdout);
}

void
Table::printCsv() const
{
    std::fputs(toCsv().c_str(), stdout);
}

void
Table::emit(bool csv) const
{
    if (csv)
        printCsv();
    else
        print();
}

void
printBanner(const std::string &title)
{
    std::printf("\n== %s ==\n", title.c_str());
}

} // namespace bauvm
