#include "src/core/report.h"

#include <algorithm>
#include <cstdio>

#include "src/sim/log.h"

namespace bauvm
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        panic("Table: row width %zu != header width %zu", cells.size(),
              headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    return buf;
}

void
Table::print() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }
    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            std::printf("%-*s  ", static_cast<int>(widths[c]),
                        row[c].c_str());
        std::printf("\n");
    };
    print_row(headers_);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto &row : rows_)
        print_row(row);
}

void
Table::printCsv() const
{
    auto print_row = [](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            std::printf("%s%s", row[c].c_str(),
                        c + 1 == row.size() ? "\n" : ",");
    };
    print_row(headers_);
    for (const auto &row : rows_)
        print_row(row);
}

void
Table::emit(bool csv) const
{
    if (csv)
        printCsv();
    else
        print();
}

void
printBanner(const std::string &title)
{
    std::printf("\n== %s ==\n", title.c_str());
}

} // namespace bauvm
