/**
 * @file
 * The construction-time dispatch seam for observer specialization.
 *
 * GpuUvmSystem picks an ObserverMode once, from whether its SimConfig
 * enabled tracing/auditing, and makeEngine() instantiates the matching
 * EngineT<M>: the typed bundle of MemoryHierarchyT<M>, UvmRuntimeT<M>
 * and a Gpu built with SmT<M> SMs, so the per-event fault/translate/
 * evict loop binds statically inside the specialization. Everything
 * the system does after construction — running kernels, reading
 * statistics, wiring tenants — goes through the mode-independent base
 * references this interface exposes; the only virtual dispatch on the
 * simulated path is SmBase::pump(), once per pump event.
 *
 * Multi-tenant runs need tenant hierarchies/GPUs of the *same* mode as
 * the shared runtime, so tenant construction lives behind addTenant()
 * here rather than in the system.
 */

#ifndef BAUVM_CORE_ENGINE_H_
#define BAUVM_CORE_ENGINE_H_

#include <cstdint>
#include <memory>

#include "src/check/observer_mode.h"
#include "src/check/sim_hooks.h"
#include "src/gpu/gpu.h"
#include "src/mem/memory_hierarchy.h"
#include "src/sim/config.h"
#include "src/sim/event_queue.h"
#include "src/uvm/gpu_memory_manager.h"
#include "src/uvm/uvm_runtime.h"

namespace bauvm
{

/** Mode-blind view of one specialized simulation engine. */
class EngineBase
{
  public:
    virtual ~EngineBase() = default;

    virtual ObserverMode mode() const = 0;
    virtual MemoryHierarchyBase &hierarchy() = 0;
    virtual UvmRuntimeBase &runtime() = 0;
    virtual Gpu &gpu() = 0;

    /**
     * Builds tenant @p i's private cache/TLB hierarchy and GPU front
     * end (multi-tenant runs), sharing this engine's event queue,
     * memory manager and runtime. Returns the tenant's GPU.
     */
    virtual Gpu &addTenant(const SimConfig &tenant_config,
                           std::uint64_t page_bytes,
                           std::uint32_t track_base) = 0;
    virtual std::size_t tenantCount() const = 0;
    virtual MemoryHierarchyBase &tenantHierarchy(std::size_t i) = 0;
    virtual Gpu &tenantGpu(std::size_t i) = 0;
    /** Drops tenant state from a previous run(specs) call. */
    virtual void clearTenants() = 0;
    /** Routes eviction shootdowns to the tenant hierarchies added so
     *  far (runtime().setTenantHierarchies, in TenantId order). */
    virtual void wireTenantRouting() = 0;
};

/** The specialized engine for observer mode @p M. */
template <ObserverMode M>
class EngineT final : public EngineBase
{
  public:
    EngineT(const SimConfig &config, EventQueue &events,
            GpuMemoryManager &manager, const SimHooks &hooks);

    ObserverMode mode() const override { return M; }
    MemoryHierarchyBase &hierarchy() override { return hierarchy_; }
    UvmRuntimeBase &runtime() override { return runtime_; }
    Gpu &gpu() override { return *gpu_; }

    Gpu &addTenant(const SimConfig &tenant_config,
                   std::uint64_t page_bytes,
                   std::uint32_t track_base) override;
    std::size_t tenantCount() const override
    {
        return tenant_gpus_.size();
    }
    MemoryHierarchyBase &tenantHierarchy(std::size_t i) override
    {
        return *tenant_hierarchies_[i];
    }
    Gpu &tenantGpu(std::size_t i) override { return *tenant_gpus_[i]; }
    void clearTenants() override;
    void wireTenantRouting() override;

  private:
    EventQueue &events_;
    GpuMemoryManager &manager_;
    SimHooks hooks_;
    MemoryHierarchyT<M> hierarchy_;
    UvmRuntimeT<M> runtime_;
    std::unique_ptr<Gpu> gpu_;
    std::vector<std::unique_ptr<MemoryHierarchyT<M>>>
        tenant_hierarchies_;
    std::vector<std::unique_ptr<Gpu>> tenant_gpus_;
};

extern template class EngineT<ObserverMode::None>;
extern template class EngineT<ObserverMode::Trace>;
extern template class EngineT<ObserverMode::Audit>;
extern template class EngineT<ObserverMode::Both>;

/**
 * Instantiates the engine specialized for the observers actually
 * attached in @p hooks (never the Dynamic fallback: a null pointer in
 * the aggregate means that observer cannot appear later either).
 */
std::unique_ptr<EngineBase> makeEngine(const SimConfig &config,
                                       EventQueue &events,
                                       GpuMemoryManager &manager,
                                       const SimHooks &hooks);

} // namespace bauvm

#endif // BAUVM_CORE_ENGINE_H_
