#include "src/core/tenant.h"

#include "src/sim/log.h"

namespace bauvm
{

std::uint64_t
deriveTenantSeed(std::uint64_t base_seed, std::uint32_t tenant_index)
{
    // splitmix64 finalizer, same diffusion scheme as runner/job.cc;
    // the tenant index lands in the high half so small bases and small
    // indices cannot collide before mixing.
    std::uint64_t x = base_seed ^
                      (0x9e3779b97f4a7c15ULL *
                       (static_cast<std::uint64_t>(tenant_index) + 1));
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x ? x : 1;
}

std::string
sharePolicyName(SharePolicy policy)
{
    switch (policy) {
      case SharePolicy::FreeForAll:
        return "free-for-all";
      case SharePolicy::StrictQuota:
        return "strict";
      case SharePolicy::Proportional:
        return "proportional";
    }
    fatal("sharePolicyName: bad policy");
}

SharePolicy
sharePolicyFromName(const std::string &name)
{
    if (name == "free-for-all")
        return SharePolicy::FreeForAll;
    if (name == "strict")
        return SharePolicy::StrictQuota;
    if (name == "proportional")
        return SharePolicy::Proportional;
    fatal("sharePolicyFromName: unknown policy '%s'", name.c_str());
}

std::string
tenantMixLabel(const std::vector<TenantSpec> &specs)
{
    std::string label;
    for (const TenantSpec &spec : specs) {
        if (!label.empty())
            label += '+';
        label += spec.workload;
    }
    return label;
}

} // namespace bauvm
