/**
 * @file
 * Experiment harness shared by the bench binaries: runs (workload x
 * policy) matrices, computes normalized speedups and geometric means,
 * and parses the common bench command line (--scale / --csv / --ratio).
 */

#ifndef BAUVM_CORE_EXPERIMENT_H_
#define BAUVM_CORE_EXPERIMENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/core/presets.h"
#include "src/core/system.h"
#include "src/workloads/workload.h"

namespace bauvm
{

/** Common options parsed from a bench binary's argv. */
struct BenchOptions {
    WorkloadScale scale = WorkloadScale::Small;
    bool csv = false;
    double ratio = 0.5; //!< oversubscription ratio
    std::uint64_t seed = 1;
};

/** Parses --scale tiny|small|medium|large, --csv, --ratio R, --seed N. */
BenchOptions parseBenchArgs(int argc, char **argv);

/** Runs one (workload, policy) cell of the evaluation matrix. */
RunResult runCell(const std::string &workload, Policy policy,
                  const BenchOptions &opt);

/**
 * Runs @p policies for every workload in @p workloads.
 * @return results[workload][policy].
 */
std::map<std::string, std::map<Policy, RunResult>> runMatrix(
    const std::vector<std::string> &workloads,
    const std::vector<Policy> &policies, const BenchOptions &opt,
    bool verbose = true);

/** Geometric mean of @p values (must be positive). */
double geomean(const std::vector<double> &values);

/** Arithmetic mean (the paper reports arithmetic-average speedups). */
double amean(const std::vector<double> &values);

} // namespace bauvm

#endif // BAUVM_CORE_EXPERIMENT_H_
