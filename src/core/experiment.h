/**
 * @file
 * Experiment harness shared by the bench binaries: runs (workload x
 * policy) matrices, computes normalized speedups and geometric means,
 * and parses the common bench command line (--scale / --csv / --ratio
 * / --seed / --jobs / --json / --timeout).
 *
 * runMatrix() delegates to the parallel SweepRunner (src/runner): the
 * matrix executes on opt.jobs worker threads with per-cell seeds
 * derived deterministically from (seed, workload), so the results are
 * bit-identical for any --jobs value.
 */

#ifndef BAUVM_CORE_EXPERIMENT_H_
#define BAUVM_CORE_EXPERIMENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/core/presets.h"
#include "src/core/system.h"
#include "src/workloads/workload.h"

namespace bauvm
{

/** Common options parsed from a bench binary's argv. */
struct BenchOptions {
    WorkloadScale scale = WorkloadScale::Small;
    bool csv = false;
    double ratio = 0.5; //!< oversubscription ratio
    std::uint64_t seed = 1;
    /** Sweep worker threads; 0 = hardware_concurrency. */
    std::size_t jobs = 0;
    /** Host threads *inside* one cell (--cell-threads): a multi-tenant
     *  cell runs its per-tenant solo anchors and the mix itself as
     *  concurrent units, merged in fixed unit order so the results are
     *  bit-identical to the serial run. 1 = serial. Orthogonal to
     *  `jobs`, which parallelizes *across* cells; deliberately not
     *  part of the cell's content address (runner/cell_spec.h). */
    std::size_t cell_threads = 1;
    /** Sweep JSON export path ("" = off, "-" = stdout). */
    std::string json_path;
    /** Per-cell soft timeout in seconds; 0 = disabled. */
    double timeout_s = 0.0;
    /** Trace output directory ("" = tracing off). One Chrome-trace
     *  JSON plus one counter CSV is written per sweep cell. */
    std::string trace_dir;
    /** Run every cell under the online ModelAuditor (src/check). */
    bool audit = false;
    /** Resume cache directory ("" = off): finished ok cells are
     *  checkpointed by content address (src/serve/result_cache.h)
     *  and loaded instead of recomputed on the next run. */
    std::string resume_dir;
    /** Workload subset override (--workloads A,B,C, validated against
     *  the registry); empty = the bench's default set. */
    std::vector<std::string> workloads;
    /** Tenant mix override (--tenants A:0.5,B:0.5); non-empty turns
     *  every cell into a concurrent multi-tenant run. Entries carry
     *  the workload name and quota; their scale is `scale`. */
    std::vector<TenantSpec> tenants;
    /** How tenants share device memory (--share-policy). */
    SharePolicy share_policy = SharePolicy::FreeForAll;

    /**
     * Applies the options that live inside SimConfig — the audit
     * flag (check.enabled) and the tenant share policy (mt.policy) —
     * so every execution path (runCell, SweepRunner, benches) maps
     * BenchOptions to the config the same way.
     */
    void applyTo(SimConfig &config) const;

    /** `workloads` when --workloads was given, else @p defaults. */
    std::vector<std::string>
    workloadsOr(const std::vector<std::string> &defaults) const
    {
        return workloads.empty() ? defaults : workloads;
    }
};

/**
 * Parses --scale tiny|small|medium|large|huge, --csv, --ratio R,
 * --seed N, --jobs N, --json PATH, --timeout S, --trace[=DIR],
 * --audit, --resume[=DIR], --workloads A,B,C,
 * --tenants A:0.5,B:0.5 and --share-policy
 * free-for-all|strict|proportional.
 *
 * An unknown argument prints the usage text to stderr and exits with an
 * error (fatal(), so a ScopedAbortCapture turns it into SimAbort).
 */
BenchOptions parseBenchArgs(int argc, char **argv);

/** Lower-case scale name ("tiny" ... "large") as --scale accepts it. */
std::string scaleName(WorkloadScale scale);

/** Runs one (workload, policy) cell of the evaluation matrix. */
RunResult runCell(const std::string &workload, Policy policy,
                  const BenchOptions &opt);

/**
 * Runs @p policies for every workload in @p workloads on opt.jobs
 * worker threads (see file doc for the determinism guarantee).
 *
 * A failed cell (fatal/panic/exception inside the simulation) is
 * warn()ed and left default-constructed in the returned map instead of
 * aborting the process; callers needing per-cell error detail should
 * drive SweepRunner directly.
 *
 * @return results[workload][policy].
 */
std::map<std::string, std::map<Policy, RunResult>> runMatrix(
    const std::vector<std::string> &workloads,
    const std::vector<Policy> &policies, const BenchOptions &opt,
    bool verbose = true);

/**
 * Geometric mean of @p values. Returns 0.0 (with a warn) on an empty
 * input or any non-positive value, so one failed sweep cell cannot
 * abort a whole bench binary.
 */
double geomean(const std::vector<double> &values);

/** Arithmetic mean (the paper reports arithmetic-average speedups). */
double amean(const std::vector<double> &values);

} // namespace bauvm

#endif // BAUVM_CORE_EXPERIMENT_H_
