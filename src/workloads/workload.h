/**
 * @file
 * Workload abstraction: a sequence of kernel launches over unified-
 * memory arrays, with functional validation.
 *
 * The 11 irregular workloads mirror the paper's GraphBIG selection
 * (BC, five BFS variants, two GC variants, KCORE, SSSP-TWC, PR); six
 * regular workloads provide the Fig 1 contrast.
 */

#ifndef BAUVM_WORKLOADS_WORKLOAD_H_
#define BAUVM_WORKLOADS_WORKLOAD_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/gpu/warp_program.h"
#include "src/workloads/device_array.h"

namespace bauvm
{

/** Problem-size presets for workload construction. Huge is the
 *  paper-scale oversubscription tier (349 MB+ graph footprints, built
 *  out of core via src/graph/stream). */
enum class WorkloadScale { Tiny, Small, Medium, Large, Huge };

/** A runnable workload: build -> (nextKernel, run)* -> validate. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Workload name as reported in figures (e.g. "BFS-TWC"). */
    virtual std::string name() const = 0;

    /** Generates inputs and device arrays. Called exactly once. */
    virtual void build(WorkloadScale scale, std::uint64_t seed) = 0;

    /**
     * Produces the next kernel launch, or false when the workload's
     * host-side loop has converged. Host logic between launches (e.g.
     * frontier checks) lives here.
     */
    virtual bool nextKernel(KernelInfo *out) = 0;

    /**
     * Checks the functional result against the reference CPU
     * implementation; calls panic() on mismatch.
     */
    virtual void validate() const = 0;

    DeviceAllocator &allocator() { return alloc_; }
    const DeviceAllocator &allocator() const { return alloc_; }
    std::uint64_t footprintBytes() const
    {
        return alloc_.footprintBytes();
    }

  protected:
    DeviceAllocator alloc_;
};

/**
 * Runs a workload functionally (no timing): every kernel's warps are
 * executed round-robin at op granularity, which respects barriers and
 * approximates SIMT interleaving. Useful for validation without the
 * simulator and for page-trace experiments.
 *
 * @param page_trace  optional; receives (block_id, page) for every
 *                    memory operand.
 */
void runFunctional(
    Workload &workload, std::uint64_t page_bytes = 64 * 1024,
    const std::function<void(std::uint32_t, PageNum)> &page_trace = {});

} // namespace bauvm

#endif // BAUVM_WORKLOADS_WORKLOAD_H_
