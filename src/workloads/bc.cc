/**
 * @file
 * Betweenness centrality (Brandes, single source) in two phases:
 * level-synchronous forward BFS accumulating shortest-path counts
 * (sigma), then a backward sweep accumulating dependencies (delta).
 * Warp-centric edge processing, as in GraphBIG's GPU implementation.
 */

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "src/graph/reference_algorithms.h"
#include "src/sim/log.h"
#include "src/workloads/graph_workload.h"
#include "src/workloads/workload_factories.h"

namespace bauvm
{
namespace
{

class BcWorkload : public GraphWorkloadBase
{
  public:
    std::string name() const override { return "BC"; }

    void
    build(WorkloadScale scale, std::uint64_t seed) override
    {
        buildGraph(scale, seed, false);
        const VertexId v = graph_->numVertices();
        d_level_ = DeviceArray<std::uint32_t>(alloc_, v, "bc_level");
        d_sigma_ = DeviceArray<double>(alloc_, v, "bc_sigma");
        d_delta_ = DeviceArray<double>(alloc_, v, "bc_delta");
        d_level_.fill(kInf);
        d_sigma_.fill(0.0);
        d_delta_.fill(0.0);
        d_level_[source_] = 0;
        d_sigma_[source_] = 1.0;
    }

    bool
    nextKernel(KernelInfo *out) override
    {
        BcWorkload *self = this;
        out->threads_per_block = kGraphTpb;
        out->regs_per_thread = 60;
        out->num_blocks = warpPerVertexBlocks();

        if (phase_ == Phase::Forward) {
            if (level_ > 0 && !changed_) {
                // Forward done; deepest level is level_.
                max_level_ = level_;
                phase_ = Phase::Backward;
                back_level_ = max_level_ > 0 ? max_level_ - 1 : 0;
            } else {
                changed_ = false;
                const std::uint32_t level = level_;
                out->name = "BC-fwd-level" + std::to_string(level);
                out->make_program = [self, level](WarpCtx ctx) {
                    return forwardWarp(ctx, self, level);
                };
                ++level_;
                return true;
            }
        }

        if (phase_ == Phase::Backward) {
            if (done_)
                return false;
            const std::uint32_t level = back_level_;
            out->name = "BC-bwd-level" + std::to_string(level);
            out->make_program = [self, level](WarpCtx ctx) {
                return backwardWarp(ctx, self, level);
            };
            if (back_level_ == 0) {
                done_ = true;
            } else {
                --back_level_;
            }
            return true;
        }
        return false;
    }

    void
    validate() const override
    {
        const auto ref = reference::bcFromSource(*graph_, source_);
        for (VertexId v = 0; v < graph_->numVertices(); ++v) {
            if (v == source_)
                continue; // Brandes excludes the source itself
            const double got = d_delta_[v];
            const double want = ref[v];
            const double err =
                std::abs(got - want) / std::max(1.0, std::abs(want));
            if (err > 1e-9) {
                panic("BC: delta mismatch at %u (got %f want %f)", v,
                      got, want);
            }
        }
    }

    static WarpProgram
    forwardWarp(WarpCtx ctx, BcWorkload *self, std::uint32_t level)
    {
        const std::uint32_t wpb = ctx.threads_per_block / ctx.warp_size;
        const VertexId v = ctx.block_id * wpb + ctx.warp_in_block;
        if (v >= self->graph_->numVertices())
            co_return;

        co_yield loadOf(self->d_level_.addr(v));
        if (self->d_level_[v] != level)
            co_return;
        co_yield loadOf(self->d_row_.addr(v),
                               self->d_row_.addr(v + 1),
                               self->d_sigma_.addr(v));
        const double sigma_v = self->d_sigma_[v];

        const std::uint64_t begin = self->graph_->rowOffsets()[v];
        const std::uint64_t end = self->graph_->rowOffsets()[v + 1];
        for (std::uint64_t e = begin; e < end; e += ctx.warp_size) {
            const std::uint64_t chunk =
                std::min<std::uint64_t>(ctx.warp_size, end - e);
            LaneVec ea;
            for (std::uint64_t i = 0; i < chunk; ++i)
                ea.push_back(self->d_col_.addr(e + i));
            co_yield WarpOp::load(std::move(ea));

            LaneVec la;
            for (std::uint64_t i = 0; i < chunk; ++i) {
                la.push_back(
                    self->d_level_.addr(self->d_col_[e + i]));
            }
            co_yield WarpOp::load(std::move(la));

            LaneVec sa;
            for (std::uint64_t i = 0; i < chunk; ++i) {
                const VertexId nb = self->d_col_[e + i];
                if (self->d_level_[nb] == kInf) {
                    self->d_level_[nb] = level + 1;
                    self->changed_ = true;
                    sa.push_back(self->d_level_.addr(nb));
                }
                if (self->d_level_[nb] == level + 1) {
                    self->d_sigma_[nb] += sigma_v;
                    sa.push_back(self->d_sigma_.addr(nb));
                }
            }
            if (!sa.empty())
                co_yield WarpOp::atomic(std::move(sa));
        }
    }

    static WarpProgram
    backwardWarp(WarpCtx ctx, BcWorkload *self, std::uint32_t level)
    {
        const std::uint32_t wpb = ctx.threads_per_block / ctx.warp_size;
        const VertexId v = ctx.block_id * wpb + ctx.warp_in_block;
        if (v >= self->graph_->numVertices())
            co_return;

        co_yield loadOf(self->d_level_.addr(v));
        if (self->d_level_[v] != level)
            co_return;
        co_yield loadOf(self->d_row_.addr(v),
                               self->d_row_.addr(v + 1),
                               self->d_sigma_.addr(v));
        const double sigma_v = self->d_sigma_[v];
        double delta_v = 0.0;

        const std::uint64_t begin = self->graph_->rowOffsets()[v];
        const std::uint64_t end = self->graph_->rowOffsets()[v + 1];
        for (std::uint64_t e = begin; e < end; e += ctx.warp_size) {
            const std::uint64_t chunk =
                std::min<std::uint64_t>(ctx.warp_size, end - e);
            LaneVec ea;
            for (std::uint64_t i = 0; i < chunk; ++i)
                ea.push_back(self->d_col_.addr(e + i));
            co_yield WarpOp::load(std::move(ea));

            LaneVec la;
            for (std::uint64_t i = 0; i < chunk; ++i) {
                la.push_back(
                    self->d_level_.addr(self->d_col_[e + i]));
            }
            co_yield WarpOp::load(std::move(la));

            LaneVec da;
            bool any = false;
            for (std::uint64_t i = 0; i < chunk; ++i) {
                const VertexId nb = self->d_col_[e + i];
                if (self->d_level_[nb] == level + 1) {
                    da.push_back(self->d_sigma_.addr(nb));
                    da.push_back(self->d_delta_.addr(nb));
                    any = true;
                }
            }
            if (any)
                co_yield WarpOp::load(std::move(da));
            for (std::uint64_t i = 0; i < chunk; ++i) {
                const VertexId nb = self->d_col_[e + i];
                if (self->d_level_[nb] == level + 1 &&
                    self->d_sigma_[nb] > 0.0) {
                    delta_v += sigma_v / self->d_sigma_[nb] *
                               (1.0 + self->d_delta_[nb]);
                }
            }
        }
        if (v != self->source_) {
            self->d_delta_[v] = delta_v;
            co_yield storeOf(self->d_delta_.addr(v));
        }
    }

  private:
    enum class Phase { Forward, Backward };

    DeviceArray<std::uint32_t> d_level_;
    DeviceArray<double> d_sigma_;
    DeviceArray<double> d_delta_;
    Phase phase_ = Phase::Forward;
    std::uint32_t level_ = 0;
    std::uint32_t back_level_ = 0;
    std::uint32_t max_level_ = 0;
    bool changed_ = false;
    bool done_ = false;
};

} // namespace

std::unique_ptr<Workload>
makeBcWorkload()
{
    return std::make_unique<BcWorkload>();
}

} // namespace bauvm
