#include "src/workloads/workload.h"

#include <algorithm>
#include <numeric>
#include <span>

#include "src/graph/generator.h"
#include "src/graph/graph_cache.h"
#include "src/sim/log.h"
#include "src/workloads/graph_workload.h"
#include "src/workloads/workload_registry.h"

namespace bauvm
{

GraphScale
graphScale(WorkloadScale scale)
{
    switch (scale) {
      case WorkloadScale::Tiny:
        return GraphScale{4096, 32768, 4};
      case WorkloadScale::Small:
        return GraphScale{32768, 524288, 3};
      case WorkloadScale::Medium:
        return GraphScale{65536, 1 << 20, 2};
      case WorkloadScale::Large:
        return GraphScale{262144, 4 << 20, 2};
    }
    fatal("graphScale: bad scale");
}

namespace
{

/** Generates the R-MAT input and degree-relabels it (see below). */
CsrGraph
buildRelabeledRmat(const RmatParams &params, bool weighted)
{
    CsrGraph raw = generateRmat(params);

    // Relabel vertices by descending degree. Real GraphBIG inputs
    // (crawled social/web graphs) have strong id locality — hot hub
    // data clusters on few pages — whereas raw R-MAT ids scatter
    // maximally. The relabeling restores that property.
    const VertexId n = raw.numVertices();
    std::vector<VertexId> by_degree(n);
    std::iota(by_degree.begin(), by_degree.end(), 0);
    std::stable_sort(by_degree.begin(), by_degree.end(),
                     [&raw](VertexId a, VertexId b) {
                         return raw.degree(a) > raw.degree(b);
                     });
    std::vector<VertexId> new_id(n);
    for (VertexId i = 0; i < n; ++i)
        new_id[by_degree[i]] = i;
    std::vector<std::pair<VertexId, VertexId>> edges;
    std::vector<std::uint32_t> wts;
    edges.reserve(raw.numEdges());
    for (VertexId v = 0; v < n; ++v) {
        const auto nbrs = raw.neighbors(v);
        const auto ew = weighted ? raw.edgeWeights(v)
                                 : std::span<const std::uint32_t>{};
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
            edges.emplace_back(new_id[v], new_id[nbrs[i]]);
            if (weighted)
                wts.push_back(ew[i]);
        }
    }
    CsrGraph graph = CsrGraph::fromEdges(n, edges, wts);
    graph.validate();
    return graph;
}

} // namespace

void
GraphWorkloadBase::buildGraph(WorkloadScale scale, std::uint64_t seed,
                              bool weighted, double edge_factor)
{
    const GraphScale gs = graphScale(scale);
    RmatParams params;
    params.num_vertices = gs.vertices;
    params.num_edges = static_cast<std::uint64_t>(
        static_cast<double>(gs.edges) * edge_factor);
    params.undirected = true;
    params.weighted = weighted;
    params.seed = seed;

    // Memoized across sweep cells: every policy cell of a workload
    // uses the same (workload, seed)-derived seed by design, so the
    // generated+relabeled graph is identical and shareable.
    const GraphBuildCache::Key key{params.num_vertices,
                                   params.num_edges, seed, weighted};
    graph_ = GraphBuildCache::instance().getOrBuild(
        key, [&] { return buildRelabeledRmat(params, weighted); });

    d_row_ = DeviceArray<std::uint64_t>(
        alloc_, graph_->numVertices() + 1, "row_offsets");
    std::copy(graph_->rowOffsets().begin(), graph_->rowOffsets().end(),
              d_row_.host().begin());
    d_col_ = DeviceArray<std::uint64_t>(alloc_, graph_->numEdges(),
                                        "col_indices");
    std::copy(graph_->colIndices().begin(), graph_->colIndices().end(),
              d_col_.host().begin());
    if (weighted) {
        d_weight_ = DeviceArray<std::uint64_t>(
            alloc_, graph_->numEdges(), "edge_weights");
        std::copy(graph_->weights().begin(), graph_->weights().end(),
                  d_weight_.host().begin());
    }

    // Start traversals from the highest-degree vertex so they reach
    // most of the graph.
    VertexId best = 0;
    for (VertexId v = 1; v < graph_->numVertices(); ++v) {
        if (graph_->degree(v) > graph_->degree(best))
            best = v;
    }
    source_ = best;
}

const std::vector<std::string> &
irregularWorkloadNames()
{
    static const std::vector<std::string> names =
        WorkloadRegistry::instance().enumerate(WorkloadKind::Irregular);
    return names;
}

const std::vector<std::string> &
regularWorkloadNames()
{
    static const std::vector<std::string> names =
        WorkloadRegistry::instance().enumerate(WorkloadKind::Regular);
    return names;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name)
{
    return WorkloadRegistry::instance().create(name);
}

void
runFunctional(
    Workload &workload, std::uint64_t page_bytes,
    const std::function<void(std::uint32_t, PageNum)> &page_trace)
{
    KernelInfo kernel;
    while (workload.nextKernel(&kernel)) {
        const std::uint32_t warps_per_block = kernel.warpsPerBlock(32);
        for (std::uint32_t b = 0; b < kernel.num_blocks; ++b) {
            // Round-robin the block's warps at op granularity so
            // barriers and intra-block interleaving behave like SIMT.
            std::vector<WarpProgram> warps;
            std::vector<bool> alive(warps_per_block, true);
            warps.reserve(warps_per_block);
            for (std::uint32_t w = 0; w < warps_per_block; ++w) {
                WarpCtx ctx;
                ctx.block_id = b;
                ctx.warp_in_block = w;
                ctx.warp_size = 32;
                ctx.threads_per_block = kernel.threads_per_block;
                ctx.num_blocks = kernel.num_blocks;
                warps.push_back(kernel.make_program(ctx));
            }
            bool progress = true;
            while (progress) {
                progress = false;
                for (std::uint32_t w = 0; w < warps_per_block; ++w) {
                    if (!alive[w])
                        continue;
                    if (!warps[w].advance()) {
                        alive[w] = false;
                        continue;
                    }
                    progress = true;
                    if (page_trace) {
                        const WarpOp &op = warps[w].current();
                        for (VAddr a : op.addrs)
                            page_trace(b, a / page_bytes);
                    }
                }
            }
        }
    }
}

} // namespace bauvm
