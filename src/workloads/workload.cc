#include "src/workloads/workload.h"

#include <algorithm>
#include <numeric>
#include <span>

#include "src/graph/generator.h"
#include "src/graph/graph_cache.h"
#include "src/graph/stream/csr_stream_builder.h"
#include "src/sim/log.h"
#include "src/workloads/graph_workload.h"
#include "src/workloads/workload_registry.h"

namespace bauvm
{

GraphScale
graphScale(WorkloadScale scale)
{
    switch (scale) {
      case WorkloadScale::Tiny:
        return GraphScale{4096, 32768, 4};
      case WorkloadScale::Small:
        return GraphScale{32768, 524288, 3};
      case WorkloadScale::Medium:
        return GraphScale{65536, 1 << 20, 2};
      case WorkloadScale::Large:
        return GraphScale{262144, 4 << 20, 2};
      case WorkloadScale::Huge:
        // Paper-scale tier: ~2M vertices, ~21M raw edges (~42M
        // directed after undirected doubling) put the shared CSR at
        // 349 MB+ of unified memory — the paper's largest real
        // dataset regime. Builds at this tier go through the
        // external-memory path (src/graph/stream), never holding the
        // edge list in host RAM.
        return GraphScale{2097152, 20971520, 2};
    }
    fatal("graphScale: bad scale");
}

namespace
{

/** Generates the R-MAT input and degree-relabels it, choosing the
 *  in-core or external-memory path by edge count (both paths are
 *  bit-identical; the streamed one bounds host RAM). */
CsrGraph
buildRelabeledRmat(const RmatParams &params, bool streamed)
{
    if (streamed) {
        const GraphStreamConfig &cfg = graphStreamConfig();
        StreamCsrOptions opt;
        opt.edges_per_block = cfg.edges_per_block;
        opt.scratch_bytes = cfg.scratch_bytes;
        opt.relabel_by_degree = true;
        return buildCsrStreamed(params, opt);
    }
    return relabelByDegree(generateRmat(params));
}

} // namespace

void
GraphWorkloadBase::buildGraph(WorkloadScale scale, std::uint64_t seed,
                              bool weighted, double edge_factor)
{
    const GraphScale gs = graphScale(scale);
    RmatParams params;
    params.num_vertices = gs.vertices;
    params.num_edges = static_cast<std::uint64_t>(
        static_cast<double>(gs.edges) * edge_factor);
    params.undirected = true;
    params.weighted = weighted;
    params.seed = seed;

    // Memoized across sweep cells: every policy cell of a workload
    // uses the same (workload, seed)-derived seed by design, so the
    // generated+relabeled graph is identical and shareable.
    const GraphStreamConfig &stream_cfg = graphStreamConfig();
    const bool streamed =
        params.num_edges >= stream_cfg.stream_threshold_edges;
    const GraphBuildCache::Key key{
        params.num_vertices,
        params.num_edges,
        seed,
        weighted,
        streamed,
        streamed ? stream_cfg.edges_per_block : 0};
    graph_ = GraphBuildCache::instance().getOrBuild(
        key, [&] { return buildRelabeledRmat(params, streamed); });

    d_row_ = DeviceArray<std::uint64_t>(
        alloc_, graph_->numVertices() + 1, "row_offsets");
    std::copy(graph_->rowOffsets().begin(), graph_->rowOffsets().end(),
              d_row_.host().begin());
    d_col_ = DeviceArray<std::uint64_t>(alloc_, graph_->numEdges(),
                                        "col_indices");
    std::copy(graph_->colIndices().begin(), graph_->colIndices().end(),
              d_col_.host().begin());
    if (weighted) {
        d_weight_ = DeviceArray<std::uint64_t>(
            alloc_, graph_->numEdges(), "edge_weights");
        std::copy(graph_->weights().begin(), graph_->weights().end(),
                  d_weight_.host().begin());
    }

    // Start traversals from the highest-degree vertex so they reach
    // most of the graph.
    VertexId best = 0;
    for (VertexId v = 1; v < graph_->numVertices(); ++v) {
        if (graph_->degree(v) > graph_->degree(best))
            best = v;
    }
    source_ = best;
}

void
runFunctional(
    Workload &workload, std::uint64_t page_bytes,
    const std::function<void(std::uint32_t, PageNum)> &page_trace)
{
    KernelInfo kernel;
    while (workload.nextKernel(&kernel)) {
        const std::uint32_t warps_per_block = kernel.warpsPerBlock(32);
        for (std::uint32_t b = 0; b < kernel.num_blocks; ++b) {
            // Round-robin the block's warps at op granularity so
            // barriers and intra-block interleaving behave like SIMT.
            std::vector<WarpProgram> warps;
            std::vector<bool> alive(warps_per_block, true);
            warps.reserve(warps_per_block);
            for (std::uint32_t w = 0; w < warps_per_block; ++w) {
                WarpCtx ctx;
                ctx.block_id = b;
                ctx.warp_in_block = w;
                ctx.warp_size = 32;
                ctx.threads_per_block = kernel.threads_per_block;
                ctx.num_blocks = kernel.num_blocks;
                warps.push_back(kernel.make_program(ctx));
            }
            bool progress = true;
            while (progress) {
                progress = false;
                for (std::uint32_t w = 0; w < warps_per_block; ++w) {
                    if (!alive[w])
                        continue;
                    if (!warps[w].advance()) {
                        alive[w] = false;
                        continue;
                    }
                    progress = true;
                    if (page_trace) {
                        const WarpOp &op = warps[w].current();
                        for (VAddr a : op.addrs)
                            page_trace(b, a / page_bytes);
                    }
                }
            }
        }
    }
}

} // namespace bauvm
