/**
 * @file
 * Shared infrastructure for the GraphBIG-style graph workloads: scale
 * presets, CSR device arrays, and address-building helpers used by the
 * warp programs.
 */

#ifndef BAUVM_WORKLOADS_GRAPH_WORKLOAD_H_
#define BAUVM_WORKLOADS_GRAPH_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/graph/csr_graph.h"
#include "src/graph/generator.h"
#include "src/workloads/device_array.h"
#include "src/workloads/workload.h"

namespace bauvm
{

/** Graph size per scale preset. */
struct GraphScale {
    VertexId vertices;
    std::uint64_t edges;       //!< undirected edge count before doubling
    std::uint32_t pr_iterations;
};

/** Maps a WorkloadScale to concrete graph dimensions. */
GraphScale graphScale(WorkloadScale scale);

/** Marker for "not yet discovered/colored/finished" in u32 arrays. */
constexpr std::uint32_t kInf = 0xffffffffu;

/** Threads per block used by every graph kernel. */
constexpr std::uint32_t kGraphTpb = 256;

/**
 * Base class holding the CSR structure in unified memory.
 *
 * Register pressure (52-64 regs/thread at 256 threads/block) is chosen
 * so that, as in the paper, occupancy is simultaneously thread- and
 * register-limited and baseline Virtual Thread has no spare capacity
 * for a free extra block.
 */
class GraphWorkloadBase : public Workload
{
  public:
    const CsrGraph &graph() const { return *graph_; }
    VertexId source() const { return source_; }

  protected:
    /**
     * Generates the R-MAT input and uploads CSR arrays.
     * @param edge_factor scales the edge count of the preset (coloring
     *        uses a sparser graph: its round count tracks the core
     *        density, and GraphBIG's GC inputs are sparser too).
     */
    void buildGraph(WorkloadScale scale, std::uint64_t seed,
                    bool weighted, double edge_factor = 1.0);

    /** Number of blocks for a one-thread-per-vertex kernel. */
    std::uint32_t
    vertexBlocks() const
    {
        return (graph_->numVertices() + kGraphTpb - 1) / kGraphTpb;
    }

    /** Number of blocks for a one-warp-per-vertex kernel. */
    std::uint32_t
    warpPerVertexBlocks(std::uint32_t warp_size = 32) const
    {
        const std::uint32_t warps_per_block = kGraphTpb / warp_size;
        return (graph_->numVertices() + warps_per_block - 1) /
               warps_per_block;
    }

    // Immutable after build; shared across sweep cells of the same
    // (workload, seed) via GraphBuildCache, so subclasses must never
    // mutate it (per-run state belongs in the device arrays).
    std::shared_ptr<const CsrGraph> graph_;
    VertexId source_ = 0;
    // GraphBIG stores 64-bit vertex ids and weights; the device arrays
    // use 8-byte elements accordingly (this also gives the workloads
    // their paper-like footprints).
    DeviceArray<std::uint64_t> d_row_;
    DeviceArray<std::uint64_t> d_col_;
    DeviceArray<std::uint64_t> d_weight_; //!< weighted graphs only
};

} // namespace bauvm

#endif // BAUVM_WORKLOADS_GRAPH_WORKLOAD_H_
