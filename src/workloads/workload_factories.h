/**
 * @file
 * Internal factory declarations wiring the registry in workload.cc to
 * the per-algorithm translation units.
 */

#ifndef BAUVM_WORKLOADS_WORKLOAD_FACTORIES_H_
#define BAUVM_WORKLOADS_WORKLOAD_FACTORIES_H_

#include <memory>
#include <string>

#include "src/workloads/workload.h"

namespace bauvm
{

/** @param variant one of DWC, TA, TF, TTC, TWC. */
std::unique_ptr<Workload> makeBfsWorkload(const std::string &variant);
std::unique_ptr<Workload> makeBcWorkload();
/** @param variant one of DTC, TTC. */
std::unique_ptr<Workload> makeGcWorkload(const std::string &variant);
std::unique_ptr<Workload> makeKcoreWorkload();
std::unique_ptr<Workload> makeSsspWorkload();
std::unique_ptr<Workload> makePageRankWorkload();
/** @param name one of CFD, DWT, GM, H3D, HS, LUD. */
std::unique_ptr<Workload> makeRegularWorkload(const std::string &name);

// The frontier-phase suite (src/workloads/frontier/).
std::unique_ptr<Workload> makeHybridBfsWorkload();
std::unique_ptr<Workload> makeComponentsWorkload();
std::unique_ptr<Workload> makeTriangleCountWorkload();
std::unique_ptr<Workload> makeKtrussWorkload();

} // namespace bauvm

#endif // BAUVM_WORKLOADS_WORKLOAD_FACTORIES_H_
