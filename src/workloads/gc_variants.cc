/**
 * @file
 * Graph coloring via speculative assignment plus conflict resolution
 * (the scheme GraphBIG's GPU coloring uses): each round, every
 * uncolored vertex tentatively takes the smallest color unused by its
 * colored neighbours; conflicts between uncolored neighbours that chose
 * the same color are resolved in favour of the higher vertex id.
 *
 * Two traversal variants, as in the paper:
 *  - DTC (data-thread-centric): threads own vertices in data order.
 *  - TTC (topological-thread-centric): threads own vertices in
 *    degree-descending (topological priority) order through an
 *    indirection array, which changes the access pattern.
 */

#include <algorithm>
#include <numeric>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/graph/reference_algorithms.h"
#include "src/sim/log.h"
#include "src/workloads/graph_workload.h"
#include "src/workloads/workload_factories.h"

namespace bauvm
{
namespace
{

class GcWorkload : public GraphWorkloadBase
{
  public:
    explicit GcWorkload(std::string variant)
        : variant_(std::move(variant))
    {
    }

    std::string name() const override { return "GC-" + variant_; }

    void
    build(WorkloadScale scale, std::uint64_t seed) override
    {
        buildGraph(scale, seed, false, /*edge_factor=*/0.5);
        const VertexId v = graph_->numVertices();
        d_color_ = DeviceArray<std::uint32_t>(alloc_, v, "gc_color");
        d_tentative_ =
            DeviceArray<std::uint32_t>(alloc_, v, "gc_tentative");
        d_color_.fill(kInf);
        d_tentative_.fill(kInf);
        stamp_.assign(v, 0);
        if (variant_ == "TTC") {
            // Topological order: vertices in BFS-traversal order from
            // the high-degree source (unreached vertices appended in id
            // order), as a topological-thread-centric kernel would
            // consume them.
            d_order_ = DeviceArray<VertexId>(alloc_, v, "gc_order");
            const auto levels = reference::bfsLevels(*graph_, source_);
            std::vector<VertexId> order(v);
            std::iota(order.begin(), order.end(), 0);
            std::stable_sort(order.begin(), order.end(),
                             [&levels](VertexId a, VertexId b) {
                                 return levels[a] < levels[b];
                             });
            for (VertexId i = 0; i < v; ++i)
                d_order_[i] = order[i];
        }
        uncolored_ = v;
    }

    bool
    nextKernel(KernelInfo *out) override
    {
        if (uncolored_ == 0)
            return false;
        GcWorkload *self = this;
        out->threads_per_block = kGraphTpb;
        out->regs_per_thread = 52;
        out->num_blocks = vertexBlocks();

        const std::uint32_t round = round_;
        if (next_is_assign_) {
            out->name = name() + "-assign-r" + std::to_string(round);
            out->make_program = [self, round](WarpCtx ctx) {
                return assignWarp(ctx, self, round);
            };
            next_is_assign_ = false;
        } else {
            out->name = name() + "-resolve-r" + std::to_string(round);
            out->make_program = [self, round](WarpCtx ctx) {
                return resolveWarp(ctx, self, round);
            };
            next_is_assign_ = true;
            ++round_;
        }
        return true;
    }

    void
    validate() const override
    {
        std::vector<std::uint32_t> colors(graph_->numVertices());
        for (VertexId v = 0; v < graph_->numVertices(); ++v) {
            colors[v] = d_color_[v];
            if (colors[v] == kInf)
                panic("GC: vertex %u left uncolored", v);
        }
        if (!reference::isProperColoring(*graph_, colors))
            panic("GC: produced an improper coloring");
    }

    /**
     * Jones-Plassmann random priority: the winner among same-color
     * speculators is the neighbour with the larger hashed priority
     * (ties broken by id). Random priorities bound the expected round
     * count at O(log V); raw ids create long losing chains.
     */
    static bool
    outranks(VertexId a, VertexId b)
    {
        auto mix = [](std::uint64_t x) {
            x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
            x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
            return x ^ (x >> 31);
        };
        const std::uint64_t pa = mix(a), pb = mix(b);
        return pa != pb ? pa > pb : a > b;
    }

    /** Maps a thread id to the vertex it owns, per variant. */
    VertexId
    ownedVertex(std::uint32_t tid) const
    {
        return variant_ == "TTC" ? d_order_[tid] : tid;
    }

    /** The extra load address for the TTC indirection, if any. */
    void
    appendOwnerLoads(std::uint32_t tid, LaneVec *a) const
    {
        if (variant_ == "TTC")
            a->push_back(d_order_.addr(tid));
    }

    static WarpProgram
    assignWarp(WarpCtx ctx, GcWorkload *self, std::uint32_t round)
    {
        const VertexId v_count = self->graph_->numVertices();
        std::vector<VertexId> owned;
        LaneVec a;
        for (std::uint32_t lane = 0; lane < ctx.laneCount(); ++lane) {
            const std::uint32_t tid = ctx.globalThread(lane);
            if (tid < v_count) {
                self->appendOwnerLoads(tid, &a);
                const VertexId v = self->ownedVertex(tid);
                owned.push_back(v);
                a.push_back(self->d_color_.addr(v));
            }
        }
        if (owned.empty())
            co_return;
        co_yield WarpOp::load(std::move(a));

        std::vector<VertexId> active;
        for (VertexId v : owned) {
            if (self->d_color_[v] == kInf)
                active.push_back(v);
        }
        if (active.empty())
            co_return;

        a = {};
        for (VertexId v : active) {
            a.push_back(self->d_row_.addr(v));
            a.push_back(self->d_row_.addr(v + 1));
        }
        co_yield WarpOp::load(std::move(a));

        // Divergent lockstep neighbour scan gathering used colors.
        std::vector<std::uint64_t> pos, end;
        std::vector<std::unordered_set<std::uint32_t>> used(
            active.size());
        for (VertexId v : active) {
            pos.push_back(self->graph_->rowOffsets()[v]);
            end.push_back(self->graph_->rowOffsets()[v + 1]);
        }
        while (true) {
            LaneVec ea;
            std::vector<std::size_t> who;
            for (std::size_t i = 0; i < active.size(); ++i) {
                if (pos[i] < end[i]) {
                    ea.push_back(self->d_col_.addr(pos[i]));
                    who.push_back(i);
                }
            }
            if (who.empty())
                break;
            co_yield WarpOp::load(std::move(ea));

            LaneVec ca;
            std::vector<std::pair<std::size_t, VertexId>> nbrs;
            for (std::size_t i : who) {
                const VertexId nb = self->d_col_[pos[i]];
                ++pos[i];
                nbrs.emplace_back(i, nb);
                ca.push_back(self->d_color_.addr(nb));
            }
            co_yield WarpOp::load(std::move(ca));
            for (const auto &[i, nb] : nbrs) {
                if (self->d_color_[nb] != kInf)
                    used[i].insert(self->d_color_[nb]);
            }
        }

        LaneVec sa;
        for (std::size_t i = 0; i < active.size(); ++i) {
            std::uint32_t c = 0;
            while (used[i].count(c))
                ++c;
            self->d_tentative_[active[i]] = c;
            // Round stamp (bookkeeping the hardware would keep in the
            // tentative word itself): lets the resolve phase decide
            // from round-start state, independent of warp order.
            self->stamp_[active[i]] = round + 1;
            sa.push_back(self->d_tentative_.addr(active[i]));
        }
        co_yield WarpOp::store(std::move(sa));
    }

    static WarpProgram
    resolveWarp(WarpCtx ctx, GcWorkload *self, std::uint32_t round)
    {
        const VertexId v_count = self->graph_->numVertices();
        std::vector<VertexId> owned;
        LaneVec a;
        for (std::uint32_t lane = 0; lane < ctx.laneCount(); ++lane) {
            const std::uint32_t tid = ctx.globalThread(lane);
            if (tid < v_count) {
                self->appendOwnerLoads(tid, &a);
                const VertexId v = self->ownedVertex(tid);
                owned.push_back(v);
                a.push_back(self->d_color_.addr(v));
                a.push_back(self->d_tentative_.addr(v));
            }
        }
        if (owned.empty())
            co_return;
        co_yield WarpOp::load(std::move(a));

        std::vector<VertexId> active;
        for (VertexId v : owned) {
            if (self->d_color_[v] == kInf)
                active.push_back(v);
        }
        if (active.empty())
            co_return;

        a = {};
        for (VertexId v : active) {
            a.push_back(self->d_row_.addr(v));
            a.push_back(self->d_row_.addr(v + 1));
        }
        co_yield WarpOp::load(std::move(a));

        std::vector<std::uint64_t> pos, end;
        std::vector<bool> loses(active.size(), false);
        for (VertexId v : active) {
            pos.push_back(self->graph_->rowOffsets()[v]);
            end.push_back(self->graph_->rowOffsets()[v + 1]);
        }
        while (true) {
            LaneVec ea;
            std::vector<std::size_t> who;
            for (std::size_t i = 0; i < active.size(); ++i) {
                if (pos[i] < end[i]) {
                    ea.push_back(self->d_col_.addr(pos[i]));
                    who.push_back(i);
                }
            }
            if (who.empty())
                break;
            co_yield WarpOp::load(std::move(ea));

            LaneVec ta;
            std::vector<std::pair<std::size_t, VertexId>> nbrs;
            for (std::size_t i : who) {
                const VertexId nb = self->d_col_[pos[i]];
                ++pos[i];
                nbrs.emplace_back(i, nb);
                ta.push_back(self->d_color_.addr(nb));
                ta.push_back(self->d_tentative_.addr(nb));
            }
            co_yield WarpOp::load(std::move(ta));
            for (const auto &[i, nb] : nbrs) {
                const VertexId v = active[i];
                // Conflict iff the neighbour also speculated in this
                // round (fresh stamp) with the same color and outranks
                // us; using the stamp rather than d_color_ keeps the
                // decision independent of intra-round write order.
                if (self->stamp_[nb] == round + 1 &&
                    self->d_tentative_[nb] ==
                        self->d_tentative_[v] &&
                    outranks(nb, v)) {
                    loses[i] = true;
                }
            }
        }

        LaneVec sa;
        for (std::size_t i = 0; i < active.size(); ++i) {
            if (!loses[i]) {
                self->d_color_[active[i]] =
                    self->d_tentative_[active[i]];
                --self->uncolored_;
                sa.push_back(self->d_color_.addr(active[i]));
            }
        }
        if (!sa.empty())
            co_yield WarpOp::store(std::move(sa));
    }

  private:
    std::string variant_;
    DeviceArray<std::uint32_t> d_color_;
    DeviceArray<std::uint32_t> d_tentative_;
    DeviceArray<VertexId> d_order_;
    std::vector<std::uint32_t> stamp_; //!< host-side round freshness
    VertexId uncolored_ = 0;
    std::uint32_t round_ = 0;
    bool next_is_assign_ = true;
};

} // namespace

std::unique_ptr<Workload>
makeGcWorkload(const std::string &variant)
{
    return std::make_unique<GcWorkload>(variant);
}

} // namespace bauvm
