/**
 * @file
 * The five GraphBIG BFS implementations the paper evaluates:
 *
 *  - TTC (topological-thread-centric): one thread per vertex scans the
 *    level array every iteration; discovered neighbours are written
 *    directly. Divergent per-lane edge walks.
 *  - TA (topological-atomic): like TTC but neighbour updates use atomic
 *    operations.
 *  - TWC (topological-warp-centric): one warp per vertex; the warp's
 *    lanes cooperatively stream the vertex's edge list (coalesced).
 *  - TF (topological-frontier): explicit frontier queue with an atomic
 *    tail counter.
 *  - DWC (data-warp-centric): edge-centric passes over the raw edge
 *    list; the paper singles this variant out for its extremely
 *    divergent accesses and constant page thrashing.
 */

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "src/graph/reference_algorithms.h"
#include "src/sim/log.h"
#include "src/workloads/graph_workload.h"
#include "src/workloads/workload_factories.h"

namespace bauvm
{
namespace
{

class BfsWorkload : public GraphWorkloadBase
{
  public:
    explicit BfsWorkload(std::string variant)
        : variant_(std::move(variant))
    {
    }

    std::string name() const override { return "BFS-" + variant_; }

    void
    build(WorkloadScale scale, std::uint64_t seed) override
    {
        buildGraph(scale, seed, false);
        const VertexId v = graph_->numVertices();
        d_level_ = DeviceArray<std::uint32_t>(alloc_, v, "bfs_level");
        d_level_.fill(kInf);
        d_level_[source_] = 0;

        if (variant_ == "TF") {
            d_frontier_ =
                DeviceArray<std::uint64_t>(alloc_, v, "bfs_frontier");
            d_next_frontier_ =
                DeviceArray<std::uint64_t>(alloc_, v, "bfs_next_frontier");
            d_counter_ =
                DeviceArray<std::uint32_t>(alloc_, 1, "bfs_counter");
            d_frontier_[0] = source_;
            frontier_size_ = 1;
        } else if (variant_ == "DWC") {
            const std::uint64_t e = graph_->numEdges();
            d_esrc_ = DeviceArray<std::uint64_t>(alloc_, e, "bfs_edge_src");
            d_edst_ = DeviceArray<std::uint64_t>(alloc_, e, "bfs_edge_dst");
            std::uint64_t idx = 0;
            for (VertexId s = 0; s < v; ++s) {
                for (VertexId d : graph_->neighbors(s)) {
                    d_esrc_[idx] = s;
                    d_edst_[idx] = d;
                    ++idx;
                }
            }
        }
    }

    bool
    nextKernel(KernelInfo *out) override
    {
        if (variant_ == "TF") {
            // Host-side epilogue of the previous level: swap frontiers.
            if (level_ > 0) {
                std::swap(d_frontier_, d_next_frontier_);
                frontier_size_ = next_size_;
                next_size_ = 0;
            }
            if (frontier_size_ == 0)
                return false;
        } else if (level_ > 0 && !changed_) {
            return false;
        }
        changed_ = false;

        out->name = name() + "-level" + std::to_string(level_);
        out->threads_per_block = kGraphTpb;
        out->regs_per_thread = 56;
        const std::uint32_t level = level_;
        BfsWorkload *self = this;

        if (variant_ == "TTC" || variant_ == "TA") {
            const bool atomic = variant_ == "TA";
            out->num_blocks = vertexBlocks();
            out->make_program = [self, level, atomic](WarpCtx ctx) {
                return topoThreadWarp(ctx, self, level, atomic);
            };
        } else if (variant_ == "TWC") {
            out->num_blocks = warpPerVertexBlocks();
            out->make_program = [self, level](WarpCtx ctx) {
                return twcWarp(ctx, self, level);
            };
        } else if (variant_ == "TF") {
            const std::uint32_t fsize = frontier_size_;
            out->num_blocks =
                (fsize + kGraphTpb - 1) / kGraphTpb;
            out->make_program = [self, level, fsize](WarpCtx ctx) {
                return frontierWarp(ctx, self, level, fsize);
            };
        } else if (variant_ == "DWC") {
            const auto edges =
                static_cast<std::uint32_t>(graph_->numEdges());
            out->num_blocks = (edges + kGraphTpb - 1) / kGraphTpb;
            out->make_program = [self, level](WarpCtx ctx) {
                return edgeCentricWarp(ctx, self, level);
            };
        } else {
            fatal("BfsWorkload: unknown variant '%s'", variant_.c_str());
        }
        ++level_;
        return true;
    }

    void
    validate() const override
    {
        const auto ref = reference::bfsLevels(*graph_, source_);
        for (VertexId v = 0; v < graph_->numVertices(); ++v) {
            const std::uint32_t got = d_level_[v];
            const std::uint32_t want =
                ref[v] == reference::kInfinity ? kInf : ref[v];
            if (got != want) {
                panic("%s: level mismatch at vertex %u (got %u want %u)",
                      name().c_str(), v, got, want);
            }
        }
    }

    // Kernel bodies are static member coroutines so they can touch the
    // workload's arrays directly.

    /** TTC/TA: one thread per vertex, lockstep divergent edge walk. */
    static WarpProgram
    topoThreadWarp(WarpCtx ctx, BfsWorkload *self, std::uint32_t level,
                   bool atomic)
    {
        const VertexId v_count = self->graph_->numVertices();
        std::vector<VertexId> owned;
        LaneVec a;
        for (std::uint32_t lane = 0; lane < ctx.laneCount(); ++lane) {
            const VertexId v = ctx.globalThread(lane);
            if (v < v_count) {
                owned.push_back(v);
                a.push_back(self->d_level_.addr(v));
            }
        }
        if (owned.empty())
            co_return;
        co_yield WarpOp::load(std::move(a));

        std::vector<VertexId> active;
        for (VertexId v : owned) {
            if (self->d_level_[v] == level)
                active.push_back(v);
        }
        if (active.empty())
            co_return;

        a = {};
        for (VertexId v : active) {
            a.push_back(self->d_row_.addr(v));
            a.push_back(self->d_row_.addr(v + 1));
        }
        co_yield WarpOp::load(std::move(a));

        std::vector<std::uint64_t> pos, end;
        for (VertexId v : active) {
            pos.push_back(self->graph_->rowOffsets()[v]);
            end.push_back(self->graph_->rowOffsets()[v + 1]);
        }

        while (true) {
            LaneVec ea;
            std::vector<std::size_t> who;
            for (std::size_t i = 0; i < active.size(); ++i) {
                if (pos[i] < end[i]) {
                    ea.push_back(self->d_col_.addr(pos[i]));
                    who.push_back(i);
                }
            }
            if (who.empty())
                break;
            co_yield WarpOp::load(std::move(ea));

            LaneVec la;
            std::vector<VertexId> nbrs;
            for (std::size_t i : who) {
                const VertexId nb = self->d_col_[pos[i]];
                ++pos[i];
                nbrs.push_back(nb);
                la.push_back(self->d_level_.addr(nb));
            }
            co_yield WarpOp::load(std::move(la));

            LaneVec sa;
            for (VertexId nb : nbrs) {
                if (self->d_level_[nb] == kInf) {
                    self->d_level_[nb] = level + 1;
                    self->changed_ = true;
                    sa.push_back(self->d_level_.addr(nb));
                }
            }
            if (!sa.empty()) {
                // Branch instead of a conditional operator: GCC 12
                // double-destroys conditional temporaries in co_yield.
                if (atomic)
                    co_yield WarpOp::atomic(std::move(sa));
                else
                    co_yield WarpOp::store(std::move(sa));
            }
        }
    }

    /** TWC: one warp per vertex, coalesced 32-edge chunks. */
    static WarpProgram
    twcWarp(WarpCtx ctx, BfsWorkload *self, std::uint32_t level)
    {
        const std::uint32_t warps_per_block =
            ctx.threads_per_block / ctx.warp_size;
        const VertexId v =
            ctx.block_id * warps_per_block + ctx.warp_in_block;
        if (v >= self->graph_->numVertices())
            co_return;

        co_yield loadOf(self->d_level_.addr(v));
        if (self->d_level_[v] != level)
            co_return;
        co_yield loadOf(self->d_row_.addr(v), self->d_row_.addr(v + 1));

        const std::uint64_t begin = self->graph_->rowOffsets()[v];
        const std::uint64_t end = self->graph_->rowOffsets()[v + 1];
        for (std::uint64_t e = begin; e < end; e += ctx.warp_size) {
            const std::uint64_t chunk =
                std::min<std::uint64_t>(ctx.warp_size, end - e);
            LaneVec ea;
            for (std::uint64_t i = 0; i < chunk; ++i)
                ea.push_back(self->d_col_.addr(e + i));
            co_yield WarpOp::load(std::move(ea));

            LaneVec la;
            std::vector<VertexId> nbrs;
            for (std::uint64_t i = 0; i < chunk; ++i) {
                const VertexId nb = self->d_col_[e + i];
                nbrs.push_back(nb);
                la.push_back(self->d_level_.addr(nb));
            }
            co_yield WarpOp::load(std::move(la));

            LaneVec sa;
            for (VertexId nb : nbrs) {
                if (self->d_level_[nb] == kInf) {
                    self->d_level_[nb] = level + 1;
                    self->changed_ = true;
                    sa.push_back(self->d_level_.addr(nb));
                }
            }
            if (!sa.empty())
                co_yield WarpOp::store(std::move(sa));
        }
    }

    /** TF: explicit frontier with an atomic tail counter. */
    static WarpProgram
    frontierWarp(WarpCtx ctx, BfsWorkload *self, std::uint32_t level,
                 std::uint32_t fsize)
    {
        std::vector<std::uint32_t> slots;
        LaneVec a;
        for (std::uint32_t lane = 0; lane < ctx.laneCount(); ++lane) {
            const std::uint32_t idx = ctx.globalThread(lane);
            if (idx < fsize) {
                slots.push_back(idx);
                a.push_back(self->d_frontier_.addr(idx));
            }
        }
        if (slots.empty())
            co_return;
        co_yield WarpOp::load(std::move(a));

        std::vector<VertexId> active;
        for (std::uint32_t idx : slots)
            active.push_back(self->d_frontier_[idx]);

        a = {};
        for (VertexId v : active) {
            a.push_back(self->d_row_.addr(v));
            a.push_back(self->d_row_.addr(v + 1));
        }
        co_yield WarpOp::load(std::move(a));

        std::vector<std::uint64_t> pos, end;
        for (VertexId v : active) {
            pos.push_back(self->graph_->rowOffsets()[v]);
            end.push_back(self->graph_->rowOffsets()[v + 1]);
        }

        while (true) {
            LaneVec ea;
            std::vector<std::size_t> who;
            for (std::size_t i = 0; i < active.size(); ++i) {
                if (pos[i] < end[i]) {
                    ea.push_back(self->d_col_.addr(pos[i]));
                    who.push_back(i);
                }
            }
            if (who.empty())
                break;
            co_yield WarpOp::load(std::move(ea));

            LaneVec la;
            std::vector<VertexId> nbrs;
            for (std::size_t i : who) {
                const VertexId nb = self->d_col_[pos[i]];
                ++pos[i];
                nbrs.push_back(nb);
                la.push_back(self->d_level_.addr(nb));
            }
            co_yield WarpOp::load(std::move(la));

            LaneVec sa;
            for (VertexId nb : nbrs) {
                if (self->d_level_[nb] == kInf) {
                    self->d_level_[nb] = level + 1;
                    const std::uint32_t slot = self->next_size_++;
                    self->d_next_frontier_[slot] = nb;
                    sa.push_back(self->d_counter_.addr(0));
                    sa.push_back(self->d_next_frontier_.addr(slot));
                    sa.push_back(self->d_level_.addr(nb));
                }
            }
            if (!sa.empty())
                co_yield WarpOp::atomic(std::move(sa));
        }
    }

    /** DWC: edge-centric pass, one thread per edge. */
    static WarpProgram
    edgeCentricWarp(WarpCtx ctx, BfsWorkload *self, std::uint32_t level)
    {
        const std::uint64_t e_count = self->graph_->numEdges();
        std::vector<std::uint64_t> edges;
        LaneVec a;
        for (std::uint32_t lane = 0; lane < ctx.laneCount(); ++lane) {
            const std::uint64_t e = ctx.globalThread(lane);
            if (e < e_count) {
                edges.push_back(e);
                a.push_back(self->d_esrc_.addr(e));
            }
        }
        if (edges.empty())
            co_return;
        co_yield WarpOp::load(std::move(a));

        // Load the source levels (random gather).
        a = {};
        for (std::uint64_t e : edges)
            a.push_back(self->d_level_.addr(self->d_esrc_[e]));
        co_yield WarpOp::load(std::move(a));

        std::vector<std::uint64_t> live;
        for (std::uint64_t e : edges) {
            if (self->d_level_[self->d_esrc_[e]] == level)
                live.push_back(e);
        }
        if (live.empty())
            co_return;

        a = {};
        for (std::uint64_t e : live)
            a.push_back(self->d_edst_.addr(e));
        co_yield WarpOp::load(std::move(a));

        a = {};
        for (std::uint64_t e : live)
            a.push_back(self->d_level_.addr(self->d_edst_[e]));
        co_yield WarpOp::load(std::move(a));

        LaneVec sa;
        for (std::uint64_t e : live) {
            const VertexId dst = self->d_edst_[e];
            if (self->d_level_[dst] == kInf) {
                self->d_level_[dst] = level + 1;
                self->changed_ = true;
                sa.push_back(self->d_level_.addr(dst));
            }
        }
        if (!sa.empty())
            co_yield WarpOp::store(std::move(sa));
    }

    std::string variant_;
    DeviceArray<std::uint32_t> d_level_;
    DeviceArray<std::uint64_t> d_frontier_;
    DeviceArray<std::uint64_t> d_next_frontier_;
    DeviceArray<std::uint32_t> d_counter_;
    DeviceArray<std::uint64_t> d_esrc_;
    DeviceArray<std::uint64_t> d_edst_;
    std::uint32_t level_ = 0;
    bool changed_ = false;
    std::uint32_t frontier_size_ = 0;
    std::uint32_t next_size_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeBfsWorkload(const std::string &variant)
{
    return std::make_unique<BfsWorkload>(variant);
}

} // namespace bauvm
