/**
 * @file
 * PageRank by synchronous power iteration, two kernels per iteration as
 * in GraphBIG: (1) a contribution kernel computing rank/degree per
 * vertex, (2) a pull kernel where each warp owns a vertex and gathers
 * the contributions of its neighbours in coalesced chunks.
 */

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "src/graph/reference_algorithms.h"
#include "src/sim/log.h"
#include "src/workloads/graph_workload.h"
#include "src/workloads/workload_factories.h"

namespace bauvm
{
namespace
{

constexpr double kDamping = 0.85;

class PageRankWorkload : public GraphWorkloadBase
{
  public:
    std::string name() const override { return "PR"; }

    void
    build(WorkloadScale scale, std::uint64_t seed) override
    {
        buildGraph(scale, seed, false);
        iterations_ = graphScale(scale).pr_iterations;
        const VertexId v = graph_->numVertices();
        d_rank_ = DeviceArray<double>(alloc_, v, "pr_rank");
        d_contrib_ = DeviceArray<double>(alloc_, v, "pr_contrib");
        d_rank_.fill(1.0 / v);
        d_contrib_.fill(0.0);
    }

    bool
    nextKernel(KernelInfo *out) override
    {
        if (iteration_ >= iterations_)
            return false;
        PageRankWorkload *self = this;
        out->threads_per_block = kGraphTpb;
        out->regs_per_thread = 56;
        if (next_is_contrib_) {
            out->name = "PR-contrib-i" + std::to_string(iteration_);
            out->num_blocks = vertexBlocks();
            out->make_program = [self](WarpCtx ctx) {
                return contribWarp(ctx, self);
            };
            next_is_contrib_ = false;
        } else {
            out->name = "PR-pull-i" + std::to_string(iteration_);
            out->num_blocks = warpPerVertexBlocks();
            out->make_program = [self](WarpCtx ctx) {
                return pullWarp(ctx, self);
            };
            next_is_contrib_ = true;
            ++iteration_;
        }
        return true;
    }

    void
    validate() const override
    {
        const auto ref =
            reference::pageRank(*graph_, iterations_, kDamping);
        for (VertexId v = 0; v < graph_->numVertices(); ++v) {
            const double got = d_rank_[v];
            const double want = ref[v];
            const double err =
                std::abs(got - want) / std::max(1e-12, std::abs(want));
            if (err > 1e-9) {
                panic("PR: rank mismatch at %u (got %.12f want %.12f)",
                      v, got, want);
            }
        }
    }

    /** Kernel 1: contrib[v] = rank[v] / degree(v). */
    static WarpProgram
    contribWarp(WarpCtx ctx, PageRankWorkload *self)
    {
        const VertexId v_count = self->graph_->numVertices();
        std::vector<VertexId> owned;
        LaneVec a;
        for (std::uint32_t lane = 0; lane < ctx.laneCount(); ++lane) {
            const VertexId v = ctx.globalThread(lane);
            if (v < v_count) {
                owned.push_back(v);
                a.push_back(self->d_rank_.addr(v));
                a.push_back(self->d_row_.addr(v));
                a.push_back(self->d_row_.addr(v + 1));
            }
        }
        if (owned.empty())
            co_return;
        co_yield WarpOp::load(std::move(a));

        LaneVec sa;
        for (VertexId v : owned) {
            const auto deg = self->graph_->degree(v);
            self->d_contrib_[v] =
                deg == 0 ? 0.0
                         : self->d_rank_[v] / static_cast<double>(deg);
            sa.push_back(self->d_contrib_.addr(v));
        }
        co_yield WarpOp::store(std::move(sa));
    }

    /** Kernel 2: rank[v] = (1-d)/N + d * sum contrib[neighbours]. */
    static WarpProgram
    pullWarp(WarpCtx ctx, PageRankWorkload *self)
    {
        const std::uint32_t wpb = ctx.threads_per_block / ctx.warp_size;
        const VertexId v = ctx.block_id * wpb + ctx.warp_in_block;
        const VertexId v_count = self->graph_->numVertices();
        if (v >= v_count)
            co_return;

        co_yield loadOf(self->d_row_.addr(v), self->d_row_.addr(v + 1));

        double sum = 0.0;
        const std::uint64_t begin = self->graph_->rowOffsets()[v];
        const std::uint64_t end = self->graph_->rowOffsets()[v + 1];
        for (std::uint64_t e = begin; e < end; e += ctx.warp_size) {
            const std::uint64_t chunk =
                std::min<std::uint64_t>(ctx.warp_size, end - e);
            LaneVec ea;
            for (std::uint64_t i = 0; i < chunk; ++i)
                ea.push_back(self->d_col_.addr(e + i));
            co_yield WarpOp::load(std::move(ea));

            LaneVec ca;
            for (std::uint64_t i = 0; i < chunk; ++i) {
                ca.push_back(
                    self->d_contrib_.addr(self->d_col_[e + i]));
            }
            co_yield WarpOp::load(std::move(ca));
            for (std::uint64_t i = 0; i < chunk; ++i)
                sum += self->d_contrib_[self->d_col_[e + i]];
        }

        self->d_rank_[v] =
            (1.0 - kDamping) / v_count + kDamping * sum;
        co_yield storeOf(self->d_rank_.addr(v));
    }

  private:
    DeviceArray<double> d_rank_;
    DeviceArray<double> d_contrib_;
    std::uint32_t iterations_ = 2;
    std::uint32_t iteration_ = 0;
    bool next_is_contrib_ = true;
};

} // namespace

std::unique_ptr<Workload>
makePageRankWorkload()
{
    return std::make_unique<PageRankWorkload>();
}

} // namespace bauvm
