/**
 * @file
 * Single-source shortest paths, topological-warp-centric (SSSP-TWC):
 * Bellman-Ford-style frontier relaxation. One warp per vertex; a warp
 * whose vertex is in the frontier streams its edge list in coalesced
 * chunks, relaxing distances with atomicMin and flagging the next
 * frontier. The frontier flag is cleared in place by the owning warp,
 * so no separate memset kernel is needed.
 */

#include <algorithm>
#include <string>
#include <vector>

#include "src/graph/reference_algorithms.h"
#include "src/sim/log.h"
#include "src/workloads/graph_workload.h"
#include "src/workloads/workload_factories.h"

namespace bauvm
{
namespace
{

class SsspWorkload : public GraphWorkloadBase
{
  public:
    std::string name() const override { return "SSSP-TWC"; }

    void
    build(WorkloadScale scale, std::uint64_t seed) override
    {
        buildGraph(scale, seed, /*weighted=*/true);
        const VertexId v = graph_->numVertices();
        d_dist_ = DeviceArray<std::uint32_t>(alloc_, v, "sssp_dist");
        d_in_frontier_ =
            DeviceArray<std::uint32_t>(alloc_, v, "sssp_frontier");
        d_in_next_ =
            DeviceArray<std::uint32_t>(alloc_, v, "sssp_next");
        d_dist_.fill(kInf);
        d_in_frontier_.fill(0);
        d_in_next_.fill(0);
        d_dist_[source_] = 0;
        d_in_frontier_[source_] = 1;
        frontier_count_ = 1;
    }

    bool
    nextKernel(KernelInfo *out) override
    {
        if (iteration_ > 0) {
            std::swap(d_in_frontier_, d_in_next_);
            frontier_count_ = next_count_;
            next_count_ = 0;
        }
        if (frontier_count_ == 0)
            return false;

        SsspWorkload *self = this;
        out->name = "SSSP-iter" + std::to_string(iteration_);
        out->threads_per_block = kGraphTpb;
        out->regs_per_thread = 64;
        out->num_blocks = warpPerVertexBlocks();
        out->make_program = [self](WarpCtx ctx) {
            return relaxWarp(ctx, self);
        };
        ++iteration_;
        return true;
    }

    void
    validate() const override
    {
        const auto ref = reference::ssspDistances(*graph_, source_);
        for (VertexId v = 0; v < graph_->numVertices(); ++v) {
            const std::uint32_t want =
                ref[v] == reference::kInfinity ? kInf : ref[v];
            if (d_dist_[v] != want) {
                panic("SSSP: distance mismatch at %u (got %u want %u)",
                      v, d_dist_[v], want);
            }
        }
    }

    static WarpProgram
    relaxWarp(WarpCtx ctx, SsspWorkload *self)
    {
        const std::uint32_t wpb = ctx.threads_per_block / ctx.warp_size;
        const VertexId v = ctx.block_id * wpb + ctx.warp_in_block;
        if (v >= self->graph_->numVertices())
            co_return;

        co_yield loadOf(self->d_in_frontier_.addr(v));
        if (self->d_in_frontier_[v] == 0)
            co_return;
        // Consume the flag in place.
        self->d_in_frontier_[v] = 0;
        co_yield storeOf(self->d_in_frontier_.addr(v));

        co_yield loadOf(self->d_row_.addr(v),
                               self->d_row_.addr(v + 1),
                               self->d_dist_.addr(v));
        const std::uint32_t dist_v = self->d_dist_[v];

        const std::uint64_t begin = self->graph_->rowOffsets()[v];
        const std::uint64_t end = self->graph_->rowOffsets()[v + 1];
        for (std::uint64_t e = begin; e < end; e += ctx.warp_size) {
            const std::uint64_t chunk =
                std::min<std::uint64_t>(ctx.warp_size, end - e);
            LaneVec ea;
            for (std::uint64_t i = 0; i < chunk; ++i) {
                ea.push_back(self->d_col_.addr(e + i));
                ea.push_back(self->d_weight_.addr(e + i));
            }
            co_yield WarpOp::load(std::move(ea));

            LaneVec da;
            for (std::uint64_t i = 0; i < chunk; ++i)
                da.push_back(self->d_dist_.addr(self->d_col_[e + i]));
            co_yield WarpOp::load(std::move(da));

            LaneVec ua;
            for (std::uint64_t i = 0; i < chunk; ++i) {
                const VertexId nb = self->d_col_[e + i];
                const std::uint32_t w = self->graph_->weights()[e + i];
                const std::uint32_t cand = dist_v + w;
                if (cand < self->d_dist_[nb]) {
                    self->d_dist_[nb] = cand; // atomicMin
                    ua.push_back(self->d_dist_.addr(nb));
                    if (self->d_in_next_[nb] == 0) {
                        self->d_in_next_[nb] = 1;
                        ++self->next_count_;
                    }
                    ua.push_back(self->d_in_next_.addr(nb));
                }
            }
            if (!ua.empty())
                co_yield WarpOp::atomic(std::move(ua));
        }
    }

  private:
    DeviceArray<std::uint32_t> d_dist_;
    DeviceArray<std::uint32_t> d_in_frontier_;
    DeviceArray<std::uint32_t> d_in_next_;
    std::uint32_t iteration_ = 0;
    std::uint32_t frontier_count_ = 0;
    std::uint32_t next_count_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeSsspWorkload()
{
    return std::make_unique<SsspWorkload>();
}

} // namespace bauvm
