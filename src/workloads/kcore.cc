/**
 * @file
 * K-core decomposition by parallel peeling: for k = 0,1,2,... repeat a
 * removal kernel (one thread per vertex, atomic degree decrements on
 * neighbours) until no vertex with degree <= k remains, then advance k.
 * Produces the coreness of every vertex, layer by layer, as GraphBIG's
 * kCore does.
 */

#include <algorithm>
#include <string>
#include <vector>

#include "src/graph/reference_algorithms.h"
#include "src/sim/log.h"
#include "src/workloads/graph_workload.h"
#include "src/workloads/workload_factories.h"

namespace bauvm
{
namespace
{

class KcoreWorkload : public GraphWorkloadBase
{
  public:
    std::string name() const override { return "KCORE"; }

    void
    build(WorkloadScale scale, std::uint64_t seed) override
    {
        buildGraph(scale, seed, false);
        const VertexId v = graph_->numVertices();
        d_degree_ = DeviceArray<std::uint32_t>(alloc_, v, "kcore_degree");
        d_core_ = DeviceArray<std::uint32_t>(alloc_, v, "kcore_core");
        d_core_.fill(kInf); // kInf == still alive
        std::uint32_t max_deg = 0;
        for (VertexId u = 0; u < v; ++u) {
            d_degree_[u] = static_cast<std::uint32_t>(graph_->degree(u));
            max_deg = std::max(max_deg, d_degree_[u]);
        }
        max_degree_ = max_deg;
        alive_ = v;
    }

    bool
    nextKernel(KernelInfo *out) override
    {
        if (alive_ == 0)
            return false;
        if (!changed_ && !first_round_) {
            // The previous round removed nothing at this k: jump k to
            // the smallest residual degree still alive (the host-side
            // equivalent of GraphBIG's k++ sweep, skipping the empty
            // iterations so the simulation stays tractable).
            std::uint32_t min_deg = kInf;
            for (VertexId v = 0; v < graph_->numVertices(); ++v) {
                if (d_core_[v] == kInf)
                    min_deg = std::min(min_deg, d_degree_[v]);
            }
            if (min_deg == kInf || min_deg > max_degree_) {
                panic("KCORE: no removable vertex with %u alive",
                      alive_);
            }
            k_ = min_deg;
        }
        first_round_ = false;
        changed_ = false;

        KcoreWorkload *self = this;
        const std::uint32_t k = k_;
        out->name = "KCORE-k" + std::to_string(k);
        out->threads_per_block = kGraphTpb;
        out->regs_per_thread = 52;
        out->num_blocks = vertexBlocks();
        out->make_program = [self, k](WarpCtx ctx) {
            return peelWarp(ctx, self, k);
        };
        return true;
    }

    void
    validate() const override
    {
        const auto ref = reference::kcore(*graph_);
        for (VertexId v = 0; v < graph_->numVertices(); ++v) {
            if (d_core_[v] != ref[v]) {
                panic("KCORE: coreness mismatch at %u (got %u want %u)",
                      v, d_core_[v], ref[v]);
            }
        }
    }

    static WarpProgram
    peelWarp(WarpCtx ctx, KcoreWorkload *self, std::uint32_t k)
    {
        const VertexId v_count = self->graph_->numVertices();
        std::vector<VertexId> owned;
        LaneVec a;
        for (std::uint32_t lane = 0; lane < ctx.laneCount(); ++lane) {
            const VertexId v = ctx.globalThread(lane);
            if (v < v_count) {
                owned.push_back(v);
                a.push_back(self->d_core_.addr(v));
                a.push_back(self->d_degree_.addr(v));
            }
        }
        if (owned.empty())
            co_return;
        co_yield WarpOp::load(std::move(a));

        std::vector<VertexId> removing;
        for (VertexId v : owned) {
            if (self->d_core_[v] == kInf && self->d_degree_[v] <= k)
                removing.push_back(v);
        }
        if (removing.empty())
            co_return;

        LaneVec sa;
        for (VertexId v : removing) {
            self->d_core_[v] = k;
            --self->alive_;
            self->changed_ = true;
            sa.push_back(self->d_core_.addr(v));
        }
        co_yield WarpOp::store(std::move(sa));

        a = {};
        for (VertexId v : removing) {
            a.push_back(self->d_row_.addr(v));
            a.push_back(self->d_row_.addr(v + 1));
        }
        co_yield WarpOp::load(std::move(a));

        // Lockstep divergent walk decrementing neighbour degrees.
        std::vector<std::uint64_t> pos, end;
        for (VertexId v : removing) {
            pos.push_back(self->graph_->rowOffsets()[v]);
            end.push_back(self->graph_->rowOffsets()[v + 1]);
        }
        while (true) {
            LaneVec ea;
            std::vector<std::size_t> who;
            for (std::size_t i = 0; i < removing.size(); ++i) {
                if (pos[i] < end[i]) {
                    ea.push_back(self->d_col_.addr(pos[i]));
                    who.push_back(i);
                }
            }
            if (who.empty())
                break;
            co_yield WarpOp::load(std::move(ea));

            LaneVec da;
            std::vector<VertexId> nbrs;
            for (std::size_t i : who) {
                const VertexId nb = self->d_col_[pos[i]];
                ++pos[i];
                nbrs.push_back(nb);
                da.push_back(self->d_core_.addr(nb));
                da.push_back(self->d_degree_.addr(nb));
            }
            co_yield WarpOp::load(std::move(da));

            LaneVec ua;
            for (VertexId nb : nbrs) {
                if (self->d_core_[nb] == kInf &&
                    self->d_degree_[nb] > 0) {
                    --self->d_degree_[nb];
                    ua.push_back(self->d_degree_.addr(nb));
                }
            }
            if (!ua.empty())
                co_yield WarpOp::atomic(std::move(ua));
        }
    }

  private:
    DeviceArray<std::uint32_t> d_degree_;
    DeviceArray<std::uint32_t> d_core_;
    std::uint32_t max_degree_ = 0;
    std::uint32_t k_ = 0;
    VertexId alive_ = 0;
    bool changed_ = false;
    bool first_round_ = true;
};

} // namespace

std::unique_ptr<Workload>
makeKcoreWorkload()
{
    return std::make_unique<KcoreWorkload>();
}

} // namespace bauvm
