/**
 * @file
 * WorkloadRegistry: the named-workload catalogue.
 *
 * The one public way to instantiate or enumerate workloads by name:
 * every workload is registered once, under its figure name, with a
 * factory closure, and lookup/enumeration go through one table (the
 * per-family registration hooks in workload_factories.h are internal
 * to src/workloads).
 */

#ifndef BAUVM_WORKLOADS_WORKLOAD_REGISTRY_H_
#define BAUVM_WORKLOADS_WORKLOAD_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/workloads/workload.h"

namespace bauvm
{

/** Workload family: the paper's irregular GraphBIG selection, the
 *  regular Rodinia-style contrast suite of Fig 1, and the frontier-
 *  phase graph suite (direction-optimizing BFS, TC, k-truss, CC)
 *  whose per-kernel access pattern depends on the evolving frontier. */
enum class WorkloadKind { Irregular, Regular, Frontier };

/** Lower-case family tag ("irregular" | "regular" | "frontier"). */
const char *kindName(WorkloadKind kind);

/**
 * Process-wide catalogue of instantiable workloads.
 *
 * instance() arrives pre-populated with the paper's 11 irregular and 6
 * regular workloads in presentation order. Registration is expected at
 * startup (before sweeps fan out); create() and the enumerations are
 * const and safe to call concurrently once registration is done.
 */
class WorkloadRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<Workload>()>;

    /** The pre-populated process-wide registry. */
    static WorkloadRegistry &instance();

    /** Registers @p factory under @p name; fatal() on duplicates. */
    void add(const std::string &name, WorkloadKind kind,
             Factory factory);

    /** Instantiates the named workload; fatal() (listing the known
     *  names) when @p name is not registered. */
    std::unique_ptr<Workload> create(const std::string &name) const;

    /** All registered names, in registration (presentation) order. */
    std::vector<std::string> enumerate() const;

    /** Names of one workload family, in registration order. */
    std::vector<std::string> enumerate(WorkloadKind kind) const;

    bool contains(const std::string &name) const;

  private:
    WorkloadRegistry(); //!< registers the built-in suite

    struct Entry {
        std::string name;
        WorkloadKind kind;
        Factory factory;
    };

    std::vector<Entry> entries_; //!< registration order
    std::unordered_map<std::string, std::size_t> index_;
};

} // namespace bauvm

#endif // BAUVM_WORKLOADS_WORKLOAD_REGISTRY_H_
