// DeviceArray/DeviceAllocator are header-only; build-system anchor.
#include "src/workloads/device_array.h"
