#include "src/workloads/workload_registry.h"

#include "src/sim/log.h"
#include "src/workloads/workload_factories.h"

namespace bauvm
{

const char *
kindName(WorkloadKind kind)
{
    switch (kind) {
      case WorkloadKind::Irregular:
        return "irregular";
      case WorkloadKind::Regular:
        return "regular";
      case WorkloadKind::Frontier:
        return "frontier";
    }
    fatal("kindName: bad workload kind");
}

WorkloadRegistry &
WorkloadRegistry::instance()
{
    static WorkloadRegistry registry;
    return registry;
}

WorkloadRegistry::WorkloadRegistry()
{
    // The paper's Fig 11 presentation order.
    add("BC", WorkloadKind::Irregular, [] { return makeBcWorkload(); });
    for (const char *v : {"DWC", "TA", "TF", "TTC", "TWC"}) {
        add(std::string("BFS-") + v, WorkloadKind::Irregular,
            [v] { return makeBfsWorkload(v); });
    }
    for (const char *v : {"DTC", "TTC"}) {
        add(std::string("GC-") + v, WorkloadKind::Irregular,
            [v] { return makeGcWorkload(v); });
    }
    add("KCORE", WorkloadKind::Irregular,
        [] { return makeKcoreWorkload(); });
    add("SSSP-TWC", WorkloadKind::Irregular,
        [] { return makeSsspWorkload(); });
    add("PR", WorkloadKind::Irregular,
        [] { return makePageRankWorkload(); });

    // The Fig 1 regular contrast suite.
    for (const char *n : {"CFD", "DWT", "GM", "H3D", "HS", "LUD"}) {
        add(n, WorkloadKind::Regular,
            [n] { return makeRegularWorkload(n); });
    }

    // The frontier-phase suite: traversal intensity and footprint
    // shift with the frontier, not with a fixed iteration schedule.
    add("BFS-HYB", WorkloadKind::Frontier,
        [] { return makeHybridBfsWorkload(); });
    add("CC", WorkloadKind::Frontier,
        [] { return makeComponentsWorkload(); });
    add("TC", WorkloadKind::Frontier,
        [] { return makeTriangleCountWorkload(); });
    add("KTRUSS", WorkloadKind::Frontier,
        [] { return makeKtrussWorkload(); });
}

void
WorkloadRegistry::add(const std::string &name, WorkloadKind kind,
                      Factory factory)
{
    if (!factory)
        fatal("WorkloadRegistry: null factory for '%s'", name.c_str());
    if (index_.count(name) != 0)
        fatal("WorkloadRegistry: duplicate workload '%s'", name.c_str());
    index_.emplace(name, entries_.size());
    entries_.push_back(Entry{name, kind, std::move(factory)});
}

std::unique_ptr<Workload>
WorkloadRegistry::create(const std::string &name) const
{
    const auto it = index_.find(name);
    if (it == index_.end()) {
        // Tag each candidate with its family so a --workload typo
        // shows which suite the near-misses belong to.
        std::string known;
        for (const std::string &n : enumerate()) {
            if (!known.empty())
                known += ", ";
            known += n;
            known += " (";
            known += kindName(entries_[index_.at(n)].kind);
            known += ")";
        }
        fatal("WorkloadRegistry: unknown workload '%s' (known: %s)",
              name.c_str(), known.c_str());
    }
    return entries_[it->second].factory();
}

std::vector<std::string>
WorkloadRegistry::enumerate() const
{
    std::vector<std::string> names;
    names.reserve(entries_.size());
    for (const Entry &e : entries_)
        names.push_back(e.name);
    return names;
}

std::vector<std::string>
WorkloadRegistry::enumerate(WorkloadKind kind) const
{
    std::vector<std::string> names;
    for (const Entry &e : entries_) {
        if (e.kind == kind)
            names.push_back(e.name);
    }
    return names;
}

bool
WorkloadRegistry::contains(const std::string &name) const
{
    return index_.count(name) != 0;
}

} // namespace bauvm
