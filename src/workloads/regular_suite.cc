/**
 * @file
 * Regular (Rodinia-style) workload stand-ins for Fig 1: CFD, DWT, GM,
 * H3D, HS, LUD.
 *
 * Each is a block-partitioned streaming/stencil kernel: thread block b
 * exclusively owns tile b of every array, so the pages touched by k
 * concurrently-running blocks grow linearly with k — the property Fig 1
 * contrasts against the irregular graph workloads, whose CSR pages are
 * shared across every SM. The variants differ in array count, pass
 * count, access stride and compute intensity, mimicking the flavour of
 * their namesakes (flux update, wavelet halving, map, 3-point stencil,
 * heat diffusion, in-place elimination passes).
 */

#include <cmath>
#include <string>
#include <vector>

#include "src/sim/log.h"
#include "src/workloads/workload.h"
#include "src/workloads/workload_factories.h"

namespace bauvm
{
namespace
{

/** Per-variant shape of the computation. */
struct RegularSpec {
    std::uint32_t arrays;   //!< unified-memory arrays (>= 2)
    std::uint32_t passes;   //!< kernel launches
    std::uint32_t stride;   //!< neighbour distance inside the tile
    Cycle compute_cycles;   //!< per-element compute weight
};

RegularSpec
specFor(const std::string &name)
{
    if (name == "CFD")
        return {3, 2, 1, 8};
    if (name == "DWT")
        return {2, 2, 2, 4};
    if (name == "GM")
        return {2, 1, 1, 2};
    if (name == "H3D")
        return {2, 3, 1, 6};
    if (name == "HS")
        return {2, 2, 1, 10};
    if (name == "LUD")
        return {2, 2, 4, 12};
    fatal("RegularWorkload: unknown variant '%s'", name.c_str());
}

std::size_t
elementsFor(WorkloadScale scale)
{
    switch (scale) {
      case WorkloadScale::Tiny:
        return 1 << 14;
      case WorkloadScale::Small:
        return 1 << 17;
      case WorkloadScale::Medium:
        return 1 << 20;
      case WorkloadScale::Large:
        return 1 << 22;
      case WorkloadScale::Huge:
        return 1 << 24;
    }
    fatal("RegularWorkload: bad scale");
}

constexpr std::uint32_t kRegTpb = 256;
/** One full wave on the Table 1 machine: 16 SMs x 4 blocks. */
constexpr std::uint32_t kRegBlocks = 64;

class RegularWorkload : public Workload
{
  public:
    explicit RegularWorkload(std::string name)
        : name_(std::move(name)), spec_(specFor(name_))
    {
    }

    std::string name() const override { return name_; }

    void
    build(WorkloadScale scale, std::uint64_t seed) override
    {
        elements_ = elementsFor(scale);
        arrays_.resize(spec_.arrays);
        for (std::uint32_t a = 0; a < spec_.arrays; ++a) {
            arrays_[a] = DeviceArray<float>(
                alloc_, elements_, name_ + "_arr" + std::to_string(a));
        }
        // Deterministic pseudo-input.
        for (std::size_t i = 0; i < elements_; ++i) {
            arrays_[0][i] =
                static_cast<float>((i * 2654435761u + seed) % 1024) /
                1024.0f;
        }
        initial_ = arrays_[0].host();
    }

    bool
    nextKernel(KernelInfo *out) override
    {
        if (pass_ >= spec_.passes)
            return false;
        RegularWorkload *self = this;
        const std::uint32_t pass = pass_;
        out->name = name_ + "-pass" + std::to_string(pass);
        out->threads_per_block = kRegTpb;
        out->regs_per_thread = 32;
        out->num_blocks = kRegBlocks;
        out->make_program = [self, pass](WarpCtx ctx) {
            return passWarp(ctx, self, pass);
        };
        ++pass_;
        return true;
    }

    void
    validate() const override
    {
        // CPU replay of the same recurrence.
        std::vector<float> in = initial_;
        std::vector<float> out(elements_);
        for (std::uint32_t p = 0; p < spec_.passes; ++p) {
            const std::size_t tile = elements_ / kRegBlocks;
            for (std::uint32_t b = 0; b < kRegBlocks; ++b) {
                const std::size_t base = b * tile;
                for (std::size_t i = 0; i < tile; ++i) {
                    const std::size_t j =
                        base + (i + spec_.stride) % tile;
                    out[base + i] = step(in[base + i], in[j]);
                }
            }
            in.swap(out);
        }
        const auto &result =
            spec_.passes % 2 == 1 ? arrays_[1] : arrays_[0];
        for (std::size_t i = 0; i < elements_; ++i) {
            if (std::abs(result[i] - in[i]) > 1e-5f) {
                panic("%s: mismatch at %zu (got %f want %f)",
                      name_.c_str(), i, result[i], in[i]);
            }
        }
    }

    static float
    step(float a, float b)
    {
        return 0.7f * a + 0.3f * b;
    }

    static WarpProgram
    passWarp(WarpCtx ctx, RegularWorkload *self, std::uint32_t pass)
    {
        // Ping-pong between array 0 and 1; extra arrays are read-only
        // ballast touched alongside (more footprint, as their
        // namesakes' auxiliary fields).
        auto &in = self->arrays_[pass % 2];
        auto &out = self->arrays_[(pass + 1) % 2];
        const std::size_t tile = self->elements_ / kRegBlocks;
        const std::size_t base = ctx.block_id * tile;
        const std::size_t per_thread =
            (tile + ctx.threads_per_block - 1) / ctx.threads_per_block;

        for (std::size_t step_i = 0; step_i < per_thread; ++step_i) {
            LaneVec la;
            std::vector<std::size_t> idxs;
            for (std::uint32_t lane = 0; lane < ctx.laneCount();
                 ++lane) {
                const std::size_t local =
                    (ctx.warp_in_block * ctx.warp_size + lane) +
                    step_i * ctx.threads_per_block;
                if (local >= tile)
                    continue;
                const std::size_t i = base + local;
                const std::size_t j =
                    base + (local + self->spec_.stride) % tile;
                idxs.push_back(i);
                la.push_back(in.addr(i));
                la.push_back(in.addr(j));
                for (std::uint32_t a = 2; a < self->spec_.arrays; ++a)
                    la.push_back(self->arrays_[a].addr(i));
            }
            if (idxs.empty())
                co_return;
            co_yield WarpOp::load(std::move(la));
            if (self->spec_.compute_cycles > 0)
                co_yield WarpOp::compute(self->spec_.compute_cycles);

            LaneVec sa;
            for (std::size_t i : idxs) {
                const std::size_t local = i - base;
                const std::size_t j =
                    base + (local + self->spec_.stride) % tile;
                out[i] = step(in[i], in[j]);
                sa.push_back(out.addr(i));
            }
            co_yield WarpOp::store(std::move(sa));
        }
    }

  private:
    std::string name_;
    RegularSpec spec_;
    std::size_t elements_ = 0;
    std::vector<DeviceArray<float>> arrays_;
    std::vector<float> initial_;
    std::uint32_t pass_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeRegularWorkload(const std::string &name)
{
    return std::make_unique<RegularWorkload>(name);
}

} // namespace bauvm
