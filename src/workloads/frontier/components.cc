/**
 * @file
 * Label-propagation connected components with an explicit push
 * worklist: every vertex starts as its own label; an active vertex
 * pushes its label to any neighbour with a larger one, and only
 * vertices whose label improved join the next round's worklist (a
 * round-stamp array deduplicates enqueues). The worklist collapses
 * from all of V to the shrinking boundary between merging components —
 * frontier-phase behaviour on the opposite trajectory from BFS, which
 * grows before it shrinks. Converges to the minimum vertex id per
 * component.
 */

#include <string>
#include <utility>
#include <vector>

#include "src/graph/reference_algorithms.h"
#include "src/sim/log.h"
#include "src/workloads/graph_workload.h"
#include "src/workloads/workload_factories.h"

namespace bauvm
{
namespace
{

class ComponentsWorkload : public GraphWorkloadBase
{
  public:
    std::string name() const override { return "CC"; }

    void
    build(WorkloadScale scale, std::uint64_t seed) override
    {
        buildGraph(scale, seed, false);
        const VertexId v = graph_->numVertices();
        d_label_ = DeviceArray<std::uint64_t>(alloc_, v, "cc_label");
        d_frontier_ = DeviceArray<std::uint64_t>(alloc_, v, "cc_frontier");
        d_next_frontier_ =
            DeviceArray<std::uint64_t>(alloc_, v, "cc_next_frontier");
        d_mark_ = DeviceArray<std::uint32_t>(alloc_, v, "cc_mark");
        d_counter_ = DeviceArray<std::uint32_t>(alloc_, 1, "cc_counter");
        d_mark_.fill(0);
        for (VertexId u = 0; u < v; ++u) {
            d_label_[u] = u;
            d_frontier_[u] = u; // round 0: everyone is active
        }
        frontier_size_ = v;
    }

    bool
    nextKernel(KernelInfo *out) override
    {
        if (round_ > 0) {
            std::swap(d_frontier_, d_next_frontier_);
            frontier_size_ = next_size_;
            next_size_ = 0;
        }
        if (frontier_size_ == 0)
            return false;

        ComponentsWorkload *self = this;
        const std::uint32_t round = round_;
        const std::uint32_t fsize = frontier_size_;
        out->name = name() + "-round" + std::to_string(round);
        out->threads_per_block = kGraphTpb;
        out->regs_per_thread = 52;
        out->num_blocks = (fsize + kGraphTpb - 1) / kGraphTpb;
        out->make_program = [self, round, fsize](WarpCtx ctx) {
            return pushWarp(ctx, self, round, fsize);
        };
        ++round_;
        return true;
    }

    void
    validate() const override
    {
        const auto ref = reference::componentLabels(*graph_);
        for (VertexId v = 0; v < graph_->numVertices(); ++v) {
            if (d_label_[v] != ref[v]) {
                panic("CC: label mismatch at vertex %u "
                      "(got %llu want %u)",
                      v,
                      static_cast<unsigned long long>(d_label_[v]),
                      ref[v]);
            }
        }
    }

    /** One thread per worklist entry pushing its label outward. */
    static WarpProgram
    pushWarp(WarpCtx ctx, ComponentsWorkload *self, std::uint32_t round,
             std::uint32_t fsize)
    {
        std::vector<std::uint32_t> slots;
        LaneVec a;
        for (std::uint32_t lane = 0; lane < ctx.laneCount(); ++lane) {
            const std::uint32_t idx = ctx.globalThread(lane);
            if (idx < fsize) {
                slots.push_back(idx);
                a.push_back(self->d_frontier_.addr(idx));
            }
        }
        if (slots.empty())
            co_return;
        co_yield WarpOp::load(std::move(a));

        std::vector<VertexId> active;
        a = {};
        for (std::uint32_t idx : slots) {
            const auto v =
                static_cast<VertexId>(self->d_frontier_[idx]);
            active.push_back(v);
            a.push_back(self->d_label_.addr(v));
        }
        co_yield WarpOp::load(std::move(a));

        a = {};
        for (VertexId v : active) {
            a.push_back(self->d_row_.addr(v));
            a.push_back(self->d_row_.addr(v + 1));
        }
        co_yield WarpOp::load(std::move(a));

        std::vector<std::uint64_t> pos, end;
        for (VertexId v : active) {
            pos.push_back(self->graph_->rowOffsets()[v]);
            end.push_back(self->graph_->rowOffsets()[v + 1]);
        }

        while (true) {
            LaneVec ea;
            std::vector<std::size_t> who;
            for (std::size_t i = 0; i < active.size(); ++i) {
                if (pos[i] < end[i]) {
                    ea.push_back(self->d_col_.addr(pos[i]));
                    who.push_back(i);
                }
            }
            if (who.empty())
                break;
            co_yield WarpOp::load(std::move(ea));

            LaneVec la;
            std::vector<std::pair<std::size_t, VertexId>> probes;
            for (std::size_t i : who) {
                const VertexId nb = self->d_col_[pos[i]];
                ++pos[i];
                probes.emplace_back(i, nb);
                la.push_back(self->d_label_.addr(nb));
            }
            co_yield WarpOp::load(std::move(la));

            LaneVec sa;
            for (const auto &[i, nb] : probes) {
                const std::uint64_t mine =
                    self->d_label_[active[i]];
                if (self->d_label_[nb] > mine) {
                    // atomicMin on the neighbour's label, plus a
                    // stamped enqueue so a vertex improved by several
                    // pushers joins the next round once.
                    self->d_label_[nb] = mine;
                    sa.push_back(self->d_label_.addr(nb));
                    if (self->d_mark_[nb] != round + 1) {
                        self->d_mark_[nb] = round + 1;
                        const std::uint32_t slot = self->next_size_++;
                        self->d_next_frontier_[slot] = nb;
                        sa.push_back(self->d_mark_.addr(nb));
                        sa.push_back(self->d_counter_.addr(0));
                        sa.push_back(
                            self->d_next_frontier_.addr(slot));
                    }
                }
            }
            if (!sa.empty())
                co_yield WarpOp::atomic(std::move(sa));
        }
    }

  private:
    DeviceArray<std::uint64_t> d_label_;
    DeviceArray<std::uint64_t> d_frontier_;
    DeviceArray<std::uint64_t> d_next_frontier_;
    DeviceArray<std::uint32_t> d_mark_;
    DeviceArray<std::uint32_t> d_counter_;
    std::uint32_t round_ = 0;
    std::uint32_t frontier_size_ = 0;
    std::uint32_t next_size_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeComponentsWorkload()
{
    return std::make_unique<ComponentsWorkload>();
}

} // namespace bauvm
