/**
 * @file
 * Direction-optimizing hybrid BFS (Beamer et al.): per level, the host
 * chooses between a top-down pass over an explicit frontier queue and
 * a bottom-up pass over every unvisited vertex.
 *
 *  - top-down ("-td-"): one thread per frontier entry walks the
 *    vertex's edge list, discovering unvisited neighbours and
 *    appending them to the next-frontier queue with an atomic tail
 *    counter (the BFS-TF idiom).
 *  - bottom-up ("-bu-"): one thread per vertex; an unvisited vertex
 *    scans its own neighbours for one with level == current and stops
 *    at the first hit, so a huge frontier costs one probe per
 *    already-settled parent instead of one update per frontier edge.
 *
 * The switch heuristic is Beamer's: go bottom-up when the frontier's
 * outgoing edges exceed 1/alpha of the unexplored edges, return
 * top-down when the frontier shrinks below V/beta. Both passes append
 * to the same pre-allocated queue (sized once per build, never
 * reallocated), so direction flips need no host-side rebuild.
 *
 * The access-pattern phases differ sharply — queue-indirect gathers
 * top-down vs near-sequential level scans bottom-up — which is exactly
 * the frontier-dependent irregularity the fixed-iteration GraphBIG
 * kernels lack.
 */

#include <string>
#include <utility>
#include <vector>

#include "src/graph/reference_algorithms.h"
#include "src/sim/log.h"
#include "src/workloads/graph_workload.h"
#include "src/workloads/workload_factories.h"

namespace bauvm
{
namespace
{

/** Beamer's published defaults. */
constexpr std::uint64_t kAlpha = 15;
constexpr std::uint64_t kBeta = 18;

class HybridBfsWorkload : public GraphWorkloadBase
{
  public:
    std::string name() const override { return "BFS-HYB"; }

    void
    build(WorkloadScale scale, std::uint64_t seed) override
    {
        buildGraph(scale, seed, false);
        const VertexId v = graph_->numVertices();
        d_level_ = DeviceArray<std::uint32_t>(alloc_, v, "hyb_level");
        d_level_.fill(kInf);
        d_level_[source_] = 0;
        // Worklists sized once for the worst case (whole graph in one
        // frontier); per-level reuse never reallocates.
        d_frontier_ =
            DeviceArray<std::uint64_t>(alloc_, v, "hyb_frontier");
        d_next_frontier_ =
            DeviceArray<std::uint64_t>(alloc_, v, "hyb_next_frontier");
        d_counter_ = DeviceArray<std::uint32_t>(alloc_, 1, "hyb_counter");
        d_frontier_[0] = source_;
        frontier_size_ = 1;
        scout_count_ = graph_->degree(source_);
        edges_to_check_ = graph_->numEdges() - scout_count_;
    }

    bool
    nextKernel(KernelInfo *out) override
    {
        if (level_ > 0) {
            // Host epilogue of the previous level: swap queues and
            // re-aim the direction heuristic at the new frontier.
            std::swap(d_frontier_, d_next_frontier_);
            frontier_size_ = next_size_;
            next_size_ = 0;
            scout_count_ = 0;
            for (std::uint32_t i = 0; i < frontier_size_; ++i) {
                scout_count_ += graph_->degree(
                    static_cast<VertexId>(d_frontier_[i]));
            }
            edges_to_check_ -=
                scout_count_ < edges_to_check_ ? scout_count_
                                               : edges_to_check_;
        }
        if (frontier_size_ == 0)
            return false;

        if (!bottom_up_ && scout_count_ > edges_to_check_ / kAlpha)
            bottom_up_ = true;
        else if (bottom_up_ &&
                 frontier_size_ < graph_->numVertices() / kBeta)
            bottom_up_ = false;

        HybridBfsWorkload *self = this;
        const std::uint32_t level = level_;
        out->threads_per_block = kGraphTpb;
        out->regs_per_thread = 56;
        if (bottom_up_) {
            out->name = name() + "-bu-level" + std::to_string(level);
            out->num_blocks = vertexBlocks();
            out->make_program = [self, level](WarpCtx ctx) {
                return bottomUpWarp(ctx, self, level);
            };
        } else {
            out->name = name() + "-td-level" + std::to_string(level);
            const std::uint32_t fsize = frontier_size_;
            out->num_blocks = (fsize + kGraphTpb - 1) / kGraphTpb;
            out->make_program = [self, level, fsize](WarpCtx ctx) {
                return topDownWarp(ctx, self, level, fsize);
            };
        }
        ++level_;
        return true;
    }

    void
    validate() const override
    {
        const auto ref = reference::bfsLevels(*graph_, source_);
        for (VertexId v = 0; v < graph_->numVertices(); ++v) {
            const std::uint32_t got = d_level_[v];
            const std::uint32_t want =
                ref[v] == reference::kInfinity ? kInf : ref[v];
            if (got != want) {
                panic("BFS-HYB: level mismatch at vertex %u "
                      "(got %u want %u)",
                      v, got, want);
            }
        }
    }

    /** Top-down: the BFS-TF frontier walk (queue gather + atomic
     *  appends). */
    static WarpProgram
    topDownWarp(WarpCtx ctx, HybridBfsWorkload *self, std::uint32_t level,
                std::uint32_t fsize)
    {
        std::vector<std::uint32_t> slots;
        LaneVec a;
        for (std::uint32_t lane = 0; lane < ctx.laneCount(); ++lane) {
            const std::uint32_t idx = ctx.globalThread(lane);
            if (idx < fsize) {
                slots.push_back(idx);
                a.push_back(self->d_frontier_.addr(idx));
            }
        }
        if (slots.empty())
            co_return;
        co_yield WarpOp::load(std::move(a));

        std::vector<VertexId> active;
        for (std::uint32_t idx : slots) {
            active.push_back(
                static_cast<VertexId>(self->d_frontier_[idx]));
        }

        a = {};
        for (VertexId v : active) {
            a.push_back(self->d_row_.addr(v));
            a.push_back(self->d_row_.addr(v + 1));
        }
        co_yield WarpOp::load(std::move(a));

        std::vector<std::uint64_t> pos, end;
        for (VertexId v : active) {
            pos.push_back(self->graph_->rowOffsets()[v]);
            end.push_back(self->graph_->rowOffsets()[v + 1]);
        }

        while (true) {
            LaneVec ea;
            std::vector<std::size_t> who;
            for (std::size_t i = 0; i < active.size(); ++i) {
                if (pos[i] < end[i]) {
                    ea.push_back(self->d_col_.addr(pos[i]));
                    who.push_back(i);
                }
            }
            if (who.empty())
                break;
            co_yield WarpOp::load(std::move(ea));

            LaneVec la;
            std::vector<VertexId> nbrs;
            for (std::size_t i : who) {
                const VertexId nb = self->d_col_[pos[i]];
                ++pos[i];
                nbrs.push_back(nb);
                la.push_back(self->d_level_.addr(nb));
            }
            co_yield WarpOp::load(std::move(la));

            LaneVec sa;
            for (VertexId nb : nbrs) {
                if (self->d_level_[nb] == kInf) {
                    self->d_level_[nb] = level + 1;
                    const std::uint32_t slot = self->next_size_++;
                    self->d_next_frontier_[slot] = nb;
                    sa.push_back(self->d_counter_.addr(0));
                    sa.push_back(self->d_next_frontier_.addr(slot));
                    sa.push_back(self->d_level_.addr(nb));
                }
            }
            if (!sa.empty())
                co_yield WarpOp::atomic(std::move(sa));
        }
    }

    /** Bottom-up: every unvisited vertex probes its neighbours for a
     *  parent on the current level, stopping at the first hit. */
    static WarpProgram
    bottomUpWarp(WarpCtx ctx, HybridBfsWorkload *self,
                 std::uint32_t level)
    {
        const VertexId v_count = self->graph_->numVertices();
        std::vector<VertexId> owned;
        LaneVec a;
        for (std::uint32_t lane = 0; lane < ctx.laneCount(); ++lane) {
            const VertexId v = ctx.globalThread(lane);
            if (v < v_count) {
                owned.push_back(v);
                a.push_back(self->d_level_.addr(v));
            }
        }
        if (owned.empty())
            co_return;
        co_yield WarpOp::load(std::move(a));

        std::vector<VertexId> unvisited;
        for (VertexId v : owned) {
            if (self->d_level_[v] == kInf)
                unvisited.push_back(v);
        }
        if (unvisited.empty())
            co_return;

        a = {};
        for (VertexId v : unvisited) {
            a.push_back(self->d_row_.addr(v));
            a.push_back(self->d_row_.addr(v + 1));
        }
        co_yield WarpOp::load(std::move(a));

        std::vector<std::uint64_t> pos, end;
        std::vector<bool> found(unvisited.size(), false);
        for (VertexId v : unvisited) {
            pos.push_back(self->graph_->rowOffsets()[v]);
            end.push_back(self->graph_->rowOffsets()[v + 1]);
        }

        while (true) {
            LaneVec ea;
            std::vector<std::size_t> who;
            for (std::size_t i = 0; i < unvisited.size(); ++i) {
                if (!found[i] && pos[i] < end[i]) {
                    ea.push_back(self->d_col_.addr(pos[i]));
                    who.push_back(i);
                }
            }
            if (who.empty())
                break;
            co_yield WarpOp::load(std::move(ea));

            LaneVec la;
            std::vector<std::pair<std::size_t, VertexId>> probes;
            for (std::size_t i : who) {
                const VertexId nb = self->d_col_[pos[i]];
                ++pos[i];
                probes.emplace_back(i, nb);
                la.push_back(self->d_level_.addr(nb));
            }
            co_yield WarpOp::load(std::move(la));

            LaneVec sa;
            for (const auto &[i, nb] : probes) {
                if (!found[i] && self->d_level_[nb] == level) {
                    // First settled parent wins; the lane stops
                    // probing (the bottom-up early exit).
                    found[i] = true;
                    const VertexId v = unvisited[i];
                    self->d_level_[v] = level + 1;
                    const std::uint32_t slot = self->next_size_++;
                    self->d_next_frontier_[slot] = v;
                    sa.push_back(self->d_counter_.addr(0));
                    sa.push_back(self->d_next_frontier_.addr(slot));
                    sa.push_back(self->d_level_.addr(v));
                }
            }
            if (!sa.empty())
                co_yield WarpOp::atomic(std::move(sa));
        }
    }

  private:
    DeviceArray<std::uint32_t> d_level_;
    DeviceArray<std::uint64_t> d_frontier_;
    DeviceArray<std::uint64_t> d_next_frontier_;
    DeviceArray<std::uint32_t> d_counter_;
    std::uint32_t level_ = 0;
    std::uint32_t frontier_size_ = 0;
    std::uint32_t next_size_ = 0;
    std::uint64_t scout_count_ = 0;
    std::uint64_t edges_to_check_ = 0;
    bool bottom_up_ = false;
};

} // namespace

std::unique_ptr<Workload>
makeHybridBfsWorkload()
{
    return std::make_unique<HybridBfsWorkload>();
}

} // namespace bauvm
