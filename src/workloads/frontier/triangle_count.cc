/**
 * @file
 * Triangle counting over the degree-ordered forward orientation: each
 * undirected edge is kept once, pointing at its higher-degree (lower
 * relabeled id) endpoint, which bounds forward degrees near sqrt(E)
 * and keeps hub enumeration tractable. One warp per vertex u
 * intersects, for every forward neighbour a, the already-streamed
 * prefix of fwd(u) with fwd(a); each triangle is counted exactly once,
 * at its largest-id corner. Per-warp work tracks the product of
 * neighbour list lengths — wildly skewed, phase-free but
 * data-dependent irregularity.
 */

#include <algorithm>
#include <string>
#include <vector>

#include "src/graph/reference_algorithms.h"
#include "src/sim/log.h"
#include "src/workloads/graph_workload.h"
#include "src/workloads/workload_factories.h"

namespace bauvm
{
namespace
{

class TriangleCountWorkload : public GraphWorkloadBase
{
  public:
    std::string name() const override { return "TC"; }

    void
    build(WorkloadScale scale, std::uint64_t seed) override
    {
        buildGraph(scale, seed, false);
        fwd_ = reference::buildForwardAdjacency(*graph_);
        const VertexId v = graph_->numVertices();
        const std::uint64_t m = fwd_.col.size();
        d_fwd_row_ =
            DeviceArray<std::uint64_t>(alloc_, v + 1, "tc_fwd_row");
        std::copy(fwd_.row.begin(), fwd_.row.end(),
                  d_fwd_row_.host().begin());
        // Zero-length allocations are fatal; a graph this sparse has
        // no triangles either way, so alias a 1-element array.
        d_fwd_col_ = DeviceArray<std::uint64_t>(
            alloc_, std::max<std::uint64_t>(m, 1), "tc_fwd_col");
        std::copy(fwd_.col.begin(), fwd_.col.end(),
                  d_fwd_col_.host().begin());
        d_count_ = DeviceArray<std::uint64_t>(alloc_, v, "tc_count");
        d_count_.fill(0);
    }

    bool
    nextKernel(KernelInfo *out) override
    {
        if (done_)
            return false;
        done_ = true;
        TriangleCountWorkload *self = this;
        out->name = "TC-count";
        out->threads_per_block = kGraphTpb;
        out->regs_per_thread = 56;
        out->num_blocks = warpPerVertexBlocks();
        out->make_program = [self](WarpCtx ctx) {
            return countWarp(ctx, self);
        };
        return true;
    }

    void
    validate() const override
    {
        const auto ref = reference::triangleCounts(*graph_);
        for (VertexId v = 0; v < graph_->numVertices(); ++v) {
            if (d_count_[v] != ref[v]) {
                panic("TC: triangle count mismatch at vertex %u "
                      "(got %llu want %llu)",
                      v,
                      static_cast<unsigned long long>(d_count_[v]),
                      static_cast<unsigned long long>(ref[v]));
            }
        }
    }

    /** One warp per vertex u: stream fwd(u), then for each forward
     *  neighbour merge its forward list against the current prefix. */
    static WarpProgram
    countWarp(WarpCtx ctx, TriangleCountWorkload *self)
    {
        const std::uint32_t warps_per_block =
            ctx.threads_per_block / ctx.warp_size;
        const VertexId u =
            ctx.block_id * warps_per_block + ctx.warp_in_block;
        if (u >= self->graph_->numVertices())
            co_return;

        co_yield loadOf(self->d_fwd_row_.addr(u),
                        self->d_fwd_row_.addr(u + 1));
        const std::uint64_t begin = self->fwd_.row[u];
        const std::uint64_t end = self->fwd_.row[u + 1];
        if (end - begin < 2) {
            LaneVec za;
            za.push_back(self->d_count_.addr(u));
            co_yield WarpOp::store(std::move(za));
            co_return;
        }

        // Stream u's own forward list once (coalesced chunks).
        for (std::uint64_t e = begin; e < end; e += ctx.warp_size) {
            const std::uint64_t chunk =
                std::min<std::uint64_t>(ctx.warp_size, end - e);
            LaneVec ea;
            for (std::uint64_t i = 0; i < chunk; ++i)
                ea.push_back(self->d_fwd_col_.addr(e + i));
            co_yield WarpOp::load(std::move(ea));
        }

        std::uint64_t triangles = 0;
        const VertexId *ucol = self->fwd_.col.data();
        for (std::uint64_t j = begin + 1; j < end; ++j) {
            const VertexId a = ucol[j];
            co_yield loadOf(self->d_fwd_row_.addr(a),
                            self->d_fwd_row_.addr(a + 1));
            const std::uint64_t abegin = self->fwd_.row[a];
            const std::uint64_t aend = self->fwd_.row[a + 1];
            // Merge fwd(a) against fwd(u)[begin..j): both ascending.
            std::uint64_t p = begin;
            for (std::uint64_t e = abegin; e < aend;
                 e += ctx.warp_size) {
                const std::uint64_t chunk =
                    std::min<std::uint64_t>(ctx.warp_size, aend - e);
                LaneVec ea;
                for (std::uint64_t i = 0; i < chunk; ++i)
                    ea.push_back(self->d_fwd_col_.addr(e + i));
                co_yield WarpOp::load(std::move(ea));
                for (std::uint64_t i = 0; i < chunk; ++i) {
                    const VertexId x = self->fwd_.col[e + i];
                    while (p < j && ucol[p] < x)
                        ++p;
                    if (p < j && ucol[p] == x)
                        ++triangles;
                }
            }
        }
        self->d_count_[u] = triangles;
        LaneVec sa;
        sa.push_back(self->d_count_.addr(u));
        co_yield WarpOp::store(std::move(sa));
    }

  private:
    reference::ForwardAdjacency fwd_;
    DeviceArray<std::uint64_t> d_fwd_row_;
    DeviceArray<std::uint64_t> d_fwd_col_;
    DeviceArray<std::uint64_t> d_count_;
    bool done_ = false;
};

} // namespace

std::unique_ptr<Workload>
makeTriangleCountWorkload()
{
    return std::make_unique<TriangleCountWorkload>();
}

} // namespace bauvm
