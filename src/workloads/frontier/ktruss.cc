/**
 * @file
 * K-truss decomposition (k = 4) by round-synchronous peeling over the
 * degree-ordered forward edge list (the TC orientation): each round
 * runs a support kernel — warp per vertex, re-counting for every
 * still-alive edge the triangles it closes with two other alive edges
 * — then a filter kernel — thread per edge, killing edges with
 * support < k - 2 and re-zeroing supports for the next round. Peeling
 * cascades: every removal can drop a neighbour edge below threshold,
 * so the alive set (and with it the support kernel's whole access
 * pattern) shrinks round by round until a fixed point.
 */

#include <algorithm>
#include <string>
#include <vector>

#include "src/graph/reference_algorithms.h"
#include "src/sim/log.h"
#include "src/workloads/graph_workload.h"
#include "src/workloads/workload_factories.h"

namespace bauvm
{
namespace
{

constexpr std::uint32_t kTrussK = 4;

class KtrussWorkload : public GraphWorkloadBase
{
  public:
    std::string name() const override { return "KTRUSS"; }

    void
    build(WorkloadScale scale, std::uint64_t seed) override
    {
        buildGraph(scale, seed, false);
        fwd_ = reference::buildForwardAdjacency(*graph_);
        const VertexId v = graph_->numVertices();
        const std::uint64_t m = fwd_.col.size();
        edges_ = m;
        d_fwd_row_ =
            DeviceArray<std::uint64_t>(alloc_, v + 1, "ktruss_fwd_row");
        std::copy(fwd_.row.begin(), fwd_.row.end(),
                  d_fwd_row_.host().begin());
        d_fwd_col_ = DeviceArray<std::uint64_t>(
            alloc_, std::max<std::uint64_t>(m, 1), "ktruss_fwd_col");
        std::copy(fwd_.col.begin(), fwd_.col.end(),
                  d_fwd_col_.host().begin());
        d_alive_ = DeviceArray<std::uint32_t>(
            alloc_, std::max<std::uint64_t>(m, 1), "ktruss_alive");
        d_alive_.fill(1);
        d_support_ = DeviceArray<std::uint32_t>(
            alloc_, std::max<std::uint64_t>(m, 1), "ktruss_support");
        d_support_.fill(0);
    }

    bool
    nextKernel(KernelInfo *out) override
    {
        KtrussWorkload *self = this;
        out->threads_per_block = kGraphTpb;
        out->regs_per_thread = 56;
        if (!filter_phase_) {
            if (round_ > 0 && !changed_)
                return false; // previous filter removed nothing
            if (edges_ == 0)
                return false;
            out->name =
                name() + "-support-r" + std::to_string(round_);
            out->num_blocks = warpPerVertexBlocks();
            out->make_program = [self](WarpCtx ctx) {
                return supportWarp(ctx, self);
            };
        } else {
            changed_ = false;
            out->name = name() + "-filter-r" + std::to_string(round_);
            const auto e32 = static_cast<std::uint32_t>(edges_);
            out->num_blocks = (e32 + kGraphTpb - 1) / kGraphTpb;
            out->make_program = [self](WarpCtx ctx) {
                return filterWarp(ctx, self);
            };
            ++round_;
        }
        filter_phase_ = !filter_phase_;
        return true;
    }

    void
    validate() const override
    {
        const auto ref = reference::ktrussAliveEdges(*graph_, kTrussK);
        for (std::uint64_t e = 0; e < edges_; ++e) {
            const std::uint32_t got = d_alive_[e];
            const std::uint32_t want = ref[e];
            if (got != want) {
                panic("KTRUSS: alive mismatch at edge %llu "
                      "(got %u want %u)",
                      static_cast<unsigned long long>(e), got, want);
            }
        }
    }

    /** Warp per vertex u: for every alive pair in fwd(u) whose closing
     *  edge is alive, bump all three supports. */
    static WarpProgram
    supportWarp(WarpCtx ctx, KtrussWorkload *self)
    {
        const std::uint32_t warps_per_block =
            ctx.threads_per_block / ctx.warp_size;
        const VertexId u =
            ctx.block_id * warps_per_block + ctx.warp_in_block;
        if (u >= self->graph_->numVertices())
            co_return;

        co_yield loadOf(self->d_fwd_row_.addr(u),
                        self->d_fwd_row_.addr(u + 1));
        const std::uint64_t begin = self->fwd_.row[u];
        const std::uint64_t end = self->fwd_.row[u + 1];
        if (end - begin < 2)
            co_return;

        // Stream u's forward list and alive flags (coalesced chunks).
        for (std::uint64_t e = begin; e < end; e += ctx.warp_size) {
            const std::uint64_t chunk =
                std::min<std::uint64_t>(ctx.warp_size, end - e);
            LaneVec ea;
            for (std::uint64_t i = 0; i < chunk; ++i) {
                ea.push_back(self->d_fwd_col_.addr(e + i));
                ea.push_back(self->d_alive_.addr(e + i));
            }
            co_yield WarpOp::load(std::move(ea));
        }

        const VertexId *col = self->fwd_.col.data();
        for (std::uint64_t j = begin + 1; j < end; ++j) {
            if (!self->d_alive_[j])
                continue;
            const VertexId a = col[j];
            co_yield loadOf(self->d_fwd_row_.addr(a),
                            self->d_fwd_row_.addr(a + 1));
            const std::uint64_t abegin = self->fwd_.row[a];
            const std::uint64_t aend = self->fwd_.row[a + 1];
            // Merge fwd(a) with the alive prefix of fwd(u)[begin..j).
            std::uint64_t p = begin;
            for (std::uint64_t e = abegin; e < aend;
                 e += ctx.warp_size) {
                const std::uint64_t chunk =
                    std::min<std::uint64_t>(ctx.warp_size, aend - e);
                LaneVec ea;
                for (std::uint64_t i = 0; i < chunk; ++i) {
                    ea.push_back(self->d_fwd_col_.addr(e + i));
                    ea.push_back(self->d_alive_.addr(e + i));
                }
                co_yield WarpOp::load(std::move(ea));

                LaneVec sa;
                for (std::uint64_t i = 0; i < chunk; ++i) {
                    const std::uint64_t eidx = e + i;
                    const VertexId x = col[eidx];
                    while (p < j && col[p] < x)
                        ++p;
                    if (p < j && col[p] == x &&
                        self->d_alive_[p] && self->d_alive_[eidx]) {
                        // Triangle (u, col[p]=x, a): edges p (u-x),
                        // j (u-a), eidx (a-x) — all alive.
                        ++self->d_support_[p];
                        ++self->d_support_[j];
                        ++self->d_support_[eidx];
                        sa.push_back(self->d_support_.addr(p));
                        sa.push_back(self->d_support_.addr(j));
                        sa.push_back(self->d_support_.addr(eidx));
                    }
                }
                if (!sa.empty())
                    co_yield WarpOp::atomic(std::move(sa));
            }
        }
    }

    /** Thread per forward edge: peel under-supported edges and reset
     *  supports for the next round. */
    static WarpProgram
    filterWarp(WarpCtx ctx, KtrussWorkload *self)
    {
        const std::uint64_t e_count = self->edges_;
        std::vector<std::uint64_t> owned;
        LaneVec a;
        for (std::uint32_t lane = 0; lane < ctx.laneCount(); ++lane) {
            const std::uint64_t e = ctx.globalThread(lane);
            if (e < e_count) {
                owned.push_back(e);
                a.push_back(self->d_alive_.addr(e));
                a.push_back(self->d_support_.addr(e));
            }
        }
        if (owned.empty())
            co_return;
        co_yield WarpOp::load(std::move(a));

        LaneVec sa;
        for (std::uint64_t e : owned) {
            if (self->d_alive_[e] &&
                self->d_support_[e] < kTrussK - 2) {
                self->d_alive_[e] = 0;
                self->changed_ = true;
                sa.push_back(self->d_alive_.addr(e));
            }
            // Every thread re-zeroes its edge's support so the next
            // support pass starts clean.
            self->d_support_[e] = 0;
            sa.push_back(self->d_support_.addr(e));
        }
        co_yield WarpOp::store(std::move(sa));
    }

  private:
    reference::ForwardAdjacency fwd_;
    DeviceArray<std::uint64_t> d_fwd_row_;
    DeviceArray<std::uint64_t> d_fwd_col_;
    DeviceArray<std::uint32_t> d_alive_;
    DeviceArray<std::uint32_t> d_support_;
    std::uint64_t edges_ = 0;
    std::uint32_t round_ = 0;
    bool filter_phase_ = false;
    bool changed_ = true;
};

} // namespace

std::unique_ptr<Workload>
makeKtrussWorkload()
{
    return std::make_unique<KtrussWorkload>();
}

} // namespace bauvm
