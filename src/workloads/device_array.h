/**
 * @file
 * Unified-memory device arrays.
 *
 * DeviceArray<T> pairs a host-backed functional store with a virtual
 * address range in the simulated unified address space. Kernels read
 * and write elements directly (the functional side) and yield the
 * element addresses to the timing model (the performance side); the UVM
 * runtime migrates the pages those addresses live on.
 */

#ifndef BAUVM_WORKLOADS_DEVICE_ARRAY_H_
#define BAUVM_WORKLOADS_DEVICE_ARRAY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/log.h"
#include "src/sim/types.h"

namespace bauvm
{

/** Page-aligned bump allocator for the unified address space. */
class DeviceAllocator
{
  public:
    /** @param page_bytes UVM page size (allocation alignment). */
    explicit DeviceAllocator(std::uint64_t page_bytes = 64 * 1024)
        : page_bytes_(page_bytes), next_(page_bytes)
    {
    }

    /** One registered allocation range. */
    struct Range {
        VAddr base;
        std::uint64_t bytes;
        std::string name;
    };

    /** Reserves @p bytes, page aligned. */
    VAddr
    allocate(std::uint64_t bytes, std::string name)
    {
        if (bytes == 0)
            fatal("DeviceAllocator: zero-byte allocation '%s'",
                  name.c_str());
        const VAddr base = next_;
        const std::uint64_t rounded =
            (bytes + page_bytes_ - 1) / page_bytes_ * page_bytes_;
        next_ += rounded;
        ranges_.push_back(Range{base, bytes, std::move(name)});
        return base;
    }

    const std::vector<Range> &ranges() const { return ranges_; }
    std::uint64_t pageBytes() const { return page_bytes_; }

    /**
     * Moves the bump pointer to @p base before anything is allocated,
     * placing all subsequent allocations in [base + page, ...). Used by
     * multi-tenant runs to give each tenant a disjoint VA slice. Keeps
     * the one-page guard so vpn 0 relative to the slice stays unmapped.
     */
    void
    rebase(VAddr base)
    {
        if (!ranges_.empty())
            fatal("DeviceAllocator: rebase after allocation");
        if (base % page_bytes_ != 0)
            fatal("DeviceAllocator: rebase to unaligned base");
        next_ = base + page_bytes_;
    }

    /** First unallocated virtual address (page aligned). */
    VAddr watermark() const { return next_; }

    /** Total footprint in bytes, rounded up to whole pages. */
    std::uint64_t
    footprintBytes() const
    {
        std::uint64_t total = 0;
        for (const auto &r : ranges_) {
            total += (r.bytes + page_bytes_ - 1) / page_bytes_ *
                     page_bytes_;
        }
        return total;
    }

    /** Footprint in pages. */
    std::uint64_t
    footprintPages() const
    {
        return footprintBytes() / page_bytes_;
    }

  private:
    std::uint64_t page_bytes_;
    VAddr next_;
    std::vector<Range> ranges_;
};

/** A typed array living in unified memory. */
template <typename T>
class DeviceArray
{
  public:
    DeviceArray() = default;

    DeviceArray(DeviceAllocator &alloc, std::size_t n, std::string name)
        : data_(n), base_(alloc.allocate(n * sizeof(T), std::move(name)))
    {
    }

    std::size_t size() const { return data_.size(); }

    T &operator[](std::size_t i) { return data_[i]; }
    const T &operator[](std::size_t i) const { return data_[i]; }

    /** Virtual address of element @p i. */
    VAddr addr(std::size_t i) const { return base_ + i * sizeof(T); }

    VAddr base() const { return base_; }

    std::vector<T> &host() { return data_; }
    const std::vector<T> &host() const { return data_; }

    void fill(const T &v) { std::fill(data_.begin(), data_.end(), v); }

  private:
    std::vector<T> data_;
    VAddr base_ = 0;
};

} // namespace bauvm

#endif // BAUVM_WORKLOADS_DEVICE_ARRAY_H_
