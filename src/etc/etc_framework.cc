#include "src/etc/etc_framework.h"

#include <algorithm>

#include "src/sim/log.h"

namespace bauvm
{

EtcFramework::EtcFramework(const EtcConfig &config, EtcAppClass app_class,
                           GpuMemoryManager &manager,
                           MemoryHierarchyBase &hierarchy, UvmRuntimeBase &runtime,
                           BlockDispatcher &dispatcher,
                           std::uint32_t num_sms)
    : config_(config), app_class_(app_class), manager_(manager),
      hierarchy_(hierarchy), runtime_(runtime), dispatcher_(dispatcher),
      num_sms_(num_sms), active_sms_(num_sms)
{
}

void
EtcFramework::applyStatic()
{
    if (config_.capacity_compression) {
        if (!manager_.unlimited()) {
            const auto grown = static_cast<std::uint64_t>(
                static_cast<double>(manager_.capacityPages()) *
                config_.compression_ratio);
            manager_.setCapacityPages(std::max<std::uint64_t>(grown, 1));
        }
        hierarchy_.setExtraL2Latency(config_.compression_latency);
    }
    // PE is only sensible for regular applications; the paper (and the
    // ETC authors) disable it for irregular ones.
    if (config_.proactive_eviction &&
        app_class_ != EtcAppClass::Irregular) {
        runtime_.enableProactiveEviction(0.95);
    }
}

void
EtcFramework::setActiveSms(std::uint32_t target)
{
    target = std::max<std::uint32_t>(2, std::min(target, num_sms_));
    if (target == active_sms_)
        return;
    for (std::uint32_t s = 0; s < num_sms_; ++s)
        dispatcher_.setSmEnabled(s, s < target);
    active_sms_ = target;
    ++transitions_;
}

std::uint32_t
EtcFramework::throttledSms() const
{
    return num_sms_ - active_sms_;
}

void
EtcFramework::onBatchEnd(Cycle now)
{
    if (!config_.memory_aware_throttling ||
        app_class_ == EtcAppClass::RegularNoSharing) {
        return;
    }

    if (!triggered_) {
        if (manager_.evictions() == 0)
            return;
        // Oversubscription detected: static initial throttle of half
        // the SMs, then epoch-based adaptation.
        triggered_ = true;
        setActiveSms(num_sms_ / 2);
        epoch_start_ = now;
        epoch_premature_base_ = manager_.prematureEvictions();
        epoch_eviction_base_ = manager_.evictions();
        prev_thrash_ = -1.0;
        return;
    }

    if (now - epoch_start_ < config_.epoch_cycles)
        return;

    const std::uint64_t prem =
        manager_.prematureEvictions() - epoch_premature_base_;
    const std::uint64_t evs =
        manager_.evictions() - epoch_eviction_base_;
    const double thrash =
        evs ? static_cast<double>(prem) / static_cast<double>(evs) : 0.0;

    if (prev_thrash_ >= 0.0) {
        // MT toggles between full and half the SMs (the static 50%
        // throttle of the ETC paper); it never throttles deeper.
        if (thrash > prev_thrash_ * 1.05) {
            setActiveSms(num_sms_ / 2);
        } else if (thrash < prev_thrash_ * 0.5 || thrash == 0.0) {
            setActiveSms(num_sms_);
        }
    }
    prev_thrash_ = thrash;
    epoch_start_ = now;
    epoch_premature_base_ = manager_.prematureEvictions();
    epoch_eviction_base_ = manager_.evictions();
}

} // namespace bauvm
