/**
 * @file
 * ETC baseline (Li et al., ASPLOS'19): the memory-oversubscription
 * framework the paper compares against.
 *
 * ETC classifies applications and applies three techniques. For the
 * irregular applications evaluated here (following the paper, which
 * replicates the ETC authors' own choice):
 *  - Proactive Eviction (PE) is DISABLED — its timing prediction breaks
 *    down when many pages are touched in a short window;
 *  - Memory-aware Throttling (MT) statically throttles half the SMs
 *    when oversubscription is detected, then alternates detection and
 *    execution epochs, throttling further when thrashing worsens and
 *    unthrottling when it subsides;
 *  - Capacity Compression (CC) grows the effective device-memory
 *    capacity by the compression ratio at the cost of extra latency on
 *    every L2 access.
 */

#ifndef BAUVM_ETC_ETC_FRAMEWORK_H_
#define BAUVM_ETC_ETC_FRAMEWORK_H_

#include <cstdint>

#include "src/gpu/block_dispatcher.h"
#include "src/mem/memory_hierarchy.h"
#include "src/sim/config.h"
#include "src/sim/types.h"
#include "src/uvm/gpu_memory_manager.h"
#include "src/uvm/uvm_runtime.h"

namespace bauvm
{

/** Application classes ETC distinguishes. */
enum class EtcAppClass {
    RegularNoSharing,
    RegularWithSharing,
    Irregular,
};

/** Runtime controller implementing MT + CC (+ optional PE). */
class EtcFramework
{
  public:
    EtcFramework(const EtcConfig &config, EtcAppClass app_class,
                 GpuMemoryManager &manager, MemoryHierarchyBase &hierarchy,
                 UvmRuntimeBase &runtime, BlockDispatcher &dispatcher,
                 std::uint32_t num_sms);

    /**
     * Applies the static parts (CC capacity/latency, PE arming) after
     * the workload footprint set the base capacity. Call once, after
     * GpuMemoryManager::setCapacityPages.
     */
    void applyStatic();

    /** Batch-end hook driving MT's epoch state machine. */
    void onBatchEnd(Cycle now);

    std::uint32_t throttledSms() const;
    std::uint64_t throttleTransitions() const { return transitions_; }

  private:
    void setActiveSms(std::uint32_t target);

    EtcConfig config_;
    EtcAppClass app_class_;
    GpuMemoryManager &manager_;
    MemoryHierarchyBase &hierarchy_;
    UvmRuntimeBase &runtime_;
    BlockDispatcher &dispatcher_;
    std::uint32_t num_sms_;

    bool triggered_ = false;
    std::uint32_t active_sms_;
    Cycle epoch_start_ = 0;
    std::uint64_t epoch_premature_base_ = 0;
    std::uint64_t epoch_eviction_base_ = 0;
    double prev_thrash_ = -1.0;
    std::uint64_t transitions_ = 0;
};

} // namespace bauvm

#endif // BAUVM_ETC_ETC_FRAMEWORK_H_
