/**
 * @file
 * ObserverMode: compile-time observer selection for the hot path.
 *
 * SimHooks keeps runtime observers behind nullable pointers; that is
 * the right shape for cold sites (block lifecycle, eviction policy,
 * batch bookkeeping) but puts one predictable-yet-present branch on
 * every fault, translation and cache access. The hot classes
 * (MemoryHierarchyT, FaultBufferT, UvmRuntimeT, SmT) are therefore
 * templated on an ObserverMode; emission sites are written as
 *
 *     if constexpr (observesTrace(M)) {
 *         if (hooks_.trace) { ... }
 *     }
 *
 * so the whole site — including the null check — compiles away in the
 * modes that cannot observe it. GpuUvmSystem picks the mode once per
 * cell from its SimConfig (trace/audit flags) and instantiates the
 * matching specialization behind a thin construction-time seam
 * (EngineBase); nothing dispatches on the mode per event.
 *
 * ObserverMode::Dynamic preserves the historical behaviour — every
 * site compiled in, guarded by the runtime null check — and is the
 * default for code that constructs components directly (unit tests,
 * micro-benchmarks) via the un-suffixed aliases (MemoryHierarchy,
 * UvmRuntime, Sm, FaultBuffer).
 */

#ifndef BAUVM_CHECK_OBSERVER_MODE_H_
#define BAUVM_CHECK_OBSERVER_MODE_H_

#include <cstdint>

namespace bauvm
{

/** Which observers a specialized hot path can ever see attached. */
enum class ObserverMode : std::uint8_t {
    Dynamic, //!< decided at run time: all sites present, null-checked
    None,    //!< no observers: every emission site is dead code
    Trace,   //!< timeline tracing only
    Audit,   //!< online model auditing only
    Both,    //!< tracing and auditing
};

/** True when mode @p m can have a TraceSink attached. */
constexpr bool
observesTrace(ObserverMode m)
{
    return m == ObserverMode::Dynamic || m == ObserverMode::Trace ||
           m == ObserverMode::Both;
}

/** True when mode @p m can have a ModelAuditor attached. */
constexpr bool
observesAudit(ObserverMode m)
{
    return m == ObserverMode::Dynamic || m == ObserverMode::Audit ||
           m == ObserverMode::Both;
}

/** The specialized (never Dynamic) mode for a concrete observer set. */
constexpr ObserverMode
observerModeFor(bool trace, bool audit)
{
    if (trace && audit) {
        return ObserverMode::Both;
    }
    if (trace) {
        return ObserverMode::Trace;
    }
    if (audit) {
        return ObserverMode::Audit;
    }
    return ObserverMode::None;
}

constexpr const char *
observerModeName(ObserverMode m)
{
    switch (m) {
    case ObserverMode::Dynamic:
        return "dynamic";
    case ObserverMode::None:
        return "none";
    case ObserverMode::Trace:
        return "trace";
    case ObserverMode::Audit:
        return "audit";
    case ObserverMode::Both:
        return "both";
    }
    return "?";
}

} // namespace bauvm

#endif // BAUVM_CHECK_OBSERVER_MODE_H_
