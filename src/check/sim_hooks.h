/**
 * @file
 * SimHooks: the single observer aggregate threaded through the
 * simulated system.
 *
 * Every instrumented component used to grow its own setTrace() setter;
 * adding a second observer (the model auditor) would have meant touching
 * every constructor *and* every setter again. Instead the system owns
 * one SimHooks value — a plain aggregate of non-owning observer
 * pointers plus the simulation clock — and passes it once, at
 * construction, down the component tree. Components copy the aggregate
 * (two pointers and a clock; all stable for the system's lifetime) and
 * guard every emission site with a null check, so a run with no observers
 * pays one predictable branch per site and nothing else, exactly like
 * the old per-component TraceSink wiring.
 *
 * Adding a future observer is now: add a pointer here, wire it in
 * GpuUvmSystem, and instrument the sites that care — no constructor or
 * setter churn anywhere else.
 *
 * The hot classes additionally template their event-path methods on an
 * ObserverMode (src/check/observer_mode.h) so the per-site null checks
 * compile away entirely in the modes that cannot observe them; SimHooks
 * remains the single aggregate those specializations read from.
 */

#ifndef BAUVM_CHECK_SIM_HOOKS_H_
#define BAUVM_CHECK_SIM_HOOKS_H_

namespace bauvm
{

class TraceSink;
class ModelAuditor;
class EventQueue;

/** Non-owning observer bundle passed once at construction (file doc). */
struct SimHooks {
    /** Timeline tracing sink, or nullptr when tracing is off. */
    TraceSink *trace = nullptr;
    /** Online model auditor, or nullptr when auditing is off. */
    ModelAuditor *audit = nullptr;
    /** Simulation clock for observers that need "now" at emission
     *  sites which do not already carry a cycle (prefetcher, VTC). */
    const EventQueue *clock = nullptr;
};

} // namespace bauvm

#endif // BAUVM_CHECK_SIM_HOOKS_H_
