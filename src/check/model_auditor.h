/**
 * @file
 * ModelAuditor: an online, zero-cost-when-disabled checker of the
 * simulator's conservation invariants.
 *
 * The auditor maintains *shadow state* mirrored from the same hook
 * sites the tracer uses and asserts, on every event, that the
 * simulation's observable state agrees with the model the paper
 * describes:
 *
 *  - **Per-page residency state machine.** Every page is host-resident,
 *    device-resident, in flight H2D (migrating in) or in flight D2H
 *    (evicting out). A page is never migrated twice concurrently, never
 *    migrated while device-resident, and never evicted unless it is
 *    device-resident (no double eviction, no eviction of a non-resident
 *    page).
 *  - **GPU-memory occupancy conservation.** A shadow committed-frame
 *    counter (reserve on migration start, release on eviction
 *    completion) must agree with GpuMemoryManager's status tracker at
 *    every hook, and must never exceed capacity.
 *  - **Batch lifecycle legality.** Idle -> InterruptPending ->
 *    BatchActive, with batch chaining only out of a completed batch,
 *    and Unobtrusive Eviction's preemptive eviction only at batch start
 *    (before any migration of the batch was scheduled).
 *  - **PCIe per-channel byte conservation.** Bytes put on each channel
 *    by migrations/evictions must equal the bytes the link model
 *    accounts, which must equal RunResult.pcie_{h2d,d2h}_bytes at the
 *    end of the run; per-channel transfer starts are FIFO-monotonic.
 *  - **Fault-buffer entry accounting.** A shadow replica of the
 *    buffer's entry/overflow bookkeeping must agree in size with the
 *    hardware buffer at every insert and drain.
 *  - **TLB/page-table coherence.** No translation is ever cached — or
 *    served from a TLB — for a page that is not device-resident, and a
 *    page-table walk's resident/fault outcome must agree with the
 *    shadow residency (catches missed shootdowns after eviction).
 *
 * On a violation the auditor emits a structured diagnostic (cell,
 * cycle, page, invariant, expected vs observed, plus the tail of the
 * trace ring when tracing is on) and panics, which under the sweep
 * runner's ScopedAbortCapture fails the cell the same way any other
 * simulation abort does.
 *
 * Auditing is read-only with respect to the simulation: hooks receive
 * observed values by argument and never touch simulated components, so
 * an audited run is cycle-for-cycle (and stdout byte-for-byte)
 * identical to an unaudited one.
 */

#ifndef BAUVM_CHECK_MODEL_AUDITOR_H_
#define BAUVM_CHECK_MODEL_AUDITOR_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/mem/tenant_directory.h"
#include "src/sim/config.h"
#include "src/sim/types.h"

namespace bauvm
{

class EventQueue;
class TraceSink;
struct RunResult;

/** Online invariant checker fed from SimHooks sites (see file doc). */
class ModelAuditor
{
  public:
    /**
     * @param config  UVM parameters (page size, fault-buffer capacity)
     *                the shadow models replicate.
     * @param clock   simulation clock for diagnostics; may be null.
     * @param trace   trace ring whose tail is appended to diagnostics;
     *                may be null.
     */
    explicit ModelAuditor(const UvmConfig &config,
                          const EventQueue *clock = nullptr,
                          const TraceSink *trace = nullptr);

    /** Labels diagnostics with the cell being audited ("BFS-TWC"). */
    void setContext(std::string context);

    /**
     * Registers the run's tenant directory (multi-tenant runs only):
     * the auditor then shadows per-tenant frame accounting and asserts
     * the quota invariants — a StrictQuota tenant never exceeds its
     * cap, the per-tenant counters always sum to the global committed
     * count, and every committed page lies inside its owner's VA
     * slice.
     */
    void setTenantDirectory(const TenantDirectory *dir);

    // ---- GpuMemoryManager sites -------------------------------------

    /** Device capacity changed (0 = unlimited). */
    void onCapacitySet(std::uint64_t capacity_pages);

    /** A frame was reserved for an inbound transfer, charged to
     *  @p tenant (kNoTenant outside multi-tenant runs). */
    void onFrameReserved(std::uint64_t observed_committed,
                         TenantId tenant = kNoTenant);

    /**
     * Preload commit path (traditional-GPU mode): @p vpn will be
     * committed without a migration transfer. Marks the page in flight
     * so the subsequent onPageCommitted() is legal.
     */
    void onPreload(PageNum vpn);

    /** Inbound page mapped into its frame. */
    void onPageCommitted(PageNum vpn, Cycle now,
                         std::uint64_t observed_committed);

    /** Eviction victim selected and unmapped (frame still committed). */
    void onEvictionBegin(PageNum vpn, Cycle now,
                         std::uint64_t observed_committed);

    /** Eviction D2H transfer finished; the frame was released. */
    void onEvictionComplete(PageNum vpn,
                            std::uint64_t observed_committed);

    // ---- UvmRuntime sites -------------------------------------------

    /** A fault interrupt was raised (top-half dispatch scheduled). */
    void onInterruptRaised(Cycle now);

    /** Batch processing began. @p chained: started directly from the
     *  previous batch's end, skipping the interrupt round trip. */
    void onBatchBegin(Cycle now, bool chained);

    /** UE's top-half preemptive eviction was launched. */
    void onPreemptiveEviction(Cycle now);

    /** One migration of the active batch was put on the H2D channel. */
    void onMigrationScheduled(PageNum vpn, Cycle now, Cycle wire_begin,
                              Cycle wire_end, std::uint64_t wire_bytes);

    /** One eviction was put on the D2H channel (skipped when the
     *  ideal-eviction knob completes evictions instantaneously). */
    void onEvictionTransfer(PageNum vpn, Cycle wire_begin,
                            Cycle wire_end, std::uint64_t wire_bytes);

    /** The active batch completed. @p fault_pages/@p prefetch_pages:
     *  the BatchRecord page counts the runtime is about to report. */
    void onBatchEnd(Cycle now, std::uint32_t fault_pages,
                    std::uint32_t prefetch_pages);

    // ---- FaultBuffer sites ------------------------------------------

    /** A fault was inserted (or merged/overflowed). @p observed_entries
     *  and @p observed_overflow are the buffer's sizes after insert. */
    void onFaultBuffered(PageNum vpn, Cycle now,
                         std::size_t observed_entries,
                         std::size_t observed_overflow);

    /** The buffer was drained into a batch. @p drained: records
     *  returned; the observed sizes are post-refill. */
    void onFaultDrained(std::size_t drained,
                        std::size_t observed_entries,
                        std::size_t observed_overflow);

    // ---- PcieLink sites ---------------------------------------------

    /** One transfer was scheduled on a channel. */
    void onPcieTransfer(bool h2d, std::uint64_t bytes, Cycle begin,
                        Cycle end);

    // ---- MemoryHierarchy / TLB sites --------------------------------

    /** A TLB lookup hit for @p vpn (translation served). */
    void onTranslationHit(PageNum vpn);

    /** A translation for @p vpn was inserted into a TLB. */
    void onTranslationInsert(PageNum vpn);

    /** Every cached translation for @p vpn was shot down. */
    void onTranslationInvalidate(PageNum vpn);

    /** A page-table walk resolved. @p observed_fault: the walker found
     *  the page non-resident. */
    void onWalkResolved(PageNum vpn, Cycle now, bool observed_fault);

    // ---- end of run -------------------------------------------------

    /**
     * End-of-run conservation checks: no leaked in-flight pages, batch
     * machinery idle, fault buffer empty, shadow occupancy equal to the
     * manager's (@p observed_committed / @p observed_resident), and
     * shadow PCIe bytes equal to both the link's accounting and the
     * RunResult the caller is about to return.
     */
    void finalize(const RunResult &result,
                  std::uint64_t observed_committed,
                  std::size_t observed_resident);

    // ---- introspection (tests, reporting) ---------------------------

    /** Total invariant checks performed so far. */
    std::uint64_t checksPerformed() const { return checks_; }

    /** True while @p vpn has at least one shadow-cached translation. */
    bool translationCached(PageNum vpn) const
    {
        return cached_translations_.count(vpn) != 0;
    }

    /** Shadow committed-frame counter. */
    std::uint64_t shadowCommitted() const { return committed_; }

    /** Shadow device-resident page count. */
    std::size_t shadowResident() const { return resident_count_; }

  private:
    /** Per-page shadow flags (absent map entry = host-resident). */
    struct ShadowPage {
        bool resident = false; //!< device-resident (mapped)
        bool in_h2d = false;   //!< queued or transferring in
        bool in_d2h = false;   //!< eviction transfer in flight
        bool empty() const { return !resident && !in_h2d && !in_d2h; }
    };

    enum class BatchState { Idle, InterruptPending, BatchActive };

    ShadowPage &page(PageNum vpn) { return pages_[vpn]; }
    /** Drops @p vpn's entry when it returned to plain host residency. */
    void compact(PageNum vpn);
    /** One invariant comparison; fails loudly on mismatch. */
    void check(bool ok, const char *invariant, PageNum vpn,
               const std::string &expected, const std::string &observed);
    [[noreturn]] void fail(const char *invariant, PageNum vpn,
                           const std::string &expected,
                           const std::string &observed);
    std::string describe(const ShadowPage &p) const;
    static const char *batchStateName(BatchState s);

    UvmConfig config_;
    const EventQueue *clock_;
    const TraceSink *trace_;
    std::string context_ = "?";

    // Residency / occupancy shadow.
    std::unordered_map<PageNum, ShadowPage> pages_;
    std::size_t resident_count_ = 0;
    std::size_t in_flight_h2d_ = 0;
    std::size_t in_flight_d2h_ = 0;
    std::uint64_t capacity_pages_ = 0; //!< 0 = unlimited
    std::uint64_t committed_ = 0;
    const TenantDirectory *dir_ = nullptr;
    std::vector<std::uint64_t> committed_by_; //!< per-tenant shadow
    std::uint64_t commits_ = 0;
    std::uint64_t evictions_ = 0;

    // Batch lifecycle shadow.
    BatchState batch_ = BatchState::Idle;
    std::uint64_t batches_ = 0;
    std::uint64_t migrations_this_batch_ = 0;

    // PCIe shadow (wire bytes as the link model accounts them).
    std::uint64_t link_h2d_bytes_ = 0; //!< from the link's transfer hook
    std::uint64_t link_d2h_bytes_ = 0;
    std::uint64_t sched_h2d_bytes_ = 0; //!< from the runtime's schedule
    std::uint64_t sched_d2h_bytes_ = 0; //!< hooks (independent tally)
    Cycle h2d_last_begin_ = 0;
    Cycle d2h_last_begin_ = 0;

    // Fault-buffer shadow replica.
    std::unordered_set<PageNum> fb_entries_;
    std::vector<PageNum> fb_overflow_;

    // Translation-coherence shadow: vpn -> cached-structure count.
    std::unordered_map<PageNum, std::uint32_t> cached_translations_;

    std::uint64_t checks_ = 0;
};

} // namespace bauvm

#endif // BAUVM_CHECK_MODEL_AUDITOR_H_
