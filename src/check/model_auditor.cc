#include "src/check/model_auditor.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "src/core/system.h"
#include "src/sim/event_queue.h"
#include "src/sim/log.h"
#include "src/trace/trace_sink.h"

namespace bauvm
{

namespace
{

/** printf into a std::string (diagnostics are off the hot path). */
std::string
format(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

std::string
format(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap2);
    va_end(ap2);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<std::size_t>(n) + 1);
        std::vsnprintf(out.data(), out.size(), fmt, ap);
        out.resize(static_cast<std::size_t>(n));
    }
    va_end(ap);
    return out;
}

/** Number of trace-ring records appended to a diagnostic. */
constexpr std::uint64_t kDiagnosticTraceTail = 16;

} // namespace

ModelAuditor::ModelAuditor(const UvmConfig &config,
                           const EventQueue *clock,
                           const TraceSink *trace)
    : config_(config), clock_(clock), trace_(trace)
{
}

void
ModelAuditor::setContext(std::string context)
{
    context_ = std::move(context);
}

const char *
ModelAuditor::batchStateName(BatchState s)
{
    switch (s) {
      case BatchState::Idle:
        return "Idle";
      case BatchState::InterruptPending:
        return "InterruptPending";
      case BatchState::BatchActive:
        return "BatchActive";
    }
    return "?";
}

std::string
ModelAuditor::describe(const ShadowPage &p) const
{
    return format("{resident=%d in_h2d=%d in_d2h=%d}", p.resident,
                  p.in_h2d, p.in_d2h);
}

void
ModelAuditor::compact(PageNum vpn)
{
    auto it = pages_.find(vpn);
    if (it != pages_.end() && it->second.empty())
        pages_.erase(it);
}

void
ModelAuditor::check(bool ok, const char *invariant, PageNum vpn,
                    const std::string &expected,
                    const std::string &observed)
{
    ++checks_;
    if (!ok)
        fail(invariant, vpn, expected, observed);
}

void
ModelAuditor::fail(const char *invariant, PageNum vpn,
                   const std::string &expected,
                   const std::string &observed)
{
    std::string msg =
        format("ModelAuditor: invariant '%s' violated\n", invariant);
    msg += format("  cell:     %s\n", context_.c_str());
    msg += format("  cycle:    %" PRIu64 "\n",
                  clock_ ? clock_->now() : 0);
    msg += format("  page:     %" PRIu64 "\n", vpn);
    msg += format("  expected: %s\n", expected.c_str());
    msg += format("  observed: %s", observed.c_str());
    if (trace_ && trace_->size() > 0) {
        const std::uint64_t n =
            std::min<std::uint64_t>(trace_->size(), kDiagnosticTraceTail);
        msg += format("\n  trace tail (last %" PRIu64 " of %" PRIu64
                      " records):",
                      n, trace_->size());
        for (std::uint64_t i = trace_->size() - n; i < trace_->size();
             ++i) {
            const TraceRecord &r = trace_->at(i);
            msg += format("\n    [%" PRIu64 ", %" PRIu64 "] %s %s "
                          "arg0=%" PRIu64 " arg1=%u",
                          r.begin, r.end,
                          traceTrackName(r.track).c_str(),
                          traceEventTypeName(r.eventType()), r.arg0,
                          r.arg1);
        }
    }
    panic("%s", msg.c_str());
}

// ---- GpuMemoryManager sites ----------------------------------------

void
ModelAuditor::onCapacitySet(std::uint64_t capacity_pages)
{
    check(capacity_pages == 0 || capacity_pages >= committed_,
          "occupancy-conservation", 0,
          format("new capacity >= %" PRIu64 " committed frames",
                 committed_),
          format("capacity shrunk to %" PRIu64, capacity_pages));
    capacity_pages_ = capacity_pages;
}

void
ModelAuditor::setTenantDirectory(const TenantDirectory *dir)
{
    dir_ = dir;
    committed_by_.assign(dir ? dir->size() : 0, 0);
}

void
ModelAuditor::onFrameReserved(std::uint64_t observed_committed,
                              TenantId tenant)
{
    if (capacity_pages_ != 0) {
        ++committed_;
        check(committed_ <= capacity_pages_, "occupancy-conservation",
              0,
              format("committed frames <= capacity %" PRIu64,
                     capacity_pages_),
              format("reservation raised committed to %" PRIu64,
                     committed_));
    }
    check(observed_committed == committed_, "occupancy-conservation", 0,
          format("manager status tracker == shadow %" PRIu64,
                 committed_),
          format("manager reports %" PRIu64 " committed frames",
                 observed_committed));
    if (dir_ && tenant != kNoTenant) {
        ++committed_by_[tenant];
        if (dir_->policy() == SharePolicy::StrictQuota) {
            const std::uint64_t quota =
                dir_->context(tenant).quota_pages;
            check(committed_by_[tenant] <= quota, "tenant-quota",
                  tenant,
                  format("tenant %u committed frames <= quota %" PRIu64,
                         static_cast<unsigned>(tenant), quota),
                  format("reservation raised tenant frames to %" PRIu64,
                         committed_by_[tenant]));
        }
        std::uint64_t sum = 0;
        for (std::uint64_t c : committed_by_)
            sum += c;
        check(sum <= committed_, "tenant-occupancy", tenant,
              format("per-tenant frames sum <= global %" PRIu64,
                     committed_),
              format("tenant frames sum to %" PRIu64, sum));
    }
}

void
ModelAuditor::onPreload(PageNum vpn)
{
    ShadowPage &p = page(vpn);
    check(p.empty(), "page-residency", vpn,
          "preload of a host-resident page with no transfer in flight",
          format("preload of page in state %s", describe(p).c_str()));
    p.in_h2d = true;
    ++in_flight_h2d_;
}

void
ModelAuditor::onPageCommitted(PageNum vpn, Cycle now,
                              std::uint64_t observed_committed)
{
    (void)now;
    ShadowPage &p = page(vpn);
    check(!p.resident, "page-residency", vpn,
          "commit of a page that is not yet device-resident",
          format("double commit: page already in state %s",
                 describe(p).c_str()));
    check(p.in_h2d, "page-residency", vpn,
          "commit of a page with an inbound transfer in flight",
          format("commit without a scheduled migration (state %s)",
                 describe(p).c_str()));
    p.in_h2d = false;
    p.resident = true;
    --in_flight_h2d_;
    ++resident_count_;
    ++commits_;
    if (dir_) {
        check(dir_->tenantOf(vpn) != kNoTenant, "tenant-slice", vpn,
              "committed page inside a registered tenant VA slice",
              "page outside every tenant slice");
    }
    check(observed_committed == committed_, "occupancy-conservation",
          vpn,
          format("manager status tracker == shadow %" PRIu64,
                 committed_),
          format("manager reports %" PRIu64 " committed frames at "
                 "commit",
                 observed_committed));
}

void
ModelAuditor::onEvictionBegin(PageNum vpn, Cycle now,
                              std::uint64_t observed_committed)
{
    (void)now;
    ShadowPage &p = page(vpn);
    check(p.resident, "page-residency", vpn,
          "eviction victim is device-resident",
          format("eviction of page in state %s%s", describe(p).c_str(),
                 p.in_d2h ? " (double eviction)"
                          : " (non-resident victim)"));
    p.resident = false;
    p.in_d2h = true;
    --resident_count_;
    ++in_flight_d2h_;
    ++evictions_;
    // The frame stays committed until the D2H transfer completes.
    check(observed_committed == committed_, "occupancy-conservation",
          vpn,
          format("manager status tracker == shadow %" PRIu64,
                 committed_),
          format("manager reports %" PRIu64 " committed frames at "
                 "eviction begin",
                 observed_committed));
}

void
ModelAuditor::onEvictionComplete(PageNum vpn,
                                 std::uint64_t observed_committed)
{
    ShadowPage &p = page(vpn);
    check(p.in_d2h, "page-residency", vpn,
          "eviction completion matches an eviction in flight",
          format("eviction completion for page in state %s",
                 describe(p).c_str()));
    p.in_d2h = false;
    --in_flight_d2h_;
    compact(vpn);
    if (dir_) {
        const TenantId owner = dir_->tenantOf(vpn);
        if (owner != kNoTenant) {
            check(committed_by_[owner] > 0, "tenant-occupancy", vpn,
                  format("tenant %u holds a frame to release",
                         static_cast<unsigned>(owner)),
                  "eviction completion with zero tenant frames");
            --committed_by_[owner];
        }
    }
    if (capacity_pages_ != 0) {
        check(committed_ > 0, "occupancy-conservation", vpn,
              "a committed frame to release",
              "eviction completion with zero committed frames");
        --committed_;
    }
    check(observed_committed == committed_, "occupancy-conservation",
          vpn,
          format("manager status tracker == shadow %" PRIu64,
                 committed_),
          format("manager reports %" PRIu64 " committed frames after "
                 "eviction",
                 observed_committed));
}

// ---- UvmRuntime sites ----------------------------------------------

void
ModelAuditor::onInterruptRaised(Cycle now)
{
    (void)now;
    check(batch_ == BatchState::Idle, "batch-lifecycle", 0,
          "fault interrupt raised while the runtime is Idle",
          format("interrupt raised in state %s",
                 batchStateName(batch_)));
    batch_ = BatchState::InterruptPending;
}

void
ModelAuditor::onBatchBegin(Cycle now, bool chained)
{
    (void)now;
    if (chained) {
        check(batch_ == BatchState::Idle, "batch-lifecycle", 0,
              "chained batch begins right after the previous batch "
              "ended",
              format("chained batch begin in state %s",
                     batchStateName(batch_)));
    } else {
        check(batch_ == BatchState::InterruptPending,
              "batch-lifecycle", 0,
              "batch begins from a pending fault interrupt",
              format("batch begin in state %s (no interrupt round "
                     "trip)",
                     batchStateName(batch_)));
    }
    batch_ = BatchState::BatchActive;
    ++batches_;
    migrations_this_batch_ = 0;
}

void
ModelAuditor::onPreemptiveEviction(Cycle now)
{
    (void)now;
    check(batch_ == BatchState::BatchActive, "batch-lifecycle", 0,
          "UE preemptive eviction inside an active batch",
          format("preemptive eviction in state %s",
                 batchStateName(batch_)));
    check(migrations_this_batch_ == 0, "batch-lifecycle", 0,
          "UE preemptive eviction only at batch start (top-half ISR, "
          "before any migration)",
          format("preemptive eviction after %" PRIu64
                 " migrations of the batch",
                 migrations_this_batch_));
}

void
ModelAuditor::onMigrationScheduled(PageNum vpn, Cycle now,
                                   Cycle wire_begin, Cycle wire_end,
                                   std::uint64_t wire_bytes)
{
    check(batch_ == BatchState::BatchActive, "batch-lifecycle", vpn,
          "migrations are scheduled only inside an active batch",
          format("migration scheduled in state %s",
                 batchStateName(batch_)));
    ShadowPage &p = page(vpn);
    check(!p.resident && !p.in_h2d, "page-residency", vpn,
          "migration of a host-resident page with no inbound transfer "
          "in flight",
          format("migration of page in state %s%s",
                 describe(p).c_str(),
                 p.in_h2d ? " (double migration)"
                 : p.resident ? " (already resident)"
                              : ""));
    p.in_h2d = true;
    ++in_flight_h2d_;
    ++migrations_this_batch_;
    sched_h2d_bytes_ += wire_bytes;
    check(wire_begin >= now && wire_end > wire_begin,
          "pcie-conservation", vpn,
          format("transfer window starts at/after cycle %" PRIu64
                 " and has positive length",
                 now),
          format("window [%" PRIu64 ", %" PRIu64 "]", wire_begin,
                 wire_end));
}

void
ModelAuditor::onEvictionTransfer(PageNum vpn, Cycle wire_begin,
                                 Cycle wire_end,
                                 std::uint64_t wire_bytes)
{
    ShadowPage &p = page(vpn);
    check(p.in_d2h, "page-residency", vpn,
          "eviction transfer for a page whose eviction began",
          format("eviction transfer for page in state %s",
                 describe(p).c_str()));
    sched_d2h_bytes_ += wire_bytes;
    check(wire_end > wire_begin, "pcie-conservation", vpn,
          "positive transfer length",
          format("window [%" PRIu64 ", %" PRIu64 "]", wire_begin,
                 wire_end));
}

void
ModelAuditor::onBatchEnd(Cycle now, std::uint32_t fault_pages,
                         std::uint32_t prefetch_pages)
{
    (void)now;
    check(batch_ == BatchState::BatchActive, "batch-lifecycle", 0,
          "batch end closes an active batch",
          format("batch end in state %s", batchStateName(batch_)));
    const std::uint64_t expected =
        static_cast<std::uint64_t>(fault_pages) + prefetch_pages;
    check(migrations_this_batch_ == expected, "batch-lifecycle", 0,
          format("batch migrated exactly its %" PRIu64
                 " demand+prefetch pages",
                 expected),
          format("%" PRIu64 " migrations were scheduled",
                 migrations_this_batch_));
    batch_ = BatchState::Idle;
}

// ---- FaultBuffer sites ---------------------------------------------

void
ModelAuditor::onFaultBuffered(PageNum vpn, Cycle now,
                              std::size_t observed_entries,
                              std::size_t observed_overflow)
{
    (void)now;
    // Shadow replica of the buffer's merge/overflow policy.
    if (fb_entries_.count(vpn) == 0) {
        if (fb_entries_.size() >= config_.fault_buffer_entries) {
            if (std::find(fb_overflow_.begin(), fb_overflow_.end(),
                          vpn) == fb_overflow_.end())
                fb_overflow_.push_back(vpn);
        } else {
            fb_entries_.insert(vpn);
        }
    }
    check(observed_entries == fb_entries_.size() &&
              observed_overflow == fb_overflow_.size(),
          "fault-buffer-accounting", vpn,
          format("buffer holds %zu entries + %zu overflowed faults",
                 fb_entries_.size(), fb_overflow_.size()),
          format("buffer reports %zu entries + %zu overflowed",
                 observed_entries, observed_overflow));
}

void
ModelAuditor::onFaultDrained(std::size_t drained,
                             std::size_t observed_entries,
                             std::size_t observed_overflow)
{
    check(drained == fb_entries_.size(), "fault-buffer-accounting", 0,
          format("drain returns the %zu buffered entries",
                 fb_entries_.size()),
          format("drain returned %zu records", drained));
    fb_entries_.clear();
    while (!fb_overflow_.empty() &&
           fb_entries_.size() < config_.fault_buffer_entries) {
        fb_entries_.insert(fb_overflow_.front());
        fb_overflow_.erase(fb_overflow_.begin());
    }
    check(observed_entries == fb_entries_.size() &&
              observed_overflow == fb_overflow_.size(),
          "fault-buffer-accounting", 0,
          format("post-drain refill leaves %zu entries + %zu "
                 "overflowed",
                 fb_entries_.size(), fb_overflow_.size()),
          format("buffer reports %zu entries + %zu overflowed",
                 observed_entries, observed_overflow));
}

// ---- PcieLink sites ------------------------------------------------

void
ModelAuditor::onPcieTransfer(bool h2d, std::uint64_t bytes, Cycle begin,
                             Cycle end)
{
    Cycle &last = h2d ? h2d_last_begin_ : d2h_last_begin_;
    check(begin >= last, "pcie-conservation", 0,
          format("%s transfers start in FIFO order (previous began at "
                 "%" PRIu64 ")",
                 h2d ? "H2D" : "D2H", last),
          format("transfer begins at %" PRIu64, begin));
    check(end > begin, "pcie-conservation", 0,
          "positive transfer length",
          format("window [%" PRIu64 ", %" PRIu64 "]", begin, end));
    last = begin;
    (h2d ? link_h2d_bytes_ : link_d2h_bytes_) += bytes;
}

// ---- MemoryHierarchy / TLB sites -----------------------------------

void
ModelAuditor::onTranslationHit(PageNum vpn)
{
    auto it = pages_.find(vpn);
    const bool resident = it != pages_.end() && it->second.resident;
    check(resident, "tlb-coherence", vpn,
          "TLB hits serve only device-resident pages",
          format("TLB hit for page in state %s (stale translation "
                 "survived an eviction shootdown)",
                 it == pages_.end() ? "{host}"
                                    : describe(it->second).c_str()));
}

void
ModelAuditor::onTranslationInsert(PageNum vpn)
{
    auto it = pages_.find(vpn);
    const bool resident = it != pages_.end() && it->second.resident;
    check(resident, "tlb-coherence", vpn,
          "translations are cached only for device-resident pages",
          format("TLB insert for page in state %s",
                 it == pages_.end() ? "{host}"
                                    : describe(it->second).c_str()));
    ++cached_translations_[vpn];
}

void
ModelAuditor::onTranslationInvalidate(PageNum vpn)
{
    ++checks_; // shootdowns are always legal; count the observation
    cached_translations_.erase(vpn);
}

void
ModelAuditor::onWalkResolved(PageNum vpn, Cycle now,
                             bool observed_fault)
{
    (void)now;
    auto it = pages_.find(vpn);
    const bool resident = it != pages_.end() && it->second.resident;
    check(observed_fault == !resident, "tlb-coherence", vpn,
          format("page-table walk agrees with shadow residency "
                 "(resident=%d)",
                 resident),
          format("walk resolved %s",
                 observed_fault ? "a fault" : "a translation"));
}

// ---- end of run ----------------------------------------------------

void
ModelAuditor::finalize(const RunResult &result,
                       std::uint64_t observed_committed,
                       std::size_t observed_resident)
{
    check(in_flight_h2d_ == 0, "page-residency", 0,
          "no inbound transfer outlives the run",
          format("%zu pages still in flight H2D", in_flight_h2d_));
    check(in_flight_d2h_ == 0, "page-residency", 0,
          "no eviction transfer outlives the run",
          format("%zu pages still in flight D2H", in_flight_d2h_));
    check(batch_ == BatchState::Idle, "batch-lifecycle", 0,
          "the batch machinery drained to Idle",
          format("run ended in state %s", batchStateName(batch_)));
    check(fb_entries_.empty() && fb_overflow_.empty(),
          "fault-buffer-accounting", 0,
          "every buffered fault was batched",
          format("%zu entries + %zu overflowed faults leaked",
                 fb_entries_.size(), fb_overflow_.size()));
    check(observed_resident == resident_count_,
          "occupancy-conservation", 0,
          format("page table holds the %zu shadow-resident pages",
                 resident_count_),
          format("page table reports %zu resident pages",
                 observed_resident));
    if (capacity_pages_ != 0) {
        check(observed_committed == committed_ &&
                  committed_ == resident_count_,
              "occupancy-conservation", 0,
              format("committed == resident == %zu at run end",
                     resident_count_),
              format("manager reports %" PRIu64
                     " committed, shadow %" PRIu64,
                     observed_committed, committed_));
    }
    check(result.migrations == commits_, "occupancy-conservation", 0,
          format("RunResult.migrations == %" PRIu64 " shadow commits",
                 commits_),
          format("RunResult reports %" PRIu64, result.migrations));
    check(result.evictions == evictions_, "occupancy-conservation", 0,
          format("RunResult.evictions == %" PRIu64 " shadow evictions",
                 evictions_),
          format("RunResult reports %" PRIu64, result.evictions));
    check(result.batches == batches_, "batch-lifecycle", 0,
          format("RunResult.batches == %" PRIu64 " shadow batches",
                 batches_),
          format("RunResult reports %" PRIu64, result.batches));
    check(link_h2d_bytes_ == sched_h2d_bytes_ &&
              result.pcie_h2d_bytes == link_h2d_bytes_,
          "pcie-conservation", 0,
          format("H2D bytes conserved: scheduled %" PRIu64
                 " == link %" PRIu64 " == reported",
                 sched_h2d_bytes_, link_h2d_bytes_),
          format("RunResult reports %" PRIu64 " H2D bytes",
                 result.pcie_h2d_bytes));
    check(link_d2h_bytes_ == sched_d2h_bytes_ &&
              result.pcie_d2h_bytes == link_d2h_bytes_,
          "pcie-conservation", 0,
          format("D2H bytes conserved: scheduled %" PRIu64
                 " == link %" PRIu64 " == reported",
                 sched_d2h_bytes_, link_d2h_bytes_),
          format("RunResult reports %" PRIu64 " D2H bytes",
                 result.pcie_d2h_bytes));
}

} // namespace bauvm
