#include "src/mem/tlb.h"

namespace bauvm
{

Tlb::Tlb(const TlbConfig &config, std::string name)
    : config_(config), name_(std::move(name)),
      array_(config.entries, config.associativity)
{
}

bool
Tlb::lookup(PageNum vpn)
{
    if (array_.lookup(vpn)) {
        ++hits_;
        return true;
    }
    ++misses_;
    return false;
}

void
Tlb::insert(PageNum vpn)
{
    array_.insert(vpn);
}

void
Tlb::invalidate(PageNum vpn)
{
    array_.invalidate(vpn);
}

void
Tlb::flush()
{
    array_.flush();
}

} // namespace bauvm
