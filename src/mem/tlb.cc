#include "src/mem/tlb.h"

namespace bauvm
{

Tlb::Tlb(const TlbConfig &config, std::string name)
    : config_(config), name_(std::move(name)),
      array_(config.entries, config.associativity)
{
}

void
Tlb::invalidate(PageNum vpn)
{
    array_.invalidate(vpn);
}

void
Tlb::flush()
{
    array_.flush();
}

} // namespace bauvm
