/**
 * @file
 * Page-walk cache: caches upper-level page-table entries.
 *
 * Accesses to upper levels of a multi-level page table have strong
 * temporal locality, so GPUs adopt a walk cache (Barr et al., adopted
 * for GPUs by Power et al.). Keys combine the level with the
 * level-appropriate slice of the virtual page number.
 */

#ifndef BAUVM_MEM_PAGE_WALK_CACHE_H_
#define BAUVM_MEM_PAGE_WALK_CACHE_H_

#include <cstdint>

#include "src/mem/assoc_array.h"
#include "src/sim/types.h"

namespace bauvm
{

/** Caches intermediate page-table entries to accelerate walks. */
class PageWalkCache
{
  public:
    /** @param entries total capacity (fully associative). */
    explicit PageWalkCache(std::uint32_t entries)
        : array_(entries, 0)
    {
    }

    /**
     * Looks up the entry for @p level covering @p vpn.
     *
     * @param level 1-based page-table level, 1 = topmost.
     * @param vpn   the virtual page being walked.
     * @retval true the intermediate entry was cached.
     */
    bool
    lookup(std::uint32_t level, PageNum vpn)
    {
        if (array_.lookup(key(level, vpn))) {
            ++hits_;
            return true;
        }
        ++misses_;
        return false;
    }

    /** Installs the intermediate entry for (@p level, @p vpn). */
    void insert(std::uint32_t level, PageNum vpn)
    {
        array_.insert(key(level, vpn));
    }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    /**
     * Entries at level L cover 9 * (levels_below) bits of VPN, mirroring
     * x86-style 512-ary radix tables.
     */
    static std::uint64_t
    key(std::uint32_t level, PageNum vpn)
    {
        const std::uint32_t shift = 9u * level;
        return (static_cast<std::uint64_t>(level) << 56) |
               (shift < 56 ? (vpn >> shift) : 0);
    }

    AssocArray array_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace bauvm

#endif // BAUVM_MEM_PAGE_WALK_CACHE_H_
