/**
 * @file
 * TenantDirectory: maps virtual pages to their owning tenant.
 *
 * Lives in src/mem (below uvm and check) so the GpuMemoryManager can
 * arbitrate frames per tenant and the ModelAuditor can shadow the
 * accounting without either depending on the core tenant-session API.
 * core/tenant.h re-exports it together with the client-facing
 * TenantSpec/TenantResult types.
 *
 * Built once per multi-tenant run from the admitted VA slices, which
 * are chunk- and prefetch-tree-aligned and added in ascending order;
 * tenantOf() is a short linear scan over at most a handful of slices,
 * read on the fault and eviction hot paths.
 */

#ifndef BAUVM_MEM_TENANT_DIRECTORY_H_
#define BAUVM_MEM_TENANT_DIRECTORY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/config.h"
#include "src/sim/log.h"
#include "src/sim/types.h"

namespace bauvm
{

/** One admitted tenant: concrete VA slice, seed, and frame budget. */
struct TenantContext {
    TenantId id = kNoTenant;
    std::string workload;
    std::uint64_t seed = 0;      //!< deriveTenantSeed(config.seed, id)
    PageNum first_vpn = 0;       //!< inclusive start of the VA slice
    PageNum end_vpn = 0;         //!< exclusive end of the VA slice
    std::uint64_t quota_pages = 0; //!< StrictQuota hard cap (frames)
    double weight = 1.0;           //!< Proportional fair-share weight
    std::uint64_t footprint_pages = 0;
};

/**
 * Maps virtual pages to their owning tenant; also records the run's
 * SharePolicy so every consumer arbitrates the same way.
 */
class TenantDirectory
{
  public:
    explicit TenantDirectory(SharePolicy policy = SharePolicy::FreeForAll)
        : policy_(policy)
    {
    }

    SharePolicy policy() const { return policy_; }

    /** Registers one tenant; slices must be added in ascending,
     *  non-overlapping VA order. */
    void
    add(const TenantContext &context)
    {
        if (!contexts_.empty() &&
            context.first_vpn < contexts_.back().end_vpn) {
            fatal("TenantDirectory: slice [%llu,%llu) overlaps previous "
                  "slice ending at %llu",
                  static_cast<unsigned long long>(context.first_vpn),
                  static_cast<unsigned long long>(context.end_vpn),
                  static_cast<unsigned long long>(
                      contexts_.back().end_vpn));
        }
        if (context.first_vpn >= context.end_vpn)
            fatal("TenantDirectory: empty slice for tenant %u",
                  static_cast<unsigned>(context.id));
        contexts_.push_back(context);
    }

    /** Owning tenant of @p vpn, or kNoTenant outside every slice. */
    TenantId
    tenantOf(PageNum vpn) const
    {
        for (std::size_t i = 0; i < contexts_.size(); ++i) {
            if (vpn < contexts_[i].end_vpn) {
                return vpn >= contexts_[i].first_vpn
                           ? static_cast<TenantId>(i)
                           : kNoTenant;
            }
        }
        return kNoTenant;
    }

    const TenantContext &context(TenantId id) const
    {
        return contexts_[id];
    }

    std::size_t size() const { return contexts_.size(); }

  private:
    SharePolicy policy_;
    std::vector<TenantContext> contexts_; //!< index == TenantId
};

} // namespace bauvm

#endif // BAUVM_MEM_TENANT_DIRECTORY_H_
