/**
 * @file
 * Translation lookaside buffer model (used for both L1 and L2 TLBs).
 */

#ifndef BAUVM_MEM_TLB_H_
#define BAUVM_MEM_TLB_H_

#include <cstdint>
#include <string>

#include "src/mem/assoc_array.h"
#include "src/sim/config.h"
#include "src/sim/types.h"

namespace bauvm
{

/**
 * A TLB caching virtual-page translations.
 *
 * Only presence is tracked (the functional frame number lives in the
 * PageTable); timing comes from the configured hit latency, charged by
 * the MemoryHierarchy.
 */
class Tlb
{
  public:
    Tlb(const TlbConfig &config, std::string name);

    /** Looks up @p vpn, updating LRU and hit/miss statistics.
     *  Defined inline: on the per-access critical path. */
    bool
    lookup(PageNum vpn)
    {
        if (array_.lookup(vpn)) {
            ++hits_;
            return true;
        }
        ++misses_;
        return false;
    }

    /** Installs a translation for @p vpn (possibly evicting LRU). */
    void insert(PageNum vpn) { array_.insert(vpn); }

    /** Drops the translation for @p vpn (eviction shootdown). */
    void invalidate(PageNum vpn);

    /** Drops every translation. */
    void flush();

    Cycle hitLatency() const { return config_.hit_latency; }
    const std::string &name() const { return name_; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    /** Hit rate in [0,1]; 0 when no accesses happened. */
    double
    hitRate() const
    {
        const auto total = hits_ + misses_;
        return total ? static_cast<double>(hits_) / total : 0.0;
    }

  private:
    TlbConfig config_;
    std::string name_;
    AssocArray array_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace bauvm

#endif // BAUVM_MEM_TLB_H_
