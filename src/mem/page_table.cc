#include "src/mem/page_table.h"

#include "src/sim/log.h"

namespace bauvm
{

void
PageTable::map(PageNum vpn, FrameNum frame)
{
    PageMeta &m = meta_.ensure(vpn);
    if (m.resident())
        panic("PageTable: double map of vpn %llu",
              static_cast<unsigned long long>(vpn));
    m.setResident(true);
    m.frame = frame;
    ++resident_;
}

void
PageTable::unmap(PageNum vpn)
{
    PageMeta *m = vpn < meta_.size() ? &meta_.at(vpn) : nullptr;
    if (m == nullptr || !m->resident())
        panic("PageTable: unmap of non-resident vpn %llu",
              static_cast<unsigned long long>(vpn));
    m->setResident(false);
    ++m->version; // uint32 wrap is deliberate: tags only compare equality
    --resident_;
}

FrameNum
PageTable::frameOf(PageNum vpn) const
{
    const PageMeta *m = meta_.find(vpn);
    if (m == nullptr || !m->resident())
        panic("PageTable: frameOf non-resident vpn %llu",
              static_cast<unsigned long long>(vpn));
    return m->frame;
}

} // namespace bauvm
