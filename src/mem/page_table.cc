#include "src/mem/page_table.h"

#include "src/sim/log.h"

namespace bauvm
{

void
PageTable::map(PageNum vpn, FrameNum frame)
{
    auto [it, inserted] = mappings_.emplace(vpn, frame);
    (void)it;
    if (!inserted)
        panic("PageTable: double map of vpn %llu",
              static_cast<unsigned long long>(vpn));
}

void
PageTable::unmap(PageNum vpn)
{
    auto it = mappings_.find(vpn);
    if (it == mappings_.end())
        panic("PageTable: unmap of non-resident vpn %llu",
              static_cast<unsigned long long>(vpn));
    mappings_.erase(it);
    ++versions_[vpn];
}

FrameNum
PageTable::frameOf(PageNum vpn) const
{
    auto it = mappings_.find(vpn);
    if (it == mappings_.end())
        panic("PageTable: frameOf non-resident vpn %llu",
              static_cast<unsigned long long>(vpn));
    return it->second;
}

} // namespace bauvm
