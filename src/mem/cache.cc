#include "src/mem/cache.h"

namespace bauvm
{

Cache::Cache(const CacheConfig &config, std::string name)
    : config_(config), name_(std::move(name)),
      array_(static_cast<std::uint32_t>(
                 config.size_bytes / config.line_bytes),
             config.associativity)
{
}

bool
Cache::access(std::uint64_t line_key, bool write)
{
    (void)write; // write-back; writes allocate just like reads
    if (array_.lookup(line_key)) {
        ++hits_;
        return true;
    }
    ++misses_;
    std::uint64_t evicted;
    if (array_.insert(line_key, &evicted))
        ++evictions_;
    return false;
}

} // namespace bauvm
