#include "src/mem/cache.h"

namespace bauvm
{

Cache::Cache(const CacheConfig &config, std::string name)
    : config_(config), name_(std::move(name)),
      array_(static_cast<std::uint32_t>(
                 config.size_bytes / config.line_bytes),
             config.associativity)
{
}

} // namespace bauvm
