/**
 * @file
 * Set-associative data cache model (L1 per SM, shared L2).
 *
 * Functional contents are not stored — the cache only tracks which line
 * keys are present. Lazy invalidation of evicted UVM pages is achieved
 * by folding the page version into the line key (see PageTable).
 */

#ifndef BAUVM_MEM_CACHE_H_
#define BAUVM_MEM_CACHE_H_

#include <cstdint>
#include <string>

#include "src/mem/assoc_array.h"
#include "src/sim/config.h"
#include "src/sim/types.h"

namespace bauvm
{

/** A single cache level; allocate-on-miss, true LRU, write-back. */
class Cache
{
  public:
    Cache(const CacheConfig &config, std::string name);

    /**
     * Accesses the line identified by @p line_key.
     *
     * On a miss the line is filled immediately (the latency of the fill
     * is charged by the MemoryHierarchy, not here). Defined inline:
     * this is the hottest leaf of the per-access path.
     *
     * @retval true  hit.
     */
    bool
    access(std::uint64_t line_key, bool write)
    {
        (void)write; // write-back; writes allocate just like reads
        if (array_.lookup(line_key)) {
            ++hits_;
            return true;
        }
        ++misses_;
        std::uint64_t evicted;
        if (array_.insert(line_key, &evicted))
            ++evictions_;
        return false;
    }

    Cycle hitLatency() const { return config_.hit_latency; }
    std::uint32_t lineBytes() const { return config_.line_bytes; }
    const std::string &name() const { return name_; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }

    double
    hitRate() const
    {
        const auto total = hits_ + misses_;
        return total ? static_cast<double>(hits_) / total : 0.0;
    }

  private:
    CacheConfig config_;
    std::string name_;
    AssocArray array_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace bauvm

#endif // BAUVM_MEM_CACHE_H_
