/**
 * @file
 * GPU-side page table: virtual-page -> frame mapping plus residency.
 *
 * The functional side is a dense PageMetaTable lookup; the multi-level
 * structure only matters for walk timing, which PageTableWalker models
 * using the level count and the page-walk cache.
 */

#ifndef BAUVM_MEM_PAGE_TABLE_H_
#define BAUVM_MEM_PAGE_TABLE_H_

#include <cstdint>

#include "src/mem/page_meta.h"
#include "src/sim/types.h"

namespace bauvm
{

/**
 * Maps virtual pages to GPU device-memory frames.
 *
 * A page is "resident" when it has a valid mapping. Each page also
 * carries a version counter that is bumped on unmap; the caches fold the
 * version into their tags, which invalidates stale lines in O(1) when a
 * page is evicted.
 *
 * The PageTable owns the shared PageMetaTable: mapping state lives in
 * the same dense per-page record as the memory manager's and runtime's
 * fields, so a translate is one array index, not a hash probe.
 */
class PageTable
{
  public:
    /** Maps @p vpn to @p frame. @pre the page is not currently mapped. */
    void map(PageNum vpn, FrameNum frame);

    /** Unmaps @p vpn and bumps its version. @pre the page is mapped. */
    void unmap(PageNum vpn);

    /** True when @p vpn has a valid GPU mapping. */
    bool isResident(PageNum vpn) const { return meta_.resident(vpn); }

    /** Frame backing @p vpn. @pre isResident(vpn). */
    FrameNum frameOf(PageNum vpn) const;

    /**
     * Version of @p vpn, incremented whenever the page is unmapped.
     * Used by the cache layer for lazy invalidation.
     */
    std::uint32_t version(PageNum vpn) const
    {
        return meta_.version(vpn);
    }

    /** Number of resident pages. */
    std::size_t residentPages() const { return resident_; }

    /** The dense per-page metadata shared across the UVM data path. */
    PageMetaTable &meta() { return meta_; }
    const PageMetaTable &meta() const { return meta_; }

  private:
    PageMetaTable meta_;
    std::size_t resident_ = 0;
};

} // namespace bauvm

#endif // BAUVM_MEM_PAGE_TABLE_H_
