/**
 * @file
 * Dense, page-indexed metadata table — the single home for all per-page
 * state of the memory/UVM data path.
 *
 * Every workload declares a bounded virtual-page range up front
 * (DeviceArray allocations come from a bump allocator starting at page
 * 1), so per-page state does not need hash maps: one contiguous array
 * indexed by VPN holds the frame mapping, version counter, residency /
 * validity / in-flight flags, allocation timestamp, pending-refault
 * count, fault-buffer slot, the per-chunk FIFO link and the intrusive
 * waiter-list head. The translate, fault, evict and prefetch paths all
 * touch the same cache line per page instead of four or five separate
 * hash-table probes, and none of them allocates in steady state.
 *
 * Links (fault slot, chunk FIFO, waiter slab) are 32-bit indices with
 * 0xFFFFFFFF as the null sentinel; the table panics long before a VPN
 * could overflow them (a dense table that large would not fit in host
 * memory anyway).
 */

#ifndef BAUVM_MEM_PAGE_META_H_
#define BAUVM_MEM_PAGE_META_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/sim/types.h"

namespace bauvm
{

/** Per-page state; one entry per VPN in the PageMetaTable. */
struct PageMeta {
    /** Null value for every 32-bit index link in this struct. */
    static constexpr std::uint32_t kNoIndex = 0xFFFFFFFFu;

    // Flag bits.
    static constexpr std::uint8_t kResident = 1u << 0; //!< has a frame
    static constexpr std::uint8_t kValid = 1u << 1;    //!< in an allocation
    static constexpr std::uint8_t kInFlight = 1u << 2; //!< queued/migrating

    FrameNum frame = 0;    //!< backing frame while resident
    Cycle alloc_time = 0;  //!< commit cycle (lifetime statistics)
    std::uint32_t version = 0;         //!< bumped on unmap (cache tags)
    std::uint32_t pending_refault = 0; //!< evictions awaiting a refault
    std::uint32_t fault_slot = kNoIndex; //!< live FaultBuffer entry index
    std::uint32_t chunk_next = kNoIndex; //!< next VPN in chunk page FIFO
    std::uint32_t waiter_head = kNoIndex; //!< first waiter slab node
    std::uint32_t waiter_tail = kNoIndex; //!< last waiter slab node
    std::uint8_t flags = 0;

    bool resident() const { return (flags & kResident) != 0; }
    bool valid() const { return (flags & kValid) != 0; }
    bool inFlight() const { return (flags & kInFlight) != 0; }

    void setResident(bool on)
    {
        flags = on ? (flags | kResident)
                   : static_cast<std::uint8_t>(flags & ~kResident);
    }
    void setValid(bool on)
    {
        flags = on ? (flags | kValid)
                   : static_cast<std::uint8_t>(flags & ~kValid);
    }
    void setInFlight(bool on)
    {
        flags = on ? (flags | kInFlight)
                   : static_cast<std::uint8_t>(flags & ~kInFlight);
    }
};

/**
 * Growable dense array of PageMeta indexed by VPN.
 *
 * Mutators go through ensure(), which grows the table (amortized
 * doubling, so registering an allocation of N pages costs O(N) total).
 * Const queries never grow: a VPN beyond the table simply has
 * default-initialized state (not resident, not valid, version 0), which
 * is exactly what the prefetcher's neighbor probes and speculative
 * translate lookups need.
 */
class PageMetaTable
{
  public:
    /** Entry for @p vpn, growing the table if needed. */
    PageMeta &
    ensure(PageNum vpn)
    {
        if (vpn >= meta_.size())
            grow(vpn);
        return meta_[vpn];
    }

    /**
     * Entry for @p vpn without growth. @pre vpn < size() — callers use
     * this only for pages they have already ensure()d (e.g. the fault
     * buffer clearing slots of drained records).
     */
    PageMeta &at(PageNum vpn) { return meta_[vpn]; }

    /** Entry for @p vpn, or nullptr if the table has never reached it. */
    const PageMeta *
    find(PageNum vpn) const
    {
        return vpn < meta_.size() ? &meta_[vpn] : nullptr;
    }

    bool
    resident(PageNum vpn) const
    {
        const PageMeta *m = find(vpn);
        return m != nullptr && m->resident();
    }

    bool
    valid(PageNum vpn) const
    {
        const PageMeta *m = find(vpn);
        return m != nullptr && m->valid();
    }

    bool
    inFlight(PageNum vpn) const
    {
        const PageMeta *m = find(vpn);
        return m != nullptr && m->inFlight();
    }

    std::uint32_t
    version(PageNum vpn) const
    {
        const PageMeta *m = find(vpn);
        return m != nullptr ? m->version : 0;
    }

    /** Number of entries (one past the highest VPN ever ensure()d). */
    std::size_t size() const { return meta_.size(); }

  private:
    /** Out-of-line slow path: amortized-doubling resize + bound check. */
    void grow(PageNum vpn);

    std::vector<PageMeta> meta_;
};

} // namespace bauvm

#endif // BAUVM_MEM_PAGE_META_H_
