/**
 * @file
 * Generic set-associative array with true-LRU replacement.
 *
 * Shared by the caches, the TLBs, and the page-walk cache. Keys are
 * 64-bit tags supplied by the owner (which is responsible for folding in
 * any auxiliary bits such as page versions).
 *
 * Storage is structure-of-arrays: the way scan — the simulator's single
 * hottest loop, entered once per cache/TLB access — walks a dense key
 * array instead of striding over padded line structs, and set indexing
 * uses a mask instead of a modulo when the set count is a power of two
 * (it always is for the shipped geometries).
 */

#ifndef BAUVM_MEM_ASSOC_ARRAY_H_
#define BAUVM_MEM_ASSOC_ARRAY_H_

#include <cstdint>
#include <vector>

#include "src/sim/log.h"

namespace bauvm
{

/**
 * Fixed-geometry set-associative lookup structure.
 *
 * An associativity of 0 requests a fully-associative organization
 * (a single set spanning every entry).
 */
class AssocArray
{
  public:
    /**
     * @param entries        total entry count (> 0).
     * @param associativity  ways per set; 0 = fully associative.
     */
    AssocArray(std::uint32_t entries, std::uint32_t associativity)
    {
        if (entries == 0)
            panic("AssocArray: zero entries");
        ways_ = associativity == 0 ? entries : associativity;
        if (entries % ways_ != 0)
            panic("AssocArray: entries %u not divisible by ways %u",
                  entries, ways_);
        sets_ = entries / ways_;
        sets_pow2_ = (sets_ & (sets_ - 1)) == 0;
        set_mask_ = sets_ - 1;
        valid_.assign(entries, 0);
        keys_.assign(entries, 0);
        last_use_.assign(entries, 0);
    }

    /**
     * Looks up @p key; on a hit refreshes its LRU position.
     * @retval true the key is present.
     */
    bool
    lookup(std::uint64_t key)
    {
        // MRU memo: consecutive lookups overwhelmingly repeat the last
        // key (a warp's lines share one page), and for wide sets the
        // way scan is the hottest loop in the simulator. The re-check
        // makes staleness harmless — a valid slot holding key K can
        // only be K's home slot, so a hit here is exact.
        if (key == memo_key_ && memo_idx_ != kNone &&
            keys_[memo_idx_] == key && valid_[memo_idx_]) {
            last_use_[memo_idx_] = ++tick_;
            return true;
        }
        const std::size_t i = find(key);
        if (i == kNone)
            return false;
        memo_key_ = key;
        memo_idx_ = i;
        last_use_[i] = ++tick_;
        return true;
    }

    /** Looks up @p key without touching LRU state. */
    bool
    probe(std::uint64_t key) const
    {
        return find(key) != kNone;
    }

    /**
     * Inserts @p key, evicting the set's LRU entry when needed.
     *
     * @param[out] evicted_key  set to the displaced key when an eviction
     *                          occurred (may be nullptr).
     * @retval true an existing valid entry was displaced.
     */
    bool
    insert(std::uint64_t key, std::uint64_t *evicted_key = nullptr)
    {
        const std::size_t hit = find(key);
        if (hit != kNone) {
            last_use_[hit] = ++tick_;
            return false;
        }
        const std::size_t base = setOf(key) * ways_;
        std::size_t victim = kNone;
        for (std::size_t i = base; i < base + ways_; ++i) {
            if (!valid_[i]) {
                victim = i;
                break;
            }
            if (victim == kNone || last_use_[i] < last_use_[victim])
                victim = i;
        }
        const bool displaced = valid_[victim] != 0;
        if (displaced && evicted_key)
            *evicted_key = keys_[victim];
        valid_[victim] = 1;
        keys_[victim] = key;
        last_use_[victim] = ++tick_;
        memo_key_ = key;
        memo_idx_ = victim;
        return displaced;
    }

    /** Removes @p key if present. @retval true it was present. */
    bool
    invalidate(std::uint64_t key)
    {
        const std::size_t i = find(key);
        if (i == kNone)
            return false;
        clearLine(i);
        return true;
    }

    /** Invalidates every entry. */
    void
    flush()
    {
        for (std::size_t i = 0; i < keys_.size(); ++i)
            clearLine(i);
    }

    /** Removes all entries for which @p pred(key) holds. @return count. */
    template <typename Pred>
    std::size_t
    invalidateIf(Pred pred)
    {
        std::size_t n = 0;
        for (std::size_t i = 0; i < keys_.size(); ++i) {
            if (valid_[i] && pred(keys_[i])) {
                clearLine(i);
                ++n;
            }
        }
        return n;
    }

    std::uint32_t numSets() const { return sets_; }
    std::uint32_t numWays() const { return ways_; }

    /** Debug/test view of one line's raw state. */
    struct LineView {
        bool valid = false;
        std::uint64_t key = 0;
        std::uint64_t last_use = 0;
    };

    /** Raw state of way @p way of set @p set (tests only). */
    LineView
    lineAt(std::size_t set, std::size_t way) const
    {
        const std::size_t i = set * ways_ + way;
        return LineView{valid_[i] != 0, keys_[i], last_use_[i]};
    }

    /** Number of currently valid entries. */
    std::size_t
    validCount() const
    {
        std::size_t n = 0;
        for (const std::uint8_t v : valid_)
            n += v ? 1 : 0;
        return n;
    }

  private:
    static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

    std::size_t
    setOf(std::uint64_t key) const
    {
        return sets_pow2_ ? key & set_mask_ : key % sets_;
    }

    /**
     * Fully clears an invalidated line. Resetting key/last_use (not
     * just valid) keeps dead tags from ever matching in a loop that
     * forgets the valid check, and keeps an invalid line from biasing
     * LRU victim choice through a stale timestamp.
     */
    void
    clearLine(std::size_t i)
    {
        valid_[i] = 0;
        keys_[i] = 0;
        last_use_[i] = 0;
    }

    /** Index of @p key's line, or kNone. */
    std::size_t
    find(std::uint64_t key) const
    {
        const std::size_t base = setOf(key) * ways_;
        for (std::size_t i = base; i < base + ways_; ++i)
            if (keys_[i] == key && valid_[i])
                return i;
        return kNone;
    }

    std::uint32_t sets_ = 0;
    std::uint32_t ways_ = 0;
    bool sets_pow2_ = false;
    std::uint64_t set_mask_ = 0;
    std::uint64_t tick_ = 0;
    // Last-hit memo (see lookup); never trusted without a re-check.
    std::uint64_t memo_key_ = 0;
    std::size_t memo_idx_ = kNone;
    // Structure-of-arrays line state, indexed set * ways_ + way.
    std::vector<std::uint8_t> valid_;
    std::vector<std::uint64_t> keys_;
    std::vector<std::uint64_t> last_use_;
};

} // namespace bauvm

#endif // BAUVM_MEM_ASSOC_ARRAY_H_
