/**
 * @file
 * Generic set-associative array with true-LRU replacement.
 *
 * Shared by the caches, the TLBs, and the page-walk cache. Keys are
 * 64-bit tags supplied by the owner (which is responsible for folding in
 * any auxiliary bits such as page versions).
 */

#ifndef BAUVM_MEM_ASSOC_ARRAY_H_
#define BAUVM_MEM_ASSOC_ARRAY_H_

#include <cstdint>
#include <vector>

#include "src/sim/log.h"

namespace bauvm
{

/**
 * Fixed-geometry set-associative lookup structure.
 *
 * An associativity of 0 requests a fully-associative organization
 * (a single set spanning every entry).
 */
class AssocArray
{
  public:
    /**
     * @param entries        total entry count (> 0).
     * @param associativity  ways per set; 0 = fully associative.
     */
    AssocArray(std::uint32_t entries, std::uint32_t associativity)
    {
        if (entries == 0)
            panic("AssocArray: zero entries");
        ways_ = associativity == 0 ? entries : associativity;
        if (entries % ways_ != 0)
            panic("AssocArray: entries %u not divisible by ways %u",
                  entries, ways_);
        sets_ = entries / ways_;
        lines_.assign(entries, Line{});
    }

    /**
     * Looks up @p key; on a hit refreshes its LRU position.
     * @retval true the key is present.
     */
    bool
    lookup(std::uint64_t key)
    {
        Line *line = find(key);
        if (!line)
            return false;
        line->last_use = ++tick_;
        return true;
    }

    /** Looks up @p key without touching LRU state. */
    bool
    probe(std::uint64_t key) const
    {
        const std::size_t set = setOf(key);
        for (std::size_t w = 0; w < ways_; ++w) {
            const Line &l = lines_[set * ways_ + w];
            if (l.valid && l.key == key)
                return true;
        }
        return false;
    }

    /**
     * Inserts @p key, evicting the set's LRU entry when needed.
     *
     * @param[out] evicted_key  set to the displaced key when an eviction
     *                          occurred (may be nullptr).
     * @retval true an existing valid entry was displaced.
     */
    bool
    insert(std::uint64_t key, std::uint64_t *evicted_key = nullptr)
    {
        if (Line *hit = find(key)) {
            hit->last_use = ++tick_;
            return false;
        }
        const std::size_t set = setOf(key);
        Line *victim = nullptr;
        for (std::size_t w = 0; w < ways_; ++w) {
            Line &l = lines_[set * ways_ + w];
            if (!l.valid) {
                victim = &l;
                break;
            }
            if (!victim || l.last_use < victim->last_use)
                victim = &l;
        }
        const bool displaced = victim->valid;
        if (displaced && evicted_key)
            *evicted_key = victim->key;
        victim->valid = true;
        victim->key = key;
        victim->last_use = ++tick_;
        return displaced;
    }

    /** Removes @p key if present. @retval true it was present. */
    bool
    invalidate(std::uint64_t key)
    {
        if (Line *line = find(key)) {
            clearLine(*line);
            return true;
        }
        return false;
    }

    /** Invalidates every entry. */
    void
    flush()
    {
        for (auto &l : lines_)
            clearLine(l);
    }

    /** Removes all entries for which @p pred(key) holds. @return count. */
    template <typename Pred>
    std::size_t
    invalidateIf(Pred pred)
    {
        std::size_t n = 0;
        for (auto &l : lines_) {
            if (l.valid && pred(l.key)) {
                clearLine(l);
                ++n;
            }
        }
        return n;
    }

    std::uint32_t numSets() const { return sets_; }
    std::uint32_t numWays() const { return ways_; }

    /** Debug/test view of one line's raw state. */
    struct LineView {
        bool valid = false;
        std::uint64_t key = 0;
        std::uint64_t last_use = 0;
    };

    /** Raw state of way @p way of set @p set (tests only). */
    LineView
    lineAt(std::size_t set, std::size_t way) const
    {
        const Line &l = lines_[set * ways_ + way];
        return LineView{l.valid, l.key, l.last_use};
    }

    /** Number of currently valid entries. */
    std::size_t
    validCount() const
    {
        std::size_t n = 0;
        for (const auto &l : lines_)
            n += l.valid ? 1 : 0;
        return n;
    }

  private:
    struct Line {
        bool valid = false;
        std::uint64_t key = 0;
        std::uint64_t last_use = 0;
    };

    std::size_t setOf(std::uint64_t key) const { return key % sets_; }

    /**
     * Fully clears an invalidated line. Resetting key/last_use (not
     * just valid) keeps dead tags from ever matching in a loop that
     * forgets the valid check, and keeps an invalid line from biasing
     * LRU victim choice through a stale timestamp.
     */
    static void
    clearLine(Line &l)
    {
        l.valid = false;
        l.key = 0;
        l.last_use = 0;
    }

    Line *
    find(std::uint64_t key)
    {
        const std::size_t set = setOf(key);
        for (std::size_t w = 0; w < ways_; ++w) {
            Line &l = lines_[set * ways_ + w];
            if (l.valid && l.key == key)
                return &l;
        }
        return nullptr;
    }

    std::uint32_t sets_ = 0;
    std::uint32_t ways_ = 0;
    std::uint64_t tick_ = 0;
    std::vector<Line> lines_;
};

} // namespace bauvm

#endif // BAUVM_MEM_ASSOC_ARRAY_H_
