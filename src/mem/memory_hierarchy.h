/**
 * @file
 * The composed GPU memory system: per-SM L1 caches and L1 TLBs, a shared
 * L2 cache and L2 TLB, the shared page-table walker, and device memory.
 *
 * This is the single entry point the SMs use for every coalesced memory
 * transaction. It returns either a completion cycle or a page-fault
 * indication (the UVM runtime owns fault handling).
 */

#ifndef BAUVM_MEM_MEMORY_HIERARCHY_H_
#define BAUVM_MEM_MEMORY_HIERARCHY_H_

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "src/check/sim_hooks.h"
#include "src/mem/cache.h"
#include "src/mem/dram.h"
#include "src/mem/page_table.h"
#include "src/mem/page_table_walker.h"
#include "src/mem/tlb.h"
#include "src/sim/config.h"
#include "src/sim/types.h"

namespace bauvm
{

/** Outcome of one memory transaction. */
struct MemResult {
    bool fault = false; //!< page not resident; the access did not finish
    PageNum vpn = 0;    //!< faulting virtual page (valid when fault)
    Cycle done = 0;     //!< completion cycle when !fault; for a fault,
                        //!< the cycle at which the fault was detected
};

/**
 * Timing and (presence-only) functional model of the GPU memory system.
 */
class MemoryHierarchy
{
  public:
    /**
     * @param config      memory-system parameters.
     * @param num_sms     number of SMs (determines private structures).
     * @param page_bytes  UVM page size, used to split addresses.
     * @param page_table  the GPU page table holding residency (owned by
     *                    the UVM memory manager; must outlive this).
     * @param hooks       observers: the auditor cross-checks every TLB
     *                    hit, TLB fill, shootdown and walk outcome
     *                    against its shadow residency.
     */
    MemoryHierarchy(const MemConfig &config, std::uint32_t num_sms,
                    std::uint64_t page_bytes, const PageTable &page_table,
                    const SimHooks &hooks = {});

    /**
     * Performs one line-granular transaction for SM @p sm.
     *
     * Translation walks L1 TLB -> L2 TLB -> page-table walker; if the
     * page is not resident the result is a fault stamped at walk
     * completion. Otherwise the data access proceeds L1 -> L2 -> DRAM.
     */
    MemResult access(std::uint32_t sm, VAddr vaddr, bool write,
                     Cycle start);

    /**
     * Invalidate all TLB entries for @p vpn (eviction shootdown).
     * Cache lines die lazily through the page-version tag bits.
     */
    void invalidatePage(PageNum vpn);

    /** Additional latency on every L2 access (ETC capacity compression). */
    void setExtraL2Latency(Cycle extra) { extra_l2_latency_ = extra; }

    /** Extra latency the SM charges for atomic operations. */
    Cycle atomicLatency() const { return config_.atomic_latency; }

    const Tlb &l1Tlb(std::uint32_t sm) const { return *l1_tlbs_[sm]; }
    const Tlb &l2Tlb() const { return *l2_tlb_; }
    const Cache &l1Cache(std::uint32_t sm) const { return *l1_caches_[sm]; }
    const Cache &l2Cache() const { return *l2_cache_; }
    const PageTableWalker &walker() const { return walker_; }
    const Dram &dram() const { return dram_; }

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t faults() const { return faults_; }

    /** Translations that missed both TLB levels and took a page walk. */
    std::uint64_t pageWalks() const { return walks_; }

    /** Fraction of translations served without a page walk. */
    double
    tlbHitRate() const
    {
        return accesses_ ? 1.0 - static_cast<double>(walks_) /
                                     static_cast<double>(accesses_)
                         : 0.0;
    }

    /** Cycles a transaction waited because the SM's MSHRs were full. */
    std::uint64_t mshrStallCycles() const { return mshr_stall_cycles_; }

  private:
    /** Translates @p vpn. Returns {fault?, cycle translation resolved}. */
    std::pair<bool, Cycle> translate(std::uint32_t sm, PageNum vpn,
                                     Cycle start);

    /** Line key folding the page version in for lazy invalidation. */
    std::uint64_t lineKey(VAddr vaddr) const;

    SimHooks hooks_;
    MemConfig config_;
    std::uint64_t page_bytes_;
    const PageTable &page_table_;
    std::vector<std::unique_ptr<Tlb>> l1_tlbs_;
    std::vector<std::unique_ptr<Cache>> l1_caches_;
    std::unique_ptr<Tlb> l2_tlb_;
    std::unique_ptr<Cache> l2_cache_;
    PageTableWalker walker_;
    Dram dram_;
    Cycle extra_l2_latency_ = 0;
    /** Per-SM outstanding-miss completion times (MSHR occupancy). */
    std::vector<std::priority_queue<Cycle, std::vector<Cycle>,
                                    std::greater<>>> mshrs_;
    std::uint64_t accesses_ = 0;
    std::uint64_t faults_ = 0;
    std::uint64_t walks_ = 0;
    std::uint64_t mshr_stall_cycles_ = 0;
};

} // namespace bauvm

#endif // BAUVM_MEM_MEMORY_HIERARCHY_H_
