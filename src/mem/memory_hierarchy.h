/**
 * @file
 * The composed GPU memory system: per-SM L1 caches and L1 TLBs, a shared
 * L2 cache and L2 TLB, the shared page-table walker, and device memory.
 *
 * This is the single entry point the SMs use for every coalesced memory
 * transaction. It returns either a completion cycle or a page-fault
 * indication (the UVM runtime owns fault handling).
 *
 * Split along the hot/cold line for observer specialization (see
 * src/check/observer_mode.h): MemoryHierarchyBase owns all state plus
 * the cold entry points (shootdowns, queries); MemoryHierarchyT<M>
 * adds the hot access/translate pair with the observer branches
 * compiled for mode M. The un-suffixed MemoryHierarchy alias is the
 * Dynamic specialization, which behaves exactly like the historical
 * class.
 */

#ifndef BAUVM_MEM_MEMORY_HIERARCHY_H_
#define BAUVM_MEM_MEMORY_HIERARCHY_H_

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "src/check/model_auditor.h"
#include "src/check/observer_mode.h"
#include "src/check/sim_hooks.h"
#include "src/mem/cache.h"
#include "src/mem/dram.h"
#include "src/mem/page_table.h"
#include "src/mem/page_table_walker.h"
#include "src/mem/tlb.h"
#include "src/sim/config.h"
#include "src/sim/types.h"

namespace bauvm
{

/** Outcome of one memory transaction. */
struct MemResult {
    bool fault = false; //!< page not resident; the access did not finish
    PageNum vpn = 0;    //!< faulting virtual page (valid when fault)
    Cycle done = 0;     //!< completion cycle when !fault; for a fault,
                        //!< the cycle at which the fault was detected
};

/**
 * State and cold paths of the GPU memory system (mode-independent).
 *
 * Consumers that never touch the hot path (the UVM runtime's eviction
 * shootdowns, the ETC framework, statistics readers) hold a reference
 * of this type so one compiled function serves every specialization.
 */
class MemoryHierarchyBase
{
  public:
    /**
     * @param config      memory-system parameters.
     * @param num_sms     number of SMs (determines private structures).
     * @param page_bytes  UVM page size, used to split addresses.
     * @param page_table  the GPU page table holding residency (owned by
     *                    the UVM memory manager; must outlive this).
     * @param hooks       observers: the auditor cross-checks every TLB
     *                    hit, TLB fill, shootdown and walk outcome
     *                    against its shadow residency.
     */
    MemoryHierarchyBase(const MemConfig &config, std::uint32_t num_sms,
                        std::uint64_t page_bytes,
                        const PageTable &page_table,
                        const SimHooks &hooks = {});

    /**
     * Invalidate all TLB entries for @p vpn (eviction shootdown).
     * Cache lines die lazily through the page-version tag bits.
     */
    void invalidatePage(PageNum vpn);

    /** Additional latency on every L2 access (ETC capacity compression). */
    void setExtraL2Latency(Cycle extra) { extra_l2_latency_ = extra; }

    /** Extra latency the SM charges for atomic operations. */
    Cycle atomicLatency() const { return config_.atomic_latency; }

    const Tlb &l1Tlb(std::uint32_t sm) const { return *l1_tlbs_[sm]; }
    const Tlb &l2Tlb() const { return *l2_tlb_; }
    const Cache &l1Cache(std::uint32_t sm) const { return *l1_caches_[sm]; }
    const Cache &l2Cache() const { return *l2_cache_; }
    const PageTableWalker &walker() const { return walker_; }
    const Dram &dram() const { return dram_; }

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t faults() const { return faults_; }

    /** Translations that missed both TLB levels and took a page walk. */
    std::uint64_t pageWalks() const { return walks_; }

    /** Fraction of translations served without a page walk. */
    double
    tlbHitRate() const
    {
        return accesses_ ? 1.0 - static_cast<double>(walks_) /
                                     static_cast<double>(accesses_)
                         : 0.0;
    }

    /** Cycles a transaction waited because the SM's MSHRs were full. */
    std::uint64_t mshrStallCycles() const { return mshr_stall_cycles_; }

  protected:
    // No virtuals: the hot path binds statically in MemoryHierarchyT<M>
    // and nothing deletes through the base.
    ~MemoryHierarchyBase() = default;

    /** Line key folding the page version in for lazy invalidation. */
    std::uint64_t
    lineKey(VAddr vaddr) const
    {
        const std::uint64_t line = line_pow2_
                                       ? vaddr >> line_shift_
                                       : vaddr / config_.l1.line_bytes;
        const PageNum vpn = pageOf(vaddr);
        const std::uint64_t version = page_table_.version(vpn);
        // Virtual addresses stay far below 2^40 (the device allocator
        // hands out low addresses), so versions fit above the line
        // index.
        return (version << 40) ^ line;
    }

    /** vaddr -> page number without the hot-path division. */
    PageNum
    pageOf(VAddr vaddr) const
    {
        return page_pow2_ ? vaddr >> page_shift_ : vaddr / page_bytes_;
    }

    SimHooks hooks_;
    MemConfig config_;
    std::uint64_t page_bytes_;
    // Shift twins of the pow2 divisors on the per-access path (page
    // size, L1 line size); the *_pow2_ flags keep odd test geometries
    // on the exact division.
    bool page_pow2_ = false;
    bool line_pow2_ = false;
    std::uint32_t page_shift_ = 0;
    std::uint32_t line_shift_ = 0;
    const PageTable &page_table_;
    std::vector<std::unique_ptr<Tlb>> l1_tlbs_;
    std::vector<std::unique_ptr<Cache>> l1_caches_;
    std::unique_ptr<Tlb> l2_tlb_;
    std::unique_ptr<Cache> l2_cache_;
    PageTableWalker walker_;
    Dram dram_;
    Cycle extra_l2_latency_ = 0;
    /** Per-SM outstanding-miss completion times (MSHR occupancy). */
    std::vector<std::priority_queue<Cycle, std::vector<Cycle>,
                                    std::greater<>>> mshrs_;
    std::uint64_t accesses_ = 0;
    std::uint64_t faults_ = 0;
    std::uint64_t walks_ = 0;
    std::uint64_t mshr_stall_cycles_ = 0;
};

/**
 * Timing and (presence-only) functional model of the GPU memory system,
 * with the hot path's observer branches compiled for mode @p M.
 */
template <ObserverMode M>
class MemoryHierarchyT final : public MemoryHierarchyBase
{
  public:
    using MemoryHierarchyBase::MemoryHierarchyBase;

    /**
     * Performs one line-granular transaction for SM @p sm.
     *
     * Translation walks L1 TLB -> L2 TLB -> page-table walker; if the
     * page is not resident the result is a fault stamped at walk
     * completion. Otherwise the data access proceeds L1 -> L2 -> DRAM.
     *
     * Defined in the header (with translate) so the SM's issue loop
     * inlines the whole per-access stack; the explicit instantiations
     * in memory_hierarchy.cc still provide out-of-line symbols.
     */
    MemResult access(std::uint32_t sm, VAddr vaddr, bool write,
                     Cycle start);

  private:
    /** Translates @p vpn. Returns {fault?, cycle translation resolved}. */
    std::pair<bool, Cycle> translate(std::uint32_t sm, PageNum vpn,
                                     Cycle start);
};

template <ObserverMode M>
inline std::pair<bool, Cycle>
MemoryHierarchyT<M>::translate(std::uint32_t sm, PageNum vpn, Cycle start)
{
    Tlb &l1 = *l1_tlbs_[sm];
    Cycle t = start + l1.hitLatency();
    if (l1.lookup(vpn)) {
        if constexpr (observesAudit(M)) {
            if (hooks_.audit)
                hooks_.audit->onTranslationHit(vpn);
        }
        return {false, t};
    }

    t += l2_tlb_->hitLatency();
    if (l2_tlb_->lookup(vpn)) {
        if constexpr (observesAudit(M)) {
            if (hooks_.audit) {
                hooks_.audit->onTranslationHit(vpn);
                hooks_.audit->onTranslationInsert(vpn);
            }
        }
        l1.insert(vpn);
        return {false, t};
    }

    ++walks_;
    const Cycle walk_done = walker_.walk(vpn, t);
    const bool fault = !page_table_.isResident(vpn);
    if constexpr (observesAudit(M)) {
        if (hooks_.audit)
            hooks_.audit->onWalkResolved(vpn, walk_done, fault);
    }
    if (fault)
        return {true, walk_done};
    if constexpr (observesAudit(M)) {
        if (hooks_.audit) {
            hooks_.audit->onTranslationInsert(vpn); // L2 TLB fill
            hooks_.audit->onTranslationInsert(vpn); // L1 TLB fill
        }
    }
    l2_tlb_->insert(vpn);
    l1.insert(vpn);
    return {false, walk_done};
}

template <ObserverMode M>
inline MemResult
MemoryHierarchyT<M>::access(std::uint32_t sm, VAddr vaddr, bool write,
                            Cycle start)
{
    if (sm >= l1_tlbs_.size())
        panic("MemoryHierarchy: SM index %u out of range", sm);
    ++accesses_;

    const PageNum vpn = pageOf(vaddr);
    auto [fault, t] = translate(sm, vpn, start);
    if (fault) {
        ++faults_;
        return MemResult{true, vpn, t};
    }

    const std::uint64_t key = lineKey(vaddr);
    Cache &l1 = *l1_caches_[sm];
    t += l1.hitLatency();
    if (l1.access(key, write))
        return MemResult{false, 0, t};

    // L1 miss: consume an MSHR for the duration of the fill.
    auto &mshr = mshrs_[sm];
    while (!mshr.empty() && mshr.top() <= t)
        mshr.pop();
    if (mshr.size() >= config_.mshrs_per_sm) {
        const Cycle avail = mshr.top();
        mshr.pop();
        mshr_stall_cycles_ += avail - t;
        t = avail;
    }

    t += l2_cache_->hitLatency() + extra_l2_latency_;
    if (!l2_cache_->access(key, write))
        t = dram_.access(config_.l2.line_bytes, t);

    mshr.push(t);
    return MemResult{false, 0, t};
}

extern template class MemoryHierarchyT<ObserverMode::Dynamic>;
extern template class MemoryHierarchyT<ObserverMode::None>;
extern template class MemoryHierarchyT<ObserverMode::Trace>;
extern template class MemoryHierarchyT<ObserverMode::Audit>;
extern template class MemoryHierarchyT<ObserverMode::Both>;

/** Historical name: the runtime-dispatched (Dynamic) specialization. */
using MemoryHierarchy = MemoryHierarchyT<ObserverMode::Dynamic>;

} // namespace bauvm

#endif // BAUVM_MEM_MEMORY_HIERARCHY_H_
