/**
 * @file
 * GPU device-memory (DRAM) timing: fixed latency plus a shared
 * bandwidth server.
 */

#ifndef BAUVM_MEM_DRAM_H_
#define BAUVM_MEM_DRAM_H_

#include <cstdint>

#include "src/sim/config.h"
#include "src/sim/types.h"

namespace bauvm
{

/**
 * Models device memory as an access latency in series with a single
 * bandwidth-limited channel. Requests are granted channel time in
 * arrival order (the event queue guarantees arrival-order invocation).
 */
class Dram
{
  public:
    explicit Dram(const MemConfig &config);

    /**
     * Services a @p bytes transfer requested at cycle @p start.
     * @return completion cycle.
     */
    Cycle access(std::uint64_t bytes, Cycle start);

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t bytesTransferred() const { return bytes_; }

    /** Total cycles spent waiting for the channel, summed over accesses. */
    std::uint64_t queueingCycles() const { return queueing_cycles_; }

  private:
    MemConfig config_;
    Cycle channel_free_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t bytes_ = 0;
    std::uint64_t queueing_cycles_ = 0;
};

} // namespace bauvm

#endif // BAUVM_MEM_DRAM_H_
