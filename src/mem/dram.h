/**
 * @file
 * GPU device-memory (DRAM) timing: fixed latency plus a shared
 * bandwidth server.
 */

#ifndef BAUVM_MEM_DRAM_H_
#define BAUVM_MEM_DRAM_H_

#include <cstdint>

#include "src/sim/config.h"
#include "src/sim/types.h"

namespace bauvm
{

/**
 * Models device memory as an access latency in series with a single
 * bandwidth-limited channel. Requests are granted channel time in
 * arrival order (the event queue guarantees arrival-order invocation).
 */
class Dram
{
  public:
    explicit Dram(const MemConfig &config);

    /**
     * Services a @p bytes transfer requested at cycle @p start.
     * Defined inline: on the per-access critical path.
     * @return completion cycle.
     */
    Cycle
    access(std::uint64_t bytes, Cycle start)
    {
        ++accesses_;
        bytes_ += bytes;
        const Cycle begin = start > channel_free_ ? start : channel_free_;
        queueing_cycles_ += begin - start;
        Cycle occupancy = bpc_pow2_
                              ? bytes >> bpc_shift_
                              : bytes / config_.dram_bytes_per_cycle;
        if (occupancy == 0)
            occupancy = 1;
        channel_free_ = begin + occupancy;
        return begin + config_.dram_latency + occupancy;
    }

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t bytesTransferred() const { return bytes_; }

    /** Total cycles spent waiting for the channel, summed over accesses. */
    std::uint64_t queueingCycles() const { return queueing_cycles_; }

  private:
    MemConfig config_;
    bool bpc_pow2_ = false; //!< shift instead of divide when pow2
    std::uint32_t bpc_shift_ = 0;
    Cycle channel_free_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t bytes_ = 0;
    std::uint64_t queueing_cycles_ = 0;
};

} // namespace bauvm

#endif // BAUVM_MEM_DRAM_H_
