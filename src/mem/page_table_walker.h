/**
 * @file
 * Highly-threaded page-table walker shared by all SMs.
 *
 * Models the design from Power et al. (HPCA'14) used by the paper: a
 * single walker with a fixed number of concurrent walk threads (Table 1:
 * 64) and a page-walk cache for upper-level entries. A walk visits each
 * page-table level; levels whose entries hit in the walk cache cost the
 * cache latency, the rest cost a device-memory access.
 */

#ifndef BAUVM_MEM_PAGE_TABLE_WALKER_H_
#define BAUVM_MEM_PAGE_TABLE_WALKER_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "src/mem/page_walk_cache.h"
#include "src/sim/config.h"
#include "src/sim/types.h"

namespace bauvm
{

/**
 * Timing model for shared, multi-threaded page-table walks.
 *
 * The walker exposes a purely analytical interface: given a request
 * time, it computes when the walk completes, accounting for walk-thread
 * contention (a walk occupies one of the walker's thread slots for its
 * whole duration).
 */
class PageTableWalker
{
  public:
    PageTableWalker(const MemConfig &config);

    /**
     * Performs one walk for @p vpn requested at @p start.
     *
     * @return the cycle at which the walk completes (the translation —
     *         or the discovery that the page is not resident — becomes
     *         available).
     */
    Cycle walk(PageNum vpn, Cycle start);

    std::uint64_t walks() const { return walks_; }

    /** Cycles spent queueing for a free walk thread, summed over walks. */
    std::uint64_t queueingCycles() const { return queueing_cycles_; }

    const PageWalkCache &walkCache() const { return pwc_; }

  private:
    /** Pure walk latency (no contention) for @p vpn. */
    Cycle walkLatency(PageNum vpn);

    MemConfig config_;
    PageWalkCache pwc_;
    /** Completion times of in-flight walks, one per busy thread slot. */
    std::priority_queue<Cycle, std::vector<Cycle>, std::greater<>> busy_;
    std::uint64_t walks_ = 0;
    std::uint64_t queueing_cycles_ = 0;
};

} // namespace bauvm

#endif // BAUVM_MEM_PAGE_TABLE_WALKER_H_
