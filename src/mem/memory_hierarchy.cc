#include "src/mem/memory_hierarchy.h"

#include <bit>
#include <string>

#include "src/check/model_auditor.h"
#include "src/sim/log.h"

namespace bauvm
{

MemoryHierarchyBase::MemoryHierarchyBase(const MemConfig &config,
                                         std::uint32_t num_sms,
                                         std::uint64_t page_bytes,
                                         const PageTable &page_table,
                                         const SimHooks &hooks)
    : hooks_(hooks), config_(config), page_bytes_(page_bytes),
      page_table_(page_table),
      l2_tlb_(std::make_unique<Tlb>(config.l2_tlb, "l2tlb")),
      l2_cache_(std::make_unique<Cache>(config.l2, "l2")),
      walker_(config), dram_(config), mshrs_(num_sms)
{
    page_pow2_ = page_bytes > 0 && (page_bytes & (page_bytes - 1)) == 0;
    if (page_pow2_)
        page_shift_ = std::countr_zero(page_bytes);
    const std::uint64_t lb = config.l1.line_bytes;
    line_pow2_ = lb > 0 && (lb & (lb - 1)) == 0;
    if (line_pow2_)
        line_shift_ = std::countr_zero(lb);
    l1_tlbs_.reserve(num_sms);
    l1_caches_.reserve(num_sms);
    for (std::uint32_t i = 0; i < num_sms; ++i) {
        l1_tlbs_.push_back(std::make_unique<Tlb>(
            config.l1_tlb, "l1tlb" + std::to_string(i)));
        l1_caches_.push_back(std::make_unique<Cache>(
            config.l1, "l1" + std::to_string(i)));
    }
}

void
MemoryHierarchyBase::invalidatePage(PageNum vpn)
{
    for (auto &tlb : l1_tlbs_)
        tlb->invalidate(vpn);
    l2_tlb_->invalidate(vpn);
    if (hooks_.audit)
        hooks_.audit->onTranslationInvalidate(vpn);
}

template class MemoryHierarchyT<ObserverMode::Dynamic>;
template class MemoryHierarchyT<ObserverMode::None>;
template class MemoryHierarchyT<ObserverMode::Trace>;
template class MemoryHierarchyT<ObserverMode::Audit>;
template class MemoryHierarchyT<ObserverMode::Both>;

} // namespace bauvm
