#include "src/mem/memory_hierarchy.h"

#include <string>

#include "src/check/model_auditor.h"
#include "src/sim/log.h"

namespace bauvm
{

MemoryHierarchy::MemoryHierarchy(const MemConfig &config,
                                 std::uint32_t num_sms,
                                 std::uint64_t page_bytes,
                                 const PageTable &page_table,
                                 const SimHooks &hooks)
    : hooks_(hooks), config_(config), page_bytes_(page_bytes),
      page_table_(page_table),
      l2_tlb_(std::make_unique<Tlb>(config.l2_tlb, "l2tlb")),
      l2_cache_(std::make_unique<Cache>(config.l2, "l2")),
      walker_(config), dram_(config), mshrs_(num_sms)
{
    l1_tlbs_.reserve(num_sms);
    l1_caches_.reserve(num_sms);
    for (std::uint32_t i = 0; i < num_sms; ++i) {
        l1_tlbs_.push_back(std::make_unique<Tlb>(
            config.l1_tlb, "l1tlb" + std::to_string(i)));
        l1_caches_.push_back(std::make_unique<Cache>(
            config.l1, "l1" + std::to_string(i)));
    }
}

std::uint64_t
MemoryHierarchy::lineKey(VAddr vaddr) const
{
    const std::uint64_t line = vaddr / config_.l1.line_bytes;
    const PageNum vpn = vaddr / page_bytes_;
    const std::uint64_t version = page_table_.version(vpn);
    // Virtual addresses stay far below 2^40 (the device allocator hands
    // out low addresses), so versions fit above the line index.
    return (version << 40) ^ line;
}

std::pair<bool, Cycle>
MemoryHierarchy::translate(std::uint32_t sm, PageNum vpn, Cycle start)
{
    Tlb &l1 = *l1_tlbs_[sm];
    Cycle t = start + l1.hitLatency();
    if (l1.lookup(vpn)) {
        if (hooks_.audit)
            hooks_.audit->onTranslationHit(vpn);
        return {false, t};
    }

    t += l2_tlb_->hitLatency();
    if (l2_tlb_->lookup(vpn)) {
        if (hooks_.audit) {
            hooks_.audit->onTranslationHit(vpn);
            hooks_.audit->onTranslationInsert(vpn);
        }
        l1.insert(vpn);
        return {false, t};
    }

    ++walks_;
    const Cycle walk_done = walker_.walk(vpn, t);
    const bool fault = !page_table_.isResident(vpn);
    if (hooks_.audit)
        hooks_.audit->onWalkResolved(vpn, walk_done, fault);
    if (fault)
        return {true, walk_done};
    if (hooks_.audit) {
        hooks_.audit->onTranslationInsert(vpn); // L2 TLB fill
        hooks_.audit->onTranslationInsert(vpn); // L1 TLB fill
    }
    l2_tlb_->insert(vpn);
    l1.insert(vpn);
    return {false, walk_done};
}

MemResult
MemoryHierarchy::access(std::uint32_t sm, VAddr vaddr, bool write,
                        Cycle start)
{
    if (sm >= l1_tlbs_.size())
        panic("MemoryHierarchy: SM index %u out of range", sm);
    ++accesses_;

    const PageNum vpn = vaddr / page_bytes_;
    auto [fault, t] = translate(sm, vpn, start);
    if (fault) {
        ++faults_;
        return MemResult{true, vpn, t};
    }

    const std::uint64_t key = lineKey(vaddr);
    Cache &l1 = *l1_caches_[sm];
    t += l1.hitLatency();
    if (l1.access(key, write))
        return MemResult{false, 0, t};

    // L1 miss: consume an MSHR for the duration of the fill.
    auto &mshr = mshrs_[sm];
    while (!mshr.empty() && mshr.top() <= t)
        mshr.pop();
    if (mshr.size() >= config_.mshrs_per_sm) {
        const Cycle avail = mshr.top();
        mshr.pop();
        mshr_stall_cycles_ += avail - t;
        t = avail;
    }

    t += l2_cache_->hitLatency() + extra_l2_latency_;
    if (!l2_cache_->access(key, write))
        t = dram_.access(config_.l2.line_bytes, t);

    mshr.push(t);
    return MemResult{false, 0, t};
}

void
MemoryHierarchy::invalidatePage(PageNum vpn)
{
    for (auto &tlb : l1_tlbs_)
        tlb->invalidate(vpn);
    l2_tlb_->invalidate(vpn);
    if (hooks_.audit)
        hooks_.audit->onTranslationInvalidate(vpn);
}

} // namespace bauvm
