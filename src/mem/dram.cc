#include "src/mem/dram.h"

#include <bit>

namespace bauvm
{

Dram::Dram(const MemConfig &config) : config_(config)
{
    const std::uint32_t bpc = config.dram_bytes_per_cycle;
    bpc_pow2_ = bpc > 0 && (bpc & (bpc - 1)) == 0;
    if (bpc_pow2_)
        bpc_shift_ = std::countr_zero(bpc);
}

} // namespace bauvm
