#include "src/mem/dram.h"

namespace bauvm
{

Dram::Dram(const MemConfig &config) : config_(config)
{
}

Cycle
Dram::access(std::uint64_t bytes, Cycle start)
{
    ++accesses_;
    bytes_ += bytes;
    const Cycle begin = start > channel_free_ ? start : channel_free_;
    queueing_cycles_ += begin - start;
    Cycle occupancy = bytes / config_.dram_bytes_per_cycle;
    if (occupancy == 0)
        occupancy = 1;
    channel_free_ = begin + occupancy;
    return begin + config_.dram_latency + occupancy;
}

} // namespace bauvm
