// PageWalkCache is header-only; this file exists so the build system has
// a translation unit to attach the module to.
#include "src/mem/page_walk_cache.h"
