#include "src/mem/page_table_walker.h"

namespace bauvm
{

PageTableWalker::PageTableWalker(const MemConfig &config)
    : config_(config), pwc_(config.walk_cache_entries)
{
}

Cycle
PageTableWalker::walkLatency(PageNum vpn)
{
    Cycle latency = 0;
    // Levels are numbered with the root highest; the leaf PTE (level 1)
    // is never cached in the walk cache and always costs a memory access.
    for (std::uint32_t level = config_.page_table_levels; level >= 2;
         --level) {
        if (pwc_.lookup(level, vpn)) {
            latency += config_.walk_cache_latency;
        } else {
            latency += config_.dram_latency;
            pwc_.insert(level, vpn);
        }
    }
    latency += config_.dram_latency; // leaf PTE fetch
    return latency;
}

Cycle
PageTableWalker::walk(PageNum vpn, Cycle start)
{
    ++walks_;
    // Reclaim thread slots that have finished by the request time.
    while (!busy_.empty() && busy_.top() <= start)
        busy_.pop();

    Cycle begin = start;
    if (busy_.size() >= config_.walker_threads) {
        // All walk threads busy: wait for the earliest to retire.
        begin = busy_.top();
        busy_.pop();
        queueing_cycles_ += begin - start;
    }
    const Cycle done = begin + walkLatency(vpn);
    busy_.push(done);
    return done;
}

} // namespace bauvm
