#include "src/mem/page_meta.h"

#include "src/sim/log.h"

namespace bauvm
{

namespace
{
/**
 * Hard ceiling on tracked VPNs. 2^30 pages of 64 KB is a 64 TB virtual
 * footprint — far past any modeled workload — and keeps every 32-bit
 * index link in PageMeta comfortably valid. Hitting this means a
 * corrupt address, not a big workload.
 */
constexpr PageNum kMaxTrackedPages = PageNum{1} << 30;
} // namespace

void
PageMetaTable::grow(PageNum vpn)
{
    if (vpn >= kMaxTrackedPages) {
        panic("PageMetaTable: vpn %llu beyond the dense-table bound "
              "(corrupt address?)",
              static_cast<unsigned long long>(vpn));
    }
    std::size_t want = static_cast<std::size_t>(vpn) + 1;
    if (want < meta_.size() * 2)
        want = meta_.size() * 2;
    meta_.resize(want);
}

} // namespace bauvm
