/**
 * @file
 * TraceSink: the per-run binary event buffer.
 *
 * A fixed-capacity ring of 32-byte TraceRecords, fully preallocated at
 * construction, so emitting an event on the simulation hot path is a
 * bounds check plus one struct store — no allocation, no formatting,
 * no I/O. When the ring is full the *oldest* record is overwritten
 * (the newest events are the ones that explain a failure) and the
 * overwrite is counted in droppedEvents(), which every exporter
 * surfaces so a truncated trace is never mistaken for a complete one.
 *
 * Tracing is compiled in but branch-gated: instrumented components
 * hold a `TraceSink *` that is null when tracing is disabled, and
 * every emission site is guarded by that null check. A disabled run
 * therefore pays one predictable branch per site and nothing else.
 *
 * The sink is single-threaded, like the simulation that feeds it; in
 * a parallel sweep each cell owns a private sink.
 */

#ifndef BAUVM_TRACE_TRACE_SINK_H_
#define BAUVM_TRACE_TRACE_SINK_H_

#include <cstdint>
#include <vector>

#include "src/trace/trace_event.h"

namespace bauvm
{

/** Bounded, allocation-free-on-append event buffer (see file doc). */
class TraceSink
{
  public:
    /** @param capacity_records ring size; clamped to >= 1. */
    explicit TraceSink(std::uint64_t capacity_records);

    /** Records an interval event [begin, end] on @p track. */
    void
    interval(TraceEventType type, TraceTrack track, Cycle begin,
             Cycle end, std::uint64_t arg0 = 0, std::uint32_t arg1 = 0)
    {
        TraceRecord r;
        r.begin = begin;
        r.end = end;
        r.arg0 = arg0;
        r.arg1 = arg1;
        r.track = track;
        r.type = static_cast<std::uint8_t>(type);
        push(r);
    }

    /** Records an instant event at @p when on @p track. */
    void
    instant(TraceEventType type, TraceTrack track, Cycle when,
            std::uint64_t arg0 = 0, std::uint32_t arg1 = 0)
    {
        interval(type, track, when, when, arg0, arg1);
    }

    /** Records a counter sample at @p when on @p track. */
    void
    counter(TraceEventType type, TraceTrack track, Cycle when,
            std::uint64_t arg0, std::uint32_t arg1 = 0)
    {
        interval(type, track, when, when, arg0, arg1);
    }

    /** Records currently held (<= capacity()). */
    std::uint64_t size() const
    {
        return total_ < capacity_ ? total_ : capacity_;
    }

    std::uint64_t capacity() const { return capacity_; }

    /** Total emissions over the sink's lifetime, kept or not. */
    std::uint64_t totalEvents() const { return total_; }

    /** Oldest records overwritten because the ring wrapped. */
    std::uint64_t droppedEvents() const
    {
        return total_ < capacity_ ? 0 : total_ - capacity_;
    }

    /**
     * Retained record @p i in chronological (emission) order:
     * index 0 is the oldest record still held.
     */
    const TraceRecord &
    at(std::uint64_t i) const
    {
        const std::uint64_t base =
            total_ < capacity_ ? 0 : next_;
        return buf_[(base + i) % capacity_];
    }

    /** Calls @p fn on every retained record, oldest first. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        const std::uint64_t n = size();
        for (std::uint64_t i = 0; i < n; ++i)
            fn(at(i));
    }

    /** Empties the sink (capacity and drop counter history reset). */
    void clear();

  private:
    void
    push(const TraceRecord &r)
    {
        buf_[next_] = r;
        next_ = next_ + 1 == capacity_ ? 0 : next_ + 1;
        ++total_;
    }

    std::uint64_t capacity_;
    std::uint64_t next_ = 0;  //!< ring slot the next record lands in
    std::uint64_t total_ = 0; //!< lifetime emissions
    std::vector<TraceRecord> buf_;
};

} // namespace bauvm

#endif // BAUVM_TRACE_TRACE_SINK_H_
