#include "src/trace/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/runner/json_writer.h"
#include "src/sim/log.h"

namespace bauvm
{

namespace
{

/** Chrome tid for a track: SMs keep their id, specials go to 1000+. */
std::uint32_t
trackTid(TraceTrack track)
{
    switch (track) {
      case kTraceTrackRuntime:
        return 1000;
      case kTraceTrackPcieH2d:
        return 1001;
      case kTraceTrackPcieD2h:
        return 1002;
      case kTraceTrackMemory:
        return 1003;
      default:
        return track;
    }
}

/** Simulated cycles to Chrome timestamp microseconds (1 GHz clock). */
double
cyclesToUs(Cycle c)
{
    return static_cast<double>(c) / 1000.0;
}

/** Writes one record's type-specific args object. */
void
writeArgs(JsonWriter &w, const TraceRecord &r)
{
    w.beginObject("args");
    switch (r.eventType()) {
      case TraceEventType::BatchWindow:
        w.field("fault_pages", static_cast<std::uint64_t>(r.arg0));
        w.field("prefetch_pages", static_cast<std::uint64_t>(r.arg1));
        break;
      case TraceEventType::FaultHandling:
        w.field("fault_pages", static_cast<std::uint64_t>(r.arg0));
        break;
      case TraceEventType::PageFault:
        w.field("vpn", static_cast<std::uint64_t>(r.arg0));
        w.field("warp", static_cast<std::uint64_t>(r.arg1));
        break;
      case TraceEventType::Migration:
      case TraceEventType::Eviction:
        w.field("vpn", static_cast<std::uint64_t>(r.arg0));
        w.field("bytes", static_cast<std::uint64_t>(r.arg1));
        break;
      case TraceEventType::PrefetchIssue:
        w.field("pages", static_cast<std::uint64_t>(r.arg0));
        w.field("demand_pages", static_cast<std::uint64_t>(r.arg1));
        break;
      case TraceEventType::CtxSwitchOut:
        w.field("slot", static_cast<std::uint64_t>(r.arg0));
        break;
      case TraceEventType::CtxSwitchIn:
        w.field("slot", static_cast<std::uint64_t>(r.arg0));
        w.field("restore_cycles", static_cast<std::uint64_t>(r.arg1));
        break;
      case TraceEventType::PcieBusy:
        w.field("bytes", static_cast<std::uint64_t>(r.arg0));
        w.field("transfer", static_cast<std::uint64_t>(r.arg1));
        break;
      case TraceEventType::LifetimeWindow:
        w.field("avg_lifetime_cycles",
                static_cast<std::uint64_t>(r.arg0));
        w.field("advice", static_cast<std::uint64_t>(r.arg1));
        break;
      case TraceEventType::BlockDispatch:
        w.field("block", static_cast<std::uint64_t>(r.arg0));
        w.field("active", r.arg1 != 0);
        break;
      case TraceEventType::BlockFinish:
        w.field("block", static_cast<std::uint64_t>(r.arg0));
        w.field("slot", static_cast<std::uint64_t>(r.arg1));
        break;
      default:
        w.field("arg0", static_cast<std::uint64_t>(r.arg0));
        w.field("arg1", static_cast<std::uint64_t>(r.arg1));
        break;
    }
    w.endObject();
}

/** Counter series (name -> value columns) for the "C" phase. */
void
writeCounterEvent(JsonWriter &w, const TraceRecord &r)
{
    w.beginObject();
    w.field("ph", "C");
    w.field("pid", std::uint64_t{0});
    w.field("tid", static_cast<std::uint64_t>(trackTid(r.track)));
    w.field("ts", cyclesToUs(r.begin));
    w.field("name", traceTrackName(r.track) + ":" +
                        traceEventTypeName(r.eventType()));
    w.beginObject("args");
    switch (r.eventType()) {
      case TraceEventType::SmOccupancy:
        w.field("active", static_cast<std::uint64_t>(r.arg0));
        w.field("resident", static_cast<std::uint64_t>(r.arg1));
        break;
      case TraceEventType::FaultBufferDepth:
        w.field("entries", static_cast<std::uint64_t>(r.arg0));
        w.field("overflow", static_cast<std::uint64_t>(r.arg1));
        break;
      case TraceEventType::CommittedFrames:
        w.field("frames", static_cast<std::uint64_t>(r.arg0));
        w.field("capacity", static_cast<std::uint64_t>(r.arg1));
        break;
      case TraceEventType::OversubDegree:
        w.field("extra_blocks", static_cast<std::uint64_t>(r.arg0));
        break;
      default:
        w.field("value", static_cast<std::uint64_t>(r.arg0));
        break;
    }
    w.endObject();
    w.endObject();
}

/** Thread-name/sort metadata for every track present in the trace. */
void
writeTrackMetadata(JsonWriter &w, const std::vector<TraceTrack> &tracks)
{
    for (TraceTrack t : tracks) {
        const std::uint64_t tid = trackTid(t);
        w.beginObject();
        w.field("ph", "M");
        w.field("pid", std::uint64_t{0});
        w.field("tid", tid);
        w.field("name", "thread_name");
        w.beginObject("args");
        w.field("name", traceTrackName(t));
        w.endObject();
        w.endObject();

        w.beginObject();
        w.field("ph", "M");
        w.field("pid", std::uint64_t{0});
        w.field("tid", tid);
        w.field("name", "thread_sort_index");
        w.beginObject("args");
        // Runtime + PCIe tracks first (the paper's story), SMs after.
        w.field("sort_index",
                static_cast<std::int64_t>(tid >= 1000 ? tid - 1000
                                                      : tid + 16));
        w.endObject();
        w.endObject();
    }
}

} // namespace

std::string
toChromeTraceJson(const TraceSink &sink, const TraceMeta &meta)
{
    // Snapshot in emission order, then sort by begin cycle (Perfetto
    // prefers monotonically non-decreasing timestamps). stable_sort
    // keeps same-cycle records in emission order.
    std::vector<TraceRecord> records;
    records.reserve(sink.size());
    sink.forEach([&](const TraceRecord &r) { records.push_back(r); });
    std::stable_sort(records.begin(), records.end(),
                     [](const TraceRecord &a, const TraceRecord &b) {
                         return a.begin < b.begin;
                     });

    std::vector<TraceTrack> tracks;
    for (const TraceRecord &r : records) {
        if (std::find(tracks.begin(), tracks.end(), r.track) ==
            tracks.end())
            tracks.push_back(r.track);
    }
    std::sort(tracks.begin(), tracks.end());

    JsonWriter w(/*pretty=*/false);
    w.beginObject();
    w.field("displayTimeUnit", "ms");
    w.beginObject("otherData");
    w.field("schema", kTraceSchema);
    w.field("bench", meta.bench);
    w.field("workload", meta.workload);
    w.field("policy", meta.policy);
    w.field("variant", meta.variant);
    w.field("scale", meta.scale);
    w.field("seed", meta.seed);
    w.field("ratio", meta.ratio);
    w.field("partial", meta.partial);
    w.field("total_events", sink.totalEvents());
    w.field("retained_events", sink.size());
    w.field("dropped_events", sink.droppedEvents());
    w.endObject();

    w.beginArray("traceEvents");
    writeTrackMetadata(w, tracks);
    for (const TraceRecord &r : records) {
        if (traceEventIsCounter(r.eventType())) {
            writeCounterEvent(w, r);
            continue;
        }
        const bool instant = r.end == r.begin;
        w.beginObject();
        w.field("ph", instant ? "i" : "X");
        w.field("pid", std::uint64_t{0});
        w.field("tid", static_cast<std::uint64_t>(trackTid(r.track)));
        w.field("ts", cyclesToUs(r.begin));
        if (instant)
            w.field("s", "t"); // instant scope: thread
        else
            w.field("dur", cyclesToUs(r.end - r.begin));
        w.field("name", traceEventTypeName(r.eventType()));
        writeArgs(w, r);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

bool
writeChromeTrace(const TraceSink &sink, const TraceMeta &meta,
                 const std::string &path)
{
    const std::string doc = toChromeTraceJson(sink, meta);
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("trace: cannot open '%s' for writing", path.c_str());
        return false;
    }
    const std::size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
    const bool ok = n == doc.size() && std::fclose(f) == 0;
    if (!ok)
        warn("trace: short write to '%s'", path.c_str());
    return ok;
}

std::string
toCounterCsv(const TraceSink &sink)
{
    std::string out = "cycle,track,counter,value\n";
    char line[160];
    sink.forEach([&](const TraceRecord &r) {
        if (!traceEventIsCounter(r.eventType()))
            return;
        const std::string track = traceTrackName(r.track);
        const char *name = traceEventTypeName(r.eventType());
        std::snprintf(line, sizeof line, "%llu,%s,%s,%llu\n",
                      static_cast<unsigned long long>(r.begin),
                      track.c_str(), name,
                      static_cast<unsigned long long>(r.arg0));
        out += line;
    });
    char tail[96];
    std::snprintf(tail, sizeof tail, "# dropped_events,%llu\n",
                  static_cast<unsigned long long>(sink.droppedEvents()));
    out += tail;
    return out;
}

bool
writeCounterCsv(const TraceSink &sink, const std::string &path)
{
    const std::string doc = toCounterCsv(sink);
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("trace: cannot open '%s' for writing", path.c_str());
        return false;
    }
    const std::size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
    const bool ok = n == doc.size() && std::fclose(f) == 0;
    if (!ok)
        warn("trace: short write to '%s'", path.c_str());
    return ok;
}

} // namespace bauvm
