#include "src/trace/trace_sink.h"

#include <algorithm>

namespace bauvm
{

TraceSink::TraceSink(std::uint64_t capacity_records)
    : capacity_(std::max<std::uint64_t>(1, capacity_records)),
      buf_(capacity_)
{
}

void
TraceSink::clear()
{
    next_ = 0;
    total_ = 0;
}

const char *
traceEventTypeName(TraceEventType type)
{
    switch (type) {
      case TraceEventType::BatchWindow:
        return "batch";
      case TraceEventType::FaultHandling:
        return "fault_handling";
      case TraceEventType::PageFault:
        return "page_fault";
      case TraceEventType::Migration:
        return "migration";
      case TraceEventType::Eviction:
        return "eviction";
      case TraceEventType::PrefetchIssue:
        return "prefetch";
      case TraceEventType::CtxSwitchOut:
        return "ctx_switch_out";
      case TraceEventType::CtxSwitchIn:
        return "ctx_switch_in";
      case TraceEventType::PcieBusy:
        return "pcie_busy";
      case TraceEventType::SmOccupancy:
        return "sm_occupancy";
      case TraceEventType::FaultBufferDepth:
        return "fault_buffer_depth";
      case TraceEventType::CommittedFrames:
        return "committed_frames";
      case TraceEventType::LifetimeWindow:
        return "lifetime_window";
      case TraceEventType::OversubDegree:
        return "oversub_degree";
      case TraceEventType::BlockDispatch:
        return "block_dispatch";
      case TraceEventType::BlockFinish:
        return "block_finish";
      case TraceEventType::kCount:
        break;
    }
    return "unknown";
}

bool
traceEventIsCounter(TraceEventType type)
{
    switch (type) {
      case TraceEventType::SmOccupancy:
      case TraceEventType::FaultBufferDepth:
      case TraceEventType::CommittedFrames:
      case TraceEventType::OversubDegree:
        return true;
      default:
        return false;
    }
}

std::string
traceTrackName(TraceTrack track)
{
    switch (track) {
      case kTraceTrackRuntime:
        return "uvm_runtime";
      case kTraceTrackPcieH2d:
        return "pcie_h2d";
      case kTraceTrackPcieD2h:
        return "pcie_d2h";
      case kTraceTrackMemory:
        return "gpu_memory";
      default:
        if (track >= kTraceTrackTenantBase &&
            track < kTraceTrackTenantBase + 0xf0) {
            return "tenant" +
                   std::to_string(track - kTraceTrackTenantBase);
        }
        return "sm" + std::to_string(track);
    }
}

} // namespace bauvm
