/**
 * @file
 * Trace event taxonomy and the fixed-size binary record.
 *
 * One TraceRecord is 32 bytes of plain data: a [begin, end] cycle
 * interval (instants use begin == end), two payload arguments whose
 * meaning depends on the event type, and a track id that names the
 * timeline the event belongs to (one per SM, one per PCIe direction,
 * one for the UVM runtime, one for the memory manager). Records are
 * written into the TraceSink ring on the simulation hot path, so the
 * layout is append-only POD — interpretation (names, Chrome JSON
 * phases, counter series) lives entirely in the exporter.
 */

#ifndef BAUVM_TRACE_TRACE_EVENT_H_
#define BAUVM_TRACE_TRACE_EVENT_H_

#include <cstdint>
#include <string>

#include "src/sim/types.h"

namespace bauvm
{

/**
 * Typed trace events. The arg0/arg1 columns document each type's
 * payload; "track" names the timeline the exporter files it under.
 *
 * type              kind      track        arg0            arg1
 * ----------------- --------- ------------ --------------- ------------
 * BatchWindow       interval  runtime      fault pages     prefetch pages
 * FaultHandling     interval  runtime      fault pages     —
 * PageFault         instant   SM           vpn             warp slot
 * Migration         interval  pcie h2d     vpn             bytes on wire
 * Eviction          interval  pcie d2h     vpn             bytes on wire
 * PrefetchIssue     instant   runtime      pages picked    demand pages
 * CtxSwitchOut      instant   SM           block slot      —
 * CtxSwitchIn       interval  SM           block slot      restore cycles
 * PcieBusy          interval  pcie h2d/d2h bytes on wire   transfer #
 * SmOccupancy       counter   SM           active blocks   resident blocks
 * FaultBufferDepth  counter   runtime      entries         overflow queue
 * CommittedFrames   counter   memory       committed       capacity
 * LifetimeWindow    instant   memory       avg life (cyc)  OversubAdvice
 * OversubDegree     counter   runtime      allowed extra   —
 * BlockDispatch     instant   SM           grid block id   active flag
 * BlockFinish       instant   SM           grid block id   block slot
 */
enum class TraceEventType : std::uint8_t {
    BatchWindow = 0,
    FaultHandling,
    PageFault,
    Migration,
    Eviction,
    PrefetchIssue,
    CtxSwitchOut,
    CtxSwitchIn,
    PcieBusy,
    SmOccupancy,
    FaultBufferDepth,
    CommittedFrames,
    LifetimeWindow,
    OversubDegree,
    BlockDispatch,
    BlockFinish,
    kCount,
};

/** Stable lower-case name of @p type, as emitted in exports. */
const char *traceEventTypeName(TraceEventType type);

/** True for the counter-series types (exported as Chrome "C" events). */
bool traceEventIsCounter(TraceEventType type);

/**
 * Track ids. SMs use their id directly (0 .. num_sms-1); the
 * non-SM timelines live at the top of the 16-bit range so they can
 * never collide with an SM id.
 */
using TraceTrack = std::uint16_t;
inline constexpr TraceTrack kTraceTrackRuntime = 0xfff0;
inline constexpr TraceTrack kTraceTrackPcieH2d = 0xfff1;
inline constexpr TraceTrack kTraceTrackPcieD2h = 0xfff2;
inline constexpr TraceTrack kTraceTrackMemory = 0xfff3;
/** Per-tenant counter tracks: tenant t lives at base + t. Far above
 *  any realistic SM id, below the fixed runtime tracks. */
inline constexpr TraceTrack kTraceTrackTenantBase = 0xff00;

/** Tenant @p id as a counter track. */
inline TraceTrack
traceTrackTenant(TenantId id)
{
    return static_cast<TraceTrack>(kTraceTrackTenantBase + id);
}

/** SM @p id as a track. */
inline TraceTrack
traceTrackSm(std::uint32_t id)
{
    return static_cast<TraceTrack>(id);
}

/** Human-readable track name ("sm3", "pcie_h2d", ...). */
std::string traceTrackName(TraceTrack track);

/** One fixed-size binary trace record (see file doc). */
struct TraceRecord {
    Cycle begin = 0;          //!< event start cycle
    Cycle end = 0;            //!< event end cycle (== begin for instants)
    std::uint64_t arg0 = 0;   //!< type-dependent payload
    std::uint32_t arg1 = 0;   //!< type-dependent payload
    TraceTrack track = 0;     //!< timeline the event belongs to
    std::uint8_t type = 0;    //!< TraceEventType
    std::uint8_t reserved = 0;

    TraceEventType eventType() const
    {
        return static_cast<TraceEventType>(type);
    }
};
static_assert(sizeof(TraceRecord) == 32,
              "trace record must stay 32 bytes (hot-path append)");

} // namespace bauvm

#endif // BAUVM_TRACE_TRACE_EVENT_H_
