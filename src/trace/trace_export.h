/**
 * @file
 * Trace exporters — run off the hot path, after (or instead of) a
 * completed simulation.
 *
 * Two formats:
 *  - **Chrome trace JSON** (schema "bauvm.trace/1"): the object form
 *    of the Trace Event Format that chrome://tracing and Perfetto
 *    open directly. Every track becomes a named thread (one per SM,
 *    one per PCIe direction, one for the UVM runtime, one for the
 *    memory manager); intervals become complete ("X") events,
 *    instants become "i" events, and the counter taxonomy becomes
 *    "C" series. Run metadata — workload, policy, seed, and the
 *    sink's dropped_events accounting — rides in "otherData".
 *  - **Counter CSV**: the counter-series records only, one sample per
 *    row (`cycle,track,counter,value`), for quick plotting without a
 *    trace viewer.
 */

#ifndef BAUVM_TRACE_TRACE_EXPORT_H_
#define BAUVM_TRACE_TRACE_EXPORT_H_

#include <cstdint>
#include <string>

#include "src/trace/trace_sink.h"

namespace bauvm
{

/** JSON schema tag stamped into every Chrome-trace export. */
inline constexpr const char *kTraceSchema = "bauvm.trace/1";

/** Run identification embedded in the export's otherData. */
struct TraceMeta {
    std::string bench;     //!< producing binary ("" when direct)
    std::string workload;
    std::string policy;
    std::string variant;
    std::string scale;
    std::uint64_t seed = 0;
    double ratio = 0.0;
    /** True when the run aborted and the buffer is a partial flush. */
    bool partial = false;
};

/** Serializes @p sink as a Chrome trace JSON document. */
std::string toChromeTraceJson(const TraceSink &sink,
                              const TraceMeta &meta);

/**
 * Writes toChromeTraceJson() to @p path.
 * @return false (with a warn) when the file cannot be written.
 */
bool writeChromeTrace(const TraceSink &sink, const TraceMeta &meta,
                      const std::string &path);

/** Serializes the counter-series records as CSV (with header row). */
std::string toCounterCsv(const TraceSink &sink);

/** Writes toCounterCsv() to @p path; false + warn on I/O failure. */
bool writeCounterCsv(const TraceSink &sink, const std::string &path);

} // namespace bauvm

#endif // BAUVM_TRACE_TRACE_EXPORT_H_
