#include "src/graph/csr_graph.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "src/sim/log.h"

namespace bauvm
{

CsrGraph
CsrGraph::fromEdges(
    VertexId num_vertices,
    const std::vector<std::pair<VertexId, VertexId>> &edges,
    const std::vector<std::uint32_t> &weights)
{
    if (!weights.empty() && weights.size() != edges.size())
        fatal("CsrGraph: weight count does not match edge count");

    CsrGraph g;
    g.row_offsets_.assign(num_vertices + 1, 0);
    for (const auto &[src, dst] : edges) {
        if (src >= num_vertices || dst >= num_vertices)
            fatal("CsrGraph: edge endpoint out of range");
        ++g.row_offsets_[src + 1];
    }
    std::partial_sum(g.row_offsets_.begin(), g.row_offsets_.end(),
                     g.row_offsets_.begin());

    g.col_indices_.resize(edges.size());
    if (!weights.empty())
        g.weights_.resize(edges.size());
    std::vector<std::uint64_t> cursor(g.row_offsets_.begin(),
                                      g.row_offsets_.end() - 1);
    for (std::size_t i = 0; i < edges.size(); ++i) {
        const auto &[src, dst] = edges[i];
        const std::uint64_t pos = cursor[src]++;
        g.col_indices_[pos] = dst;
        if (!weights.empty())
            g.weights_[pos] = weights[i];
    }
    return g;
}

CsrGraph
CsrGraph::fromCsrArrays(std::vector<std::uint64_t> row_offsets,
                        std::vector<VertexId> col_indices,
                        std::vector<std::uint32_t> weights)
{
    CsrGraph g;
    g.row_offsets_ = std::move(row_offsets);
    g.col_indices_ = std::move(col_indices);
    g.weights_ = std::move(weights);
    g.validate();
    return g;
}

void
CsrGraph::validate() const
{
    if (row_offsets_.empty())
        panic("CsrGraph: empty row offsets");
    if (row_offsets_.front() != 0 ||
        row_offsets_.back() != col_indices_.size()) {
        panic("CsrGraph: bad offset bounds");
    }
    for (std::size_t i = 1; i < row_offsets_.size(); ++i) {
        if (row_offsets_[i] < row_offsets_[i - 1])
            panic("CsrGraph: non-monotonic offsets");
    }
    const VertexId v = numVertices();
    for (VertexId c : col_indices_) {
        if (c >= v)
            panic("CsrGraph: column index out of range");
    }
    if (!weights_.empty() && weights_.size() != col_indices_.size())
        panic("CsrGraph: weight array size mismatch");
}

} // namespace bauvm
