#include "src/graph/graph_cache.h"

namespace bauvm
{

GraphBuildCache &
GraphBuildCache::instance()
{
    static GraphBuildCache cache;
    return cache;
}

GraphBuildCache::Scope::Scope()
{
    instance().enterScope();
}

GraphBuildCache::Scope::~Scope()
{
    instance().exitScope();
}

void
GraphBuildCache::enterScope()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++scope_depth_;
}

void
GraphBuildCache::exitScope()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (--scope_depth_ == 0)
        cache_.clear();
}

bool
GraphBuildCache::enabled() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return scope_depth_ > 0;
}

std::uint64_t
GraphBuildCache::builds() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return builds_;
}

std::uint64_t
GraphBuildCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

void
GraphBuildCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    cache_.clear();
}

std::shared_ptr<const CsrGraph>
GraphBuildCache::getOrBuild(const Key &key,
                            const std::function<CsrGraph()> &build)
{
    std::promise<Shared> promise;
    std::shared_future<Shared> future;
    bool builder = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (scope_depth_ == 0) {
            ++builds_;
            builder = true; // uncached: build outside the lock below
        } else {
            auto it = cache_.find(key);
            if (it == cache_.end()) {
                future = promise.get_future().share();
                cache_.emplace(key, future);
                ++builds_;
                builder = true;
            } else {
                future = it->second;
                ++hits_;
            }
        }
    }

    if (!builder)
        return future.get(); // rethrows if the in-flight build failed

    if (!future.valid()) // uncached fast path (no Scope active)
        return std::make_shared<const CsrGraph>(build());

    try {
        auto graph = std::make_shared<const CsrGraph>(build());
        promise.set_value(graph);
        return graph;
    } catch (...) {
        // Unpark current waiters with the error, but drop the entry so
        // later requests retry instead of replaying a stale failure.
        promise.set_exception(std::current_exception());
        std::lock_guard<std::mutex> lock(mutex_);
        cache_.erase(key); // only the builder inserts for this key
        throw;
    }
}

} // namespace bauvm
