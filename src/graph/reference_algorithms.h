/**
 * @file
 * Reference CPU implementations of every graph algorithm the GPU
 * workloads run. The test suite validates each simulated kernel's
 * functional output against these.
 */

#ifndef BAUVM_GRAPH_REFERENCE_ALGORITHMS_H_
#define BAUVM_GRAPH_REFERENCE_ALGORITHMS_H_

#include <cstdint>
#include <vector>

#include "src/graph/csr_graph.h"

namespace bauvm::reference
{

/** Unreachable marker used by BFS/SSSP results. */
constexpr std::uint32_t kInfinity = 0xffffffffu;

/** BFS levels from @p source (kInfinity where unreachable). */
std::vector<std::uint32_t> bfsLevels(const CsrGraph &g, VertexId source);

/** Single-source shortest path distances (weighted, non-negative). */
std::vector<std::uint32_t> ssspDistances(const CsrGraph &g,
                                         VertexId source);

/** PageRank scores after @p iterations of synchronous power iteration
 *  with damping @p d (uniform 1/V start, no dangling redistribution —
 *  matching the GPU kernel's pull scheme on undirected graphs). */
std::vector<double> pageRank(const CsrGraph &g, std::uint32_t iterations,
                             double d = 0.85);

/** K-core number (coreness) of every vertex via peeling. */
std::vector<std::uint32_t> kcore(const CsrGraph &g);

/** Betweenness centrality contribution of one @p source (Brandes). */
std::vector<double> bcFromSource(const CsrGraph &g, VertexId source);

/** True if @p colors is a proper coloring of @p g. */
bool isProperColoring(const CsrGraph &g,
                      const std::vector<std::uint32_t> &colors);

/** Connected-component label of every vertex: the smallest vertex id
 *  in its component (the fixed point label propagation reaches on an
 *  undirected graph). */
std::vector<std::uint32_t> componentLabels(const CsrGraph &g);

/**
 * Forward-oriented, deduplicated adjacency of the simple graph
 * underlying @p g: for each vertex, the sorted unique neighbours with
 * a *smaller* id. On the degree-relabeled workload graphs (id 0 =
 * highest degree) this orients every edge toward its higher-degree
 * endpoint, which bounds out-degrees near sqrt(E) and keeps hub-
 * rooted pair enumeration tractable. Canonical edge indexing shared
 * by the TC and KTRUSS workloads and their references (edge e is
 * (src(e), col[e]) with row[v] <= e < row[v+1] => src(e) = v).
 */
struct ForwardAdjacency {
    std::vector<std::uint64_t> row; //!< size V+1
    std::vector<VertexId> col;      //!< sorted, unique within a row
};
ForwardAdjacency buildForwardAdjacency(const CsrGraph &g);

/** Per-vertex triangle counts over the simple graph: triangle
 *  w < v < u is counted once, at its largest vertex u. The graph's
 *  total triangle count is the sum. */
std::vector<std::uint64_t> triangleCounts(const CsrGraph &g);

/** Alive mask of the k-truss over buildForwardAdjacency(g)'s edge
 *  indexing: edges surviving iterated removal of edges in fewer than
 *  k - 2 triangles. */
std::vector<std::uint8_t> ktrussAliveEdges(const CsrGraph &g,
                                           std::uint32_t k);

} // namespace bauvm::reference

#endif // BAUVM_GRAPH_REFERENCE_ALGORITHMS_H_
