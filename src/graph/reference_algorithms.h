/**
 * @file
 * Reference CPU implementations of every graph algorithm the GPU
 * workloads run. The test suite validates each simulated kernel's
 * functional output against these.
 */

#ifndef BAUVM_GRAPH_REFERENCE_ALGORITHMS_H_
#define BAUVM_GRAPH_REFERENCE_ALGORITHMS_H_

#include <cstdint>
#include <vector>

#include "src/graph/csr_graph.h"

namespace bauvm::reference
{

/** Unreachable marker used by BFS/SSSP results. */
constexpr std::uint32_t kInfinity = 0xffffffffu;

/** BFS levels from @p source (kInfinity where unreachable). */
std::vector<std::uint32_t> bfsLevels(const CsrGraph &g, VertexId source);

/** Single-source shortest path distances (weighted, non-negative). */
std::vector<std::uint32_t> ssspDistances(const CsrGraph &g,
                                         VertexId source);

/** PageRank scores after @p iterations of synchronous power iteration
 *  with damping @p d (uniform 1/V start, no dangling redistribution —
 *  matching the GPU kernel's pull scheme on undirected graphs). */
std::vector<double> pageRank(const CsrGraph &g, std::uint32_t iterations,
                             double d = 0.85);

/** K-core number (coreness) of every vertex via peeling. */
std::vector<std::uint32_t> kcore(const CsrGraph &g);

/** Betweenness centrality contribution of one @p source (Brandes). */
std::vector<double> bcFromSource(const CsrGraph &g, VertexId source);

/** True if @p colors is a proper coloring of @p g. */
bool isProperColoring(const CsrGraph &g,
                      const std::vector<std::uint32_t> &colors);

} // namespace bauvm::reference

#endif // BAUVM_GRAPH_REFERENCE_ALGORITHMS_H_
