/**
 * @file
 * Compressed-sparse-row graph container used by every workload.
 */

#ifndef BAUVM_GRAPH_CSR_GRAPH_H_
#define BAUVM_GRAPH_CSR_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

namespace bauvm
{

/** Vertex identifier. */
using VertexId = std::uint32_t;

/**
 * Directed graph in CSR form (out-edges). Weights are optional and
 * parallel to the column-index array.
 */
class CsrGraph
{
  public:
    CsrGraph() = default;

    /**
     * Builds a CSR graph from an edge list.
     *
     * @param num_vertices  vertex count; all endpoints must be smaller.
     * @param edges         (src, dst) pairs; duplicates are kept.
     * @param weights       per-edge weights; empty for unweighted.
     */
    static CsrGraph fromEdges(
        VertexId num_vertices,
        const std::vector<std::pair<VertexId, VertexId>> &edges,
        const std::vector<std::uint32_t> &weights = {});

    /**
     * Adopts pre-built CSR arrays (validated, then moved in). Used by
     * the external-memory builder, which assembles the arrays without
     * ever holding an edge list.
     */
    static CsrGraph fromCsrArrays(std::vector<std::uint64_t> row_offsets,
                                  std::vector<VertexId> col_indices,
                                  std::vector<std::uint32_t> weights = {});

    VertexId numVertices() const
    {
        return static_cast<VertexId>(row_offsets_.size()) - 1;
    }
    std::uint64_t numEdges() const { return col_indices_.size(); }
    bool weighted() const { return !weights_.empty(); }

    std::uint64_t degree(VertexId v) const
    {
        return row_offsets_[v + 1] - row_offsets_[v];
    }

    std::span<const VertexId> neighbors(VertexId v) const
    {
        return {col_indices_.data() + row_offsets_[v],
                col_indices_.data() + row_offsets_[v + 1]};
    }

    std::span<const std::uint32_t> edgeWeights(VertexId v) const
    {
        return {weights_.data() + row_offsets_[v],
                weights_.data() + row_offsets_[v + 1]};
    }

    const std::vector<std::uint64_t> &rowOffsets() const
    {
        return row_offsets_;
    }
    const std::vector<VertexId> &colIndices() const
    {
        return col_indices_;
    }
    const std::vector<std::uint32_t> &weights() const { return weights_; }

    /** Structural sanity check; calls panic() on inconsistency. */
    void validate() const;

  private:
    std::vector<std::uint64_t> row_offsets_; //!< size V+1
    std::vector<VertexId> col_indices_;      //!< size E
    std::vector<std::uint32_t> weights_;     //!< size E or 0
};

} // namespace bauvm

#endif // BAUVM_GRAPH_CSR_GRAPH_H_
