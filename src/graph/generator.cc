#include "src/graph/generator.h"

#include <algorithm>
#include <numeric>
#include <span>
#include <utility>
#include <vector>

#include "src/graph/stream/rmat_stream.h"
#include "src/sim/log.h"

namespace bauvm
{

namespace
{

void
appendEdge(std::vector<std::pair<VertexId, VertexId>> &edges,
           std::vector<std::uint32_t> &weights, bool weighted,
           bool undirected, VertexId src, VertexId dst, Rng &rng)
{
    if (src == dst)
        return; // drop self loops
    edges.emplace_back(src, dst);
    std::uint32_t w = 0;
    if (weighted) {
        w = static_cast<std::uint32_t>(rng.nextRange(1, 64));
        weights.push_back(w);
    }
    if (undirected) {
        edges.emplace_back(dst, src);
        if (weighted)
            weights.push_back(w);
    }
}

} // namespace

CsrGraph
generateRmat(const RmatParams &params)
{
    // The in-core generator is the concatenation of the seed-
    // addressable edge stream's blocks, so streamed and in-core
    // consumers see the identical edge sequence by construction.
    const StreamedRmatGenerator gen(params);
    std::vector<std::pair<VertexId, VertexId>> edges;
    std::vector<std::uint32_t> weights;
    edges.reserve(params.num_edges * (params.undirected ? 2 : 1));
    RmatStreamBlock block;
    for (std::uint64_t b = 0; b < gen.numBlocks(); ++b) {
        gen.block(b, &block);
        edges.insert(edges.end(), block.edges.begin(),
                     block.edges.end());
        weights.insert(weights.end(), block.weights.begin(),
                       block.weights.end());
    }
    return CsrGraph::fromEdges(gen.numVertices(), edges, weights);
}

CsrGraph
relabelByDegree(const CsrGraph &raw)
{
    const bool weighted = raw.weighted();
    const VertexId n = raw.numVertices();
    std::vector<VertexId> by_degree(n);
    std::iota(by_degree.begin(), by_degree.end(), 0);
    std::stable_sort(by_degree.begin(), by_degree.end(),
                     [&raw](VertexId a, VertexId b) {
                         return raw.degree(a) > raw.degree(b);
                     });
    std::vector<VertexId> new_id(n);
    for (VertexId i = 0; i < n; ++i)
        new_id[by_degree[i]] = i;
    std::vector<std::pair<VertexId, VertexId>> edges;
    std::vector<std::uint32_t> wts;
    edges.reserve(raw.numEdges());
    for (VertexId v = 0; v < n; ++v) {
        const auto nbrs = raw.neighbors(v);
        const auto ew = weighted ? raw.edgeWeights(v)
                                 : std::span<const std::uint32_t>{};
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
            edges.emplace_back(new_id[v], new_id[nbrs[i]]);
            if (weighted)
                wts.push_back(ew[i]);
        }
    }
    CsrGraph graph = CsrGraph::fromEdges(n, edges, wts);
    graph.validate();
    return graph;
}

CsrGraph
generateUniform(VertexId num_vertices, std::uint64_t num_edges,
                bool undirected, bool weighted, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::pair<VertexId, VertexId>> edges;
    std::vector<std::uint32_t> weights;
    edges.reserve(num_edges * (undirected ? 2 : 1));
    for (std::uint64_t e = 0; e < num_edges; ++e) {
        const auto src =
            static_cast<VertexId>(rng.nextBelow(num_vertices));
        const auto dst =
            static_cast<VertexId>(rng.nextBelow(num_vertices));
        appendEdge(edges, weights, weighted, undirected, src, dst, rng);
    }
    return CsrGraph::fromEdges(num_vertices, edges, weights);
}

CsrGraph
generateGrid(VertexId side, bool weighted, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::pair<VertexId, VertexId>> edges;
    std::vector<std::uint32_t> weights;
    const VertexId n = side * side;
    for (VertexId y = 0; y < side; ++y) {
        for (VertexId x = 0; x < side; ++x) {
            const VertexId v = y * side + x;
            if (x + 1 < side)
                appendEdge(edges, weights, weighted, true, v, v + 1, rng);
            if (y + 1 < side)
                appendEdge(edges, weights, weighted, true, v, v + side,
                           rng);
        }
    }
    return CsrGraph::fromEdges(n, edges, weights);
}

} // namespace bauvm
