#include "src/graph/generator.h"

#include <utility>
#include <vector>

#include "src/sim/log.h"

namespace bauvm
{

namespace
{

VertexId
roundUpPow2(VertexId v)
{
    VertexId p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

void
appendEdge(std::vector<std::pair<VertexId, VertexId>> &edges,
           std::vector<std::uint32_t> &weights, bool weighted,
           bool undirected, VertexId src, VertexId dst, Rng &rng)
{
    if (src == dst)
        return; // drop self loops
    edges.emplace_back(src, dst);
    std::uint32_t w = 0;
    if (weighted) {
        w = static_cast<std::uint32_t>(rng.nextRange(1, 64));
        weights.push_back(w);
    }
    if (undirected) {
        edges.emplace_back(dst, src);
        if (weighted)
            weights.push_back(w);
    }
}

} // namespace

CsrGraph
generateRmat(const RmatParams &params)
{
    const double d = 1.0 - params.a - params.b - params.c;
    if (d < 0.0)
        fatal("generateRmat: probabilities exceed 1");

    const VertexId n = roundUpPow2(params.num_vertices);
    Rng rng(params.seed);
    std::vector<std::pair<VertexId, VertexId>> edges;
    std::vector<std::uint32_t> weights;
    edges.reserve(params.num_edges * (params.undirected ? 2 : 1));

    for (std::uint64_t e = 0; e < params.num_edges; ++e) {
        VertexId src = 0, dst = 0;
        for (VertexId bit = n >> 1; bit > 0; bit >>= 1) {
            const double r = rng.nextDouble();
            if (r < params.a) {
                // top-left quadrant: no bits set
            } else if (r < params.a + params.b) {
                dst |= bit;
            } else if (r < params.a + params.b + params.c) {
                src |= bit;
            } else {
                src |= bit;
                dst |= bit;
            }
        }
        appendEdge(edges, weights, params.weighted, params.undirected,
                   src, dst, rng);
    }
    return CsrGraph::fromEdges(n, edges, weights);
}

CsrGraph
generateUniform(VertexId num_vertices, std::uint64_t num_edges,
                bool undirected, bool weighted, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::pair<VertexId, VertexId>> edges;
    std::vector<std::uint32_t> weights;
    edges.reserve(num_edges * (undirected ? 2 : 1));
    for (std::uint64_t e = 0; e < num_edges; ++e) {
        const auto src =
            static_cast<VertexId>(rng.nextBelow(num_vertices));
        const auto dst =
            static_cast<VertexId>(rng.nextBelow(num_vertices));
        appendEdge(edges, weights, weighted, undirected, src, dst, rng);
    }
    return CsrGraph::fromEdges(num_vertices, edges, weights);
}

CsrGraph
generateGrid(VertexId side, bool weighted, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::pair<VertexId, VertexId>> edges;
    std::vector<std::uint32_t> weights;
    const VertexId n = side * side;
    for (VertexId y = 0; y < side; ++y) {
        for (VertexId x = 0; x < side; ++x) {
            const VertexId v = y * side + x;
            if (x + 1 < side)
                appendEdge(edges, weights, weighted, true, v, v + 1, rng);
            if (y + 1 < side)
                appendEdge(edges, weights, weighted, true, v, v + side,
                           rng);
        }
    }
    return CsrGraph::fromEdges(n, edges, weights);
}

} // namespace bauvm
