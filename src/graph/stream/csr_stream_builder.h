/**
 * @file
 * External-memory CSR construction over the streamed R-MAT edge
 * stream.
 *
 * buildCsrStreamed() produces the same CsrGraph an in-core build
 * (generateRmat + optional relabelByDegree) produces — bit-identical,
 * differential-tested — while never materializing the edge list. Peak
 * host RAM is bounded by the final CSR arrays plus a configurable
 * partition scratch budget:
 *
 *  - pass 1 streams every block counting (relabeled) out-degrees,
 *    yielding the row-offset array;
 *  - the vertex range is then cut into contiguous partitions whose
 *    column data fits the scratch budget, and one counting-sort pass
 *    per partition streams every block again, scattering that
 *    partition's column indices (and weights) into scratch and
 *    spilling the finished rows to a temp file;
 *  - the spill files, which hold the final arrays in order, are read
 *    back sequentially once all scratch is released.
 *
 * This is what lets WorkloadScale::Huge reach the paper's 349 MB+
 * working sets (and beyond GPU memory at any --ratio) without host
 * RAM ever holding an edge list several times that size.
 */

#ifndef BAUVM_GRAPH_STREAM_CSR_STREAM_BUILDER_H_
#define BAUVM_GRAPH_STREAM_CSR_STREAM_BUILDER_H_

#include <cstdint>

#include "src/graph/csr_graph.h"
#include "src/graph/stream/rmat_stream.h"

namespace bauvm
{

/** Tuning knobs for one streamed build. */
struct StreamCsrOptions {
    /** Stream granularity (raw draws per regenerated block). */
    std::uint32_t edges_per_block = kDefaultEdgesPerBlock;
    /** Per-partition scratch ceiling (column + weight + cursor
     *  bytes); smaller budgets mean more streaming passes. */
    std::uint64_t scratch_bytes = 64ull << 20;
    /** Apply the same descending-degree relabeling the in-core
     *  workload build applies (relabelByDegree). */
    bool relabel_by_degree = true;
};

/** Builds the CSR graph of @p params out of core; see file doc. */
CsrGraph buildCsrStreamed(const RmatParams &params,
                          const StreamCsrOptions &opt = {});

/**
 * Process-wide streamed-build policy consulted by
 * GraphWorkloadBase::buildGraph(): presets whose (edge_factor-scaled)
 * edge count reaches stream_threshold_edges build through
 * buildCsrStreamed() instead of in core. Mutable so tests and benches
 * can force the streamed path at small scales; the values are folded
 * into cellKey() so a change re-keys the sweep-service result cache.
 */
struct GraphStreamConfig {
    /** Raw R-MAT edge count at or above which builds stream.
     *  Default: only WorkloadScale::Huge qualifies. */
    std::uint64_t stream_threshold_edges = 16ull << 20;
    std::uint32_t edges_per_block = kDefaultEdgesPerBlock;
    std::uint64_t scratch_bytes = 64ull << 20;
};

/** The mutable process-wide instance (not thread-safe to mutate while
 *  a sweep runs; set it before fanning out). */
GraphStreamConfig &graphStreamConfig();

} // namespace bauvm

#endif // BAUVM_GRAPH_STREAM_CSR_STREAM_BUILDER_H_
