#include "src/graph/stream/rmat_stream.h"

#include <algorithm>

#include "src/sim/log.h"

namespace bauvm
{

namespace
{

VertexId
roundUpPow2(VertexId v)
{
    VertexId p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

/**
 * Draws one raw R-MAT edge, consuming exactly the RNG sequence the
 * original sequential generator consumed: log2(n) quadrant draws, then
 * one weight draw iff the graph is weighted and the edge is not a
 * dropped self loop. @return false when the edge is a self loop.
 */
bool
drawEdge(Rng &rng, VertexId n, const RmatParams &p, VertexId *src,
         VertexId *dst, std::uint32_t *weight)
{
    VertexId s = 0, d = 0;
    for (VertexId bit = n >> 1; bit > 0; bit >>= 1) {
        const double r = rng.nextDouble();
        if (r < p.a) {
            // top-left quadrant: no bits set
        } else if (r < p.a + p.b) {
            d |= bit;
        } else if (r < p.a + p.b + p.c) {
            s |= bit;
        } else {
            s |= bit;
            d |= bit;
        }
    }
    if (s == d)
        return false;
    *src = s;
    *dst = d;
    if (p.weighted)
        *weight = static_cast<std::uint32_t>(rng.nextRange(1, 64));
    return true;
}

} // namespace

void
validateRmatParams(const RmatParams &params)
{
    if (params.a < 0.0 || params.b < 0.0 || params.c < 0.0) {
        fatal("RmatParams: negative partition probability "
              "(a=%g b=%g c=%g)",
              params.a, params.b, params.c);
    }
    if (params.a + params.b + params.c >= 1.0) {
        fatal("RmatParams: partition probabilities must satisfy "
              "a + b + c < 1 (got %g)",
              params.a + params.b + params.c);
    }
    if (params.num_edges == 0)
        fatal("RmatParams: num_edges must be non-zero");
    if (params.num_vertices < 2)
        fatal("RmatParams: need at least two vertices");
}

StreamedRmatGenerator::StreamedRmatGenerator(
    const RmatParams &params, std::uint32_t edges_per_block)
    : params_(params), edges_per_block_(edges_per_block)
{
    validateRmatParams(params_);
    if (edges_per_block_ == 0)
        fatal("StreamedRmatGenerator: edges_per_block must be > 0");
    num_vertices_ = roundUpPow2(params_.num_vertices);

    // Capture pass: replay the full draw sequence once, recording the
    // generator state at each block boundary. No edges are stored.
    const std::uint64_t blocks =
        (params_.num_edges + edges_per_block_ - 1) / edges_per_block_;
    block_start_.reserve(blocks);
    Rng rng(params_.seed);
    VertexId src, dst;
    std::uint32_t weight;
    for (std::uint64_t e = 0; e < params_.num_edges; ++e) {
        if (e % edges_per_block_ == 0)
            block_start_.push_back(rng);
        drawEdge(rng, num_vertices_, params_, &src, &dst, &weight);
    }
}

std::uint64_t
StreamedRmatGenerator::rawEdgesInBlock(std::uint64_t b) const
{
    if (b >= block_start_.size())
        panic("StreamedRmatGenerator: block %llu out of range",
              static_cast<unsigned long long>(b));
    const std::uint64_t begin = b * edges_per_block_;
    const std::uint64_t end =
        std::min<std::uint64_t>(begin + edges_per_block_,
                                params_.num_edges);
    return end - begin;
}

void
StreamedRmatGenerator::block(std::uint64_t b, RmatStreamBlock *out) const
{
    out->clear();
    const std::uint64_t raw = rawEdgesInBlock(b);
    out->edges.reserve(raw * (params_.undirected ? 2 : 1));
    if (params_.weighted)
        out->weights.reserve(raw * (params_.undirected ? 2 : 1));

    Rng rng = block_start_[b]; // value copy: replay from the boundary
    VertexId src, dst;
    std::uint32_t weight = 0;
    for (std::uint64_t e = 0; e < raw; ++e) {
        if (!drawEdge(rng, num_vertices_, params_, &src, &dst, &weight))
            continue; // self loop: dropped, no weight drawn
        out->edges.emplace_back(src, dst);
        if (params_.weighted)
            out->weights.push_back(weight);
        if (params_.undirected) {
            out->edges.emplace_back(dst, src);
            if (params_.weighted)
                out->weights.push_back(weight);
        }
    }
}

} // namespace bauvm
