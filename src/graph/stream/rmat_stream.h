/**
 * @file
 * Seed-addressable out-of-core R-MAT edge stream.
 *
 * StreamedRmatGenerator slices the canonical R-MAT edge sequence of an
 * RmatParams into fixed-size blocks that can be regenerated on demand,
 * in any order, without ever materializing the full edge list. Each
 * block's generator state is a pure function of (seed, block layout):
 * construction replays the RNG draw sequence once — O(num_edges) time,
 * O(num_blocks) memory, no edge storage — capturing the generator
 * state at every block boundary, and block(b) then replays just that
 * block from its captured state.
 *
 * The stream is definitionally bit-identical to generateRmat(): the
 * in-core generator is itself implemented as the concatenation of all
 * blocks, so a streamed consumer (src/graph/stream/csr_stream_builder)
 * sees exactly the edge sequence, self-loop drops, reverse-edge
 * doubling and weight draws an in-core build sees.
 */

#ifndef BAUVM_GRAPH_STREAM_RMAT_STREAM_H_
#define BAUVM_GRAPH_STREAM_RMAT_STREAM_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/graph/generator.h"
#include "src/sim/rng.h"

namespace bauvm
{

/** Stream granularity: raw R-MAT draws per block (before self-loop
 *  drops and undirected doubling). Block boundaries do not affect the
 *  generated graph — only regeneration granularity. */
constexpr std::uint32_t kDefaultEdgesPerBlock = 1u << 16;

/** One regenerated block of the edge stream: the surviving directed
 *  edges (reverse edges included for undirected graphs) and, for
 *  weighted graphs, the parallel weight array. */
struct RmatStreamBlock {
    std::vector<std::pair<VertexId, VertexId>> edges;
    std::vector<std::uint32_t> weights;

    void
    clear()
    {
        edges.clear();
        weights.clear();
    }
};

/** Fatal()s unless @p params describes a generatable graph: partition
 *  probabilities must be non-negative with a + b + c < 1, and
 *  num_edges must be non-zero. */
void validateRmatParams(const RmatParams &params);

/** See file doc. */
class StreamedRmatGenerator
{
  public:
    explicit StreamedRmatGenerator(
        const RmatParams &params,
        std::uint32_t edges_per_block = kDefaultEdgesPerBlock);

    const RmatParams &params() const { return params_; }
    /** Vertex count after the generator's power-of-two round-up. */
    VertexId numVertices() const { return num_vertices_; }
    std::uint32_t edgesPerBlock() const { return edges_per_block_; }
    std::uint64_t numBlocks() const { return block_start_.size(); }

    /** Raw draw count of block @p b (== edgesPerBlock() except for the
     *  tail block). The surviving directed edge count may be smaller
     *  (self loops) or up to 2x (undirected doubling). */
    std::uint64_t rawEdgesInBlock(std::uint64_t b) const;

    /**
     * Regenerates block @p b into @p out (cleared first). Deterministic
     * and order-independent: any call sequence yields the same block
     * contents.
     */
    void block(std::uint64_t b, RmatStreamBlock *out) const;

  private:
    RmatParams params_;
    std::uint32_t edges_per_block_;
    VertexId num_vertices_;
    std::vector<Rng> block_start_; //!< RNG state per block boundary
};

} // namespace bauvm

#endif // BAUVM_GRAPH_STREAM_RMAT_STREAM_H_
