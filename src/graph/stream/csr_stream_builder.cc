#include "src/graph/stream/csr_stream_builder.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <utility>
#include <vector>

#include "src/sim/log.h"

namespace bauvm
{

namespace
{

/** RAII std::tmpfile wrapper: anonymous, auto-deleted spill storage
 *  for one CSR array. */
class SpillFile
{
  public:
    SpillFile() : file_(std::tmpfile())
    {
        if (file_ == nullptr)
            fatal("buildCsrStreamed: cannot create spill temp file");
    }
    ~SpillFile() { std::fclose(file_); }
    SpillFile(const SpillFile &) = delete;
    SpillFile &operator=(const SpillFile &) = delete;

    template <typename T>
    void
    append(const std::vector<T> &data)
    {
        if (data.empty())
            return;
        if (std::fwrite(data.data(), sizeof(T), data.size(), file_) !=
            data.size()) {
            fatal("buildCsrStreamed: spill write failed");
        }
    }

    /** Reads the whole file back; @p count must match what was
     *  appended. */
    template <typename T>
    void
    readAll(std::vector<T> *out, std::uint64_t count)
    {
        out->resize(count);
        std::rewind(file_);
        if (count != 0 &&
            std::fread(out->data(), sizeof(T), count, file_) != count) {
            fatal("buildCsrStreamed: spill read failed");
        }
    }

  private:
    std::FILE *file_;
};

} // namespace

GraphStreamConfig &
graphStreamConfig()
{
    static GraphStreamConfig config;
    return config;
}

CsrGraph
buildCsrStreamed(const RmatParams &params, const StreamCsrOptions &opt)
{
    const StreamedRmatGenerator gen(params, opt.edges_per_block);
    const VertexId n = gen.numVertices();
    const bool weighted = params.weighted;

    // Pass 1: stream every block counting out-degrees. The stream has
    // already dropped self loops and doubled undirected edges, so
    // these are exactly the final CSR degrees.
    std::vector<std::uint64_t> degree(n, 0);
    RmatStreamBlock block;
    for (std::uint64_t b = 0; b < gen.numBlocks(); ++b) {
        gen.block(b, &block);
        for (const auto &[src, dst] : block.edges) {
            (void)dst;
            ++degree[src];
        }
    }

    // Old-id -> new-id mapping. Matches the in-core path bit for bit:
    // stable sort by descending degree, ties broken by old id.
    std::vector<VertexId> new_id(n);
    if (opt.relabel_by_degree) {
        std::vector<VertexId> by_degree(n);
        std::iota(by_degree.begin(), by_degree.end(), 0);
        std::stable_sort(by_degree.begin(), by_degree.end(),
                         [&degree](VertexId a, VertexId b) {
                             return degree[a] > degree[b];
                         });
        for (VertexId i = 0; i < n; ++i)
            new_id[by_degree[i]] = i;
    } else {
        std::iota(new_id.begin(), new_id.end(), 0);
    }

    // Row offsets in new-id space. The relabeling is a bijection, so
    // new row new_id[v] holds exactly old vertex v's edges.
    std::vector<std::uint64_t> row(static_cast<std::size_t>(n) + 1, 0);
    for (VertexId v = 0; v < n; ++v)
        row[new_id[v] + 1] = degree[v];
    std::partial_sum(row.begin(), row.end(), row.begin());
    const std::uint64_t num_edges = row[n];

    degree = {}; // released before the scatter passes

    // Pass 2: counting-sort passes over contiguous new-id partitions,
    // each sized to the scratch budget, spilling finished rows. Within
    // a row the scatter sees edges in stream (= generation) order —
    // the same order CsrGraph::fromEdges's stable counting sort keeps
    // in core, which is what makes the builds bit-identical.
    SpillFile col_spill;
    SpillFile weight_spill;
    std::vector<VertexId> cols;
    std::vector<std::uint32_t> wts;
    std::vector<std::uint64_t> cursor;
    const std::uint64_t bytes_per_edge = weighted ? 8 : 4;

    VertexId r_lo = 0;
    while (r_lo < n) {
        VertexId r_hi = r_lo + 1; // a partition holds >= 1 row
        while (r_hi < n &&
               (row[r_hi + 1] - row[r_lo]) * bytes_per_edge +
                       (static_cast<std::uint64_t>(r_hi) + 1 - r_lo) * 8 <=
                   opt.scratch_bytes) {
            ++r_hi;
        }
        const std::uint64_t base = row[r_lo];
        const std::uint64_t part_edges = row[r_hi] - base;

        cols.assign(part_edges, 0);
        if (weighted)
            wts.assign(part_edges, 0);
        cursor.resize(r_hi - r_lo);
        for (VertexId r = r_lo; r < r_hi; ++r)
            cursor[r - r_lo] = row[r] - base;

        for (std::uint64_t b = 0; b < gen.numBlocks(); ++b) {
            gen.block(b, &block);
            for (std::size_t i = 0; i < block.edges.size(); ++i) {
                const VertexId ns = new_id[block.edges[i].first];
                if (ns < r_lo || ns >= r_hi)
                    continue;
                const std::uint64_t pos = cursor[ns - r_lo]++;
                cols[pos] = new_id[block.edges[i].second];
                if (weighted)
                    wts[pos] = block.weights[i];
            }
        }

        col_spill.append(cols);
        if (weighted)
            weight_spill.append(wts);
        r_lo = r_hi;
    }

    // Release everything but the row offsets before the read-back so
    // peak RSS is max(scratch pass, final arrays) — not their sum.
    new_id = {};
    cols = {};
    wts = {};
    cursor = {};
    block.clear();
    block.edges.shrink_to_fit();
    block.weights.shrink_to_fit();

    std::vector<VertexId> col_indices;
    col_spill.readAll(&col_indices, num_edges);
    std::vector<std::uint32_t> weights;
    if (weighted)
        weight_spill.readAll(&weights, num_edges);

    return CsrGraph::fromCsrArrays(std::move(row), std::move(col_indices),
                                   std::move(weights));
}

} // namespace bauvm
