/**
 * @file
 * Synthetic graph generators.
 *
 * R-MAT (Chakrabarti et al.) stands in for the real-world social/web
 * graphs the paper uses from GraphBIG: it produces the skewed degree
 * distribution and poor locality that make these workloads irregular.
 * Uniform and 2D-grid generators provide contrast for tests and for the
 * regular-workload suite.
 */

#ifndef BAUVM_GRAPH_GENERATOR_H_
#define BAUVM_GRAPH_GENERATOR_H_

#include <cstdint>

#include "src/graph/csr_graph.h"
#include "src/sim/rng.h"

namespace bauvm
{

/** Parameters for R-MAT generation. */
struct RmatParams {
    VertexId num_vertices = 1 << 14; //!< rounded up to a power of two
    std::uint64_t num_edges = 1 << 17;
    double a = 0.57, b = 0.19, c = 0.19; //!< d = 1 - a - b - c
    bool undirected = true;  //!< also insert the reverse edge
    bool weighted = false;   //!< uniform weights in [1, 64]
    std::uint64_t seed = 1;
};

/** Generates an R-MAT graph. */
CsrGraph generateRmat(const RmatParams &params);

/**
 * Relabels vertices by descending degree (stable; ties keep old-id
 * order). Real GraphBIG inputs (crawled social/web graphs) have strong
 * id locality — hot hub data clusters on few pages — whereas raw R-MAT
 * ids scatter maximally; the relabeling restores that property. Used
 * by every graph workload build and matched bit for bit by the
 * external-memory builder (src/graph/stream/csr_stream_builder).
 */
CsrGraph relabelByDegree(const CsrGraph &raw);

/** Generates a uniform random graph with the same knobs. */
CsrGraph generateUniform(VertexId num_vertices, std::uint64_t num_edges,
                         bool undirected, bool weighted,
                         std::uint64_t seed);

/** Generates a 4-neighbour 2D grid graph of @p side x @p side. */
CsrGraph generateGrid(VertexId side, bool weighted, std::uint64_t seed);

} // namespace bauvm

#endif // BAUVM_GRAPH_GENERATOR_H_
