#include "src/graph/reference_algorithms.h"

#include <algorithm>
#include <deque>
#include <queue>

namespace bauvm::reference
{

std::vector<std::uint32_t>
bfsLevels(const CsrGraph &g, VertexId source)
{
    std::vector<std::uint32_t> level(g.numVertices(), kInfinity);
    std::deque<VertexId> frontier{source};
    level[source] = 0;
    while (!frontier.empty()) {
        const VertexId v = frontier.front();
        frontier.pop_front();
        for (VertexId n : g.neighbors(v)) {
            if (level[n] == kInfinity) {
                level[n] = level[v] + 1;
                frontier.push_back(n);
            }
        }
    }
    return level;
}

std::vector<std::uint32_t>
ssspDistances(const CsrGraph &g, VertexId source)
{
    std::vector<std::uint32_t> dist(g.numVertices(), kInfinity);
    using Entry = std::pair<std::uint32_t, VertexId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
    dist[source] = 0;
    pq.emplace(0, source);
    while (!pq.empty()) {
        const auto [d, v] = pq.top();
        pq.pop();
        if (d != dist[v])
            continue;
        const auto nbrs = g.neighbors(v);
        const auto wts = g.edgeWeights(v);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
            const std::uint32_t nd = d + wts[i];
            if (nd < dist[nbrs[i]]) {
                dist[nbrs[i]] = nd;
                pq.emplace(nd, nbrs[i]);
            }
        }
    }
    return dist;
}

std::vector<double>
pageRank(const CsrGraph &g, std::uint32_t iterations, double d)
{
    const VertexId n = g.numVertices();
    std::vector<double> rank(n, 1.0 / n);
    std::vector<double> next(n);
    // Matches the GPU kernel's scheme: pull over the (undirected)
    // adjacency with no dangling-mass redistribution — isolated
    // vertices simply keep the teleport term.
    for (std::uint32_t it = 0; it < iterations; ++it) {
        std::fill(next.begin(), next.end(), (1.0 - d) / n);
        for (VertexId v = 0; v < n; ++v) {
            const auto deg = g.degree(v);
            if (deg == 0)
                continue;
            const double share = d * rank[v] / static_cast<double>(deg);
            for (VertexId nb : g.neighbors(v))
                next[nb] += share;
        }
        rank.swap(next);
    }
    return rank;
}

std::vector<std::uint32_t>
kcore(const CsrGraph &g)
{
    const VertexId n = g.numVertices();
    std::vector<std::uint32_t> deg(n);
    std::uint32_t max_deg = 0;
    for (VertexId v = 0; v < n; ++v) {
        deg[v] = static_cast<std::uint32_t>(g.degree(v));
        max_deg = std::max(max_deg, deg[v]);
    }
    // Bucket peeling (Matula-Beck smallest-last ordering).
    std::vector<std::vector<VertexId>> buckets(max_deg + 1);
    for (VertexId v = 0; v < n; ++v)
        buckets[deg[v]].push_back(v);
    std::vector<std::uint32_t> core(n, 0);
    std::vector<bool> removed(n, false);
    std::uint32_t current = 0;
    for (std::uint32_t k = 0; k <= max_deg; ++k) {
        auto &bucket = buckets[k];
        while (!bucket.empty()) {
            const VertexId v = bucket.back();
            bucket.pop_back();
            if (removed[v] || deg[v] != k)
                continue; // stale entry
            removed[v] = true;
            current = std::max(current, k);
            core[v] = current;
            for (VertexId nb : g.neighbors(v)) {
                if (!removed[nb] && deg[nb] > k) {
                    --deg[nb];
                    buckets[deg[nb]].push_back(nb);
                }
            }
        }
    }
    return core;
}

std::vector<double>
bcFromSource(const CsrGraph &g, VertexId source)
{
    const VertexId n = g.numVertices();
    std::vector<double> sigma(n, 0.0), delta(n, 0.0);
    std::vector<std::uint32_t> dist(n, kInfinity);
    std::vector<VertexId> order;
    order.reserve(n);

    std::deque<VertexId> frontier{source};
    sigma[source] = 1.0;
    dist[source] = 0;
    while (!frontier.empty()) {
        const VertexId v = frontier.front();
        frontier.pop_front();
        order.push_back(v);
        for (VertexId nb : g.neighbors(v)) {
            if (dist[nb] == kInfinity) {
                dist[nb] = dist[v] + 1;
                frontier.push_back(nb);
            }
            if (dist[nb] == dist[v] + 1)
                sigma[nb] += sigma[v];
        }
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const VertexId v = *it;
        for (VertexId nb : g.neighbors(v)) {
            if (dist[nb] == dist[v] + 1 && sigma[nb] > 0.0)
                delta[v] += sigma[v] / sigma[nb] * (1.0 + delta[nb]);
        }
    }
    delta[source] = 0.0;
    return delta;
}

std::vector<std::uint32_t>
componentLabels(const CsrGraph &g)
{
    const VertexId n = g.numVertices();
    std::vector<std::uint32_t> label(n, kInfinity);
    std::deque<VertexId> queue;
    for (VertexId root = 0; root < n; ++root) {
        if (label[root] != kInfinity)
            continue;
        // Vertices are visited in increasing id order, so the root is
        // the component's smallest id.
        label[root] = root;
        queue.push_back(root);
        while (!queue.empty()) {
            const VertexId v = queue.front();
            queue.pop_front();
            for (VertexId nb : g.neighbors(v)) {
                if (label[nb] == kInfinity) {
                    label[nb] = root;
                    queue.push_back(nb);
                }
            }
        }
    }
    return label;
}

ForwardAdjacency
buildForwardAdjacency(const CsrGraph &g)
{
    const VertexId n = g.numVertices();
    ForwardAdjacency fwd;
    fwd.row.assign(static_cast<std::size_t>(n) + 1, 0);
    std::vector<VertexId> scratch;
    for (VertexId v = 0; v < n; ++v) {
        scratch.clear();
        for (VertexId nb : g.neighbors(v)) {
            if (nb < v)
                scratch.push_back(nb);
        }
        std::sort(scratch.begin(), scratch.end());
        scratch.erase(std::unique(scratch.begin(), scratch.end()),
                      scratch.end());
        fwd.row[v + 1] = fwd.row[v] + scratch.size();
        fwd.col.insert(fwd.col.end(), scratch.begin(), scratch.end());
    }
    return fwd;
}

namespace
{

/** Sorted-range membership test over one forward row. */
bool
hasForwardEdge(const ForwardAdjacency &fwd, VertexId u, VertexId w)
{
    const auto *begin = fwd.col.data() + fwd.row[u];
    const auto *end = fwd.col.data() + fwd.row[u + 1];
    return std::binary_search(begin, end, w);
}

} // namespace

std::vector<std::uint64_t>
triangleCounts(const CsrGraph &g)
{
    const ForwardAdjacency fwd = buildForwardAdjacency(g);
    const VertexId n = g.numVertices();
    std::vector<std::uint64_t> count(n, 0);
    for (VertexId u = 0; u < n; ++u) {
        // col is ascending, so col[i] < col[j]; the pair's own edge
        // lives in the forward row of the larger endpoint col[j].
        for (std::uint64_t i = fwd.row[u]; i < fwd.row[u + 1]; ++i) {
            for (std::uint64_t j = i + 1; j < fwd.row[u + 1]; ++j) {
                if (hasForwardEdge(fwd, fwd.col[j], fwd.col[i]))
                    ++count[u];
            }
        }
    }
    return count;
}

std::vector<std::uint8_t>
ktrussAliveEdges(const CsrGraph &g, std::uint32_t k)
{
    const ForwardAdjacency fwd = buildForwardAdjacency(g);
    const std::uint64_t m = fwd.col.size();
    const VertexId n = g.numVertices();
    std::vector<std::uint8_t> alive(m, 1);
    if (k < 3)
        return alive;

    // Edge lookup (u, w) -> forward edge index, for alive checks.
    auto edgeIndex = [&fwd](VertexId u, VertexId w) -> std::uint64_t {
        const auto *begin = fwd.col.data() + fwd.row[u];
        const auto *end = fwd.col.data() + fwd.row[u + 1];
        const auto *it = std::lower_bound(begin, end, w);
        return fwd.row[u] + static_cast<std::uint64_t>(it - begin);
    };

    bool changed = true;
    std::vector<std::uint64_t> support(m);
    while (changed) {
        changed = false;
        std::fill(support.begin(), support.end(), 0);
        // Count, per alive edge, the triangles formed with two other
        // alive edges.
        for (VertexId u = 0; u < n; ++u) {
            for (std::uint64_t i = fwd.row[u]; i < fwd.row[u + 1]; ++i) {
                if (!alive[i])
                    continue;
                for (std::uint64_t j = i + 1; j < fwd.row[u + 1]; ++j) {
                    if (!alive[j])
                        continue;
                    const VertexId a = fwd.col[i], b = fwd.col[j];
                    if (!hasForwardEdge(fwd, b, a))
                        continue;
                    const std::uint64_t e = edgeIndex(b, a);
                    if (!alive[e])
                        continue;
                    ++support[i];
                    ++support[j];
                    ++support[e];
                }
            }
        }
        for (std::uint64_t e = 0; e < m; ++e) {
            if (alive[e] && support[e] < k - 2) {
                alive[e] = 0;
                changed = true;
            }
        }
    }
    return alive;
}

bool
isProperColoring(const CsrGraph &g,
                 const std::vector<std::uint32_t> &colors)
{
    if (colors.size() != g.numVertices())
        return false;
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        for (VertexId nb : g.neighbors(v)) {
            if (nb != v && colors[v] == colors[nb])
                return false;
        }
    }
    return true;
}

} // namespace bauvm::reference
