#include "src/graph/reference_algorithms.h"

#include <algorithm>
#include <deque>
#include <queue>

namespace bauvm::reference
{

std::vector<std::uint32_t>
bfsLevels(const CsrGraph &g, VertexId source)
{
    std::vector<std::uint32_t> level(g.numVertices(), kInfinity);
    std::deque<VertexId> frontier{source};
    level[source] = 0;
    while (!frontier.empty()) {
        const VertexId v = frontier.front();
        frontier.pop_front();
        for (VertexId n : g.neighbors(v)) {
            if (level[n] == kInfinity) {
                level[n] = level[v] + 1;
                frontier.push_back(n);
            }
        }
    }
    return level;
}

std::vector<std::uint32_t>
ssspDistances(const CsrGraph &g, VertexId source)
{
    std::vector<std::uint32_t> dist(g.numVertices(), kInfinity);
    using Entry = std::pair<std::uint32_t, VertexId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
    dist[source] = 0;
    pq.emplace(0, source);
    while (!pq.empty()) {
        const auto [d, v] = pq.top();
        pq.pop();
        if (d != dist[v])
            continue;
        const auto nbrs = g.neighbors(v);
        const auto wts = g.edgeWeights(v);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
            const std::uint32_t nd = d + wts[i];
            if (nd < dist[nbrs[i]]) {
                dist[nbrs[i]] = nd;
                pq.emplace(nd, nbrs[i]);
            }
        }
    }
    return dist;
}

std::vector<double>
pageRank(const CsrGraph &g, std::uint32_t iterations, double d)
{
    const VertexId n = g.numVertices();
    std::vector<double> rank(n, 1.0 / n);
    std::vector<double> next(n);
    // Matches the GPU kernel's scheme: pull over the (undirected)
    // adjacency with no dangling-mass redistribution — isolated
    // vertices simply keep the teleport term.
    for (std::uint32_t it = 0; it < iterations; ++it) {
        std::fill(next.begin(), next.end(), (1.0 - d) / n);
        for (VertexId v = 0; v < n; ++v) {
            const auto deg = g.degree(v);
            if (deg == 0)
                continue;
            const double share = d * rank[v] / static_cast<double>(deg);
            for (VertexId nb : g.neighbors(v))
                next[nb] += share;
        }
        rank.swap(next);
    }
    return rank;
}

std::vector<std::uint32_t>
kcore(const CsrGraph &g)
{
    const VertexId n = g.numVertices();
    std::vector<std::uint32_t> deg(n);
    std::uint32_t max_deg = 0;
    for (VertexId v = 0; v < n; ++v) {
        deg[v] = static_cast<std::uint32_t>(g.degree(v));
        max_deg = std::max(max_deg, deg[v]);
    }
    // Bucket peeling (Matula-Beck smallest-last ordering).
    std::vector<std::vector<VertexId>> buckets(max_deg + 1);
    for (VertexId v = 0; v < n; ++v)
        buckets[deg[v]].push_back(v);
    std::vector<std::uint32_t> core(n, 0);
    std::vector<bool> removed(n, false);
    std::uint32_t current = 0;
    for (std::uint32_t k = 0; k <= max_deg; ++k) {
        auto &bucket = buckets[k];
        while (!bucket.empty()) {
            const VertexId v = bucket.back();
            bucket.pop_back();
            if (removed[v] || deg[v] != k)
                continue; // stale entry
            removed[v] = true;
            current = std::max(current, k);
            core[v] = current;
            for (VertexId nb : g.neighbors(v)) {
                if (!removed[nb] && deg[nb] > k) {
                    --deg[nb];
                    buckets[deg[nb]].push_back(nb);
                }
            }
        }
    }
    return core;
}

std::vector<double>
bcFromSource(const CsrGraph &g, VertexId source)
{
    const VertexId n = g.numVertices();
    std::vector<double> sigma(n, 0.0), delta(n, 0.0);
    std::vector<std::uint32_t> dist(n, kInfinity);
    std::vector<VertexId> order;
    order.reserve(n);

    std::deque<VertexId> frontier{source};
    sigma[source] = 1.0;
    dist[source] = 0;
    while (!frontier.empty()) {
        const VertexId v = frontier.front();
        frontier.pop_front();
        order.push_back(v);
        for (VertexId nb : g.neighbors(v)) {
            if (dist[nb] == kInfinity) {
                dist[nb] = dist[v] + 1;
                frontier.push_back(nb);
            }
            if (dist[nb] == dist[v] + 1)
                sigma[nb] += sigma[v];
        }
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const VertexId v = *it;
        for (VertexId nb : g.neighbors(v)) {
            if (dist[nb] == dist[v] + 1 && sigma[nb] > 0.0)
                delta[v] += sigma[v] / sigma[nb] * (1.0 + delta[nb]);
        }
    }
    delta[source] = 0.0;
    return delta;
}

bool
isProperColoring(const CsrGraph &g,
                 const std::vector<std::uint32_t> &colors)
{
    if (colors.size() != g.numVertices())
        return false;
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        for (VertexId nb : g.neighbors(v)) {
            if (nb != v && colors[v] == colors[nb])
                return false;
        }
    }
    return true;
}

} // namespace bauvm::reference
