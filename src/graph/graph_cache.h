/**
 * @file
 * GraphBuildCache: memoizes workload graph builds across sweep cells.
 *
 * Per-job seeds are derived from (base_seed, workload) only —
 * deliberately policy- and variant-independent (src/runner/job.h) — so
 * every policy cell of a workload deterministically rebuilds the
 * identical R-MAT + degree-relabel CSR graph. In a (workload x policy)
 * sweep that is pure waste: generation and relabeling dominate cell
 * startup. This cache shares one immutable build per parameter key
 * across all worker threads for the duration of a sweep.
 *
 * The cache is scoped, not always-on: SweepRunner (and tests) hold a
 * GraphBuildCache::Scope while a sweep runs; when the last scope ends
 * the cache is dropped so long-lived processes do not pin graph
 * memory. Outside any scope, getOrBuild() degenerates to calling the
 * builder directly.
 *
 * Sharing is safe because CsrGraph is immutable after construction and
 * every consumer copies it into its own DeviceArrays; determinism is
 * unaffected because the cached build is bit-identical to the rebuild
 * it replaces.
 */

#ifndef BAUVM_GRAPH_GRAPH_CACHE_H_
#define BAUVM_GRAPH_GRAPH_CACHE_H_

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>

#include "src/graph/csr_graph.h"

namespace bauvm
{

/** Process-wide, thread-safe graph build memoizer; see file doc. */
class GraphBuildCache
{
  public:
    /** Everything a build depends on; equal key => identical graph.
     *  The stream parameters are part of the key even though streamed
     *  and in-core builds are bit-identical: keying on the full build
     *  configuration keeps cache transparency trivially auditable. */
    struct Key {
        std::uint64_t vertices = 0;
        std::uint64_t edges = 0;
        std::uint64_t seed = 0;
        bool weighted = false;
        bool streamed = false;
        std::uint64_t edges_per_block = 0; //!< 0 when not streamed

        bool
        operator<(const Key &o) const
        {
            if (vertices != o.vertices)
                return vertices < o.vertices;
            if (edges != o.edges)
                return edges < o.edges;
            if (seed != o.seed)
                return seed < o.seed;
            if (weighted != o.weighted)
                return weighted < o.weighted;
            if (streamed != o.streamed)
                return streamed < o.streamed;
            return edges_per_block < o.edges_per_block;
        }
    };

    /** Enables the cache for its lifetime; nestable (refcounted). */
    class Scope
    {
      public:
        Scope();
        ~Scope();
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;
    };

    static GraphBuildCache &instance();

    /**
     * Returns the cached graph for @p key, building it via @p build on
     * the first request. Concurrent requests for the same key block on
     * the single in-flight build instead of duplicating it; a build
     * that throws is not cached (the next requester retries).
     *
     * Outside any Scope the builder runs unconditionally and nothing
     * is retained.
     */
    std::shared_ptr<const CsrGraph> getOrBuild(
        const Key &key, const std::function<CsrGraph()> &build);

    /** Builds performed (cache misses + uncached calls). */
    std::uint64_t builds() const;
    /** Requests served from the cache (including waits on in-flight). */
    std::uint64_t hits() const;

    /** True while at least one Scope is alive. */
    bool enabled() const;

    /** Drops every cached graph (counters are kept). */
    void clear();

  private:
    GraphBuildCache() = default;

    using Shared = std::shared_ptr<const CsrGraph>;

    mutable std::mutex mutex_;
    std::map<Key, std::shared_future<Shared>> cache_;
    int scope_depth_ = 0;
    std::uint64_t builds_ = 0;
    std::uint64_t hits_ = 0;

    friend class Scope;
    void enterScope();
    void exitScope();
};

} // namespace bauvm

#endif // BAUVM_GRAPH_GRAPH_CACHE_H_
