/**
 * @file
 * Warp-level execution model: kernels are C++20 generator coroutines
 * that yield timing operations.
 *
 * One coroutine instance models one warp. The kernel body performs its
 * *functional* work directly on host-backed arrays (UVM migration never
 * changes values, so eager functional reads are safe) and co_yields a
 * WarpOp describing the *timing* of each step: the lane addresses of a
 * coalesced memory access, a compute delay, or a block barrier. The SM
 * resumes the coroutine when the yielded operation completes.
 */

#ifndef BAUVM_GPU_WARP_PROGRAM_H_
#define BAUVM_GPU_WARP_PROGRAM_H_

#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/gpu/lane_vec.h"
#include "src/sim/types.h"

namespace bauvm
{

/** One timing operation yielded by a warp program. */
struct WarpOp {
    enum class Kind {
        Compute, //!< occupy the warp for `cycles`
        Load,    //!< coalesced read of `addrs`
        Store,   //!< coalesced write of `addrs`
        Atomic,  //!< coalesced read-modify-write of `addrs`
        Sync,    //!< block-wide barrier (__syncthreads)
    };

    Kind kind = Kind::Compute;
    Cycle cycles = 1;  //!< Compute only
    LaneVec addrs;     //!< per-lane addresses (memory kinds)

    static WarpOp compute(Cycle c) { return WarpOp{Kind::Compute, c, {}}; }
    static WarpOp load(LaneVec a)
    {
        return WarpOp{Kind::Load, 0, std::move(a)};
    }
    static WarpOp store(LaneVec a)
    {
        return WarpOp{Kind::Store, 0, std::move(a)};
    }
    static WarpOp atomic(LaneVec a)
    {
        return WarpOp{Kind::Atomic, 0, std::move(a)};
    }
    static WarpOp sync() { return WarpOp{Kind::Sync, 0, {}}; }

    /**
     * Vector-accepting twins for external kernels written against the
     * historical std::vector address lists (cold path: one copy).
     */
    static WarpOp load(const std::vector<VAddr> &a)
    {
        return WarpOp{Kind::Load, 0, fromVector(a)};
    }
    static WarpOp store(const std::vector<VAddr> &a)
    {
        return WarpOp{Kind::Store, 0, fromVector(a)};
    }
    static WarpOp atomic(const std::vector<VAddr> &a)
    {
        return WarpOp{Kind::Atomic, 0, fromVector(a)};
    }

    static LaneVec
    fromVector(const std::vector<VAddr> &a)
    {
        LaneVec v;
        v.reserve(a.size());
        for (const VAddr addr : a)
            v.push_back(addr);
        return v;
    }

    bool isMemory() const
    {
        return kind == Kind::Load || kind == Kind::Store ||
               kind == Kind::Atomic;
    }
};

/**
 * Variadic builders used inside coroutines. (GCC 12 miscompiles
 * initializer-list temporaries in co_yield expressions — "array used as
 * initializer" — so kernels construct the address vectors through
 * push_back instead of brace initialization.)
 */
template <typename... Addrs>
WarpOp
loadOf(Addrs... addrs)
{
    LaneVec v;
    (v.push_back(addrs), ...);
    return WarpOp::load(std::move(v));
}

template <typename... Addrs>
WarpOp
storeOf(Addrs... addrs)
{
    LaneVec v;
    (v.push_back(addrs), ...);
    return WarpOp::store(std::move(v));
}

/**
 * Move-only generator coroutine handle for a warp.
 *
 * Usage: construct from a kernel coroutine, then repeatedly advance();
 * after each true return, current() is the next operation to time.
 */
class WarpProgram
{
  public:
    struct promise_type {
        WarpOp op;

        WarpProgram get_return_object()
        {
            return WarpProgram{
                std::coroutine_handle<promise_type>::from_promise(*this)};
        }
        std::suspend_always initial_suspend() noexcept { return {}; }
        std::suspend_always final_suspend() noexcept { return {}; }
        std::suspend_always yield_value(WarpOp o)
        {
            op = std::move(o);
            return {};
        }
        void return_void() {}
        void unhandled_exception() { std::terminate(); }
    };

    WarpProgram() = default;
    explicit WarpProgram(std::coroutine_handle<promise_type> h) : h_(h) {}
    WarpProgram(WarpProgram &&o) noexcept : h_(std::exchange(o.h_, {})) {}
    WarpProgram &
    operator=(WarpProgram &&o) noexcept
    {
        if (this != &o) {
            destroy();
            h_ = std::exchange(o.h_, {});
        }
        return *this;
    }
    WarpProgram(const WarpProgram &) = delete;
    WarpProgram &operator=(const WarpProgram &) = delete;
    ~WarpProgram() { destroy(); }

    bool valid() const { return static_cast<bool>(h_); }

    /**
     * Runs the kernel to its next yield.
     * @retval true  current() holds a fresh operation.
     * @retval false the warp finished.
     */
    bool
    advance()
    {
        h_.resume();
        return !h_.done();
    }

    /** The most recently yielded operation. */
    const WarpOp &current() const { return h_.promise().op; }

  private:
    void
    destroy()
    {
        if (h_) {
            h_.destroy();
            h_ = {};
        }
    }

    std::coroutine_handle<promise_type> h_;
};

/**
 * Identity of one warp within the launched grid, passed to kernels.
 */
struct WarpCtx {
    std::uint32_t block_id = 0;       //!< block index within the grid
    std::uint32_t warp_in_block = 0;  //!< warp index within the block
    std::uint32_t warp_size = 32;
    std::uint32_t threads_per_block = 0;
    std::uint32_t num_blocks = 0;

    /** Number of threads this warp actually covers. */
    std::uint32_t
    laneCount() const
    {
        const std::uint32_t base = warp_in_block * warp_size;
        return base >= threads_per_block
                   ? 0
                   : (threads_per_block - base < warp_size
                          ? threads_per_block - base
                          : warp_size);
    }

    /** Global thread id of @p lane. */
    std::uint32_t
    globalThread(std::uint32_t lane) const
    {
        return block_id * threads_per_block + warp_in_block * warp_size +
               lane;
    }

    /** Total threads in the grid. */
    std::uint32_t
    totalThreads() const
    {
        return num_blocks * threads_per_block;
    }
};

/** Factory producing the coroutine for one warp. */
using WarpProgramFactory = std::function<WarpProgram(WarpCtx)>;

/** Static description of a kernel launch. */
struct KernelInfo {
    std::string name;
    std::uint32_t num_blocks = 1;
    std::uint32_t threads_per_block = 256;
    std::uint32_t regs_per_thread = 32;
    std::uint32_t smem_bytes_per_block = 0;
    WarpProgramFactory make_program;

    std::uint32_t
    warpsPerBlock(std::uint32_t warp_size) const
    {
        return (threads_per_block + warp_size - 1) / warp_size;
    }
};

} // namespace bauvm

#endif // BAUVM_GPU_WARP_PROGRAM_H_
