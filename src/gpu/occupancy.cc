#include "src/gpu/occupancy.h"

#include <algorithm>

#include "src/sim/log.h"

namespace bauvm
{

Occupancy
computeOccupancy(const GpuConfig &config, const KernelInfo &kernel)
{
    if (kernel.threads_per_block == 0)
        fatal("computeOccupancy: kernel with zero threads per block");

    Occupancy occ;
    occ.thread_limit =
        config.max_threads_per_sm / kernel.threads_per_block;
    occ.block_limit = config.max_blocks_per_sm;

    const std::uint64_t regs_bytes_per_block =
        static_cast<std::uint64_t>(kernel.threads_per_block) *
        kernel.regs_per_thread * 4;
    occ.register_limit =
        regs_bytes_per_block == 0
            ? config.max_blocks_per_sm
            : static_cast<std::uint32_t>(config.regfile_bytes_per_sm /
                                         regs_bytes_per_block);

    occ.smem_limit =
        kernel.smem_bytes_per_block == 0
            ? config.max_blocks_per_sm
            : static_cast<std::uint32_t>(kSharedMemPerSm /
                                         kernel.smem_bytes_per_block);

    occ.blocks_per_sm = std::min(
        {occ.thread_limit, occ.block_limit, occ.register_limit,
         occ.smem_limit});
    if (occ.blocks_per_sm == 0) {
        fatal("computeOccupancy: kernel '%s' does not fit on an SM "
              "(threads=%u regs=%u smem=%u)",
              kernel.name.c_str(), kernel.threads_per_block,
              kernel.regs_per_thread, kernel.smem_bytes_per_block);
    }
    return occ;
}

std::uint64_t
contextBytes(const KernelInfo &kernel, std::uint64_t block_state_bytes)
{
    return static_cast<std::uint64_t>(kernel.threads_per_block) *
               kernel.regs_per_thread * 4 +
           block_state_bytes;
}

} // namespace bauvm
