// WarpProgram is header-only; this file anchors the module in the build.
#include "src/gpu/warp_program.h"
