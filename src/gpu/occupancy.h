/**
 * @file
 * Occupancy calculator: how many thread blocks fit on one SM.
 *
 * Mirrors the constraints the paper lists in section 2.1: the maximum
 * thread count per SM, the maximum resident block count, the register
 * file capacity, and shared memory. The binding constraint matters for
 * Thread Oversubscription: when the register file is (close to)
 * exhausted at the scheduling limit, extra blocks can only be hosted
 * through full context switching via global memory (section 4.1).
 */

#ifndef BAUVM_GPU_OCCUPANCY_H_
#define BAUVM_GPU_OCCUPANCY_H_

#include <cstdint>

#include "src/gpu/warp_program.h"
#include "src/sim/config.h"

namespace bauvm
{

/** Result of the occupancy computation for one kernel on one SM. */
struct Occupancy {
    std::uint32_t blocks_per_sm = 0;  //!< resident blocks (baseline)
    std::uint32_t thread_limit = 0;   //!< blocks allowed by thread count
    std::uint32_t block_limit = 0;    //!< blocks allowed by block slots
    std::uint32_t register_limit = 0; //!< blocks allowed by the regfile
    std::uint32_t smem_limit = 0;     //!< blocks allowed by shared mem

    /**
     * True when the Virtual Thread architecture could host at least one
     * extra block within spare capacity (registers/smem) — i.e. without
     * spilling contexts to global memory. For the paper's graph
     * workloads this is false, which motivates TO's full context
     * switching.
     */
    bool
    sparseCapacityForExtraBlock() const
    {
        const std::uint32_t cap = register_limit < smem_limit
                                      ? register_limit
                                      : smem_limit;
        return cap > blocks_per_sm;
    }
};

/** Shared-memory capacity per SM used by the occupancy calculation. */
constexpr std::uint64_t kSharedMemPerSm = 64 * 1024;

/**
 * Computes the baseline resident-block count for @p kernel.
 * Calls fatal() if even a single block does not fit.
 */
Occupancy computeOccupancy(const GpuConfig &config,
                           const KernelInfo &kernel);

/**
 * Context bytes that must move through global memory to switch one
 * block of @p kernel out or in: the live register file plus the
 * per-block state (warp ids, block ids, SIMT stacks — paper footnote 5).
 */
std::uint64_t contextBytes(const KernelInfo &kernel,
                           std::uint64_t block_state_bytes);

} // namespace bauvm

#endif // BAUVM_GPU_OCCUPANCY_H_
