/**
 * @file
 * Grid block dispatcher.
 *
 * Assigns thread blocks of the launched kernel to SMs: up to the
 * occupancy (scheduling) limit as active blocks, plus — when thread
 * oversubscription is enabled — up to `allowedExtra()` inactive blocks
 * per SM. Supports ETC-style SM throttling (disabled SMs drain and
 * receive no new blocks).
 */

#ifndef BAUVM_GPU_BLOCK_DISPATCHER_H_
#define BAUVM_GPU_BLOCK_DISPATCHER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/gpu/sm.h"
#include "src/gpu/virtual_thread.h"
#include "src/gpu/warp_program.h"
#include "src/sim/config.h"

namespace bauvm
{

/** Feeds the kernel's blocks to the SMs and tracks completion. */
class BlockDispatcher
{
  public:
    BlockDispatcher(const GpuConfig &config,
                    std::vector<std::unique_ptr<SmBase>> &sms,
                    VirtualThreadController &vtc);

    /**
     * Starts a kernel: computes occupancy and performs the initial
     * assignment. @p on_done fires when the last block retires.
     */
    void launch(const KernelInfo *kernel, std::function<void()> on_done);

    /** SM callback: block @p slot on @p sm retired. */
    void onBlockFinished(std::uint32_t sm, std::uint32_t slot);

    /** Tops up inactive blocks after the TO degree grew. */
    void topUpExtras();

    /** Enables/disables an SM (ETC memory-aware throttling). */
    void setSmEnabled(std::uint32_t sm, bool enabled);

    std::uint32_t enabledSms() const;
    std::uint32_t baselineBlocksPerSm() const { return baseline_; }
    bool done() const { return finished_ == total_ && total_ != 0; }
    std::uint32_t finishedBlocks() const { return finished_; }

  private:
    void refillSm(std::uint32_t sm_id);
    void syncSmCount();

    GpuConfig config_;
    std::vector<std::unique_ptr<SmBase>> &sms_;
    VirtualThreadController &vtc_;
    const KernelInfo *kernel_ = nullptr;
    std::function<void()> on_done_;
    std::vector<bool> sm_enabled_;
    std::uint32_t baseline_ = 0;
    std::uint32_t total_ = 0;
    std::uint32_t next_block_ = 0;
    std::uint32_t finished_ = 0;
};

} // namespace bauvm

#endif // BAUVM_GPU_BLOCK_DISPATCHER_H_
