/**
 * @file
 * Streaming Multiprocessor model.
 *
 * An SM hosts resident thread blocks (active ones, plus inactive ones
 * when Thread Oversubscription is enabled), schedules their warps onto
 * a single issue port (1 instruction per cycle), and drives each warp's
 * operations through the memory hierarchy. Warps that fault suspend and
 * are woken by the UVM runtime; when every live warp of an active block
 * is suspended on faults, the SM notifies its listener (the Virtual
 * Thread controller), which may context-switch the block out.
 *
 * The class splits along the hot/cold line for observer specialization
 * (src/check/observer_mode.h): SmBase holds the block/warp state, the
 * scheduling queue and the cold control surface the VTC and dispatcher
 * drive; SmT<M> adds the per-instruction issue/execute/complete loop
 * with the observer branches and the typed hierarchy/runtime references
 * compiled for mode M. The only virtual on the hot path is pump(),
 * invoked once per scheduled pump event and amortized over the whole
 * ready queue — the construction-time seam the Gpu dispatches through.
 * Sm aliases the Dynamic specialization.
 */

#ifndef BAUVM_GPU_SM_H_
#define BAUVM_GPU_SM_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/check/observer_mode.h"
#include "src/check/sim_hooks.h"
#include "src/gpu/coalescer.h"
#include "src/gpu/warp_program.h"
#include "src/mem/memory_hierarchy.h"
#include "src/sim/config.h"
#include "src/sim/event_queue.h"
#include "src/sim/types.h"
#include "src/trace/trace_sink.h"
#include "src/uvm/uvm_runtime.h"

namespace bauvm
{

/** Receives SM scheduling notifications (implemented by the VTC). */
class SmListener
{
  public:
    virtual ~SmListener() = default;
    /** Every live warp of active block @p slot is stalled. */
    virtual void onBlockStalled(std::uint32_t sm, std::uint32_t slot) = 0;
    /** Block @p slot retired (all warps done). */
    virtual void onBlockFinished(std::uint32_t sm, std::uint32_t slot) = 0;
    /** A warp of *inactive* block @p slot became runnable. */
    virtual void onInactiveWarpReady(std::uint32_t sm,
                                     std::uint32_t slot) = 0;
};

/**
 * State and cold control surface of one streaming multiprocessor
 * (mode-independent). The VTC, the block dispatcher and statistics
 * readers hold SmBase references/pointers.
 */
class SmBase
{
  public:
    virtual ~SmBase() = default;

    /**
     * Makes a grid block resident on this SM.
     *
     * @param kernel  the kernel being executed (must outlive the block).
     * @param block_id  index of the block within the grid.
     * @param active  whether the block may issue immediately.
     * @return the slot index identifying the block on this SM.
     */
    std::uint32_t addBlock(const KernelInfo *kernel,
                           std::uint32_t block_id, bool active);

    /**
     * Activates block @p slot after @p delay cycles (context restore).
     * The block is marked "activating" immediately so the controller
     * does not pick it twice.
     */
    void activateBlock(std::uint32_t slot, Cycle delay);

    /** Deactivates block @p slot immediately (context save is charged
     *  by the controller on the incoming block's restore delay). */
    void deactivateBlock(std::uint32_t slot);

    /** Number of block slots in use (finished blocks' slots recycle). */
    std::size_t residentBlocks() const;

    /** Active (issuing) blocks currently resident. */
    std::size_t activeBlocks() const;

    bool blockActive(std::uint32_t slot) const;
    bool blockFinished(std::uint32_t slot) const;
    bool blockStarted(std::uint32_t slot) const;

    /**
     * True when inactive block @p slot could make progress if switched
     * in (it has at least one runnable warp).
     */
    bool switchInCandidate(std::uint32_t slot) const;

    /** True when active block @p slot has every live warp stalled. */
    bool blockFullyStalled(std::uint32_t slot) const;

    /** Slots of resident, unfinished, inactive blocks. */
    std::vector<std::uint32_t> inactiveBlockSlots() const;

    /** First active block with every live warp stalled, or -1. */
    int firstFullyStalledActiveBlock() const;

    std::uint32_t id() const { return id_; }

    /**
     * Moves this SM's trace events onto track @p track. Multi-tenant
     * runs give each tenant's GPU a disjoint track range (tenant i's
     * SM j lands on i*num_sms+j) while SM ids stay GPU-local.
     */
    void setTraceTrack(TraceTrack track) { track_ = track; }

    /** Enables the Fig 5 mode: memory waits count as block stalls. */
    void setSwitchOnMemoryStall(bool on)
    {
        switch_on_memory_stall_ = on;
    }

    std::uint64_t issuedInstructions() const { return issued_; }
    std::uint64_t memoryInstructions() const
    {
        return coalescer_.memoryInstructions();
    }
    const Coalescer &coalescer() const { return coalescer_; }

    /** Pages this SM ever touched (for working-set experiments). */
    std::uint64_t pageFaultsRaised() const { return faults_raised_; }

  protected:
    enum class WarpStatus {
        Ready,       //!< runnable (queued when its block is active)
        WaitOp,      //!< an issued operation is completing
        WaitFault,   //!< suspended on one or more page faults
        WaitBarrier, //!< parked at __syncthreads
        Done,
    };

    struct WarpState {
        WarpProgram prog;
        WarpCtx ctx;
        WarpStatus st = WarpStatus::Ready;
        bool fetched = false;     //!< first advance() performed
        bool waiting_mem = false; //!< WaitOp is a memory operation
        /** Set when the op's faults all resolved while the block was
         *  inactive: on the next dispatch the op completes directly
         *  (the hardware replays the access right after migration, so
         *  the data access is not re-executed from scratch). */
        bool replay_done = false;
        std::uint32_t pending_faults = 0;
    };

    struct Block {
        const KernelInfo *kernel = nullptr;
        std::uint32_t block_id = 0;
        bool in_use = false;
        bool active = false;
        bool activating = false;
        bool finished = false;
        bool started = false;
        std::uint32_t done_warps = 0;
        std::uint32_t barrier_waiting = 0;
        std::vector<WarpState> warps;

        std::uint32_t liveWarps() const
        {
            return static_cast<std::uint32_t>(warps.size()) - done_warps;
        }
    };

    SmBase(std::uint32_t id, const GpuConfig &config, EventQueue &events,
           SmListener *listener, const SimHooks &hooks);

    /**
     * Drains the ready queue, issuing one instruction per cycle. The
     * single virtual seam into the specialized hot loop: called from
     * the one scheduled pump event, never per instruction.
     */
    virtual void pump() = 0;

    void enqueueReady(std::uint32_t slot, std::uint32_t warp);
    void schedulePump();
    void checkBlockStalled(std::uint32_t slot);
    /** Samples the active/resident block counters onto the trace. */
    void traceOccupancy();

    std::uint32_t id_;
    TraceTrack track_;
    GpuConfig config_;
    EventQueue &events_;
    SmListener *listener_;
    Coalescer coalescer_;
    SimHooks hooks_;

    bool switch_on_memory_stall_ = false;
    std::vector<Block> blocks_;
    std::deque<std::pair<std::uint32_t, std::uint32_t>> ready_queue_;
    bool pump_scheduled_ = false;
    Cycle issue_free_ = 0;
    std::uint64_t issued_ = 0;
    std::uint64_t faults_raised_ = 0;
    /** Persistent scratch: coalesced lines of the op being issued. */
    std::vector<VAddr> line_scratch_;
    /** Persistent scratch: distinct faulting pages of that op. */
    std::vector<PageNum> fault_page_scratch_;
};

/** One streaming multiprocessor (hot loop compiled for mode @p M). */
template <ObserverMode M>
class SmT final : public SmBase
{
  public:
    /** @param hooks observers: faults, dispatches, context switches
     *  and occupancy samples land on this SM's own trace track. */
    SmT(std::uint32_t id, const GpuConfig &config, EventQueue &events,
        MemoryHierarchyT<M> &hierarchy, UvmRuntimeT<M> &runtime,
        SmListener *listener, const SimHooks &hooks = {});

  private:
    void pump() override;
    void processOp(std::uint32_t slot, std::uint32_t warp, Cycle issue);
    void execMemoryOp(std::uint32_t slot, std::uint32_t warp,
                      const WarpOp &op, Cycle issue);
    void onOpComplete(std::uint32_t slot, std::uint32_t warp);
    void onFaultResolved(std::uint32_t slot, std::uint32_t warp);
    void finishWarp(std::uint32_t slot, std::uint32_t warp);
    void maybeReleaseBarrier(std::uint32_t slot);

    MemoryHierarchyT<M> &hierarchy_;
    UvmRuntimeT<M> &runtime_;
};

extern template class SmT<ObserverMode::Dynamic>;
extern template class SmT<ObserverMode::None>;
extern template class SmT<ObserverMode::Trace>;
extern template class SmT<ObserverMode::Audit>;
extern template class SmT<ObserverMode::Both>;

/** Historical name: the runtime-dispatched (Dynamic) specialization. */
using Sm = SmT<ObserverMode::Dynamic>;

} // namespace bauvm

#endif // BAUVM_GPU_SM_H_
