#include "src/gpu/gpu.h"

#include "src/sim/log.h"

namespace bauvm
{

template <ObserverMode M>
Gpu::Gpu(const SimConfig &config, EventQueue &events,
         MemoryHierarchyT<M> &hierarchy, UvmRuntimeT<M> &runtime,
         const SimHooks &hooks, std::uint32_t sm_track_base)
    : config_(config), events_(events), vtc_(config.to, sms_, hooks),
      dispatcher_(config.gpu, sms_, vtc_)
{
    for (std::uint32_t i = 0; i < config.gpu.num_sms; ++i) {
        sms_.push_back(std::make_unique<SmT<M>>(i, config.gpu, events,
                                                hierarchy, runtime,
                                                this, hooks));
        if (sm_track_base != 0)
            sms_.back()->setTraceTrack(traceTrackSm(sm_track_base + i));
        sms_.back()->setSwitchOnMemoryStall(
            config.to.switch_on_memory_stall);
    }
    vtc_.setTopUpCallback([this] { dispatcher_.topUpExtras(); });
    runtime.setAdviceCallback(
        [this](OversubAdvice advice) { vtc_.onAdvice(advice); });
}

template Gpu::Gpu(const SimConfig &, EventQueue &,
                  MemoryHierarchyT<ObserverMode::Dynamic> &,
                  UvmRuntimeT<ObserverMode::Dynamic> &, const SimHooks &,
                  std::uint32_t);
template Gpu::Gpu(const SimConfig &, EventQueue &,
                  MemoryHierarchyT<ObserverMode::None> &,
                  UvmRuntimeT<ObserverMode::None> &, const SimHooks &,
                  std::uint32_t);
template Gpu::Gpu(const SimConfig &, EventQueue &,
                  MemoryHierarchyT<ObserverMode::Trace> &,
                  UvmRuntimeT<ObserverMode::Trace> &, const SimHooks &,
                  std::uint32_t);
template Gpu::Gpu(const SimConfig &, EventQueue &,
                  MemoryHierarchyT<ObserverMode::Audit> &,
                  UvmRuntimeT<ObserverMode::Audit> &, const SimHooks &,
                  std::uint32_t);
template Gpu::Gpu(const SimConfig &, EventQueue &,
                  MemoryHierarchyT<ObserverMode::Both> &,
                  UvmRuntimeT<ObserverMode::Both> &, const SimHooks &,
                  std::uint32_t);

Cycle
Gpu::runKernel(const KernelInfo &kernel)
{
    const Cycle begin = events_.now();
    kernel_done_ = false;
    dispatcher_.launch(&kernel, [this] { kernel_done_ = true; });
    events_.run();
    if (!kernel_done_) {
        panic("Gpu: event queue drained but kernel '%s' has %u/%u "
              "blocks finished (simulator deadlock)",
              kernel.name.c_str(), dispatcher_.finishedBlocks(),
              kernel.num_blocks);
    }
    return events_.now() - begin;
}

void
Gpu::launchKernel(const KernelInfo *kernel,
                  std::function<void()> on_done)
{
    dispatcher_.launch(kernel, std::move(on_done));
}

std::uint64_t
Gpu::totalIssuedInstructions() const
{
    std::uint64_t n = 0;
    for (const auto &sm : sms_)
        n += sm->issuedInstructions();
    return n;
}

void
Gpu::onBlockStalled(std::uint32_t sm, std::uint32_t slot)
{
    vtc_.onBlockStalled(sm, slot);
}

void
Gpu::onBlockFinished(std::uint32_t sm, std::uint32_t slot)
{
    dispatcher_.onBlockFinished(sm, slot);
}

void
Gpu::onInactiveWarpReady(std::uint32_t sm, std::uint32_t slot)
{
    vtc_.onInactiveWarpReady(sm, slot);
}

} // namespace bauvm
