#include "src/gpu/sm.h"

#include <algorithm>

#include "src/sim/log.h"

namespace bauvm
{

SmBase::SmBase(std::uint32_t id, const GpuConfig &config,
               EventQueue &events, SmListener *listener,
               const SimHooks &hooks)
    : id_(id), track_(traceTrackSm(id)), config_(config),
      events_(events), listener_(listener),
      coalescer_(128 /* L1 line */), hooks_(hooks)
{
}

std::uint32_t
SmBase::addBlock(const KernelInfo *kernel, std::uint32_t block_id,
                 bool active)
{
    // Recycle a retired slot if one exists.
    std::uint32_t slot = static_cast<std::uint32_t>(blocks_.size());
    for (std::uint32_t i = 0; i < blocks_.size(); ++i) {
        if (!blocks_[i].in_use || blocks_[i].finished) {
            slot = i;
            break;
        }
    }
    if (slot == blocks_.size())
        blocks_.emplace_back();

    Block &b = blocks_[slot];
    b = Block{};
    b.in_use = true;
    b.kernel = kernel;
    b.block_id = block_id;
    b.active = active;

    const std::uint32_t warps = kernel->warpsPerBlock(config_.warp_size);
    b.warps.resize(warps);
    for (std::uint32_t w = 0; w < warps; ++w) {
        WarpCtx ctx;
        ctx.block_id = block_id;
        ctx.warp_in_block = w;
        ctx.warp_size = config_.warp_size;
        ctx.threads_per_block = kernel->threads_per_block;
        ctx.num_blocks = kernel->num_blocks;
        b.warps[w].ctx = ctx;
        b.warps[w].prog = kernel->make_program(ctx);
        b.warps[w].st = WarpStatus::Ready;
    }
    if (hooks_.trace) {
        hooks_.trace->instant(TraceEventType::BlockDispatch,
                              track_, events_.now(),
                              block_id, active ? 1 : 0);
    }
    traceOccupancy();
    if (active) {
        for (std::uint32_t w = 0; w < warps; ++w)
            enqueueReady(slot, w);
    }
    return slot;
}

void
SmBase::activateBlock(std::uint32_t slot, Cycle delay)
{
    Block &b = blocks_[slot];
    if (b.active || b.activating || b.finished)
        panic("Sm: bad activateBlock state");
    b.activating = true;
    if (hooks_.trace) {
        hooks_.trace->interval(TraceEventType::CtxSwitchIn,
                               track_, events_.now(),
                               events_.now() + delay, b.block_id, slot);
    }
    events_.scheduleAfter(delay, [this, slot] {
        Block &blk = blocks_[slot];
        blk.activating = false;
        blk.active = true;
        traceOccupancy();
        for (std::uint32_t w = 0; w < blk.warps.size(); ++w) {
            if (blk.warps[w].st == WarpStatus::Ready)
                enqueueReady(slot, w);
        }
        // The switched-in block may already be fully stalled (e.g. its
        // faults were re-raised while inactive); re-check so the
        // controller can switch again if needed.
        checkBlockStalled(slot);
    });
}

void
SmBase::deactivateBlock(std::uint32_t slot)
{
    Block &b = blocks_[slot];
    if (!b.active)
        panic("Sm: deactivating inactive block");
    b.active = false;
    if (hooks_.trace) {
        hooks_.trace->instant(TraceEventType::CtxSwitchOut,
                              track_, events_.now(),
                              b.block_id, slot);
    }
    traceOccupancy();
}

std::size_t
SmBase::residentBlocks() const
{
    std::size_t n = 0;
    for (const auto &b : blocks_)
        n += (b.in_use && !b.finished) ? 1 : 0;
    return n;
}

std::size_t
SmBase::activeBlocks() const
{
    std::size_t n = 0;
    for (const auto &b : blocks_)
        n += (b.in_use && !b.finished && (b.active || b.activating)) ? 1
                                                                     : 0;
    return n;
}

bool
SmBase::blockActive(std::uint32_t slot) const
{
    return blocks_[slot].active;
}

bool
SmBase::blockFinished(std::uint32_t slot) const
{
    return blocks_[slot].finished;
}

bool
SmBase::blockStarted(std::uint32_t slot) const
{
    return blocks_[slot].started;
}

bool
SmBase::switchInCandidate(std::uint32_t slot) const
{
    const Block &b = blocks_[slot];
    if (!b.in_use || b.active || b.activating || b.finished)
        return false;
    for (const auto &w : b.warps) {
        if (w.st == WarpStatus::Ready)
            return true;
    }
    return false;
}

bool
SmBase::blockFullyStalled(std::uint32_t slot) const
{
    const Block &b = blocks_[slot];
    if (!b.in_use || b.finished || b.liveWarps() == 0)
        return false;
    for (const auto &w : b.warps) {
        switch (w.st) {
          case WarpStatus::Done:
          case WarpStatus::WaitFault:
            break;
          case WarpStatus::WaitOp:
            // Memory waits count as stalls only in the Fig 5
            // "traditional GPU" mode; compute waits never do.
            if (!switch_on_memory_stall_ || !w.waiting_mem)
                return false;
            break;
          default:
            return false;
        }
    }
    return true;
}

std::vector<std::uint32_t>
SmBase::inactiveBlockSlots() const
{
    std::vector<std::uint32_t> out;
    for (std::uint32_t i = 0; i < blocks_.size(); ++i) {
        const Block &b = blocks_[i];
        if (b.in_use && !b.finished && !b.active && !b.activating)
            out.push_back(i);
    }
    return out;
}

int
SmBase::firstFullyStalledActiveBlock() const
{
    for (std::uint32_t i = 0; i < blocks_.size(); ++i) {
        const Block &b = blocks_[i];
        if (b.in_use && !b.finished && b.active && blockFullyStalled(i))
            return static_cast<int>(i);
    }
    return -1;
}

void
SmBase::enqueueReady(std::uint32_t slot, std::uint32_t warp)
{
    blocks_[slot].warps[warp].st = WarpStatus::Ready;
    ready_queue_.emplace_back(slot, warp);
    schedulePump();
}

void
SmBase::schedulePump()
{
    if (pump_scheduled_)
        return;
    pump_scheduled_ = true;
    const Cycle when = std::max(events_.now(), issue_free_);
    events_.scheduleAt(when, [this] {
        pump_scheduled_ = false;
        pump();
    });
}

void
SmBase::traceOccupancy()
{
    if (!hooks_.trace)
        return;
    hooks_.trace->counter(TraceEventType::SmOccupancy,
                          track_, events_.now(),
                          activeBlocks(),
                          static_cast<std::uint32_t>(residentBlocks()));
}

void
SmBase::checkBlockStalled(std::uint32_t slot)
{
    Block &b = blocks_[slot];
    if (!b.active || b.finished || !listener_)
        return;
    if (blockFullyStalled(slot))
        listener_->onBlockStalled(id_, slot);
}

template <ObserverMode M>
SmT<M>::SmT(std::uint32_t id, const GpuConfig &config, EventQueue &events,
            MemoryHierarchyT<M> &hierarchy, UvmRuntimeT<M> &runtime,
            SmListener *listener, const SimHooks &hooks)
    : SmBase(id, config, events, listener, hooks), hierarchy_(hierarchy),
      runtime_(runtime)
{
}

template <ObserverMode M>
void
SmT<M>::pump()
{
    while (!ready_queue_.empty()) {
        auto [slot, warp] = ready_queue_.front();
        ready_queue_.pop_front();
        Block &b = blocks_[slot];
        if (!b.in_use || b.finished)
            continue;
        WarpState &ws = b.warps[warp];
        if (ws.st != WarpStatus::Ready)
            continue; // stale entry
        if (!b.active)
            continue; // re-enqueued when the block is switched back in
        const Cycle issue = std::max(events_.now(), issue_free_);
        issue_free_ = issue + 1; // one instruction per cycle
        processOp(slot, warp, issue);
    }
}

template <ObserverMode M>
void
SmT<M>::processOp(std::uint32_t slot, std::uint32_t warp, Cycle issue)
{
    Block &b = blocks_[slot];
    WarpState &ws = b.warps[warp];
    b.started = true;
    ++issued_;

    if (!ws.fetched) {
        ws.fetched = true;
        if (!ws.prog.advance()) {
            finishWarp(slot, warp);
            return;
        }
    }

    if (ws.replay_done) {
        // The op's faults resolved while the block was switched out;
        // the replayed access completed at migration time. Finish the
        // op now.
        ws.replay_done = false;
        ws.st = WarpStatus::WaitOp;
        ws.waiting_mem = true;
        events_.scheduleAt(issue + 1, [this, slot, warp] {
            onOpComplete(slot, warp);
        });
        return;
    }

    const WarpOp &op = ws.prog.current();
    switch (op.kind) {
      case WarpOp::Kind::Compute: {
        ws.st = WarpStatus::WaitOp;
        ws.waiting_mem = false;
        const Cycle c = op.cycles == 0 ? 1 : op.cycles;
        events_.scheduleAt(issue + c, [this, slot, warp] {
            onOpComplete(slot, warp);
        });
        break;
      }
      case WarpOp::Kind::Sync: {
        ws.st = WarpStatus::WaitBarrier;
        ++b.barrier_waiting;
        maybeReleaseBarrier(slot);
        break;
      }
      default:
        execMemoryOp(slot, warp, op, issue);
        break;
    }
}

template <ObserverMode M>
void
SmT<M>::execMemoryOp(std::uint32_t slot, std::uint32_t warp,
                     const WarpOp &op, Cycle issue)
{
    Block &b = blocks_[slot];
    WarpState &ws = b.warps[warp];
    const bool write = op.kind != WarpOp::Kind::Load;

    coalescer_.coalesceInto(op.addrs, &line_scratch_);
    // Lines are ascending, so faulting pages come out nondecreasing:
    // deduplicating needs only a tail compare, and the pages are
    // registered with the runtime in ascending order.
    fault_page_scratch_.clear();
    Cycle done = issue + 1 + config_.mem_op_overhead_cycles;
    for (VAddr line : line_scratch_) {
        const MemResult r = hierarchy_.access(id_, line, write, issue);
        if (r.fault) {
            if (fault_page_scratch_.empty() ||
                fault_page_scratch_.back() != r.vpn)
                fault_page_scratch_.push_back(r.vpn);
        } else {
            done = std::max(done, r.done);
        }
    }

    if (op.kind == WarpOp::Kind::Atomic)
        done += hierarchy_.atomicLatency();

    if (fault_page_scratch_.empty()) {
        ws.st = WarpStatus::WaitOp;
        ws.waiting_mem = true;
        events_.scheduleAt(done, [this, slot, warp] {
            onOpComplete(slot, warp);
        });
        if (switch_on_memory_stall_)
            checkBlockStalled(slot);
        return;
    }

    // The warp suspends until every faulted page is resident, then
    // replays the whole instruction.
    ws.st = WarpStatus::WaitFault;
    ws.waiting_mem = false;
    ws.pending_faults =
        static_cast<std::uint32_t>(fault_page_scratch_.size());
    faults_raised_ += fault_page_scratch_.size();
    BAUVM_DLOG("Sm %u: warp %u of block %u faults on %zu pages at "
               "cycle %llu",
               id_, warp, b.block_id, fault_page_scratch_.size(),
               static_cast<unsigned long long>(issue));
    for (PageNum vpn : fault_page_scratch_) {
        if constexpr (observesTrace(M)) {
            if (hooks_.trace) {
                hooks_.trace->instant(TraceEventType::PageFault,
                                      track_, issue, vpn, warp);
            }
        }
        runtime_.onPageFault(vpn, [this, slot, warp](Cycle) {
            onFaultResolved(slot, warp);
        });
    }
    checkBlockStalled(slot);
}

template <ObserverMode M>
void
SmT<M>::onOpComplete(std::uint32_t slot, std::uint32_t warp)
{
    Block &b = blocks_[slot];
    WarpState &ws = b.warps[warp];
    if (!ws.prog.advance()) {
        finishWarp(slot, warp);
        return;
    }
    ws.st = WarpStatus::Ready;
    if (b.active)
        enqueueReady(slot, warp);
    else if (listener_)
        listener_->onInactiveWarpReady(id_, slot);
}

template <ObserverMode M>
void
SmT<M>::onFaultResolved(std::uint32_t slot, std::uint32_t warp)
{
    Block &b = blocks_[slot];
    WarpState &ws = b.warps[warp];
    if (ws.st != WarpStatus::WaitFault || ws.pending_faults == 0)
        panic("Sm: fault wake for a warp not waiting on faults");
    if (--ws.pending_faults != 0)
        return;
    // Every faulted page of the op has now been migrated at least
    // once; the hardware replays each access as its page arrives, so
    // the op completes here — requiring all pages to be resident
    // *simultaneously* at a full re-execution would livelock tiny
    // capacities.
    if (b.active) {
        ws.st = WarpStatus::WaitOp;
        ws.waiting_mem = true;
        const Cycle replay = hierarchy_.l1Cache(id_).hitLatency();
        events_.scheduleAfter(replay, [this, slot, warp] {
            onOpComplete(slot, warp);
        });
        return;
    }
    ws.st = WarpStatus::Ready;
    ws.replay_done = true;
    if (listener_)
        listener_->onInactiveWarpReady(id_, slot);
}

template <ObserverMode M>
void
SmT<M>::finishWarp(std::uint32_t slot, std::uint32_t warp)
{
    Block &b = blocks_[slot];
    WarpState &ws = b.warps[warp];
    ws.st = WarpStatus::Done;
    ws.prog = WarpProgram{}; // release the coroutine frame
    ++b.done_warps;
    if (b.liveWarps() == 0) {
        b.finished = true;
        b.active = false;
        if constexpr (observesTrace(M)) {
            if (hooks_.trace) {
                hooks_.trace->instant(TraceEventType::BlockFinish,
                                      track_, events_.now(),
                                      b.block_id, slot);
            }
        }
        traceOccupancy();
        if (listener_)
            listener_->onBlockFinished(id_, slot);
        return;
    }
    maybeReleaseBarrier(slot);
}

template <ObserverMode M>
void
SmT<M>::maybeReleaseBarrier(std::uint32_t slot)
{
    Block &b = blocks_[slot];
    if (b.barrier_waiting == 0 || b.barrier_waiting < b.liveWarps())
        return;
    b.barrier_waiting = 0;
    for (std::uint32_t w = 0; w < b.warps.size(); ++w) {
        WarpState &ws = b.warps[w];
        if (ws.st == WarpStatus::WaitBarrier) {
            ws.st = WarpStatus::WaitOp;
            events_.scheduleAfter(1, [this, slot, w] {
                onOpComplete(slot, w);
            });
        }
    }
}

template class SmT<ObserverMode::Dynamic>;
template class SmT<ObserverMode::None>;
template class SmT<ObserverMode::Trace>;
template class SmT<ObserverMode::Audit>;
template class SmT<ObserverMode::Both>;

} // namespace bauvm
