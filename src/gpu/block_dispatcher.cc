#include "src/gpu/block_dispatcher.h"

#include "src/sim/log.h"

namespace bauvm
{

BlockDispatcher::BlockDispatcher(const GpuConfig &config,
                                 std::vector<std::unique_ptr<SmBase>> &sms,
                                 VirtualThreadController &vtc)
    : config_(config), sms_(sms), vtc_(vtc),
      sm_enabled_(sms.size(), true)
{
}

void
BlockDispatcher::syncSmCount()
{
    // The SM vector is populated after the dispatcher is constructed
    // (both live inside Gpu); pick up late additions here.
    if (sm_enabled_.size() != sms_.size())
        sm_enabled_.resize(sms_.size(), true);
}

void
BlockDispatcher::launch(const KernelInfo *kernel,
                        std::function<void()> on_done)
{
    syncSmCount();
    kernel_ = kernel;
    on_done_ = std::move(on_done);
    total_ = kernel->num_blocks;
    next_block_ = 0;
    finished_ = 0;

    const Occupancy occ = computeOccupancy(config_, *kernel);
    baseline_ = occ.blocks_per_sm;
    vtc_.setKernel(kernel);
    BAUVM_DLOG("BlockDispatcher: launching '%s': %u blocks, %u "
               "active per SM (+%u oversubscribed)",
               kernel->name.c_str(), total_, baseline_,
               vtc_.enabled() ? vtc_.allowedExtra() : 0);

    // Round-robin the initial active assignment so that neighbouring
    // blocks land on different SMs, as hardware rasterization does.
    for (std::uint32_t round = 0; round < baseline_; ++round) {
        for (std::uint32_t s = 0; s < sms_.size(); ++s) {
            if (!sm_enabled_[s] || next_block_ >= total_)
                continue;
            sms_[s]->addBlock(kernel_, next_block_++, true);
        }
    }
    topUpExtras();

    if (total_ == 0)
        fatal("BlockDispatcher: kernel '%s' with zero blocks",
              kernel->name.c_str());
}

void
BlockDispatcher::topUpExtras()
{
    if (!vtc_.enabled() || kernel_ == nullptr)
        return;
    const std::uint32_t target = baseline_ + vtc_.allowedExtra();
    for (std::uint32_t s = 0; s < sms_.size(); ++s) {
        if (!sm_enabled_[s])
            continue;
        while (sms_[s]->residentBlocks() < target &&
               next_block_ < total_) {
            sms_[s]->addBlock(kernel_, next_block_++, false);
        }
    }
}

void
BlockDispatcher::refillSm(std::uint32_t sm_id)
{
    SmBase &sm = *sms_[sm_id];
    if (!sm_enabled_[sm_id])
        return;

    // Keep the active count at the scheduling limit: promote resident
    // inactive blocks first (preferring runnable ones), then dispatch
    // fresh grid blocks.
    while (sm.activeBlocks() < baseline_) {
        int promote = -1;
        const auto inactive = sm.inactiveBlockSlots();
        for (std::uint32_t slot : inactive) {
            if (sm.switchInCandidate(slot)) {
                promote = static_cast<int>(slot);
                break;
            }
        }
        if (promote < 0 && next_block_ >= total_ && !inactive.empty()) {
            // Tail of the grid: promote even a stalled block so it can
            // finish once its pages arrive.
            promote = static_cast<int>(inactive.front());
        }
        if (promote >= 0) {
            const auto slot = static_cast<std::uint32_t>(promote);
            const Cycle cost =
                sm.blockStarted(slot) ? vtc_.oneWayCost() : 0;
            sm.activateBlock(slot, cost);
            continue;
        }
        if (next_block_ < total_) {
            sm.addBlock(kernel_, next_block_++, true);
            continue;
        }
        break;
    }

    // Replenish the oversubscription pool.
    if (vtc_.enabled()) {
        const std::uint32_t target = baseline_ + vtc_.allowedExtra();
        while (sm.residentBlocks() < target && next_block_ < total_)
            sm.addBlock(kernel_, next_block_++, false);
    }
}

void
BlockDispatcher::onBlockFinished(std::uint32_t sm, std::uint32_t slot)
{
    (void)slot;
    ++finished_;
    if (finished_ == total_) {
        if (on_done_)
            on_done_();
        return;
    }
    refillSm(sm);
}

void
BlockDispatcher::setSmEnabled(std::uint32_t sm, bool enabled)
{
    syncSmCount();
    const bool was = sm_enabled_[sm];
    sm_enabled_[sm] = enabled;
    if (!was && enabled && kernel_ != nullptr && !done())
        refillSm(sm);
}

std::uint32_t
BlockDispatcher::enabledSms() const
{
    if (sm_enabled_.size() != sms_.size())
        return static_cast<std::uint32_t>(sms_.size());
    std::uint32_t n = 0;
    for (bool e : sm_enabled_)
        n += e ? 1 : 0;
    return n;
}

} // namespace bauvm
