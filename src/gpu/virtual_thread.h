/**
 * @file
 * Virtual Thread controller implementing Thread Oversubscription (TO).
 *
 * Extends the Virtual Thread architecture (Yoon et al., ISCA'16) the way
 * the paper's section 4.1 describes:
 *  - extra thread blocks beyond the SM's scheduling limit are kept
 *    resident in an *inactive* state (block status table);
 *  - when every live warp of an active block stalls on page faults, the
 *    block is context-switched with a runnable inactive block, paying
 *    the cost of saving/restoring register state through global memory
 *    (graph kernels exhaust the register file, so the free
 *    shared-capacity path of baseline VT is unavailable);
 *  - the degree of oversubscription is controlled dynamically from the
 *    premature-eviction monitor: a collapse in the running average of
 *    page lifetimes disallows further context switching, while stable
 *    lifetimes add one more block per SM incrementally.
 */

#ifndef BAUVM_GPU_VIRTUAL_THREAD_H_
#define BAUVM_GPU_VIRTUAL_THREAD_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/check/sim_hooks.h"
#include "src/gpu/occupancy.h"
#include "src/gpu/sm.h"
#include "src/gpu/warp_program.h"
#include "src/sim/config.h"
#include "src/sim/event_queue.h"
#include "src/sim/types.h"
#include "src/trace/trace_sink.h"
#include "src/uvm/lifetime_tracker.h"

namespace bauvm
{

/** The Virtual Thread Controller with thread oversubscription. */
class VirtualThreadController
{
  public:
    /** @param hooks observers: oversubscription-degree changes emit
     *  counter samples stamped with the hook clock's current cycle. */
    VirtualThreadController(const ToConfig &config,
                            std::vector<std::unique_ptr<SmBase>> &sms,
                            const SimHooks &hooks = {});

    /** Installs the kernel whose context size prices the switches. */
    void setKernel(const KernelInfo *kernel);

    /** Invoked by the Gpu when the dispatcher should add extra blocks
     *  (after the allowed degree grew). */
    void setTopUpCallback(std::function<void()> cb)
    {
        top_up_ = std::move(cb);
    }

    /** An active block on @p sm stalled completely. */
    void onBlockStalled(std::uint32_t sm, std::uint32_t slot);

    /** A warp of inactive block @p slot on @p sm became runnable. */
    void onInactiveWarpReady(std::uint32_t sm, std::uint32_t slot);

    /** Premature-eviction advice from the UVM runtime, once per batch. */
    void onAdvice(OversubAdvice advice);

    bool enabled() const { return config_.enabled; }

    /** Extra (beyond-schedule-limit) blocks each SM may host now. */
    std::uint32_t allowedExtra() const { return allowed_extra_; }

    /**
     * Cycles to move one block's context one way through global memory
     * (Eq. of section 6.5: context bits / bandwidth).
     */
    Cycle oneWayCost() const;

    std::uint64_t contextSwitches() const { return switches_; }
    std::uint64_t switchCycles() const { return switch_cycles_; }
    std::uint64_t throttleEvents() const { return throttles_; }
    std::uint64_t growEvents() const { return grows_; }

  private:
    /** Picks a runnable inactive block on @p sm, or -1. */
    int pickCandidate(const SmBase &sm) const;
    void doSwitch(SmBase &sm, std::uint32_t out_slot, std::uint32_t in_slot);

    ToConfig config_;
    std::vector<std::unique_ptr<SmBase>> &sms_;
    SimHooks hooks_;
    const KernelInfo *kernel_ = nullptr;
    std::function<void()> top_up_;
    /** Consecutive healthy windows required before adding a block. */
    static constexpr std::uint32_t kGrowHysteresis = 8;

    std::uint32_t allowed_extra_ = 0;
    std::uint32_t grow_streak_ = 0;
    std::uint64_t switches_ = 0;
    std::uint64_t switch_cycles_ = 0;
    std::uint64_t throttles_ = 0;
    std::uint64_t grows_ = 0;
};

} // namespace bauvm

#endif // BAUVM_GPU_VIRTUAL_THREAD_H_
