#include "src/gpu/coalescer.h"

#include "src/sim/log.h"

namespace bauvm
{

Coalescer::Coalescer(std::uint32_t line_bytes) : line_bytes_(line_bytes)
{
    if (line_bytes == 0)
        fatal("Coalescer: zero line size");
    line_pow2_ = (line_bytes & (line_bytes - 1)) == 0;
    line_mask_ = ~static_cast<VAddr>(line_bytes - 1);
}

std::vector<VAddr>
Coalescer::coalesce(const std::vector<VAddr> &lane_addrs)
{
    std::vector<VAddr> lines;
    coalesceInto(lane_addrs, &lines);
    return lines;
}

void
Coalescer::coalesceInto(const VAddr *lane_addrs, std::size_t n,
                        std::vector<VAddr> *out)
{
    ++instructions_;
    std::vector<VAddr> &lines = *out;
    lines.clear();
    lines.reserve(n);
    // Optimistic single pass: lane addresses are usually already
    // line-ascending (unit-stride and most gather patterns), so the
    // masked lines dedup against the running tail with no sort and no
    // second scan. The first out-of-order line falls back to the
    // general mask-everything/sort/unique path, which produces the
    // same ascending unique set.
    std::size_t i = 0;
    for (; i < n; ++i) {
        const VAddr a = lane_addrs[i];
        const VAddr base =
            line_pow2_ ? a & line_mask_ : a - a % line_bytes_;
        if (lines.empty() || base > lines.back())
            lines.push_back(base);
        else if (base != lines.back())
            break;
    }
    if (i < n) {
        for (; i < n; ++i) {
            const VAddr a = lane_addrs[i];
            lines.push_back(line_pow2_ ? a & line_mask_
                                       : a - a % line_bytes_);
        }
        std::sort(lines.begin(), lines.end());
        lines.erase(std::unique(lines.begin(), lines.end()),
                    lines.end());
    }
    transactions_ += lines.size();
}

} // namespace bauvm
