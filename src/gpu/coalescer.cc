#include "src/gpu/coalescer.h"

#include <algorithm>

#include "src/sim/log.h"

namespace bauvm
{

Coalescer::Coalescer(std::uint32_t line_bytes) : line_bytes_(line_bytes)
{
    if (line_bytes == 0)
        fatal("Coalescer: zero line size");
}

std::vector<VAddr>
Coalescer::coalesce(const std::vector<VAddr> &lane_addrs)
{
    ++instructions_;
    std::vector<VAddr> lines;
    lines.reserve(lane_addrs.size());
    for (VAddr a : lane_addrs)
        lines.push_back(a - a % line_bytes_);
    std::sort(lines.begin(), lines.end());
    lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
    transactions_ += lines.size();
    return lines;
}

} // namespace bauvm
