/**
 * @file
 * Small-buffer address list for warp memory operations.
 *
 * Every memory WarpOp carries the per-lane addresses of one coalesced
 * access — at most a few per lane of a 32-wide warp. A std::vector
 * heap-allocates each of those lists, which made the allocator the
 * single largest cost outside the memory model (millions of
 * malloc/free pairs per simulated kernel). LaneVec stores up to
 * kInline addresses in place and only falls back to the heap for the
 * rare oversized list, so building and yielding a memory op is
 * allocation-free on the common path.
 *
 * Deliberately minimal: append-only growth plus the read API the SM
 * and the workloads actually use. Moves transfer the heap block when
 * one exists and otherwise copy the (small) live prefix.
 */

#ifndef BAUVM_GPU_LANE_VEC_H_
#define BAUVM_GPU_LANE_VEC_H_

#include <cstddef>
#include <utility>

#include "src/sim/types.h"

namespace bauvm
{

/** Inline-storage vector of per-lane addresses (see file comment). */
class LaneVec
{
  public:
    /**
     * Covers every shipped kernel's widest op (up to three addresses
     * per lane of a 32-wide warp) without touching the heap.
     */
    static constexpr std::size_t kInline = 128;

    LaneVec() = default;
    ~LaneVec() { delete[] heap_; }

    LaneVec(const LaneVec &o) { appendAll(o); }

    LaneVec &
    operator=(const LaneVec &o)
    {
        if (this != &o) {
            size_ = 0;
            appendAll(o);
        }
        return *this;
    }

    LaneVec(LaneVec &&o) noexcept { stealFrom(o); }

    LaneVec &
    operator=(LaneVec &&o) noexcept
    {
        if (this != &o) {
            delete[] heap_;
            heap_ = nullptr;
            cap_ = kInline;
            size_ = 0;
            stealFrom(o);
        }
        return *this;
    }

    void
    push_back(VAddr a)
    {
        if (size_ == cap_)
            grow(cap_ * 2);
        data()[size_++] = a;
    }

    void
    reserve(std::size_t n)
    {
        if (n > cap_)
            grow(n);
    }

    void clear() { size_ = 0; }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    VAddr *data() { return heap_ ? heap_ : inline_; }
    const VAddr *data() const { return heap_ ? heap_ : inline_; }

    VAddr operator[](std::size_t i) const { return data()[i]; }
    VAddr &operator[](std::size_t i) { return data()[i]; }
    VAddr back() const { return data()[size_ - 1]; }

    const VAddr *begin() const { return data(); }
    const VAddr *end() const { return data() + size_; }
    VAddr *begin() { return data(); }
    VAddr *end() { return data() + size_; }

  private:
    void
    appendAll(const LaneVec &o)
    {
        reserve(o.size_);
        VAddr *d = data();
        const VAddr *s = o.data();
        for (std::size_t i = 0; i < o.size_; ++i)
            d[i] = s[i];
        size_ = o.size_;
    }

    /** Move-construct body: @p o is left empty and inline. */
    void
    stealFrom(LaneVec &o) noexcept
    {
        if (o.heap_) {
            heap_ = std::exchange(o.heap_, nullptr);
            cap_ = std::exchange(o.cap_, kInline);
            size_ = o.size_;
        } else {
            size_ = o.size_;
            for (std::size_t i = 0; i < size_; ++i)
                inline_[i] = o.inline_[i];
        }
        o.size_ = 0;
    }

    void
    grow(std::size_t new_cap)
    {
        VAddr *block = new VAddr[new_cap];
        const VAddr *s = data();
        for (std::size_t i = 0; i < size_; ++i)
            block[i] = s[i];
        delete[] heap_;
        heap_ = block;
        cap_ = new_cap;
    }

    VAddr *heap_ = nullptr;
    std::size_t size_ = 0;
    std::size_t cap_ = kInline;
    VAddr inline_[kInline];
};

} // namespace bauvm

#endif // BAUVM_GPU_LANE_VEC_H_
