#include "src/gpu/virtual_thread.h"

#include "src/sim/log.h"

namespace bauvm
{

VirtualThreadController::VirtualThreadController(
    const ToConfig &config, std::vector<std::unique_ptr<SmBase>> &sms,
    const SimHooks &hooks)
    : config_(config), sms_(sms), hooks_(hooks),
      allowed_extra_(config.enabled ? config.initial_extra_blocks : 0)
{
}

void
VirtualThreadController::setKernel(const KernelInfo *kernel)
{
    kernel_ = kernel;
}

Cycle
VirtualThreadController::oneWayCost() const
{
    if (config_.ideal_ctx_switch || !kernel_)
        return 0;
    const std::uint64_t bytes =
        contextBytes(*kernel_, config_.block_state_bytes);
    const std::uint32_t bw = config_.ctx_switch_bytes_per_cycle;
    return (bytes + bw - 1) / bw;
}

int
VirtualThreadController::pickCandidate(const SmBase &sm) const
{
    for (std::uint32_t slot : sm.inactiveBlockSlots()) {
        if (sm.switchInCandidate(slot))
            return static_cast<int>(slot);
    }
    return -1;
}

void
VirtualThreadController::doSwitch(SmBase &sm, std::uint32_t out_slot,
                                  std::uint32_t in_slot)
{
    // Save the outgoing context (it always has live registers: the block
    // stalled mid-flight) and restore the incoming one unless it is a
    // fresh block whose registers are initialized at dispatch.
    Cycle cost = oneWayCost();
    if (sm.blockStarted(in_slot))
        cost += oneWayCost();
    BAUVM_DLOG("Vtc: sm %u switches slot %u -> slot %u (%llu cycles)",
               sm.id(), out_slot, in_slot,
               static_cast<unsigned long long>(cost));
    sm.deactivateBlock(out_slot);
    sm.activateBlock(in_slot, cost);
    ++switches_;
    switch_cycles_ += cost;
}

void
VirtualThreadController::onBlockStalled(std::uint32_t sm_id,
                                        std::uint32_t slot)
{
    if (!config_.enabled || allowed_extra_ == 0)
        return;
    SmBase &sm = *sms_[sm_id];
    if (!sm.blockActive(slot) || !sm.blockFullyStalled(slot))
        return;
    const int in = pickCandidate(sm);
    if (in < 0)
        return; // a later onInactiveWarpReady will retry
    doSwitch(sm, slot, static_cast<std::uint32_t>(in));
}

void
VirtualThreadController::onInactiveWarpReady(std::uint32_t sm_id,
                                             std::uint32_t slot)
{
    if (!config_.enabled || allowed_extra_ == 0)
        return;
    SmBase &sm = *sms_[sm_id];
    if (!sm.switchInCandidate(slot))
        return;
    const int out = sm.firstFullyStalledActiveBlock();
    if (out < 0)
        return;
    doSwitch(sm, static_cast<std::uint32_t>(out), slot);
}

void
VirtualThreadController::onAdvice(OversubAdvice advice)
{
    if (!config_.enabled)
        return;
    const std::uint32_t before = allowed_extra_;
    switch (advice) {
      case OversubAdvice::Throttle:
        grow_streak_ = 0;
        if (allowed_extra_ > 0) {
            --allowed_extra_;
            ++throttles_;
        }
        break;
      case OversubAdvice::Grow:
        // Grow one block per SM only after a sustained run of healthy
        // lifetime windows ("in an incremental manner"); advice arrives
        // every batch, so raw growth would hit the cap immediately.
        if (++grow_streak_ >= kGrowHysteresis &&
            allowed_extra_ < config_.max_extra_blocks) {
            grow_streak_ = 0;
            ++allowed_extra_;
            ++grows_;
            if (top_up_)
                top_up_();
        }
        break;
      case OversubAdvice::NoChange:
        break;
    }
    if (hooks_.trace && hooks_.clock && allowed_extra_ != before) {
        hooks_.trace->counter(TraceEventType::OversubDegree,
                              kTraceTrackRuntime, hooks_.clock->now(),
                              allowed_extra_,
                              static_cast<std::uint32_t>(advice));
    }
}

} // namespace bauvm
