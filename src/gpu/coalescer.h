/**
 * @file
 * Memory-access coalescer: merges the per-lane addresses of one warp
 * memory instruction into the minimal set of line-granular transactions,
 * as the hardware coalescing unit does before the L1.
 */

#ifndef BAUVM_GPU_COALESCER_H_
#define BAUVM_GPU_COALESCER_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/gpu/lane_vec.h"
#include "src/sim/types.h"

namespace bauvm
{

/** Stateless coalescing helper with aggregate statistics. */
class Coalescer
{
  public:
    explicit Coalescer(std::uint32_t line_bytes);

    /**
     * Coalesces @p lane_addrs into unique line base addresses
     * (ascending). Also updates the divergence statistics.
     */
    std::vector<VAddr> coalesce(const std::vector<VAddr> &lane_addrs);

    /**
     * coalesce() into a caller-owned buffer (@p out is clear()ed
     * first): reusing one scratch vector across instructions keeps the
     * SM's issue loop allocation-free.
     */
    void coalesceInto(const VAddr *lane_addrs, std::size_t n,
                      std::vector<VAddr> *out);

    void
    coalesceInto(const LaneVec &lane_addrs, std::vector<VAddr> *out)
    {
        coalesceInto(lane_addrs.data(), lane_addrs.size(), out);
    }

    void
    coalesceInto(const std::vector<VAddr> &lane_addrs,
                 std::vector<VAddr> *out)
    {
        coalesceInto(lane_addrs.data(), lane_addrs.size(), out);
    }

    std::uint64_t memoryInstructions() const { return instructions_; }
    std::uint64_t transactions() const { return transactions_; }

    /** Average transactions per memory instruction (divergence proxy). */
    double
    transactionsPerInstruction() const
    {
        return instructions_
                   ? static_cast<double>(transactions_) / instructions_
                   : 0.0;
    }

  private:
    std::uint32_t line_bytes_;
    bool line_pow2_ = false;  //!< mask instead of modulo when pow2
    VAddr line_mask_ = 0;
    std::uint64_t instructions_ = 0;
    std::uint64_t transactions_ = 0;
};

} // namespace bauvm

#endif // BAUVM_GPU_COALESCER_H_
