/**
 * @file
 * Top-level GPU device: SMs, virtual-thread controller and block
 * dispatcher, with the kernel-launch loop.
 */

#ifndef BAUVM_GPU_GPU_H_
#define BAUVM_GPU_GPU_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/gpu/block_dispatcher.h"
#include "src/gpu/sm.h"
#include "src/gpu/virtual_thread.h"
#include "src/gpu/warp_program.h"
#include "src/mem/memory_hierarchy.h"
#include "src/sim/config.h"
#include "src/sim/event_queue.h"
#include "src/uvm/uvm_runtime.h"

namespace bauvm
{

/**
 * The simulated GPU device.
 *
 * The device itself is untemplated — only its SMs carry the observer
 * mode. The templated constructor builds SmT<M> instances matching the
 * hierarchy/runtime specialization it is handed; everything after
 * construction runs through SmBase.
 */
class Gpu : public SmListener
{
  public:
    /** @param hooks observers, fanned out to every SM and the VTC.
     *  @param sm_track_base first trace track for this GPU's SMs;
     *  multi-tenant runs give each tenant GPU a disjoint range while
     *  SM ids stay GPU-local (0 .. num_sms-1). */
    template <ObserverMode M>
    Gpu(const SimConfig &config, EventQueue &events,
        MemoryHierarchyT<M> &hierarchy, UvmRuntimeT<M> &runtime,
        const SimHooks &hooks = {}, std::uint32_t sm_track_base = 0);
    ~Gpu() override = default;

    /**
     * Executes @p kernel to completion (drains the event queue).
     * @return cycles elapsed during the kernel.
     */
    Cycle runKernel(const KernelInfo &kernel);

    /**
     * Starts @p kernel without draining the event queue. Multi-tenant
     * runs drive several GPUs off one shared queue: each tenant chains
     * its kernels from @p on_done while the others keep executing.
     * @p kernel must outlive the launch; @p on_done fires when the
     * kernel's last block retires (do not launch the next kernel
     * directly from inside it — schedule a zero-delay event instead,
     * the dispatcher is still finishing the old kernel).
     */
    void launchKernel(const KernelInfo *kernel,
                      std::function<void()> on_done);

    VirtualThreadController &vtc() { return vtc_; }
    BlockDispatcher &dispatcher() { return dispatcher_; }
    const SmBase &sm(std::uint32_t i) const { return *sms_[i]; }
    std::uint32_t numSms() const
    {
        return static_cast<std::uint32_t>(sms_.size());
    }

    std::uint64_t totalIssuedInstructions() const;

    // SmListener
    void onBlockStalled(std::uint32_t sm, std::uint32_t slot) override;
    void onBlockFinished(std::uint32_t sm, std::uint32_t slot) override;
    void onInactiveWarpReady(std::uint32_t sm,
                             std::uint32_t slot) override;

  private:
    SimConfig config_;
    EventQueue &events_;
    std::vector<std::unique_ptr<SmBase>> sms_;
    VirtualThreadController vtc_;
    BlockDispatcher dispatcher_;
    bool kernel_done_ = false;
};

extern template Gpu::Gpu(const SimConfig &, EventQueue &,
                         MemoryHierarchyT<ObserverMode::Dynamic> &,
                         UvmRuntimeT<ObserverMode::Dynamic> &,
                         const SimHooks &, std::uint32_t);
extern template Gpu::Gpu(const SimConfig &, EventQueue &,
                         MemoryHierarchyT<ObserverMode::None> &,
                         UvmRuntimeT<ObserverMode::None> &,
                         const SimHooks &, std::uint32_t);
extern template Gpu::Gpu(const SimConfig &, EventQueue &,
                         MemoryHierarchyT<ObserverMode::Trace> &,
                         UvmRuntimeT<ObserverMode::Trace> &,
                         const SimHooks &, std::uint32_t);
extern template Gpu::Gpu(const SimConfig &, EventQueue &,
                         MemoryHierarchyT<ObserverMode::Audit> &,
                         UvmRuntimeT<ObserverMode::Audit> &,
                         const SimHooks &, std::uint32_t);
extern template Gpu::Gpu(const SimConfig &, EventQueue &,
                         MemoryHierarchyT<ObserverMode::Both> &,
                         UvmRuntimeT<ObserverMode::Both> &,
                         const SimHooks &, std::uint32_t);

} // namespace bauvm

#endif // BAUVM_GPU_GPU_H_
