/**
 * @file
 * SweepRunner: executes a (workload x policy x config-variant)
 * evaluation matrix on a ThreadPool.
 *
 * Guarantees:
 *  - **Determinism.** Per-job seeds are pure functions of
 *    (base_seed, workload[, policy, variant]) and each job runs a
 *    private GpuUvmSystem, so the result vector is bit-identical for
 *    any worker count, including 1. Results are stored by matrix
 *    index, never by completion order.
 *  - **Failure isolation.** A cell that calls fatal()/panic() or
 *    throws is captured (ScopedAbortCapture) and reported as a failed
 *    cell with its error string; the rest of the sweep continues.
 *  - **Soft timeout.** With timeout_s > 0, a cell whose wall clock
 *    exceeds the budget is marked failed/timed_out. The simulation is
 *    cooperative (no thread kill), so the budget is checked when the
 *    cell finishes; it bounds what a sweep *accepts*, not what it
 *    spends.
 *  - **Progress.** After every cell a progress callback fires exactly
 *    once (default: an stderr [done/total] line with rate and ETA).
 */

#ifndef BAUVM_RUNNER_SWEEP_RUNNER_H_
#define BAUVM_RUNNER_SWEEP_RUNNER_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "src/core/experiment.h"
#include "src/core/presets.h"
#include "src/runner/job.h"
#include "src/runner/sweep_result.h"

namespace bauvm
{

/** Everything that defines one sweep. */
struct SweepSpec {
    std::string bench;                  //!< name stamped into the JSON
    std::vector<std::string> workloads;
    std::vector<Policy> policies;
    /** Config mutations; empty means one default variant. */
    std::vector<ConfigVariant> variants;
    BenchOptions opt;                   //!< scale/ratio/seed/jobs/...
    bool verbose = true;                //!< default progress reporter
};

class SweepRunner
{
  public:
    /**
     * @param done/@param total let reporters render "[done/total]";
     * fired exactly once per cell, serialized (never concurrently).
     */
    using ProgressFn = std::function<void(
        const CellOutcome &, std::size_t done, std::size_t total)>;

    explicit SweepRunner(SweepSpec spec);

    /** Replaces the default stderr reporter (nullptr = silent). */
    void setProgress(ProgressFn fn);

    /** Number of cells the spec expands to. */
    std::size_t cellCount() const;

    /** Runs the whole matrix; blocks until every cell finished. */
    SweepResult run();

  private:
    SweepSpec spec_;
    ProgressFn progress_;
    bool progress_overridden_ = false;
};

} // namespace bauvm

#endif // BAUVM_RUNNER_SWEEP_RUNNER_H_
