#include "src/runner/job.h"

namespace bauvm
{

namespace
{

/** splitmix64 finalizer: diffuses a 64-bit state into a seed. */
std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** FNV-1a over a string, folded into an existing hash state. */
std::uint64_t
mixString(std::uint64_t h, const std::string &s)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    // Separator so ("ab","c") and ("a","bc") mix differently.
    h ^= 0xff;
    h *= 0x100000001b3ULL;
    return h;
}

} // namespace

std::uint64_t
deriveWorkloadSeed(std::uint64_t base_seed, const std::string &workload)
{
    std::uint64_t h = 0xcbf29ce484222325ULL ^ base_seed;
    h = mixString(h, workload);
    std::uint64_t seed = splitmix64(h);
    // seed==0 is a legal but degenerate xoshiro state; avoid it.
    return seed ? seed : 1;
}

std::uint64_t
deriveJobSeed(std::uint64_t base_seed, const std::string &workload,
              Policy policy, const std::string &variant)
{
    std::uint64_t h = 0xcbf29ce484222325ULL ^ base_seed;
    h = mixString(h, workload);
    h = mixString(h, policyName(policy));
    h = mixString(h, variant);
    std::uint64_t seed = splitmix64(h);
    return seed ? seed : 1;
}

} // namespace bauvm
