#include "src/runner/parallel_units.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>
#include <vector>

namespace bauvm
{

void
runUnits(std::size_t count, std::size_t threads,
         const std::function<void(std::size_t)> &unit)
{
    if (count == 0)
        return;
    if (threads <= 1 || count == 1) {
        // Serial reference path: first exception propagates directly.
        for (std::size_t i = 0; i < count; ++i)
            unit(i);
        return;
    }

    std::vector<std::exception_ptr> errors(count);
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            try {
                unit(i);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
    };

    const std::size_t spawn = std::min(threads, count) - 1;
    std::vector<std::thread> pool;
    pool.reserve(spawn);
    for (std::size_t t = 0; t < spawn; ++t)
        pool.emplace_back(worker);
    worker(); // the calling thread is worker 0
    for (std::thread &t : pool)
        t.join();

    for (std::size_t i = 0; i < count; ++i)
        if (errors[i])
            std::rethrow_exception(errors[i]);
}

} // namespace bauvm
