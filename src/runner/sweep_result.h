/**
 * @file
 * Structured aggregation of one sweep: every cell outcome plus the
 * sweep-level metadata, exportable as schema-versioned JSON alongside
 * the Table/CSV output the bench binaries already print.
 *
 * JSON schema "bauvm.sweep/1.3":
 * {
 *   "schema": "bauvm.sweep/1.3",
 *   "bench": "<bench name>",
 *   "base_seed": u64, "scale": "tiny|small|medium|large",
 *   "ratio": f64, "jobs": u64, "elapsed_s": f64,
 *   "cells": [
 *     { "workload": str, "policy": str, "variant": str,
 *       "seed": u64, "job_seed": u64,
 *       "ok": bool, "timed_out": bool, "error": str, "wall_s": f64,
 *       "digest": str, "worker_pid": u64, "hostname": str,
 *       "cached": bool,
 *       "result": { <RunResult scalar fields> }   // present iff ok
 *     }, ...
 *   ]
 * }
 * RunResult additionally carries the simulator's own throughput
 * ("sim_events", "host_wall_s", "events_per_sec"); the latter two are
 * host wall-clock derived and therefore nondeterministic — additive
 * within schema /1, excluded from determinism comparisons.
 * Minor /1.1 adds the deterministic memory data path counters
 * "translations", "tlb_hit_rate" and "faults_per_kcycle"; consumers
 * keyed on the "bauvm.sweep/1" prefix keep working.
 * Minor /1.2 adds per-cell provenance for sharded/resumed sweeps:
 * "digest" (the content address from cell_spec.h — deterministic),
 * plus "worker_pid", "hostname" and "cached", which record *where* a
 * result came from and are excluded from determinism comparisons
 * alongside the wall-clock fields (see ci/check_sweep_equiv.py).
 * Cells appear in deterministic matrix order (variant-major, then
 * workload, then policy), never in completion order.
 */

#ifndef BAUVM_RUNNER_SWEEP_RESULT_H_
#define BAUVM_RUNNER_SWEEP_RESULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/runner/job.h"
#include "src/workloads/workload.h"

namespace bauvm
{

class JsonWriter;

/**
 * Serializes one cell outcome as a JSON object (the element shape of
 * the "cells" array above). With @p with_batch_records, the per-batch
 * records are appended as "batch_records": [[begin, end, pages], ...]
 * — used by the on-disk result cache so a replayed cell keeps the
 * data Figs 12-16 derive from; the sweep export itself omits them.
 */
void writeCellJson(JsonWriter &w, const CellOutcome &cell,
                   bool with_batch_records = false);

struct SweepResult {
    /**
     * Major bumped whenever the JSON layout changes incompatibly;
     * minor bumped for additive fields within the same major.
     */
    static constexpr const char *kSchema = "bauvm.sweep/1.3";

    std::string bench;          //!< producing binary, e.g. "fig11_speedup"
    std::uint64_t base_seed = 0;
    WorkloadScale scale = WorkloadScale::Small;
    double ratio = 0.0;
    std::size_t jobs = 1;       //!< worker threads actually used
    double elapsed_s = 0.0;     //!< whole-sweep wall clock

    std::vector<CellOutcome> cells; //!< deterministic matrix order

    /** Cells with ok == false. */
    std::size_t failedCells() const;

    /**
     * Finds a cell by coordinates; nullptr when absent. Failed cells
     * are still found (check ->ok).
     */
    const CellOutcome *find(const std::string &workload, Policy policy,
                            const std::string &variant = "") const;

    /** Serializes the whole sweep as schema-versioned JSON.
     *  @param pretty  false = single-line form for NDJSON embedding. */
    std::string toJson(bool pretty = true) const;

    /**
     * Writes toJson() to @p path ("-" = stdout). @return false (with a
     * warn) when the file cannot be written.
     */
    bool writeJson(const std::string &path) const;
};

} // namespace bauvm

#endif // BAUVM_RUNNER_SWEEP_RESULT_H_
