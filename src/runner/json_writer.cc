#include "src/runner/json_writer.h"

#include <cmath>
#include <cstdio>

#include "src/sim/log.h"

namespace bauvm
{

JsonWriter::JsonWriter(bool pretty)
    : pretty_(pretty)
{
}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

void
JsonWriter::comma()
{
    if (first_in_scope_.empty())
        return;
    if (first_in_scope_.back()) {
        first_in_scope_.back() = false;
    } else {
        out_ += ',';
    }
    if (pretty_) {
        out_ += '\n';
        indent();
    }
}

void
JsonWriter::indent()
{
    out_.append(2 * first_in_scope_.size(), ' ');
}

void
JsonWriter::key(const std::string &k)
{
    comma();
    out_ += '"';
    out_ += escape(k);
    out_ += pretty_ ? "\": " : "\":";
}

void
JsonWriter::raw(const std::string &s)
{
    out_ += s;
}

void
JsonWriter::beginObject()
{
    comma();
    out_ += '{';
    first_in_scope_.push_back(true);
}

void
JsonWriter::beginObject(const std::string &k)
{
    key(k);
    out_ += '{';
    first_in_scope_.push_back(true);
}

void
JsonWriter::endObject()
{
    if (first_in_scope_.empty())
        panic("JsonWriter: endObject without beginObject");
    const bool empty = first_in_scope_.back();
    first_in_scope_.pop_back();
    if (pretty_ && !empty) {
        out_ += '\n';
        indent();
    }
    out_ += '}';
}

void
JsonWriter::beginArray()
{
    comma();
    out_ += '[';
    first_in_scope_.push_back(true);
}

void
JsonWriter::beginArray(const std::string &k)
{
    key(k);
    out_ += '[';
    first_in_scope_.push_back(true);
}

void
JsonWriter::endArray()
{
    if (first_in_scope_.empty())
        panic("JsonWriter: endArray without beginArray");
    const bool empty = first_in_scope_.back();
    first_in_scope_.pop_back();
    if (pretty_ && !empty) {
        out_ += '\n';
        indent();
    }
    out_ += ']';
}

void
JsonWriter::field(const std::string &k, const std::string &v)
{
    key(k);
    raw('"' + escape(v) + '"');
}

void
JsonWriter::field(const std::string &k, const char *v)
{
    field(k, std::string(v));
}

void
JsonWriter::field(const std::string &k, bool v)
{
    key(k);
    raw(v ? "true" : "false");
}

void
JsonWriter::field(const std::string &k, std::uint64_t v)
{
    key(k);
    raw(std::to_string(v));
}

void
JsonWriter::field(const std::string &k, std::int64_t v)
{
    key(k);
    raw(std::to_string(v));
}

void
JsonWriter::field(const std::string &k, double v)
{
    key(k);
    if (!std::isfinite(v)) {
        // JSON has no inf/nan; export as null.
        raw("null");
        return;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    raw(buf);
}

void
JsonWriter::rawField(const std::string &k, const std::string &raw_json)
{
    key(k);
    raw(raw_json);
}

void
JsonWriter::rawValue(const std::string &raw_json)
{
    comma();
    raw(raw_json);
}

void
JsonWriter::value(const std::string &v)
{
    comma();
    raw('"' + escape(v) + '"');
}

void
JsonWriter::value(std::uint64_t v)
{
    comma();
    raw(std::to_string(v));
}

void
JsonWriter::value(double v)
{
    comma();
    if (!std::isfinite(v)) {
        raw("null");
        return;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    raw(buf);
}

std::string
JsonWriter::str() const
{
    if (!first_in_scope_.empty())
        panic("JsonWriter: %zu unclosed scope(s)",
              first_in_scope_.size());
    return out_ + (pretty_ ? "\n" : "");
}

} // namespace bauvm
