/**
 * @file
 * Declarative cell specifications and content addresses.
 *
 * A CellSpec is the wire-friendly description of one sweep cell: the
 * (workload, policy, variant, scale, seed) coordinates plus a list of
 * *declarative* config overrides (named knob = numeric value) instead
 * of the in-process std::function mutations SweepSpec carries. It is
 * what the sweep service ships to worker processes and what both the
 * service and the in-process SweepRunner digest for the
 * content-addressed result cache.
 *
 * Content addressing: cellKey() canonicalizes the *final* SimConfig —
 * every field, in a fixed order, doubles at full precision — together
 * with the workload name, scale and the producing git revision, and
 * digestHex() folds that key into a 128-bit hex digest. Keying on the
 * final config (not on how it was reached) means a cell produced via a
 * policy preset, a named variant mutation, or a declarative override
 * dedupes identically, and any config change invalidates the address.
 * Function-valued variant mutations are code, so the git revision in
 * the key is what keys their behaviour.
 *
 * executeCell() is the one shared cell executor: abort capture, soft
 * timeout, optional per-cell trace flush, and provenance stamping
 * (digest, worker pid, hostname). SweepRunner's thread-pool path and
 * the sweep service's forked workers both run cells through it, which
 * is what keeps sharded results bit-identical to serial ones.
 */

#ifndef BAUVM_RUNNER_CELL_SPEC_H_
#define BAUVM_RUNNER_CELL_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/presets.h"
#include "src/core/tenant.h"
#include "src/runner/job.h"
#include "src/workloads/workload.h"

namespace bauvm
{

/**
 * One declarative config mutation: a registered knob name (e.g.
 * "uvm.fault_buffer_entries") and its numeric value. Booleans are 0/1.
 */
struct ConfigOverride {
    std::string key;
    double value = 0.0;
};

/**
 * Applies a registered override to @p config. @return false when the
 * key is unknown (the config is untouched).
 */
bool applyConfigOverride(SimConfig &config, const std::string &key,
                         double value);

/** All registered override keys, sorted, for diagnostics/usage. */
std::vector<std::string> knownOverrideKeys();

/** The declarative, serializable description of one sweep cell. */
struct CellSpec {
    std::string workload;
    Policy policy = Policy::Baseline;
    std::string variant; //!< label only; body is in `overrides`
    std::vector<ConfigOverride> overrides;
    WorkloadScale scale = WorkloadScale::Small;
    double ratio = 0.5;
    std::uint64_t base_seed = 1;
    bool audit = false;
    /** Non-empty = a multi-tenant cell: the workloads run
     *  concurrently on one GPU (see GpuUvmSystem::run(specs)) and
     *  `workload` is only their display label. Each entry's scale is
     *  expected to equal `scale`. */
    std::vector<TenantSpec> tenants;
};

/**
 * Builds the final SimConfig for @p spec: paperConfig(ratio, derived
 * workload seed) + applyPolicy + overrides (fatal() on an unknown
 * key) + audit flag.
 */
SimConfig cellConfig(const CellSpec &spec);

/** deriveJobSeed for the spec's coordinates (exported provenance). */
std::uint64_t cellJobSeed(const CellSpec &spec);

/**
 * Canonical, order-fixed serialization of every SimConfig field.
 * Doubles print with %.17g so the string round-trips exactly.
 */
std::string canonicalConfigString(const SimConfig &config);

/**
 * The full content-address key of one cell:
 * "bauvm.cell/3|<git_rev>|<workload>|<scale>|<stream params>|
 * <tenants>|<canonical config>". The config embeds the seed and
 * memory ratio, so they need no separate lanes; the graph-stream
 * parameters (graphStreamConfig()) get their own lane because they
 * live outside SimConfig, and so does the tenant mix (workload,
 * quota, scale per tenant — empty for single-tenant cells).
 */
std::string cellKey(const std::string &workload, WorkloadScale scale,
                    const SimConfig &config,
                    const std::string &git_rev,
                    const std::vector<TenantSpec> &tenants = {});

/** 128-bit (32 hex chars) digest of @p key: two independent FNV-1a
 *  lanes, each splitmix-finalized. */
std::string digestHex(const std::string &key);

/**
 * The producing git revision baked in at configure time
 * (BAUVM_GIT_REV compile definition), overridable with the
 * BAUVM_GIT_REV environment variable; "unknown" when neither exists.
 */
std::string gitRev();

/** Cached gethostname(), "unknown" on failure. */
std::string hostName();

/** Everything executeCell() needs to run one cell. */
struct CellExecArgs {
    std::string workload;
    Policy policy = Policy::Baseline;
    std::string variant;
    std::uint64_t job_seed = 0; //!< exported unique per-cell seed
    WorkloadScale scale = WorkloadScale::Small;
    SimConfig config;           //!< final config (seed already set)
    double soft_timeout_s = 0.0;
    std::string git_rev;        //!< for the digest; gitRev() if empty

    /** Host threads inside this cell. A multi-tenant cell runs its
     *  per-tenant solo anchors and the mix as independent units on
     *  this many threads; results are merged in fixed unit order, so
     *  any value produces the bit-identical outcome of 1 (serial).
     *  Excluded from cellKey() — it cannot change the payload. */
    std::size_t cell_threads = 1;

    // In-process tracing (sweep service workers leave these empty).
    std::string trace_dir;      //!< "" disables the per-cell flush
    std::string trace_stem;     //!< file stem inside trace_dir
    std::string trace_bench;    //!< TraceMeta.bench
    double trace_ratio = 0.0;   //!< TraceMeta.ratio

    /** Non-empty = run a tenant mix instead of `workload`: each
     *  tenant first runs solo (same ratio and policy, its derived
     *  seed) to anchor the per-tenant slowdown, then the mix runs
     *  concurrently and result.tenants[i].slowdown is filled in. */
    std::vector<TenantSpec> tenants;
};

/**
 * Runs one cell with abort capture; never throws. Stamps provenance:
 * digest (pure function of the config — deterministic), worker pid,
 * hostname, and the soft-timeout verdict. config.trace.enabled is
 * derived from trace_dir.
 */
CellOutcome executeCell(const CellExecArgs &args);

} // namespace bauvm

#endif // BAUVM_RUNNER_CELL_SPEC_H_
