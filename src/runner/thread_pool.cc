#include "src/runner/thread_pool.h"

#include <algorithm>

namespace bauvm
{

ThreadPool::ThreadPool(std::size_t workers)
{
    if (workers == 0)
        workers = hardwareJobs();
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    shutdown();
}

std::size_t
ThreadPool::hardwareJobs()
{
    const unsigned n = std::thread::hardware_concurrency();
    return std::max(1u, n);
}

bool
ThreadPool::submit(JobQueue::Thunk thunk)
{
    {
        std::lock_guard<std::mutex> lock(idle_mutex_);
        ++pending_;
    }
    if (!queue_.push(std::move(thunk))) {
        std::lock_guard<std::mutex> lock(idle_mutex_);
        --pending_;
        return false;
    }
    return true;
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(idle_mutex_);
    idle_.wait(lock, [this] { return pending_ == 0; });
}

void
ThreadPool::shutdown()
{
    queue_.close();
    for (auto &t : workers_) {
        if (t.joinable())
            t.join();
    }
    workers_.clear();
}

void
ThreadPool::workerLoop()
{
    JobQueue::Thunk thunk;
    while (queue_.pop(&thunk)) {
        thunk();
        thunk = nullptr; // release captures before blocking again
        {
            std::lock_guard<std::mutex> lock(idle_mutex_);
            --pending_;
        }
        idle_.notify_all();
    }
}

} // namespace bauvm
