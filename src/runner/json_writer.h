/**
 * @file
 * A minimal dependency-free JSON emitter for the sweep export.
 *
 * Write-only and streaming: callers open objects/arrays, add keyed or
 * plain values, and take the final string. The writer inserts commas
 * and indentation; it does not validate that the caller closes every
 * scope (str() asserts balance via panic()).
 */

#ifndef BAUVM_RUNNER_JSON_WRITER_H_
#define BAUVM_RUNNER_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace bauvm
{

class JsonWriter
{
  public:
    /** @param pretty  two-space indentation and newlines when true. */
    explicit JsonWriter(bool pretty = true);

    // Containers. The key overloads are for members of an object.
    void beginObject();
    void beginObject(const std::string &key);
    void endObject();
    void beginArray();
    void beginArray(const std::string &key);
    void endArray();

    // Object members.
    void field(const std::string &key, const std::string &value);
    void field(const std::string &key, const char *value);
    void field(const std::string &key, bool value);
    void field(const std::string &key, std::uint64_t value);
    void field(const std::string &key, std::int64_t value);
    void field(const std::string &key, double value);

    // Bare array elements.
    void value(const std::string &v);
    void value(std::uint64_t v);
    void value(double v);

    /**
     * Splices @p raw_json — an already-serialized JSON value — as the
     * member @p key. The caller owns its validity; commas/indentation
     * around it are still managed. Used to embed compact sub-documents
     * (a cached cell, a merged sweep) without re-parsing.
     */
    void rawField(const std::string &key, const std::string &raw_json);

    /** rawField()'s array twin: splices @p raw_json as one element. */
    void rawValue(const std::string &raw_json);

    /** Finished document. panic()s if scopes are unbalanced. */
    std::string str() const;

    /** JSON string escaping (quotes not included). */
    static std::string escape(const std::string &s);

  private:
    void comma();
    void indent();
    void key(const std::string &k);
    void raw(const std::string &s);

    std::string out_;
    std::vector<bool> first_in_scope_;
    bool pretty_;
};

} // namespace bauvm

#endif // BAUVM_RUNNER_JSON_WRITER_H_
