#include "src/runner/sweep_result.h"

#include <cstdio>

#include "src/core/experiment.h"
#include "src/runner/json_writer.h"
#include "src/sim/log.h"

namespace bauvm
{

std::size_t
SweepResult::failedCells() const
{
    std::size_t n = 0;
    for (const auto &c : cells)
        n += c.ok ? 0 : 1;
    return n;
}

const CellOutcome *
SweepResult::find(const std::string &workload, Policy policy,
                  const std::string &variant) const
{
    for (const auto &c : cells) {
        if (c.workload == workload && c.policy == policy &&
            c.variant == variant)
            return &c;
    }
    return nullptr;
}

namespace
{

void
writeRunResult(JsonWriter &w, const RunResult &r)
{
    w.beginObject("result");
    w.field("cycles", static_cast<std::uint64_t>(r.cycles));
    w.field("kernels", r.kernels);
    w.field("instructions", r.instructions);
    w.field("footprint_bytes", r.footprint_bytes);
    w.field("capacity_pages", r.capacity_pages);
    w.field("batches", r.batches);
    w.field("avg_batch_pages", r.avg_batch_pages);
    w.field("avg_batch_time", r.avg_batch_time);
    w.field("avg_handling_time", r.avg_handling_time);
    w.field("demand_pages", r.demand_pages);
    w.field("prefetched_pages", r.prefetched_pages);
    w.field("migrations", r.migrations);
    w.field("evictions", r.evictions);
    w.field("premature_evictions", r.premature_evictions);
    w.field("premature_rate", r.premature_rate);
    w.field("context_switches", r.context_switches);
    w.field("context_switch_cycles", r.context_switch_cycles);
    w.field("pcie_h2d_bytes", r.pcie_h2d_bytes);
    w.field("pcie_d2h_bytes", r.pcie_d2h_bytes);
    // Memory data path (added in schema minor /1.1; deterministic).
    w.field("translations", r.translations);
    w.field("tlb_hit_rate", r.tlb_hit_rate);
    w.field("faults_per_kcycle", r.faults_per_kcycle);
    // Multi-tenant cells (added in schema minor /1.3; deterministic).
    if (!r.tenants.empty()) {
        w.beginArray("tenants");
        for (const TenantResult &t : r.tenants) {
            w.beginObject();
            w.field("id", static_cast<std::uint64_t>(t.id));
            w.field("workload", t.workload);
            w.field("seed", t.seed);
            w.field("cycles", static_cast<std::uint64_t>(t.cycles));
            w.field("kernels", t.kernels);
            w.field("instructions", t.instructions);
            w.field("footprint_bytes", t.footprint_bytes);
            w.field("quota_pages", t.quota_pages);
            w.field("demand_pages", t.demand_pages);
            w.field("evictions_caused", t.evictions_caused);
            w.field("evictions_suffered", t.evictions_suffered);
            w.field("peak_resident_pages", t.peak_resident_pages);
            w.field("avg_lifetime_cycles", t.avg_lifetime_cycles);
            w.field("slowdown", t.slowdown);
            w.endObject();
        }
        w.endArray();
    }
    // Simulator self-measurement (host_wall_s / events_per_sec are
    // nondeterministic; consumers must not diff them across runs).
    w.field("sim_events", r.sim_events);
    w.field("host_wall_s", r.host_wall_s);
    w.field("events_per_sec", r.events_per_sec);
    w.endObject();
}

} // namespace

void
writeCellJson(JsonWriter &w, const CellOutcome &c,
              bool with_batch_records)
{
    w.beginObject();
    w.field("workload", c.workload);
    w.field("policy", policyName(c.policy));
    w.field("variant", c.variant);
    w.field("seed", c.seed);
    w.field("job_seed", c.job_seed);
    w.field("ok", c.ok);
    w.field("timed_out", c.timed_out);
    w.field("error", c.error);
    w.field("wall_s", c.wall_s);
    w.field("digest", c.digest);
    w.field("worker_pid", c.worker_pid);
    w.field("hostname", c.hostname);
    w.field("cached", c.from_cache);
    if (c.ok) {
        writeRunResult(w, c.result);
        if (with_batch_records) {
            // All seven BatchRecord fields, positionally, so a cached
            // cell replays Figs 3/12-16 without loss.
            w.beginArray("batch_records");
            for (const BatchRecord &b : c.result.batch_records) {
                w.beginArray();
                w.value(static_cast<std::uint64_t>(b.begin));
                w.value(static_cast<std::uint64_t>(b.first_transfer));
                w.value(static_cast<std::uint64_t>(b.end));
                w.value(static_cast<std::uint64_t>(b.fault_pages));
                w.value(static_cast<std::uint64_t>(b.prefetch_pages));
                w.value(
                    static_cast<std::uint64_t>(b.duplicate_faults));
                w.value(b.migrated_bytes);
                w.endArray();
            }
            w.endArray();
        }
    }
    w.endObject();
}

std::string
SweepResult::toJson(bool pretty) const
{
    JsonWriter w(pretty);
    w.beginObject();
    w.field("schema", kSchema);
    w.field("bench", bench);
    w.field("base_seed", base_seed);
    w.field("scale", scaleName(scale));
    w.field("ratio", ratio);
    w.field("jobs", static_cast<std::uint64_t>(jobs));
    w.field("elapsed_s", elapsed_s);
    w.beginArray("cells");
    for (const auto &c : cells)
        writeCellJson(w, c);
    w.endArray();
    w.endObject();
    return w.str();
}

bool
SweepResult::writeJson(const std::string &path) const
{
    const std::string doc = toJson();
    if (path == "-") {
        std::fwrite(doc.data(), 1, doc.size(), stdout);
        return true;
    }
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("sweep: cannot open '%s' for writing", path.c_str());
        return false;
    }
    const std::size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    if (n != doc.size()) {
        warn("sweep: short write to '%s'", path.c_str());
        return false;
    }
    inform("sweep: wrote %zu cells to %s", cells.size(), path.c_str());
    return true;
}

} // namespace bauvm
