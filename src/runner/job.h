/**
 * @file
 * Job and outcome types shared by the sweep runner: one job is one
 * (workload x policy x config-variant) cell of an evaluation matrix,
 * and one outcome is its captured result or failure.
 *
 * Seeding discipline: every job gets a deterministic seed derived only
 * from (base_seed, workload) — deliberately *not* from the policy or
 * variant — so that every policy of a workload simulates the identical
 * workload build and speedup ratios stay meaningful. A second, fully
 * unique per-job seed (base_seed, workload, policy, variant) is also
 * derived and exported for any future stochastic per-cell behaviour.
 * Both derivations are pure functions, so a parallel sweep is
 * bit-identical to a serial one.
 */

#ifndef BAUVM_RUNNER_JOB_H_
#define BAUVM_RUNNER_JOB_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/core/presets.h"
#include "src/core/system.h"

namespace bauvm
{

/**
 * A named config mutation applied on top of paperConfig + applyPolicy.
 * The default variant has an empty label and no mutation.
 */
struct ConfigVariant {
    std::string label;
    std::function<void(SimConfig &)> mutate;
};

/** One schedulable cell of the sweep matrix. */
struct SweepJob {
    std::size_t index = 0;     //!< position in the result vector
    std::string workload;
    Policy policy = Policy::Baseline;
    std::string variant;       //!< ConfigVariant label ("" = default)
    std::size_t variant_index = 0; //!< into SweepSpec::variants
    std::uint64_t seed = 0;     //!< workload-level seed (see file doc)
    std::uint64_t job_seed = 0; //!< unique per-job seed (exported)
};

/** The captured result (or failure) of one sweep cell. */
struct CellOutcome {
    std::string workload;
    Policy policy = Policy::Baseline;
    std::string variant;
    std::uint64_t seed = 0;
    std::uint64_t job_seed = 0;

    bool ok = false;
    bool timed_out = false;
    std::string error;     //!< fatal()/panic()/exception text when !ok
    double wall_s = 0.0;   //!< host wall-clock for this cell

    // Provenance (schema bauvm.sweep/1.2): which process produced the
    // result, where, and under which content address. The digest is a
    // pure function of the cell's final config (see cell_spec.h) and
    // therefore deterministic; the rest is host-side provenance and
    // MUST stay out of determinism comparisons.
    std::string digest;    //!< 32-hex content address of the cell
    std::uint64_t worker_pid = 0; //!< pid of the producing process
    std::string hostname;  //!< host of the producing process
    bool from_cache = false; //!< replayed from the result cache

    RunResult result;      //!< valid only when ok
};

/**
 * Workload-level seed: mixes @p base_seed with the workload name.
 * Identical for every policy/variant of the workload (see file doc).
 */
std::uint64_t deriveWorkloadSeed(std::uint64_t base_seed,
                                 const std::string &workload);

/** Globally unique per-job seed; exported in SweepResult JSON. */
std::uint64_t deriveJobSeed(std::uint64_t base_seed,
                            const std::string &workload,
                            Policy policy, const std::string &variant);

} // namespace bauvm

#endif // BAUVM_RUNNER_JOB_H_
