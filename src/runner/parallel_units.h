/**
 * @file
 * Deterministic intra-cell work-unit pool.
 *
 * A sweep cell can contain several *independent* simulations — a
 * multi-tenant cell runs one solo anchor per tenant plus the mix
 * itself, each on its own GpuUvmSystem and event queue. runUnits()
 * executes those units on up to `threads` host threads. Determinism
 * is by construction, not by locking discipline: units share no
 * mutable simulation state (the only shared structure they touch, the
 * graph cache, is internally synchronized and value-deterministic),
 * every unit writes results only into its own index of caller-owned
 * arrays, and the caller merges them in fixed unit order after the
 * join. Any thread count therefore produces bit-identical output to
 * the serial loop.
 *
 * Error handling mirrors the serial loop's observable behavior as
 * closely as a parallel run can: every unit runs to completion (no
 * cancellation), each exception is captured per unit, and after the
 * join the exception of the lowest-index failing unit is rethrown —
 * the one the serial loop would have thrown first (later units that
 * the serial loop would have skipped have run here; their side
 * effects are confined to their own slots).
 *
 * Units that use log.h's fatal()/panic() must install their own
 * ScopedAbortCapture: the capture depth is thread-local, so a guard
 * on the spawning thread does not cover workers.
 */

#ifndef BAUVM_RUNNER_PARALLEL_UNITS_H_
#define BAUVM_RUNNER_PARALLEL_UNITS_H_

#include <cstddef>
#include <functional>

namespace bauvm
{

/**
 * Invokes @p unit(i) exactly once for every i in [0, count) on at
 * most @p threads host threads (1 or 0 = serial, in index order, on
 * the calling thread). Blocks until all units finish, then rethrows
 * the lowest-index captured exception, if any.
 */
void runUnits(std::size_t count, std::size_t threads,
              const std::function<void(std::size_t)> &unit);

} // namespace bauvm

#endif // BAUVM_RUNNER_PARALLEL_UNITS_H_
