/**
 * @file
 * A closable multi-producer/multi-consumer FIFO of thunks, the feed
 * between SweepRunner (producer) and ThreadPool workers (consumers).
 *
 * Shared-nothing by design: jobs carry everything they need, the queue
 * only hands them out, so there is no work stealing and no cross-job
 * state to race on.
 */

#ifndef BAUVM_RUNNER_JOB_QUEUE_H_
#define BAUVM_RUNNER_JOB_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>

namespace bauvm
{

class JobQueue
{
  public:
    using Thunk = std::function<void()>;

    JobQueue() = default;
    JobQueue(const JobQueue &) = delete;
    JobQueue &operator=(const JobQueue &) = delete;

    /**
     * Enqueues a thunk. @return false (dropping the thunk) when the
     * queue has been closed.
     */
    bool push(Thunk thunk);

    /**
     * Blocks until a thunk is available or the queue is closed and
     * drained. @return false on closed-and-drained (worker exit).
     */
    bool pop(Thunk *out);

    /** Closes the queue: push() rejects, pop() drains then fails. */
    void close();

    /** Pending (not yet popped) thunks. */
    std::size_t size() const;

    bool closed() const;

  private:
    mutable std::mutex mutex_;
    std::condition_variable ready_;
    std::deque<Thunk> queue_;
    bool closed_ = false;
};

} // namespace bauvm

#endif // BAUVM_RUNNER_JOB_QUEUE_H_
