#include "src/runner/cell_spec.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>

#include "src/core/experiment.h"
#include "src/core/system.h"
#include "src/graph/stream/csr_stream_builder.h"
#include "src/runner/parallel_units.h"
#include "src/sim/log.h"
#include "src/trace/trace_export.h"
#include "src/workloads/workload_registry.h"

#ifndef BAUVM_GIT_REV
#define BAUVM_GIT_REV "unknown"
#endif

namespace bauvm
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Knob {
    const char *key;
    void (*set)(SimConfig &, double);
};

std::uint64_t
asU64(double v)
{
    return static_cast<std::uint64_t>(v);
}

std::uint32_t
asU32(double v)
{
    return static_cast<std::uint32_t>(v);
}

bool
asBool(double v)
{
    return v != 0.0;
}

/**
 * The declarative knob registry. Every key a sweep request may carry
 * in a variant's "overrides" maps onto exactly one SimConfig field.
 * Kept sorted by key for knownOverrideKeys().
 */
const Knob kKnobs[] = {
    {"etc.capacity_compression",
     [](SimConfig &c, double v) { c.etc.capacity_compression = asBool(v); }},
    {"etc.compression_latency",
     [](SimConfig &c, double v) { c.etc.compression_latency = asU64(v); }},
    {"etc.compression_ratio",
     [](SimConfig &c, double v) { c.etc.compression_ratio = v; }},
    {"etc.enabled",
     [](SimConfig &c, double v) { c.etc.enabled = asBool(v); }},
    {"etc.epoch_cycles",
     [](SimConfig &c, double v) { c.etc.epoch_cycles = asU64(v); }},
    {"etc.memory_aware_throttling",
     [](SimConfig &c, double v) {
         c.etc.memory_aware_throttling = asBool(v);
     }},
    {"gpu.issue_width",
     [](SimConfig &c, double v) { c.gpu.issue_width = asU32(v); }},
    {"gpu.max_blocks_per_sm",
     [](SimConfig &c, double v) { c.gpu.max_blocks_per_sm = asU32(v); }},
    {"gpu.max_threads_per_sm",
     [](SimConfig &c, double v) { c.gpu.max_threads_per_sm = asU32(v); }},
    {"gpu.mem_op_overhead_cycles",
     [](SimConfig &c, double v) {
         c.gpu.mem_op_overhead_cycles = asU64(v);
     }},
    {"gpu.num_sms",
     [](SimConfig &c, double v) { c.gpu.num_sms = asU32(v); }},
    {"mem.dram_bytes_per_cycle",
     [](SimConfig &c, double v) {
         c.mem.dram_bytes_per_cycle = asU32(v);
     }},
    {"mem.dram_latency",
     [](SimConfig &c, double v) { c.mem.dram_latency = asU64(v); }},
    {"mem.mshrs_per_sm",
     [](SimConfig &c, double v) { c.mem.mshrs_per_sm = asU32(v); }},
    {"mem.walker_threads",
     [](SimConfig &c, double v) { c.mem.walker_threads = asU32(v); }},
    {"memory_ratio",
     [](SimConfig &c, double v) { c.memory_ratio = v; }},
    {"mt.policy",
     [](SimConfig &c, double v) {
         if (v < 0.0 || v > 2.0)
             fatal("mt.policy override must be 0 (free-for-all), "
                   "1 (strict) or 2 (proportional)");
         c.mt.policy = static_cast<SharePolicy>(asU32(v));
     }},
    {"to.ctx_switch_bytes_per_cycle",
     [](SimConfig &c, double v) {
         c.to.ctx_switch_bytes_per_cycle = asU32(v);
     }},
    {"to.enabled",
     [](SimConfig &c, double v) { c.to.enabled = asBool(v); }},
    {"to.ideal_ctx_switch",
     [](SimConfig &c, double v) { c.to.ideal_ctx_switch = asBool(v); }},
    {"to.initial_extra_blocks",
     [](SimConfig &c, double v) {
         c.to.initial_extra_blocks = asU32(v);
     }},
    {"to.max_extra_blocks",
     [](SimConfig &c, double v) { c.to.max_extra_blocks = asU32(v); }},
    {"to.switch_on_memory_stall",
     [](SimConfig &c, double v) {
         c.to.switch_on_memory_stall = asBool(v);
     }},
    {"uvm.fault_buffer_entries",
     [](SimConfig &c, double v) {
         c.uvm.fault_buffer_entries = asU32(v);
     }},
    {"uvm.fault_handling_per_page_us",
     [](SimConfig &c, double v) {
         c.uvm.fault_handling_per_page_us = v;
     }},
    {"uvm.fault_handling_us",
     [](SimConfig &c, double v) { c.uvm.fault_handling_us = v; }},
    {"uvm.ideal_eviction",
     [](SimConfig &c, double v) { c.uvm.ideal_eviction = asBool(v); }},
    {"uvm.interrupt_latency_us",
     [](SimConfig &c, double v) { c.uvm.interrupt_latency_us = v; }},
    {"uvm.lifetime_drop_threshold",
     [](SimConfig &c, double v) {
         c.uvm.lifetime_drop_threshold = v;
     }},
    {"uvm.lifetime_window_cycles",
     [](SimConfig &c, double v) {
         c.uvm.lifetime_window_cycles = asU64(v);
     }},
    {"uvm.pcie_compression_ratio",
     [](SimConfig &c, double v) { c.uvm.pcie_compression_ratio = v; }},
    {"uvm.pcie_d2h_gbps",
     [](SimConfig &c, double v) { c.uvm.pcie_d2h_gbps = v; }},
    {"uvm.pcie_gbps",
     [](SimConfig &c, double v) { c.uvm.pcie_gbps = v; }},
    {"uvm.prefetch_density",
     [](SimConfig &c, double v) { c.uvm.prefetch_density = v; }},
    {"uvm.prefetch_enabled",
     [](SimConfig &c, double v) {
         c.uvm.prefetch_enabled = asBool(v);
     }},
    {"uvm.preload",
     [](SimConfig &c, double v) { c.uvm.preload = asBool(v); }},
    {"uvm.root_chunk_pages",
     [](SimConfig &c, double v) { c.uvm.root_chunk_pages = asU32(v); }},
    {"uvm.sequential_prefetch_pages",
     [](SimConfig &c, double v) {
         c.uvm.sequential_prefetch_pages = asU32(v);
     }},
    {"uvm.unobtrusive_eviction",
     [](SimConfig &c, double v) {
         c.uvm.unobtrusive_eviction = asBool(v);
     }},
    {"uvm.va_block_bytes",
     [](SimConfig &c, double v) { c.uvm.va_block_bytes = asU64(v); }},
};

/** splitmix64 finalizer (same constants as job.cc). */
std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

void
appendKv(std::string &out, const char *key, std::uint64_t v)
{
    out += key;
    out += '=';
    out += std::to_string(v);
    out += ';';
}

void
appendKv(std::string &out, const char *key, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += key;
    out += '=';
    out += buf;
    out += ';';
}

void
appendKv(std::string &out, const char *key, bool v)
{
    out += key;
    out += '=';
    out += v ? '1' : '0';
    out += ';';
}

void
appendCache(std::string &out, const char *prefix, const CacheConfig &c)
{
    std::string k(prefix);
    appendKv(out, (k + ".size_bytes").c_str(), c.size_bytes);
    appendKv(out, (k + ".associativity").c_str(),
             static_cast<std::uint64_t>(c.associativity));
    appendKv(out, (k + ".line_bytes").c_str(),
             static_cast<std::uint64_t>(c.line_bytes));
    appendKv(out, (k + ".hit_latency").c_str(),
             static_cast<std::uint64_t>(c.hit_latency));
}

void
appendTlb(std::string &out, const char *prefix, const TlbConfig &c)
{
    std::string k(prefix);
    appendKv(out, (k + ".entries").c_str(),
             static_cast<std::uint64_t>(c.entries));
    appendKv(out, (k + ".associativity").c_str(),
             static_cast<std::uint64_t>(c.associativity));
    appendKv(out, (k + ".hit_latency").c_str(),
             static_cast<std::uint64_t>(c.hit_latency));
}

} // namespace

bool
applyConfigOverride(SimConfig &config, const std::string &key,
                    double value)
{
    for (const Knob &k : kKnobs) {
        if (key == k.key) {
            k.set(config, value);
            return true;
        }
    }
    return false;
}

std::vector<std::string>
knownOverrideKeys()
{
    std::vector<std::string> keys;
    keys.reserve(std::size(kKnobs));
    for (const Knob &k : kKnobs)
        keys.push_back(k.key);
    return keys;
}

SimConfig
cellConfig(const CellSpec &spec)
{
    SimConfig config = paperConfig(
        spec.ratio, deriveWorkloadSeed(spec.base_seed, spec.workload));
    config = applyPolicy(config, spec.policy);
    for (const ConfigOverride &o : spec.overrides) {
        if (!applyConfigOverride(config, o.key, o.value))
            fatal("cellConfig: unknown config override '%s'",
                  o.key.c_str());
    }
    config.check.enabled = spec.audit;
    return config;
}

std::uint64_t
cellJobSeed(const CellSpec &spec)
{
    return deriveJobSeed(spec.base_seed, spec.workload, spec.policy,
                         spec.variant);
}

std::string
canonicalConfigString(const SimConfig &c)
{
    std::string out;
    out.reserve(1400);

    appendKv(out, "gpu.num_sms",
             static_cast<std::uint64_t>(c.gpu.num_sms));
    appendKv(out, "gpu.max_threads_per_sm",
             static_cast<std::uint64_t>(c.gpu.max_threads_per_sm));
    appendKv(out, "gpu.max_blocks_per_sm",
             static_cast<std::uint64_t>(c.gpu.max_blocks_per_sm));
    appendKv(out, "gpu.regfile_bytes_per_sm",
             c.gpu.regfile_bytes_per_sm);
    appendKv(out, "gpu.warp_size",
             static_cast<std::uint64_t>(c.gpu.warp_size));
    appendKv(out, "gpu.issue_width",
             static_cast<std::uint64_t>(c.gpu.issue_width));
    appendKv(out, "gpu.mem_op_overhead_cycles",
             static_cast<std::uint64_t>(c.gpu.mem_op_overhead_cycles));

    appendCache(out, "mem.l1", c.mem.l1);
    appendCache(out, "mem.l2", c.mem.l2);
    appendTlb(out, "mem.l1_tlb", c.mem.l1_tlb);
    appendTlb(out, "mem.l2_tlb", c.mem.l2_tlb);
    appendKv(out, "mem.dram_latency",
             static_cast<std::uint64_t>(c.mem.dram_latency));
    appendKv(out, "mem.atomic_latency",
             static_cast<std::uint64_t>(c.mem.atomic_latency));
    appendKv(out, "mem.dram_bytes_per_cycle",
             static_cast<std::uint64_t>(c.mem.dram_bytes_per_cycle));
    appendKv(out, "mem.mshrs_per_sm",
             static_cast<std::uint64_t>(c.mem.mshrs_per_sm));
    appendKv(out, "mem.walker_threads",
             static_cast<std::uint64_t>(c.mem.walker_threads));
    appendKv(out, "mem.page_table_levels",
             static_cast<std::uint64_t>(c.mem.page_table_levels));
    appendKv(out, "mem.walk_cache_entries",
             static_cast<std::uint64_t>(c.mem.walk_cache_entries));
    appendKv(out, "mem.walk_cache_latency",
             static_cast<std::uint64_t>(c.mem.walk_cache_latency));

    appendKv(out, "uvm.page_bytes", c.uvm.page_bytes);
    appendKv(out, "uvm.fault_buffer_entries",
             static_cast<std::uint64_t>(c.uvm.fault_buffer_entries));
    appendKv(out, "uvm.preload", c.uvm.preload);
    appendKv(out, "uvm.fault_handling_us", c.uvm.fault_handling_us);
    appendKv(out, "uvm.fault_handling_per_page_us",
             c.uvm.fault_handling_per_page_us);
    appendKv(out, "uvm.interrupt_latency_us",
             c.uvm.interrupt_latency_us);
    appendKv(out, "uvm.pcie_gbps", c.uvm.pcie_gbps);
    appendKv(out, "uvm.pcie_d2h_gbps", c.uvm.pcie_d2h_gbps);
    appendKv(out, "uvm.prefetch_enabled", c.uvm.prefetch_enabled);
    appendKv(out, "uvm.va_block_bytes", c.uvm.va_block_bytes);
    appendKv(out, "uvm.prefetch_density", c.uvm.prefetch_density);
    appendKv(out, "uvm.sequential_prefetch_pages",
             static_cast<std::uint64_t>(
                 c.uvm.sequential_prefetch_pages));
    appendKv(out, "uvm.unobtrusive_eviction",
             c.uvm.unobtrusive_eviction);
    appendKv(out, "uvm.ideal_eviction", c.uvm.ideal_eviction);
    appendKv(out, "uvm.pcie_compression_ratio",
             c.uvm.pcie_compression_ratio);
    appendKv(out, "uvm.root_chunk_pages",
             static_cast<std::uint64_t>(c.uvm.root_chunk_pages));
    appendKv(out, "uvm.lifetime_window_cycles",
             static_cast<std::uint64_t>(c.uvm.lifetime_window_cycles));
    appendKv(out, "uvm.lifetime_drop_threshold",
             c.uvm.lifetime_drop_threshold);

    appendKv(out, "to.enabled", c.to.enabled);
    appendKv(out, "to.initial_extra_blocks",
             static_cast<std::uint64_t>(c.to.initial_extra_blocks));
    appendKv(out, "to.max_extra_blocks",
             static_cast<std::uint64_t>(c.to.max_extra_blocks));
    appendKv(out, "to.ctx_switch_bytes_per_cycle",
             static_cast<std::uint64_t>(
                 c.to.ctx_switch_bytes_per_cycle));
    appendKv(out, "to.block_state_bytes", c.to.block_state_bytes);
    appendKv(out, "to.ideal_ctx_switch", c.to.ideal_ctx_switch);
    appendKv(out, "to.switch_on_memory_stall",
             c.to.switch_on_memory_stall);

    appendKv(out, "etc.enabled", c.etc.enabled);
    appendKv(out, "etc.proactive_eviction", c.etc.proactive_eviction);
    appendKv(out, "etc.memory_aware_throttling",
             c.etc.memory_aware_throttling);
    appendKv(out, "etc.capacity_compression",
             c.etc.capacity_compression);
    appendKv(out, "etc.compression_ratio", c.etc.compression_ratio);
    appendKv(out, "etc.compression_latency",
             static_cast<std::uint64_t>(c.etc.compression_latency));
    appendKv(out, "etc.epoch_cycles",
             static_cast<std::uint64_t>(c.etc.epoch_cycles));

    // trace.enabled is deliberately excluded: tracing is proven
    // non-perturbing (CI byte-compares traced vs untraced stdout), so
    // a traced run may share cached results with an untraced one.
    // trace.buffer_records likewise only sizes the observer ring.
    appendKv(out, "check.enabled", c.check.enabled);

    appendKv(out, "mt.policy",
             static_cast<std::uint64_t>(c.mt.policy));
    appendKv(out, "memory_ratio", c.memory_ratio);
    appendKv(out, "seed", c.seed);
    return out;
}

std::string
cellKey(const std::string &workload, WorkloadScale scale,
        const SimConfig &config, const std::string &git_rev,
        const std::vector<TenantSpec> &tenants)
{
    // /2: the graph-stream parameters joined the key. Streamed and
    // in-core builds are differential-tested bit-identical, but the
    // stream config is still build provenance — folding it keeps the
    // result cache honest if that guarantee ever regresses, at the
    // cost of re-keying every cell when the config changes.
    // /3: the tenant mix joined the key (and mt.policy joined the
    // canonical config) — a multi-tenant cell can never alias the
    // single-tenant cell that shares its label.
    const GraphStreamConfig &gs = graphStreamConfig();
    std::string key = "bauvm.cell/3|";
    key += git_rev;
    key += '|';
    key += workload;
    key += '|';
    key += scaleName(scale);
    key += '|';
    appendKv(key, "stream.threshold_edges", gs.stream_threshold_edges);
    appendKv(key, "stream.edges_per_block",
             static_cast<std::uint64_t>(gs.edges_per_block));
    appendKv(key, "stream.scratch_bytes", gs.scratch_bytes);
    key += '|';
    for (const TenantSpec &t : tenants) {
        key += t.workload;
        key += ':';
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.17g", t.quota);
        key += buf;
        key += ':';
        key += scaleName(t.scale);
        key += ';';
    }
    key += '|';
    key += canonicalConfigString(config);
    return key;
}

std::string
digestHex(const std::string &key)
{
    // Two independent FNV-1a lanes (different offset bases), each
    // diffused through splitmix64 — 128 bits total, plenty for a cache
    // that holds at most millions of cells.
    std::uint64_t a = 0xcbf29ce484222325ULL;
    std::uint64_t b = 0x84222325cbf29ce4ULL;
    for (unsigned char ch : key) {
        a = (a ^ ch) * 0x100000001b3ULL;
        b = (b ^ ch) * 0x100000001b3ULL;
        b += a; // couple the lanes so they never collapse to one
    }
    a = splitmix64(a);
    b = splitmix64(b);
    char buf[33];
    std::snprintf(buf, sizeof buf, "%016llx%016llx",
                  static_cast<unsigned long long>(a),
                  static_cast<unsigned long long>(b));
    return buf;
}

std::string
gitRev()
{
    if (const char *env = std::getenv("BAUVM_GIT_REV"))
        if (*env)
            return env;
    return BAUVM_GIT_REV;
}

std::string
hostName()
{
    static const std::string cached = [] {
        char buf[256] = {0};
        if (gethostname(buf, sizeof buf - 1) != 0)
            return std::string("unknown");
        return std::string(buf);
    }();
    return cached;
}

CellOutcome
executeCell(const CellExecArgs &args)
{
    CellOutcome out;
    out.workload = args.workload;
    out.policy = args.policy;
    out.variant = args.variant;
    out.seed = args.config.seed;
    out.job_seed = args.job_seed;
    out.digest = digestHex(
        cellKey(args.workload, args.scale, args.config,
                args.git_rev.empty() ? gitRev() : args.git_rev,
                args.tenants));
    out.worker_pid = static_cast<std::uint64_t>(getpid());
    out.hostname = hostName();

    const bool tracing = !args.trace_dir.empty();
    // The system outlives the try block so an aborted cell's partial
    // trace buffer can still be flushed to disk below.
    std::unique_ptr<GpuUvmSystem> system;
    bool aborted = false;

    const auto t0 = Clock::now();
    try {
        ScopedAbortCapture capture;
        SimConfig config = args.config;
        config.trace.enabled = tracing;
        if (!args.tenants.empty()) {
            // A multi-tenant cell is several independent simulations:
            // one solo anchor per tenant (each tenant alone on the
            // whole GPU, same ratio/policy/scale and the seed its mix
            // build will use, so the builds share the graph cache)
            // plus the mix itself. They are units on the intra-cell
            // pool: args.cell_threads > 1 overlaps them, and the
            // fixed-order merge below keeps any thread count
            // bit-identical to the serial run. Each unit installs its
            // own abort capture — the depth is thread-local.
            const std::size_t n = args.tenants.size();
            std::vector<Cycle> solo(n, 0);
            RunResult mix_result;
            std::unique_ptr<GpuUvmSystem> mix_system;
            runUnits(n + 1, args.cell_threads, [&](std::size_t u) {
                ScopedAbortCapture unit_capture;
                if (u == n) {
                    mix_system =
                        std::make_unique<GpuUvmSystem>(config);
                    mix_result = mix_system->run(args.tenants);
                    return;
                }
                SimConfig solo_config = config;
                solo_config.seed =
                    deriveTenantSeed(config.seed,
                                     static_cast<std::uint32_t>(u));
                solo_config.mt = MtConfig{};
                solo_config.trace.enabled = false;
                auto workload = WorkloadRegistry::instance().create(
                    args.tenants[u].workload);
                GpuUvmSystem solo_system(solo_config);
                solo[u] =
                    solo_system.run(*workload, args.tenants[u].scale)
                        .cycles;
            });
            system = std::move(mix_system);
            out.result = std::move(mix_result);
            for (std::size_t i = 0; i < out.result.tenants.size();
                 ++i) {
                TenantResult &t = out.result.tenants[i];
                t.slowdown = solo[i]
                                 ? static_cast<double>(t.cycles) /
                                       static_cast<double>(solo[i])
                                 : 0.0;
            }
            if (config.check.enabled) {
                for (const auto &workload : system->tenantWorkloads())
                    workload->validate();
            }
        } else {
            auto workload =
                WorkloadRegistry::instance().create(args.workload);
            system = std::make_unique<GpuUvmSystem>(config);
            out.result = system->run(*workload, args.scale);
            // --audit cells also check the functional result against
            // the workload's host-side reference implementation; a
            // mismatch panics and fails the cell like any
            // model-invariant breach.
            if (config.check.enabled)
                workload->validate();
        }
        out.ok = true;
    } catch (const SimAbort &e) {
        aborted = true;
        out.error = e.what();
    } catch (const std::exception &e) {
        aborted = true;
        out.error = e.what();
    } catch (...) {
        aborted = true;
        out.error = "unknown exception";
    }
    out.wall_s = secondsSince(t0);

    if (tracing && system && system->trace()) {
        TraceMeta meta;
        meta.bench = args.trace_bench;
        meta.workload = args.workload;
        meta.policy = policyName(args.policy);
        meta.variant = args.variant;
        meta.scale = scaleName(args.scale);
        meta.seed = args.config.seed;
        meta.ratio = args.trace_ratio;
        meta.partial = aborted;
        // A cell that died mid-run still flushes whatever the ring
        // holds; the .partial suffix keeps it out of tooling that
        // expects complete timelines.
        const std::string suffix = aborted ? ".partial" : "";
        const std::string base =
            args.trace_dir + "/" + args.trace_stem;
        writeChromeTrace(*system->trace(), meta,
                         base + ".trace.json" + suffix);
        writeCounterCsv(*system->trace(),
                        base + ".counters.csv" + suffix);
    }

    if (out.ok && args.soft_timeout_s > 0.0 &&
        out.wall_s > args.soft_timeout_s) {
        out.ok = false;
        out.timed_out = true;
        char buf[128];
        std::snprintf(buf, sizeof buf,
                      "soft timeout: cell took %.2fs (budget %.2fs), "
                      "result discarded",
                      out.wall_s, args.soft_timeout_s);
        out.error = buf;
    }
    return out;
}

} // namespace bauvm
