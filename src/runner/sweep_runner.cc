#include "src/runner/sweep_runner.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <memory>
#include <mutex>

#include "src/graph/graph_cache.h"
#include "src/runner/thread_pool.h"
#include "src/sim/log.h"
#include "src/trace/trace_export.h"
#include "src/workloads/workload_registry.h"

namespace bauvm
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Builds "<bench>__<workload>__<policy>[__<variant>]" with
 *  filesystem-hostile characters replaced by '-'. */
std::string
cellFileStem(const SweepSpec &spec, const SweepJob &job)
{
    std::string stem = spec.bench + "__" + job.workload + "__" +
                       policyName(job.policy);
    if (!job.variant.empty())
        stem += "__" + job.variant;
    for (char &c : stem) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '-' ||
                        c == '_' || c == '.';
        if (!ok)
            c = '-';
    }
    return stem;
}

/** Runs one cell with abort capture; never throws. */
CellOutcome
executeJob(const SweepJob &job, const SweepSpec &spec)
{
    CellOutcome out;
    out.workload = job.workload;
    out.policy = job.policy;
    out.variant = job.variant;
    out.seed = job.seed;
    out.job_seed = job.job_seed;

    const bool tracing = !spec.opt.trace_dir.empty();
    // The system outlives the try block so an aborted cell's partial
    // trace buffer can still be flushed to disk below.
    std::unique_ptr<GpuUvmSystem> system;
    bool aborted = false;

    const auto t0 = Clock::now();
    try {
        ScopedAbortCapture capture;
        SimConfig config = paperConfig(spec.opt.ratio, job.seed);
        config = applyPolicy(config, job.policy);
        if (job.variant_index < spec.variants.size() &&
            spec.variants[job.variant_index].mutate)
            spec.variants[job.variant_index].mutate(config);
        config.trace.enabled = tracing;
        config.check.enabled = spec.opt.audit;
        auto workload = WorkloadRegistry::instance().create(job.workload);
        system = std::make_unique<GpuUvmSystem>(config);
        out.result = system->run(*workload, spec.opt.scale);
        out.ok = true;
    } catch (const SimAbort &e) {
        aborted = true;
        out.error = e.what();
    } catch (const std::exception &e) {
        aborted = true;
        out.error = e.what();
    } catch (...) {
        aborted = true;
        out.error = "unknown exception";
    }
    out.wall_s = secondsSince(t0);

    if (tracing && system && system->trace()) {
        TraceMeta meta;
        meta.bench = spec.bench;
        meta.workload = job.workload;
        meta.policy = policyName(job.policy);
        meta.variant = job.variant;
        meta.scale = scaleName(spec.opt.scale);
        meta.seed = job.seed;
        meta.ratio = spec.opt.ratio;
        meta.partial = aborted;
        // A cell that died mid-run still flushes whatever the ring
        // holds; the .partial suffix keeps it out of tooling that
        // expects complete timelines.
        const std::string suffix = aborted ? ".partial" : "";
        const std::string base =
            spec.opt.trace_dir + "/" + cellFileStem(spec, job);
        writeChromeTrace(*system->trace(), meta,
                         base + ".trace.json" + suffix);
        writeCounterCsv(*system->trace(),
                        base + ".counters.csv" + suffix);
    }

    if (out.ok && spec.opt.timeout_s > 0.0 &&
        out.wall_s > spec.opt.timeout_s) {
        out.ok = false;
        out.timed_out = true;
        char buf[128];
        std::snprintf(buf, sizeof buf,
                      "soft timeout: cell took %.2fs (budget %.2fs), "
                      "result discarded",
                      out.wall_s, spec.opt.timeout_s);
        out.error = buf;
    }
    return out;
}

} // namespace

SweepRunner::SweepRunner(SweepSpec spec)
    : spec_(std::move(spec))
{
    if (spec_.workloads.empty())
        fatal("SweepRunner: no workloads");
    if (spec_.policies.empty())
        fatal("SweepRunner: no policies");
}

void
SweepRunner::setProgress(ProgressFn fn)
{
    progress_ = std::move(fn);
    progress_overridden_ = true;
}

std::size_t
SweepRunner::cellCount() const
{
    const std::size_t variants =
        spec_.variants.empty() ? 1 : spec_.variants.size();
    return variants * spec_.workloads.size() * spec_.policies.size();
}

SweepResult
SweepRunner::run()
{
    // Expand the matrix in deterministic order: variant-major, then
    // workload, then policy. Result slots are preallocated so workers
    // write by index and completion order never matters.
    const std::size_t variants =
        spec_.variants.empty() ? 1 : spec_.variants.size();
    std::vector<SweepJob> jobs;
    jobs.reserve(cellCount());
    for (std::size_t v = 0; v < variants; ++v) {
        const std::string label =
            spec_.variants.empty() ? "" : spec_.variants[v].label;
        for (const auto &w : spec_.workloads) {
            for (Policy p : spec_.policies) {
                SweepJob job;
                job.index = jobs.size();
                job.workload = w;
                job.policy = p;
                job.variant = label;
                job.variant_index = v;
                job.seed = deriveWorkloadSeed(spec_.opt.seed, w);
                job.job_seed =
                    deriveJobSeed(spec_.opt.seed, w, p, label);
                jobs.push_back(std::move(job));
            }
        }
    }

    if (!spec_.opt.trace_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(spec_.opt.trace_dir, ec);
        if (ec) {
            fatal("SweepRunner: cannot create trace dir '%s': %s",
                  spec_.opt.trace_dir.c_str(),
                  ec.message().c_str());
        }
    }

    SweepResult result;
    result.bench = spec_.bench;
    result.base_seed = spec_.opt.seed;
    result.scale = spec_.opt.scale;
    result.ratio = spec_.opt.ratio;
    result.cells.resize(jobs.size());

    std::size_t workers = spec_.opt.jobs == 0
                              ? ThreadPool::hardwareJobs()
                              : spec_.opt.jobs;
    workers = std::max<std::size_t>(
        1, std::min(workers, jobs.size()));
    result.jobs = workers;

    const auto t0 = Clock::now();

    ProgressFn progress = progress_;
    if (!progress_overridden_ && spec_.verbose) {
        const std::size_t total = jobs.size();
        progress = [total, t0](const CellOutcome &cell,
                               std::size_t done, std::size_t) {
            const double elapsed = secondsSince(t0);
            const double eta =
                done == 0 ? 0.0
                          : elapsed / static_cast<double>(done) *
                                static_cast<double>(total - done);
            std::fprintf(
                stderr, "  [%zu/%zu] %s/%s%s%s %s %.2fs | ETA %.0fs\n",
                done, total, cell.workload.c_str(),
                policyName(cell.policy).c_str(),
                cell.variant.empty() ? "" : " ",
                cell.variant.c_str(), cell.ok ? "ok" : "FAILED",
                cell.wall_s, eta);
        };
    }

    std::mutex progress_mutex;
    std::size_t done = 0;

    // Share one immutable graph build per (workload, seed) across all
    // policy/variant cells for the duration of this sweep.
    GraphBuildCache &graph_cache = GraphBuildCache::instance();
    const std::uint64_t builds_before = graph_cache.builds();
    const std::uint64_t hits_before = graph_cache.hits();
    GraphBuildCache::Scope graph_scope;

    {
        ThreadPool pool(workers);
        for (const SweepJob &job : jobs) {
            pool.submit([this, &job, &result, &progress,
                         &progress_mutex, &done, total = jobs.size()] {
                CellOutcome cell = executeJob(job, spec_);
                result.cells[job.index] = cell;
                std::lock_guard<std::mutex> lock(progress_mutex);
                ++done;
                if (progress)
                    progress(cell, done, total);
            });
        }
        pool.wait();
    }

    result.elapsed_s = secondsSince(t0);

    if (spec_.verbose) {
        std::fprintf(stderr,
                     "  sweep: %zu cells on %zu worker(s) in %.2fs "
                     "(%zu failed)\n",
                     result.cells.size(), workers, result.elapsed_s,
                     result.failedCells());
        std::fprintf(
            stderr, "  graph cache: %llu build(s), %llu reuse(s)\n",
            static_cast<unsigned long long>(graph_cache.builds() -
                                            builds_before),
            static_cast<unsigned long long>(graph_cache.hits() -
                                            hits_before));
    }
    return result;
}

} // namespace bauvm
