#include "src/runner/sweep_runner.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <memory>
#include <mutex>

#include "src/graph/graph_cache.h"
#include "src/runner/cell_spec.h"
#include "src/runner/thread_pool.h"
#include "src/serve/result_cache.h"
#include "src/sim/log.h"

namespace bauvm
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Builds "<bench>__<workload>__<policy>[__<variant>]" with
 *  filesystem-hostile characters replaced by '-'. */
std::string
cellFileStem(const SweepSpec &spec, const SweepJob &job)
{
    std::string stem = spec.bench + "__" + job.workload + "__" +
                       policyName(job.policy);
    if (!job.variant.empty())
        stem += "__" + job.variant;
    for (char &c : stem) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '-' ||
                        c == '_' || c == '.';
        if (!ok)
            c = '-';
    }
    return stem;
}

/**
 * Runs one cell through the shared executeCell() path — the same code
 * the sweep service's forked workers run, which is what keeps every
 * execution mode (threaded, sharded, resumed) bit-identical. With a
 * resume cache, finished ok cells load by content address instead of
 * recomputing, and fresh ok results are stored for the next run.
 */
CellOutcome
executeJob(const SweepJob &job, const SweepSpec &spec,
           ResultCache *cache)
{
    CellExecArgs args;
    args.workload = job.workload;
    args.policy = job.policy;
    args.variant = job.variant;
    args.job_seed = job.job_seed;
    args.scale = spec.opt.scale;

    SimConfig config = paperConfig(spec.opt.ratio, job.seed);
    config = applyPolicy(config, job.policy);
    if (job.variant_index < spec.variants.size() &&
        spec.variants[job.variant_index].mutate)
        spec.variants[job.variant_index].mutate(config);
    spec.opt.applyTo(config);
    args.config = std::move(config);

    args.tenants = spec.opt.tenants;
    for (TenantSpec &t : args.tenants)
        t.scale = spec.opt.scale;

    args.soft_timeout_s = spec.opt.timeout_s;
    args.cell_threads = spec.opt.cell_threads;
    if (!spec.opt.trace_dir.empty()) {
        args.trace_dir = spec.opt.trace_dir;
        args.trace_stem = cellFileStem(spec, job);
        args.trace_bench = spec.bench;
        args.trace_ratio = spec.opt.ratio;
    }

    std::string digest;
    std::string key;
    if (cache) {
        key = cellKey(args.workload, args.scale, args.config,
                      gitRev(), args.tenants);
        digest = digestHex(key);
        CellOutcome cached;
        if (cache->lookup(digest, key, &cached)) {
            // The stored outcome may carry a different producer
            // coordinate that digests identically; re-label it as
            // this cell. The simulated payload is digest-covered.
            cached.workload = job.workload;
            cached.policy = job.policy;
            cached.variant = job.variant;
            cached.seed = job.seed;
            cached.job_seed = job.job_seed;
            cached.digest = digest;
            cached.result.workload = job.workload;
            cached.result.seed = job.seed;
            return cached;
        }
    }

    CellOutcome out = executeCell(args);
    if (cache && out.ok)
        cache->store(digest, key, out);
    return out;
}

} // namespace

SweepRunner::SweepRunner(SweepSpec spec)
    : spec_(std::move(spec))
{
    if (spec_.workloads.empty())
        fatal("SweepRunner: no workloads");
    if (spec_.policies.empty())
        fatal("SweepRunner: no policies");
}

void
SweepRunner::setProgress(ProgressFn fn)
{
    progress_ = std::move(fn);
    progress_overridden_ = true;
}

std::size_t
SweepRunner::cellCount() const
{
    const std::size_t variants =
        spec_.variants.empty() ? 1 : spec_.variants.size();
    return variants * spec_.workloads.size() * spec_.policies.size();
}

SweepResult
SweepRunner::run()
{
    // Expand the matrix in deterministic order: variant-major, then
    // workload, then policy. Result slots are preallocated so workers
    // write by index and completion order never matters.
    const std::size_t variants =
        spec_.variants.empty() ? 1 : spec_.variants.size();
    std::vector<SweepJob> jobs;
    jobs.reserve(cellCount());
    for (std::size_t v = 0; v < variants; ++v) {
        const std::string label =
            spec_.variants.empty() ? "" : spec_.variants[v].label;
        for (const auto &w : spec_.workloads) {
            for (Policy p : spec_.policies) {
                SweepJob job;
                job.index = jobs.size();
                job.workload = w;
                job.policy = p;
                job.variant = label;
                job.variant_index = v;
                job.seed = deriveWorkloadSeed(spec_.opt.seed, w);
                job.job_seed =
                    deriveJobSeed(spec_.opt.seed, w, p, label);
                jobs.push_back(std::move(job));
            }
        }
    }

    if (!spec_.opt.trace_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(spec_.opt.trace_dir, ec);
        if (ec) {
            fatal("SweepRunner: cannot create trace dir '%s': %s",
                  spec_.opt.trace_dir.c_str(),
                  ec.message().c_str());
        }
    }

    SweepResult result;
    result.bench = spec_.bench;
    result.base_seed = spec_.opt.seed;
    result.scale = spec_.opt.scale;
    result.ratio = spec_.opt.ratio;
    result.cells.resize(jobs.size());

    std::size_t workers = spec_.opt.jobs == 0
                              ? ThreadPool::hardwareJobs()
                              : spec_.opt.jobs;
    workers = std::max<std::size_t>(
        1, std::min(workers, jobs.size()));
    result.jobs = workers;

    const auto t0 = Clock::now();

    ProgressFn progress = progress_;
    if (!progress_overridden_ && spec_.verbose) {
        const std::size_t total = jobs.size();
        progress = [total, t0](const CellOutcome &cell,
                               std::size_t done, std::size_t) {
            const double elapsed = secondsSince(t0);
            const double eta =
                done == 0 ? 0.0
                          : elapsed / static_cast<double>(done) *
                                static_cast<double>(total - done);
            std::fprintf(
                stderr, "  [%zu/%zu] %s/%s%s%s %s %.2fs | ETA %.0fs\n",
                done, total, cell.workload.c_str(),
                policyName(cell.policy).c_str(),
                cell.variant.empty() ? "" : " ",
                cell.variant.c_str(), cell.ok ? "ok" : "FAILED",
                cell.wall_s, eta);
        };
    }

    std::mutex progress_mutex;
    std::size_t done = 0;

    // --resume: finished ok cells load from the content-addressed
    // cache by (config digest, git rev) instead of recomputing.
    std::unique_ptr<ResultCache> cache;
    if (!spec_.opt.resume_dir.empty())
        cache = std::make_unique<ResultCache>(spec_.opt.resume_dir);

    // Share one immutable graph build per (workload, seed) across all
    // policy/variant cells for the duration of this sweep.
    GraphBuildCache &graph_cache = GraphBuildCache::instance();
    const std::uint64_t builds_before = graph_cache.builds();
    const std::uint64_t hits_before = graph_cache.hits();
    GraphBuildCache::Scope graph_scope;

    {
        ThreadPool pool(workers);
        for (const SweepJob &job : jobs) {
            pool.submit([this, &job, &result, &progress,
                         &progress_mutex, &done, &cache,
                         total = jobs.size()] {
                CellOutcome cell =
                    executeJob(job, spec_, cache.get());
                result.cells[job.index] = cell;
                std::lock_guard<std::mutex> lock(progress_mutex);
                ++done;
                if (progress)
                    progress(cell, done, total);
            });
        }
        pool.wait();
    }

    result.elapsed_s = secondsSince(t0);

    if (spec_.verbose) {
        std::fprintf(stderr,
                     "  sweep: %zu cells on %zu worker(s) in %.2fs "
                     "(%zu failed)\n",
                     result.cells.size(), workers, result.elapsed_s,
                     result.failedCells());
        std::fprintf(
            stderr, "  graph cache: %llu build(s), %llu reuse(s)\n",
            static_cast<unsigned long long>(graph_cache.builds() -
                                            builds_before),
            static_cast<unsigned long long>(graph_cache.hits() -
                                            hits_before));
        if (cache) {
            std::fprintf(
                stderr,
                "  resume cache: %llu hit(s), %llu computed, %llu "
                "stored (%s)\n",
                static_cast<unsigned long long>(cache->hits()),
                static_cast<unsigned long long>(cache->misses()),
                static_cast<unsigned long long>(cache->stores()),
                cache->dir().c_str());
        }
    }
    return result;
}

} // namespace bauvm
