#include "src/runner/job_queue.h"

namespace bauvm
{

bool
JobQueue::push(Thunk thunk)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (closed_)
            return false;
        queue_.push_back(std::move(thunk));
    }
    ready_.notify_one();
    return true;
}

bool
JobQueue::pop(Thunk *out)
{
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty())
        return false; // closed and drained
    *out = std::move(queue_.front());
    queue_.pop_front();
    return true;
}

void
JobQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    ready_.notify_all();
}

std::size_t
JobQueue::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

bool
JobQueue::closed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
}

} // namespace bauvm
