/**
 * @file
 * A fixed-size worker pool draining a JobQueue. No work stealing, no
 * per-worker queues: one shared FIFO keeps scheduling simple and the
 * result ordering is decided by job index, not completion order, so
 * the pool adds no nondeterminism.
 */

#ifndef BAUVM_RUNNER_THREAD_POOL_H_
#define BAUVM_RUNNER_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>
#include <vector>

#include "src/runner/job_queue.h"

namespace bauvm
{

class ThreadPool
{
  public:
    /**
     * Starts @p workers threads (minimum 1). Pass 0 to use
     * hardwareJobs().
     */
    explicit ThreadPool(std::size_t workers);

    /** Closes the queue and joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Submits a thunk. Thunks must not throw: wrap fallible work in
     * its own try/catch (SweepRunner captures per-job failures).
     * @return false when the pool is already shut down.
     */
    bool submit(JobQueue::Thunk thunk);

    /** Blocks until the queue is empty and no thunk is in flight. */
    void wait();

    /** Closes the queue, drains remaining thunks, joins workers. */
    void shutdown();

    std::size_t workerCount() const { return workers_.size(); }

    /** hardware_concurrency with a sane fallback of 1. */
    static std::size_t hardwareJobs();

  private:
    void workerLoop();

    JobQueue queue_;
    std::vector<std::thread> workers_;

    std::mutex idle_mutex_;
    std::condition_variable idle_;
    std::size_t pending_ = 0; //!< submitted but not yet finished
};

} // namespace bauvm

#endif // BAUVM_RUNNER_THREAD_POOL_H_
