#include "src/sim/event_queue.h"

#include <algorithm>
#include <bit>

#include "src/sim/log.h"

namespace bauvm
{

namespace
{

/** Heap tombstones tolerated before a compaction pass (satellite fix
 *  for the cancel() tombstone leak): compact once at least this many
 *  stale entries exist *and* they outnumber the live ones. */
constexpr std::size_t kCompactMinStale = 64;

/** Min-heap order: std::*_heap with this puts the earliest event at
 *  the front. */
struct LaterFirst {
    template <typename E>
    bool
    operator()(const E &a, const E &b) const
    {
        return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
};

} // namespace

void
EventQueue::addSlab()
{
    const auto base = static_cast<std::uint32_t>(slabs_.size() *
                                                 kSlabRecords);
    slabs_.push_back(std::make_unique<Record[]>(kSlabRecords));
    Record *slab = slabs_.back().get();
    // Chain in reverse so slots hand out in ascending order.
    for (std::size_t i = kSlabRecords; i-- > 0;) {
        slab[i].next = free_head_;
        free_head_ = base + static_cast<std::uint32_t>(i);
    }
}

EventId
EventQueue::enqueue(Cycle when, std::uint32_t slot)
{
    if (when < now_) {
        panic("EventQueue: scheduling in the past (when=%llu now=%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now_));
    }
    Record &r = record(slot);
    r.seq = next_seq_++;
    const EventId id = (static_cast<EventId>(r.gen) << 32) | slot;
    if (when - now_ < kNearWindow) {
        // A bucket only ever chains one distinct cycle: a colliding
        // cycle would be >= now_ + kNearWindow and lands in the heap.
        const std::size_t b = static_cast<std::size_t>(when) & kRingMask;
        Bucket &bk = ring_[b];
        const std::uint64_t bit = 1ULL << (b % 64);
        r.next = kNil; // ring residency marker + chain terminator
        if (ring_bits_[b / 64] & bit) {
            record(bk.tail).next = slot;
        } else {
            ring_bits_[b / 64] |= bit;
            bk.head = slot;
        }
        bk.tail = slot;
        ++ring_count_;
    } else {
        r.next = kHeapResident;
        heapPush(HeapEntry{when, r.seq, slot, r.gen});
    }
    ++pending_;
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
    const auto gen = static_cast<std::uint32_t>(id >> 32);
    if (slot >= slabs_.size() * kSlabRecords)
        return false;
    Record &r = record(slot);
    if (r.gen != gen)
        return false; // already ran, cancelled, or slot reused
    --pending_;
    if (r.next == kHeapResident) {
        // The heap entry carries its own gen snapshot, so the slot can
        // recycle immediately; the entry tombstones until compaction.
        r.cb.reset();
        ++stale_heap_;
        freeSlot(slot);
        maybeCompactHeap();
    } else {
        // Ring records ARE the chain links: the slot must stay parked
        // until its bucket drains. Empty cb marks the tombstone.
        ++r.gen;
        r.cb.reset();
        ++stale_ring_;
    }
    return true;
}

void
EventQueue::heapPush(HeapEntry e)
{
    heap_.push_back(e);
    std::push_heap(heap_.begin(), heap_.end(), LaterFirst{});
}

void
EventQueue::heapPop()
{
    std::pop_heap(heap_.begin(), heap_.end(), LaterFirst{});
    heap_.pop_back();
}

void
EventQueue::maybeCompactHeap()
{
    if (stale_heap_ < kCompactMinStale ||
        stale_heap_ * 2 < heap_.size())
        return;
    heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                               [this](const HeapEntry &e) {
                                   return record(e.slot).gen != e.gen;
                               }),
                heap_.end());
    std::make_heap(heap_.begin(), heap_.end(), LaterFirst{});
    stale_heap_ = 0;
    ++compactions_;
}

bool
EventQueue::findRingCandidate(std::size_t &bucket, Cycle &when) const
{
    if (ring_count_ == 0)
        return false;
    const std::size_t s = static_cast<std::size_t>(now_) & kRingMask;
    const std::size_t start_word = s / 64;
    const unsigned bit = s % 64;
    auto found = [&](std::size_t word_idx, std::uint64_t word) {
        const std::size_t b =
            word_idx * 64 +
            static_cast<std::size_t>(std::countr_zero(word));
        bucket = b;
        when = now_ + static_cast<Cycle>((b - s) & kRingMask);
        return true;
    };
    // Pending events all lie in [now_, now_ + kNearWindow), so one
    // circular pass starting at bucket `s` visits them in cycle order.
    std::uint64_t w = ring_bits_[start_word] &
                      (bit == 0 ? ~0ULL : ~0ULL << bit);
    if (w)
        return found(start_word, w);
    for (std::size_t i = start_word + 1; i < ring_bits_.size(); ++i) {
        if (ring_bits_[i])
            return found(i, ring_bits_[i]);
    }
    for (std::size_t i = 0; i < start_word; ++i) {
        if (ring_bits_[i])
            return found(i, ring_bits_[i]);
    }
    w = ring_bits_[start_word] & (bit == 0 ? 0 : ~(~0ULL << bit));
    if (w)
        return found(start_word, w);
    return false;
}

bool
EventQueue::findNext(Next &out)
{
    for (;;) {
        std::size_t rb = 0;
        Cycle rwhen = 0;
        const bool has_ring = findRingCandidate(rb, rwhen);
        const bool has_heap = !heap_.empty();
        if (!has_ring && !has_heap)
            return false;

        if (has_ring) {
            const std::uint32_t slot = ring_[rb].head;
            Record &r = record(slot);
            if (!r.cb) {
                // Tombstone of a cancelled event: every entry becomes
                // the global front before now_ passes it, so stale
                // slots are reclaimed here, never leaked.
                removeFromBucket(rb);
                freeSlot(slot);
                --stale_ring_;
                continue;
            }
            // Same-cycle events may straddle both structures (a
            // far-future event becomes near-future as now_ advances);
            // seq keeps the global insertion-order tie-break exact.
            if (!has_heap || rwhen < heap_.front().when ||
                (rwhen == heap_.front().when &&
                 r.seq < heap_.front().seq)) {
                out = Next{rwhen, r.seq, slot, true, rb};
                return true;
            }
        }
        const HeapEntry he = heap_.front();
        if (record(he.slot).gen != he.gen) {
            heapPop();
            --stale_heap_;
            continue;
        }
        out = Next{he.when, he.seq, he.slot, false, 0};
        return true;
    }
}

void
EventQueue::removeFromBucket(std::size_t b)
{
    Bucket &bk = ring_[b];
    if (bk.head == bk.tail)
        ring_bits_[b / 64] &= ~(1ULL << (b % 64));
    else
        bk.head = record(bk.head).next;
    --ring_count_;
}

void
EventQueue::removeNext(const Next &n)
{
    if (n.from_ring)
        removeFromBucket(n.bucket);
    else
        heapPop();
}

void
EventQueue::dispatch(const Next &n)
{
    Record &r = record(n.slot);
    ++r.gen; // retire the id now: self-cancel inside the callback
             // must see the event as already run
    --pending_;
    now_ = n.when;
    // Fold (when, seq) into the order digest before the callback runs,
    // so a callback that inspects the digest sees its own event.
    constexpr std::uint64_t kFnvPrime = 1099511628211ULL;
    order_digest_ = (order_digest_ ^ n.when) * kFnvPrime;
    order_digest_ = (order_digest_ ^ n.seq) * kFnvPrime;
    r.cb(); // invoked in place: slab storage is stable even if the
            // callback schedules more events (slabs append, records
            // never move), and this slot is not on the free list yet
    r.cb.reset();
    r.next = free_head_; // recycle without a second gen bump
    free_head_ = n.slot;
    ++executed_;
}

std::uint64_t
EventQueue::run(Cycle until)
{
    std::uint64_t ran = 0;
    stop_requested_ = false;
    Next n;
    while (!stop_requested_ && findNext(n)) {
        if (n.when > until)
            break; // left in place; no push-back needed
        removeNext(n);
        dispatch(n);
        ++ran;
    }
    return ran;
}

bool
EventQueue::step()
{
    Next n;
    if (!findNext(n))
        return false;
    removeNext(n);
    dispatch(n);
    return true;
}

} // namespace bauvm
