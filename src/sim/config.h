/**
 * @file
 * Plain-data configuration structs for every subsystem.
 *
 * Defaults follow Table 1 of the paper (16 SMs @ 1 GHz, 16 KB L1, 2 MB
 * L2, 64/1024-entry TLBs, 64 KB pages, 1024-entry fault buffer, 20 us
 * GPU-runtime fault handling time, 15.75 GB/s PCIe). core/presets.h
 * exposes named factories built on top of these structs.
 */

#ifndef BAUVM_SIM_CONFIG_H_
#define BAUVM_SIM_CONFIG_H_

#include <cstdint>

#include "src/sim/types.h"

namespace bauvm
{

/** Geometry and latency of one set-associative cache level. */
struct CacheConfig {
    std::uint64_t size_bytes = 16 * 1024;
    std::uint32_t associativity = 4;
    std::uint32_t line_bytes = 128;
    Cycle hit_latency = 28; //!< cycles from access to data on a hit
};

/** Geometry of one TLB level. 0 associativity means fully associative. */
struct TlbConfig {
    std::uint32_t entries = 64;
    std::uint32_t associativity = 0;
    Cycle hit_latency = 1;
};

/** GPU memory-system (non-UVM) parameters. */
struct MemConfig {
    CacheConfig l1{16 * 1024, 4, 128, 28};
    CacheConfig l2{2 * 1024 * 1024, 16, 128, 120};
    TlbConfig l1_tlb{64, 0, 1};
    TlbConfig l2_tlb{1024, 32, 10};
    Cycle dram_latency = 200;         //!< Table 1: 200-cycle memory
    Cycle atomic_latency = 24;        //!< extra cycles for atomic ops
    std::uint32_t dram_bytes_per_cycle = 64; //!< device-memory bandwidth
    std::uint32_t mshrs_per_sm = 64;  //!< outstanding L1 misses per SM
    std::uint32_t walker_threads = 64; //!< concurrent page-table walks
    std::uint32_t page_table_levels = 4;
    std::uint32_t walk_cache_entries = 64;
    Cycle walk_cache_latency = 4;
};

/** Unified-virtual-memory runtime parameters. */
struct UvmConfig {
    std::uint64_t page_bytes = 64 * 1024;  //!< Table 1: 64 KB pages
    std::uint32_t fault_buffer_entries = 1024;
    /** Traditional (non-UVM) GPU mode: every allocation is resident
     *  before the first kernel, so no page fault ever fires. Requires
     *  the memory ratio to be >= 1 or unlimited. Used by Fig 5. */
    bool preload = false;
    double fault_handling_us = 20.0;       //!< GPU runtime fault handling
    /** Per-fault addition to the handling time (CPU-side page-table
     *  walk + sort work per entry). The paper uses a flat 20 us but
     *  measures 50-430 us on real irregular workloads; the per-page
     *  term reproduces that growth. */
    double fault_handling_per_page_us = 0.6;
    /** Delay between the MMU raising the fault interrupt and the
     *  runtime starting the batch (top-half ISR dispatch). */
    double interrupt_latency_us = 1.0;
    double pcie_gbps = 15.75;              //!< host-to-device bandwidth
    /** Device-to-host bandwidth; 0 means symmetric with pcie_gbps.
     *  (The paper notes D2H is faster than H2D on real systems, which
     *  is what keeps UE's eviction stream off the critical path.) */
    double pcie_d2h_gbps = 0.0;
    bool prefetch_enabled = true;          //!< tree prefetcher (baseline)
    std::uint64_t va_block_bytes = 2 * 1024 * 1024; //!< prefetch tree span
    double prefetch_density = 0.5;         //!< subtree density threshold
    /** Alternative policy: instead of the tree analysis, prefetch the
     *  next N pages after each faulted page (a naive sequential
     *  prefetcher, used as an ablation point). 0 selects the tree. */
    std::uint32_t sequential_prefetch_pages = 0;
    bool unobtrusive_eviction = false;     //!< the paper's UE technique
    bool ideal_eviction = false;           //!< zero-latency eviction (Fig 8)
    double pcie_compression_ratio = 1.0;   //!< >1 shrinks transfer time
    std::uint32_t root_chunk_pages = 1;    //!< eviction granularity (pages)
    /** Window for the page-lifetime running average (premature-eviction
     *  monitor), in cycles. Paper: every 100k cycles. */
    Cycle lifetime_window_cycles = 100000;
    /** Relative drop in the lifetime running average that throttles
     *  thread oversubscription. Paper: empirically 20%. */
    double lifetime_drop_threshold = 0.20;
};

/** Thread-oversubscription (TO) parameters. */
struct ToConfig {
    bool enabled = false;
    /** Extra (inactive) thread blocks allocated per SM at kernel start. */
    std::uint32_t initial_extra_blocks = 1;
    /** Hard cap on extra blocks per SM the dynamic controller may reach. */
    std::uint32_t max_extra_blocks = 3;
    /** Bytes/cycle of global-memory bandwidth used to save/restore
     *  contexts (Eq. in paper section 6.5). */
    std::uint32_t ctx_switch_bytes_per_cycle = 128;
    /** Per-thread-block bookkeeping state saved besides registers. */
    std::uint64_t block_state_bytes = 5 * 1024;
    /** If true, context save/restore costs zero cycles (section 6.5's
     *  close-to-ideal shared-memory variant). */
    bool ideal_ctx_switch = false;
    /** If true, a block is also switched out when all its warps are
     *  merely waiting on memory (not page faults). This reproduces the
     *  "traditional GPU" context-switching cost experiment (Fig 5);
     *  the paper's TO proper only switches on page-fault stalls. */
    bool switch_on_memory_stall = false;
};

/** Simulation tracing (src/trace) parameters. */
struct TraceConfig {
    /** Master switch: when false no TraceSink is built and every
     *  instrumentation site reduces to one null-pointer branch. */
    bool enabled = false;
    /** Ring capacity in 32-byte records; when the simulation emits
     *  more, the oldest records are overwritten and counted as
     *  dropped_events in the export. */
    std::uint64_t buffer_records = 1u << 20;
};

/** Online model auditing (src/check) parameters. */
struct CheckConfig {
    /** Master switch: when false no ModelAuditor is built and every
     *  hook site reduces to one null-pointer branch, exactly like
     *  disabled tracing. */
    bool enabled = false;
};

/** ETC baseline (Li et al., ASPLOS'19) parameters. */
struct EtcConfig {
    bool enabled = false;
    bool proactive_eviction = false; //!< disabled for irregular apps
    bool memory_aware_throttling = true;
    bool capacity_compression = true;
    double compression_ratio = 1.5;  //!< effective capacity multiplier
    Cycle compression_latency = 8;   //!< added to every L2 access
    Cycle epoch_cycles = 200000;     //!< detection/execution epoch length
};

/**
 * How the GpuMemoryManager arbitrates device frames between tenants
 * when several workloads share the GPU (core/tenant.h).
 */
enum class SharePolicy : std::uint8_t {
    /** No per-tenant accounting on the eviction path: the global LRU
     *  chunk order picks victims regardless of owner (a tenant can
     *  grow without bound at the others' expense). */
    FreeForAll = 0,
    /** Hard per-tenant frame caps: a tenant at its quota evicts its
     *  own oldest chunk and can never displace another tenant. */
    StrictQuota = 1,
    /** Weighted fair share: the victim is the tenant furthest above
     *  its weighted share of committed frames. */
    Proportional = 2,
};

/** Multi-tenant arbitration parameters. */
struct MtConfig {
    SharePolicy policy = SharePolicy::FreeForAll;
};

/** SM and grid-dispatch parameters. */
struct GpuConfig {
    std::uint32_t num_sms = 16;
    std::uint32_t max_threads_per_sm = 1024; //!< Table 1
    std::uint32_t max_blocks_per_sm = 16;
    std::uint64_t regfile_bytes_per_sm = 256 * 1024; //!< Table 1
    std::uint32_t warp_size = 32;
    std::uint32_t issue_width = 1; //!< instructions issued per SM cycle
    /** Arithmetic surrounding each memory instruction (index
     *  computation, predicate evaluation, ...), charged on the warp's
     *  completion path. */
    Cycle mem_op_overhead_cycles = 20;
};

/** Everything needed to run one simulation. */
struct SimConfig {
    GpuConfig gpu;
    MemConfig mem;
    UvmConfig uvm;
    ToConfig to;
    EtcConfig etc;
    TraceConfig trace;
    CheckConfig check;
    MtConfig mt;
    /**
     * GPU memory capacity as a fraction of the workload footprint
     * (the paper's oversubscription ratio). 1.0 means everything fits;
     * <= 0 means unlimited memory (no evictions ever).
     */
    double memory_ratio = 0.5;
    std::uint64_t seed = 1;
};

} // namespace bauvm

#endif // BAUVM_SIM_CONFIG_H_
