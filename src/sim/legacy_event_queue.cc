#include "src/sim/legacy_event_queue.h"

#include "src/sim/log.h"

namespace bauvm
{

LegacyEventId
LegacyEventQueue::scheduleAt(Cycle when, Callback cb)
{
    if (when < now_) {
        panic("LegacyEventQueue: scheduling in the past "
              "(when=%llu now=%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now_));
    }
    LegacyEventId id = next_seq_;
    heap_.push(Entry{when, next_seq_, id});
    ++next_seq_;
    callbacks_.emplace(id, std::move(cb));
    ++pending_;
    return id;
}

bool
LegacyEventQueue::cancel(LegacyEventId id)
{
    auto it = callbacks_.find(id);
    if (it == callbacks_.end())
        return false;
    callbacks_.erase(it);
    --pending_;
    return true;
}

bool
LegacyEventQueue::popNext(Entry &out)
{
    while (!heap_.empty()) {
        Entry e = heap_.top();
        heap_.pop();
        if (callbacks_.find(e.id) != callbacks_.end()) {
            out = e;
            return true;
        }
        // Cancelled event: skip the stale heap entry.
    }
    return false;
}

std::uint64_t
LegacyEventQueue::run(Cycle until)
{
    std::uint64_t ran = 0;
    stop_requested_ = false;
    Entry e;
    while (!stop_requested_ && popNext(e)) {
        if (e.when > until) {
            // Put the event back; it belongs to the future.
            heap_.push(e);
            break;
        }
        auto it = callbacks_.find(e.id);
        Callback cb = std::move(it->second);
        callbacks_.erase(it);
        --pending_;
        now_ = e.when;
        cb();
        ++executed_;
        ++ran;
    }
    return ran;
}

bool
LegacyEventQueue::step()
{
    Entry e;
    if (!popNext(e))
        return false;
    auto it = callbacks_.find(e.id);
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    --pending_;
    now_ = e.when;
    cb();
    ++executed_;
    return true;
}

} // namespace bauvm
