#include "src/sim/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace bauvm
{

namespace
{
std::atomic<LogLevel> g_level{LogLevel::Warn};

// Serializes writes to stderr across sweep-runner worker threads.
std::mutex g_print_mutex;

// Depth of nested ScopedAbortCapture guards on this thread.
thread_local int t_capture_depth = 0;

/** Formats "tag: message" into a string (no trailing newline). */
std::string
vformat(const char *tag, const char *fmt, std::va_list ap)
{
    std::va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap2);
    va_end(ap2);

    std::string out(tag);
    out += ": ";
    if (n > 0) {
        std::vector<char> buf(static_cast<std::size_t>(n) + 1);
        std::vsnprintf(buf.data(), buf.size(), fmt, ap);
        out.append(buf.data(), static_cast<std::size_t>(n));
    }
    return out;
}

void
vprint(const char *tag, const char *fmt, std::va_list ap)
{
    const std::string line = vformat(tag, fmt, ap);
    std::lock_guard<std::mutex> lock(g_print_mutex);
    std::fprintf(stderr, "%s\n", line.c_str());
}
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

ScopedAbortCapture::ScopedAbortCapture()
{
    ++t_capture_depth;
}

ScopedAbortCapture::~ScopedAbortCapture()
{
    --t_capture_depth;
}

bool
ScopedAbortCapture::active()
{
    return t_capture_depth > 0;
}

void
inform(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Info)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    vprint("info", fmt, ap);
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Warn)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    vprint("warn", fmt, ap);
    va_end(ap);
}

void
debugLog(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Debug)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    vprint("debug", fmt, ap);
    va_end(ap);
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    if (ScopedAbortCapture::active()) {
        std::string msg = vformat("panic", fmt, ap);
        va_end(ap);
        throw SimAbort(std::move(msg), /*is_panic=*/true);
    }
    vprint("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    if (ScopedAbortCapture::active()) {
        std::string msg = vformat("fatal", fmt, ap);
        va_end(ap);
        throw SimAbort(std::move(msg), /*is_panic=*/false);
    }
    vprint("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

} // namespace bauvm
