#include "src/sim/log.h"

#include <cstdio>
#include <cstdlib>

namespace bauvm
{

namespace
{
LogLevel g_level = LogLevel::Warn;

void
vprint(const char *tag, const char *fmt, std::va_list ap)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
inform(const char *fmt, ...)
{
    if (g_level < LogLevel::Info)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    vprint("info", fmt, ap);
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    if (g_level < LogLevel::Warn)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    vprint("warn", fmt, ap);
    va_end(ap);
}

void
debugLog(const char *fmt, ...)
{
    if (g_level < LogLevel::Debug)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    vprint("debug", fmt, ap);
    va_end(ap);
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vprint("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vprint("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

} // namespace bauvm
