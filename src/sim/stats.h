/**
 * @file
 * Statistics primitives used across the simulator.
 *
 * Components keep their own stat structs; RunningStat and Histogram give
 * them aggregation without retaining every sample, and StatRegistry lets
 * the report layer enumerate named scalars for table/CSV output.
 */

#ifndef BAUVM_SIM_STATS_H_
#define BAUVM_SIM_STATS_H_

#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

namespace bauvm
{

/**
 * Streaming min/max/mean/sum aggregate over a sequence of samples.
 *
 * NaN-safety contract: the empty aggregate reports plain zeros for
 * mean/min/max/sum, and non-finite samples (NaN/inf — e.g. a rate
 * computed from a failed cell) are counted separately instead of being
 * folded in, so one bad sample can never poison a whole report row.
 */
class RunningStat
{
  public:
    /** Adds one sample; non-finite values are tallied, not folded in. */
    void
    add(double v)
    {
        if (!std::isfinite(v)) {
            ++nonfinite_;
            return;
        }
        ++count_;
        sum_ += v;
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }

    /** Merges another aggregate into this one. */
    void
    merge(const RunningStat &o)
    {
        count_ += o.count_;
        nonfinite_ += o.nonfinite_;
        sum_ += o.sum_;
        if (o.min_ < min_)
            min_ = o.min_;
        if (o.max_ > max_)
            max_ = o.max_;
    }

    /** Resets to the empty state. */
    void
    reset()
    {
        *this = RunningStat{};
    }

    std::uint64_t count() const { return count_; }
    /** Samples rejected by add() for being NaN or infinite. */
    std::uint64_t nonfiniteCount() const { return nonfinite_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

  private:
    std::uint64_t count_ = 0;
    std::uint64_t nonfinite_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Linear-bucket histogram with a RunningStat summary.
 *
 * Values beyond the last bucket are accumulated in an overflow bucket.
 */
class Histogram
{
  public:
    /**
     * @param bucket_width  width of each linear bucket (> 0).
     * @param num_buckets   number of regular buckets (> 0); one extra
     *                      overflow bucket is kept implicitly.
     */
    Histogram(double bucket_width, std::size_t num_buckets);

    /** Adds one sample. */
    void add(double v);

    /** Count in regular bucket @p i (values in [i*w, (i+1)*w)). */
    std::uint64_t bucketCount(std::size_t i) const;

    /** Count of samples beyond the last regular bucket. */
    std::uint64_t overflowCount() const { return overflow_; }

    /** Number of regular buckets. */
    std::size_t numBuckets() const { return buckets_.size(); }

    /** Lower bound of bucket @p i. */
    double bucketLow(std::size_t i) const { return width_ * i; }

    /** Fraction of all samples in bucket @p i (0 if empty). */
    double bucketFraction(std::size_t i) const;

    const RunningStat &summary() const { return summary_; }

  private:
    double width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
    RunningStat summary_;
};

/**
 * A flat name -> value view over a component's statistics.
 *
 * Components register getter closures; dump() evaluates them lazily so
 * registration can happen once at construction time.
 */
class StatRegistry
{
  public:
    using Getter = std::function<double()>;

    /** Registers a named scalar statistic. */
    void add(std::string name, Getter getter);

    /** Convenience overload for a counter the component keeps alive. */
    void add(std::string name, const std::uint64_t *counter);

    /** Evaluates every registered statistic. */
    std::vector<std::pair<std::string, double>> snapshot() const;

    /**
     * Looks up one statistic by exact name.
     * @return the value; calls panic() if the name is unknown.
     */
    double value(const std::string &name) const;

    /** True if @p name has been registered. */
    bool has(const std::string &name) const;

  private:
    std::vector<std::pair<std::string, Getter>> stats_;
};

} // namespace bauvm

#endif // BAUVM_SIM_STATS_H_
