/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the simulator (graph generation, workload
 * shuffles) flows through Rng so a fixed seed reproduces an identical
 * simulation, which the test suite relies on.
 */

#ifndef BAUVM_SIM_RNG_H_
#define BAUVM_SIM_RNG_H_

#include <cstdint>

#include "src/sim/log.h"

namespace bauvm
{

/**
 * A small, fast, seedable generator (xoshiro256**).
 *
 * Not cryptographic; chosen for speed and reproducibility across
 * platforms (unlike std::mt19937 distributions, all derived values here
 * are computed with explicit integer arithmetic).
 */
class Rng
{
  public:
    /** Constructs a generator from a 64-bit seed via splitmix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    // The draw methods are defined here so the workloads' per-edge
    // inner loops inline them; the state update is a handful of xors.

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    nextBelow(std::uint64_t bound)
    {
        if (bound == 0)
            panic("Rng::nextBelow: bound must be positive");
        // Debiased modulo is unnecessary for simulation purposes; 2^64
        // is so much larger than any bound we use that the bias is
        // negligible.
        return next() % bound;
    }

    /** Uniform integer in [lo, hi]. @pre lo <= hi. */
    std::uint64_t
    nextRange(std::uint64_t lo, std::uint64_t hi)
    {
        if (lo > hi)
            panic("Rng::nextRange: lo > hi");
        return lo + nextBelow(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p of returning true. */
    bool nextBool(double p) { return nextDouble() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4];
};

} // namespace bauvm

#endif // BAUVM_SIM_RNG_H_
