/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the simulator (graph generation, workload
 * shuffles) flows through Rng so a fixed seed reproduces an identical
 * simulation, which the test suite relies on.
 */

#ifndef BAUVM_SIM_RNG_H_
#define BAUVM_SIM_RNG_H_

#include <cstdint>

namespace bauvm
{

/**
 * A small, fast, seedable generator (xoshiro256**).
 *
 * Not cryptographic; chosen for speed and reproducibility across
 * platforms (unlike std::mt19937 distributions, all derived values here
 * are computed with explicit integer arithmetic).
 */
class Rng
{
  public:
    /** Constructs a generator from a 64-bit seed via splitmix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi]. @pre lo <= hi. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p of returning true. */
    bool nextBool(double p);

  private:
    std::uint64_t s_[4];
};

} // namespace bauvm

#endif // BAUVM_SIM_RNG_H_
