/**
 * @file
 * Fundamental scalar types shared by every subsystem of the simulator.
 *
 * The simulated GPU runs at 1 GHz, so one cycle equals one nanosecond;
 * all latency parameters expressed in microseconds in the paper (e.g. the
 * 20 us GPU-runtime fault-handling time) convert to cycles by multiplying
 * by 1000.
 */

#ifndef BAUVM_SIM_TYPES_H_
#define BAUVM_SIM_TYPES_H_

#include <cstdint>

namespace bauvm
{

/** Simulated time, measured in GPU core cycles (1 cycle == 1 ns). */
using Cycle = std::uint64_t;

/** Virtual address within the unified CPU/GPU address space. */
using VAddr = std::uint64_t;

/** Physical address within the GPU device memory. */
using PAddr = std::uint64_t;

/** Virtual page number (VAddr >> pageShift). */
using PageNum = std::uint64_t;

/** Physical frame number in GPU device memory. */
using FrameNum = std::uint64_t;

/** Dense tenant index within one multi-tenant run (core/tenant.h). */
using TenantId = std::uint16_t;

/** "No tenant": single-tenant runs and unattributed events. */
constexpr TenantId kNoTenant = 0xffff;

/** Number of cycles per simulated microsecond (1 GHz core clock). */
constexpr Cycle kCyclesPerUs = 1000;

/** An impossibly large cycle value used as "never". */
constexpr Cycle kCycleNever = ~Cycle{0};

/** Converts microseconds to cycles at the 1 GHz core clock. */
constexpr Cycle
usToCycles(double us)
{
    return static_cast<Cycle>(us * static_cast<double>(kCyclesPerUs));
}

} // namespace bauvm

#endif // BAUVM_SIM_TYPES_H_
