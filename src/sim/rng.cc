#include "src/sim/rng.h"

namespace bauvm
{

namespace
{
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}
} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

} // namespace bauvm
