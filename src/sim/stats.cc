#include "src/sim/stats.h"

#include <cmath>

#include "src/sim/log.h"

namespace bauvm
{

Histogram::Histogram(double bucket_width, std::size_t num_buckets)
    : width_(bucket_width), buckets_(num_buckets, 0)
{
    if (bucket_width <= 0.0 || num_buckets == 0)
        panic("Histogram: invalid geometry");
}

void
Histogram::add(double v)
{
    summary_.add(v);
    if (!std::isfinite(v)) {
        // Tracked by the summary's nonfinite count; bucketing a NaN
        // would be UB (size_t cast) and an inf has no bucket.
        return;
    }
    if (v < 0.0) {
        // Negative samples indicate a bug in the caller.
        panic("Histogram: negative sample %f", v);
    }
    auto idx = static_cast<std::size_t>(v / width_);
    if (idx < buckets_.size())
        ++buckets_[idx];
    else
        ++overflow_;
}

std::uint64_t
Histogram::bucketCount(std::size_t i) const
{
    if (i >= buckets_.size())
        panic("Histogram: bucket index out of range");
    return buckets_[i];
}

double
Histogram::bucketFraction(std::size_t i) const
{
    const auto total = summary_.count();
    return total ? static_cast<double>(bucketCount(i)) / total : 0.0;
}

void
StatRegistry::add(std::string name, Getter getter)
{
    stats_.emplace_back(std::move(name), std::move(getter));
}

void
StatRegistry::add(std::string name, const std::uint64_t *counter)
{
    add(std::move(name),
        [counter] { return static_cast<double>(*counter); });
}

std::vector<std::pair<std::string, double>>
StatRegistry::snapshot() const
{
    std::vector<std::pair<std::string, double>> out;
    out.reserve(stats_.size());
    for (const auto &[name, getter] : stats_)
        out.emplace_back(name, getter());
    return out;
}

double
StatRegistry::value(const std::string &name) const
{
    for (const auto &[n, getter] : stats_) {
        if (n == name)
            return getter();
    }
    panic("StatRegistry: unknown stat '%s'", name.c_str());
}

bool
StatRegistry::has(const std::string &name) const
{
    for (const auto &[n, getter] : stats_) {
        (void)getter;
        if (n == name)
            return true;
    }
    return false;
}

} // namespace bauvm
