/**
 * @file
 * Minimal logging and error-termination helpers.
 *
 * Follows the gem5 convention: panic() flags a simulator bug and aborts;
 * fatal() flags a user/configuration error and exits cleanly; warn() and
 * inform() print status without stopping the simulation.
 */

#ifndef BAUVM_SIM_LOG_H_
#define BAUVM_SIM_LOG_H_

#include <cstdarg>

namespace bauvm
{

/** Verbosity levels, in increasing order of noise. */
enum class LogLevel { Quiet = 0, Warn = 1, Info = 2, Debug = 3 };

/** Sets the process-wide verbosity (default: Warn). */
void setLogLevel(LogLevel level);

/** Current process-wide verbosity. */
LogLevel logLevel();

/** Prints an informational message when verbosity >= Info. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Prints a warning when verbosity >= Warn. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Prints a debug message when verbosity >= Debug. */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Aborts: something happened that must never happen regardless of user
 * input (i.e. a simulator bug).
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Exits with an error: the simulation cannot continue because of a user
 * error (bad configuration, invalid arguments, ...).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace bauvm

#endif // BAUVM_SIM_LOG_H_
