/**
 * @file
 * Minimal logging and error-termination helpers.
 *
 * Follows the gem5 convention: panic() flags a simulator bug and aborts;
 * fatal() flags a user/configuration error and exits cleanly; warn() and
 * inform() print status without stopping the simulation.
 *
 * All helpers are thread-safe: the verbosity level is atomic and every
 * printer emits its line with a single serialized write, so messages
 * from concurrent sweep jobs never interleave mid-line.
 *
 * For the parallel experiment runner, a thread can opt into *abort
 * capture* (ScopedAbortCapture): while active, fatal() and panic() on
 * that thread throw SimAbort instead of terminating the process, so one
 * failing sweep cell is reported as a failed cell rather than killing
 * the whole sweep.
 */

#ifndef BAUVM_SIM_LOG_H_
#define BAUVM_SIM_LOG_H_

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace bauvm
{

/** Verbosity levels, in increasing order of noise. */
enum class LogLevel { Quiet = 0, Warn = 1, Info = 2, Debug = 3 };

/** Sets the process-wide verbosity (default: Warn). */
void setLogLevel(LogLevel level);

/** Current process-wide verbosity. */
LogLevel logLevel();

/** Prints an informational message when verbosity >= Info. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Prints a warning when verbosity >= Warn. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Prints a debug message when verbosity >= Debug. */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Level-checked debug logging for hot paths: the format arguments are
 * not evaluated unless verbosity is at least Debug, so call sites may
 * freely format per-event detail (string building, .c_str(), derived
 * statistics) without taxing a normal run. Prefer this over calling
 * debugLog() directly anywhere the simulator's inner loops reach.
 */
#define BAUVM_DLOG(...)                                               \
    do {                                                              \
        if (::bauvm::logLevel() >= ::bauvm::LogLevel::Debug)          \
            ::bauvm::debugLog(__VA_ARGS__);                           \
    } while (0)

/**
 * Aborts: something happened that must never happen regardless of user
 * input (i.e. a simulator bug).
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Exits with an error: the simulation cannot continue because of a user
 * error (bad configuration, invalid arguments, ...).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Thrown by fatal()/panic() on threads that have an active
 * ScopedAbortCapture instead of terminating the process.
 */
class SimAbort : public std::runtime_error
{
  public:
    SimAbort(std::string message, bool is_panic)
        : std::runtime_error(message), is_panic_(is_panic)
    {
    }

    /** true when raised by panic(), false when raised by fatal(). */
    bool isPanic() const { return is_panic_; }

  private:
    bool is_panic_;
};

/**
 * RAII guard: while alive on a thread, fatal() and panic() on that
 * thread throw SimAbort instead of calling std::exit/std::abort.
 * Nestable; capture stays active until the outermost guard dies.
 */
class ScopedAbortCapture
{
  public:
    ScopedAbortCapture();
    ~ScopedAbortCapture();

    ScopedAbortCapture(const ScopedAbortCapture &) = delete;
    ScopedAbortCapture &operator=(const ScopedAbortCapture &) = delete;

    /** true when the calling thread currently captures aborts. */
    static bool active();
};

} // namespace bauvm

#endif // BAUVM_SIM_LOG_H_
