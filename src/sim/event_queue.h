/**
 * @file
 * Discrete-event simulation kernel.
 *
 * Every timing component in the simulator (SMs, caches, the UVM
 * runtime, the PCIe link, ...) schedules closures on a single
 * global-ordered event queue. Events scheduled for the same cycle
 * execute in insertion order, which makes simulations bit-reproducible
 * for a fixed seed.
 *
 * Fast-path design (see DESIGN.md, "The event kernel"):
 *  - **Slab-allocated records.** Event callbacks live in fixed-size
 *    records carved from slabs and recycled through a free list; the
 *    callable is constructed directly into the record's small-buffer
 *    InlineFunction and invoked in place, so the common path performs
 *    zero heap allocations and zero callable moves per event.
 *  - **Generation-counted cancellation.** An EventId encodes
 *    (slot, generation); cancel() just compares generations — no map
 *    lookup, no erase. Cancelled entries become tombstones that are
 *    skipped (and counted via staleEntries()) when they reach the
 *    front, and the far-future heap is compacted once tombstones
 *    dominate it.
 *  - **Calendar ring for the near future.** Events within kNearWindow
 *    cycles of now() are chained into per-cycle intrusive FIFO buckets
 *    (the overwhelming majority: L1/L2 hit latencies, coalescer ticks,
 *    issue slots); only far-future events (PCIe completions, batch
 *    timers) reach the binary heap. The chains run through the records
 *    themselves — a bucket is just (head, tail) — and a bucket-occupancy
 *    bitmap is the sole source of truth for emptiness, so constructing
 *    a queue touches 128 bytes, not the whole ring.
 *
 * The rewrite preserves the ordering contract bit-for-bit: the next
 * event is always the global minimum of (when, seq) across the ring
 * and the heap, where seq is the insertion sequence number.
 */

#ifndef BAUVM_SIM_EVENT_QUEUE_H_
#define BAUVM_SIM_EVENT_QUEUE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/sim/inline_function.h"
#include "src/sim/types.h"

namespace bauvm
{

/**
 * Opaque handle used to cancel a scheduled event.
 *
 * Encodes (generation << 32 | slot); a stale handle (the event already
 * ran or was cancelled, even if the slot has been reused since) fails
 * the generation check and cancel() returns false.
 */
using EventId = std::uint64_t;

/**
 * A time-ordered queue of callbacks driving the whole simulation.
 *
 * The queue is strictly single-threaded. run() drains events until the
 * queue is empty or a stop condition is requested; components may keep
 * scheduling new events from inside callbacks.
 */
class EventQueue
{
  public:
    /** Inline capture capacity of a scheduled callback, in bytes. */
    static constexpr std::size_t kInlineCallbackBytes = 40;

    /**
     * Near-future window covered by the calendar ring, in cycles.
     * Delays >= this spill to the binary heap. Power of two.
     */
    static constexpr std::size_t kNearWindow = 1024;

    using Callback = InlineFunction<kInlineCallbackBytes>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time in cycles. */
    Cycle now() const { return now_; }

    /**
     * Schedules @p f to run at absolute cycle @p when. The callable is
     * constructed directly into the event record — no intermediate
     * Callback object, no move.
     *
     * @pre when >= now(); scheduling in the past is a simulator bug.
     * @return an id that can be passed to cancel().
     */
    template <typename F,
              typename = std::enable_if_t<!std::is_same_v<
                  std::decay_t<F>, Callback>>>
    EventId
    scheduleAt(Cycle when, F &&f)
    {
        const std::uint32_t slot = allocSlot();
        record(slot).cb.emplace(std::forward<F>(f));
        return enqueue(when, slot);
    }

    /** Schedules an already-built Callback (rare; prefer the above). */
    EventId
    scheduleAt(Cycle when, Callback cb)
    {
        const std::uint32_t slot = allocSlot();
        record(slot).cb = std::move(cb);
        return enqueue(when, slot);
    }

    /** Schedules @p f to run @p delay cycles from now. */
    template <typename F>
    EventId
    scheduleAfter(Cycle delay, F &&f)
    {
        return scheduleAt(now_ + delay, std::forward<F>(f));
    }

    /**
     * Cancels a previously scheduled event. O(1): the generation check
     * invalidates the id immediately; the ring/heap entry becomes a
     * tombstone reclaimed when it reaches the front (or, for the heap,
     * by compaction).
     *
     * @retval true the event was pending and has been cancelled.
     * @retval false the event already ran or was already cancelled.
     */
    bool cancel(EventId id);

    /** Number of events still pending (cancelled events excluded). */
    std::size_t pendingEvents() const { return pending_; }

    /** True if no runnable event remains. */
    bool empty() const { return pending_ == 0; }

    /**
     * Runs events until the queue is empty or @p until is reached.
     *
     * @param until  stop once the next event lies strictly beyond this
     *               cycle (the event is left in the queue). Defaults to
     *               "run to completion".
     * @return the number of events executed.
     */
    std::uint64_t run(Cycle until = kCycleNever);

    /** Executes exactly one event if available. @return true if one ran. */
    bool step();

    /** Requests run() to return before dispatching the next event. */
    void requestStop() { stop_requested_ = true; }

    /** Total events executed over the queue's lifetime. */
    std::uint64_t executedEvents() const { return executed_; }

    /**
     * FNV-1a fold of every dispatched event's (when, seq) pair, in
     * dispatch order. Two queues agree on this digest iff they executed
     * the same events in the same order — the oracle the cell-threading
     * differential tests compare, far cheaper than recording a full
     * event log. Deterministic across runs and thread counts (events
     * execute on whichever host thread owns the queue; the digest
     * captures simulated order only).
     */
    std::uint64_t orderDigest() const { return order_digest_; }

    /**
     * Cancelled-event tombstones currently parked in the ring or heap.
     * Heap tombstones are reclaimed eagerly by compaction once they
     * outnumber live heap entries; ring tombstones are reclaimed as
     * they reach the front of their bucket.
     */
    std::size_t staleEntries() const
    {
        return stale_ring_ + stale_heap_;
    }

    /** Heap-compaction passes performed (observability for tests). */
    std::uint64_t compactions() const { return compactions_; }

  private:
    static constexpr std::uint32_t kNil = 0xffffffffu;
    /** Record::next value marking a record parked in the heap. */
    static constexpr std::uint32_t kHeapResident = 0xfffffffeu;
    static constexpr std::size_t kSlabRecords = 256;
    static constexpr std::size_t kRingMask = kNearWindow - 1;
    static_assert((kNearWindow & kRingMask) == 0,
                  "kNearWindow must be a power of two");

    /**
     * One slab-resident event; the callback's permanent home. `next`
     * is the free-list link when the slot is free, the intrusive
     * bucket chain link when ring-resident, and kHeapResident when the
     * event is parked in the far-future heap (cancel() uses that to
     * pick the right tombstone policy).
     */
    struct Record {
        std::uint32_t gen = 0; //!< bumped whenever an id is retired
        std::uint32_t next = kNil;
        std::uint64_t seq = 0; //!< global insertion order (tie-break)
        Callback cb;           //!< empty == ring tombstone
    };
    static_assert(sizeof(Record) <= 64,
                  "event record must stay within one cache line");

    /** Far-future heap entry, ordered by (when, seq). */
    struct HeapEntry {
        Cycle when;
        std::uint64_t seq;
        std::uint32_t slot;
        std::uint32_t gen;
    };

    /**
     * Intrusive FIFO chain for one cycle. head/tail are read only when
     * the bucket's occupancy bit is set, so the ring array needs no
     * initialization (constructing a queue stays O(bitmap)).
     */
    struct Bucket {
        std::uint32_t head;
        std::uint32_t tail;
    };

    /** The next runnable (live) event, located but not yet removed. */
    struct Next {
        Cycle when;
        std::uint64_t seq;
        std::uint32_t slot;
        bool from_ring;
        std::size_t bucket; //!< valid when from_ring
    };

    Record &record(std::uint32_t slot)
    {
        return slabs_[slot / kSlabRecords][slot % kSlabRecords];
    }

    std::uint32_t
    allocSlot()
    {
        if (free_head_ == kNil)
            addSlab();
        const std::uint32_t slot = free_head_;
        free_head_ = record(slot).next;
        return slot;
    }

    void
    freeSlot(std::uint32_t slot)
    {
        Record &r = record(slot);
        ++r.gen; // invalidates every outstanding EventId for this slot
        r.next = free_head_;
        free_head_ = slot;
    }

    /** Grows the slab arena by one slab (slow path of allocSlot). */
    void addSlab();

    /** Files slot (callback already in place) under cycle @p when. */
    EventId enqueue(Cycle when, std::uint32_t slot);

    /** Finds the lowest-(when,seq) live event; discards tombstones. */
    bool findNext(Next &out);
    /** Removes @p n from its structure (must be the current front). */
    void removeNext(const Next &n);
    /** Pops the front of bucket @p b (chain advance / bit clear). */
    void removeFromBucket(std::size_t b);
    /** Executes the event @p n (after removal). */
    void dispatch(const Next &n);

    /** Next non-empty ring bucket at/after now_, or false if none. */
    bool findRingCandidate(std::size_t &bucket, Cycle &when) const;
    void maybeCompactHeap();
    void heapPush(HeapEntry e);
    void heapPop();

    Cycle now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
    std::uint64_t order_digest_ = 14695981039346656037ULL; //!< FNV-1a
    std::size_t pending_ = 0;
    bool stop_requested_ = false;

    // Record slabs + free list.
    std::vector<std::unique_ptr<Record[]>> slabs_;
    std::uint32_t free_head_ = kNil;

    // Calendar ring: bucket b chains events for the unique pending
    // cycle c with (c & kRingMask) == b; the occupancy bitmap is the
    // sole source of truth for emptiness and accelerates scans.
    std::array<Bucket, kNearWindow> ring_;
    std::array<std::uint64_t, kNearWindow / 64> ring_bits_{};
    std::size_t ring_count_ = 0; //!< chained entries incl. tombstones
    std::size_t stale_ring_ = 0;

    // Far-future binary heap (min by (when, seq)).
    std::vector<HeapEntry> heap_;
    std::size_t stale_heap_ = 0;
    std::uint64_t compactions_ = 0;
};

} // namespace bauvm

#endif // BAUVM_SIM_EVENT_QUEUE_H_
