/**
 * @file
 * Discrete-event simulation kernel.
 *
 * Every timing component in the simulator (SMs, caches, the UVM runtime,
 * the PCIe link, ...) schedules closures on a single global-ordered event
 * queue. Events scheduled for the same cycle execute in insertion order,
 * which makes simulations bit-reproducible for a fixed seed.
 */

#ifndef BAUVM_SIM_EVENT_QUEUE_H_
#define BAUVM_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "src/sim/types.h"

namespace bauvm
{

/** Opaque handle used to cancel a scheduled event. */
using EventId = std::uint64_t;

/**
 * A time-ordered queue of callbacks driving the whole simulation.
 *
 * The queue is strictly single-threaded. run() drains events until the
 * queue is empty or a stop condition is requested; components may keep
 * scheduling new events from inside callbacks.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time in cycles. */
    Cycle now() const { return now_; }

    /**
     * Schedules @p cb to run at absolute cycle @p when.
     *
     * @pre when >= now(); scheduling in the past is a simulator bug.
     * @return an id that can be passed to cancel().
     */
    EventId scheduleAt(Cycle when, Callback cb);

    /** Schedules @p cb to run @p delay cycles from now. */
    EventId scheduleAfter(Cycle delay, Callback cb)
    {
        return scheduleAt(now_ + delay, std::move(cb));
    }

    /**
     * Cancels a previously scheduled event.
     *
     * @retval true the event was pending and has been cancelled.
     * @retval false the event already ran or was already cancelled.
     */
    bool cancel(EventId id);

    /** Number of events still pending (cancelled events excluded). */
    std::size_t pendingEvents() const { return pending_; }

    /** True if no runnable event remains. */
    bool empty() const { return pending_ == 0; }

    /**
     * Runs events until the queue is empty or @p until is reached.
     *
     * @param until  stop once the next event lies strictly beyond this
     *               cycle (the event is left in the queue). Defaults to
     *               "run to completion".
     * @return the number of events executed.
     */
    std::uint64_t run(Cycle until = kCycleNever);

    /** Executes exactly one event if available. @return true if one ran. */
    bool step();

    /** Requests run() to return before dispatching the next event. */
    void requestStop() { stop_requested_ = true; }

    /** Total events executed over the queue's lifetime. */
    std::uint64_t executedEvents() const { return executed_; }

  private:
    struct Entry {
        Cycle when;
        std::uint64_t seq; //!< tie-breaker: insertion order
        EventId id;
        bool operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    bool popNext(Entry &out);

    Cycle now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
    std::size_t pending_ = 0;
    bool stop_requested_ = false;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    // Callbacks keyed by id; erased on execution/cancellation. Kept apart
    // from the heap so cancel() is O(1).
    std::unordered_map<EventId, Callback> callbacks_;
};

} // namespace bauvm

#endif // BAUVM_SIM_EVENT_QUEUE_H_
