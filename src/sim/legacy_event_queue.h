/**
 * @file
 * The original std::function + unordered_map event queue, retained
 * verbatim as a reference implementation.
 *
 * The production kernel (src/sim/event_queue.h) replaced this with a
 * slab-allocated, calendar-queue design; this copy exists so that
 *  - bench/micro_sim_primitives.cc can report the speedup of the new
 *    kernel against the exact code it replaced, and
 *  - tests can differentially check that both kernels execute any
 *    schedule/cancel sequence in the identical order (the determinism
 *    contract: time order, insertion order within a cycle).
 *
 * Do not use this in simulator components; it is slower on every axis
 * and its cancel() leaks tombstoned heap entries until they are popped.
 */

#ifndef BAUVM_SIM_LEGACY_EVENT_QUEUE_H_
#define BAUVM_SIM_LEGACY_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "src/sim/types.h"

namespace bauvm
{

/** Opaque handle used to cancel a scheduled event. */
using LegacyEventId = std::uint64_t;

/** Reference (pre-rewrite) discrete-event queue; see file doc. */
class LegacyEventQueue
{
  public:
    using Callback = std::function<void()>;

    LegacyEventQueue() = default;
    LegacyEventQueue(const LegacyEventQueue &) = delete;
    LegacyEventQueue &operator=(const LegacyEventQueue &) = delete;

    Cycle now() const { return now_; }

    LegacyEventId scheduleAt(Cycle when, Callback cb);

    LegacyEventId scheduleAfter(Cycle delay, Callback cb)
    {
        return scheduleAt(now_ + delay, std::move(cb));
    }

    bool cancel(LegacyEventId id);

    std::size_t pendingEvents() const { return pending_; }
    bool empty() const { return pending_ == 0; }

    std::uint64_t run(Cycle until = kCycleNever);
    bool step();

    void requestStop() { stop_requested_ = true; }

    std::uint64_t executedEvents() const { return executed_; }

  private:
    struct Entry {
        Cycle when;
        std::uint64_t seq; //!< tie-breaker: insertion order
        LegacyEventId id;
        bool operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    bool popNext(Entry &out);

    Cycle now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
    std::size_t pending_ = 0;
    bool stop_requested_ = false;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    std::unordered_map<LegacyEventId, Callback> callbacks_;
};

} // namespace bauvm

#endif // BAUVM_SIM_LEGACY_EVENT_QUEUE_H_
