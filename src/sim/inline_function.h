/**
 * @file
 * InlineFunction: a move-only, small-buffer-optimized replacement for
 * std::function on the simulator's hot paths.
 *
 * The discrete-event kernel schedules millions of short-lived closures
 * per simulated second, and the UVM runtime parks one waiter callback
 * per faulting warp; std::function heap-allocates whenever a capture
 * exceeds its (implementation-defined) small-object buffer and always
 * drags in RTTI/copyability machinery these paths never use. This type
 * stores any nothrow-move-constructible callable whose size fits the
 * fixed inline capacity directly in the owning record (event slab cell,
 * waiter slab node); larger callables fall back to a single heap
 * allocation and bump a global counter so tests can assert the fast
 * path stays allocation-free.
 *
 * The signature is a template parameter (default `void()`, the event
 * kernel's shape); the UVM waiter slab instantiates `void(Cycle)`.
 */

#ifndef BAUVM_SIM_INLINE_FUNCTION_H_
#define BAUVM_SIM_INLINE_FUNCTION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace bauvm
{

namespace detail
{
/** Counts callables that spilled to the heap (all queues, all threads). */
inline std::atomic<std::uint64_t> inline_fn_heap_fallbacks{0};
} // namespace detail

template <std::size_t InlineBytes, typename Sig = void()>
class InlineFunction; // primary template: only R(Args...) is defined

/**
 * An R(Args...) callable with @p InlineBytes of inline storage.
 *
 * Invariants:
 *  - move-only (events and waiters execute exactly once; copies are
 *    never needed);
 *  - callables with sizeof <= InlineBytes and a nothrow move
 *    constructor are stored inline: constructing, moving and invoking
 *    them performs zero heap allocations;
 *  - anything larger lives behind one heap allocation (counted via
 *    heapFallbacks(), asserted rare in tests).
 */
template <std::size_t InlineBytes, typename R, typename... Args>
class InlineFunction<InlineBytes, R(Args...)>
{
    static_assert(InlineBytes >= sizeof(void *),
                  "inline buffer must hold at least a pointer");
    static_assert(InlineBytes % alignof(void *) == 0,
                  "inline buffer must stay pointer-aligned");

  public:
    InlineFunction() = default;

    template <typename F,
              typename = std::enable_if_t<!std::is_same_v<
                  std::decay_t<F>, InlineFunction>>>
    InlineFunction(F &&f) // NOLINT: implicit like std::function
    {
        construct(std::forward<F>(f));
    }

    InlineFunction(InlineFunction &&o) noexcept
    {
        moveFrom(o);
    }

    InlineFunction &
    operator=(InlineFunction &&o) noexcept
    {
        if (this != &o) {
            reset();
            moveFrom(o);
        }
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction() { reset(); }

    /** Destroys the stored callable, leaving the function empty. */
    void
    reset()
    {
        if (ops_) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    /**
     * Constructs @p f directly in the inline buffer (or its heap cell),
     * avoiding the intermediate InlineFunction a converting
     * constructor + move-assign would create. The event kernel's
     * schedule path uses this; it is the reason scheduling performs no
     * callable moves at all.
     */
    template <typename F>
    void
    emplace(F &&f)
    {
        static_assert(!std::is_same_v<std::decay_t<F>, InlineFunction>,
                      "emplace takes a callable, not an InlineFunction");
        reset();
        construct(std::forward<F>(f));
    }

    explicit operator bool() const { return ops_ != nullptr; }

    R
    operator()(Args... args)
    {
        return ops_->invoke(buf_, std::forward<Args>(args)...);
    }

    /** True if @p Fn will be stored inline (compile-time). */
    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= InlineBytes &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    /** Process-wide count of callables that spilled to the heap. */
    static std::uint64_t
    heapFallbacks()
    {
        return detail::inline_fn_heap_fallbacks.load(
            std::memory_order_relaxed);
    }

  private:
    struct Ops {
        R (*invoke)(void *, Args...);
        /** Move-constructs dst from src, then destroys src. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *);
    };

    template <typename F>
    void
    construct(F &&f)
    {
        using Fn = std::decay_t<F>;
        static_assert(std::is_invocable_r_v<R, Fn &, Args...>,
                      "callable must be invocable with the signature");
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
            ops_ = &kInlineOps<Fn>;
        } else {
            *reinterpret_cast<Fn **>(buf_) = new Fn(std::forward<F>(f));
            ops_ = &kHeapOps<Fn>;
            detail::inline_fn_heap_fallbacks.fetch_add(
                1, std::memory_order_relaxed);
        }
    }

    template <typename Fn>
    static constexpr Ops kInlineOps = {
        [](void *p, Args... args) -> R {
            return (*static_cast<Fn *>(p))(
                std::forward<Args>(args)...);
        },
        [](void *dst, void *src) {
            auto *s = static_cast<Fn *>(src);
            ::new (dst) Fn(std::move(*s));
            s->~Fn();
        },
        [](void *p) { static_cast<Fn *>(p)->~Fn(); },
    };

    template <typename Fn>
    static constexpr Ops kHeapOps = {
        [](void *p, Args... args) -> R {
            return (**static_cast<Fn **>(p))(
                std::forward<Args>(args)...);
        },
        [](void *dst, void *src) {
            *static_cast<Fn **>(dst) = *static_cast<Fn **>(src);
        },
        [](void *p) { delete *static_cast<Fn **>(p); },
    };

    void
    moveFrom(InlineFunction &o) noexcept
    {
        ops_ = o.ops_;
        if (ops_)
            ops_->relocate(buf_, o.buf_);
        o.ops_ = nullptr;
    }

    alignas(std::max_align_t) unsigned char buf_[InlineBytes];
    const Ops *ops_ = nullptr;
};

} // namespace bauvm

#endif // BAUVM_SIM_INLINE_FUNCTION_H_
