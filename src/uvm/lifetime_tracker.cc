#include "src/uvm/lifetime_tracker.h"

#include "src/sim/log.h"

namespace bauvm
{

LifetimeTracker::LifetimeTracker(Cycle window_cycles,
                                 double drop_threshold,
                                 const SimHooks &hooks)
    : hooks_(hooks), window_cycles_(window_cycles),
      drop_threshold_(drop_threshold), window_end_(window_cycles)
{
    if (window_cycles == 0)
        fatal("LifetimeTracker: zero window");
}

void
LifetimeTracker::addLifetime(Cycle lifetime)
{
    window_.add(static_cast<double>(lifetime));
    all_lifetimes_.add(static_cast<double>(lifetime));
}

OversubAdvice
LifetimeTracker::update(Cycle now)
{
    if (now < window_end_)
        return OversubAdvice::NoChange;

    OversubAdvice advice = OversubAdvice::NoChange;
    // Close every window the clock has passed. Windows with no evictions
    // carry no signal; windows with evictions compare their average
    // lifetime against the running average so far.
    while (now >= window_end_) {
        if (window_.count() > 0) {
            const double avg = window_.mean();
            const double prev = runningAverage();
            if (closed_windows_ > 0 &&
                avg < prev * (1.0 - drop_threshold_)) {
                advice = OversubAdvice::Throttle;
                ++throttle_signals_;
            } else {
                advice = OversubAdvice::Grow;
                ++grow_signals_;
            }
            running_sum_ += avg;
            ++closed_windows_;
            window_.reset();
            if (hooks_.trace) {
                hooks_.trace->instant(
                    TraceEventType::LifetimeWindow, kTraceTrackMemory,
                    window_end_, static_cast<std::uint64_t>(avg),
                    static_cast<std::uint32_t>(advice));
            }
        }
        window_end_ += window_cycles_;
    }
    return advice;
}

} // namespace bauvm
