#include "src/uvm/fault_buffer.h"

#include "src/check/model_auditor.h"
#include "src/sim/log.h"

namespace bauvm
{

FaultBuffer::FaultBuffer(std::uint32_t capacity, PageMetaTable &meta,
                         const SimHooks &hooks)
    : hooks_(hooks), capacity_(capacity), meta_(meta)
{
    if (capacity == 0)
        fatal("FaultBuffer: capacity must be positive");
}

void
FaultBuffer::insert(PageNum vpn, Cycle now, TenantId tenant)
{
    ++total_faults_;
    PageMeta &m = meta_.ensure(vpn);
    if (m.fault_slot != PageMeta::kNoIndex) {
        ++order_[m.fault_slot].duplicates;
        if (hooks_.audit) {
            hooks_.audit->onFaultBuffered(vpn, now, order_.size(),
                                          overflowSize());
        }
        return;
    }
    if (order_.size() >= capacity_) {
        ++overflows_;
        // Merge duplicates within the overflow queue as well.
        for (std::size_t i = overflow_head_; i < overflow_.size(); ++i) {
            if (overflow_[i].vpn == vpn) {
                ++overflow_[i].duplicates;
                if (hooks_.audit) {
                    hooks_.audit->onFaultBuffered(
                        vpn, now, order_.size(), overflowSize());
                }
                return;
            }
        }
        overflow_.push_back(FaultRecord{vpn, now, 1, tenant});
        if (hooks_.trace) {
            hooks_.trace->counter(
                TraceEventType::FaultBufferDepth, kTraceTrackRuntime,
                now, order_.size(),
                static_cast<std::uint32_t>(overflowSize()));
        }
        if (hooks_.audit) {
            hooks_.audit->onFaultBuffered(vpn, now, order_.size(),
                                          overflowSize());
        }
        return;
    }
    m.fault_slot = static_cast<std::uint32_t>(order_.size());
    order_.push_back(FaultRecord{vpn, now, 1, tenant});
    if (hooks_.trace) {
        hooks_.trace->counter(TraceEventType::FaultBufferDepth,
                              kTraceTrackRuntime, now, order_.size(),
                              static_cast<std::uint32_t>(
                                  overflowSize()));
    }
    if (hooks_.audit) {
        hooks_.audit->onFaultBuffered(vpn, now, order_.size(),
                                      overflowSize());
    }
}

void
FaultBuffer::drainInto(std::vector<FaultRecord> &out)
{
    out.clear();
    std::swap(out, order_); // order_ keeps out's warmed capacity
    for (const FaultRecord &rec : out)
        meta_.at(rec.vpn).fault_slot = PageMeta::kNoIndex;
    // Refill from overflow, preserving arrival order.
    while (overflow_head_ < overflow_.size() &&
           order_.size() < capacity_) {
        FaultRecord &rec = overflow_[overflow_head_++];
        meta_.ensure(rec.vpn).fault_slot =
            static_cast<std::uint32_t>(order_.size());
        order_.push_back(rec);
    }
    if (overflow_head_ == overflow_.size()) {
        overflow_.clear();
        overflow_head_ = 0;
    }
    if (hooks_.audit) {
        hooks_.audit->onFaultDrained(out.size(), order_.size(),
                                     overflowSize());
    }
}

} // namespace bauvm
