#include "src/uvm/fault_buffer.h"

#include "src/check/model_auditor.h"
#include "src/sim/log.h"

namespace bauvm
{

FaultBufferBase::FaultBufferBase(std::uint32_t capacity,
                                 PageMetaTable &meta,
                                 const SimHooks &hooks)
    : hooks_(hooks), capacity_(capacity), meta_(meta)
{
    if (capacity == 0)
        fatal("FaultBuffer: capacity must be positive");
}

template <ObserverMode M>
void
FaultBufferT<M>::insert(PageNum vpn, Cycle now, TenantId tenant)
{
    ++total_faults_;
    PageMeta &m = meta_.ensure(vpn);
    if (m.fault_slot != PageMeta::kNoIndex) {
        ++entries_.duplicates[m.fault_slot];
        if constexpr (observesAudit(M)) {
            if (hooks_.audit) {
                hooks_.audit->onFaultBuffered(vpn, now, entries_.size(),
                                              overflowSize());
            }
        }
        return;
    }
    if (entries_.size() >= capacity_) {
        ++overflows_;
        // Merge duplicates within the overflow queue as well.
        for (std::size_t i = overflow_head_; i < overflow_.size(); ++i) {
            if (overflow_[i].vpn == vpn) {
                ++overflow_[i].duplicates;
                if constexpr (observesAudit(M)) {
                    if (hooks_.audit) {
                        hooks_.audit->onFaultBuffered(
                            vpn, now, entries_.size(), overflowSize());
                    }
                }
                return;
            }
        }
        overflow_.push_back(FaultRecord{vpn, now, 1, tenant});
        if constexpr (observesTrace(M)) {
            if (hooks_.trace) {
                hooks_.trace->counter(
                    TraceEventType::FaultBufferDepth, kTraceTrackRuntime,
                    now, entries_.size(),
                    static_cast<std::uint32_t>(overflowSize()));
            }
        }
        if constexpr (observesAudit(M)) {
            if (hooks_.audit) {
                hooks_.audit->onFaultBuffered(vpn, now, entries_.size(),
                                              overflowSize());
            }
        }
        return;
    }
    m.fault_slot = static_cast<std::uint32_t>(entries_.size());
    entries_.push(vpn, now, 1, tenant);
    if constexpr (observesTrace(M)) {
        if (hooks_.trace) {
            hooks_.trace->counter(TraceEventType::FaultBufferDepth,
                                  kTraceTrackRuntime, now,
                                  entries_.size(),
                                  static_cast<std::uint32_t>(
                                      overflowSize()));
        }
    }
    if constexpr (observesAudit(M)) {
        if (hooks_.audit) {
            hooks_.audit->onFaultBuffered(vpn, now, entries_.size(),
                                          overflowSize());
        }
    }
}

template <ObserverMode M>
void
FaultBufferT<M>::drainInto(FaultBatch &out)
{
    out.clear();
    // entries_ keeps out's warmed array capacities.
    std::swap(out.vpns, entries_.vpns);
    std::swap(out.first_cycles, entries_.first_cycles);
    std::swap(out.duplicates, entries_.duplicates);
    std::swap(out.tenants, entries_.tenants);
    for (const PageNum vpn : out.vpns)
        meta_.at(vpn).fault_slot = PageMeta::kNoIndex;
    // Refill from overflow, preserving arrival order.
    while (overflow_head_ < overflow_.size() &&
           entries_.size() < capacity_) {
        const FaultRecord &rec = overflow_[overflow_head_++];
        meta_.ensure(rec.vpn).fault_slot =
            static_cast<std::uint32_t>(entries_.size());
        entries_.push(rec.vpn, rec.first_cycle, rec.duplicates,
                      rec.tenant);
    }
    if (overflow_head_ == overflow_.size()) {
        overflow_.clear();
        overflow_head_ = 0;
    }
    if constexpr (observesAudit(M)) {
        if (hooks_.audit) {
            hooks_.audit->onFaultDrained(out.size(), entries_.size(),
                                         overflowSize());
        }
    }
}

template <ObserverMode M>
void
FaultBufferT<M>::drainInto(std::vector<FaultRecord> &out)
{
    FaultBatch batch;
    drainInto(batch);
    out.clear();
    out.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        out.push_back(FaultRecord{batch.vpns[i], batch.first_cycles[i],
                                  batch.duplicates[i],
                                  batch.tenants[i]});
    }
}

template class FaultBufferT<ObserverMode::Dynamic>;
template class FaultBufferT<ObserverMode::None>;
template class FaultBufferT<ObserverMode::Trace>;
template class FaultBufferT<ObserverMode::Audit>;
template class FaultBufferT<ObserverMode::Both>;

} // namespace bauvm
