#include "src/uvm/fault_buffer.h"

#include "src/check/model_auditor.h"
#include "src/sim/log.h"

namespace bauvm
{

FaultBuffer::FaultBuffer(std::uint32_t capacity, const SimHooks &hooks)
    : hooks_(hooks), capacity_(capacity)
{
    if (capacity == 0)
        fatal("FaultBuffer: capacity must be positive");
}

void
FaultBuffer::insert(PageNum vpn, Cycle now)
{
    ++total_faults_;
    auto it = index_.find(vpn);
    if (it != index_.end()) {
        ++order_[it->second].duplicates;
        if (hooks_.audit) {
            hooks_.audit->onFaultBuffered(vpn, now, order_.size(),
                                          overflow_.size());
        }
        return;
    }
    if (order_.size() >= capacity_) {
        ++overflows_;
        // Merge duplicates within the overflow queue as well.
        for (auto &rec : overflow_) {
            if (rec.vpn == vpn) {
                ++rec.duplicates;
                if (hooks_.audit) {
                    hooks_.audit->onFaultBuffered(
                        vpn, now, order_.size(), overflow_.size());
                }
                return;
            }
        }
        overflow_.push_back(FaultRecord{vpn, now, 1});
        if (hooks_.trace) {
            hooks_.trace->counter(
                TraceEventType::FaultBufferDepth, kTraceTrackRuntime,
                now, order_.size(),
                static_cast<std::uint32_t>(overflow_.size()));
        }
        if (hooks_.audit) {
            hooks_.audit->onFaultBuffered(vpn, now, order_.size(),
                                          overflow_.size());
        }
        return;
    }
    index_.emplace(vpn, order_.size());
    order_.push_back(FaultRecord{vpn, now, 1});
    if (hooks_.trace) {
        hooks_.trace->counter(TraceEventType::FaultBufferDepth,
                              kTraceTrackRuntime, now, order_.size(),
                              static_cast<std::uint32_t>(
                                  overflow_.size()));
    }
    if (hooks_.audit) {
        hooks_.audit->onFaultBuffered(vpn, now, order_.size(),
                                      overflow_.size());
    }
}

std::vector<FaultRecord>
FaultBuffer::drain()
{
    std::vector<FaultRecord> out = std::move(order_);
    order_.clear();
    index_.clear();
    // Refill from overflow, preserving arrival order.
    while (!overflow_.empty() && order_.size() < capacity_) {
        index_.emplace(overflow_.front().vpn, order_.size());
        order_.push_back(overflow_.front());
        overflow_.pop_front();
    }
    if (hooks_.audit) {
        hooks_.audit->onFaultDrained(out.size(), order_.size(),
                                     overflow_.size());
    }
    return out;
}

} // namespace bauvm
