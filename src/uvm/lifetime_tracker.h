/**
 * @file
 * Page-lifetime tracker: the premature-eviction monitor driving dynamic
 * control of thread oversubscription.
 *
 * The paper (section 4.1): "the GPU runtime monitors the premature
 * eviction rates by periodically estimating the running average of the
 * lifetime of pages by tracking when each page is allocated and
 * evicted... If the running average is decreased by a certain threshold,
 * the thread oversubscription mechanism does not allow any more context
 * switching". Window length: 100k cycles; threshold: 20% (Table 1 /
 * section 5.1).
 */

#ifndef BAUVM_UVM_LIFETIME_TRACKER_H_
#define BAUVM_UVM_LIFETIME_TRACKER_H_

#include <cstdint>

#include "src/check/sim_hooks.h"
#include "src/sim/config.h"
#include "src/sim/stats.h"
#include "src/sim/types.h"
#include "src/trace/trace_sink.h"

namespace bauvm
{

/** Advice emitted once per window to the oversubscription controller. */
enum class OversubAdvice {
    NoChange, //!< window had no signal either way
    Grow,     //!< lifetimes stable: one more block per SM may be added
    Throttle, //!< lifetimes collapsed: reduce runnable blocks
};

/** Tracks page lifetimes in fixed windows and produces advice. */
class LifetimeTracker
{
  public:
    /** @param hooks observers: each closed window emits a
     *  LifetimeWindow instant with its average lifetime and advice. */
    LifetimeTracker(Cycle window_cycles, double drop_threshold,
                    const SimHooks &hooks = {});

    /** Records one page eviction whose page lived @p lifetime cycles. */
    void addLifetime(Cycle lifetime);

    /**
     * Advances the tracker to @p now; when one or more windows closed,
     * compares the newest closed window's average lifetime against the
     * running average of previous windows.
     *
     * @return the advice for the oversubscription controller.
     */
    OversubAdvice update(Cycle now);

    /** Running average lifetime over all closed windows (cycles). */
    double runningAverage() const
    {
        return closed_windows_ ? running_sum_ / closed_windows_ : 0.0;
    }

    std::uint64_t throttleSignals() const { return throttle_signals_; }
    std::uint64_t growSignals() const { return grow_signals_; }

    const RunningStat &lifetimes() const { return all_lifetimes_; }

  private:
    SimHooks hooks_;
    Cycle window_cycles_;
    double drop_threshold_;
    Cycle window_end_;
    RunningStat window_;      //!< lifetimes recorded in the open window
    RunningStat all_lifetimes_;
    double running_sum_ = 0.0; //!< sum of closed-window averages
    std::uint64_t closed_windows_ = 0;
    std::uint64_t throttle_signals_ = 0;
    std::uint64_t grow_signals_ = 0;
};

} // namespace bauvm

#endif // BAUVM_UVM_LIFETIME_TRACKER_H_
