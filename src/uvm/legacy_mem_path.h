/**
 * @file
 * Reference copies of the hash-map-based memory/UVM metadata layer that
 * the dense PageMetaTable data path replaced.
 *
 * These are the pre-change PageTable, GpuMemoryManager, FaultBuffer and
 * TreePrefetcher algorithms with observability hooks stripped: the same
 * unordered_map / std::list structures, the same panic conditions, the
 * same decision order. They exist for two reasons (mirroring
 * legacy_event_queue from the event-kernel rewrite):
 *
 *  1. bench/micro_mem_primitives pits each production shape against its
 *     legacy twin, which is what BENCH_sim_throughput.json records.
 *  2. The differential tests replay randomized commit/evict sequences —
 *     and a traced fig11 cell's recorded sequence — through both
 *     implementations and assert identical eviction victims, premature
 *     counts and prefetch sets.
 *
 * Do not use these in the simulator proper.
 */

#ifndef BAUVM_UVM_LEGACY_MEM_PATH_H_
#define BAUVM_UVM_LEGACY_MEM_PATH_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <unordered_map>
#include <vector>

#include "src/sim/config.h"
#include "src/sim/types.h"
#include "src/uvm/fault_buffer.h" // FaultRecord

namespace bauvm
{

/** Pre-change page table: two hash maps (mapping, version). */
class LegacyPageTable
{
  public:
    void map(PageNum vpn, FrameNum frame);
    void unmap(PageNum vpn);
    bool isResident(PageNum vpn) const
    {
        return mappings_.find(vpn) != mappings_.end();
    }
    FrameNum frameOf(PageNum vpn) const;
    std::uint32_t version(PageNum vpn) const
    {
        auto it = versions_.find(vpn);
        return it == versions_.end() ? 0 : it->second;
    }
    std::size_t residentPages() const { return mappings_.size(); }

  private:
    std::unordered_map<PageNum, FrameNum> mappings_;
    std::unordered_map<PageNum, std::uint32_t> versions_;
};

/**
 * Pre-change memory manager: std::list chunk LRU + lru_pos_ map +
 * per-chunk page vectors + alloc-time and pending-refault maps.
 */
class LegacyGpuMemoryManager
{
  public:
    LegacyGpuMemoryManager(const UvmConfig &config,
                           std::uint64_t capacity_pages);

    LegacyPageTable &pageTable() { return page_table_; }
    bool unlimited() const { return capacity_pages_ == 0; }
    std::uint64_t committedFrames() const { return committed_; }
    bool hasFreeFrame() const
    {
        return unlimited() || committed_ < capacity_pages_;
    }

    void reserveFrame();
    void commitPage(PageNum vpn, Cycle now);
    bool beginEviction(PageNum *vpn, Cycle now);
    void completeEviction(PageNum vpn);
    bool isResident(PageNum vpn) const
    {
        return page_table_.isResident(vpn);
    }

    std::uint64_t evictions() const { return evictions_; }
    std::uint64_t prematureEvictions() const { return premature_; }
    std::uint64_t migrations() const { return migrations_; }

  private:
    using LruList = std::list<std::uint64_t>;

    std::uint64_t chunkOf(PageNum vpn) const
    {
        return vpn / config_.root_chunk_pages;
    }

    UvmConfig config_;
    std::uint64_t capacity_pages_;
    std::uint64_t committed_ = 0;
    LegacyPageTable page_table_;

    LruList lru_;
    std::unordered_map<std::uint64_t, LruList::iterator> lru_pos_;
    std::unordered_map<std::uint64_t, std::vector<PageNum>> chunk_pages_;
    std::unordered_map<PageNum, Cycle> alloc_time_;
    std::unordered_map<PageNum, std::uint32_t> pending_refault_;

    std::uint64_t evictions_ = 0;
    std::uint64_t premature_ = 0;
    std::uint64_t migrations_ = 0;
};

/** Pre-change fault buffer: vpn -> index hash map + deque overflow. */
class LegacyFaultBuffer
{
  public:
    explicit LegacyFaultBuffer(std::uint32_t capacity);

    void insert(PageNum vpn, Cycle now);
    std::vector<FaultRecord> drain();

    std::size_t size() const { return order_.size(); }
    bool empty() const { return order_.empty() && overflow_.empty(); }
    std::uint64_t overflows() const { return overflows_; }
    std::uint64_t totalFaults() const { return total_faults_; }

  private:
    std::uint32_t capacity_;
    std::vector<FaultRecord> order_;
    std::unordered_map<PageNum, std::size_t> index_;
    std::deque<FaultRecord> overflow_;
    std::uint64_t overflows_ = 0;
    std::uint64_t total_faults_ = 0;
};

/** Pre-change prefetcher: per-batch unordered_map/set scratch. */
class LegacyTreePrefetcher
{
  public:
    using ResidencyFn = std::function<bool(PageNum)>;
    using ValidFn = std::function<bool(PageNum)>;

    LegacyTreePrefetcher(const UvmConfig &config, ResidencyFn resident,
                         ValidFn valid);

    std::vector<PageNum> computePrefetches(
        const std::vector<PageNum> &faulted) const;

  private:
    std::vector<PageNum> treePrefetches(
        const std::vector<PageNum> &faulted) const;
    std::vector<PageNum> sequentialPrefetches(
        const std::vector<PageNum> &faulted) const;

    UvmConfig config_;
    ResidencyFn resident_;
    ValidFn valid_;
    std::uint32_t pages_per_block_;
};

} // namespace bauvm

#endif // BAUVM_UVM_LEGACY_MEM_PATH_H_
