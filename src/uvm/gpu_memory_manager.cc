#include "src/uvm/gpu_memory_manager.h"

#include "src/check/model_auditor.h"
#include "src/sim/log.h"

namespace bauvm
{

GpuMemoryManager::GpuMemoryManager(const UvmConfig &config,
                                   std::uint64_t capacity_pages,
                                   const SimHooks &hooks)
    : hooks_(hooks), config_(config), capacity_pages_(capacity_pages),
      lifetime_(config.lifetime_window_cycles,
                config.lifetime_drop_threshold, hooks)
{
    if (config_.root_chunk_pages == 0)
        fatal("GpuMemoryManager: root_chunk_pages must be positive");
}

void
GpuMemoryManager::setCapacityPages(std::uint64_t pages)
{
    if (pages != 0 && pages < committed_) {
        fatal("GpuMemoryManager: cannot shrink capacity below the %llu "
              "committed frames",
              static_cast<unsigned long long>(committed_));
    }
    capacity_pages_ = pages;
    if (hooks_.audit)
        hooks_.audit->onCapacitySet(pages);
}

void
GpuMemoryManager::reserveFrame()
{
    if (!hasFreeFrame())
        panic("GpuMemoryManager: reserveFrame with no free frame");
    if (!unlimited())
        ++committed_;
    if (hooks_.audit)
        hooks_.audit->onFrameReserved(committed_);
}

GpuMemoryManager::ChunkMeta &
GpuMemoryManager::ensureChunk(std::uint64_t chunk)
{
    if (chunk >= chunks_.size()) {
        std::size_t want = static_cast<std::size_t>(chunk) + 1;
        if (want < chunks_.size() * 2)
            want = chunks_.size() * 2;
        chunks_.resize(want);
    }
    return chunks_[static_cast<std::size_t>(chunk)];
}

void
GpuMemoryManager::lruUnlink(std::uint32_t chunk)
{
    ChunkMeta &c = chunks_[chunk];
    if (c.prev != PageMeta::kNoIndex)
        chunks_[c.prev].next = c.next;
    else
        lru_head_ = c.next;
    if (c.next != PageMeta::kNoIndex)
        chunks_[c.next].prev = c.prev;
    else
        lru_tail_ = c.prev;
    c.prev = c.next = PageMeta::kNoIndex;
    c.in_list = false;
}

void
GpuMemoryManager::lruAppend(std::uint32_t chunk)
{
    ChunkMeta &c = chunks_[chunk];
    c.prev = lru_tail_;
    c.next = PageMeta::kNoIndex;
    if (lru_tail_ != PageMeta::kNoIndex)
        chunks_[lru_tail_].next = chunk;
    else
        lru_head_ = chunk;
    lru_tail_ = chunk;
    c.in_list = true;
}

void
GpuMemoryManager::commitPage(PageNum vpn, Cycle now)
{
    ++migrations_;
    if (hooks_.trace) {
        hooks_.trace->counter(
            TraceEventType::CommittedFrames, kTraceTrackMemory, now,
            committed_, static_cast<std::uint32_t>(capacity_pages_));
    }
    page_table_.map(vpn, vpn /* identity frames: timing-only model */);
    PageMeta &m = page_table_.meta().at(vpn);
    m.alloc_time = now;

    if (m.pending_refault > 0) {
        ++premature_;
        --m.pending_refault;
    }

    const std::uint64_t chunk = chunkOf(vpn);
    ChunkMeta &c = ensureChunk(chunk);
    // Append to the chunk's page FIFO (oldest allocation first).
    m.chunk_next = PageMeta::kNoIndex;
    if (c.page_tail != PageMeta::kNoIndex) {
        page_table_.meta().at(c.page_tail).chunk_next =
            static_cast<std::uint32_t>(vpn);
    } else {
        c.page_head = static_cast<std::uint32_t>(vpn);
    }
    c.page_tail = static_cast<std::uint32_t>(vpn);

    // Aged-based LRU: a chunk moves to the tail whenever any of its
    // sub-chunks is allocated (the driver's policy).
    const auto cid = static_cast<std::uint32_t>(chunk);
    if (c.in_list)
        lruUnlink(cid);
    lruAppend(cid);

    if (hooks_.audit)
        hooks_.audit->onPageCommitted(vpn, now, committed_);
}

bool
GpuMemoryManager::beginEviction(PageNum *vpn, Cycle now)
{
    if (lru_head_ == PageMeta::kNoIndex)
        return false;
    const std::uint32_t chunk = lru_head_;
    ChunkMeta &c = chunks_[chunk];
    if (c.page_head == PageMeta::kNoIndex)
        panic("GpuMemoryManager: LRU chunk with no pages");

    // Evict the chunk's pages one call at a time (oldest allocation
    // first); the chunk leaves the LRU list when it empties.
    const PageNum victim = c.page_head;
    PageMeta &m = page_table_.meta().at(victim);
    c.page_head = m.chunk_next;
    m.chunk_next = PageMeta::kNoIndex;
    if (c.page_head == PageMeta::kNoIndex) {
        c.page_tail = PageMeta::kNoIndex;
        lruUnlink(chunk);
    }

    page_table_.unmap(victim);
    ++evictions_;
    ++m.pending_refault;

    BAUVM_DLOG("GpuMemoryManager: evict vpn %llu after %llu cycles "
               "(%llu/%llu frames committed)",
               static_cast<unsigned long long>(victim),
               static_cast<unsigned long long>(now - m.alloc_time),
               static_cast<unsigned long long>(committed_),
               static_cast<unsigned long long>(capacity_pages_));
    lifetime_.addLifetime(now - m.alloc_time);

    if (hooks_.audit)
        hooks_.audit->onEvictionBegin(victim, now, committed_);

    *vpn = victim;
    return true;
}

void
GpuMemoryManager::completeEviction(PageNum vpn)
{
    if (!unlimited()) {
        if (committed_ == 0)
            panic("GpuMemoryManager: completeEviction underflow");
        --committed_;
    }
    if (hooks_.audit)
        hooks_.audit->onEvictionComplete(vpn, committed_);
}

} // namespace bauvm
