#include "src/uvm/gpu_memory_manager.h"

#include "src/check/model_auditor.h"
#include "src/sim/log.h"

namespace bauvm
{

GpuMemoryManager::GpuMemoryManager(const UvmConfig &config,
                                   std::uint64_t capacity_pages,
                                   const SimHooks &hooks)
    : hooks_(hooks), config_(config), capacity_pages_(capacity_pages),
      lifetime_(config.lifetime_window_cycles,
                config.lifetime_drop_threshold, hooks)
{
    if (config_.root_chunk_pages == 0)
        fatal("GpuMemoryManager: root_chunk_pages must be positive");
}

void
GpuMemoryManager::setCapacityPages(std::uint64_t pages)
{
    if (pages != 0 && pages < committed_) {
        fatal("GpuMemoryManager: cannot shrink capacity below the %llu "
              "committed frames",
              static_cast<unsigned long long>(committed_));
    }
    capacity_pages_ = pages;
    if (hooks_.audit)
        hooks_.audit->onCapacitySet(pages);
}

void
GpuMemoryManager::setTenantDirectory(const TenantDirectory *dir)
{
    if (committed_ != 0)
        fatal("GpuMemoryManager: setTenantDirectory after commits");
    dir_ = dir;
    const std::size_t n = dir ? dir->size() : 0;
    committed_by_.assign(n, 0);
    peak_committed_by_.assign(n, 0);
    caused_.assign(n, 0);
    suffered_.assign(n, 0);
    lifetime_sum_by_.assign(n, 0.0);
    lifetime_count_by_.assign(n, 0);
}

void
GpuMemoryManager::reserveFrame(TenantId tenant)
{
    if (!hasFreeFrame())
        panic("GpuMemoryManager: reserveFrame with no free frame");
    if (dir_ && tenant != kNoTenant && !hasFreeFrameFor(tenant))
        panic("GpuMemoryManager: reserveFrame exceeds tenant %u quota",
              static_cast<unsigned>(tenant));
    if (!unlimited())
        ++committed_;
    if (dir_ && tenant != kNoTenant) {
        ++committed_by_[tenant];
        if (committed_by_[tenant] > peak_committed_by_[tenant])
            peak_committed_by_[tenant] = committed_by_[tenant];
    }
    if (hooks_.audit)
        hooks_.audit->onFrameReserved(committed_, tenant);
}

GpuMemoryManager::ChunkMeta &
GpuMemoryManager::ensureChunk(std::uint64_t chunk)
{
    if (chunk >= chunks_.size()) {
        std::size_t want = static_cast<std::size_t>(chunk) + 1;
        if (want < chunks_.size() * 2)
            want = chunks_.size() * 2;
        chunks_.resize(want);
    }
    return chunks_[static_cast<std::size_t>(chunk)];
}

void
GpuMemoryManager::lruUnlink(std::uint32_t chunk)
{
    ChunkMeta &c = chunks_[chunk];
    if (c.prev != PageMeta::kNoIndex)
        chunks_[c.prev].next = c.next;
    else
        lru_head_ = c.next;
    if (c.next != PageMeta::kNoIndex)
        chunks_[c.next].prev = c.prev;
    else
        lru_tail_ = c.prev;
    c.prev = c.next = PageMeta::kNoIndex;
    c.in_list = false;
}

void
GpuMemoryManager::lruAppend(std::uint32_t chunk)
{
    ChunkMeta &c = chunks_[chunk];
    c.prev = lru_tail_;
    c.next = PageMeta::kNoIndex;
    if (lru_tail_ != PageMeta::kNoIndex)
        chunks_[lru_tail_].next = chunk;
    else
        lru_head_ = chunk;
    lru_tail_ = chunk;
    c.in_list = true;
}

void
GpuMemoryManager::commitPage(PageNum vpn, Cycle now)
{
    ++migrations_;
    if (hooks_.trace) {
        hooks_.trace->counter(
            TraceEventType::CommittedFrames, kTraceTrackMemory, now,
            committed_, static_cast<std::uint32_t>(capacity_pages_));
        if (dir_) {
            const TenantId owner = dir_->tenantOf(vpn);
            if (owner != kNoTenant) {
                hooks_.trace->counter(
                    TraceEventType::CommittedFrames,
                    traceTrackTenant(owner), now, committed_by_[owner],
                    static_cast<std::uint32_t>(
                        dir_->context(owner).quota_pages));
            }
        }
    }
    page_table_.map(vpn, vpn /* identity frames: timing-only model */);
    PageMeta &m = page_table_.meta().at(vpn);
    m.alloc_time = now;

    if (m.pending_refault > 0) {
        ++premature_;
        --m.pending_refault;
    }

    const std::uint64_t chunk = chunkOf(vpn);
    ChunkMeta &c = ensureChunk(chunk);
    // Append to the chunk's page FIFO (oldest allocation first).
    m.chunk_next = PageMeta::kNoIndex;
    if (c.page_tail != PageMeta::kNoIndex) {
        page_table_.meta().at(c.page_tail).chunk_next =
            static_cast<std::uint32_t>(vpn);
    } else {
        c.page_head = static_cast<std::uint32_t>(vpn);
    }
    c.page_tail = static_cast<std::uint32_t>(vpn);

    // Aged-based LRU: a chunk moves to the tail whenever any of its
    // sub-chunks is allocated (the driver's policy).
    const auto cid = static_cast<std::uint32_t>(chunk);
    if (c.in_list)
        lruUnlink(cid);
    lruAppend(cid);

    if (hooks_.audit)
        hooks_.audit->onPageCommitted(vpn, now, committed_);
}

PageNum
GpuMemoryManager::evictOldestPageOf(std::uint32_t chunk, Cycle now,
                                    TenantId cause)
{
    ChunkMeta &c = chunks_[chunk];
    if (c.page_head == PageMeta::kNoIndex)
        panic("GpuMemoryManager: LRU chunk with no pages");

    // Evict the chunk's pages one call at a time (oldest allocation
    // first); the chunk leaves the LRU list when it empties.
    const PageNum victim = c.page_head;
    PageMeta &m = page_table_.meta().at(victim);
    c.page_head = m.chunk_next;
    m.chunk_next = PageMeta::kNoIndex;
    if (c.page_head == PageMeta::kNoIndex) {
        c.page_tail = PageMeta::kNoIndex;
        lruUnlink(chunk);
    }

    page_table_.unmap(victim);
    ++evictions_;
    ++m.pending_refault;

    BAUVM_DLOG("GpuMemoryManager: evict vpn %llu after %llu cycles "
               "(%llu/%llu frames committed)",
               static_cast<unsigned long long>(victim),
               static_cast<unsigned long long>(now - m.alloc_time),
               static_cast<unsigned long long>(committed_),
               static_cast<unsigned long long>(capacity_pages_));
    lifetime_.addLifetime(now - m.alloc_time);

    if (dir_) {
        const TenantId owner = dir_->tenantOf(victim);
        if (owner != kNoTenant) {
            ++suffered_[owner];
            lifetime_sum_by_[owner] +=
                static_cast<double>(now - m.alloc_time);
            ++lifetime_count_by_[owner];
        }
        if (cause != kNoTenant)
            ++caused_[cause];
    }

    if (hooks_.audit)
        hooks_.audit->onEvictionBegin(victim, now, committed_);

    return victim;
}

bool
GpuMemoryManager::beginEviction(PageNum *vpn, Cycle now)
{
    if (lru_head_ == PageMeta::kNoIndex)
        return false;
    *vpn = evictOldestPageOf(lru_head_, now, kNoTenant);
    return true;
}

std::uint32_t
GpuMemoryManager::firstChunkOf(TenantId tenant) const
{
    for (std::uint32_t c = lru_head_; c != PageMeta::kNoIndex;
         c = chunks_[c].next) {
        if (chunkOwner(c) == tenant)
            return c;
    }
    return PageMeta::kNoIndex;
}

bool
GpuMemoryManager::beginEvictionFor(TenantId cause, PageNum *vpn,
                                   Cycle now)
{
    if (lru_head_ == PageMeta::kNoIndex)
        return false;
    if (dir_ == nullptr)
        return beginEviction(vpn, now);

    std::uint32_t chunk = PageMeta::kNoIndex;
    switch (dir_->policy()) {
      case SharePolicy::FreeForAll:
        break; // global LRU head below
      case SharePolicy::StrictQuota:
        // The needy tenant pays for its own frame; it can never
        // displace another tenant's pages. When none of its pages is
        // evictable right now (all still in flight), report failure
        // and let the runtime wait for the arrivals instead of
        // falling back to another tenant's chunk.
        if (cause != kNoTenant) {
            chunk = firstChunkOf(cause);
            if (chunk == PageMeta::kNoIndex)
                return false;
        }
        break;
      case SharePolicy::Proportional: {
        // Victimize the tenant furthest above its weighted fair
        // share of committed frames (ties break to the lowest id).
        TenantId target = kNoTenant;
        double worst = 0.0;
        for (std::size_t t = 0; t < committed_by_.size(); ++t) {
            if (committed_by_[t] == 0)
                continue;
            const double w = dir_->context(
                                     static_cast<TenantId>(t))
                                 .weight;
            const double over =
                static_cast<double>(committed_by_[t]) /
                (w > 0.0 ? w : 1.0);
            if (target == kNoTenant || over > worst) {
                target = static_cast<TenantId>(t);
                worst = over;
            }
        }
        if (target != kNoTenant)
            chunk = firstChunkOf(target);
        break;
      }
    }
    if (chunk == PageMeta::kNoIndex)
        chunk = lru_head_; // fall back to the global aged-LRU head
    *vpn = evictOldestPageOf(chunk, now, cause);
    return true;
}

void
GpuMemoryManager::completeEviction(PageNum vpn)
{
    if (!unlimited()) {
        if (committed_ == 0)
            panic("GpuMemoryManager: completeEviction underflow");
        --committed_;
    }
    if (dir_) {
        const TenantId owner = dir_->tenantOf(vpn);
        if (owner != kNoTenant) {
            if (committed_by_[owner] == 0)
                panic("GpuMemoryManager: tenant %u frame underflow",
                      static_cast<unsigned>(owner));
            --committed_by_[owner];
        }
    }
    if (hooks_.audit)
        hooks_.audit->onEvictionComplete(vpn, committed_);
}

} // namespace bauvm
