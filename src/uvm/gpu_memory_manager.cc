#include "src/uvm/gpu_memory_manager.h"

#include <algorithm>

#include "src/check/model_auditor.h"
#include "src/sim/log.h"

namespace bauvm
{

GpuMemoryManager::GpuMemoryManager(const UvmConfig &config,
                                   std::uint64_t capacity_pages,
                                   const SimHooks &hooks)
    : hooks_(hooks), config_(config), capacity_pages_(capacity_pages),
      lifetime_(config.lifetime_window_cycles,
                config.lifetime_drop_threshold, hooks)
{
    if (config_.root_chunk_pages == 0)
        fatal("GpuMemoryManager: root_chunk_pages must be positive");
}

void
GpuMemoryManager::setCapacityPages(std::uint64_t pages)
{
    if (pages != 0 && pages < committed_) {
        fatal("GpuMemoryManager: cannot shrink capacity below the %llu "
              "committed frames",
              static_cast<unsigned long long>(committed_));
    }
    capacity_pages_ = pages;
    if (hooks_.audit)
        hooks_.audit->onCapacitySet(pages);
}

void
GpuMemoryManager::reserveFrame()
{
    if (!hasFreeFrame())
        panic("GpuMemoryManager: reserveFrame with no free frame");
    if (!unlimited())
        ++committed_;
    if (hooks_.audit)
        hooks_.audit->onFrameReserved(committed_);
}

void
GpuMemoryManager::commitPage(PageNum vpn, Cycle now)
{
    ++migrations_;
    if (hooks_.trace) {
        hooks_.trace->counter(
            TraceEventType::CommittedFrames, kTraceTrackMemory, now,
            committed_, static_cast<std::uint32_t>(capacity_pages_));
    }
    page_table_.map(vpn, vpn /* identity frames: timing-only model */);
    alloc_time_[vpn] = now;

    auto ref = pending_refault_.find(vpn);
    if (ref != pending_refault_.end()) {
        ++premature_;
        if (--ref->second == 0)
            pending_refault_.erase(ref);
    }

    const std::uint64_t chunk = chunkOf(vpn);
    chunk_pages_[chunk].push_back(vpn);
    // Aged-based LRU: a chunk moves to the tail whenever any of its
    // sub-chunks is allocated (the driver's policy).
    auto pos = lru_pos_.find(chunk);
    if (pos != lru_pos_.end())
        lru_.erase(pos->second);
    lru_.push_back(chunk);
    lru_pos_[chunk] = std::prev(lru_.end());

    if (hooks_.audit)
        hooks_.audit->onPageCommitted(vpn, now, committed_);
}

bool
GpuMemoryManager::beginEviction(PageNum *vpn, Cycle now)
{
    if (lru_.empty())
        return false;
    const std::uint64_t chunk = lru_.front();
    auto &pages = chunk_pages_[chunk];
    if (pages.empty())
        panic("GpuMemoryManager: LRU chunk with no pages");

    // Evict the chunk's pages one call at a time (oldest allocation
    // first); the chunk leaves the LRU list when it empties.
    const PageNum victim = pages.front();
    pages.erase(pages.begin());
    if (pages.empty()) {
        chunk_pages_.erase(chunk);
        lru_.pop_front();
        lru_pos_.erase(chunk);
    }

    page_table_.unmap(victim);
    ++evictions_;
    ++pending_refault_[victim];

    auto at = alloc_time_.find(victim);
    if (at == alloc_time_.end())
        panic("GpuMemoryManager: victim with no allocation time");
    BAUVM_DLOG("GpuMemoryManager: evict vpn %llu after %llu cycles "
               "(%llu/%llu frames committed)",
               static_cast<unsigned long long>(victim),
               static_cast<unsigned long long>(now - at->second),
               static_cast<unsigned long long>(committed_),
               static_cast<unsigned long long>(capacity_pages_));
    lifetime_.addLifetime(now - at->second);
    alloc_time_.erase(at);

    if (hooks_.audit)
        hooks_.audit->onEvictionBegin(victim, now, committed_);

    *vpn = victim;
    return true;
}

void
GpuMemoryManager::completeEviction(PageNum vpn)
{
    if (!unlimited()) {
        if (committed_ == 0)
            panic("GpuMemoryManager: completeEviction underflow");
        --committed_;
    }
    if (hooks_.audit)
        hooks_.audit->onEvictionComplete(vpn, committed_);
}

} // namespace bauvm
