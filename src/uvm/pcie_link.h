/**
 * @file
 * Full-duplex PCIe interconnect model.
 *
 * Two independent, bandwidth-limited channels: host-to-device (page
 * migrations in) and device-to-host (evictions out). Modern DMA engines
 * allow simultaneous bidirectional transfers; the baseline's
 * evict-then-migrate serialization is a *software* ordering imposed by
 * the UVM runtime, which is exactly what Unobtrusive Eviction removes —
 * so the link itself never serializes the two directions.
 */

#ifndef BAUVM_UVM_PCIE_LINK_H_
#define BAUVM_UVM_PCIE_LINK_H_

#include <cstdint>

#include "src/check/sim_hooks.h"
#include "src/sim/config.h"
#include "src/sim/types.h"
#include "src/trace/trace_sink.h"

namespace bauvm
{

/** Transfer direction over the link. */
enum class PcieDir { HostToDevice, DeviceToHost };

/** Bandwidth-server model of the PCIe link (Table 1: 15.75 GB/s). */
class PcieLink
{
  public:
    /** @param hooks observers: every transfer emits one PcieBusy
     *  interval on its direction's track and feeds the auditor's
     *  per-channel byte tally. */
    explicit PcieLink(const UvmConfig &config,
                      const SimHooks &hooks = {});

    /**
     * Schedules a @p bytes transfer in direction @p dir, requested at
     * cycle @p earliest. Transfers in the same direction are FIFO.
     *
     * @param[out] begin_out  actual start cycle (after FIFO queueing),
     *                        when non-null.
     * @return completion cycle of the transfer.
     */
    Cycle transfer(PcieDir dir, std::uint64_t bytes, Cycle earliest,
                   Cycle *begin_out = nullptr);

    /** Earliest cycle at which the given channel is free. */
    Cycle channelFree(PcieDir dir) const
    {
        return dir == PcieDir::HostToDevice ? h2d_free_ : d2h_free_;
    }

    /** Pure transfer duration of @p bytes at the channel's bandwidth. */
    Cycle transferCycles(std::uint64_t bytes,
                         PcieDir dir = PcieDir::HostToDevice) const;

    std::uint64_t transfers(PcieDir dir) const
    {
        return dir == PcieDir::HostToDevice ? h2d_count_ : d2h_count_;
    }

    std::uint64_t bytesMoved(PcieDir dir) const
    {
        return dir == PcieDir::HostToDevice ? h2d_bytes_ : d2h_bytes_;
    }

    /** Cycles the channel was occupied, per direction. */
    std::uint64_t busyCycles(PcieDir dir) const
    {
        return dir == PcieDir::HostToDevice ? h2d_busy_ : d2h_busy_;
    }

  private:
    SimHooks hooks_;
    double h2d_bytes_per_cycle_;
    double d2h_bytes_per_cycle_;
    Cycle h2d_free_ = 0;
    Cycle d2h_free_ = 0;
    std::uint64_t h2d_count_ = 0;
    std::uint64_t d2h_count_ = 0;
    std::uint64_t h2d_bytes_ = 0;
    std::uint64_t d2h_bytes_ = 0;
    std::uint64_t h2d_busy_ = 0;
    std::uint64_t d2h_busy_ = 0;
};

} // namespace bauvm

#endif // BAUVM_UVM_PCIE_LINK_H_
