/**
 * @file
 * The GPU runtime's page-fault batch-processing machinery — the system
 * the paper analyzes (section 2.2, Fig 2) and improves.
 *
 * Lifecycle of a batch:
 *   1. A fault raises an interrupt; after the top-half dispatch latency
 *      the batch begins by draining the whole fault buffer. Faults
 *      arriving afterwards wait for the *next* batch.
 *   2. (Unobtrusive Eviction) the top-half ISR consults the GPU memory
 *      status tracker; at capacity it launches one preemptive eviction
 *      immediately.
 *   3. The runtime preprocesses the batch for the configured fault
 *      handling time (sorting faults, inserting tree-prefetch requests,
 *      CPU-side page-table walks): Table 1 default 20 us.
 *   4. Migrations are scheduled in ascending page order. Baseline: when
 *      allocation fails, eviction and the subsequent migration are
 *      strictly serialized (Fig 4). UE: evictions stream on the
 *      device-to-host channel overlapping inbound migrations (Fig 10).
 *   5. Each arrival maps the page and wakes the waiting warps. After the
 *      last arrival the batch ends; if more faults are pending the next
 *      batch starts immediately (no interrupt round trip).
 *
 * Metadata layout: page validity, in-flight status and the per-page
 * waiter list all live in the shared dense PageMetaTable. Waiter
 * callbacks are pooled in a slab of nodes (InlineFunction storage, free
 * list reuse) linked through PageMeta::waiter_head/tail, and the batch
 * scratch buffers persist across batches — the steady-state fault path
 * performs no heap allocation.
 *
 * Batch preprocessing is structure-of-arrays: the fault buffer drains
 * into a FaultBatch (parallel vpn/cycle/duplicate/tenant arrays), the
 * residency and accounting passes scan those arrays directly, and the
 * demand list is ordered by an LSD radix sort on the bounded VPN key
 * space instead of std::sort — same ascending order, no comparator
 * calls.
 *
 * The class splits along the hot/cold line for observer specialization
 * (src/check/observer_mode.h): UvmRuntimeBase owns all state, wiring
 * and queries; UvmRuntimeT<M> adds the fault intake / batch / migration
 * / eviction path compiled for observer mode M. UvmRuntime aliases the
 * Dynamic specialization. The PCIe link and prefetcher sub-components
 * keep their runtime-checked hooks: they fire per transfer / per batch,
 * not per fault, so they stay off the specialized hot loop.
 */

#ifndef BAUVM_UVM_UVM_RUNTIME_H_
#define BAUVM_UVM_UVM_RUNTIME_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/check/observer_mode.h"
#include "src/check/sim_hooks.h"
#include "src/mem/memory_hierarchy.h"
#include "src/mem/page_meta.h"
#include "src/mem/tenant_directory.h"
#include "src/sim/config.h"
#include "src/sim/event_queue.h"
#include "src/sim/inline_function.h"
#include "src/sim/types.h"
#include "src/trace/trace_sink.h"
#include "src/uvm/compression.h"
#include "src/uvm/fault_buffer.h"
#include "src/uvm/gpu_memory_manager.h"
#include "src/uvm/pcie_link.h"
#include "src/uvm/prefetcher.h"

namespace bauvm
{

/** Timing/size record of one processed batch (drives Figs 3, 12-16). */
struct BatchRecord {
    Cycle begin = 0;          //!< batch processing started
    Cycle first_transfer = 0; //!< first H2D transfer began
    Cycle end = 0;            //!< last page of the batch arrived
    std::uint32_t fault_pages = 0;    //!< distinct demand-faulted pages
    std::uint32_t prefetch_pages = 0; //!< prefetches riding along
    std::uint32_t duplicate_faults = 0; //!< coalesced duplicate faults
    std::uint64_t migrated_bytes = 0; //!< uncompressed bytes moved in

    /** GPU runtime fault handling time (begin -> first transfer). */
    Cycle handlingTime() const { return first_transfer - begin; }
    /** Batch processing time (begin -> last migration). */
    Cycle processingTime() const { return end - begin; }
    std::uint32_t totalPages() const
    {
        return fault_pages + prefetch_pages;
    }
};

/**
 * State, wiring and queries of the UVM runtime (mode-independent).
 *
 * Everything that is not on the per-fault critical path lives here so
 * the system, the ETC framework and statistics readers can hold one
 * UvmRuntimeBase reference regardless of the compiled observer mode.
 */
class UvmRuntimeBase
{
  public:
    /**
     * Callback waking a faulted warp once its page is resident.
     * Stored inline in a pooled slab node; 48 bytes of capture is
     * plenty for the SM's replay closures, and anything bigger falls
     * back to one counted heap cell rather than failing.
     */
    using WakeFn = InlineFunction<48, void(Cycle)>;
    /** Callback receiving oversubscription advice after each batch. */
    using AdviceFn = std::function<void(OversubAdvice)>;
    /** Callback fired after every batch completes (ETC epochs hook). */
    using BatchEndFn = std::function<void(const BatchRecord &)>;

    /**
     * Registers @p bytes at @p base as a valid UVM allocation
     * (prefetches never stray outside valid pages).
     */
    void registerAllocation(VAddr base, std::uint64_t bytes);

    /**
     * Registers the run's tenant directory (multi-tenant runs only):
     * faults are attributed to the owning tenant, frame reservations
     * are charged per tenant, and eviction victims follow the
     * directory's SharePolicy. nullptr keeps single-tenant behaviour.
     */
    void setTenantDirectory(const TenantDirectory *dir);

    /**
     * Registers each tenant's memory hierarchy so eviction shootdowns
     * invalidate the TLBs that could actually cache the page (tenant
     * VA slices are disjoint, so only the owner's hierarchy can).
     * Indexed by TenantId; unrouted pages fall back to the hierarchy
     * passed at construction.
     */
    void
    setTenantHierarchies(std::vector<MemoryHierarchyBase *> hierarchies)
    {
        tenant_hierarchies_ = std::move(hierarchies);
    }

    /** Adds an advice sink for a TO controller. Multi-tenant runs
     *  register one sink per tenant GPU; each batch fans the advice
     *  out to all of them. */
    void setAdviceCallback(AdviceFn cb)
    {
        advice_cbs_.push_back(std::move(cb));
    }

    /** Drops every registered advice sink (multi-tenant runs clear the
     *  default GPU's sink before wiring the tenant GPUs). */
    void clearAdviceCallbacks() { advice_cbs_.clear(); }

    /** Demand-fault pages attributed to @p tenant. */
    std::uint64_t demandPagesOf(TenantId tenant) const
    {
        return demand_by_[tenant];
    }

    void setBatchEndCallback(BatchEndFn cb)
    {
        batch_end_cb_ = std::move(cb);
    }

    /**
     * Enables ETC-style proactive eviction: after each batch, pages are
     * evicted in the background until occupancy falls to @p target of
     * capacity.
     */
    void enableProactiveEviction(double target);

    const std::vector<BatchRecord> &batchRecords() const
    {
        return records_;
    }

    const FaultBufferBase &faultBuffer() const { return *fault_buffer_; }
    PcieLink &pcie() { return pcie_; }
    const PcieLink &pcie() const { return pcie_; }

    std::uint64_t batches() const { return records_.size(); }
    std::uint64_t demandFaultPages() const { return demand_pages_; }
    std::uint64_t prefetchedPages() const { return prefetched_pages_; }

    /** True when no batch is active and no faults are pending. */
    bool idle() const { return state_ == State::Idle; }

    /** Average number of demand pages per batch. */
    double averageBatchPages() const;
    /** Average batch processing time in cycles. */
    double averageProcessingTime() const;
    /** Average GPU-runtime fault handling time in cycles. */
    double averageHandlingTime() const;

  protected:
    enum class State { Idle, InterruptPending, BatchActive };

    /** One pooled waiter callback, linked off PageMeta::waiter_head. */
    struct WaiterNode {
        WakeFn fn;
        std::uint32_t next = PageMeta::kNoIndex;
    };

    UvmRuntimeBase(const UvmConfig &config, EventQueue &events,
                   GpuMemoryManager &manager,
                   MemoryHierarchyBase &hierarchy, const SimHooks &hooks);
    ~UvmRuntimeBase() = default;

    /** Appends @p waiter to @p vpn's intrusive FIFO waiter list. */
    void appendWaiter(PageNum vpn, WakeFn waiter);
    /** Detaches @p vpn's waiter list and invokes it in FIFO order. */
    void wakeWaiters(PageNum vpn, Cycle now);

    /**
     * Sorts @p keys ascending with an LSD radix sort (8-bit digits,
     * pass count from the maximum key — VPNs are bounded by the
     * allocation footprint, so 3-4 passes cover real runs). Produces
     * exactly std::sort's order on the unique keys a drained batch
     * holds; the scratch double buffer persists across batches.
     */
    void radixSortAscending(std::vector<PageNum> &keys);

    /** Owning tenant of @p vpn (kNoTenant with no directory). */
    TenantId tenantFor(PageNum vpn) const
    {
        return dir_ ? dir_->tenantOf(vpn) : kNoTenant;
    }

    /** Hierarchy whose TLBs may cache @p vpn (see
     *  setTenantHierarchies). */
    MemoryHierarchyBase &hierarchyFor(PageNum vpn)
    {
        const TenantId owner = tenantFor(vpn);
        if (owner == kNoTenant ||
            owner >= tenant_hierarchies_.size() ||
            tenant_hierarchies_[owner] == nullptr)
            return hierarchy_;
        return *tenant_hierarchies_[owner];
    }

    SimHooks hooks_;
    UvmConfig config_;
    EventQueue &events_;
    GpuMemoryManager &manager_;
    MemoryHierarchyBase &hierarchy_;
    const TenantDirectory *dir_ = nullptr;
    std::vector<MemoryHierarchyBase *> tenant_hierarchies_;
    std::vector<std::uint64_t> demand_by_; //!< per-tenant demand pages
    PageMetaTable &meta_; //!< shared dense page metadata
    /** The derived class's FaultBufferT<M>, for mode-blind queries. */
    FaultBufferBase *fault_buffer_ = nullptr;
    PcieLink pcie_;
    CompressionModel pcie_compression_;
    TreePrefetcher prefetcher_;

    State state_ = State::Idle;
    Cycle handling_cycles_;
    Cycle interrupt_cycles_;

    /** Waiter slab: nodes are recycled through an intrusive free list. */
    std::vector<WaiterNode> waiter_slab_;
    std::uint32_t waiter_free_ = PageMeta::kNoIndex;

    // Current batch (scratch buffers persist across batches).
    FaultBatch drained_batch_;
    std::vector<PageNum> demand_;
    std::vector<PageNum> prefetch_;
    std::vector<PageNum> migration_queue_;
    std::vector<PageNum> radix_scratch_; //!< radix sort double buffer
    std::size_t mig_idx_ = 0;
    std::uint32_t arrivals_pending_ = 0;
    std::uint32_t evictions_in_flight_ = 0;
    bool first_transfer_seen_ = false;
    BatchRecord current_;

    std::vector<BatchRecord> records_;
    std::uint64_t demand_pages_ = 0;
    std::uint64_t prefetched_pages_ = 0;

    std::vector<AdviceFn> advice_cbs_;
    BatchEndFn batch_end_cb_;
    bool proactive_eviction_ = false;
    double proactive_target_ = 0.95;
};

/** The UVM runtime: fault intake, batching, migration, eviction. */
template <ObserverMode M>
class UvmRuntimeT final : public UvmRuntimeBase
{
  public:
    /**
     * @param hooks observers for the runtime and its sub-components
     *              (fault buffer, PCIe link, prefetcher): batches,
     *              fault handling, migrations and evictions all emit
     *              timeline events and feed the model auditor. Must
     *              not change simulated timing either way.
     */
    UvmRuntimeT(const UvmConfig &config, EventQueue &events,
                GpuMemoryManager &manager,
                MemoryHierarchyBase &hierarchy,
                const SimHooks &hooks = {});

    /**
     * Reports a page fault on @p vpn detected at the current cycle;
     * @p waiter is invoked when the page becomes resident.
     *
     * Safe to call for a page that is already in flight (the waiter
     * simply joins that page's list) or already resident (the waiter is
     * woken immediately).
     */
    void onPageFault(PageNum vpn, WakeFn waiter);

  private:
    void batchBegin();
    void pumpMigrations();
    void scheduleMigration(PageNum vpn);
    /** Launches one eviction; @p earliest constrains the D2H start and
     *  @p cause attributes it (the tenant that needs the frame). */
    bool launchEviction(Cycle earliest, TenantId cause = kNoTenant);
    void onEvictionComplete(PageNum vpn);
    void onPageArrived(PageNum vpn);
    void batchEnd();
    void maybeProactiveEvict();

    FaultBufferT<M> fault_buffer_store_;
};

extern template class UvmRuntimeT<ObserverMode::Dynamic>;
extern template class UvmRuntimeT<ObserverMode::None>;
extern template class UvmRuntimeT<ObserverMode::Trace>;
extern template class UvmRuntimeT<ObserverMode::Audit>;
extern template class UvmRuntimeT<ObserverMode::Both>;

/** Historical name: the runtime-dispatched (Dynamic) specialization. */
using UvmRuntime = UvmRuntimeT<ObserverMode::Dynamic>;

} // namespace bauvm

#endif // BAUVM_UVM_UVM_RUNTIME_H_
