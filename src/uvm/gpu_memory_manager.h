/**
 * @file
 * GPU physical-memory manager: frames, residency, aged LRU, and the
 * premature-eviction bookkeeping.
 *
 * Mirrors the structure the paper extracted from NVIDIA driver v396.37:
 * user memory is tracked in an LRU list of root chunks that is updated
 * when chunks are *allocated* (aged-based LRU — accesses do not refresh
 * the list, because the driver never sees them), and eviction picks the
 * head of that list. The "GPU memory status tracker" that Unobtrusive
 * Eviction consults in the top-half ISR is the atCapacity() query.
 *
 * Metadata layout: per-page fields (alloc time, pending-refault count,
 * chunk FIFO link) live in the shared dense PageMetaTable owned by the
 * PageTable; the chunk LRU is an intrusive doubly-linked list threaded
 * through a dense chunk-metadata array. List operations are the same
 * unlink/append-to-tail/pop-head sequence the previous
 * std::list + unordered_map implementation performed, so the recency
 * order — and therefore every eviction decision — is bit-identical,
 * without a single hash probe or node allocation on the commit/evict
 * path.
 */

#ifndef BAUVM_UVM_GPU_MEMORY_MANAGER_H_
#define BAUVM_UVM_GPU_MEMORY_MANAGER_H_

#include <cstdint>
#include <vector>

#include "src/check/sim_hooks.h"
#include "src/mem/page_meta.h"
#include "src/mem/page_table.h"
#include "src/mem/tenant_directory.h"
#include "src/sim/config.h"
#include "src/sim/types.h"
#include "src/trace/trace_sink.h"
#include "src/uvm/lifetime_tracker.h"

namespace bauvm
{

/** Frames, residency and eviction-victim selection for device memory. */
class GpuMemoryManager
{
  public:
    /**
     * @param config          UVM parameters (page size, chunking,
     *                        lifetime window).
     * @param capacity_pages  device-memory size in pages; 0 = unlimited.
     * @param hooks           observers for this manager and its
     *                        lifetime tracker: commits emit
     *                        committed-frames counter samples, and the
     *                        auditor mirrors every residency and
     *                        occupancy transition.
     */
    GpuMemoryManager(const UvmConfig &config,
                     std::uint64_t capacity_pages,
                     const SimHooks &hooks = {});

    /** The GPU page table (shared with the MemoryHierarchy). */
    PageTable &pageTable() { return page_table_; }
    const PageTable &pageTable() const { return page_table_; }

    bool unlimited() const { return capacity_pages_ == 0; }
    std::uint64_t capacityPages() const { return capacity_pages_; }

    /** Grows/shrinks capacity (ETC capacity compression). 0=unlimited. */
    void setCapacityPages(std::uint64_t pages);

    /**
     * Frames currently committed (resident pages plus frames reserved
     * for in-flight inbound transfers, minus frames of pages whose
     * eviction transfer is still in flight — those frames free only at
     * eviction completion).
     */
    std::uint64_t committedFrames() const { return committed_; }

    /** True if a new frame can be reserved right now. */
    bool hasFreeFrame() const
    {
        return unlimited() || committed_ < capacity_pages_;
    }

    /** The UE top-half check: no frame headroom left. */
    bool atCapacity() const { return !hasFreeFrame(); }

    /**
     * Registers the run's tenant directory, switching the manager into
     * multi-tenant arbitration: frames are charged to their owning
     * tenant and victim selection follows the directory's SharePolicy.
     * Must be called before any frame is committed. nullptr (the
     * default state) keeps the exact single-tenant behaviour.
     */
    void setTenantDirectory(const TenantDirectory *dir);

    /**
     * hasFreeFrame(), tightened by the tenant quota: under StrictQuota
     * a tenant at its cap has no free frame even when the GPU does
     * (it must evict one of its own pages first). With no directory or
     * @p tenant == kNoTenant this is exactly hasFreeFrame().
     */
    bool
    hasFreeFrameFor(TenantId tenant) const
    {
        if (!hasFreeFrame())
            return false;
        if (dir_ == nullptr || tenant == kNoTenant ||
            dir_->policy() != SharePolicy::StrictQuota)
            return true;
        return committed_by_[tenant] <
               dir_->context(tenant).quota_pages;
    }

    /** Frames currently charged to @p tenant. */
    std::uint64_t committedFramesOf(TenantId tenant) const
    {
        return committed_by_[tenant];
    }

    /**
     * Reserves a frame for an inbound page transfer, charged to
     * @p tenant when a directory is registered.
     * @pre hasFreeFrameFor(tenant).
     */
    void reserveFrame(TenantId tenant = kNoTenant);

    /**
     * Completes an inbound migration: maps @p vpn into the reserved
     * frame and appends its chunk to the LRU tail.
     */
    void commitPage(PageNum vpn, Cycle now);

    /**
     * Picks the eviction victim (head of the aged-LRU list), unmaps it
     * and stamps lifetime statistics. The frame stays committed until
     * completeEviction().
     *
     * @param[out] vpn  the victim page.
     * @retval false no evictable page exists (everything resident is
     *               already being evicted).
     */
    bool beginEviction(PageNum *vpn, Cycle now);

    /**
     * Tenant-aware victim selection: like beginEviction(), but the
     * SharePolicy steers *whose* chunk loses its oldest page.
     * StrictQuota evicts from @p cause itself (the tenant that needs
     * the frame); Proportional evicts from the tenant furthest above
     * its weighted share. Either way the choice within the selected
     * tenant follows the aged chunk LRU (its least recently allocated
     * chunk), and when no page of the selected tenant is evictable the
     * selection falls back to the global LRU head. With no directory,
     * FreeForAll, or @p cause == kNoTenant under StrictQuota this is
     * exactly beginEviction().
     */
    bool beginEvictionFor(TenantId cause, PageNum *vpn, Cycle now);

    /** Releases the victim's frame once its D2H transfer finished. */
    void completeEviction(PageNum vpn);

    /** True when @p vpn currently has a GPU mapping. */
    bool isResident(PageNum vpn) const
    {
        return page_table_.isResident(vpn);
    }

    LifetimeTracker &lifetimeTracker() { return lifetime_; }

    std::uint64_t evictions() const { return evictions_; }

    /** Evictions whose page was later migrated back (refaulted). */
    std::uint64_t prematureEvictions() const { return premature_; }

    /** Premature evictions as a fraction of all evictions. */
    double
    prematureEvictionRate() const
    {
        return evictions_ ? static_cast<double>(premature_) / evictions_
                          : 0.0;
    }

    std::uint64_t migrations() const { return migrations_; }

    /** Evictions chosen on @p tenant's behalf (it needed the frame). */
    std::uint64_t evictionsCausedBy(TenantId tenant) const
    {
        return caused_[tenant];
    }

    /** Evictions that removed one of @p tenant's own pages. */
    std::uint64_t evictionsSufferedBy(TenantId tenant) const
    {
        return suffered_[tenant];
    }

    /** High-water mark of frames charged to @p tenant. */
    std::uint64_t peakCommittedFramesOf(TenantId tenant) const
    {
        return peak_committed_by_[tenant];
    }

    /** Mean lifetime (cycles) of @p tenant's evicted pages. */
    double
    avgLifetimeOf(TenantId tenant) const
    {
        return lifetime_count_by_[tenant]
                   ? lifetime_sum_by_[tenant] /
                         static_cast<double>(lifetime_count_by_[tenant])
                   : 0.0;
    }

  private:
    /**
     * Per-root-chunk state: intrusive LRU links plus the head/tail of
     * the chunk's resident-page FIFO (threaded through
     * PageMeta::chunk_next, oldest allocation first). in_list
     * distinguishes "not in the LRU" from "at the ends of it".
     */
    struct ChunkMeta {
        std::uint32_t prev = PageMeta::kNoIndex;
        std::uint32_t next = PageMeta::kNoIndex;
        std::uint32_t page_head = PageMeta::kNoIndex;
        std::uint32_t page_tail = PageMeta::kNoIndex;
        bool in_list = false;
    };

    std::uint64_t chunkOf(PageNum vpn) const
    {
        return vpn / config_.root_chunk_pages;
    }

    ChunkMeta &ensureChunk(std::uint64_t chunk);
    void lruUnlink(std::uint32_t chunk);
    void lruAppend(std::uint32_t chunk);

    /** Owner of @p chunk (slices are chunk-aligned, so the chunk's
     *  first page decides). kNoTenant with no directory. */
    TenantId chunkOwner(std::uint32_t chunk) const
    {
        return dir_ ? dir_->tenantOf(static_cast<PageNum>(chunk) *
                                     config_.root_chunk_pages)
                    : kNoTenant;
    }

    /** First LRU chunk owned by @p tenant, or kNoIndex. */
    std::uint32_t firstChunkOf(TenantId tenant) const;

    /** Pops and evicts the oldest page of LRU chunk @p chunk. */
    PageNum evictOldestPageOf(std::uint32_t chunk, Cycle now,
                              TenantId cause);

    SimHooks hooks_;
    UvmConfig config_;
    std::uint64_t capacity_pages_;
    std::uint64_t committed_ = 0;
    PageTable page_table_;
    LifetimeTracker lifetime_;
    const TenantDirectory *dir_ = nullptr;

    // Per-tenant accounting, indexed by TenantId; sized (and only
    // touched) once a directory is registered.
    std::vector<std::uint64_t> committed_by_;
    std::vector<std::uint64_t> peak_committed_by_;
    std::vector<std::uint64_t> caused_;
    std::vector<std::uint64_t> suffered_;
    std::vector<double> lifetime_sum_by_;
    std::vector<std::uint64_t> lifetime_count_by_;

    std::vector<ChunkMeta> chunks_; //!< dense, indexed by chunk id
    std::uint32_t lru_head_ = PageMeta::kNoIndex; //!< oldest chunk
    std::uint32_t lru_tail_ = PageMeta::kNoIndex; //!< newest chunk

    std::uint64_t evictions_ = 0;
    std::uint64_t premature_ = 0;
    std::uint64_t migrations_ = 0;
};

} // namespace bauvm

#endif // BAUVM_UVM_GPU_MEMORY_MANAGER_H_
