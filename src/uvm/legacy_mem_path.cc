#include "src/uvm/legacy_mem_path.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/sim/log.h"

namespace bauvm
{

// ---------------------------------------------------------------------
// LegacyPageTable
// ---------------------------------------------------------------------

void
LegacyPageTable::map(PageNum vpn, FrameNum frame)
{
    auto [it, inserted] = mappings_.emplace(vpn, frame);
    (void)it;
    if (!inserted)
        panic("LegacyPageTable: double map of vpn %llu",
              static_cast<unsigned long long>(vpn));
}

void
LegacyPageTable::unmap(PageNum vpn)
{
    auto it = mappings_.find(vpn);
    if (it == mappings_.end())
        panic("LegacyPageTable: unmap of non-resident vpn %llu",
              static_cast<unsigned long long>(vpn));
    mappings_.erase(it);
    ++versions_[vpn];
}

FrameNum
LegacyPageTable::frameOf(PageNum vpn) const
{
    auto it = mappings_.find(vpn);
    if (it == mappings_.end())
        panic("LegacyPageTable: frameOf non-resident vpn %llu",
              static_cast<unsigned long long>(vpn));
    return it->second;
}

// ---------------------------------------------------------------------
// LegacyGpuMemoryManager
// ---------------------------------------------------------------------

LegacyGpuMemoryManager::LegacyGpuMemoryManager(
    const UvmConfig &config, std::uint64_t capacity_pages)
    : config_(config), capacity_pages_(capacity_pages)
{
    if (config_.root_chunk_pages == 0)
        fatal("LegacyGpuMemoryManager: root_chunk_pages must be "
              "positive");
}

void
LegacyGpuMemoryManager::reserveFrame()
{
    if (!hasFreeFrame())
        panic("LegacyGpuMemoryManager: reserveFrame with no free frame");
    if (!unlimited())
        ++committed_;
}

void
LegacyGpuMemoryManager::commitPage(PageNum vpn, Cycle now)
{
    ++migrations_;
    page_table_.map(vpn, vpn);
    alloc_time_[vpn] = now;

    auto ref = pending_refault_.find(vpn);
    if (ref != pending_refault_.end()) {
        ++premature_;
        if (--ref->second == 0)
            pending_refault_.erase(ref);
    }

    const std::uint64_t chunk = chunkOf(vpn);
    chunk_pages_[chunk].push_back(vpn);
    auto pos = lru_pos_.find(chunk);
    if (pos != lru_pos_.end())
        lru_.erase(pos->second);
    lru_.push_back(chunk);
    lru_pos_[chunk] = std::prev(lru_.end());
}

bool
LegacyGpuMemoryManager::beginEviction(PageNum *vpn, Cycle now)
{
    if (lru_.empty())
        return false;
    const std::uint64_t chunk = lru_.front();
    auto &pages = chunk_pages_[chunk];
    if (pages.empty())
        panic("LegacyGpuMemoryManager: LRU chunk with no pages");

    const PageNum victim = pages.front();
    pages.erase(pages.begin());
    if (pages.empty()) {
        chunk_pages_.erase(chunk);
        lru_.pop_front();
        lru_pos_.erase(chunk);
    }

    page_table_.unmap(victim);
    ++evictions_;
    ++pending_refault_[victim];

    auto at = alloc_time_.find(victim);
    if (at == alloc_time_.end())
        panic("LegacyGpuMemoryManager: victim with no allocation time");
    (void)now;
    alloc_time_.erase(at);

    *vpn = victim;
    return true;
}

void
LegacyGpuMemoryManager::completeEviction(PageNum vpn)
{
    (void)vpn;
    if (!unlimited()) {
        if (committed_ == 0)
            panic("LegacyGpuMemoryManager: completeEviction underflow");
        --committed_;
    }
}

// ---------------------------------------------------------------------
// LegacyFaultBuffer
// ---------------------------------------------------------------------

LegacyFaultBuffer::LegacyFaultBuffer(std::uint32_t capacity)
    : capacity_(capacity)
{
    if (capacity == 0)
        fatal("LegacyFaultBuffer: capacity must be positive");
}

void
LegacyFaultBuffer::insert(PageNum vpn, Cycle now)
{
    ++total_faults_;
    auto it = index_.find(vpn);
    if (it != index_.end()) {
        ++order_[it->second].duplicates;
        return;
    }
    if (order_.size() >= capacity_) {
        ++overflows_;
        for (auto &rec : overflow_) {
            if (rec.vpn == vpn) {
                ++rec.duplicates;
                return;
            }
        }
        overflow_.push_back(FaultRecord{vpn, now, 1});
        return;
    }
    index_.emplace(vpn, order_.size());
    order_.push_back(FaultRecord{vpn, now, 1});
}

std::vector<FaultRecord>
LegacyFaultBuffer::drain()
{
    std::vector<FaultRecord> out = std::move(order_);
    order_.clear();
    index_.clear();
    while (!overflow_.empty() && order_.size() < capacity_) {
        index_.emplace(overflow_.front().vpn, order_.size());
        order_.push_back(overflow_.front());
        overflow_.pop_front();
    }
    return out;
}

// ---------------------------------------------------------------------
// LegacyTreePrefetcher
// ---------------------------------------------------------------------

LegacyTreePrefetcher::LegacyTreePrefetcher(const UvmConfig &config,
                                           ResidencyFn resident,
                                           ValidFn valid)
    : config_(config), resident_(std::move(resident)),
      valid_(std::move(valid))
{
    pages_per_block_ = static_cast<std::uint32_t>(
        config.va_block_bytes / config.page_bytes);
    if (pages_per_block_ == 0 ||
        (pages_per_block_ & (pages_per_block_ - 1)) != 0) {
        fatal("LegacyTreePrefetcher: pages per VA block (%u) must be a "
              "power of two", pages_per_block_);
    }
}

std::vector<PageNum>
LegacyTreePrefetcher::computePrefetches(
    const std::vector<PageNum> &faulted) const
{
    return config_.sequential_prefetch_pages > 0
               ? sequentialPrefetches(faulted)
               : treePrefetches(faulted);
}

std::vector<PageNum>
LegacyTreePrefetcher::sequentialPrefetches(
    const std::vector<PageNum> &faulted) const
{
    std::unordered_set<PageNum> faulted_set(faulted.begin(),
                                            faulted.end());
    std::unordered_set<PageNum> chosen;
    for (PageNum vpn : faulted) {
        for (std::uint32_t i = 1;
             i <= config_.sequential_prefetch_pages; ++i) {
            const PageNum next = vpn + i;
            if (!resident_(next) && !faulted_set.count(next) &&
                valid_(next)) {
                chosen.insert(next);
            }
        }
    }
    std::vector<PageNum> prefetches(chosen.begin(), chosen.end());
    std::sort(prefetches.begin(), prefetches.end());
    return prefetches;
}

std::vector<PageNum>
LegacyTreePrefetcher::treePrefetches(
    const std::vector<PageNum> &faulted) const
{
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> blocks;
    for (PageNum vpn : faulted)
        blocks[vpn / pages_per_block_].push_back(
            static_cast<std::uint32_t>(vpn % pages_per_block_));

    std::vector<PageNum> prefetches;
    std::unordered_set<PageNum> faulted_set(faulted.begin(),
                                            faulted.end());

    for (auto &[block, offsets] : blocks) {
        const PageNum base = block * pages_per_block_;
        std::vector<bool> occupied(pages_per_block_, false);
        for (std::uint32_t i = 0; i < pages_per_block_; ++i)
            occupied[i] = resident_(base + i);
        for (std::uint32_t off : offsets)
            occupied[off] = true;

        for (std::uint32_t span = 2; span <= pages_per_block_;
             span *= 2) {
            for (std::uint32_t lo = 0; lo < pages_per_block_;
                 lo += span) {
                std::uint32_t count = 0;
                for (std::uint32_t i = lo; i < lo + span; ++i)
                    count += occupied[i] ? 1 : 0;
                if (count == span || count == 0)
                    continue;
                if (static_cast<double>(count) >
                    config_.prefetch_density * span) {
                    for (std::uint32_t i = lo; i < lo + span; ++i)
                        occupied[i] = true;
                }
            }
        }

        for (std::uint32_t i = 0; i < pages_per_block_; ++i) {
            const PageNum vpn = base + i;
            if (occupied[i] && !resident_(vpn) &&
                !faulted_set.count(vpn) && valid_(vpn)) {
                prefetches.push_back(vpn);
            }
        }
    }
    std::sort(prefetches.begin(), prefetches.end());
    return prefetches;
}

} // namespace bauvm
