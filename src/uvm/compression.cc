#include "src/uvm/compression.h"

#include "src/sim/log.h"

namespace bauvm
{

CompressionModel::CompressionModel(double mean_ratio, double spread)
    : mean_ratio_(mean_ratio), spread_(spread)
{
    if (mean_ratio < 1.0)
        fatal("CompressionModel: ratio below 1 (%f)", mean_ratio);
}

double
CompressionModel::ratioFor(PageNum vpn) const
{
    if (!enabled())
        return 1.0;
    // splitmix64-style hash of the page number -> uniform in [-1, 1).
    std::uint64_t z = vpn + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    const double u = static_cast<double>(z >> 11) * 0x1.0p-53; // [0,1)
    const double ratio = mean_ratio_ * (1.0 + spread_ * (2.0 * u - 1.0));
    return ratio < 1.0 ? 1.0 : ratio;
}

std::uint64_t
CompressionModel::compressedBytes(PageNum vpn, std::uint64_t bytes) const
{
    const auto out =
        static_cast<std::uint64_t>(static_cast<double>(bytes) /
                                   ratioFor(vpn));
    return out == 0 ? 1 : out;
}

} // namespace bauvm
