#include "src/uvm/prefetcher.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/sim/log.h"

namespace bauvm
{

TreePrefetcher::TreePrefetcher(const UvmConfig &config, ResidencyFn resident,
                               ValidFn valid, const SimHooks &hooks)
    : config_(config), resident_(std::move(resident)),
      valid_(std::move(valid)), hooks_(hooks)
{
    pages_per_block_ = static_cast<std::uint32_t>(
        config.va_block_bytes / config.page_bytes);
    if (pages_per_block_ == 0 ||
        (pages_per_block_ & (pages_per_block_ - 1)) != 0) {
        fatal("TreePrefetcher: pages per VA block (%u) must be a power "
              "of two", pages_per_block_);
    }
}

std::vector<PageNum>
TreePrefetcher::computePrefetches(
    const std::vector<PageNum> &faulted) const
{
    std::vector<PageNum> picked =
        config_.sequential_prefetch_pages > 0
            ? sequentialPrefetches(faulted)
            : treePrefetches(faulted);
    if (hooks_.trace && hooks_.clock && !picked.empty()) {
        hooks_.trace->instant(TraceEventType::PrefetchIssue,
                              kTraceTrackRuntime, hooks_.clock->now(),
                              picked.size(),
                              static_cast<std::uint32_t>(
                                  faulted.size()));
    }
    BAUVM_DLOG("TreePrefetcher: %zu prefetches for %zu demand pages",
               picked.size(), faulted.size());
    return picked;
}

std::vector<PageNum>
TreePrefetcher::sequentialPrefetches(
    const std::vector<PageNum> &faulted) const
{
    std::unordered_set<PageNum> faulted_set(faulted.begin(),
                                            faulted.end());
    std::unordered_set<PageNum> chosen;
    for (PageNum vpn : faulted) {
        for (std::uint32_t i = 1;
             i <= config_.sequential_prefetch_pages; ++i) {
            const PageNum next = vpn + i;
            if (!resident_(next) && !faulted_set.count(next) &&
                valid_(next)) {
                chosen.insert(next);
            }
        }
    }
    std::vector<PageNum> prefetches(chosen.begin(), chosen.end());
    std::sort(prefetches.begin(), prefetches.end());
    return prefetches;
}

std::vector<PageNum>
TreePrefetcher::treePrefetches(
    const std::vector<PageNum> &faulted) const
{
    // Group the batch's faults by VA block.
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> blocks;
    for (PageNum vpn : faulted)
        blocks[vpn / pages_per_block_].push_back(
            static_cast<std::uint32_t>(vpn % pages_per_block_));

    std::vector<PageNum> prefetches;
    std::unordered_set<PageNum> faulted_set(faulted.begin(),
                                            faulted.end());

    for (auto &[block, offsets] : blocks) {
        const PageNum base = block * pages_per_block_;
        // Leaf occupancy: resident pages plus this batch's faults.
        std::vector<bool> occupied(pages_per_block_, false);
        for (std::uint32_t i = 0; i < pages_per_block_; ++i)
            occupied[i] = resident_(base + i);
        for (std::uint32_t off : offsets)
            occupied[off] = true;

        // Walk subtree sizes 2, 4, ..., pages_per_block_; whenever a
        // subtree is more than `density` full, fill it completely.
        for (std::uint32_t span = 2; span <= pages_per_block_; span *= 2) {
            for (std::uint32_t lo = 0; lo < pages_per_block_; lo += span) {
                std::uint32_t count = 0;
                for (std::uint32_t i = lo; i < lo + span; ++i)
                    count += occupied[i] ? 1 : 0;
                if (count == span || count == 0)
                    continue;
                if (static_cast<double>(count) >
                    config_.prefetch_density * span) {
                    for (std::uint32_t i = lo; i < lo + span; ++i)
                        occupied[i] = true;
                }
            }
        }

        for (std::uint32_t i = 0; i < pages_per_block_; ++i) {
            const PageNum vpn = base + i;
            if (occupied[i] && !resident_(vpn) &&
                !faulted_set.count(vpn) && valid_(vpn)) {
                prefetches.push_back(vpn);
            }
        }
    }
    std::sort(prefetches.begin(), prefetches.end());
    return prefetches;
}

} // namespace bauvm
