#include "src/uvm/prefetcher.h"

#include <algorithm>

#include "src/sim/log.h"

namespace bauvm
{

TreePrefetcher::TreePrefetcher(const UvmConfig &config, ResidencyFn resident,
                               ValidFn valid, const SimHooks &hooks)
    : config_(config), resident_(std::move(resident)),
      valid_(std::move(valid)), hooks_(hooks)
{
    pages_per_block_ = static_cast<std::uint32_t>(
        config.va_block_bytes / config.page_bytes);
    if (pages_per_block_ == 0 ||
        (pages_per_block_ & (pages_per_block_ - 1)) != 0) {
        fatal("TreePrefetcher: pages per VA block (%u) must be a power "
              "of two", pages_per_block_);
    }
}

void
TreePrefetcher::computePrefetchesInto(
    const std::vector<PageNum> &faulted, std::vector<PageNum> *out) const
{
    out->clear();
    sorted_faults_.assign(faulted.begin(), faulted.end());
    std::sort(sorted_faults_.begin(), sorted_faults_.end());
    if (config_.sequential_prefetch_pages > 0)
        sequentialPrefetches(faulted, out);
    else
        treePrefetches(out);
    if (hooks_.trace && hooks_.clock && !out->empty()) {
        hooks_.trace->instant(TraceEventType::PrefetchIssue,
                              kTraceTrackRuntime, hooks_.clock->now(),
                              out->size(),
                              static_cast<std::uint32_t>(
                                  faulted.size()));
    }
    BAUVM_DLOG("TreePrefetcher: %zu prefetches for %zu demand pages",
               out->size(), faulted.size());
}

void
TreePrefetcher::sequentialPrefetches(
    const std::vector<PageNum> &faulted, std::vector<PageNum> *out) const
{
    for (PageNum vpn : faulted) {
        for (std::uint32_t i = 1;
             i <= config_.sequential_prefetch_pages; ++i) {
            const PageNum next = vpn + i;
            const bool is_fault = std::binary_search(
                sorted_faults_.begin(), sorted_faults_.end(), next);
            if (!resident_(next) && !is_fault && valid_(next))
                out->push_back(next);
        }
    }
    // Candidate windows of nearby faults overlap; sort + unique yields
    // the same deduplicated ascending set the old hash-set build did.
    std::sort(out->begin(), out->end());
    out->erase(std::unique(out->begin(), out->end()), out->end());
}

void
TreePrefetcher::treePrefetches(std::vector<PageNum> *out) const
{
    // Walk the sorted fault list in runs sharing a VA block — the same
    // per-block analysis as grouping through a map, without building
    // one. Blocks come out in ascending order and so do each block's
    // picks, so `out` ends up globally sorted.
    occupied_.assign(pages_per_block_, 0);
    fault_in_block_.assign(pages_per_block_, 0);
    std::size_t i = 0;
    while (i < sorted_faults_.size()) {
        const std::uint64_t block = sorted_faults_[i] / pages_per_block_;
        std::size_t j = i;
        while (j < sorted_faults_.size() &&
               sorted_faults_[j] / pages_per_block_ == block) {
            ++j;
        }
        const PageNum base = block * pages_per_block_;

        // Leaf occupancy: resident pages plus this batch's faults.
        for (std::uint32_t k = 0; k < pages_per_block_; ++k) {
            occupied_[k] = resident_(base + k) ? 1 : 0;
            fault_in_block_[k] = 0;
        }
        for (std::size_t f = i; f < j; ++f) {
            const auto off = static_cast<std::uint32_t>(
                sorted_faults_[f] % pages_per_block_);
            occupied_[off] = 1;
            fault_in_block_[off] = 1;
        }

        // Walk subtree sizes 2, 4, ..., pages_per_block_; whenever a
        // subtree is more than `density` full, fill it completely.
        for (std::uint32_t span = 2; span <= pages_per_block_;
             span *= 2) {
            for (std::uint32_t lo = 0; lo < pages_per_block_;
                 lo += span) {
                std::uint32_t count = 0;
                for (std::uint32_t k = lo; k < lo + span; ++k)
                    count += occupied_[k] ? 1 : 0;
                if (count == span || count == 0)
                    continue;
                if (static_cast<double>(count) >
                    config_.prefetch_density * span) {
                    for (std::uint32_t k = lo; k < lo + span; ++k)
                        occupied_[k] = 1;
                }
            }
        }

        for (std::uint32_t k = 0; k < pages_per_block_; ++k) {
            const PageNum vpn = base + k;
            if (occupied_[k] && !fault_in_block_[k] &&
                !resident_(vpn) && valid_(vpn)) {
                out->push_back(vpn);
            }
        }
        i = j;
    }
}

} // namespace bauvm
