/**
 * @file
 * Tree-based page prefetcher (the "state-of-the-art page prefetching"
 * baseline, Zheng et al. HPCA'16 as implemented by the NVIDIA UVM
 * runtime's preprocess step).
 *
 * Pages are grouped into 2 MB virtual-address blocks. Within a block a
 * full binary tree spans the 64 KB pages; whenever the fraction of a
 * subtree's pages that are resident-or-faulting exceeds the density
 * threshold (50%), the remainder of that subtree is appended to the
 * batch as prefetch requests. The runtime performs this analysis during
 * batch preprocessing, so prefetches ride along with the demand
 * migrations of the same batch.
 *
 * The analysis runs once per batch on persistent scratch buffers (a
 * sorted copy of the fault list and per-block occupancy bitmaps); after
 * the first few batches warm the buffers it allocates nothing.
 */

#ifndef BAUVM_UVM_PREFETCHER_H_
#define BAUVM_UVM_PREFETCHER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/check/sim_hooks.h"
#include "src/sim/config.h"
#include "src/sim/event_queue.h"
#include "src/sim/types.h"
#include "src/trace/trace_sink.h"

namespace bauvm
{

/** Batch-time tree prefetcher over 2 MB VA blocks. */
class TreePrefetcher
{
  public:
    using ResidencyFn = std::function<bool(PageNum)>;
    using ValidFn = std::function<bool(PageNum)>;

    /**
     * @param config    page size / VA-block size / density threshold.
     * @param resident  callback telling whether a page already has (or
     *                  is getting) a GPU frame.
     * @param valid     callback telling whether a page belongs to an
     *                  actual allocation (never prefetch holes).
     * @param hooks     observers: every non-empty prefetch decision
     *                  emits one PrefetchIssue instant stamped with
     *                  the hook clock's current cycle.
     */
    TreePrefetcher(const UvmConfig &config, ResidencyFn resident,
                   ValidFn valid, const SimHooks &hooks = {});

    /**
     * Computes the prefetch set for one batch into @p out.
     *
     * @param faulted   distinct demand-faulted pages of the batch.
     * @param[out] out  pages to prefetch (disjoint from @p faulted and
     *                  from resident pages), in ascending page order;
     *                  cleared first. Reusing the same vector across
     *                  batches keeps the path allocation-free.
     */
    void computePrefetchesInto(const std::vector<PageNum> &faulted,
                               std::vector<PageNum> *out) const;

    /** Convenience wrapper around computePrefetchesInto() (tests). */
    std::vector<PageNum>
    computePrefetches(const std::vector<PageNum> &faulted) const
    {
        std::vector<PageNum> out;
        computePrefetchesInto(faulted, &out);
        return out;
    }

    std::uint32_t pagesPerBlock() const { return pages_per_block_; }

  private:
    /** Tree policy (the default). */
    void treePrefetches(std::vector<PageNum> *out) const;
    /** Naive next-N sequential policy (ablation). */
    void sequentialPrefetches(const std::vector<PageNum> &faulted,
                              std::vector<PageNum> *out) const;

    UvmConfig config_;
    ResidencyFn resident_;
    ValidFn valid_;
    SimHooks hooks_;
    std::uint32_t pages_per_block_;

    // Persistent per-batch scratch (mutable: the compute is logically
    // const — pure function of the fault list and the callbacks).
    mutable std::vector<PageNum> sorted_faults_;
    mutable std::vector<char> occupied_;       //!< one block's leaves
    mutable std::vector<char> fault_in_block_; //!< one block's faults
};

} // namespace bauvm

#endif // BAUVM_UVM_PREFETCHER_H_
