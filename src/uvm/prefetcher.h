/**
 * @file
 * Tree-based page prefetcher (the "state-of-the-art page prefetching"
 * baseline, Zheng et al. HPCA'16 as implemented by the NVIDIA UVM
 * runtime's preprocess step).
 *
 * Pages are grouped into 2 MB virtual-address blocks. Within a block a
 * full binary tree spans the 64 KB pages; whenever the fraction of a
 * subtree's pages that are resident-or-faulting exceeds the density
 * threshold (50%), the remainder of that subtree is appended to the
 * batch as prefetch requests. The runtime performs this analysis during
 * batch preprocessing, so prefetches ride along with the demand
 * migrations of the same batch.
 */

#ifndef BAUVM_UVM_PREFETCHER_H_
#define BAUVM_UVM_PREFETCHER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/check/sim_hooks.h"
#include "src/sim/config.h"
#include "src/sim/event_queue.h"
#include "src/sim/types.h"
#include "src/trace/trace_sink.h"

namespace bauvm
{

/** Batch-time tree prefetcher over 2 MB VA blocks. */
class TreePrefetcher
{
  public:
    using ResidencyFn = std::function<bool(PageNum)>;
    using ValidFn = std::function<bool(PageNum)>;

    /**
     * @param config    page size / VA-block size / density threshold.
     * @param resident  callback telling whether a page already has (or
     *                  is getting) a GPU frame.
     * @param valid     callback telling whether a page belongs to an
     *                  actual allocation (never prefetch holes).
     * @param hooks     observers: every non-empty prefetch decision
     *                  emits one PrefetchIssue instant stamped with
     *                  the hook clock's current cycle.
     */
    TreePrefetcher(const UvmConfig &config, ResidencyFn resident,
                   ValidFn valid, const SimHooks &hooks = {});

    /**
     * Computes the prefetch set for one batch.
     *
     * @param faulted  distinct demand-faulted pages of the batch.
     * @return pages to prefetch (disjoint from @p faulted and from
     *         resident pages), in ascending page order.
     */
    std::vector<PageNum> computePrefetches(
        const std::vector<PageNum> &faulted) const;

    std::uint32_t pagesPerBlock() const { return pages_per_block_; }

  private:
    /** Tree policy (the default). */
    std::vector<PageNum> treePrefetches(
        const std::vector<PageNum> &faulted) const;
    /** Naive next-N sequential policy (ablation). */
    std::vector<PageNum> sequentialPrefetches(
        const std::vector<PageNum> &faulted) const;

    UvmConfig config_;
    ResidencyFn resident_;
    ValidFn valid_;
    SimHooks hooks_;
    std::uint32_t pages_per_block_;
};

} // namespace bauvm

#endif // BAUVM_UVM_PREFETCHER_H_
