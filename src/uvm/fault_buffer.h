/**
 * @file
 * Hardware page-fault buffer model.
 *
 * The GPU MMU appends replayable faults here; the UVM runtime drains the
 * whole buffer at the start of each batch (Fig 2 of the paper). Real
 * hardware stores one entry per faulting warp; the runtime's
 * preprocessing step deduplicates them per page. We store page-granular
 * entries with a duplicate counter, which preserves both the batch
 * composition and the occupancy statistics while keeping drain cheap.
 * Entry capacity is enforced (Table 1: 1024 entries); overflowing faults
 * are queued aside and re-inserted as entries free up, modelling the
 * hardware's replay of dropped faults.
 *
 * Duplicate detection uses PageMeta::fault_slot in the shared dense
 * page-metadata table instead of a vpn -> index hash map. Buffered
 * entries live in a structure-of-arrays FaultBatch (parallel vpn /
 * first-cycle / duplicate / tenant arrays) so the runtime's batch
 * preprocessing runs as tight scans over each array, and drain swaps
 * the arrays with a caller-provided batch — in steady state (no
 * overflow) inserting and draining faults performs no heap allocation
 * at all.
 *
 * Like the other hot-path classes, the buffer splits into a
 * mode-independent base and FaultBufferT<M> carrying the specialized
 * insert/drain (src/check/observer_mode.h); FaultBuffer aliases the
 * Dynamic specialization.
 */

#ifndef BAUVM_UVM_FAULT_BUFFER_H_
#define BAUVM_UVM_FAULT_BUFFER_H_

#include <cstdint>
#include <vector>

#include "src/check/observer_mode.h"
#include "src/check/sim_hooks.h"
#include "src/mem/page_meta.h"
#include "src/sim/types.h"
#include "src/trace/trace_sink.h"

namespace bauvm
{

/** One page-granular fault record (AoS view; tests, overflow queue). */
struct FaultRecord {
    PageNum vpn = 0;
    Cycle first_cycle = 0;      //!< when the first fault for the page hit
    std::uint32_t duplicates = 1; //!< total faulting requests coalesced
    TenantId tenant = kNoTenant;  //!< owner of the faulting page
};

/**
 * Structure-of-arrays batch of page faults: index i across the four
 * parallel arrays describes one distinct faulting page, in insertion
 * order. The batch-begin preprocessing scans one array at a time
 * (residency over vpns, accounting over duplicates/tenants) instead of
 * striding over interleaved records.
 */
struct FaultBatch {
    std::vector<PageNum> vpns;
    std::vector<Cycle> first_cycles;
    std::vector<std::uint32_t> duplicates;
    std::vector<TenantId> tenants;

    std::size_t size() const { return vpns.size(); }
    bool empty() const { return vpns.empty(); }

    void
    clear()
    {
        vpns.clear();
        first_cycles.clear();
        duplicates.clear();
        tenants.clear();
    }

    void
    push(PageNum vpn, Cycle first_cycle, std::uint32_t dups,
         TenantId tenant)
    {
        vpns.push_back(vpn);
        first_cycles.push_back(first_cycle);
        duplicates.push_back(dups);
        tenants.push_back(tenant);
    }
};

/** State and queries of the bounded fault buffer (mode-independent). */
class FaultBufferBase
{
  public:
    /**
     * @param capacity maximum distinct-page entries held.
     * @param meta     shared dense page metadata; the buffer keeps each
     *                 buffered page's entry index in its fault_slot
     *                 field (kNoIndex when not buffered).
     * @param hooks    observers (inserts emit occupancy counter
     *                 samples; the auditor replays the accounting).
     */
    FaultBufferBase(std::uint32_t capacity, PageMetaTable &meta,
                    const SimHooks &hooks = {});

    /** Distinct-page entries currently buffered. */
    std::size_t size() const { return entries_.size(); }

    bool empty() const { return entries_.empty() && overflowSize() == 0; }

    std::uint32_t capacity() const { return capacity_; }

    /** Total faults that arrived while the buffer was full. */
    std::uint64_t overflows() const { return overflows_; }

    /** Total insert() calls (including duplicates and overflows). */
    std::uint64_t totalFaults() const { return total_faults_; }

  protected:
    ~FaultBufferBase() = default;

    std::size_t overflowSize() const
    {
        return overflow_.size() - overflow_head_;
    }

    SimHooks hooks_;
    std::uint32_t capacity_;
    PageMetaTable &meta_;
    FaultBatch entries_; //!< insertion-ordered SoA entries
    /**
     * Overflow FIFO: live entries are [overflow_head_, size()). Popping
     * advances the head; storage is reclaimed once the queue empties
     * (drain compacts it), so sustained overflow does not grow it
     * unboundedly. Overflow is the rare path, so it stays AoS.
     */
    std::vector<FaultRecord> overflow_;
    std::size_t overflow_head_ = 0;
    std::uint64_t overflows_ = 0;
    std::uint64_t total_faults_ = 0;
};

/** Bounded buffer of outstanding (not yet batched) page faults. */
template <ObserverMode M>
class FaultBufferT final : public FaultBufferBase
{
  public:
    using FaultBufferBase::FaultBufferBase;

    /**
     * Records a fault on @p vpn at cycle @p now.
     *
     * Duplicate faults for a page already buffered merge into its entry.
     * When the buffer is full, the fault goes to the overflow queue and
     * is counted in overflows(). @p tenant attributes the fault in
     * multi-tenant runs; duplicates keep the first fault's attribution.
     */
    void insert(PageNum vpn, Cycle now, TenantId tenant = kNoTenant);

    /**
     * Moves every buffered entry into @p out (batch formation), then
     * refills from the overflow queue. @p out is clear()ed first; the
     * SoA arrays are swapped, so reusing the same batch across drains
     * keeps the drain allocation-free.
     */
    void drainInto(FaultBatch &out);

    /** AoS compatibility drain (tests, differential harnesses). */
    void drainInto(std::vector<FaultRecord> &out);

    /** Convenience wrapper around drainInto() (tests, one-shot use). */
    std::vector<FaultRecord>
    drain()
    {
        std::vector<FaultRecord> out;
        drainInto(out);
        return out;
    }
};

extern template class FaultBufferT<ObserverMode::Dynamic>;
extern template class FaultBufferT<ObserverMode::None>;
extern template class FaultBufferT<ObserverMode::Trace>;
extern template class FaultBufferT<ObserverMode::Audit>;
extern template class FaultBufferT<ObserverMode::Both>;

/** Historical name: the runtime-dispatched (Dynamic) specialization. */
using FaultBuffer = FaultBufferT<ObserverMode::Dynamic>;

} // namespace bauvm

#endif // BAUVM_UVM_FAULT_BUFFER_H_
