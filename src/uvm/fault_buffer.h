/**
 * @file
 * Hardware page-fault buffer model.
 *
 * The GPU MMU appends replayable faults here; the UVM runtime drains the
 * whole buffer at the start of each batch (Fig 2 of the paper). Real
 * hardware stores one entry per faulting warp; the runtime's
 * preprocessing step deduplicates them per page. We store page-granular
 * entries with a duplicate counter, which preserves both the batch
 * composition and the occupancy statistics while keeping drain cheap.
 * Entry capacity is enforced (Table 1: 1024 entries); overflowing faults
 * are queued aside and re-inserted as entries free up, modelling the
 * hardware's replay of dropped faults.
 *
 * Duplicate detection uses PageMeta::fault_slot in the shared dense
 * page-metadata table instead of a vpn -> index hash map, and drain
 * swaps the entry vector with a caller-provided scratch buffer — in
 * steady state (no overflow) inserting and draining faults performs no
 * heap allocation at all.
 */

#ifndef BAUVM_UVM_FAULT_BUFFER_H_
#define BAUVM_UVM_FAULT_BUFFER_H_

#include <cstdint>
#include <vector>

#include "src/check/sim_hooks.h"
#include "src/mem/page_meta.h"
#include "src/sim/types.h"
#include "src/trace/trace_sink.h"

namespace bauvm
{

/** One page-granular fault record. */
struct FaultRecord {
    PageNum vpn = 0;
    Cycle first_cycle = 0;      //!< when the first fault for the page hit
    std::uint32_t duplicates = 1; //!< total faulting requests coalesced
    TenantId tenant = kNoTenant;  //!< owner of the faulting page
};

/** Bounded buffer of outstanding (not yet batched) page faults. */
class FaultBuffer
{
  public:
    /**
     * @param capacity maximum distinct-page entries held.
     * @param meta     shared dense page metadata; the buffer keeps each
     *                 buffered page's entry index in its fault_slot
     *                 field (kNoIndex when not buffered).
     * @param hooks    observers (inserts emit occupancy counter
     *                 samples; the auditor replays the accounting).
     */
    FaultBuffer(std::uint32_t capacity, PageMetaTable &meta,
                const SimHooks &hooks = {});

    /**
     * Records a fault on @p vpn at cycle @p now.
     *
     * Duplicate faults for a page already buffered merge into its entry.
     * When the buffer is full, the fault goes to the overflow queue and
     * is counted in overflows(). @p tenant attributes the fault in
     * multi-tenant runs; duplicates keep the first fault's attribution.
     */
    void insert(PageNum vpn, Cycle now, TenantId tenant = kNoTenant);

    /**
     * Moves every buffered entry into @p out (batch formation), then
     * refills from the overflow queue. @p out is clear()ed first; reusing
     * the same vector across batches keeps the drain allocation-free.
     */
    void drainInto(std::vector<FaultRecord> &out);

    /** Convenience wrapper around drainInto() (tests, one-shot use). */
    std::vector<FaultRecord>
    drain()
    {
        std::vector<FaultRecord> out;
        drainInto(out);
        return out;
    }

    /** Distinct-page entries currently buffered. */
    std::size_t size() const { return order_.size(); }

    bool empty() const { return order_.empty() && overflowSize() == 0; }

    std::uint32_t capacity() const { return capacity_; }

    /** Total faults that arrived while the buffer was full. */
    std::uint64_t overflows() const { return overflows_; }

    /** Total insert() calls (including duplicates and overflows). */
    std::uint64_t totalFaults() const { return total_faults_; }

  private:
    std::size_t overflowSize() const
    {
        return overflow_.size() - overflow_head_;
    }

    SimHooks hooks_;
    std::uint32_t capacity_;
    PageMetaTable &meta_;
    std::vector<FaultRecord> order_;  //!< insertion-ordered entries
    /**
     * Overflow FIFO: live entries are [overflow_head_, size()). Popping
     * advances the head; storage is reclaimed once the queue empties
     * (drain compacts it), so sustained overflow does not grow it
     * unboundedly.
     */
    std::vector<FaultRecord> overflow_;
    std::size_t overflow_head_ = 0;
    std::uint64_t overflows_ = 0;
    std::uint64_t total_faults_ = 0;
};

} // namespace bauvm

#endif // BAUVM_UVM_FAULT_BUFFER_H_
