#include "src/uvm/uvm_runtime.h"

#include <algorithm>
#include <iterator>

#include "src/check/model_auditor.h"
#include "src/sim/log.h"

namespace bauvm
{

UvmRuntimeBase::UvmRuntimeBase(const UvmConfig &config,
                               EventQueue &events,
                               GpuMemoryManager &manager,
                               MemoryHierarchyBase &hierarchy,
                               const SimHooks &hooks)
    : hooks_(hooks), config_(config), events_(events), manager_(manager),
      hierarchy_(hierarchy), meta_(manager.pageTable().meta()),
      pcie_(config, hooks),
      pcie_compression_(config.pcie_compression_ratio),
      prefetcher_(
          config,
          [this](PageNum vpn) {
              return manager_.isResident(vpn) || meta_.inFlight(vpn);
          },
          [this](PageNum vpn) { return meta_.valid(vpn); },
          hooks),
      handling_cycles_(usToCycles(config.fault_handling_us)),
      interrupt_cycles_(usToCycles(config.interrupt_latency_us))
{
}

void
UvmRuntimeBase::setTenantDirectory(const TenantDirectory *dir)
{
    dir_ = dir;
    demand_by_.assign(dir ? dir->size() : 0, 0);
}

void
UvmRuntimeBase::registerAllocation(VAddr base, std::uint64_t bytes)
{
    const PageNum first = base / config_.page_bytes;
    const PageNum last = (base + bytes - 1) / config_.page_bytes;
    for (PageNum vpn = first; vpn <= last; ++vpn)
        meta_.ensure(vpn).setValid(true);
}

void
UvmRuntimeBase::appendWaiter(PageNum vpn, WakeFn waiter)
{
    std::uint32_t idx;
    if (waiter_free_ != PageMeta::kNoIndex) {
        idx = waiter_free_;
        waiter_free_ = waiter_slab_[idx].next;
    } else {
        idx = static_cast<std::uint32_t>(waiter_slab_.size());
        waiter_slab_.emplace_back();
    }
    WaiterNode &node = waiter_slab_[idx];
    node.fn = std::move(waiter);
    node.next = PageMeta::kNoIndex;

    PageMeta &m = meta_.ensure(vpn);
    if (m.waiter_tail != PageMeta::kNoIndex)
        waiter_slab_[m.waiter_tail].next = idx;
    else
        m.waiter_head = idx;
    m.waiter_tail = idx;
}

void
UvmRuntimeBase::wakeWaiters(PageNum vpn, Cycle now)
{
    const PageMeta *m = meta_.find(vpn);
    if (m == nullptr || m->waiter_head == PageMeta::kNoIndex)
        return;
    // Detach the whole list first: a woken warp may refault and
    // re-register on the same page, which must start a fresh list.
    std::uint32_t i = m->waiter_head;
    PageMeta &mut = meta_.at(vpn);
    mut.waiter_head = mut.waiter_tail = PageMeta::kNoIndex;
    while (i != PageMeta::kNoIndex) {
        // Recycle the node before invoking: the callback may append
        // new waiters (possibly growing the slab), so take everything
        // we need out of the node first and touch it no more.
        WakeFn fn = std::move(waiter_slab_[i].fn);
        const std::uint32_t next = waiter_slab_[i].next;
        waiter_slab_[i].next = waiter_free_;
        waiter_free_ = i;
        fn(now);
        i = next;
    }
}

void
UvmRuntimeBase::radixSortAscending(std::vector<PageNum> &keys)
{
    const std::size_t n = keys.size();
    if (n < 2)
        return;
    PageNum max_key = 0;
    for (const PageNum k : keys)
        max_key = std::max(max_key, k);
    radix_scratch_.resize(n);
    std::vector<PageNum> *src = &keys;
    std::vector<PageNum> *dst = &radix_scratch_;
    for (std::uint32_t shift = 0;
         shift < 64 && (max_key >> shift) != 0; shift += 8) {
        std::size_t counts[256] = {};
        for (std::size_t i = 0; i < n; ++i)
            ++counts[((*src)[i] >> shift) & 0xff];
        std::size_t pos = 0;
        for (std::size_t d = 0; d < 256; ++d) {
            const std::size_t c = counts[d];
            counts[d] = pos;
            pos += c;
        }
        for (std::size_t i = 0; i < n; ++i) {
            const PageNum k = (*src)[i];
            (*dst)[counts[(k >> shift) & 0xff]++] = k;
        }
        std::swap(src, dst);
    }
    if (src != &keys)
        keys.swap(radix_scratch_);
}

void
UvmRuntimeBase::enableProactiveEviction(double target)
{
    proactive_eviction_ = true;
    proactive_target_ = target;
}

double
UvmRuntimeBase::averageBatchPages() const
{
    if (records_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &r : records_)
        sum += r.fault_pages;
    return sum / static_cast<double>(records_.size());
}

double
UvmRuntimeBase::averageProcessingTime() const
{
    if (records_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &r : records_)
        sum += static_cast<double>(r.processingTime());
    return sum / static_cast<double>(records_.size());
}

double
UvmRuntimeBase::averageHandlingTime() const
{
    if (records_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &r : records_)
        sum += static_cast<double>(r.handlingTime());
    return sum / static_cast<double>(records_.size());
}

template <ObserverMode M>
UvmRuntimeT<M>::UvmRuntimeT(const UvmConfig &config, EventQueue &events,
                            GpuMemoryManager &manager,
                            MemoryHierarchyBase &hierarchy,
                            const SimHooks &hooks)
    : UvmRuntimeBase(config, events, manager, hierarchy, hooks),
      fault_buffer_store_(config.fault_buffer_entries, meta_, hooks)
{
    fault_buffer_ = &fault_buffer_store_;
}

template <ObserverMode M>
void
UvmRuntimeT<M>::onPageFault(PageNum vpn, WakeFn waiter)
{
    const Cycle now = events_.now();
    if (manager_.isResident(vpn)) {
        // The page arrived between fault detection and registration
        // (an earlier waiter's batch already migrated it): replay now.
        waiter(now);
        return;
    }
    appendWaiter(vpn, std::move(waiter));
    if (meta_.inFlight(vpn)) {
        // Already queued in the active batch; the waiter joins it.
        return;
    }
    fault_buffer_store_.insert(vpn, now, tenantFor(vpn));
    if (state_ == State::Idle) {
        state_ = State::InterruptPending;
        if constexpr (observesAudit(M)) {
            if (hooks_.audit)
                hooks_.audit->onInterruptRaised(now);
        }
        events_.scheduleAfter(interrupt_cycles_, [this] { batchBegin(); });
    }
}

template <ObserverMode M>
void
UvmRuntimeT<M>::batchBegin()
{
    // Chained: entered straight from batchEnd() with no interrupt
    // round trip (state still BatchActive at the call).
    if constexpr (observesAudit(M)) {
        if (hooks_.audit) {
            hooks_.audit->onBatchBegin(events_.now(),
                                       state_ == State::BatchActive);
        }
    }
    state_ = State::BatchActive;
    current_ = BatchRecord{};
    current_.begin = events_.now();
    first_transfer_seen_ = false;
    mig_idx_ = 0;
    arrivals_pending_ = 0;

    // Unobtrusive Eviction's top-half: consult the memory status tracker
    // and kick one preemptive eviction before preprocessing even starts,
    // so the first migration never waits on an eviction.
    if (config_.unobtrusive_eviction && !config_.ideal_eviction &&
        manager_.atCapacity() && evictions_in_flight_ == 0) {
        if constexpr (observesAudit(M)) {
            if (hooks_.audit)
                hooks_.audit->onPreemptiveEviction(events_.now());
        }
        launchEviction(events_.now());
    }

    fault_buffer_store_.drainInto(drained_batch_);
    demand_.clear();
    // SoA preprocessing: residency scan over the vpn array (waking
    // already-resident pages in drain order, exactly as the AoS loop
    // did), with duplicate/tenant accounting off the parallel arrays.
    const std::size_t drained = drained_batch_.size();
    for (std::size_t i = 0; i < drained; ++i) {
        const PageNum vpn = drained_batch_.vpns[i];
        if (manager_.isResident(vpn)) {
            // Resolved by a prefetch of a previous batch: replay.
            wakeWaiters(vpn, events_.now());
            continue;
        }
        demand_.push_back(vpn);
        current_.duplicate_faults += drained_batch_.duplicates[i] - 1;
        if (dir_ && drained_batch_.tenants[i] != kNoTenant)
            ++demand_by_[drained_batch_.tenants[i]];
    }
    // Distinct keys (the buffer deduplicates per page), bounded by the
    // allocation footprint: radix order == std::sort order.
    radixSortAscending(demand_);

    prefetch_.clear();
    if (config_.prefetch_enabled)
        prefetcher_.computePrefetchesInto(demand_, &prefetch_);

    current_.fault_pages = static_cast<std::uint32_t>(demand_.size());
    current_.prefetch_pages =
        static_cast<std::uint32_t>(prefetch_.size());
    demand_pages_ += demand_.size();
    prefetched_pages_ += prefetch_.size();

    migration_queue_.clear();
    migration_queue_.reserve(demand_.size() + prefetch_.size());
    std::merge(demand_.begin(), demand_.end(), prefetch_.begin(),
               prefetch_.end(), std::back_inserter(migration_queue_));
    for (PageNum vpn : migration_queue_)
        meta_.ensure(vpn).setInFlight(true);

    // Preprocessing (sort, prefetch analysis, CPU page-table walks):
    // the GPU runtime fault handling time, with a per-fault component
    // for the CPU-side table walks.
    const Cycle handling =
        handling_cycles_ +
        usToCycles(config_.fault_handling_per_page_us) *
            current_.fault_pages;
    if constexpr (observesTrace(M)) {
        if (hooks_.trace) {
            hooks_.trace->interval(TraceEventType::FaultHandling,
                                   kTraceTrackRuntime, current_.begin,
                                   current_.begin + handling,
                                   current_.fault_pages);
        }
    }
    BAUVM_DLOG("UvmRuntime: batch %llu begins at cycle %llu: %u demand "
               "+ %u prefetch pages (%u duplicate faults)",
               static_cast<unsigned long long>(records_.size() + 1),
               static_cast<unsigned long long>(current_.begin),
               current_.fault_pages, current_.prefetch_pages,
               current_.duplicate_faults);
    events_.scheduleAfter(handling, [this] { pumpMigrations(); });
}

template <ObserverMode M>
bool
UvmRuntimeT<M>::launchEviction(Cycle earliest, TenantId cause)
{
    PageNum victim;
    if (!manager_.beginEvictionFor(cause, &victim, events_.now()))
        return false;
    hierarchyFor(victim).invalidatePage(victim);
    ++evictions_in_flight_;
    if (config_.ideal_eviction) {
        manager_.completeEviction(victim);
        --evictions_in_flight_;
        return true;
    }
    const std::uint64_t bytes = pcie_compression_.compressedBytes(
        victim, config_.page_bytes);
    Cycle begin = 0;
    const Cycle done = pcie_.transfer(PcieDir::DeviceToHost, bytes,
                                      earliest, &begin);
    if constexpr (observesTrace(M)) {
        if (hooks_.trace) {
            hooks_.trace->interval(TraceEventType::Eviction,
                                   kTraceTrackPcieD2h, begin, done,
                                   victim,
                                   static_cast<std::uint32_t>(bytes));
        }
    }
    if constexpr (observesAudit(M)) {
        if (hooks_.audit)
            hooks_.audit->onEvictionTransfer(victim, begin, done, bytes);
    }
    events_.scheduleAt(done,
                       [this, victim] { onEvictionComplete(victim); });
    return true;
}

template <ObserverMode M>
void
UvmRuntimeT<M>::scheduleMigration(PageNum vpn)
{
    manager_.reserveFrame(tenantFor(vpn));
    const std::uint64_t bytes = pcie_compression_.compressedBytes(
        vpn, config_.page_bytes);
    Cycle start = 0;
    const Cycle done = pcie_.transfer(PcieDir::HostToDevice, bytes,
                                      events_.now(), &start);
    if constexpr (observesTrace(M)) {
        if (hooks_.trace) {
            hooks_.trace->interval(TraceEventType::Migration,
                                   kTraceTrackPcieH2d, start, done, vpn,
                                   static_cast<std::uint32_t>(bytes));
        }
    }
    if constexpr (observesAudit(M)) {
        if (hooks_.audit) {
            hooks_.audit->onMigrationScheduled(vpn, events_.now(),
                                               start, done, bytes);
        }
    }
    if (!first_transfer_seen_) {
        first_transfer_seen_ = true;
        current_.first_transfer = start;
    }
    current_.migrated_bytes += config_.page_bytes;
    ++arrivals_pending_;
    events_.scheduleAt(done, [this, vpn] { onPageArrived(vpn); });
}

template <ObserverMode M>
void
UvmRuntimeT<M>::pumpMigrations()
{
    while (mig_idx_ < migration_queue_.size()) {
        // The head page's owner also pays for any eviction its
        // migration needs (the SharePolicy picks whose page goes).
        const TenantId cause = tenantFor(migration_queue_[mig_idx_]);
        if (manager_.hasFreeFrameFor(cause)) {
            scheduleMigration(migration_queue_[mig_idx_++]);
            continue;
        }
        if (config_.ideal_eviction) {
            if (!launchEviction(events_.now(), cause))
                break; // nothing evictable yet; arrivals will re-pump
            continue;
        }
        if (config_.unobtrusive_eviction) {
            // Keep the D2H pipeline just deep enough to hide the
            // eviction latency: the bottom half pairs each migration
            // with the *next* eviction (section 4.2), so victims are
            // selected just in time, one transfer ahead, rather than
            // being flushed out long before their frame is needed.
            const std::uint64_t remaining =
                migration_queue_.size() - mig_idx_;
            const std::uint64_t depth =
                remaining < 2 ? remaining : 2;
            while (evictions_in_flight_ < depth) {
                if (!launchEviction(events_.now(), cause))
                    break;
            }
            break;
        }
        // Baseline (Fig 4): eviction may only start once the previous
        // inbound migration has fully landed, and the next migration
        // waits for the eviction — strict serialization.
        if (evictions_in_flight_ == 0) {
            const Cycle earliest = std::max(
                events_.now(), pcie_.channelFree(PcieDir::HostToDevice));
            if (!launchEviction(earliest, cause) &&
                arrivals_pending_ == 0 && evictions_in_flight_ == 0) {
                panic("UvmRuntime: migration stalled with nothing "
                      "evictable (capacity too small?)");
            }
        }
        break;
    }

    if (mig_idx_ == migration_queue_.size() && arrivals_pending_ == 0 &&
        state_ == State::BatchActive) {
        batchEnd();
    }
}

template <ObserverMode M>
void
UvmRuntimeT<M>::onEvictionComplete(PageNum vpn)
{
    manager_.completeEviction(vpn);
    --evictions_in_flight_;
    if (state_ == State::BatchActive)
        pumpMigrations();
    else
        maybeProactiveEvict();
}

template <ObserverMode M>
void
UvmRuntimeT<M>::onPageArrived(PageNum vpn)
{
    const Cycle now = events_.now();
    manager_.commitPage(vpn, now);
    meta_.at(vpn).setInFlight(false);
    --arrivals_pending_;

    wakeWaiters(vpn, now);
    pumpMigrations();
}

template <ObserverMode M>
void
UvmRuntimeT<M>::batchEnd()
{
    current_.end = events_.now();
    if (!first_transfer_seen_) {
        // Batch with no migrations (all faults raced with prefetches):
        // handling still consumed runtime time.
        current_.first_transfer = current_.end;
    }
    if constexpr (observesTrace(M)) {
        if (hooks_.trace) {
            hooks_.trace->interval(TraceEventType::BatchWindow,
                                   kTraceTrackRuntime, current_.begin,
                                   current_.end, current_.fault_pages,
                                   current_.prefetch_pages);
        }
    }
    if constexpr (observesAudit(M)) {
        if (hooks_.audit) {
            hooks_.audit->onBatchEnd(current_.end, current_.fault_pages,
                                     current_.prefetch_pages);
        }
    }
    BAUVM_DLOG("UvmRuntime: batch %llu ends at cycle %llu "
               "(handling %llu, processing %llu cycles)",
               static_cast<unsigned long long>(records_.size() + 1),
               static_cast<unsigned long long>(current_.end),
               static_cast<unsigned long long>(current_.handlingTime()),
               static_cast<unsigned long long>(
                   current_.processingTime()));
    records_.push_back(current_);

    const OversubAdvice advice =
        manager_.lifetimeTracker().update(events_.now());
    for (const AdviceFn &cb : advice_cbs_) {
        if (cb)
            cb(advice);
    }
    if (batch_end_cb_)
        batch_end_cb_(records_.back());

    if (!fault_buffer_store_.empty()) {
        // Waiting faults are handled immediately, skipping the
        // interrupt round trip (the driver's optimization).
        batchBegin();
        return;
    }
    state_ = State::Idle;
    maybeProactiveEvict();
}

template <ObserverMode M>
void
UvmRuntimeT<M>::maybeProactiveEvict()
{
    if (!proactive_eviction_ || manager_.unlimited() ||
        state_ != State::Idle) {
        return;
    }
    const auto capacity = manager_.capacityPages();
    const auto threshold =
        static_cast<std::uint64_t>(proactive_target_ *
                                   static_cast<double>(capacity));
    if (manager_.committedFrames() > threshold &&
        evictions_in_flight_ == 0) {
        launchEviction(events_.now());
    }
}

template class UvmRuntimeT<ObserverMode::Dynamic>;
template class UvmRuntimeT<ObserverMode::None>;
template class UvmRuntimeT<ObserverMode::Trace>;
template class UvmRuntimeT<ObserverMode::Audit>;
template class UvmRuntimeT<ObserverMode::Both>;

} // namespace bauvm
