#include "src/uvm/pcie_link.h"

#include "src/check/model_auditor.h"
#include "src/sim/log.h"

namespace bauvm
{

PcieLink::PcieLink(const UvmConfig &config, const SimHooks &hooks)
    : hooks_(hooks),
      h2d_bytes_per_cycle_(config.pcie_gbps), // GB/s at 1 GHz == B/cyc
      d2h_bytes_per_cycle_(config.pcie_d2h_gbps > 0.0
                               ? config.pcie_d2h_gbps
                               : config.pcie_gbps)
{
    if (h2d_bytes_per_cycle_ <= 0.0)
        fatal("PcieLink: non-positive bandwidth");
}

Cycle
PcieLink::transferCycles(std::uint64_t bytes, PcieDir dir) const
{
    const double rate = dir == PcieDir::HostToDevice
                            ? h2d_bytes_per_cycle_
                            : d2h_bytes_per_cycle_;
    const double cycles = static_cast<double>(bytes) / rate;
    Cycle c = static_cast<Cycle>(cycles);
    return c == 0 ? 1 : c;
}

Cycle
PcieLink::transfer(PcieDir dir, std::uint64_t bytes, Cycle earliest,
                   Cycle *begin_out)
{
    Cycle &free = dir == PcieDir::HostToDevice ? h2d_free_ : d2h_free_;
    const Cycle begin = earliest > free ? earliest : free;
    const Cycle duration = transferCycles(bytes, dir);
    free = begin + duration;

    std::uint64_t count;
    if (dir == PcieDir::HostToDevice) {
        count = ++h2d_count_;
        h2d_bytes_ += bytes;
        h2d_busy_ += duration;
    } else {
        count = ++d2h_count_;
        d2h_bytes_ += bytes;
        d2h_busy_ += duration;
    }
    if (begin_out)
        *begin_out = begin;
    if (hooks_.trace) {
        hooks_.trace->interval(TraceEventType::PcieBusy,
                               dir == PcieDir::HostToDevice
                                   ? kTraceTrackPcieH2d
                                   : kTraceTrackPcieD2h,
                               begin, begin + duration, bytes,
                               static_cast<std::uint32_t>(count));
    }
    if (hooks_.audit) {
        hooks_.audit->onPcieTransfer(dir == PcieDir::HostToDevice,
                                     bytes, begin, begin + duration);
    }
    return begin + duration;
}

} // namespace bauvm
