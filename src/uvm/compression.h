/**
 * @file
 * Compression models used by two baselines:
 *
 *  - PCIe (de)compression ("BASELINE with PCIe Compression" in Fig 11):
 *    pages are compressed before crossing the link, shrinking transfer
 *    time by a per-page ratio.
 *  - Capacity compression (the CC component of ETC, Li et al.): the
 *    effective GPU memory capacity grows by the mean ratio at the cost
 *    of extra latency on every L2 access.
 *
 * Per-page ratios are deterministic pseudo-random values derived from
 * the page number, spread around the configured mean, mimicking the
 * content-dependent variance of real compressors.
 */

#ifndef BAUVM_UVM_COMPRESSION_H_
#define BAUVM_UVM_COMPRESSION_H_

#include <cstdint>

#include "src/sim/types.h"

namespace bauvm
{

/** Deterministic per-page compression-ratio model. */
class CompressionModel
{
  public:
    /**
     * @param mean_ratio  average compression ratio (>= 1); 1.0 disables
     *                    compression entirely.
     * @param spread      half-width of the uniform ratio band around the
     *                    mean, as a fraction of the mean (default 0.25).
     */
    explicit CompressionModel(double mean_ratio, double spread = 0.25);

    /** Whether compression is active (mean ratio > 1). */
    bool enabled() const { return mean_ratio_ > 1.0; }

    /** Compression ratio for page @p vpn (always >= 1). */
    double ratioFor(PageNum vpn) const;

    /** Size of @p bytes from page @p vpn after compression. */
    std::uint64_t compressedBytes(PageNum vpn, std::uint64_t bytes) const;

    double meanRatio() const { return mean_ratio_; }

  private:
    double mean_ratio_;
    double spread_;
};

} // namespace bauvm

#endif // BAUVM_UVM_COMPRESSION_H_
