#include "src/serve/sweep_request.h"

#include <chrono>
#include <cstdio>

#include "src/core/experiment.h"
#include "src/serve/cell_json.h"
#include "src/workloads/workload_registry.h"

namespace bauvm
{

namespace
{

bool
failParse(std::string *error, const std::string &what)
{
    if (error)
        *error = what;
    return false;
}

/** Expands one workloads[] entry: "@irregular"/"@regular"/"@frontier"/
 *  "@all" into registry enumerations, anything else checked against
 *  the registry — unless @p labels_only, in which case non-group
 *  entries are opaque cell labels (a tenant-mix request runs its
 *  tenants, not the workload axis). */
bool
expandWorkloadEntry(const std::string &entry,
                    std::vector<std::string> *out, std::string *error,
                    bool labels_only)
{
    const WorkloadRegistry &reg = WorkloadRegistry::instance();
    if (entry == "@irregular" || entry == "@regular" ||
        entry == "@frontier") {
        const WorkloadKind kind = entry == "@irregular"
                                      ? WorkloadKind::Irregular
                                  : entry == "@regular"
                                      ? WorkloadKind::Regular
                                      : WorkloadKind::Frontier;
        for (const std::string &name : reg.enumerate(kind))
            out->push_back(name);
        return true;
    }
    if (entry == "@all") {
        for (const std::string &name : reg.enumerate())
            out->push_back(name);
        return true;
    }
    if (!labels_only && !reg.contains(entry))
        return failParse(error, "sweep request: unknown workload '" +
                                    entry + "'");
    out->push_back(entry);
    return true;
}

bool
parseOverrides(const JsonValue &v, std::vector<ConfigOverride> *out,
               std::string *error)
{
    if (!v.isArray())
        return failParse(error,
                         "sweep request: overrides is not an array");
    SimConfig probe; // validate keys without running anything
    for (std::size_t i = 0; i < v.size(); ++i) {
        const JsonValue &o = v.at(i);
        ConfigOverride co;
        co.key = o.getString("key");
        co.value = o.getDouble("value");
        if (!applyConfigOverride(probe, co.key, co.value))
            return failParse(error,
                             "sweep request: unknown override key '" +
                                 co.key + "'");
        out->push_back(std::move(co));
    }
    return true;
}

} // namespace

bool
parseSweepRequest(const JsonValue &v, SweepRequest *out,
                  std::string *error)
{
    if (!v.isObject())
        return failParse(error, "sweep request is not an object");
    const std::string schema = v.getString("schema");
    if (schema.rfind(SweepRequest::kSchema, 0) != 0)
        return failParse(error, "sweep request: unsupported schema '" +
                                    schema + "'");
    *out = SweepRequest();
    out->bench = v.getString("bench", "sweep");

    const JsonValue *workloads = v.find("workloads");
    if (!workloads || !workloads->isArray() || workloads->size() == 0)
        return failParse(
            error, "sweep request: workloads must be a non-empty array");
    const bool labels_only = v.find("tenants") != nullptr;
    for (std::size_t i = 0; i < workloads->size(); ++i) {
        const JsonValue &entry = workloads->at(i);
        if (!entry.isString())
            return failParse(
                error, "sweep request: workloads[] entries are strings");
        if (!expandWorkloadEntry(entry.asString(), &out->workloads,
                                 error, labels_only))
            return false;
    }

    if (const JsonValue *policies = v.find("policies")) {
        if (!policies->isArray() || policies->size() == 0)
            return failParse(error, "sweep request: policies must be a "
                                    "non-empty array");
        for (std::size_t i = 0; i < policies->size(); ++i) {
            const JsonValue &entry = policies->at(i);
            Policy p;
            if (!entry.isString() ||
                !policyFromNameSafe(entry.asString(), &p))
                return failParse(
                    error, "sweep request: unknown policy '" +
                               (entry.isString() ? entry.asString()
                                                 : std::string("?")) +
                               "'");
            out->policies.push_back(p);
        }
    } else {
        out->policies = allPolicies();
    }

    if (const JsonValue *variants = v.find("variants")) {
        if (!variants->isArray() || variants->size() == 0)
            return failParse(error, "sweep request: variants must be a "
                                    "non-empty array");
        for (std::size_t i = 0; i < variants->size(); ++i) {
            const JsonValue &entry = variants->at(i);
            if (!entry.isObject())
                return failParse(
                    error, "sweep request: variants[] entries are "
                           "objects");
            RequestVariant var;
            var.label = entry.getString("label");
            if (const JsonValue *ov = entry.find("overrides")) {
                if (!parseOverrides(*ov, &var.overrides, error))
                    return false;
            }
            out->variants.push_back(std::move(var));
        }
    } else {
        out->variants.push_back(RequestVariant());
    }

    const std::string scale = v.getString("scale", "small");
    if (!scaleFromName(scale, &out->scale))
        return failParse(
            error, "sweep request: unknown scale '" + scale + "'");
    out->ratio = v.getDouble("ratio", 0.5);
    out->seed = v.getU64("seed", 1);
    out->audit = v.getBool("audit", false);
    if (const JsonValue *tenants = v.find("tenants")) {
        if (!tenants->isArray() || tenants->size() < 2)
            return failParse(error,
                             "sweep request: tenants must be an array "
                             "of at least two entries");
        const WorkloadRegistry &reg = WorkloadRegistry::instance();
        for (std::size_t i = 0; i < tenants->size(); ++i) {
            const JsonValue &t = tenants->at(i);
            TenantSpec spec;
            spec.workload = t.getString("workload");
            if (!reg.contains(spec.workload))
                return failParse(error,
                                 "sweep request: unknown tenant "
                                 "workload '" +
                                     spec.workload + "'");
            spec.quota = t.getDouble("quota", 0.0);
            if (spec.quota < 0.0)
                return failParse(
                    error, "sweep request: negative tenant quota");
            spec.scale = out->scale;
            out->tenants.push_back(std::move(spec));
        }
    }
    if (const JsonValue *policy = v.find("share_policy")) {
        if (!policy->isString())
            return failParse(
                error, "sweep request: share_policy is not a string");
        const std::string name = policy->asString();
        if (name == "free-for-all")
            out->share_policy = SharePolicy::FreeForAll;
        else if (name == "strict")
            out->share_policy = SharePolicy::StrictQuota;
        else if (name == "proportional")
            out->share_policy = SharePolicy::Proportional;
        else
            return failParse(error,
                             "sweep request: unknown share_policy '" +
                                 name + "'");
    }
    out->timeout_s = v.getDouble("timeout_s", 0.0);
    out->hard_timeout_s = v.getDouble("hard_timeout_s", 0.0);
    if (out->timeout_s < 0.0 || out->hard_timeout_s < 0.0)
        return failParse(error,
                         "sweep request: negative timeout");
    out->jobs = static_cast<std::size_t>(v.getU64("jobs", 1));
    if (out->jobs == 0)
        out->jobs = 1;
    out->chunk_cells =
        static_cast<std::size_t>(v.getU64("chunk_cells", 1));
    if (out->chunk_cells == 0)
        out->chunk_cells = 1;
    out->flush_cells =
        static_cast<std::size_t>(v.getU64("flush_cells", 8));
    if (out->flush_cells == 0)
        out->flush_cells = 1;
    return true;
}

void
writeSweepRequest(JsonWriter &w, const SweepRequest &req)
{
    w.beginObject();
    w.field("schema", SweepRequest::kSchema);
    w.field("bench", req.bench);
    w.beginArray("workloads");
    for (const std::string &name : req.workloads)
        w.value(name);
    w.endArray();
    w.beginArray("policies");
    for (Policy p : req.policies)
        w.value(policyName(p));
    w.endArray();
    w.beginArray("variants");
    for (const RequestVariant &var : req.variants) {
        w.beginObject();
        w.field("label", var.label);
        w.beginArray("overrides");
        for (const ConfigOverride &o : var.overrides) {
            w.beginObject();
            w.field("key", o.key);
            w.field("value", o.value);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.field("scale", scaleName(req.scale));
    w.field("ratio", req.ratio);
    w.field("seed", req.seed);
    w.field("audit", req.audit);
    if (!req.tenants.empty()) {
        w.beginArray("tenants");
        for (const TenantSpec &t : req.tenants) {
            w.beginObject();
            w.field("workload", t.workload);
            w.field("quota", t.quota);
            w.endObject();
        }
        w.endArray();
        w.field("share_policy", sharePolicyName(req.share_policy));
    }
    w.field("timeout_s", req.timeout_s);
    w.field("hard_timeout_s", req.hard_timeout_s);
    w.field("jobs", static_cast<std::uint64_t>(req.jobs));
    w.field("chunk_cells",
            static_cast<std::uint64_t>(req.chunk_cells));
    w.field("flush_cells",
            static_cast<std::uint64_t>(req.flush_cells));
    w.endObject();
}

std::vector<CellSpec>
expandCells(const SweepRequest &req)
{
    std::vector<CellSpec> cells;
    cells.reserve(req.variants.size() * req.workloads.size() *
                  req.policies.size());
    // Variant-major -> workload -> policy: the SweepRunner expansion
    // order, so merged daemon results line up with serial sweeps.
    for (const RequestVariant &var : req.variants) {
        for (const std::string &workload : req.workloads) {
            for (Policy policy : req.policies) {
                CellSpec cell;
                cell.workload = workload;
                cell.policy = policy;
                cell.variant = var.label;
                cell.overrides = var.overrides;
                cell.scale = req.scale;
                cell.ratio = req.ratio;
                cell.base_seed = req.seed;
                cell.audit = req.audit;
                if (!req.tenants.empty()) {
                    cell.tenants = req.tenants;
                    for (TenantSpec &t : cell.tenants)
                        t.scale = req.scale;
                    cell.overrides.push_back(
                        {"mt.policy",
                         static_cast<double>(req.share_policy)});
                }
                cells.push_back(std::move(cell));
            }
        }
    }
    return cells;
}

SweepResult
runRequestSerial(const SweepRequest &req, bool verbose)
{
    const std::vector<CellSpec> cells = expandCells(req);

    SweepResult result;
    result.bench = req.bench;
    result.base_seed = req.seed;
    result.scale = req.scale;
    result.ratio = req.ratio;
    result.jobs = 1;
    result.cells.reserve(cells.size());

    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const CellSpec &spec = cells[i];
        CellExecArgs args;
        args.workload = spec.workload;
        args.policy = spec.policy;
        args.variant = spec.variant;
        args.job_seed = cellJobSeed(spec);
        args.scale = spec.scale;
        args.config = cellConfig(spec);
        args.soft_timeout_s = req.timeout_s;
        args.tenants = spec.tenants;
        result.cells.push_back(executeCell(args));
        if (verbose) {
            const CellOutcome &cell = result.cells.back();
            std::fprintf(stderr, "  [%zu/%zu] %s/%s%s%s %s %.2fs\n",
                         i + 1, cells.size(), cell.workload.c_str(),
                         policyName(cell.policy).c_str(),
                         cell.variant.empty() ? "" : " ",
                         cell.variant.c_str(),
                         cell.ok ? "ok" : "FAILED", cell.wall_s);
        }
    }
    result.elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    return result;
}

} // namespace bauvm
