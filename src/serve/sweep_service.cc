#include "src/serve/sweep_service.h"

#include <errno.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/runner/cell_spec.h"
#include "src/runner/json_writer.h"
#include "src/runner/sweep_result.h"
#include "src/serve/cell_json.h"
#include "src/serve/json.h"
#include "src/serve/ndjson.h"
#include "src/serve/result_cache.h"
#include "src/serve/sweep_request.h"
#include "src/serve/worker.h"
#include "src/sim/log.h"

namespace bauvm
{

namespace
{

using Clock = std::chrono::steady_clock;

double
monotonicNow()
{
    return std::chrono::duration<double>(
               Clock::now().time_since_epoch())
        .count();
}

/** Self-pipe write end for the signal handlers; -1 outside run(). */
std::atomic<int> g_stop_fd{-1};

void
stopSignalHandler(int)
{
    const int fd = g_stop_fd.load();
    if (fd >= 0) {
        const char byte = 's';
        // Best effort; a full pipe already guarantees a wakeup.
        (void)!::write(fd, &byte, 1);
    }
}

} // namespace

struct SweepService::Impl {
    struct Request;

    /** One forked worker and its daemon-side channel state. */
    struct WorkerState {
        WorkerProc proc;
        Request *request = nullptr;
        LineBuffer buf;
        bool dead = false; //!< reaped; removed in the sweep phase

        // The shard in flight, as request-cell indexes.
        std::vector<std::size_t> chunk;
        std::vector<char> resulted; //!< parallel to chunk
        std::size_t pending = 0;
        bool busy = false;

        std::ptrdiff_t running = -1; //!< from the last "begin"
        double deadline = 0.0;       //!< monotonic; 0 = none
    };

    /** One admitted client request, alive until reaped. */
    struct Request {
        int client_fd = -1; //!< -1 once closed (done or aborted)
        SweepRequest req;
        std::vector<CellSpec> cells;
        std::vector<std::string> digests;
        SweepResult result; //!< cells preallocated, filled by index
        std::vector<char> cell_done;
        std::size_t done_count = 0;
        std::deque<std::size_t> queue; //!< owned, not yet dispatched
        std::vector<std::unique_ptr<WorkerState>> workers;
        Clock::time_point t0;
        bool finished = false;
        bool aborted = false;
    };

    /** A client connection still streaming its request document in. */
    struct ClientConn {
        int fd = -1;
        std::string text;
    };

    /** The daemon-wide memo of one cell digest: who is computing it
     *  (pending) or what it computed (done). Failed cells are erased
     *  after serving their waiters, so later requests retry them. */
    struct CellEntry {
        bool done = false;
        CellOutcome outcome; //!< canonical (owner identity) when done
        Request *owner = nullptr;
        std::size_t owner_index = 0;
        std::vector<std::pair<Request *, std::size_t>> waiters;
    };

    explicit Impl(SweepServiceOptions o)
        : opt(std::move(o))
    {
    }

    SweepServiceOptions opt;
    int listen_fd = -1;
    int self_pipe[2] = {-1, -1};
    bool stopping = false;

    std::list<ClientConn> conns;
    std::vector<std::unique_ptr<Request>> requests;
    std::unordered_map<std::string, CellEntry> table;
    std::unique_ptr<ResultCache> cache;

    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> from_cache{0};
    std::atomic<std::uint64_t> deduped{0};
    std::atomic<std::uint64_t> killed{0};

    // ---- lifecycle ----------------------------------------------

    bool start(std::string *error);
    int run();
    void shutdownEverything();

    // ---- client side --------------------------------------------

    void acceptClient();
    /** @return false when the connection is finished (EOF/error). */
    bool clientReadable(ClientConn &conn);
    void admit(ClientConn &conn);
    void sendError(int fd, const std::string &message);
    void sendAccepted(Request &r);
    void sendCellEvent(Request &r, std::size_t i);
    void finishRequest(Request &r);
    void abortRequest(Request &r);

    // ---- cell completion ----------------------------------------

    void completeCell(Request &r, std::size_t i, const CellOutcome &src,
                      bool served);
    void cellComputed(Request &r, std::size_t i, CellOutcome outcome);

    // ---- worker side --------------------------------------------

    void dispatch();
    WorkerState *idleWorker(Request &r);
    void sendChunk(Request &r, WorkerState &ws);
    void workerReadable(WorkerState &ws);
    void workerFrame(WorkerState &ws, const std::string &line);
    void workerGone(WorkerState &ws, bool killed_by_us,
                    const std::string &why);
    void checkDeadlines(double now);
    double nearestDeadline() const;
    void reap();
};

// ----------------------------------------------------------------
// lifecycle
// ----------------------------------------------------------------

bool
SweepService::Impl::start(std::string *error)
{
    if (opt.socket_path.empty()) {
        if (error)
            *error = "sweep service: empty socket path";
        return false;
    }
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    if (opt.socket_path.size() >= sizeof addr.sun_path) {
        if (error)
            *error = "sweep service: socket path too long: " +
                     opt.socket_path;
        return false;
    }
    std::memcpy(addr.sun_path, opt.socket_path.c_str(),
                opt.socket_path.size() + 1);

    listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd < 0) {
        if (error)
            *error = std::string("sweep service: socket(): ") +
                     std::strerror(errno);
        return false;
    }
    // A previous daemon instance (possibly SIGKILLed — the resume
    // path) leaves a stale socket file; rebinding over it is the
    // expected restart flow.
    ::unlink(opt.socket_path.c_str());
    if (::bind(listen_fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0) {
        if (error)
            *error = "sweep service: bind('" + opt.socket_path +
                     "'): " + std::strerror(errno);
        ::close(listen_fd);
        listen_fd = -1;
        return false;
    }
    if (::listen(listen_fd, 16) != 0) {
        if (error)
            *error = std::string("sweep service: listen(): ") +
                     std::strerror(errno);
        ::close(listen_fd);
        listen_fd = -1;
        return false;
    }
    if (::pipe(self_pipe) != 0) {
        if (error)
            *error = std::string("sweep service: pipe(): ") +
                     std::strerror(errno);
        ::close(listen_fd);
        listen_fd = -1;
        return false;
    }
    if (!opt.cache_dir.empty())
        cache = std::make_unique<ResultCache>(opt.cache_dir);
    if (opt.verbose)
        std::fprintf(stderr,
                     "sweepd: listening on %s (cache: %s)\n",
                     opt.socket_path.c_str(),
                     opt.cache_dir.empty() ? "off"
                                           : opt.cache_dir.c_str());
    return true;
}

int
SweepService::Impl::run()
{
    if (listen_fd < 0)
        fatal("sweep service: run() before start()");

    g_stop_fd.store(self_pipe[1]);
    struct sigaction sa, old_term, old_int, old_pipe;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = stopSignalHandler;
    ::sigaction(SIGTERM, &sa, &old_term);
    ::sigaction(SIGINT, &sa, &old_int);
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &sa, &old_pipe);

    enum class Ref { Listen, Stop, Client, Worker };
    struct PollRef {
        Ref kind;
        ClientConn *conn = nullptr;
        WorkerState *ws = nullptr;
    };

    while (!stopping) {
        std::vector<pollfd> fds;
        std::vector<PollRef> refs;
        fds.push_back({listen_fd, POLLIN, 0});
        refs.push_back({Ref::Listen, nullptr, nullptr});
        fds.push_back({self_pipe[0], POLLIN, 0});
        refs.push_back({Ref::Stop, nullptr, nullptr});
        for (ClientConn &conn : conns) {
            fds.push_back({conn.fd, POLLIN, 0});
            refs.push_back({Ref::Client, &conn, nullptr});
        }
        for (auto &r : requests) {
            for (auto &ws : r->workers) {
                if (ws->dead)
                    continue;
                fds.push_back({ws->proc.from_fd, POLLIN, 0});
                refs.push_back({Ref::Worker, nullptr, ws.get()});
            }
        }

        int timeout_ms = -1;
        const double deadline = nearestDeadline();
        if (deadline > 0.0) {
            const double wait = deadline - monotonicNow();
            timeout_ms =
                wait <= 0.0
                    ? 0
                    : static_cast<int>(wait * 1000.0) + 1;
        }

        const int n =
            ::poll(fds.data(), fds.size(), timeout_ms);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            warn("sweep service: poll(): %s", std::strerror(errno));
            break;
        }

        for (std::size_t i = 0; i < fds.size(); ++i) {
            if (fds[i].revents == 0)
                continue;
            switch (refs[i].kind) {
              case Ref::Listen:
                acceptClient();
                break;
              case Ref::Stop: {
                char drain[64];
                (void)!::read(self_pipe[0], drain, sizeof drain);
                stopping = true;
                break;
              }
              case Ref::Client: {
                ClientConn *conn = refs[i].conn;
                if (!clientReadable(*conn)) {
                    // Either admitted (fd ownership moved to the
                    // request) or dropped; forget the connection.
                    for (auto it = conns.begin(); it != conns.end();
                         ++it) {
                        if (&*it == conn) {
                            conns.erase(it);
                            break;
                        }
                    }
                }
                break;
              }
              case Ref::Worker:
                if (!refs[i].ws->dead)
                    workerReadable(*refs[i].ws);
                break;
            }
            if (stopping)
                break;
        }
        if (stopping)
            break;

        checkDeadlines(monotonicNow());
        dispatch();
        reap();
    }

    shutdownEverything();

    ::sigaction(SIGTERM, &old_term, nullptr);
    ::sigaction(SIGINT, &old_int, nullptr);
    ::sigaction(SIGPIPE, &old_pipe, nullptr);
    g_stop_fd.store(-1);
    if (opt.verbose)
        std::fprintf(
            stderr,
            "sweepd: shut down (executed %llu, cached %llu, deduped "
            "%llu, killed %llu)\n",
            static_cast<unsigned long long>(executed.load()),
            static_cast<unsigned long long>(from_cache.load()),
            static_cast<unsigned long long>(deduped.load()),
            static_cast<unsigned long long>(killed.load()));
    return 0;
}

void
SweepService::Impl::shutdownEverything()
{
    for (ClientConn &conn : conns)
        ::close(conn.fd);
    conns.clear();
    // Cells in flight recompute on resume — that is the whole point
    // of the result cache — so workers die hard and fast here.
    for (auto &r : requests) {
        for (auto &ws : r->workers) {
            if (ws->dead)
                continue;
            ::close(ws->proc.to_fd);
            ::close(ws->proc.from_fd);
            ::kill(ws->proc.pid, SIGKILL);
            ::waitpid(ws->proc.pid, nullptr, 0);
        }
        if (r->client_fd >= 0)
            ::close(r->client_fd);
    }
    requests.clear();
    table.clear();
    if (listen_fd >= 0) {
        ::close(listen_fd);
        listen_fd = -1;
    }
    if (self_pipe[0] >= 0) {
        ::close(self_pipe[0]);
        ::close(self_pipe[1]);
        self_pipe[0] = self_pipe[1] = -1;
    }
    ::unlink(opt.socket_path.c_str());
}

// ----------------------------------------------------------------
// client side
// ----------------------------------------------------------------

void
SweepService::Impl::acceptClient()
{
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0)
        return;
    if (opt.client_send_timeout_s > 0.0) {
        // Bound every blocking write to this client: a reader that
        // stalls (full socket buffer) makes writeLine fail with
        // EAGAIN after the timeout, which aborts only that request.
        struct timeval tv;
        tv.tv_sec = static_cast<time_t>(opt.client_send_timeout_s);
        tv.tv_usec = static_cast<suseconds_t>(
            (opt.client_send_timeout_s - static_cast<double>(tv.tv_sec)) *
            1e6);
        if (::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv,
                         sizeof tv) != 0)
            warn("sweep service: SO_SNDTIMEO: %s",
                 std::strerror(errno));
    }
    if (conns.size() + requests.size() >= opt.max_requests) {
        sendError(fd, "sweep service: too many concurrent requests");
        ::close(fd);
        return;
    }
    ClientConn conn;
    conn.fd = fd;
    conns.push_back(std::move(conn));
}

bool
SweepService::Impl::clientReadable(ClientConn &conn)
{
    char chunk[4096];
    const ssize_t n = ::read(conn.fd, chunk, sizeof chunk);
    if (n > 0) {
        conn.text.append(chunk, static_cast<std::size_t>(n));
        return true;
    }
    if (n < 0 && errno == EINTR)
        return true;
    if (n == 0) {
        // EOF is the request framing: the client wrote its document
        // and shutdown(SHUT_WR). Admit it (fd ownership moves).
        admit(conn);
        return false;
    }
    ::close(conn.fd);
    return false;
}

void
SweepService::Impl::admit(ClientConn &conn)
{
    JsonValue doc;
    std::string error;
    if (!JsonValue::parse(conn.text, &doc, &error)) {
        sendError(conn.fd, "malformed request JSON: " + error);
        ::close(conn.fd);
        return;
    }
    SweepRequest req;
    if (!parseSweepRequest(doc, &req, &error)) {
        sendError(conn.fd, error);
        ::close(conn.fd);
        return;
    }
    if (opt.max_workers > 0 && req.jobs > opt.max_workers)
        req.jobs = opt.max_workers;

    auto r = std::make_unique<Request>();
    r->client_fd = conn.fd;
    r->req = std::move(req);
    r->cells = expandCells(r->req);
    r->t0 = Clock::now();
    r->result.bench = r->req.bench;
    r->result.base_seed = r->req.seed;
    r->result.scale = r->req.scale;
    r->result.ratio = r->req.ratio;
    r->result.jobs = r->req.jobs;
    r->result.cells.resize(r->cells.size());
    r->cell_done.assign(r->cells.size(), 0);
    r->digests.reserve(r->cells.size());

    const std::string git_rev = gitRev();
    std::vector<std::string> keys;
    keys.reserve(r->cells.size());
    for (const CellSpec &spec : r->cells) {
        const std::string key =
            cellKey(spec.workload, spec.scale, cellConfig(spec),
                    git_rev, spec.tenants);
        keys.push_back(key);
        r->digests.push_back(digestHex(key));
    }

    Request &ref = *r;
    requests.push_back(std::move(r));
    if (opt.verbose)
        std::fprintf(stderr,
                     "sweepd: request '%s': %zu cells, %zu worker(s)\n",
                     ref.req.bench.c_str(), ref.cells.size(),
                     ref.req.jobs);
    sendAccepted(ref);

    for (std::size_t i = 0;
         i < ref.cells.size() && !ref.aborted; ++i) {
        const std::string &digest = ref.digests[i];
        auto it = table.find(digest);
        if (it != table.end()) {
            if (it->second.done) {
                from_cache.fetch_add(1);
                completeCell(ref, i, it->second.outcome, true);
            } else {
                // The same cell is already queued or running for an
                // earlier request: wait on it instead of recomputing.
                deduped.fetch_add(1);
                it->second.waiters.push_back({&ref, i});
            }
            continue;
        }
        CellOutcome from_disk;
        if (cache && cache->lookup(digest, keys[i], &from_disk)) {
            CellEntry entry;
            entry.done = true;
            entry.outcome = from_disk;
            table.emplace(digest, std::move(entry));
            from_cache.fetch_add(1);
            completeCell(ref, i, from_disk, true);
            continue;
        }
        CellEntry entry;
        entry.owner = &ref;
        entry.owner_index = i;
        table.emplace(digest, std::move(entry));
        ref.queue.push_back(i);
    }
}

void
SweepService::Impl::sendError(int fd, const std::string &message)
{
    JsonWriter w(/*pretty=*/false);
    w.beginObject();
    w.field("op", "error");
    w.field("message", message);
    w.endObject();
    writeLine(fd, w.str());
}

void
SweepService::Impl::sendAccepted(Request &r)
{
    if (r.client_fd < 0)
        return;
    JsonWriter w(/*pretty=*/false);
    w.beginObject();
    w.field("op", "accepted");
    w.field("bench", r.req.bench);
    w.field("cells", static_cast<std::uint64_t>(r.cells.size()));
    w.field("jobs", static_cast<std::uint64_t>(r.req.jobs));
    w.endObject();
    if (!writeLine(r.client_fd, w.str()))
        abortRequest(r);
}

void
SweepService::Impl::sendCellEvent(Request &r, std::size_t i)
{
    if (r.client_fd < 0)
        return;
    const CellOutcome &cell = r.result.cells[i];
    JsonWriter w(/*pretty=*/false);
    w.beginObject();
    w.field("op", "cell");
    w.field("index", static_cast<std::uint64_t>(i));
    w.field("workload", cell.workload);
    w.field("policy", policyName(cell.policy));
    w.field("variant", cell.variant);
    w.field("ok", cell.ok);
    w.field("timed_out", cell.timed_out);
    w.field("cached", cell.from_cache);
    w.field("digest", cell.digest);
    w.field("done", static_cast<std::uint64_t>(r.done_count));
    w.field("total", static_cast<std::uint64_t>(r.cells.size()));
    w.endObject();
    if (!writeLine(r.client_fd, w.str()))
        abortRequest(r);
}

void
SweepService::Impl::finishRequest(Request &r)
{
    r.finished = true;
    r.result.elapsed_s =
        std::chrono::duration<double>(Clock::now() - r.t0).count();
    if (r.client_fd >= 0) {
        JsonWriter w(/*pretty=*/false);
        w.beginObject();
        w.field("op", "done");
        w.rawField("sweep", r.result.toJson(/*pretty=*/false));
        w.endObject();
        writeLine(r.client_fd, w.str());
        ::close(r.client_fd);
        r.client_fd = -1;
    }
    if (opt.verbose)
        std::fprintf(stderr,
                     "sweepd: request '%s' done: %zu cells in %.2fs "
                     "(%zu failed)\n",
                     r.req.bench.c_str(), r.result.cells.size(),
                     r.result.elapsed_s, r.result.failedCells());
}

void
SweepService::Impl::abortRequest(Request &r)
{
    if (r.aborted || r.finished)
        return;
    r.aborted = true;
    if (r.client_fd >= 0) {
        ::close(r.client_fd);
        r.client_fd = -1;
    }
    // This request must stop appearing in any waiter list...
    for (auto &kv : table) {
        auto &waiters = kv.second.waiters;
        for (std::size_t i = waiters.size(); i-- > 0;) {
            if (waiters[i].first == &r)
                waiters.erase(waiters.begin() +
                              static_cast<std::ptrdiff_t>(i));
        }
    }
    // ...and its undispatched cells either hand over to a waiting
    // request or vanish. In-flight shards keep running: their results
    // still serve other requests' waiters and the shared cache.
    for (const std::size_t i : r.queue) {
        auto it = table.find(r.digests[i]);
        if (it == table.end() || it->second.done ||
            it->second.owner != &r)
            continue;
        if (!it->second.waiters.empty()) {
            const auto heir = it->second.waiters.front();
            it->second.waiters.erase(it->second.waiters.begin());
            it->second.owner = heir.first;
            it->second.owner_index = heir.second;
            heir.first->queue.push_back(heir.second);
        } else {
            table.erase(it);
        }
    }
    r.queue.clear();
    if (opt.verbose)
        std::fprintf(stderr, "sweepd: request '%s' aborted\n",
                     r.req.bench.c_str());
}

// ----------------------------------------------------------------
// cell completion
// ----------------------------------------------------------------

void
SweepService::Impl::completeCell(Request &r, std::size_t i,
                                 const CellOutcome &src, bool served)
{
    if (r.cell_done[i])
        return;
    // The source outcome may have been computed for a different
    // coordinate that digests identically (e.g. a variant override
    // equal to a policy preset), and cache/memo hits carry their
    // producer's labels — rewrite the identity to THIS cell's
    // coordinates. All digest-covered payload stays untouched.
    CellOutcome o = src;
    const CellSpec &spec = r.cells[i];
    o.workload = spec.workload;
    o.policy = spec.policy;
    o.variant = spec.variant;
    o.seed = deriveWorkloadSeed(spec.base_seed, spec.workload);
    o.job_seed = cellJobSeed(spec);
    o.digest = r.digests[i];
    o.from_cache = served;
    if (o.ok) {
        o.result.workload = spec.workload;
        o.result.seed = o.seed;
    }
    r.result.cells[i] = std::move(o);
    r.cell_done[i] = 1;
    ++r.done_count;
    sendCellEvent(r, i);
    if (r.done_count == r.cells.size() && !r.finished && !r.aborted)
        finishRequest(r);
}

void
SweepService::Impl::cellComputed(Request &r, std::size_t i,
                                 CellOutcome outcome)
{
    const std::string digest = r.digests[i];
    completeCell(r, i, outcome, false);
    auto it = table.find(digest);
    if (it == table.end())
        return;
    // completeCell -> sendCellEvent may abortRequest a waiter whose
    // client write fails, and abortRequest edits every waiter vector
    // in the table and can erase entries. Detach the list before
    // delivering, and re-find the entry afterwards.
    std::vector<std::pair<Request *, std::size_t>> waiters =
        std::move(it->second.waiters);
    it->second.waiters.clear();
    for (const auto &[wr, wi] : waiters)
        completeCell(*wr, wi, outcome, true);
    it = table.find(digest);
    if (it == table.end())
        return;
    if (outcome.ok) {
        it->second.done = true;
        it->second.owner = nullptr;
        it->second.outcome = std::move(outcome);
    } else {
        // Failures are not memoized: the next request retries.
        table.erase(it);
    }
}

// ----------------------------------------------------------------
// worker side
// ----------------------------------------------------------------

SweepService::Impl::WorkerState *
SweepService::Impl::idleWorker(Request &r)
{
    for (auto &ws : r.workers) {
        if (!ws->dead && !ws->busy)
            return ws.get();
    }
    return nullptr;
}

void
SweepService::Impl::dispatch()
{
    for (auto &rp : requests) {
        Request &r = *rp;
        if (r.finished || r.aborted)
            continue;
        while (!r.queue.empty()) {
            WorkerState *ws = idleWorker(r);
            if (!ws) {
                std::size_t alive = 0;
                for (auto &w : r.workers) {
                    if (!w->dead)
                        ++alive;
                }
                if (alive >= r.req.jobs)
                    break;
                WorkerOptions wopt;
                wopt.cache_dir = opt.cache_dir;
                wopt.flush_cells = r.req.flush_cells;
                wopt.git_rev = gitRev();
                auto state = std::make_unique<WorkerState>();
                state->proc = spawnWorker(wopt);
                state->request = &r;
                ws = state.get();
                r.workers.push_back(std::move(state));
            }
            sendChunk(r, *ws);
        }
    }
}

void
SweepService::Impl::sendChunk(Request &r, WorkerState &ws)
{
    ws.chunk.clear();
    ws.resulted.clear();
    const std::size_t take =
        std::min(r.req.chunk_cells, r.queue.size());
    for (std::size_t k = 0; k < take; ++k) {
        ws.chunk.push_back(r.queue.front());
        r.queue.pop_front();
    }
    ws.resulted.assign(ws.chunk.size(), 0);
    ws.pending = ws.chunk.size();
    ws.busy = true;
    ws.running = -1;
    ws.deadline = r.req.hard_timeout_s > 0.0
                      ? monotonicNow() + r.req.hard_timeout_s
                      : 0.0;

    JsonWriter w(/*pretty=*/false);
    w.beginObject();
    w.field("op", "run");
    w.field("soft_timeout_s", r.req.timeout_s);
    w.field("flush_cells",
            static_cast<std::uint64_t>(r.req.flush_cells));
    w.beginArray("cells");
    for (const std::size_t i : ws.chunk) {
        w.beginObject();
        w.field("index", static_cast<std::uint64_t>(i));
        JsonWriter spec(/*pretty=*/false);
        writeCellSpec(spec, r.cells[i]);
        w.rawField("spec", spec.str());
        w.endObject();
    }
    w.endArray();
    w.endObject();
    if (!writeLine(ws.proc.to_fd, w.str()))
        workerGone(ws, false, "write to worker failed");
}

void
SweepService::Impl::workerReadable(WorkerState &ws)
{
    char chunk[8192];
    const ssize_t n = ::read(ws.proc.from_fd, chunk, sizeof chunk);
    if (n < 0) {
        if (errno == EINTR)
            return;
        workerGone(ws, false, std::strerror(errno));
        return;
    }
    if (n == 0) {
        workerGone(ws, false, "worker closed its pipe");
        return;
    }
    ws.buf.append(chunk, static_cast<std::size_t>(n));
    std::string line;
    while (!ws.dead && ws.buf.pop(&line))
        workerFrame(ws, line);
}

void
SweepService::Impl::workerFrame(WorkerState &ws,
                                const std::string &line)
{
    Request &r = *ws.request;
    JsonValue frame;
    std::string error;
    if (!JsonValue::parse(line, &frame, &error)) {
        warn("sweep service: malformed worker frame (%s)",
             error.c_str());
        workerGone(ws, false, "malformed frame");
        return;
    }
    const std::string op = frame.getString("op");
    if (op == "begin") {
        ws.running =
            static_cast<std::ptrdiff_t>(frame.getU64("index"));
        if (r.req.hard_timeout_s > 0.0)
            ws.deadline = monotonicNow() + r.req.hard_timeout_s;
        return;
    }
    if (op != "results") {
        warn("sweep service: unknown worker op '%s'", op.c_str());
        return;
    }
    const JsonValue *items = frame.find("items");
    if (!items || !items->isArray())
        return;
    for (std::size_t k = 0; k < items->size(); ++k) {
        const JsonValue &item = items->at(k);
        const std::size_t index =
            static_cast<std::size_t>(item.getU64("index"));
        const JsonValue *outcome_json = item.find("outcome");
        CellOutcome outcome;
        if (!outcome_json ||
            !parseCellOutcome(*outcome_json, &outcome, &error)) {
            warn("sweep service: unparseable worker result (%s)",
                 error.c_str());
            continue;
        }
        // A worker may only report cells of the shard it was sent,
        // each at most once: anything else (buggy or corrupted
        // worker) would index the request's arrays out of bounds.
        bool expected = false;
        for (std::size_t c = 0; c < ws.chunk.size(); ++c) {
            if (ws.chunk[c] == index && !ws.resulted[c]) {
                ws.resulted[c] = 1;
                --ws.pending;
                expected = true;
                break;
            }
        }
        if (!expected || index >= r.cells.size()) {
            warn("sweep service: dropping worker result for "
                 "unexpected cell index %zu",
                 index);
            continue;
        }
        if (ws.running == static_cast<std::ptrdiff_t>(index))
            ws.running = -1;
        executed.fetch_add(1);
        cellComputed(r, index, std::move(outcome));
    }
    if (ws.pending == 0) {
        ws.busy = false;
        ws.chunk.clear();
        ws.resulted.clear();
        ws.deadline = 0.0;
    } else if (r.req.hard_timeout_s > 0.0) {
        // Budget restarts for the next cell of the shard.
        ws.deadline = monotonicNow() + r.req.hard_timeout_s;
    }
}

void
SweepService::Impl::workerGone(WorkerState &ws, bool killed_by_us,
                               const std::string &why)
{
    if (ws.dead)
        return;
    ws.dead = true;
    Request &r = *ws.request;
    ::close(ws.proc.to_fd);
    ::close(ws.proc.from_fd);
    if (killed_by_us)
        ::kill(ws.proc.pid, SIGKILL);
    ::waitpid(ws.proc.pid, nullptr, 0);

    if (!ws.busy)
        return;
    for (std::size_t c = 0; c < ws.chunk.size(); ++c) {
        if (ws.resulted[c])
            continue;
        const std::size_t index = ws.chunk[c];
        const bool was_running =
            ws.running == static_cast<std::ptrdiff_t>(index);
        if (was_running && killed_by_us) {
            // Exactly the overdue cell is charged with the timeout;
            // everything else in the shard gets recomputed.
            CellOutcome out;
            out.ok = false;
            out.timed_out = true;
            out.wall_s = r.req.hard_timeout_s;
            out.worker_pid =
                static_cast<std::uint64_t>(ws.proc.pid);
            out.hostname = hostName();
            char buf[160];
            std::snprintf(buf, sizeof buf,
                          "hard timeout: worker %d SIGKILLed after "
                          "%.1fs",
                          static_cast<int>(ws.proc.pid),
                          r.req.hard_timeout_s);
            out.error = buf;
            cellComputed(r, index, std::move(out));
        } else if (was_running && !killed_by_us) {
            CellOutcome out;
            out.ok = false;
            out.worker_pid =
                static_cast<std::uint64_t>(ws.proc.pid);
            out.hostname = hostName();
            out.error = "sweep worker died mid-cell (" + why + ")";
            cellComputed(r, index, std::move(out));
        } else if (!r.aborted) {
            r.queue.push_back(index);
        } else {
            // Aborted owner: same handover as abortRequest().
            auto it = table.find(r.digests[index]);
            if (it != table.end() && !it->second.done &&
                it->second.owner == &r) {
                if (!it->second.waiters.empty()) {
                    const auto heir = it->second.waiters.front();
                    it->second.waiters.erase(
                        it->second.waiters.begin());
                    it->second.owner = heir.first;
                    it->second.owner_index = heir.second;
                    heir.first->queue.push_back(heir.second);
                } else {
                    table.erase(it);
                }
            }
        }
    }
    ws.busy = false;
    ws.chunk.clear();
    ws.resulted.clear();
    ws.pending = 0;
    ws.deadline = 0.0;
}

void
SweepService::Impl::checkDeadlines(double now)
{
    for (auto &r : requests) {
        for (auto &ws : r->workers) {
            if (ws->dead || !ws->busy || ws->deadline <= 0.0 ||
                now < ws->deadline)
                continue;
            killed.fetch_add(1);
            if (opt.verbose)
                std::fprintf(
                    stderr,
                    "sweepd: hard timeout (%.1fs): killing worker "
                    "%d\n",
                    r->req.hard_timeout_s,
                    static_cast<int>(ws->proc.pid));
            workerGone(*ws, true, "hard timeout");
        }
    }
}

double
SweepService::Impl::nearestDeadline() const
{
    double nearest = 0.0;
    for (const auto &r : requests) {
        for (const auto &ws : r->workers) {
            if (ws->dead || !ws->busy || ws->deadline <= 0.0)
                continue;
            if (nearest == 0.0 || ws->deadline < nearest)
                nearest = ws->deadline;
        }
    }
    return nearest;
}

void
SweepService::Impl::reap()
{
    for (auto &r : requests) {
        const bool workers_idle = [&] {
            for (const auto &ws : r->workers) {
                if (!ws->dead && ws->busy)
                    return false;
            }
            return true;
        }();
        if (!(r->finished || (r->aborted && workers_idle)))
            continue;
        for (auto &ws : r->workers) {
            if (ws->dead)
                continue;
            // Idle by construction (finished => every shard resulted);
            // closing stdin is the worker's exit signal.
            ::close(ws->proc.to_fd);
            ::close(ws->proc.from_fd);
            ::waitpid(ws->proc.pid, nullptr, 0);
            ws->dead = true;
        }
        r->workers.clear();
    }
    requests.erase(
        std::remove_if(requests.begin(), requests.end(),
                       [](const std::unique_ptr<Request> &r) {
                           return (r->finished || r->aborted) &&
                                  r->workers.empty();
                       }),
        requests.end());
}

// ----------------------------------------------------------------
// public surface
// ----------------------------------------------------------------

SweepService::SweepService(SweepServiceOptions opt)
    : impl_(std::make_unique<Impl>(std::move(opt)))
{
}

SweepService::~SweepService()
{
    if (impl_ && impl_->listen_fd >= 0)
        impl_->shutdownEverything();
}

bool
SweepService::start(std::string *error)
{
    return impl_->start(error);
}

int
SweepService::run()
{
    return impl_->run();
}

void
SweepService::stop()
{
    const int fd = impl_->self_pipe[1];
    if (fd >= 0) {
        const char byte = 's';
        (void)!::write(fd, &byte, 1);
    }
}

const std::string &
SweepService::socketPath() const
{
    return impl_->opt.socket_path;
}

std::uint64_t
SweepService::cellsExecuted() const
{
    return impl_->executed.load();
}

std::uint64_t
SweepService::cellsFromCache() const
{
    return impl_->from_cache.load();
}

std::uint64_t
SweepService::cellsDeduped() const
{
    return impl_->deduped.load();
}

std::uint64_t
SweepService::workersKilled() const
{
    return impl_->killed.load();
}

} // namespace bauvm
