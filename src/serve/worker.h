/**
 * @file
 * The sweep-service worker: a forked process that executes cell
 * shards.
 *
 * Protocol (NDJSON, one document per line):
 *
 *   daemon -> worker (stdin pipe)
 *     {"op":"run","cells":[{"index":N,"spec":<CellSpec>}, ...]}
 *     {"op":"exit"}
 *
 *   worker -> daemon (stdout pipe)
 *     {"op":"begin","index":N,"digest":"..."}
 *     {"op":"results","items":[{"index":N,"outcome":<CellOutcome>}]}
 *
 * "begin" is sent before each cell starts, so the daemon can attribute
 * a hard-timeout SIGKILL to the one cell that was actually running.
 * Finished cells do NOT ship one-by-one: they accumulate in a
 * ResultAggregator and flush as one "results" frame per flush_cells
 * completions (and at chunk end), the Grappa-style batching that keeps
 * daemon wakeups and cache-store passes amortized. A SIGKILL between
 * flushes loses only recomputable work — results are deterministic.
 *
 * Ok outcomes are stored into the shared on-disk ResultCache by the
 * worker itself (at flush time), so the daemon never re-serializes
 * results it merely routes.
 *
 * The worker exits on "exit" or on stdin EOF — daemon death reaps the
 * whole pool without signals.
 */

#ifndef BAUVM_SERVE_WORKER_H_
#define BAUVM_SERVE_WORKER_H_

#include <sys/types.h>

#include <cstddef>
#include <string>

namespace bauvm
{

/** Per-pool execution options, fixed at fork time. */
struct WorkerOptions {
    std::string cache_dir;      //!< "" = no result-cache stores
    double soft_timeout_s = 0.0;
    std::size_t flush_cells = 8;
    std::string git_rev;        //!< for digests; gitRev() when empty
};

/**
 * The worker main loop over @p in_fd / @p out_fd. Blocks until "exit"
 * or EOF. @return the process exit code (0 normal, 1 when the daemon
 * pipe broke mid-write or a frame was malformed).
 */
int runWorkerLoop(int in_fd, int out_fd, const WorkerOptions &opt);

/** One forked worker and its channel, as the daemon sees it. */
struct WorkerProc {
    pid_t pid = -1;
    int to_fd = -1;   //!< daemon writes "run"/"exit" frames here
    int from_fd = -1; //!< daemon polls "begin"/"results" frames here
};

/**
 * fork()s a worker running runWorkerLoop(). The child shares no fds
 * with the daemon beyond its two pipe ends and never returns (it
 * _exit()s). fatal() when pipe()/fork() fail.
 */
WorkerProc spawnWorker(const WorkerOptions &opt);

} // namespace bauvm

#endif // BAUVM_SERVE_WORKER_H_
