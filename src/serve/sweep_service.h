/**
 * @file
 * SweepService: the long-lived sweep daemon.
 *
 * One single-threaded poll() loop owns everything: a Unix-domain
 * listening socket, any number of client connections, and the forked
 * worker pools executing cells. Clients submit a bauvm.sweep-request/1
 * document (write it, then shutdown(SHUT_WR); the daemon parses at
 * EOF) and receive NDJSON events back until the socket closes:
 *
 *   {"op":"accepted","cells":N,"bench":"..."}
 *   {"op":"cell","index":N,"workload":...,"policy":...,"variant":...,
 *    "ok":B,"timed_out":B,"cached":B,"digest":"...",
 *    "done":D,"total":T}
 *   {"op":"done","sweep":<compact bauvm.sweep/1.2 document>}
 *   {"op":"error","message":"..."}
 *
 * Scheduling: each request's cells queue in deterministic matrix
 * order and shard across a per-request pool of forked workers
 * (spawnWorker) in chunks; results merge back *by index*, so the
 * assembled sweep is bit-identical to a serial run regardless of
 * worker count, interleaving, kills or resumes.
 *
 * Hard timeouts: "begin" frames attribute the running cell; when a
 * cell overstays request.hard_timeout_s the daemon SIGKILLs the
 * worker, marks exactly that cell timed_out, requeues the rest of the
 * shard and respawns — the guarantee the in-thread soft --timeout
 * cannot give.
 *
 * Dedupe and resume: every completion is memoized daemon-wide by cell
 * digest, and ok cells persist in the shared on-disk ResultCache
 * (workers store them; the daemon checks it at admission). A cell that
 * is *currently running* for one request is never started again for
 * another — later requests wait on the same digest and receive a copy
 * (reported with "cached": true).
 *
 * Shutdown: SIGTERM/SIGINT (via self-pipe) or stop(). Workers see
 * their stdin pipe close and exit; a SIGKILLed daemon leaves only the
 * result cache behind, which is exactly what resuming needs.
 */

#ifndef BAUVM_SERVE_SWEEP_SERVICE_H_
#define BAUVM_SERVE_SWEEP_SERVICE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace bauvm
{

struct SweepServiceOptions {
    std::string socket_path;
    std::string cache_dir;        //!< "" = result cache off
    std::size_t max_workers = 0;  //!< clamp on request jobs; 0 = none
    std::size_t max_requests = 64; //!< concurrent client connections
    /** SO_SNDTIMEO applied to every client socket: a client that
     *  stops draining its events blocks a write for at most this long
     *  before its request aborts, instead of wedging the whole
     *  single-threaded poll loop (and hard-timeout enforcement) for
     *  everyone. 0 disables the guard. */
    double client_send_timeout_s = 30.0;
    bool verbose = true;          //!< stderr request/kill logging
};

class SweepService
{
  public:
    explicit SweepService(SweepServiceOptions opt);
    ~SweepService();

    SweepService(const SweepService &) = delete;
    SweepService &operator=(const SweepService &) = delete;

    /** Binds and listens (removing a stale socket file first).
     *  @return false with a reason in @p error on failure. */
    bool start(std::string *error);

    /** Serves until stop() or SIGTERM/SIGINT. @return 0 on a clean
     *  shutdown. Requires start(). */
    int run();

    /** Asks a running run() to exit; callable from signal context. */
    void stop();

    const std::string &socketPath() const;

    // Daemon-lifetime counters (stable after run() returns).
    std::uint64_t cellsExecuted() const; //!< computed by workers
    std::uint64_t cellsFromCache() const; //!< served from disk/memo
    std::uint64_t cellsDeduped() const; //!< waited on a running twin
    std::uint64_t workersKilled() const; //!< hard-timeout SIGKILLs

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace bauvm

#endif // BAUVM_SERVE_SWEEP_SERVICE_H_
