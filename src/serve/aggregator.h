/**
 * @file
 * ResultAggregator: batches many small result messages into few large
 * flushes.
 *
 * The idiom is Grappa's RDMAAggregator — senders never emit one
 * message per item; items accumulate per destination and a whole
 * buffer ships when it fills (or when the sender reaches a natural
 * barrier). Here the "destination" is the sweep daemon's result pipe
 * (or the on-disk cache): a worker that completed a cell appends the
 * serialized outcome and the aggregator invokes the flush sink once
 * per batch, amortizing pipe writes, parent wakeups and cache-store
 * passes over `capacity` cells instead of paying them per cell.
 *
 * Deliberately synchronous and single-owner (each forked worker owns
 * exactly one): no locks, no background flusher. The cost of a lost
 * batch on SIGKILL is bounded recomputation — results are
 * deterministic, so a resumed sweep regenerates exactly the unflushed
 * cells.
 */

#ifndef BAUVM_SERVE_AGGREGATOR_H_
#define BAUVM_SERVE_AGGREGATOR_H_

#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace bauvm
{

class ResultAggregator
{
  public:
    /** @param sink   receives a full batch of serialized items.
     *  @param capacity  items per flush; >= 1 (1 = unbatched). */
    ResultAggregator(
        std::function<void(const std::vector<std::string> &)> sink,
        std::size_t capacity)
        : sink_(std::move(sink)),
          capacity_(capacity == 0 ? 1 : capacity)
    {
        items_.reserve(capacity_);
    }

    /** Flushing on destruction keeps "reached a barrier" the default
     *  even on early-return paths. */
    ~ResultAggregator() { flush(); }

    ResultAggregator(const ResultAggregator &) = delete;
    ResultAggregator &operator=(const ResultAggregator &) = delete;

    /** Appends one serialized item; ships the batch when full. */
    void
    add(std::string item)
    {
        items_.push_back(std::move(item));
        if (items_.size() >= capacity_)
            flush();
    }

    /** Ships whatever is pending (no-op when empty). */
    void
    flush()
    {
        if (items_.empty())
            return;
        ++flushes_;
        sink_(items_);
        items_.clear();
    }

    std::size_t pending() const { return items_.size(); }
    std::size_t capacity() const { return capacity_; }
    /** Number of non-empty batches shipped so far. */
    std::size_t flushes() const { return flushes_; }

  private:
    std::function<void(const std::vector<std::string> &)> sink_;
    std::size_t capacity_;
    std::vector<std::string> items_;
    std::size_t flushes_ = 0;
};

} // namespace bauvm

#endif // BAUVM_SERVE_AGGREGATOR_H_
