#include "src/serve/json.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "src/sim/log.h"

namespace bauvm
{

namespace
{

const std::string kEmpty;

} // namespace

class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool
    parseDocument(JsonValue *out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing garbage after document");
        return true;
    }

  private:
    bool
    fail(const char *what)
    {
        if (error_) {
            *error_ = "json: " + std::string(what) + " at offset " +
                      std::to_string(pos_);
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                ++pos_;
            else
                break;
        }
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (text_.compare(pos_, n, word) != 0)
            return fail("bad literal");
        pos_ += n;
        return true;
    }

    bool
    parseValue(JsonValue *out)
    {
        if (depth_ > kMaxDepth)
            return fail("nesting too deep");
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
          case 'n':
            out->kind_ = JsonValue::Kind::Null;
            return literal("null");
          case 't':
            out->kind_ = JsonValue::Kind::Bool;
            out->bool_ = true;
            return literal("true");
          case 'f':
            out->kind_ = JsonValue::Kind::Bool;
            out->bool_ = false;
            return literal("false");
          case '"':
            out->kind_ = JsonValue::Kind::String;
            return parseString(&out->scalar_);
          case '[':
            return parseArray(out);
          case '{':
            return parseObject(out);
          default:
            return parseNumber(out);
        }
    }

    bool
    parseString(std::string *out)
    {
        ++pos_; // opening quote
        out->clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    return fail("unterminated escape");
                const char e = text_[pos_++];
                switch (e) {
                  case '"':
                    *out += '"';
                    break;
                  case '\\':
                    *out += '\\';
                    break;
                  case '/':
                    *out += '/';
                    break;
                  case 'b':
                    *out += '\b';
                    break;
                  case 'f':
                    *out += '\f';
                    break;
                  case 'n':
                    *out += '\n';
                    break;
                  case 'r':
                    *out += '\r';
                    break;
                  case 't':
                    *out += '\t';
                    break;
                  case 'u': {
                      if (pos_ + 4 > text_.size())
                          return fail("truncated \\u escape");
                      unsigned code = 0;
                      for (int i = 0; i < 4; ++i) {
                          const char h = text_[pos_++];
                          code <<= 4;
                          if (h >= '0' && h <= '9')
                              code |= static_cast<unsigned>(h - '0');
                          else if (h >= 'a' && h <= 'f')
                              code |= static_cast<unsigned>(
                                  h - 'a' + 10);
                          else if (h >= 'A' && h <= 'F')
                              code |= static_cast<unsigned>(
                                  h - 'A' + 10);
                          else
                              return fail("bad \\u escape digit");
                      }
                      // UTF-8 encode the BMP code point; surrogate
                      // pairs are not combined (the writer never emits
                      // them — it only escapes control characters).
                      if (code < 0x80) {
                          *out += static_cast<char>(code);
                      } else if (code < 0x800) {
                          *out += static_cast<char>(0xc0 | (code >> 6));
                          *out += static_cast<char>(
                              0x80 | (code & 0x3f));
                      } else {
                          *out +=
                              static_cast<char>(0xe0 | (code >> 12));
                          *out += static_cast<char>(
                              0x80 | ((code >> 6) & 0x3f));
                          *out += static_cast<char>(
                              0x80 | (code & 0x3f));
                      }
                      break;
                  }
                  default:
                    return fail("unknown escape");
                }
                continue;
            }
            *out += c;
            ++pos_;
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue *out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if ((c >= '0' && c <= '9') || c == '.' || c == 'e' ||
                c == 'E' || c == '+' || c == '-')
                ++pos_;
            else
                break;
        }
        if (pos_ == start)
            return fail("expected a value");
        out->kind_ = JsonValue::Kind::Number;
        out->scalar_ = text_.substr(start, pos_ - start);
        errno = 0;
        char *end = nullptr;
        out->num_ = std::strtod(out->scalar_.c_str(), &end);
        if (end != out->scalar_.c_str() + out->scalar_.size())
            return fail("malformed number");
        return true;
    }

    bool
    parseArray(JsonValue *out)
    {
        ++pos_; // '['
        ++depth_;
        out->kind_ = JsonValue::Kind::Array;
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            --depth_;
            return true;
        }
        while (true) {
            out->elements_.emplace_back();
            skipWs();
            if (!parseValue(&out->elements_.back()))
                return false;
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            const char c = text_[pos_++];
            if (c == ']') {
                --depth_;
                return true;
            }
            if (c != ',')
                return fail("expected ',' or ']' in array");
        }
    }

    bool
    parseObject(JsonValue *out)
    {
        ++pos_; // '{'
        ++depth_;
        out->kind_ = JsonValue::Kind::Object;
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            --depth_;
            return true;
        }
        while (true) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            std::string key;
            if (!parseString(&key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':' after object key");
            ++pos_;
            skipWs();
            out->members_.emplace_back(std::move(key), JsonValue());
            if (!parseValue(&out->members_.back().second))
                return false;
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            const char c = text_[pos_++];
            if (c == '}') {
                --depth_;
                return true;
            }
            if (c != ',')
                return fail("expected ',' or '}' in object");
        }
    }

    static constexpr int kMaxDepth = 64;

    const std::string &text_;
    std::string *error_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

bool
JsonValue::parse(const std::string &text, JsonValue *out,
                 std::string *error)
{
    *out = JsonValue();
    JsonParser parser(text, error);
    return parser.parseDocument(out);
}

bool
JsonValue::asBool(bool fallback) const
{
    return isBool() ? bool_ : fallback;
}

double
JsonValue::asDouble(double fallback) const
{
    return isNumber() ? num_ : fallback;
}

std::uint64_t
JsonValue::asU64(std::uint64_t fallback) const
{
    if (!isNumber())
        return fallback;
    // Exact path: a plain non-negative integer token.
    if (!scalar_.empty() &&
        scalar_.find_first_not_of("0123456789") == std::string::npos) {
        errno = 0;
        const unsigned long long v =
            std::strtoull(scalar_.c_str(), nullptr, 10);
        if (errno == 0)
            return v;
    }
    return num_ < 0.0 ? fallback : static_cast<std::uint64_t>(num_);
}

std::int64_t
JsonValue::asI64(std::int64_t fallback) const
{
    if (!isNumber())
        return fallback;
    if (!scalar_.empty() &&
        scalar_.find_first_not_of("0123456789-") ==
            std::string::npos) {
        errno = 0;
        const long long v = std::strtoll(scalar_.c_str(), nullptr, 10);
        if (errno == 0)
            return v;
    }
    return static_cast<std::int64_t>(num_);
}

const std::string &
JsonValue::asString() const
{
    return isString() ? scalar_ : kEmpty;
}

std::size_t
JsonValue::size() const
{
    if (isArray())
        return elements_.size();
    if (isObject())
        return members_.size();
    return 0;
}

const JsonValue &
JsonValue::at(std::size_t i) const
{
    if (!isArray() || i >= elements_.size())
        fatal("JsonValue::at(%zu): out of range (size %zu)", i,
              elements_.size());
    return elements_[i];
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &[k, v] : members_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

std::string
JsonValue::getString(const std::string &key,
                     const std::string &fallback) const
{
    const JsonValue *v = find(key);
    return v && v->isString() ? v->asString() : fallback;
}

double
JsonValue::getDouble(const std::string &key, double fallback) const
{
    const JsonValue *v = find(key);
    return v ? v->asDouble(fallback) : fallback;
}

std::uint64_t
JsonValue::getU64(const std::string &key, std::uint64_t fallback) const
{
    const JsonValue *v = find(key);
    return v ? v->asU64(fallback) : fallback;
}

bool
JsonValue::getBool(const std::string &key, bool fallback) const
{
    const JsonValue *v = find(key);
    return v ? v->asBool(fallback) : fallback;
}

} // namespace bauvm
