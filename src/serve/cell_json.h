/**
 * @file
 * JSON codecs for the sweep service: CellSpec (the wire form shipped
 * to worker processes) and CellOutcome (the wire/cache form of a
 * finished cell).
 *
 * The write side rides on src/runner/json_writer.h (writeCellJson from
 * sweep_result.h produces the outcome shape); this header adds the
 * matching parsers over src/serve/json.h plus the CellSpec writer.
 * Parsers are strict about the fields that determine simulation
 * behaviour (workload, policy, scale, overrides) and lenient about
 * additive provenance, so newer producers interoperate with older
 * consumers within the same schema major.
 */

#ifndef BAUVM_SERVE_CELL_JSON_H_
#define BAUVM_SERVE_CELL_JSON_H_

#include <string>

#include "src/runner/cell_spec.h"
#include "src/runner/job.h"
#include "src/runner/json_writer.h"
#include "src/serve/json.h"

namespace bauvm
{

/** Serializes @p spec as one JSON object into @p w. */
void writeCellSpec(JsonWriter &w, const CellSpec &spec);

/**
 * Parses the writeCellSpec() shape. @return false (with a reason in
 * @p error) on a missing/invalid required field, an unknown policy or
 * scale name, or an unregistered override key.
 */
bool parseCellSpec(const JsonValue &v, CellSpec *out,
                   std::string *error);

/**
 * Parses the writeCellJson() shape (sweep_result.h), including the
 * optional "batch_records" extension the result cache stores.
 * RunResult.workload/seed are reconstructed from the cell fields.
 */
bool parseCellOutcome(const JsonValue &v, CellOutcome *out,
                      std::string *error);

/** Parses a WorkloadScale name; @return false on an unknown name. */
bool scaleFromName(const std::string &name, WorkloadScale *out);

/** policyFromName() without the fatal(); @return false when unknown. */
bool policyFromNameSafe(const std::string &name, Policy *out);

} // namespace bauvm

#endif // BAUVM_SERVE_CELL_JSON_H_
