/**
 * @file
 * Sweep-service client: submit a request over the daemon's Unix
 * socket and collect the streamed result.
 *
 * Protocol (client side of sweep_service.h): connect, write the
 * bauvm.sweep-request/1 document, shutdown(SHUT_WR) to mark its end,
 * then read NDJSON events until the daemon closes the socket. The
 * final "done" event embeds the merged bauvm.sweep/1.2 document,
 * which submitSweep() hands back as the exact bytes the daemon sent —
 * suitable for writing to a --json file and diffing against a serial
 * run.
 *
 * Shared by the bauvm_submit binary and the service tests.
 */

#ifndef BAUVM_SERVE_CLIENT_H_
#define BAUVM_SERVE_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>

namespace bauvm
{

class JsonValue;

/** The collected outcome of one submitted sweep. */
struct SweepSubmitResult {
    bool ok = false;
    std::string error;      //!< why ok is false
    std::string sweep_json; //!< raw compact sweep doc from "done"

    // Tallied from the "cell" event stream.
    std::uint64_t cells = 0;
    std::uint64_t failed = 0;
    std::uint64_t timed_out = 0;
    std::uint64_t cached = 0;
};

/** Fired for every event line the daemon streams (already parsed). */
using SweepEventFn = std::function<void(const JsonValue &)>;

/**
 * Connects to @p socket_path, submits @p request_json and blocks
 * until the daemon finishes (or the connection errors out).
 * @p on_event (optional) observes every event, including "done".
 */
SweepSubmitResult submitSweep(const std::string &socket_path,
                              const std::string &request_json,
                              const SweepEventFn &on_event = {});

/**
 * Polls connect() until the daemon's socket accepts, for scripts and
 * tests that just started a daemon. @return false when
 * @p timeout_s elapses first.
 */
bool waitForService(const std::string &socket_path, double timeout_s);

} // namespace bauvm

#endif // BAUVM_SERVE_CLIENT_H_
