/**
 * @file
 * SweepRequest: the client-facing description of one sweep matrix,
 * schema `bauvm.sweep-request/1`.
 *
 * A request names a (workload x policy x variant) matrix plus the
 * shared run options (scale, ratio, seed, audit, timeouts), an
 * optional multi-tenant mix ("tenants" + "share_policy", applied to
 * every cell) and the service-side execution knobs (worker count,
 * shard chunking, flush batching). expandCells() lowers it to the flat CellSpec vector in
 * the same variant-major -> workload -> policy order SweepRunner uses,
 * so a daemon-merged result orders its cells exactly like the serial
 * in-process sweep it must be byte-identical to.
 *
 * Variants here are declarative (override lists), unlike the
 * function-valued ConfigVariant of SweepSpec: a request crosses a
 * process boundary, so its config mutations must serialize.
 *
 * Example request:
 * @code{.json}
 * {"schema": "bauvm.sweep-request/1",
 *  "bench": "fig11",
 *  "workloads": ["@irregular"],
 *  "policies": ["BASELINE", "TO+UE", "ETC"],
 *  "scale": "tiny", "ratio": 0.5, "seed": 1,
 *  "jobs": 2, "hard_timeout_s": 120}
 * @endcode
 */

#ifndef BAUVM_SERVE_SWEEP_REQUEST_H_
#define BAUVM_SERVE_SWEEP_REQUEST_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/runner/cell_spec.h"
#include "src/runner/json_writer.h"
#include "src/runner/sweep_result.h"
#include "src/serve/json.h"

namespace bauvm
{

/** One declarative config variant of a request matrix. */
struct RequestVariant {
    std::string label; //!< "" = the default (no-override) variant
    std::vector<ConfigOverride> overrides;
};

/** One parsed sweep request (see file doc for the JSON shape). */
struct SweepRequest {
    static constexpr const char *kSchema = "bauvm.sweep-request/1";

    std::string bench = "sweep";     //!< stamped into the result JSON
    std::vector<std::string> workloads; //!< concrete names, expanded
    std::vector<Policy> policies;
    std::vector<RequestVariant> variants; //!< never empty once parsed

    WorkloadScale scale = WorkloadScale::Small;
    double ratio = 0.5;
    std::uint64_t seed = 1;
    bool audit = false;

    /** Non-empty = every cell runs this concurrent tenant mix
     *  ({"workload", "quota"} objects) instead of a single workload;
     *  the matrix's workload axis then only labels the cells. */
    std::vector<TenantSpec> tenants;
    /** "free-for-all" | "strict" | "proportional" — how the tenants
     *  share device memory. Lowered onto every cell as an "mt.policy"
     *  override so it reaches the config (and the content address)
     *  through the ordinary knob path. */
    SharePolicy share_policy = SharePolicy::FreeForAll;

    /** Soft per-cell budget (accept/reject, checked at cell end). */
    double timeout_s = 0.0;
    /** Hard per-cell budget: the daemon SIGKILLs the worker. 0 = off. */
    double hard_timeout_s = 0.0;

    /** Worker processes; 0 = one. */
    std::size_t jobs = 1;
    /** Cells per shard handed to a worker at once (>= 1). */
    std::size_t chunk_cells = 1;
    /** Completed cells per aggregated worker->daemon flush (>= 1). */
    std::size_t flush_cells = 8;
};

/**
 * Parses and validates a bauvm.sweep-request/1 document. Workload
 * names are checked against the registry; "@irregular", "@regular"
 * and "@all" expand in registration order. Missing "policies" means
 * allPolicies(); missing "variants" means one default variant.
 * @return false with a reason in @p error on any invalid field.
 */
bool parseSweepRequest(const JsonValue &v, SweepRequest *out,
                       std::string *error);

/** Serializes @p req in the shape parseSweepRequest() accepts. */
void writeSweepRequest(JsonWriter &w, const SweepRequest &req);

/**
 * Lowers @p req to its flat cell list, variant-major -> workload ->
 * policy — the SweepRunner expansion order.
 */
std::vector<CellSpec> expandCells(const SweepRequest &req);

/**
 * Runs the request's whole matrix serially, in-process, one cell at a
 * time through executeCell() — no workers, no cache, no daemon. This
 * is the reference the sharded service is byte-compared against
 * (deterministic fields only; see ci/check_sweep_equiv.py), and the
 * `bauvm_submit --local` escape hatch when no daemon is running.
 */
SweepResult runRequestSerial(const SweepRequest &req,
                             bool verbose = false);

} // namespace bauvm

#endif // BAUVM_SERVE_SWEEP_REQUEST_H_
