#include "src/serve/result_cache.h"

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/runner/json_writer.h"
#include "src/runner/sweep_result.h"
#include "src/serve/cell_json.h"
#include "src/serve/json.h"
#include "src/sim/log.h"

namespace bauvm
{

namespace fs = std::filesystem;

ResultCache::ResultCache(std::string dir)
    : dir_(std::move(dir))
{
    if (dir_.empty())
        fatal("ResultCache: empty cache directory");
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        fatal("ResultCache: cannot create '%s': %s", dir_.c_str(),
              ec.message().c_str());
}

std::string
ResultCache::entryPath(const std::string &digest) const
{
    // Two-hex-char fan-out; digests shorter than that (never produced
    // by digestHex, but paths must stay sane) land in "xx".
    const std::string shard =
        digest.size() >= 2 ? digest.substr(0, 2) : std::string("xx");
    return dir_ + "/" + shard + "/" + digest + ".json";
}

bool
ResultCache::contains(const std::string &digest) const
{
    std::error_code ec;
    return fs::exists(entryPath(digest), ec);
}

bool
ResultCache::lookup(const std::string &digest, const std::string &key,
                    CellOutcome *out)
{
    std::ifstream in(entryPath(digest));
    if (!in) {
        misses_.fetch_add(1);
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    JsonValue doc;
    std::string error;
    if (!JsonValue::parse(text, &doc, &error)) {
        warn("ResultCache: corrupt entry %s (%s), treating as miss",
             digest.c_str(), error.c_str());
        misses_.fetch_add(1);
        return false;
    }
    const std::string schema = doc.getString("schema");
    if (schema.rfind("bauvm.cellcache/1", 0) != 0) {
        misses_.fetch_add(1);
        return false;
    }
    if (doc.getString("key") != key) {
        // Digest collision or a cache produced by different code —
        // never serve it.
        warn("ResultCache: key mismatch under digest %s, ignoring "
             "entry",
             digest.c_str());
        misses_.fetch_add(1);
        return false;
    }
    const JsonValue *outcome = doc.find("outcome");
    if (!outcome || !parseCellOutcome(*outcome, out, &error)) {
        warn("ResultCache: unparseable outcome in %s (%s)",
             digest.c_str(), error.c_str());
        misses_.fetch_add(1);
        return false;
    }
    if (!out->ok) {
        // Defensive: failed cells are never stored, but a hand-edited
        // cache must not poison sweeps.
        misses_.fetch_add(1);
        return false;
    }
    out->from_cache = true;
    hits_.fetch_add(1);
    return true;
}

bool
ResultCache::store(const std::string &digest, const std::string &key,
                   const CellOutcome &outcome)
{
    // Only clean completions are worth addressing: failures and
    // timeouts (even ones marked ok by a lenient producer) must retry
    // on the next run, not replay forever.
    if (!outcome.ok || outcome.timed_out)
        return false;

    JsonWriter cell(/*pretty=*/false);
    writeCellJson(cell, outcome, /*with_batch_records=*/true);

    JsonWriter doc(/*pretty=*/false);
    doc.beginObject();
    doc.field("schema", kSchema);
    doc.field("digest", digest);
    doc.field("key", key);
    doc.rawField("outcome", cell.str());
    doc.endObject();

    const std::string path = entryPath(digest);
    const fs::path parent = fs::path(path).parent_path();
    std::error_code ec;
    fs::create_directories(parent, ec);
    if (ec) {
        warn("ResultCache: cannot create shard dir '%s': %s",
             parent.string().c_str(), ec.message().c_str());
        return false;
    }

    // pid + digest alone is not unique: two threads of one process
    // (the threaded --resume SweepRunner) storing the same digest
    // would share a temp path and interleave writes. A process-wide
    // counter keeps every in-flight store on its own file.
    static std::atomic<std::uint64_t> store_seq{0};
    const std::uint64_t seq = store_seq.fetch_add(1);
    char tmpname[96];
    std::snprintf(tmpname, sizeof tmpname, ".tmp.%d.%llu.%s",
                  static_cast<int>(getpid()),
                  static_cast<unsigned long long>(seq),
                  digest.substr(0, 16).c_str());
    const std::string tmp = parent.string() + "/" + tmpname;
    {
        std::ofstream outf(tmp, std::ios::trunc);
        if (!outf) {
            warn("ResultCache: cannot open '%s' for writing",
                 tmp.c_str());
            return false;
        }
        outf << doc.str();
        if (!outf) {
            warn("ResultCache: short write to '%s'", tmp.c_str());
            std::remove(tmp.c_str());
            return false;
        }
    }
    fs::rename(tmp, path, ec);
    if (ec) {
        warn("ResultCache: rename '%s' -> '%s' failed: %s",
             tmp.c_str(), path.c_str(), ec.message().c_str());
        std::remove(tmp.c_str());
        return false;
    }
    stores_.fetch_add(1);
    return true;
}

} // namespace bauvm
