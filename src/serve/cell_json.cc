#include "src/serve/cell_json.h"

#include "src/core/experiment.h"
#include "src/sim/log.h"

namespace bauvm
{

namespace
{

bool
failParse(std::string *error, const std::string &what)
{
    if (error)
        *error = what;
    return false;
}

} // namespace

bool
policyFromNameSafe(const std::string &name, Policy *out)
{
    for (Policy p :
         {Policy::Baseline, Policy::BaselinePcieComp, Policy::To,
          Policy::Ue, Policy::ToUe, Policy::Etc, Policy::IdealEviction,
          Policy::Unlimited}) {
        if (policyName(p) == name) {
            *out = p;
            return true;
        }
    }
    return false;
}

bool
scaleFromName(const std::string &name, WorkloadScale *out)
{
    for (WorkloadScale s :
         {WorkloadScale::Tiny, WorkloadScale::Small,
          WorkloadScale::Medium, WorkloadScale::Large,
          WorkloadScale::Huge}) {
        if (scaleName(s) == name) {
            *out = s;
            return true;
        }
    }
    return false;
}

void
writeCellSpec(JsonWriter &w, const CellSpec &spec)
{
    w.beginObject();
    w.field("workload", spec.workload);
    w.field("policy", policyName(spec.policy));
    w.field("variant", spec.variant);
    w.beginArray("overrides");
    for (const ConfigOverride &o : spec.overrides) {
        w.beginObject();
        w.field("key", o.key);
        w.field("value", o.value);
        w.endObject();
    }
    w.endArray();
    w.field("scale", scaleName(spec.scale));
    w.field("ratio", spec.ratio);
    w.field("seed", spec.base_seed);
    w.field("audit", spec.audit);
    if (!spec.tenants.empty()) {
        w.beginArray("tenants");
        for (const TenantSpec &t : spec.tenants) {
            w.beginObject();
            w.field("workload", t.workload);
            w.field("quota", t.quota);
            w.endObject();
        }
        w.endArray();
    }
    w.endObject();
}

bool
parseCellSpec(const JsonValue &v, CellSpec *out, std::string *error)
{
    if (!v.isObject())
        return failParse(error, "cell spec is not an object");
    *out = CellSpec();
    out->workload = v.getString("workload");
    if (out->workload.empty())
        return failParse(error, "cell spec: missing workload");
    const std::string policy = v.getString("policy", "BASELINE");
    if (!policyFromNameSafe(policy, &out->policy))
        return failParse(error,
                         "cell spec: unknown policy '" + policy + "'");
    out->variant = v.getString("variant");
    const std::string scale = v.getString("scale", "small");
    if (!scaleFromName(scale, &out->scale))
        return failParse(error,
                         "cell spec: unknown scale '" + scale + "'");
    out->ratio = v.getDouble("ratio", 0.5);
    out->base_seed = v.getU64("seed", 1);
    out->audit = v.getBool("audit", false);
    if (const JsonValue *overrides = v.find("overrides")) {
        if (!overrides->isArray())
            return failParse(error,
                             "cell spec: overrides is not an array");
        SimConfig probe; // validate keys without running anything
        for (std::size_t i = 0; i < overrides->size(); ++i) {
            const JsonValue &o = overrides->at(i);
            ConfigOverride co;
            co.key = o.getString("key");
            co.value = o.getDouble("value");
            if (!applyConfigOverride(probe, co.key, co.value))
                return failParse(error,
                                 "cell spec: unknown override key '" +
                                     co.key + "'");
            out->overrides.push_back(std::move(co));
        }
    }
    if (const JsonValue *tenants = v.find("tenants")) {
        if (!tenants->isArray())
            return failParse(error,
                             "cell spec: tenants is not an array");
        for (std::size_t i = 0; i < tenants->size(); ++i) {
            const JsonValue &t = tenants->at(i);
            TenantSpec spec;
            spec.workload = t.getString("workload");
            if (spec.workload.empty())
                return failParse(
                    error, "cell spec: tenant without workload");
            spec.quota = t.getDouble("quota", 0.0);
            spec.scale = out->scale; // tenants share the cell scale
            out->tenants.push_back(std::move(spec));
        }
        if (out->tenants.size() == 1)
            return failParse(error,
                             "cell spec: a tenant mix needs at least "
                             "two tenants");
    }
    return true;
}

bool
parseCellOutcome(const JsonValue &v, CellOutcome *out,
                 std::string *error)
{
    if (!v.isObject())
        return failParse(error, "cell outcome is not an object");
    *out = CellOutcome();
    out->workload = v.getString("workload");
    if (out->workload.empty())
        return failParse(error, "cell outcome: missing workload");
    const std::string policy = v.getString("policy", "BASELINE");
    if (!policyFromNameSafe(policy, &out->policy))
        return failParse(
            error, "cell outcome: unknown policy '" + policy + "'");
    out->variant = v.getString("variant");
    out->seed = v.getU64("seed");
    out->job_seed = v.getU64("job_seed");
    out->ok = v.getBool("ok");
    out->timed_out = v.getBool("timed_out");
    out->error = v.getString("error");
    out->wall_s = v.getDouble("wall_s");
    out->digest = v.getString("digest");
    out->worker_pid = v.getU64("worker_pid");
    out->hostname = v.getString("hostname");
    out->from_cache = v.getBool("cached");

    if (!out->ok)
        return true;
    const JsonValue *r = v.find("result");
    if (!r || !r->isObject())
        return failParse(error, "cell outcome: ok without result");

    RunResult &res = out->result;
    res.workload = out->workload;
    res.seed = out->seed;
    res.cycles = r->getU64("cycles");
    res.kernels = r->getU64("kernels");
    res.instructions = r->getU64("instructions");
    res.footprint_bytes = r->getU64("footprint_bytes");
    res.capacity_pages = r->getU64("capacity_pages");
    res.batches = r->getU64("batches");
    res.avg_batch_pages = r->getDouble("avg_batch_pages");
    res.avg_batch_time = r->getDouble("avg_batch_time");
    res.avg_handling_time = r->getDouble("avg_handling_time");
    res.demand_pages = r->getU64("demand_pages");
    res.prefetched_pages = r->getU64("prefetched_pages");
    res.migrations = r->getU64("migrations");
    res.evictions = r->getU64("evictions");
    res.premature_evictions = r->getU64("premature_evictions");
    res.premature_rate = r->getDouble("premature_rate");
    res.context_switches = r->getU64("context_switches");
    res.context_switch_cycles = r->getU64("context_switch_cycles");
    res.pcie_h2d_bytes = r->getU64("pcie_h2d_bytes");
    res.pcie_d2h_bytes = r->getU64("pcie_d2h_bytes");
    res.translations = r->getU64("translations");
    res.tlb_hit_rate = r->getDouble("tlb_hit_rate");
    res.faults_per_kcycle = r->getDouble("faults_per_kcycle");
    res.sim_events = r->getU64("sim_events");
    res.host_wall_s = r->getDouble("host_wall_s");
    res.events_per_sec = r->getDouble("events_per_sec");

    if (const JsonValue *tenants = r->find("tenants")) {
        if (!tenants->isArray())
            return failParse(
                error, "cell outcome: tenants is not an array");
        res.tenants.reserve(tenants->size());
        for (std::size_t i = 0; i < tenants->size(); ++i) {
            const JsonValue &t = tenants->at(i);
            TenantResult tr;
            tr.id = static_cast<TenantId>(t.getU64("id"));
            tr.workload = t.getString("workload");
            tr.seed = t.getU64("seed");
            tr.cycles = t.getU64("cycles");
            tr.kernels = t.getU64("kernels");
            tr.instructions = t.getU64("instructions");
            tr.footprint_bytes = t.getU64("footprint_bytes");
            tr.quota_pages = t.getU64("quota_pages");
            tr.demand_pages = t.getU64("demand_pages");
            tr.evictions_caused = t.getU64("evictions_caused");
            tr.evictions_suffered = t.getU64("evictions_suffered");
            tr.peak_resident_pages = t.getU64("peak_resident_pages");
            tr.avg_lifetime_cycles =
                t.getDouble("avg_lifetime_cycles");
            tr.slowdown = t.getDouble("slowdown");
            res.tenants.push_back(std::move(tr));
        }
    }

    // writeCellJson emits batch_records as a sibling of "result" on
    // the cell object (not inside it) — read it from there, or every
    // cache round-trip would silently drop the records.
    if (const JsonValue *records = v.find("batch_records")) {
        if (!records->isArray())
            return failParse(
                error, "cell outcome: batch_records is not an array");
        res.batch_records.reserve(records->size());
        for (std::size_t i = 0; i < records->size(); ++i) {
            const JsonValue &b = records->at(i);
            if (!b.isArray() || b.size() != 7)
                return failParse(error,
                                 "cell outcome: malformed batch record");
            BatchRecord rec;
            rec.begin = b.at(0).asU64();
            rec.first_transfer = b.at(1).asU64();
            rec.end = b.at(2).asU64();
            rec.fault_pages =
                static_cast<std::uint32_t>(b.at(3).asU64());
            rec.prefetch_pages =
                static_cast<std::uint32_t>(b.at(4).asU64());
            rec.duplicate_faults =
                static_cast<std::uint32_t>(b.at(5).asU64());
            rec.migrated_bytes = b.at(6).asU64();
            res.batch_records.push_back(rec);
        }
    }
    return true;
}

} // namespace bauvm
