#include "src/serve/ndjson.h"

#include <errno.h>
#include <unistd.h>

namespace bauvm
{

bool
writeAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
writeLine(int fd, const std::string &line)
{
    return writeAll(fd, line + "\n");
}

void
LineBuffer::append(const char *data, std::size_t n)
{
    // Compact the consumed prefix before growing, keeping the buffer
    // proportional to unconsumed data even on long-lived channels.
    if (start_ > 0 && start_ == buf_.size()) {
        buf_.clear();
        start_ = 0;
    } else if (start_ > 4096) {
        buf_.erase(0, start_);
        start_ = 0;
    }
    buf_.append(data, n);
}

bool
LineBuffer::pop(std::string *line)
{
    const std::size_t nl = buf_.find('\n', start_);
    if (nl == std::string::npos)
        return false;
    line->assign(buf_, start_, nl - start_);
    start_ = nl + 1;
    return true;
}

bool
readLineBlocking(int fd, LineBuffer *buf, std::string *line)
{
    while (true) {
        if (buf->pop(line))
            return true;
        char chunk[4096];
        const ssize_t n = ::read(fd, chunk, sizeof chunk);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false; // EOF; unterminated tail discarded
        buf->append(chunk, static_cast<std::size_t>(n));
    }
}

} // namespace bauvm
