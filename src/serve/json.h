/**
 * @file
 * A minimal dependency-free JSON *parser*, the read-side twin of
 * src/runner/json_writer.h.
 *
 * Numbers keep their raw token alongside the parsed double, so 64-bit
 * integers (seeds, cycle counts, content digests) round-trip exactly
 * through asU64()/asI64() instead of losing precision above 2^53.
 * Objects preserve member order and are looked up linearly — every
 * document this repo parses (sweep requests, worker protocol frames,
 * cached cell results) has small objects.
 *
 * Error handling is by return value: parse() reports the byte offset
 * and reason; the typed accessors return a fallback on kind mismatch
 * (callers validate kinds explicitly where it matters).
 */

#ifndef BAUVM_SERVE_JSON_H_
#define BAUVM_SERVE_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace bauvm
{

class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    /**
     * Parses one JSON document from @p text (trailing whitespace
     * allowed, trailing garbage is an error). @return false with a
     * position-annotated message in @p error on malformed input.
     */
    static bool parse(const std::string &text, JsonValue *out,
                      std::string *error);

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool(bool fallback = false) const;
    double asDouble(double fallback = 0.0) const;
    /** Exact when the token is a plain unsigned integer; otherwise
     *  falls back to truncating the double value. */
    std::uint64_t asU64(std::uint64_t fallback = 0) const;
    std::int64_t asI64(std::int64_t fallback = 0) const;
    const std::string &asString() const; //!< "" unless isString()

    /** Array/object element count; 0 for scalars. */
    std::size_t size() const;
    /** Array element; panics via fatal() when out of range. */
    const JsonValue &at(std::size_t i) const;

    /** Object member by key; nullptr when absent (or not an object). */
    const JsonValue *find(const std::string &key) const;
    /** Object members in document order. */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return members_;
    }

    // Convenience typed member lookups with fallbacks.
    std::string getString(const std::string &key,
                          const std::string &fallback = "") const;
    double getDouble(const std::string &key,
                     double fallback = 0.0) const;
    std::uint64_t getU64(const std::string &key,
                         std::uint64_t fallback = 0) const;
    bool getBool(const std::string &key, bool fallback = false) const;

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string scalar_; //!< string value, or the raw number token
    std::vector<JsonValue> elements_;
    std::vector<std::pair<std::string, JsonValue>> members_;

    friend class JsonParser;
};

} // namespace bauvm

#endif // BAUVM_SERVE_JSON_H_
