/**
 * @file
 * ResultCache: the on-disk, content-addressed store of finished sweep
 * cells.
 *
 * Extends the in-memory GraphBuildCache idea (results shared within
 * one process) to results-on-disk shared across processes, daemon
 * restarts and concurrent requests: every completed cell is stored
 * under the 128-bit digest of its full content key (git revision,
 * workload, scale, canonical final config — see cell_spec.h), so
 *  - a killed sweep *resumes*: already-computed cells load instead of
 *    recomputing,
 *  - identical cells *dedupe* across requests and across harnesses
 *    sharing one cache directory, and
 *  - any config or code change *invalidates* naturally, because it
 *    changes the address rather than mutating an entry.
 *
 * Layout: <dir>/<digest[0..1]>/<digest>.json (fan-out keeps directory
 * listings sane), each file a self-describing bauvm.cellcache/1
 * document carrying the full key (verified on lookup — a digest
 * collision or a corrupt file reads as a miss, never as a wrong
 * result) and the cell outcome including batch records.
 *
 * Writes go to a temp file in the same directory and rename() into
 * place, so concurrent writers of the same digest are safe (last one
 * wins with identical content — results are deterministic) and a
 * reader never observes a half-written entry. Failed or timed-out
 * cells are never stored; they retry on the next run.
 *
 * All methods are safe to call from concurrent sweep workers.
 */

#ifndef BAUVM_SERVE_RESULT_CACHE_H_
#define BAUVM_SERVE_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "src/runner/job.h"

namespace bauvm
{

class ResultCache
{
  public:
    static constexpr const char *kSchema = "bauvm.cellcache/1";

    /** Opens (creating if needed) the cache rooted at @p dir;
     *  fatal() when the directory cannot be created. */
    explicit ResultCache(std::string dir);

    /**
     * Loads the cell stored under @p digest. Misses (false) on: no
     * entry, unreadable/corrupt entry, schema mismatch, or a stored
     * key different from @p key. On a hit the outcome has
     * from_cache = true.
     */
    bool lookup(const std::string &digest, const std::string &key,
                CellOutcome *out);

    /**
     * Atomically stores @p outcome under @p digest. Failed or
     * timed-out outcomes are rejected (returns false). Returns false
     * with a warn() when the filesystem write fails.
     */
    bool store(const std::string &digest, const std::string &key,
               const CellOutcome &outcome);

    /** True when an entry for @p digest exists (no content check). */
    bool contains(const std::string &digest) const;

    const std::string &dir() const { return dir_; }

    std::uint64_t hits() const { return hits_.load(); }
    std::uint64_t misses() const { return misses_.load(); }
    std::uint64_t stores() const { return stores_.load(); }

  private:
    std::string entryPath(const std::string &digest) const;

    std::string dir_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> stores_{0};
};

} // namespace bauvm

#endif // BAUVM_SERVE_RESULT_CACHE_H_
