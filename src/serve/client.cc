#include "src/serve/client.h"

#include <errno.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include <cstring>

#include "src/serve/json.h"
#include "src/serve/ndjson.h"

namespace bauvm
{

namespace
{

int
connectUnix(const std::string &path, std::string *error)
{
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path) {
        if (error)
            *error = "socket path too long: " + path;
        return -1;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error)
            *error = std::string("socket(): ") + std::strerror(errno);
        return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        if (error)
            *error = "connect('" + path +
                     "'): " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

/**
 * Extracts the raw bytes of the "sweep" member from a "done" event
 * line. The daemon writes "sweep" as the *last* member of a compact
 * single-line object, so its value is everything between the key and
 * the final '}' — taking the substring (instead of re-serializing a
 * parse) preserves the daemon's bytes exactly.
 */
bool
extractSweepJson(const std::string &line, std::string *out)
{
    const std::string marker = "\"sweep\":";
    const std::size_t pos = line.find(marker);
    if (pos == std::string::npos || line.empty() ||
        line.back() != '}')
        return false;
    const std::size_t begin = pos + marker.size();
    if (begin >= line.size() - 1)
        return false;
    *out = line.substr(begin, line.size() - 1 - begin);
    return true;
}

} // namespace

SweepSubmitResult
submitSweep(const std::string &socket_path,
            const std::string &request_json,
            const SweepEventFn &on_event)
{
    SweepSubmitResult result;
    const int fd = connectUnix(socket_path, &result.error);
    if (fd < 0)
        return result;
    if (!writeAll(fd, request_json)) {
        result.error = "writing request failed";
        ::close(fd);
        return result;
    }
    // Half-close marks end-of-request; the daemon parses at EOF.
    ::shutdown(fd, SHUT_WR);

    LineBuffer buf;
    std::string line;
    bool got_done = false;
    while (readLineBlocking(fd, &buf, &line)) {
        JsonValue event;
        std::string parse_error;
        if (!JsonValue::parse(line, &event, &parse_error)) {
            result.error = "malformed event: " + parse_error;
            ::close(fd);
            return result;
        }
        if (on_event)
            on_event(event);
        const std::string op = event.getString("op");
        if (op == "error") {
            result.error = event.getString("message");
            ::close(fd);
            return result;
        }
        if (op == "cell") {
            ++result.cells;
            if (!event.getBool("ok"))
                ++result.failed;
            if (event.getBool("timed_out"))
                ++result.timed_out;
            if (event.getBool("cached"))
                ++result.cached;
        }
        if (op == "done") {
            if (!extractSweepJson(line, &result.sweep_json)) {
                result.error = "done event without sweep document";
                ::close(fd);
                return result;
            }
            got_done = true;
        }
    }
    ::close(fd);
    if (!got_done) {
        result.error = result.error.empty()
                           ? "connection closed before done event"
                           : result.error;
        return result;
    }
    result.ok = true;
    return result;
}

bool
waitForService(const std::string &socket_path, double timeout_s)
{
    const timespec step = {0, 20 * 1000 * 1000}; // 20ms
    double waited = 0.0;
    while (true) {
        std::string error;
        const int fd = connectUnix(socket_path, &error);
        if (fd >= 0) {
            ::close(fd);
            return true;
        }
        if (waited >= timeout_s)
            return false;
        ::nanosleep(&step, nullptr);
        waited += 0.02;
    }
}

} // namespace bauvm
