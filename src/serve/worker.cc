#include "src/serve/worker.h"

#include <dirent.h>
#include <signal.h>
#include <unistd.h>

#include <cstdlib>

#include <memory>
#include <utility>
#include <vector>

#include "src/runner/cell_spec.h"
#include "src/runner/json_writer.h"
#include "src/runner/sweep_result.h"
#include "src/serve/aggregator.h"
#include "src/serve/cell_json.h"
#include "src/serve/json.h"
#include "src/serve/ndjson.h"
#include "src/serve/result_cache.h"
#include "src/sim/log.h"

namespace bauvm
{

namespace
{

/** One completed cell awaiting the next aggregated flush. */
struct PendingCell {
    std::string digest;
    std::string key;
    CellOutcome outcome;
};

/**
 * Closes every descriptor the child inherited except stdio and its
 * own two pipe ends. Without this, workers hold duplicates of the
 * daemon's client sockets and of *other* workers' pipes, so "close
 * the fd" never reads as EOF anywhere while any worker lives.
 */
void
closeInheritedFds(int keep_a, int keep_b)
{
    DIR *dir = ::opendir("/proc/self/fd");
    if (!dir) {
        // Conservative fallback: close a generous fixed range.
        for (int fd = 3; fd < 1024; ++fd) {
            if (fd != keep_a && fd != keep_b)
                ::close(fd);
        }
        return;
    }
    const int dir_fd = ::dirfd(dir);
    std::vector<int> to_close;
    while (dirent *ent = ::readdir(dir)) {
        const int fd =
            static_cast<int>(std::strtol(ent->d_name, nullptr, 10));
        if (fd > 2 && fd != keep_a && fd != keep_b && fd != dir_fd)
            to_close.push_back(fd);
    }
    ::closedir(dir);
    for (const int fd : to_close)
        ::close(fd);
}

} // namespace

int
runWorkerLoop(int in_fd, int out_fd, const WorkerOptions &opt)
{
    // A dying daemon must read as EPIPE on write, not kill the worker.
    ::signal(SIGPIPE, SIG_IGN);

    const std::string git_rev =
        opt.git_rev.empty() ? gitRev() : opt.git_rev;

    std::unique_ptr<ResultCache> cache;
    if (!opt.cache_dir.empty())
        cache = std::make_unique<ResultCache>(opt.cache_dir);

    bool pipe_ok = true;
    LineBuffer in_buf;
    std::string line;
    while (pipe_ok && readLineBlocking(in_fd, &in_buf, &line)) {
        JsonValue frame;
        std::string error;
        if (!JsonValue::parse(line, &frame, &error)) {
            warn("sweep worker: malformed frame (%s)", error.c_str());
            return 1;
        }
        const std::string op = frame.getString("op");
        if (op == "exit")
            break;
        if (op != "run") {
            warn("sweep worker: unknown op '%s'", op.c_str());
            return 1;
        }
        const JsonValue *cells = frame.find("cells");
        if (!cells || !cells->isArray()) {
            warn("sweep worker: run frame without cells");
            return 1;
        }
        const double soft_timeout_s =
            frame.getDouble("soft_timeout_s", opt.soft_timeout_s);
        std::size_t flush_cells = static_cast<std::size_t>(frame.getU64(
            "flush_cells",
            static_cast<std::uint64_t>(opt.flush_cells)));
        if (flush_cells == 0)
            flush_cells = 1;

        // Completed cells batch up and ship as one "results" frame per
        // flush (and at chunk end, via the aggregator's destructor-as-
        // barrier); their cache stores happen at the same cadence.
        std::vector<PendingCell> pending;
        ResultAggregator agg(
            [&](const std::vector<std::string> &items) {
                JsonWriter results(/*pretty=*/false);
                results.beginObject();
                results.field("op", "results");
                results.beginArray("items");
                for (const std::string &item : items)
                    results.rawValue(item);
                results.endArray();
                results.endObject();
                // Checkpoint before notifying: once the daemon (and
                // through it the client) hears about a cell, that
                // cell must already be durable in the cache, or a
                // crash right after "done" could lose acknowledged
                // work.
                if (cache) {
                    for (const PendingCell &pc : pending) {
                        if (pc.outcome.ok)
                            cache->store(pc.digest, pc.key,
                                         pc.outcome);
                    }
                }
                pending.clear();
                if (!writeLine(out_fd, results.str()))
                    pipe_ok = false;
            },
            flush_cells);

        for (std::size_t i = 0; pipe_ok && i < cells->size(); ++i) {
            const JsonValue &entry = cells->at(i);
            const std::uint64_t index = entry.getU64("index");
            CellSpec spec;
            const JsonValue *spec_json = entry.find("spec");
            if (!spec_json ||
                !parseCellSpec(*spec_json, &spec, &error)) {
                warn("sweep worker: bad cell spec (%s)",
                     error.c_str());
                return 1;
            }

            CellExecArgs args;
            args.workload = spec.workload;
            args.policy = spec.policy;
            args.variant = spec.variant;
            args.job_seed = cellJobSeed(spec);
            args.scale = spec.scale;
            args.config = cellConfig(spec);
            args.soft_timeout_s = soft_timeout_s;
            args.git_rev = git_rev;
            args.tenants = spec.tenants;
            const std::string key =
                cellKey(spec.workload, spec.scale, args.config,
                        git_rev, spec.tenants);
            const std::string digest = digestHex(key);

            // "begin" before the work: the daemon's hard timeout must
            // know which cell a killed worker was actually running.
            JsonWriter begin(/*pretty=*/false);
            begin.beginObject();
            begin.field("op", "begin");
            begin.field("index", index);
            begin.field("digest", digest);
            begin.endObject();
            if (!writeLine(out_fd, begin.str())) {
                pipe_ok = false;
                break;
            }

            CellOutcome outcome = executeCell(args);

            JsonWriter cell_json(/*pretty=*/false);
            writeCellJson(cell_json, outcome,
                          /*with_batch_records=*/false);
            JsonWriter item(/*pretty=*/false);
            item.beginObject();
            item.field("index", index);
            item.rawField("outcome", cell_json.str());
            item.endObject();

            pending.push_back({digest, key, std::move(outcome)});
            agg.add(item.str());
        }
    }
    return pipe_ok ? 0 : 1;
}

WorkerProc
spawnWorker(const WorkerOptions &opt)
{
    int to_child[2];
    int from_child[2];
    if (::pipe(to_child) != 0 || ::pipe(from_child) != 0)
        fatal("spawnWorker: pipe() failed");
    const pid_t pid = ::fork();
    if (pid < 0)
        fatal("spawnWorker: fork() failed");
    if (pid == 0) {
        ::close(to_child[1]);
        ::close(from_child[0]);
        closeInheritedFds(to_child[0], from_child[1]);
        const int code =
            runWorkerLoop(to_child[0], from_child[1], opt);
        ::_exit(code);
    }
    ::close(to_child[0]);
    ::close(from_child[1]);
    WorkerProc proc;
    proc.pid = pid;
    proc.to_fd = to_child[1];
    proc.from_fd = from_child[0];
    return proc;
}

} // namespace bauvm
