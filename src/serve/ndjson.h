/**
 * @file
 * Newline-delimited-JSON framing over file descriptors.
 *
 * Every sweep-service channel (daemon <-> worker pipes, daemon <->
 * client socket) speaks NDJSON: one JSON document per line. This
 * header provides the three primitives all of them share — a
 * full-write with EINTR retry, an incremental line buffer for
 * poll()-driven readers, and a blocking line read for the worker's
 * simple request loop. No JSON knowledge here; framing only.
 */

#ifndef BAUVM_SERVE_NDJSON_H_
#define BAUVM_SERVE_NDJSON_H_

#include <cstddef>
#include <string>

namespace bauvm
{

/**
 * Writes all of @p data to @p fd, retrying on EINTR and partial
 * writes. @return false on any other error (e.g. EPIPE with SIGPIPE
 * ignored — the standard "peer died" signal for service channels).
 */
bool writeAll(int fd, const std::string &data);

/** writeAll() of @p line plus the terminating newline. */
bool writeLine(int fd, const std::string &line);

/**
 * Reassembles lines from arbitrary read() chunks. Feed bytes as they
 * arrive; pop complete lines (without the newline) as they form.
 */
class LineBuffer
{
  public:
    void append(const char *data, std::size_t n);

    /** Extracts the next complete line. @return false when none. */
    bool pop(std::string *line);

    /** Bytes buffered but not yet forming a complete line. */
    std::size_t pendingBytes() const { return buf_.size() - start_; }

  private:
    std::string buf_;
    std::size_t start_ = 0; //!< consumed prefix, compacted lazily
};

/**
 * Blocking line read: read()s @p fd into @p buf until a full line is
 * available. @return false on EOF or error with no complete line
 * buffered (a trailing unterminated line is discarded — NDJSON peers
 * always terminate frames).
 */
bool readLineBlocking(int fd, LineBuffer *buf, std::string *line);

} // namespace bauvm

#endif // BAUVM_SERVE_NDJSON_H_
