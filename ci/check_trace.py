#!/usr/bin/env python3
"""Validate bauvm.trace/1 Chrome-trace exports (CI trace smoke).

Usage: check_trace.py TRACE_DIR

For every *.trace.json in TRACE_DIR:
  - otherData.schema must be "bauvm.trace/1";
  - event accounting must balance (total = retained + dropped);
  - every traceEvent must use a known phase ("M", "X", "i", "C") with
    non-negative timestamps (and non-negative durations for "X").

Across the directory, the TO+UE cells must show the Unobtrusive
Eviction signature: device-to-host eviction intervals overlapping
host-to-device migration intervals (busy at the same time on the two
PCIe tracks), and by more than the serialized baseline ever does.
"""

import json
import pathlib
import sys

SCHEMA = "bauvm.trace/1"
TID_PCIE_H2D = 1001
TID_PCIE_D2H = 1002


def overlap_us(a, b):
    """Overlap of two sorted, non-overlapping [start, end) span lists."""
    total = 0.0
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if lo < hi:
            total += hi - lo
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return total


def check_file(path):
    doc = json.loads(path.read_text())
    other = doc["otherData"]
    assert other["schema"] == SCHEMA, (
        f"{path.name}: schema {other['schema']!r} != {SCHEMA!r}")
    assert other["total_events"] == (
        other["retained_events"] + other["dropped_events"]), (
        f"{path.name}: event accounting does not balance")

    events = doc["traceEvents"]
    assert events, f"{path.name}: empty traceEvents"
    spans = {TID_PCIE_H2D: [], TID_PCIE_D2H: []}
    for ev in events:
        ph = ev["ph"]
        assert ph in ("M", "X", "i", "C"), (
            f"{path.name}: unknown phase {ph!r}")
        if ph == "M":
            continue
        assert ev["ts"] >= 0, f"{path.name}: negative ts"
        if ph == "X":
            assert ev["dur"] >= 0, f"{path.name}: negative dur"
            if (ev["tid"] in spans and
                    ev["name"] in ("migration", "eviction")):
                spans[ev["tid"]].append(
                    (ev["ts"], ev["ts"] + ev["dur"]))
    for tid in spans:
        spans[tid].sort()
    return other, overlap_us(spans[TID_PCIE_H2D], spans[TID_PCIE_D2H])


def main():
    if len(sys.argv) != 2:
        sys.exit(f"usage: {sys.argv[0]} TRACE_DIR")
    trace_dir = pathlib.Path(sys.argv[1])
    files = sorted(trace_dir.glob("*.trace.json"))
    if not files:
        sys.exit(f"no *.trace.json files in {trace_dir}")

    saw_toue = False
    toue_overlap = 0.0
    baseline_overlap = 0.0
    for path in files:
        other, ov = check_file(path)
        policy = other.get("policy", "")
        if policy == "TO+UE":
            saw_toue = True
            toue_overlap = max(toue_overlap, ov)
        elif policy == "BASELINE":
            baseline_overlap = max(baseline_overlap, ov)
        print(f"  ok {path.name}: {other['retained_events']} events, "
              f"{other['dropped_events']} dropped, "
              f"pcie overlap {ov:.1f} us")

    if saw_toue:
        assert toue_overlap > 0.0, (
            "TO+UE traces show no D2H/H2D overlap (expected pipelined "
            "eviction)")
        assert toue_overlap > baseline_overlap, (
            f"TO+UE overlap ({toue_overlap:.1f} us) not above baseline "
            f"({baseline_overlap:.1f} us)")
        print(f"UE signature: TO+UE overlap {toue_overlap:.1f} us > "
              f"baseline {baseline_overlap:.1f} us")
    print(f"{len(files)} trace file(s) valid against {SCHEMA}")


if __name__ == "__main__":
    main()
