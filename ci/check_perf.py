#!/usr/bin/env python3
"""Diffs a fresh perf-smoke run against the committed throughput
baseline (BENCH_sim_throughput.json, schema bauvm.perfsmoke/1).

Usage: ci/check_perf.py BASELINE.json FRESH.json [--threshold 0.15]

For every shape present in both documents — the micro "speedups"
section and the end-to-end "e2e" section (whole fig11 sweeps,
compared on cells_per_sec) — compares throughput and emits a GitHub
::warning annotation when the fresh number regressed by more than the
threshold. Shapes only present on one side are reported
informationally (new shape / retired shape).

Always exits 0: shared CI runners are far too noisy to gate on
throughput — the warnings and the uploaded artifact are the signal.
"""

import argparse
import json
import sys


def load_shapes(path):
    """Returns {shape: (rate, unit)} across both artifact sections,
    or None when the document is not a perfsmoke artifact."""
    with open(path) as f:
        doc = json.load(f)
    schema = doc.get("schema", "")
    if not schema.startswith("bauvm.perfsmoke/1"):
        print(f"::warning::check_perf: {path} has schema '{schema}', "
              "expected bauvm.perfsmoke/1 — skipping comparison")
        return None
    shapes = {}
    for shape, s in doc.get("speedups", {}).items():
        shapes[shape] = (s.get("events_per_sec", 0.0), "M/s")
    for shape, s in doc.get("e2e", {}).items():
        # cells_per_sec is the end-to-end signal; events_per_sec is
        # the fallback for artifacts predating the cells counter.
        rate = s.get("cells_per_sec") or s.get("events_per_sec", 0.0)
        shapes[shape] = (rate, "cells/s")
    return shapes


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="fractional regression that triggers a warning")
    args = ap.parse_args()

    try:
        base = load_shapes(args.baseline)
        fresh = load_shapes(args.fresh)
    except (OSError, json.JSONDecodeError) as e:
        print(f"::warning::check_perf: cannot compare ({e})")
        return 0
    if base is None or fresh is None:
        return 0

    regressions = 0
    for shape in sorted(set(base) | set(fresh)):
        # One-sided shapes still print their rate: an E2E shape that
        # just joined (or left) the artifact must show its cells/sec
        # in the summary table, not only its name.
        if shape not in fresh:
            old, unit = base[shape]
            scale = 1e6 if unit == "M/s" else 1.0
            print(f"check_perf: {shape:<16} {old / scale:8.2f} {unit} "
                  "(retired, baseline only)")
            continue
        if shape not in base:
            new, unit = fresh[shape]
            scale = 1e6 if unit == "M/s" else 1.0
            print(f"check_perf: {shape:<16} {new / scale:8.2f} {unit} "
                  "(new shape, no baseline)")
            continue
        old, unit = base[shape]
        new, _ = fresh[shape]
        if not old or not new:
            print(f"check_perf: {shape:<16} unmeasurable "
                  f"(baseline {old}, fresh {new})")
            continue
        scale = 1e6 if unit == "M/s" else 1.0
        delta = (new - old) / old
        line = (f"check_perf: {shape:<16} {old / scale:8.2f} -> "
                f"{new / scale:8.2f} {unit} ({delta:+.1%})")
        if delta < -args.threshold:
            regressions += 1
            print(f"::warning::perf regression {shape}: "
                  f"{old / scale:.2f} -> {new / scale:.2f} {unit} "
                  f"({delta:+.1%}, threshold -{args.threshold:.0%})")
        print(line)

    if regressions:
        print(f"check_perf: {regressions} shape(s) regressed beyond "
              f"{args.threshold:.0%} (non-gating)")
    else:
        print("check_perf: no shape regressed beyond "
              f"{args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
