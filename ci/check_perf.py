#!/usr/bin/env python3
"""Diffs a fresh perf-smoke run against the committed throughput
baseline (BENCH_sim_throughput.json, schema bauvm.perfsmoke/1).

Usage: ci/check_perf.py BASELINE.json FRESH.json [--threshold 0.15]

For every shape present in both documents, compares the production
events_per_sec and emits a GitHub ::warning annotation when the fresh
number regressed by more than the threshold. Shapes only present on
one side are reported informationally (new shape / retired shape).

Always exits 0: shared CI runners are far too noisy to gate on
throughput — the warnings and the uploaded artifact are the signal.
"""

import argparse
import json
import sys


def load_speedups(path):
    with open(path) as f:
        doc = json.load(f)
    schema = doc.get("schema", "")
    if not schema.startswith("bauvm.perfsmoke/1"):
        print(f"::warning::check_perf: {path} has schema '{schema}', "
              "expected bauvm.perfsmoke/1 — skipping comparison")
        return None
    return doc.get("speedups", {})


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="fractional regression that triggers a warning")
    args = ap.parse_args()

    try:
        base = load_speedups(args.baseline)
        fresh = load_speedups(args.fresh)
    except (OSError, json.JSONDecodeError) as e:
        print(f"::warning::check_perf: cannot compare ({e})")
        return 0
    if base is None or fresh is None:
        return 0

    regressions = 0
    for shape in sorted(set(base) | set(fresh)):
        if shape not in fresh:
            print(f"check_perf: {shape}: retired (baseline only)")
            continue
        if shape not in base:
            print(f"check_perf: {shape}: new shape, no baseline")
            continue
        old = base[shape].get("events_per_sec", 0.0)
        new = fresh[shape].get("events_per_sec", 0.0)
        if not old or not new:
            continue
        delta = (new - old) / old
        line = (f"check_perf: {shape:<16} {old / 1e6:8.2f} -> "
                f"{new / 1e6:8.2f} M/s ({delta:+.1%})")
        if delta < -args.threshold:
            regressions += 1
            print(f"::warning::perf regression {shape}: "
                  f"{old / 1e6:.2f} -> {new / 1e6:.2f} M/s "
                  f"({delta:+.1%}, threshold -{args.threshold:.0%})")
        print(line)

    if regressions:
        print(f"check_perf: {regressions} shape(s) regressed beyond "
              f"{args.threshold:.0%} (non-gating)")
    else:
        print("check_perf: no shape regressed beyond "
              f"{args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
