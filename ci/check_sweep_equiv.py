#!/usr/bin/env python3
"""Asserts that sweep documents are equivalent modulo provenance.

Usage: ci/check_sweep_equiv.py REFERENCE.json OTHER.json [OTHER2.json ...]

The sweep service's contract is that sharding, hard kills, and
cache-resumed reruns never change simulated results: a sweep produced
by bauvm_sweepd across N forked workers (possibly SIGKILLed and
resubmitted) must match the serial in-process run cell for cell.

Only execution provenance is allowed to differ — wall-clock timings,
worker identity, and cache attribution.  Everything else, including
every simulated counter, seed, digest, and the cell order, must be
identical.  Exits 1 with a field-level diff on the first mismatch:
unlike the perf smoke, this is a correctness gate.

bauvm.sweep/1.3 multi-tenant cells carry a per-tenant result array
(result.tenants); every field in it is deterministic, so the generic
diff covers it with no special casing.  As a structural sanity check
we additionally require tenant ids to be 0..n-1 in order — a
mis-merged shard that reordered or dropped a tenant would corrupt
that before it corrupted any counter.
"""

import json
import sys

# Fields that legitimately differ between executions of the same cell:
# timings, parallelism, worker identity, and cache attribution.
PROVENANCE = {
    "wall_s",
    "host_wall_s",
    "events_per_sec",
    "elapsed_s",
    "jobs",
    "worker_pid",
    "hostname",
    "cached",
}


def strip(node):
    if isinstance(node, dict):
        return {k: strip(v) for k, v in node.items()
                if k not in PROVENANCE}
    if isinstance(node, list):
        return [strip(v) for v in node]
    return node


def diff(ref, other, path=""):
    """Yields human-readable paths where the two documents differ."""
    if type(ref) is not type(other):
        yield f"{path or '/'}: type {type(ref).__name__} vs " \
              f"{type(other).__name__}"
        return
    if isinstance(ref, dict):
        for key in sorted(set(ref) | set(other)):
            sub = f"{path}.{key}" if path else key
            if key not in ref:
                yield f"{sub}: only in candidate"
            elif key not in other:
                yield f"{sub}: only in reference"
            else:
                yield from diff(ref[key], other[key], sub)
    elif isinstance(ref, list):
        if len(ref) != len(other):
            yield f"{path}: length {len(ref)} vs {len(other)}"
            return
        for i, (a, b) in enumerate(zip(ref, other)):
            yield from diff(a, b, f"{path}[{i}]")
    elif ref != other:
        yield f"{path}: {ref!r} vs {other!r}"


def check_tenant_ids(doc, path):
    """Yields complaints for tenant arrays whose ids aren't 0..n-1."""
    for i, cell in enumerate(doc.get("cells", [])):
        tenants = (cell.get("result") or {}).get("tenants")
        if tenants is None:
            continue
        ids = [t.get("id") for t in tenants]
        if ids != list(range(len(ids))):
            yield (f"{path}: cells[{i}].result.tenants ids {ids} "
                   f"are not 0..{len(ids) - 1} in order")


def main():
    if len(sys.argv) < 3:
        print(__doc__.strip().splitlines()[2])
        return 2
    ref_path = sys.argv[1]
    with open(ref_path) as f:
        ref = strip(json.load(f))
    if not str(ref.get("schema", "")).startswith("bauvm.sweep/1"):
        print(f"check_sweep_equiv: {ref_path} is not a bauvm.sweep/1 "
              "document")
        return 1
    bad_ids = list(check_tenant_ids(ref, ref_path))
    if bad_ids:
        for m in bad_ids:
            print(f"check_sweep_equiv: {m}")
        return 1

    failed = 0
    for path in sys.argv[2:]:
        with open(path) as f:
            cand = strip(json.load(f))
        mismatches = list(check_tenant_ids(cand, path))
        mismatches += list(diff(ref, cand))
        if mismatches:
            failed += 1
            print(f"check_sweep_equiv: {path} differs from {ref_path} "
                  f"beyond provenance ({len(mismatches)} field(s)):")
            for m in mismatches[:20]:
                print(f"  {m}")
            if len(mismatches) > 20:
                print(f"  ... {len(mismatches) - 20} more")
        else:
            cells = len(cand.get("cells", []))
            print(f"check_sweep_equiv: {path} == {ref_path} "
                  f"({cells} cells, provenance stripped)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
