/**
 * @file
 * Proves the event kernel's steady-state hot path performs zero heap
 * allocations: a counting global operator new/delete is toggled around
 * a schedule/cancel/run workload once the record slabs and the
 * far-future heap's vector capacity are warm. Lives in its own binary
 * so the global hook cannot perturb (or be perturbed by) the main test
 * suite.
 */

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <new>

#include "src/sim/event_queue.h"

namespace
{
std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocs{0};
} // namespace

void *
operator new(std::size_t n)
{
    if (g_counting.load(std::memory_order_relaxed))
        g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return operator new(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace bauvm
{
namespace
{

/** One round of representative traffic: near + far + cancel churn. */
std::uint64_t
churn(EventQueue &q)
{
    std::uint64_t sink = 0;
    std::array<EventId, 640> ids{};
    std::size_t n = 0;
    const Cycle base = q.now();
    for (int i = 0; i < 512; ++i) {
        // Near-future: calendar-ring traffic (hit latencies, ticks).
        ids[n++] = q.scheduleAt(base + 1 + i % 1000,
                                [&sink] { ++sink; });
    }
    for (int i = 0; i < 128; ++i) {
        // Far-future: heap traffic (PCIe completions, batch timers).
        ids[n++] = q.scheduleAt(base + 2000 + i * 37 % 50000,
                                [&sink] { ++sink; });
    }
    for (std::size_t i = 0; i < n; i += 3)
        q.cancel(ids[i]);
    q.run();
    return sink;
}

TEST(EventQueueAlloc, SteadyStateHotPathIsAllocationFree)
{
    EventQueue q;
    // Warm-up rounds grow the slab arena and the heap vector to their
    // steady-state capacity (identical traffic, so capacity suffices).
    churn(q);
    churn(q);

    const std::uint64_t fallbacks_before =
        EventQueue::Callback::heapFallbacks();
    g_allocs.store(0);
    g_counting.store(true);
    const std::uint64_t sink = churn(q);
    g_counting.store(false);

    EXPECT_GT(sink, 0u);
    EXPECT_EQ(g_allocs.load(), 0u)
        << "steady-state schedule/cancel/run must not allocate";
    EXPECT_EQ(EventQueue::Callback::heapFallbacks(), fallbacks_before)
        << "captures within kInlineCallbackBytes must stay inline";
}

} // namespace
} // namespace bauvm
