/**
 * @file
 * Proves the UVM runtime's steady-state fault path performs zero heap
 * allocations: a counting global operator new/delete is toggled around
 * a self-sustaining fault/prefetch/migrate/evict loop once the dense
 * page-metadata table, the waiter slab, the batch scratch vectors and
 * the batch-record vector's capacity are warm. Lives in its own binary
 * so the global hook cannot perturb (or be perturbed by) the main test
 * suite.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>

#include "src/mem/memory_hierarchy.h"
#include "src/sim/event_queue.h"
#include "src/uvm/gpu_memory_manager.h"
#include "src/uvm/uvm_runtime.h"

namespace
{
std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocs{0};
} // namespace

void *
operator new(std::size_t n)
{
    if (g_counting.load(std::memory_order_relaxed))
        g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return operator new(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace bauvm
{
namespace
{

/**
 * Self-sustaining fault traffic: keeps a handful of faults in flight
 * over a footprint 8x device capacity, so every batch migrates,
 * prefetches around, and evicts under pressure. Each woken waiter
 * schedules the next fault one cycle later (the SM replay shape)
 * until the round's budget is spent.
 */
template <typename Runtime>
class FaultLoop
{
  public:
    FaultLoop(Runtime &rt, EventQueue &q) : rt_(rt), q_(q) {}

    /** Runs one round of @p faults faults; returns waiters woken. */
    std::uint64_t
    run(std::uint64_t faults)
    {
        budget_ = faults;
        issued_ = 0;
        woken_ = 0;
        for (int i = 0; i < 8; ++i)
            issue();
        q_.run();
        return woken_;
    }

  private:
    static constexpr PageNum kFootprint = 64;

    void
    issue()
    {
        if (issued_ >= budget_)
            return;
        // Stride-7 walk: coprime with the footprint, so successive
        // faults leave the resident set and come back (refaults).
        const PageNum vpn = (issued_ * 7) % kFootprint;
        ++issued_;
        FaultLoop *self = this;
        rt_.onPageFault(vpn, [self](Cycle) {
            ++self->woken_;
            self->q_.scheduleAfter(1, [self] { self->issue(); });
        });
    }

    Runtime &rt_;
    EventQueue &q_;
    std::uint64_t budget_ = 0;
    std::uint64_t issued_ = 0;
    std::uint64_t woken_ = 0;
};

/**
 * One independent fault-loop stack — the per-unit state an intra-cell
 * worker thread owns. Warm-up mirrors the single-threaded test.
 */
template <ObserverMode M>
struct LoopStack {
    UvmConfig config;
    EventQueue events;
    GpuMemoryManager manager;
    MemoryHierarchyT<M> hierarchy;
    UvmRuntimeT<M> runtime;
    FaultLoop<UvmRuntimeT<M>> loop;

    LoopStack()
        : config(makeConfig()), manager(config, /*capacity_pages=*/8),
          hierarchy(MemConfig{}, 1, config.page_bytes,
                    manager.pageTable()),
          runtime(config, events, manager, hierarchy),
          loop(runtime, events)
    {
        runtime.registerAllocation(0, 64 * config.page_bytes);
    }

    static UvmConfig
    makeConfig()
    {
        UvmConfig c;
        c.root_chunk_pages = 4;
        return c;
    }

    void
    warmUp(std::uint64_t faults)
    {
        loop.run(faults);
        const std::uint64_t before = runtime.batches();
        loop.run(faults);
        const std::uint64_t per_round = runtime.batches() - before;
        ASSERT_GT(per_round, 0u);
        while (runtime.batchRecords().capacity() -
                   runtime.batchRecords().size() <
               2 * per_round + 8)
            loop.run(faults);
    }
};

TEST(MemAlloc, SteadyStateFaultPathIsAllocationFree)
{
    UvmConfig config;
    config.root_chunk_pages = 4; // exercise the chunk page FIFOs
    EventQueue events;
    GpuMemoryManager manager(config, /*capacity_pages=*/8);
    MemoryHierarchy hierarchy(MemConfig{}, 1, config.page_bytes,
                              manager.pageTable());
    UvmRuntime runtime(config, events, manager, hierarchy);
    runtime.registerAllocation(0, 64 * config.page_bytes);

    FaultLoop<UvmRuntime> loop(runtime, events);
    const std::uint64_t kFaults = 512;

    // Warm-up: grow the metadata table, waiter slab, batch scratch and
    // event slabs to steady-state capacity, then keep running rounds
    // until the batch-record vector has headroom for the measured
    // round (its once-per-batch push_back is the only amortized growth
    // left on the path).
    loop.run(kFaults);
    const std::uint64_t before = runtime.batches();
    loop.run(kFaults);
    const std::uint64_t per_round = runtime.batches() - before;
    ASSERT_GT(per_round, 0u);
    while (runtime.batchRecords().capacity() -
               runtime.batchRecords().size() <
           2 * per_round + 8)
        loop.run(kFaults);

    const std::uint64_t fallbacks_before =
        UvmRuntime::WakeFn::heapFallbacks();
    g_allocs.store(0);
    g_counting.store(true);
    const std::uint64_t woken = loop.run(kFaults);
    g_counting.store(false);

    EXPECT_EQ(woken, kFaults);
    EXPECT_GT(manager.evictions(), 0u) << "loop must run under pressure";
    EXPECT_GT(runtime.prefetchedPages(), 0u)
        << "loop must exercise the prefetcher";
    EXPECT_EQ(g_allocs.load(), 0u)
        << "steady-state fault/migrate/evict/wake must not allocate";
    EXPECT_EQ(UvmRuntime::WakeFn::heapFallbacks(), fallbacks_before)
        << "waiter captures within the inline budget must stay inline";
}

/**
 * The observer-specialized {None} variant — the one a hookless sweep
 * cell actually instantiates — must stay allocation-free in steady
 * state even when two intra-cell worker threads drive independent
 * stacks concurrently (the --cell-threads shape). The global
 * operator-new hook counts allocations process-wide, so a single
 * stray allocation on either worker fails the test.
 */
TEST(MemAlloc, SpecializedNonePathIsAllocationFreeOnTwoThreads)
{
    constexpr std::uint64_t kFaults = 512;
    LoopStack<ObserverMode::None> stacks[2];
    stacks[0].warmUp(kFaults);
    stacks[1].warmUp(kFaults);

    const std::uint64_t fallbacks_before =
        UvmRuntimeBase::WakeFn::heapFallbacks();
    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    std::atomic<std::uint64_t> woken[2] = {{0}, {0}};
    auto worker = [&](int u) {
        // Thread startup may allocate; counting begins only once both
        // workers sit in this spin loop.
        ready.fetch_add(1);
        while (!go.load(std::memory_order_acquire)) {
        }
        woken[u].store(stacks[u].loop.run(kFaults));
    };
    std::thread t0(worker, 0);
    std::thread t1(worker, 1);
    while (ready.load() != 2) {
    }
    g_allocs.store(0);
    g_counting.store(true);
    go.store(true, std::memory_order_release);
    t0.join();
    t1.join();
    g_counting.store(false);

    for (int u = 0; u < 2; ++u) {
        EXPECT_EQ(woken[u].load(), kFaults) << "worker " << u;
        EXPECT_GT(stacks[u].manager.evictions(), 0u)
            << "worker " << u << " must run under pressure";
    }
    EXPECT_EQ(g_allocs.load(), 0u)
        << "specialized {None} steady state must not allocate on "
           "either worker";
    EXPECT_EQ(UvmRuntimeBase::WakeFn::heapFallbacks(), fallbacks_before);
}

} // namespace
} // namespace bauvm
