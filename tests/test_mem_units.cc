/**
 * @file
 * Unit tests for TLB, cache, page table, page-walk cache, walker and
 * DRAM models.
 */

#include <gtest/gtest.h>

#include "src/mem/cache.h"
#include "src/mem/dram.h"
#include "src/mem/page_table.h"
#include "src/mem/page_table_walker.h"
#include "src/mem/page_walk_cache.h"
#include "src/mem/tlb.h"

namespace bauvm
{
namespace
{

TEST(Tlb, HitMissCounting)
{
    Tlb tlb(TlbConfig{4, 0, 1}, "t");
    EXPECT_FALSE(tlb.lookup(1));
    tlb.insert(1);
    EXPECT_TRUE(tlb.lookup(1));
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 1u);
    EXPECT_DOUBLE_EQ(tlb.hitRate(), 0.5);
}

TEST(Tlb, CapacityEviction)
{
    Tlb tlb(TlbConfig{2, 0, 1}, "t");
    tlb.insert(1);
    tlb.insert(2);
    tlb.lookup(1); // refresh
    tlb.insert(3); // evicts 2
    EXPECT_TRUE(tlb.lookup(1));
    EXPECT_FALSE(tlb.lookup(2));
    EXPECT_TRUE(tlb.lookup(3));
}

TEST(Tlb, InvalidateShootdown)
{
    Tlb tlb(TlbConfig{4, 0, 1}, "t");
    tlb.insert(9);
    tlb.invalidate(9);
    EXPECT_FALSE(tlb.lookup(9));
}

TEST(Tlb, FlushDropsAll)
{
    Tlb tlb(TlbConfig{4, 0, 1}, "t");
    tlb.insert(1);
    tlb.insert(2);
    tlb.flush();
    EXPECT_FALSE(tlb.lookup(1));
    EXPECT_FALSE(tlb.lookup(2));
}

TEST(Cache, HitAfterFill)
{
    Cache c(CacheConfig{1024, 4, 128, 10}, "c");
    EXPECT_FALSE(c.access(0, false)); // miss fills
    EXPECT_TRUE(c.access(0, false));
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, EvictionCountsOnConflict)
{
    // 1024B / 128B lines / 4-way = 2 sets; keys with same parity share
    // a set.
    Cache c(CacheConfig{1024, 4, 128, 10}, "c");
    for (std::uint64_t k = 0; k < 5; ++k)
        c.access(k * 2, false); // all in set 0
    EXPECT_EQ(c.evictions(), 1u);
}

TEST(Cache, VersionedKeysSeparate)
{
    Cache c(CacheConfig{1024, 4, 128, 10}, "c");
    const std::uint64_t line = 12;
    c.access(line, false);
    // Same line, bumped page version => different key => miss.
    const std::uint64_t versioned = (1ull << 40) ^ line;
    EXPECT_FALSE(c.access(versioned, false));
}

TEST(PageTable, MapUnmapResidency)
{
    PageTable pt;
    EXPECT_FALSE(pt.isResident(5));
    pt.map(5, 3);
    EXPECT_TRUE(pt.isResident(5));
    EXPECT_EQ(pt.frameOf(5), 3u);
    EXPECT_EQ(pt.residentPages(), 1u);
    pt.unmap(5);
    EXPECT_FALSE(pt.isResident(5));
}

TEST(PageTable, VersionBumpsOnUnmap)
{
    PageTable pt;
    EXPECT_EQ(pt.version(5), 0u);
    pt.map(5, 1);
    pt.unmap(5);
    EXPECT_EQ(pt.version(5), 1u);
    pt.map(5, 2);
    pt.unmap(5);
    EXPECT_EQ(pt.version(5), 2u);
}

TEST(PageWalkCache, HitAfterInsertPerLevel)
{
    PageWalkCache pwc(16);
    EXPECT_FALSE(pwc.lookup(2, 0x1234));
    pwc.insert(2, 0x1234);
    EXPECT_TRUE(pwc.lookup(2, 0x1234));
    // A different level is a separate entry.
    EXPECT_FALSE(pwc.lookup(3, 0x1234));
}

TEST(PageWalkCache, NearbyPagesShareUpperLevels)
{
    PageWalkCache pwc(16);
    pwc.insert(4, 100);
    // Pages within the same level-4 region share the entry
    // (the key drops 9*4 = 36 low bits).
    EXPECT_TRUE(pwc.lookup(4, 100 + 1));
}

TEST(PageTableWalker, ColdWalkCostsMemoryPerLevel)
{
    MemConfig config;
    config.page_table_levels = 4;
    PageTableWalker w(config);
    // Cold: 3 upper-level misses + leaf = 4 * dram_latency.
    const Cycle done = w.walk(0, 0);
    EXPECT_EQ(done, 4 * config.dram_latency);
}

TEST(PageTableWalker, WarmWalkUsesWalkCache)
{
    MemConfig config;
    PageTableWalker w(config);
    w.walk(0, 0);
    const Cycle start = 10000;
    const Cycle done = w.walk(1, start); // same upper levels as page 0
    EXPECT_EQ(done - start,
              3 * config.walk_cache_latency + config.dram_latency);
}

TEST(PageTableWalker, ThreadLimitQueues)
{
    MemConfig config;
    config.walker_threads = 2;
    config.walk_cache_entries = 4;
    PageTableWalker w(config);
    // Three concurrent cold walks with only two threads: the third
    // waits for the first to finish.
    const Cycle d1 = w.walk(0, 0);
    const Cycle d2 = w.walk(1ull << 40, 0);
    const Cycle d3 = w.walk(2ull << 40, 0);
    EXPECT_GE(d3, d1);
    EXPECT_GT(w.queueingCycles(), 0u);
    (void)d2;
}

TEST(Dram, LatencyPlusBandwidth)
{
    MemConfig config;
    Dram d(config);
    const Cycle done = d.access(128, 0);
    EXPECT_EQ(done, config.dram_latency + 128 / config.dram_bytes_per_cycle);
}

TEST(Dram, ChannelSerializesBackToBack)
{
    MemConfig config;
    Dram d(config);
    const Cycle d1 = d.access(128, 0);
    const Cycle d2 = d.access(128, 0);
    EXPECT_EQ(d2, d1 + 128 / config.dram_bytes_per_cycle);
    EXPECT_GT(d.queueingCycles(), 0u);
}

TEST(Dram, IdleChannelNoQueueing)
{
    MemConfig config;
    Dram d(config);
    d.access(128, 0);
    const std::uint64_t q = d.queueingCycles();
    d.access(128, 100000);
    EXPECT_EQ(d.queueingCycles(), q);
}

} // namespace
} // namespace bauvm
