/**
 * @file
 * Tests for the online model auditor (src/check): seeded-mutation
 * coverage of every catalogued invariant (each illegal event sequence
 * must panic with a structured diagnostic), the zero-perturbation
 * guarantee (auditing must not change simulated results), the
 * TLB/page-table coherence edges (eviction while translated, stale
 * walk outcomes), the SimHooks/WorkloadRegistry API surface, and the
 * audited-vs-unaudited fig11 matrix at Small scale.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/check/model_auditor.h"
#include "src/check/sim_hooks.h"
#include "src/core/experiment.h"
#include "src/core/presets.h"
#include "src/core/report.h"
#include "src/core/system.h"
#include "src/graph/graph_cache.h"
#include "src/mem/memory_hierarchy.h"
#include "src/mem/page_table.h"
#include "src/runner/sweep_runner.h"
#include "src/sim/log.h"
#include "src/trace/trace_sink.h"
#include "src/workloads/workload_registry.h"

namespace bauvm
{
namespace
{

/** Runs @p fn expecting a panic; returns the diagnostic message. */
template <typename Fn>
std::string
expectAuditPanic(Fn &&fn)
{
    ScopedAbortCapture capture;
    try {
        fn();
    } catch (const SimAbort &e) {
        EXPECT_TRUE(e.isPanic());
        return e.what();
    }
    ADD_FAILURE() << "expected the auditor to panic";
    return "";
}

/** Legal interrupt -> batch-begin preamble. */
void
beginBatch(ModelAuditor &a)
{
    a.onInterruptRaised(0);
    a.onBatchBegin(0, /*chained=*/false);
}

/** Legal in-batch migration of @p vpn: schedule, reserve, commit. */
void
migratePage(ModelAuditor &a, PageNum vpn, std::uint64_t committed_after)
{
    a.onMigrationScheduled(vpn, 0, 10, 20, 64);
    a.onFrameReserved(committed_after);
    a.onPageCommitted(vpn, 20, committed_after);
}

// ---- per-page residency state machine ------------------------------

TEST(AuditorResidency, DoubleMigrationPanics)
{
    ModelAuditor a(UvmConfig{});
    beginBatch(a);
    a.onMigrationScheduled(7, 0, 10, 20, 64);
    const std::string msg = expectAuditPanic([&] {
        a.onMigrationScheduled(7, 0, 20, 30, 64);
    });
    EXPECT_NE(msg.find("double migration"), std::string::npos);
    EXPECT_NE(msg.find("page-residency"), std::string::npos);
}

TEST(AuditorResidency, MigrationOfResidentPagePanics)
{
    ModelAuditor a(UvmConfig{});
    beginBatch(a);
    migratePage(a, 7, 0);
    const std::string msg = expectAuditPanic([&] {
        a.onMigrationScheduled(7, 0, 30, 40, 64);
    });
    EXPECT_NE(msg.find("already resident"), std::string::npos);
}

TEST(AuditorResidency, CommitWithoutMigrationPanics)
{
    ModelAuditor a(UvmConfig{});
    expectAuditPanic([&] { a.onPageCommitted(7, 0, 0); });
}

TEST(AuditorResidency, DoubleCommitPanics)
{
    ModelAuditor a(UvmConfig{});
    beginBatch(a);
    migratePage(a, 7, 0);
    const std::string msg =
        expectAuditPanic([&] { a.onPageCommitted(7, 0, 0); });
    EXPECT_NE(msg.find("double commit"), std::string::npos);
}

TEST(AuditorResidency, EvictionOfNonResidentPagePanics)
{
    ModelAuditor a(UvmConfig{});
    const std::string msg =
        expectAuditPanic([&] { a.onEvictionBegin(5, 0, 0); });
    EXPECT_NE(msg.find("non-resident victim"), std::string::npos);
}

TEST(AuditorResidency, DoubleEvictionPanics)
{
    ModelAuditor a(UvmConfig{});
    beginBatch(a);
    migratePage(a, 5, 0);
    a.onEvictionBegin(5, 0, 0);
    const std::string msg =
        expectAuditPanic([&] { a.onEvictionBegin(5, 0, 0); });
    EXPECT_NE(msg.find("double eviction"), std::string::npos);
}

TEST(AuditorResidency, EvictionCompleteWithoutBeginPanics)
{
    ModelAuditor a(UvmConfig{});
    expectAuditPanic([&] { a.onEvictionComplete(5, 0); });
}

TEST(AuditorResidency, PreloadOfInFlightPagePanics)
{
    ModelAuditor a(UvmConfig{});
    a.onPreload(5);
    expectAuditPanic([&] { a.onPreload(5); });
}

// ---- GPU-memory occupancy conservation -----------------------------

TEST(AuditorOccupancy, ManagerCounterMismatchPanics)
{
    ModelAuditor a(UvmConfig{});
    a.onCapacitySet(10);
    // Shadow expects 1 committed frame; the "manager" reports 2.
    const std::string msg =
        expectAuditPanic([&] { a.onFrameReserved(2); });
    EXPECT_NE(msg.find("occupancy-conservation"), std::string::npos);
}

TEST(AuditorOccupancy, ReservationBeyondCapacityPanics)
{
    ModelAuditor a(UvmConfig{});
    a.onCapacitySet(1);
    a.onFrameReserved(1);
    expectAuditPanic([&] { a.onFrameReserved(2); });
}

TEST(AuditorOccupancy, CapacityShrinkBelowCommittedPanics)
{
    ModelAuditor a(UvmConfig{});
    a.onCapacitySet(4);
    a.onFrameReserved(1);
    a.onFrameReserved(2);
    expectAuditPanic([&] { a.onCapacitySet(1); });
}

TEST(AuditorOccupancy, UnlimitedModeNeverCounts)
{
    // Capacity 0 = unlimited: the manager never increments its status
    // tracker, and neither must the shadow.
    ModelAuditor a(UvmConfig{});
    beginBatch(a);
    migratePage(a, 1, 0);
    migratePage(a, 2, 0);
    EXPECT_EQ(a.shadowCommitted(), 0u);
    EXPECT_EQ(a.shadowResident(), 2u);
}

// ---- batch lifecycle -----------------------------------------------

TEST(AuditorBatch, BatchBeginWithoutInterruptPanics)
{
    ModelAuditor a(UvmConfig{});
    const std::string msg = expectAuditPanic([&] {
        a.onBatchBegin(0, /*chained=*/false);
    });
    EXPECT_NE(msg.find("batch-lifecycle"), std::string::npos);
    EXPECT_NE(msg.find("no interrupt round trip"), std::string::npos);
}

TEST(AuditorBatch, ChainedBatchBeginFromInterruptPanics)
{
    // A chained batch skips the interrupt; seeing one while an
    // interrupt is pending means the runtime lost a round trip.
    ModelAuditor a(UvmConfig{});
    a.onInterruptRaised(0);
    expectAuditPanic([&] { a.onBatchBegin(0, /*chained=*/true); });
}

TEST(AuditorBatch, InterruptWhileBusyPanics)
{
    ModelAuditor a(UvmConfig{});
    a.onInterruptRaised(0);
    expectAuditPanic([&] { a.onInterruptRaised(1); });
}

TEST(AuditorBatch, BatchEndWhileIdlePanics)
{
    ModelAuditor a(UvmConfig{});
    expectAuditPanic([&] { a.onBatchEnd(0, 0, 0); });
}

TEST(AuditorBatch, PreemptiveEvictionAfterMigrationPanics)
{
    ModelAuditor a(UvmConfig{});
    beginBatch(a);
    a.onMigrationScheduled(3, 0, 10, 20, 64);
    const std::string msg =
        expectAuditPanic([&] { a.onPreemptiveEviction(1); });
    EXPECT_NE(msg.find("top-half"), std::string::npos);
}

TEST(AuditorBatch, PreemptiveEvictionOutsideBatchPanics)
{
    ModelAuditor a(UvmConfig{});
    expectAuditPanic([&] { a.onPreemptiveEviction(0); });
}

TEST(AuditorBatch, MigrationOutsideBatchPanics)
{
    ModelAuditor a(UvmConfig{});
    expectAuditPanic([&] {
        a.onMigrationScheduled(3, 0, 10, 20, 64);
    });
}

TEST(AuditorBatch, PageCountMismatchAtBatchEndPanics)
{
    ModelAuditor a(UvmConfig{});
    beginBatch(a);
    migratePage(a, 3, 0);
    const std::string msg = expectAuditPanic([&] {
        a.onBatchEnd(0, /*fault_pages=*/2, /*prefetch_pages=*/0);
    });
    EXPECT_NE(msg.find("demand+prefetch"), std::string::npos);
}

TEST(AuditorBatch, ChainedBatchIsLegal)
{
    ModelAuditor a(UvmConfig{});
    beginBatch(a);
    migratePage(a, 3, 0);
    a.onBatchEnd(0, 1, 0);
    a.onBatchBegin(0, /*chained=*/true); // no interrupt round trip
    migratePage(a, 4, 0);
    a.onBatchEnd(0, 1, 0);
    EXPECT_EQ(a.shadowResident(), 2u);
}

// ---- fault-buffer accounting ---------------------------------------

TEST(AuditorFaultBuffer, SizeMismatchPanics)
{
    ModelAuditor a(UvmConfig{});
    // Shadow inserts the fault; the "hardware" reports an empty buffer.
    const std::string msg = expectAuditPanic([&] {
        a.onFaultBuffered(9, 0, /*observed_entries=*/0,
                          /*observed_overflow=*/0);
    });
    EXPECT_NE(msg.find("fault-buffer-accounting"), std::string::npos);
}

TEST(AuditorFaultBuffer, DrainCountMismatchPanics)
{
    ModelAuditor a(UvmConfig{});
    a.onFaultBuffered(9, 0, 1, 0);
    expectAuditPanic([&] { a.onFaultDrained(0, 0, 0); });
}

TEST(AuditorFaultBuffer, OverflowReplicaTracksRefill)
{
    UvmConfig config;
    config.fault_buffer_entries = 2;
    ModelAuditor a(config);
    a.onFaultBuffered(1, 0, 1, 0);
    a.onFaultBuffered(2, 0, 2, 0);
    a.onFaultBuffered(3, 0, 2, 1); // overflows
    a.onFaultBuffered(3, 0, 2, 1); // merges inside the overflow queue
    a.onFaultDrained(2, 1, 0);     // drain refills vpn 3 from overflow
    a.onFaultDrained(1, 0, 0);
}

// ---- PCIe conservation ---------------------------------------------

TEST(AuditorPcie, NonMonotonicChannelStartPanics)
{
    ModelAuditor a(UvmConfig{});
    a.onPcieTransfer(/*h2d=*/true, 64, 10, 20);
    const std::string msg = expectAuditPanic([&] {
        a.onPcieTransfer(true, 64, 5, 15);
    });
    EXPECT_NE(msg.find("FIFO"), std::string::npos);
}

TEST(AuditorPcie, ChannelsAreIndependentlyMonotonic)
{
    ModelAuditor a(UvmConfig{});
    a.onPcieTransfer(true, 64, 100, 110);
    a.onPcieTransfer(false, 64, 10, 20); // D2H has its own FIFO order
    a.onPcieTransfer(true, 64, 100, 105); // equal begin is legal
}

TEST(AuditorPcie, EmptyTransferWindowPanics)
{
    ModelAuditor a(UvmConfig{});
    expectAuditPanic([&] { a.onPcieTransfer(true, 64, 10, 10); });
}

TEST(AuditorPcie, MigrationWindowBeforeSchedulePanics)
{
    ModelAuditor a(UvmConfig{});
    beginBatch(a);
    expectAuditPanic([&] {
        a.onMigrationScheduled(3, /*now=*/50, /*wire_begin=*/40,
                               /*wire_end=*/60, 64);
    });
}

// ---- TLB / page-table coherence ------------------------------------

TEST(AuditorTlb, HitForNonResidentPagePanics)
{
    ModelAuditor a(UvmConfig{});
    const std::string msg =
        expectAuditPanic([&] { a.onTranslationHit(7); });
    EXPECT_NE(msg.find("tlb-coherence"), std::string::npos);
}

TEST(AuditorTlb, InsertForNonResidentPagePanics)
{
    ModelAuditor a(UvmConfig{});
    expectAuditPanic([&] { a.onTranslationInsert(7); });
}

TEST(AuditorTlb, WalkOutcomeDivergencePanics)
{
    ModelAuditor a(UvmConfig{});
    // Shadow says host-resident; the walker claims a translation.
    expectAuditPanic([&] {
        a.onWalkResolved(7, 0, /*observed_fault=*/false);
    });
}

TEST(AuditorTlb, InvalidateClearsCachedTranslations)
{
    ModelAuditor a(UvmConfig{});
    beginBatch(a);
    migratePage(a, 7, 0);
    a.onTranslationInsert(7);
    EXPECT_TRUE(a.translationCached(7));
    a.onTranslationInvalidate(7);
    EXPECT_FALSE(a.translationCached(7));
}

// ---- finalize conservation -----------------------------------------

TEST(AuditorFinalize, LeakedInFlightTransferPanics)
{
    ModelAuditor a(UvmConfig{});
    a.onPreload(3); // in flight H2D, never committed
    RunResult r;
    const std::string msg =
        expectAuditPanic([&] { a.finalize(r, 0, 0); });
    EXPECT_NE(msg.find("in flight H2D"), std::string::npos);
}

TEST(AuditorFinalize, ResidentCountMismatchPanics)
{
    ModelAuditor a(UvmConfig{});
    RunResult r;
    expectAuditPanic([&] { a.finalize(r, 0, /*resident=*/3); });
}

TEST(AuditorFinalize, RunResultMigrationMismatchPanics)
{
    ModelAuditor a(UvmConfig{});
    RunResult r;
    r.migrations = 1; // shadow saw none
    expectAuditPanic([&] { a.finalize(r, 0, 0); });
}

TEST(AuditorFinalize, PcieByteMismatchPanics)
{
    ModelAuditor a(UvmConfig{});
    RunResult r;
    r.pcie_h2d_bytes = 64; // nothing crossed the shadow link
    const std::string msg =
        expectAuditPanic([&] { a.finalize(r, 0, 0); });
    EXPECT_NE(msg.find("pcie-conservation"), std::string::npos);
}

TEST(AuditorFinalize, ModelSequencePassesEndToEnd)
{
    ModelAuditor a(UvmConfig{});
    a.setContext("unit");
    a.onCapacitySet(4);

    // Batch 1: fault on page 1, migrate it.
    a.onFaultBuffered(1, 0, 1, 0);
    a.onInterruptRaised(0);
    a.onBatchBegin(1, false);
    a.onFaultDrained(1, 0, 0);
    a.onMigrationScheduled(1, 1, 10, 20, 64);
    a.onPcieTransfer(true, 64, 10, 20);
    a.onFrameReserved(1);
    a.onPageCommitted(1, 20, 1);
    a.onBatchEnd(20, 1, 0);

    // The page is translated, then evicted (shootdown included).
    a.onWalkResolved(1, 21, false);
    a.onTranslationInsert(1);
    a.onTranslationHit(1);
    a.onEvictionBegin(1, 30, 1);
    a.onTranslationInvalidate(1);
    a.onEvictionTransfer(1, 30, 40, 64);
    a.onPcieTransfer(false, 64, 30, 40);
    a.onEvictionComplete(1, 0);

    // Batch 2: page 2 faults and stays resident.
    a.onFaultBuffered(2, 50, 1, 0);
    a.onInterruptRaised(50);
    a.onBatchBegin(51, false);
    a.onPreemptiveEviction(51); // legal: before any migration
    a.onFaultDrained(1, 0, 0);
    a.onMigrationScheduled(2, 51, 60, 70, 64);
    a.onPcieTransfer(true, 64, 60, 70);
    a.onFrameReserved(1);
    a.onPageCommitted(2, 70, 1);
    a.onBatchEnd(70, 1, 0);

    RunResult r;
    r.migrations = 2;
    r.evictions = 1;
    r.batches = 2;
    r.pcie_h2d_bytes = 128;
    r.pcie_d2h_bytes = 64;
    a.finalize(r, /*committed=*/1, /*resident=*/1);

    EXPECT_GT(a.checksPerformed(), 0u);
    EXPECT_EQ(a.shadowResident(), 1u);
    EXPECT_EQ(a.shadowCommitted(), 1u);
}

// ---- diagnostics ---------------------------------------------------

TEST(AuditorDiagnostics, ViolationReportsStructuredFields)
{
    ModelAuditor a(UvmConfig{});
    a.setContext("BFS-TWC/TO+UE");
    const std::string msg =
        expectAuditPanic([&] { a.onEvictionBegin(42, 0, 0); });
    EXPECT_NE(msg.find("invariant"), std::string::npos);
    EXPECT_NE(msg.find("cell:     BFS-TWC/TO+UE"), std::string::npos);
    EXPECT_NE(msg.find("cycle:"), std::string::npos);
    EXPECT_NE(msg.find("page:     42"), std::string::npos);
    EXPECT_NE(msg.find("expected:"), std::string::npos);
    EXPECT_NE(msg.find("observed:"), std::string::npos);
}

TEST(AuditorDiagnostics, ViolationAppendsTraceTailWhenTracing)
{
    TraceSink trace(8);
    trace.instant(TraceEventType::PageFault, traceTrackSm(0), 5, 42);
    ModelAuditor a(UvmConfig{}, nullptr, &trace);
    const std::string msg =
        expectAuditPanic([&] { a.onEvictionBegin(42, 0, 0); });
    EXPECT_NE(msg.find("trace tail"), std::string::npos);
    EXPECT_NE(msg.find("page_fault"), std::string::npos);
}

// ---- MemoryHierarchy coherence edges (hooked integration) ----------

/** Makes @p vpn shadow-resident without batch machinery. */
void
shadowResident(ModelAuditor &a, PageNum vpn)
{
    a.onPreload(vpn);
    a.onFrameReserved(0);
    a.onPageCommitted(vpn, 0, 0);
}

TEST(HierarchyAudit, EvictionShootdownKeepsCoherence)
{
    const std::uint64_t page_bytes = 64 * 1024;
    PageTable pt;
    ModelAuditor a(UvmConfig{});
    MemoryHierarchy mh(MemConfig{}, 1, page_bytes, pt,
                       SimHooks{nullptr, &a, nullptr});

    shadowResident(a, 3);
    pt.map(3, 0);
    EXPECT_FALSE(mh.access(0, 3 * page_bytes, false, 0).fault);
    EXPECT_FALSE(mh.access(0, 3 * page_bytes, false, 100).fault);

    // Proper eviction: unmap, then shoot the TLBs down.
    a.onEvictionBegin(3, 200, 0);
    pt.unmap(3);
    mh.invalidatePage(3);
    a.onEvictionTransfer(3, 200, 210, 64);
    a.onEvictionComplete(3, 0);

    // The next access walks and faults; the auditor must agree.
    EXPECT_TRUE(mh.access(0, 3 * page_bytes, false, 300).fault);
}

TEST(HierarchyAudit, MissedShootdownAfterEvictionPanics)
{
    // Eviction-while-translated mutation: the page is unmapped but the
    // TLB shootdown is "forgotten". The stale L1 TLB entry then serves
    // a translation for a non-resident page, which the auditor catches.
    const std::uint64_t page_bytes = 64 * 1024;
    PageTable pt;
    ModelAuditor a(UvmConfig{});
    MemoryHierarchy mh(MemConfig{}, 1, page_bytes, pt,
                       SimHooks{nullptr, &a, nullptr});

    shadowResident(a, 3);
    pt.map(3, 0);
    EXPECT_FALSE(mh.access(0, 3 * page_bytes, false, 0).fault);

    a.onEvictionBegin(3, 100, 0);
    pt.unmap(3);
    // BUG under test: no mh.invalidatePage(3).

    const std::string msg = expectAuditPanic([&] {
        mh.access(0, 3 * page_bytes, false, 200);
    });
    EXPECT_NE(msg.find("stale translation"), std::string::npos);
}

TEST(HierarchyAudit, StaleWalkDuringEvictionPanics)
{
    // Invalidate-during-walk mutation: the page table loses the
    // mapping while the shadow still believes the page is resident, so
    // the walk resolves a fault the model says cannot happen.
    const std::uint64_t page_bytes = 64 * 1024;
    PageTable pt;
    ModelAuditor a(UvmConfig{});
    MemoryHierarchy mh(MemConfig{}, 1, page_bytes, pt,
                       SimHooks{nullptr, &a, nullptr});

    shadowResident(a, 3); // shadow resident, page table never mapped
    const std::string msg = expectAuditPanic([&] {
        mh.access(0, 3 * page_bytes, false, 0);
    });
    EXPECT_NE(msg.find("tlb-coherence"), std::string::npos);
}

// ---- system wiring -------------------------------------------------

TEST(SystemAudit, AuditorIsOwnedWhenEnabled)
{
    SimConfig config = paperConfig(0.5);
    EXPECT_EQ(GpuUvmSystem(config).audit(), nullptr);
    config.check.enabled = true;
    GpuUvmSystem system(config);
    ASSERT_NE(system.audit(), nullptr);
    // A violation injected into the system-owned auditor panics the
    // same way any simulation abort does (ScopedAbortCapture-friendly).
    ScopedAbortCapture capture;
    EXPECT_THROW(system.audit()->onEvictionBegin(1, 0, 0), SimAbort);
}

TEST(SystemAudit, AuditingDoesNotPerturbSimulatedResults)
{
    auto runOnce = [](bool audited) {
        SimConfig config = applyPolicy(paperConfig(0.5), Policy::ToUe);
        config.check.enabled = audited;
        auto workload = WorkloadRegistry::instance().create("BFS-TWC");
        GpuUvmSystem system(config);
        return system.run(*workload, WorkloadScale::Tiny);
    };
    const RunResult off = runOnce(false);
    const RunResult on = runOnce(true);
    EXPECT_EQ(off.cycles, on.cycles);
    EXPECT_EQ(off.sim_events, on.sim_events);
    EXPECT_EQ(off.batches, on.batches);
    EXPECT_EQ(off.migrations, on.migrations);
    EXPECT_EQ(off.evictions, on.evictions);
    EXPECT_EQ(off.instructions, on.instructions);
    EXPECT_EQ(off.context_switches, on.context_switches);
    EXPECT_EQ(off.pcie_h2d_bytes, on.pcie_h2d_bytes);
    EXPECT_EQ(off.pcie_d2h_bytes, on.pcie_d2h_bytes);
}

// ---- bench plumbing ------------------------------------------------

TEST(BenchArgsAudit, AuditFlagParses)
{
    const char *argv[] = {"prog", "--audit"};
    const BenchOptions opt =
        parseBenchArgs(2, const_cast<char **>(argv));
    EXPECT_TRUE(opt.audit);
    const char *none[] = {"prog"};
    EXPECT_FALSE(parseBenchArgs(1, const_cast<char **>(none)).audit);
}

TEST(BenchArgsAudit, UnknownFlagPrintsUsageAndFails)
{
    const char *argv[] = {"prog", "--no-such-flag"};
    testing::internal::CaptureStderr();
    {
        ScopedAbortCapture capture;
        try {
            parseBenchArgs(2, const_cast<char **>(argv));
            ADD_FAILURE() << "unknown flag must not parse";
        } catch (const SimAbort &e) {
            EXPECT_FALSE(e.isPanic()); // fatal(): exits non-zero
            EXPECT_NE(std::string(e.what()).find("--no-such-flag"),
                      std::string::npos);
        }
    }
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("options:"), std::string::npos);
    EXPECT_NE(err.find("--audit"), std::string::npos);
}

// ---- workload registry ---------------------------------------------

TEST(WorkloadRegistryApi, EnumerationIsKindPartitioned)
{
    WorkloadRegistry &reg = WorkloadRegistry::instance();
    // Fig 11 registration order for the paper's irregular suite.
    const std::vector<std::string> irregular =
        reg.enumerate(WorkloadKind::Irregular);
    ASSERT_FALSE(irregular.empty());
    EXPECT_EQ(irregular.front(), "BC");
    const std::vector<std::string> regular =
        reg.enumerate(WorkloadKind::Regular);
    ASSERT_FALSE(regular.empty());
    const std::vector<std::string> frontier = {"BFS-HYB", "CC", "TC",
                                               "KTRUSS"};
    EXPECT_EQ(reg.enumerate(WorkloadKind::Frontier), frontier);
    EXPECT_EQ(reg.enumerate().size(), irregular.size() +
                                          regular.size() +
                                          frontier.size());
}

TEST(WorkloadRegistryApi, CreateProducesTheNamedWorkload)
{
    WorkloadRegistry &reg = WorkloadRegistry::instance();
    for (const auto &name : reg.enumerate()) {
        ASSERT_TRUE(reg.contains(name));
        EXPECT_EQ(reg.create(name)->name(), name);
    }
    EXPECT_FALSE(reg.contains("NOPE"));
}

TEST(WorkloadRegistryApi, UnknownNameFailsListingKnownNames)
{
    ScopedAbortCapture capture;
    try {
        WorkloadRegistry::instance().create("NOPE");
        ADD_FAILURE() << "unknown workload must not instantiate";
    } catch (const SimAbort &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("NOPE"), std::string::npos);
        EXPECT_NE(msg.find("BFS-TWC"), std::string::npos);
        // Known names carry their family tag for discoverability.
        EXPECT_NE(msg.find("(irregular)"), std::string::npos);
        EXPECT_NE(msg.find("(regular)"), std::string::npos);
        EXPECT_NE(msg.find("(frontier)"), std::string::npos);
        EXPECT_NE(msg.find("BFS-HYB"), std::string::npos);
    }
}

// ---- audited fig11 matrix ------------------------------------------

/** Renders the fig11 stdout (table + means) from a sweep result,
 *  mirroring bench/fig11_speedup.cc. */
std::string
fig11Text(const SweepResult &sweep,
          const std::vector<std::string> &workloads,
          const std::vector<Policy> &policies)
{
    std::vector<std::string> headers = {"workload"};
    for (Policy p : policies)
        headers.push_back(policyName(p));
    Table t(headers);
    std::map<Policy, std::vector<double>> speedups;
    for (const auto &w : workloads) {
        const CellOutcome *base = sweep.find(w, Policy::Baseline);
        if (!base || !base->ok)
            continue;
        const double base_cycles =
            static_cast<double>(base->result.cycles);
        std::vector<std::string> row = {w};
        for (Policy p : policies) {
            const CellOutcome *cell = sweep.find(w, p);
            if (!cell || !cell->ok) {
                row.push_back("FAIL");
                continue;
            }
            const double s =
                base_cycles / static_cast<double>(cell->result.cycles);
            speedups[p].push_back(s);
            row.push_back(Table::num(s, 2));
        }
        t.addRow(row);
    }
    std::vector<std::string> avg = {"AVERAGE"};
    for (Policy p : policies)
        avg.push_back(Table::num(amean(speedups[p]), 2));
    t.addRow(avg);
    std::vector<std::string> gmean = {"GEOMEAN"};
    for (Policy p : policies)
        gmean.push_back(Table::num(geomean(speedups[p]), 2));
    t.addRow(gmean);
    return t.toText();
}

TEST(Fig11Audit, AuditedMatrixPrintsByteIdenticalOutput)
{
    // The full fig11 matrix at Small scale, audited vs unaudited: the
    // printed figure must be byte-identical, every audited cell must
    // succeed, and the audit must actually have checked something.
    GraphBuildCache::Scope graph_scope; // share builds across sweeps

    auto runSweep = [](bool audited) {
        SweepSpec spec;
        spec.bench = "fig11_audit_test";
        spec.workloads = WorkloadRegistry::instance().enumerate(WorkloadKind::Irregular);
        spec.policies = allPolicies();
        spec.opt.scale = WorkloadScale::Small;
        spec.opt.audit = audited;
        spec.verbose = false;
        SweepRunner runner(std::move(spec));
        return runner.run();
    };

    const SweepResult plain = runSweep(false);
    const SweepResult audited = runSweep(true);
    ASSERT_EQ(plain.failedCells(), 0u);
    ASSERT_EQ(audited.failedCells(), 0u);

    const std::string plain_text =
        fig11Text(plain, WorkloadRegistry::instance().enumerate(WorkloadKind::Irregular), allPolicies());
    const std::string audited_text =
        fig11Text(audited, WorkloadRegistry::instance().enumerate(WorkloadKind::Irregular), allPolicies());
    EXPECT_EQ(plain_text, audited_text);
}

} // namespace
} // namespace bauvm
