/**
 * @file
 * Cross-module integration tests: full simulations at Tiny scale,
 * policy invariants, determinism and parameterized sweeps.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "src/core/presets.h"
#include "src/core/report.h"
#include "src/core/system.h"
#include "src/runner/sweep_runner.h"
#include "src/workloads/workload_registry.h"

namespace bauvm
{
namespace
{

RunResult
runTiny(const std::string &workload, Policy policy, double ratio = 0.5,
        std::uint64_t seed = 1)
{
    SimConfig config = applyPolicy(paperConfig(ratio, seed), policy);
    return runWorkload(config, workload, WorkloadScale::Tiny,
                       /*validate=*/true);
}

TEST(Integration, DeterministicCycleCounts)
{
    const RunResult a = runTiny("BFS-TWC", Policy::ToUe);
    const RunResult b = runTiny("BFS-TWC", Policy::ToUe);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.batches, b.batches);
    EXPECT_EQ(a.evictions, b.evictions);
    EXPECT_EQ(a.instructions, b.instructions);
}

/**
 * Builds the fig11-style speedup table for a tiny two-workload,
 * three-policy sweep — the same table construction as
 * bench/fig11_speedup, shrunk to regression size.
 */
std::string
miniFig11Table(std::size_t jobs)
{
    SweepSpec spec;
    spec.bench = "fig11_mini";
    spec.workloads = {"BFS-TTC", "KCORE"};
    spec.policies = {Policy::Baseline, Policy::To, Policy::ToUe};
    spec.opt.scale = WorkloadScale::Tiny;
    spec.opt.seed = 1;
    spec.opt.ratio = 0.5;
    spec.opt.jobs = jobs;
    spec.verbose = false;

    SweepRunner runner(spec);
    const SweepResult sweep = runner.run();

    std::vector<std::string> headers = {"workload"};
    for (Policy p : spec.policies)
        headers.push_back(policyName(p));
    Table t(headers);
    std::map<Policy, std::vector<double>> speedups;
    for (const auto &w : spec.workloads) {
        const CellOutcome *base = sweep.find(w, Policy::Baseline);
        const double base_cycles =
            static_cast<double>(base->result.cycles);
        std::vector<std::string> row = {w};
        for (Policy p : spec.policies) {
            const CellOutcome *cell = sweep.find(w, p);
            const double s =
                base_cycles / static_cast<double>(cell->result.cycles);
            speedups[p].push_back(s);
            row.push_back(Table::num(s, 2));
        }
        t.addRow(row);
    }
    std::vector<std::string> avg = {"AVERAGE"};
    for (Policy p : spec.policies)
        avg.push_back(Table::num(amean(speedups[p]), 2));
    t.addRow(avg);
    return t.toText();
}

/**
 * Byte-exact golden for the mini fig11 sweep (seed 1, ratio 0.5,
 * Tiny). Captured from the pre-rewrite kernel; any drift here means
 * the event kernel, graph memoization or sweep scheduling changed
 * simulated behavior, not just performance. Trailing spaces are part
 * of the table format.
 */
constexpr char kMiniFig11Golden[] =
    "workload  BASELINE  TO    TO+UE  \n"
    "---------------------------------\n"
    "BFS-TTC   1.00      1.00  2.00   \n"
    "KCORE     1.00      1.00  3.15   \n"
    "AVERAGE   1.00      1.00  2.58   \n";

TEST(Integration, MiniFig11GoldenSerial)
{
    EXPECT_EQ(miniFig11Table(1), kMiniFig11Golden);
}

TEST(Integration, MiniFig11GoldenParallelMatchesGolden)
{
    EXPECT_EQ(miniFig11Table(2), kMiniFig11Golden);
}

TEST(Integration, DifferentSeedsDifferentGraphs)
{
    const RunResult a = runTiny("BFS-TTC", Policy::Baseline, 0.5, 1);
    const RunResult b = runTiny("BFS-TTC", Policy::Baseline, 0.5, 99);
    EXPECT_NE(a.cycles, b.cycles);
}

TEST(Integration, UnlimitedMemoryHasNoEvictions)
{
    const RunResult r = runTiny("PR", Policy::Unlimited, 0.0);
    EXPECT_EQ(r.evictions, 0u);
    EXPECT_EQ(r.premature_evictions, 0u);
}

TEST(Integration, FullCapacityRatioHasNoEvictions)
{
    const RunResult r = runTiny("PR", Policy::Baseline, 1.0);
    EXPECT_EQ(r.evictions, 0u);
}

TEST(Integration, OversubscriptionSlowsExecution)
{
    const RunResult full = runTiny("BFS-TWC", Policy::Baseline, 1.0);
    const RunResult half = runTiny("BFS-TWC", Policy::Baseline, 0.5);
    EXPECT_GT(half.cycles, full.cycles);
    EXPECT_GT(half.evictions, 0u);
}

TEST(Integration, IdealEvictionNotSlowerThanBaseline)
{
    // At hyper-thrash ratios the earlier evictions of the ideal scheme
    // can induce refaults, so use a moderate oversubscription where
    // the Fig 8 relationship (ideal >= baseline) holds.
    const RunResult base = runTiny("BFS-TWC", Policy::Baseline, 0.75);
    const RunResult ideal =
        runTiny("BFS-TWC", Policy::IdealEviction, 0.75);
    EXPECT_LE(ideal.cycles, base.cycles * 105 / 100);
    EXPECT_EQ(ideal.pcie_d2h_bytes, 0u);
}

TEST(Integration, ToPerformsContextSwitches)
{
    const RunResult r = runTiny("BFS-TWC", Policy::To);
    EXPECT_GT(r.context_switches, 0u);
    EXPECT_GT(r.context_switch_cycles, 0u);
}

TEST(Integration, BaselineNeverContextSwitches)
{
    const RunResult r = runTiny("BFS-TWC", Policy::Baseline);
    EXPECT_EQ(r.context_switches, 0u);
}

TEST(Integration, MigrationsCoverDemandAndPrefetch)
{
    const RunResult r = runTiny("BFS-TTC", Policy::Baseline);
    EXPECT_EQ(r.migrations, r.demand_pages + r.prefetched_pages);
}

TEST(Integration, BatchRecordsConsistent)
{
    const RunResult r = runTiny("SSSP-TWC", Policy::Baseline);
    ASSERT_EQ(r.batch_records.size(), r.batches);
    std::uint64_t demand = 0;
    for (const auto &b : r.batch_records) {
        EXPECT_LE(b.begin, b.first_transfer);
        EXPECT_LE(b.first_transfer, b.end);
        demand += b.fault_pages;
        EXPECT_LE(b.fault_pages, 1024u) << "batch exceeds fault buffer";
    }
    EXPECT_EQ(demand, r.demand_pages);
}

TEST(Integration, BatchesAreTimeOrdered)
{
    const RunResult r = runTiny("BFS-TF", Policy::Baseline);
    for (std::size_t i = 1; i < r.batch_records.size(); ++i) {
        EXPECT_GE(r.batch_records[i].begin,
                  r.batch_records[i - 1].end);
    }
}

TEST(Integration, PcieCompressionReducesBytesMoved)
{
    const RunResult plain = runTiny("BFS-TTC", Policy::Baseline);
    const RunResult comp =
        runTiny("BFS-TTC", Policy::BaselinePcieComp);
    const double plain_per_page =
        static_cast<double>(plain.pcie_h2d_bytes) / plain.migrations;
    const double comp_per_page =
        static_cast<double>(comp.pcie_h2d_bytes) / comp.migrations;
    EXPECT_LT(comp_per_page, plain_per_page);
}

TEST(Integration, EtcRunsAndValidates)
{
    const RunResult r = runTiny("BFS-TTC", Policy::Etc);
    EXPECT_GT(r.cycles, 0u);
}

TEST(Integration, PreloadEliminatesAllFaults)
{
    SimConfig config = paperConfig(0.0);
    config.uvm.preload = true;
    const RunResult r = runWorkload(config, "PR", WorkloadScale::Tiny,
                                    /*validate=*/true);
    EXPECT_EQ(r.batches, 0u);
    EXPECT_EQ(r.pcie_h2d_bytes, 0u);
}

TEST(Integration, PreloadMatchesUnlimitedFunctionally)
{
    // Preloaded and demand-paged runs must produce identical results
    // (validate() passes in both) but preload must be faster.
    SimConfig pre = paperConfig(0.0);
    pre.uvm.preload = true;
    const RunResult preloaded =
        runWorkload(pre, "BFS-TWC", WorkloadScale::Tiny, true);
    const RunResult demand = runTiny("BFS-TWC", Policy::Unlimited, 0.0);
    EXPECT_LT(preloaded.cycles, demand.cycles);
}

/** Property sweep: invariants over (workload x ratio). */
class PolicyInvariants
    : public ::testing::TestWithParam<std::tuple<std::string, double>>
{
};

TEST_P(PolicyInvariants, ResidencyNeverExceedsCapacity)
{
    const auto &[workload_name, ratio] = GetParam();
    SimConfig config = paperConfig(ratio);
    auto workload = WorkloadRegistry::instance().create(workload_name);
    GpuUvmSystem system(config);
    const RunResult r = system.run(*workload, WorkloadScale::Tiny);
    workload->validate();
    EXPECT_LE(system.memoryManager().pageTable().residentPages(),
              system.memoryManager().capacityPages());
    EXPECT_GT(r.cycles, 0u);
}

TEST_P(PolicyInvariants, UeAndBaselineMoveSimilarDemand)
{
    const auto &[workload_name, ratio] = GetParam();
    // UE must not change *which* pages the workload needs (only the
    // schedule): unique demand pages are a workload property.
    const RunResult base =
        runTiny(workload_name, Policy::Baseline, ratio);
    const RunResult ue = runTiny(workload_name, Policy::Ue, ratio);
    EXPECT_GT(base.demand_pages, 0u);
    EXPECT_GT(ue.demand_pages, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PolicyInvariants,
    ::testing::Combine(::testing::Values("BFS-TTC", "BFS-TWC", "PR",
                                         "SSSP-TWC"),
                       ::testing::Values(0.25, 0.5, 0.75)),
    [](const auto &info) {
        std::string name = std::get<0>(info.param);
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name + "_r" +
               std::to_string(static_cast<int>(
                   std::get<1>(info.param) * 100));
    });

/** Every irregular workload must run end-to-end under TO+UE. */
class AllWorkloadsSim : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AllWorkloadsSim, ToUeRunsAndValidates)
{
    const RunResult r = runTiny(GetParam(), Policy::ToUe);
    EXPECT_GT(r.cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Irregular, AllWorkloadsSim,
    ::testing::ValuesIn(WorkloadRegistry::instance().enumerate(WorkloadKind::Irregular)),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace bauvm
