/**
 * @file
 * Multi-tenant GPU tests: VA-slice directory, seeded fault-storm
 * fairness under the three share policies, determinism of tenant-mix
 * sweeps across worker counts, and the tenant extensions of the cell
 * content address and JSON codecs.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/presets.h"
#include "src/core/system.h"
#include "src/core/tenant.h"
#include "src/graph/graph_cache.h"
#include "src/mem/tenant_directory.h"
#include "src/runner/cell_spec.h"
#include "src/runner/job.h"
#include "src/runner/sweep_runner.h"
#include "src/serve/cell_json.h"
#include "src/serve/json.h"
#include "src/sim/log.h"

namespace bauvm
{
namespace
{

SimConfig
mixConfig(double ratio, SharePolicy policy, bool audit = true)
{
    SimConfig config = paperConfig(ratio, /*seed=*/1);
    config.mt.policy = policy;
    config.check.enabled = audit;
    return config;
}

std::vector<TenantSpec>
twoTenants(double quota_a = 0.5, double quota_b = 0.5)
{
    return {{"BFS-HYB", quota_a, WorkloadScale::Tiny},
            {"PR", quota_b, WorkloadScale::Tiny}};
}

// ---- tenant directory ----------------------------------------------

TEST(TenantDirectory, MapsPagesToOwnersAndRejectsOutsiders)
{
    TenantDirectory dir(SharePolicy::StrictQuota);
    dir.add({0, "A", 1, /*first_vpn=*/0, /*end_vpn=*/64, 32, 0.5, 40});
    dir.add({1, "B", 2, /*first_vpn=*/64, /*end_vpn=*/96, 16, 0.5, 20});
    EXPECT_EQ(dir.size(), 2u);
    EXPECT_EQ(dir.policy(), SharePolicy::StrictQuota);
    EXPECT_EQ(dir.tenantOf(0), 0);
    EXPECT_EQ(dir.tenantOf(63), 0);
    EXPECT_EQ(dir.tenantOf(64), 1);
    EXPECT_EQ(dir.tenantOf(95), 1);
    EXPECT_EQ(dir.tenantOf(96), kNoTenant);
    EXPECT_EQ(dir.context(1).workload, "B");
}

TEST(TenantSeed, DerivationIsStableNonZeroAndDistinct)
{
    const std::uint64_t a = deriveTenantSeed(1, 0);
    const std::uint64_t b = deriveTenantSeed(1, 1);
    EXPECT_NE(a, 0u);
    EXPECT_NE(b, 0u);
    EXPECT_NE(a, b);
    EXPECT_EQ(a, deriveTenantSeed(1, 0)); // pure function
    EXPECT_NE(deriveTenantSeed(2, 0), a);
}

TEST(TenantSeed, SharePolicyNamesRoundTrip)
{
    for (SharePolicy p :
         {SharePolicy::FreeForAll, SharePolicy::StrictQuota,
          SharePolicy::Proportional}) {
        EXPECT_EQ(sharePolicyFromName(sharePolicyName(p)), p);
    }
    EXPECT_EQ(tenantMixLabel(twoTenants()), "BFS-HYB+PR");
}

// ---- fault-storm fairness ------------------------------------------

TEST(MultiTenant, StrictQuotasAreNeverExceeded)
{
    GraphBuildCache::Scope graph_scope;
    // Audited: the ModelAuditor's "tenant-quota" invariant panics the
    // run if a strict tenant ever holds more frames than its cap.
    const RunResult r = runTenantMix(
        mixConfig(0.4, SharePolicy::StrictQuota), twoTenants(),
        /*validate=*/true);
    ASSERT_EQ(r.tenants.size(), 2u);
    EXPECT_EQ(r.workload, "BFS-HYB+PR");
    for (const TenantResult &t : r.tenants) {
        EXPECT_GT(t.cycles, 0u);
        EXPECT_GT(t.kernels, 0u);
        EXPECT_GT(t.demand_pages, 0u);
        EXPECT_LE(t.peak_resident_pages, t.quota_pages)
            << t.workload << " exceeded its strict quota";
    }
    // Contended enough that arbitration actually happened.
    EXPECT_GT(r.evictions, 0u);
}

TEST(MultiTenant, StrictTenantsOnlyEvictThemselves)
{
    GraphBuildCache::Scope graph_scope;
    const RunResult r = runTenantMix(
        mixConfig(0.4, SharePolicy::StrictQuota), twoTenants());
    ASSERT_EQ(r.tenants.size(), 2u);
    // Under strict quotas every eviction a tenant causes removes one
    // of its own pages, so caused == suffered per tenant.
    for (const TenantResult &t : r.tenants)
        EXPECT_EQ(t.evictions_caused, t.evictions_suffered)
            << t.workload;
}

TEST(MultiTenant, ProportionalFavorsTheHeavierWeight)
{
    GraphBuildCache::Scope graph_scope;
    // Same workload twice so demand is symmetric; only the weights
    // differ. The heavier tenant must keep at least as many frames.
    const std::vector<TenantSpec> tenants = {
        {"PR", 0.75, WorkloadScale::Tiny},
        {"PR", 0.25, WorkloadScale::Tiny}};
    const RunResult r = runTenantMix(
        mixConfig(0.4, SharePolicy::Proportional), tenants);
    ASSERT_EQ(r.tenants.size(), 2u);
    EXPECT_GE(r.tenants[0].peak_resident_pages,
              r.tenants[1].peak_resident_pages);
    EXPECT_GE(r.tenants[1].evictions_suffered,
              r.tenants[0].evictions_suffered);
}

TEST(MultiTenant, StarvedStrictTenantStillCompletes)
{
    GraphBuildCache::Scope graph_scope;
    // A 90/10 split leaves tenant 1 a sliver of memory. Strict quotas
    // must degrade it, not deadlock it: runTenantMix panics if any
    // tenant is unfinished when the event queue drains.
    const RunResult r = runTenantMix(
        mixConfig(0.4, SharePolicy::StrictQuota),
        twoTenants(0.9, 0.1), /*validate=*/true);
    ASSERT_EQ(r.tenants.size(), 2u);
    EXPECT_GT(r.tenants[1].cycles, 0u);
    EXPECT_LT(r.tenants[1].quota_pages, r.tenants[0].quota_pages);
}

TEST(MultiTenant, FreeForAllMatchesTenantlessAccounting)
{
    GraphBuildCache::Scope graph_scope;
    const RunResult r = runTenantMix(
        mixConfig(0.5, SharePolicy::FreeForAll), twoTenants());
    ASSERT_EQ(r.tenants.size(), 2u);
    // Every eviction has an owner, and per-tenant demand sums into
    // the global counter (prefetches are unattributed).
    std::uint64_t suffered = 0, demand = 0;
    for (const TenantResult &t : r.tenants) {
        suffered += t.evictions_suffered;
        demand += t.demand_pages;
    }
    EXPECT_EQ(suffered, r.evictions);
    EXPECT_EQ(demand, r.demand_pages);
}

// ---- determinism ----------------------------------------------------

TEST(MultiTenant, MixRunsAreBitIdenticalAcrossRepeats)
{
    GraphBuildCache::Scope graph_scope;
    const auto run = [] {
        return runTenantMix(
            mixConfig(0.4, SharePolicy::Proportional), twoTenants());
    };
    const RunResult a = run();
    const RunResult b = run();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.evictions, b.evictions);
    EXPECT_EQ(a.instructions, b.instructions);
    ASSERT_EQ(a.tenants.size(), b.tenants.size());
    for (std::size_t i = 0; i < a.tenants.size(); ++i) {
        EXPECT_EQ(a.tenants[i].cycles, b.tenants[i].cycles);
        EXPECT_EQ(a.tenants[i].seed, b.tenants[i].seed);
        EXPECT_EQ(a.tenants[i].demand_pages,
                  b.tenants[i].demand_pages);
        EXPECT_EQ(a.tenants[i].evictions_suffered,
                  b.tenants[i].evictions_suffered);
    }
}

TEST(MultiTenant, AuditedTenantSweepIsIdenticalSerialVsSharded)
{
    GraphBuildCache::Scope graph_scope;
    const auto sweep = [](std::size_t jobs) {
        SweepSpec spec;
        spec.bench = "mt_determinism";
        spec.workloads = {"BFS-HYB+PR"}; // label only
        spec.policies = {Policy::Baseline, Policy::Ue};
        spec.opt.scale = WorkloadScale::Tiny;
        spec.opt.ratio = 0.4;
        spec.opt.jobs = jobs;
        spec.opt.audit = true;
        spec.opt.tenants = {{"BFS-HYB", 0.5, WorkloadScale::Tiny},
                            {"PR", 0.5, WorkloadScale::Tiny}};
        spec.opt.share_policy = SharePolicy::StrictQuota;
        spec.verbose = false;
        SweepRunner runner(std::move(spec));
        return runner.run();
    };
    const SweepResult serial = sweep(1);
    const SweepResult sharded = sweep(2);
    ASSERT_EQ(serial.failedCells(), 0u);
    ASSERT_EQ(sharded.failedCells(), 0u);
    ASSERT_EQ(serial.cells.size(), sharded.cells.size());
    for (std::size_t i = 0; i < serial.cells.size(); ++i) {
        const CellOutcome &a = serial.cells[i];
        const CellOutcome &b = sharded.cells[i];
        EXPECT_EQ(a.digest, b.digest);
        EXPECT_EQ(a.result.cycles, b.result.cycles);
        ASSERT_EQ(a.result.tenants.size(), b.result.tenants.size());
        for (std::size_t t = 0; t < a.result.tenants.size(); ++t) {
            EXPECT_EQ(a.result.tenants[t].cycles,
                      b.result.tenants[t].cycles);
            EXPECT_EQ(a.result.tenants[t].slowdown,
                      b.result.tenants[t].slowdown);
            EXPECT_EQ(a.result.tenants[t].evictions_caused,
                      b.result.tenants[t].evictions_caused);
        }
    }
}

// ---- content address and codecs ------------------------------------

TEST(MultiTenant, TenantMixGetsItsOwnContentAddress)
{
    const SimConfig config = mixConfig(0.5, SharePolicy::FreeForAll,
                                       /*audit=*/false);
    const std::string solo = cellKey("BFS-HYB+PR",
                                     WorkloadScale::Tiny, config,
                                     "rev");
    const std::string mixed = cellKey("BFS-HYB+PR",
                                      WorkloadScale::Tiny, config,
                                      "rev", twoTenants());
    EXPECT_NE(solo, mixed);
    EXPECT_NE(cellKey("BFS-HYB+PR", WorkloadScale::Tiny, config,
                      "rev", twoTenants(0.75, 0.25)),
              mixed); // quotas are part of the address
    EXPECT_EQ(solo.rfind("bauvm.cell/3|", 0), 0u);
}

TEST(MultiTenant, MtPolicyIsADeclarativeKnob)
{
    SimConfig config;
    ASSERT_TRUE(applyConfigOverride(config, "mt.policy", 1.0));
    EXPECT_EQ(config.mt.policy, SharePolicy::StrictQuota);
    ASSERT_TRUE(applyConfigOverride(config, "mt.policy", 2.0));
    EXPECT_EQ(config.mt.policy, SharePolicy::Proportional);
    // ...and it is part of the canonical config string.
    const std::string canon = canonicalConfigString(config);
    EXPECT_NE(canon.find("mt.policy=2;"), std::string::npos);
}

TEST(MultiTenant, CellSpecTenantsRoundTripThroughJson)
{
    CellSpec spec;
    spec.workload = "BFS-HYB+PR";
    spec.scale = WorkloadScale::Tiny;
    spec.tenants = twoTenants(0.7, 0.3);

    JsonWriter w(/*pretty=*/false);
    writeCellSpec(w, spec);
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(w.str(), &doc, &error)) << error;
    CellSpec parsed;
    ASSERT_TRUE(parseCellSpec(doc, &parsed, &error)) << error;
    ASSERT_EQ(parsed.tenants.size(), 2u);
    EXPECT_EQ(parsed.tenants[0].workload, "BFS-HYB");
    EXPECT_DOUBLE_EQ(parsed.tenants[0].quota, 0.7);
    EXPECT_EQ(parsed.tenants[1].workload, "PR");
    EXPECT_EQ(parsed.tenants[0].scale, WorkloadScale::Tiny);
}

TEST(MultiTenant, TenantResultsRoundTripThroughCellJson)
{
    GraphBuildCache::Scope graph_scope;
    CellExecArgs args;
    args.workload = "BFS-HYB+PR";
    args.scale = WorkloadScale::Tiny;
    args.config = mixConfig(0.4, SharePolicy::StrictQuota,
                            /*audit=*/false);
    args.tenants = twoTenants();
    const CellOutcome out = executeCell(args);
    ASSERT_TRUE(out.ok) << out.error;
    ASSERT_EQ(out.result.tenants.size(), 2u);
    EXPECT_GT(out.result.tenants[0].slowdown, 0.0);

    JsonWriter w(/*pretty=*/false);
    writeCellJson(w, out);
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(w.str(), &doc, &error)) << error;
    CellOutcome parsed;
    ASSERT_TRUE(parseCellOutcome(doc, &parsed, &error)) << error;
    ASSERT_EQ(parsed.result.tenants.size(), 2u);
    for (std::size_t i = 0; i < 2; ++i) {
        const TenantResult &a = out.result.tenants[i];
        const TenantResult &b = parsed.result.tenants[i];
        EXPECT_EQ(a.workload, b.workload);
        EXPECT_EQ(a.cycles, b.cycles);
        EXPECT_EQ(a.quota_pages, b.quota_pages);
        EXPECT_EQ(a.evictions_caused, b.evictions_caused);
        EXPECT_EQ(a.evictions_suffered, b.evictions_suffered);
        EXPECT_EQ(a.peak_resident_pages, b.peak_resident_pages);
        EXPECT_DOUBLE_EQ(a.slowdown, b.slowdown);
    }
}

// ---- API guardrails -------------------------------------------------

TEST(MultiTenant, RejectsUnsupportedConfigurations)
{
    const std::vector<TenantSpec> tenants = twoTenants();
    {
        SimConfig config = mixConfig(0.5, SharePolicy::FreeForAll,
                                     /*audit=*/false);
        config.etc.enabled = true;
        EXPECT_THROW(
            {
                ScopedAbortCapture capture;
                runTenantMix(config, tenants);
            },
            SimAbort);
    }
    {
        SimConfig config = mixConfig(0.5, SharePolicy::FreeForAll,
                                     /*audit=*/false);
        config.memory_ratio = 0.0; // unlimited: nothing to arbitrate
        EXPECT_THROW(
            {
                ScopedAbortCapture capture;
                runTenantMix(config, tenants);
            },
            SimAbort);
    }
    {
        EXPECT_THROW(
            {
                ScopedAbortCapture capture;
                runTenantMix(mixConfig(0.5, SharePolicy::FreeForAll,
                                       /*audit=*/false),
                             {});
            },
            SimAbort);
    }
}

} // namespace
} // namespace bauvm
