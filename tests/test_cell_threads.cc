/**
 * @file
 * Differential tests for intra-cell threading (--cell-threads): a
 * multi-tenant cell executed with any thread count must be
 * bit-identical to the serial run. The oracle is the full simulated
 * payload — cycles, instructions, batch statistics, per-tenant
 * results — plus the event queue's order digest, which folds every
 * dispatched event's (when, seq) pair and therefore certifies the two
 * runs executed the *same events in the same order*, not merely
 * runs that agree on the aggregates.
 */

#include <gtest/gtest.h>

#include "src/core/presets.h"
#include "src/core/tenant.h"
#include "src/runner/cell_spec.h"
#include "src/runner/parallel_units.h"

namespace bauvm
{
namespace
{

CellOutcome
runMixCell(WorkloadScale scale, std::size_t cell_threads, bool audit)
{
    CellExecArgs args;
    args.workload = "mix";
    args.scale = scale;
    args.config = paperConfig(/*ratio=*/0.5, /*seed=*/1);
    args.config.check.enabled = audit;
    args.cell_threads = cell_threads;
    args.tenants = {TenantSpec{"BFS-TWC", 0.5, scale},
                    TenantSpec{"PR", 0.5, scale}};
    return executeCell(args);
}

void
expectIdentical(const CellOutcome &serial, const CellOutcome &threaded)
{
    ASSERT_TRUE(serial.ok) << serial.error;
    ASSERT_TRUE(threaded.ok) << threaded.error;
    EXPECT_EQ(serial.result.event_order_digest,
              threaded.result.event_order_digest)
        << "threaded mix executed different events or a different "
           "order";
    EXPECT_EQ(serial.result.cycles, threaded.result.cycles);
    EXPECT_EQ(serial.result.sim_events, threaded.result.sim_events);
    EXPECT_EQ(serial.result.instructions, threaded.result.instructions);
    EXPECT_EQ(serial.result.batches, threaded.result.batches);
    EXPECT_EQ(serial.result.migrations, threaded.result.migrations);
    EXPECT_EQ(serial.result.evictions, threaded.result.evictions);
    EXPECT_EQ(serial.result.pcie_h2d_bytes,
              threaded.result.pcie_h2d_bytes);
    EXPECT_EQ(serial.result.translations, threaded.result.translations);
    ASSERT_EQ(serial.result.tenants.size(),
              threaded.result.tenants.size());
    for (std::size_t i = 0; i < serial.result.tenants.size(); ++i) {
        const TenantResult &a = serial.result.tenants[i];
        const TenantResult &b = threaded.result.tenants[i];
        EXPECT_EQ(a.cycles, b.cycles) << "tenant " << i;
        EXPECT_EQ(a.instructions, b.instructions) << "tenant " << i;
        EXPECT_EQ(a.demand_pages, b.demand_pages) << "tenant " << i;
        // The slowdown folds in the solo anchors, which run as their
        // own units: a mismatch means a threaded anchor diverged.
        EXPECT_EQ(a.slowdown, b.slowdown) << "tenant " << i;
    }
}

class CellThreadsDifferential
    : public ::testing::TestWithParam<WorkloadScale>
{
};

TEST_P(CellThreadsDifferential, ThreadedMixMatchesSerial)
{
    const WorkloadScale scale = GetParam();
    const CellOutcome serial =
        runMixCell(scale, /*cell_threads=*/1, /*audit=*/false);
    const CellOutcome threaded =
        runMixCell(scale, /*cell_threads=*/2, /*audit=*/false);
    expectIdentical(serial, threaded);
    // Oversubscribed pool: more threads than units must change nothing.
    const CellOutcome wide =
        runMixCell(scale, /*cell_threads=*/8, /*audit=*/false);
    expectIdentical(serial, wide);
}

INSTANTIATE_TEST_SUITE_P(Scales, CellThreadsDifferential,
                         ::testing::Values(WorkloadScale::Tiny,
                                           WorkloadScale::Small,
                                           WorkloadScale::Medium));

TEST(CellThreads, AuditedMixMatchesSerial)
{
    const CellOutcome serial =
        runMixCell(WorkloadScale::Tiny, /*cell_threads=*/1,
                   /*audit=*/true);
    const CellOutcome threaded =
        runMixCell(WorkloadScale::Tiny, /*cell_threads=*/2,
                   /*audit=*/true);
    expectIdentical(serial, threaded);
}

TEST(CellThreads, DigestDistinguishesDifferentRuns)
{
    // Sanity on the oracle itself: two different cells must not share
    // a digest, or the equalities above prove nothing.
    const CellOutcome tiny =
        runMixCell(WorkloadScale::Tiny, 1, false);
    const CellOutcome small =
        runMixCell(WorkloadScale::Small, 1, false);
    ASSERT_TRUE(tiny.ok && small.ok);
    EXPECT_NE(tiny.result.event_order_digest,
              small.result.event_order_digest);
}

TEST(RunUnits, ExecutesEveryUnitOnceAndRethrowsLowestIndex)
{
    std::vector<int> hits(16, 0);
    runUnits(hits.size(), 4,
             [&](std::size_t i) { ++hits[i]; });
    for (int h : hits)
        EXPECT_EQ(h, 1);

    struct UnitError {
        std::size_t index;
    };
    std::vector<int> ran(8, 0);
    try {
        runUnits(ran.size(), 3, [&](std::size_t i) {
            ++ran[i];
            if (i == 2 || i == 5)
                throw UnitError{i};
        });
        FAIL() << "expected a rethrow";
    } catch (const UnitError &e) {
        EXPECT_EQ(e.index, 2u) << "lowest failing unit wins";
    }
    // No cancellation: later units still ran despite the failures.
    for (int h : ran)
        EXPECT_EQ(h, 1);
}

} // namespace
} // namespace bauvm
