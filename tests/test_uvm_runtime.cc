/**
 * @file
 * Tests of the batch-processing state machine — the Fig 2 semantics the
 * paper analyzes — and of the three eviction disciplines (baseline
 * serialized, unobtrusive, ideal).
 */

#include <gtest/gtest.h>

#include <vector>

#include "src/mem/memory_hierarchy.h"
#include "src/sim/event_queue.h"
#include "src/uvm/gpu_memory_manager.h"
#include "src/uvm/uvm_runtime.h"

namespace bauvm
{
namespace
{

constexpr std::uint64_t kPage = 64 * 1024;

/** Standalone harness wiring runtime + manager + hierarchy. */
struct RuntimeHarness
{
    void
    makeRuntime(std::uint64_t capacity_pages, UvmConfig config = {})
    {
        config.prefetch_enabled = false; // unit tests want exact counts
        config_ = config;
        manager_ =
            std::make_unique<GpuMemoryManager>(config, capacity_pages);
        hierarchy_ = std::make_unique<MemoryHierarchy>(
            mem_config_, 1, config.page_bytes, manager_->pageTable());
        runtime_ = std::make_unique<UvmRuntime>(
            config, events_, *manager_, *hierarchy_);
        runtime_->registerAllocation(0, 1024 * kPage);
    }

    /** Faults page @p vpn and counts the wake. */
    void
    fault(PageNum vpn)
    {
        runtime_->onPageFault(vpn, [this, vpn](Cycle c) {
            wakes_.emplace_back(vpn, c);
        });
    }

    EventQueue events_;
    UvmConfig config_;
    MemConfig mem_config_;
    std::unique_ptr<GpuMemoryManager> manager_;
    std::unique_ptr<MemoryHierarchy> hierarchy_;
    std::unique_ptr<UvmRuntime> runtime_;
    std::vector<std::pair<PageNum, Cycle>> wakes_;
};

/** Fixture: one harness per test. */
class UvmRuntimeTest : public ::testing::Test, public RuntimeHarness
{
};

TEST_F(UvmRuntimeTest, SingleFaultMigratesAndWakes)
{
    makeRuntime(0);
    fault(1);
    events_.run();
    ASSERT_EQ(wakes_.size(), 1u);
    EXPECT_TRUE(manager_->isResident(1));
    EXPECT_EQ(runtime_->batches(), 1u);
    // Wake time = interrupt latency + handling + one page transfer.
    const Cycle expected =
        usToCycles(config_.interrupt_latency_us) +
        usToCycles(config_.fault_handling_us) +
        usToCycles(config_.fault_handling_per_page_us) +
        runtime_->pcie().transferCycles(kPage);
    EXPECT_EQ(wakes_[0].second, expected);
}

TEST_F(UvmRuntimeTest, FaultsBeforeBatchStartJoinTheBatch)
{
    makeRuntime(0);
    fault(1);
    // A fault arriving during the interrupt latency joins batch 1.
    events_.scheduleAt(usToCycles(0.5), [this] { fault(2); });
    events_.run();
    EXPECT_EQ(runtime_->batches(), 1u);
    ASSERT_EQ(runtime_->batchRecords().size(), 1u);
    EXPECT_EQ(runtime_->batchRecords()[0].fault_pages, 2u);
}

TEST_F(UvmRuntimeTest, FaultsDuringProcessingWaitForNextBatch)
{
    makeRuntime(0);
    fault(1);
    // Arrives mid-handling (after batch 1 began): next batch (Fig 2,
    // pages B and C).
    events_.scheduleAt(usToCycles(10.0), [this] { fault(2); });
    events_.run();
    ASSERT_EQ(runtime_->batches(), 2u);
    EXPECT_EQ(runtime_->batchRecords()[0].fault_pages, 1u);
    EXPECT_EQ(runtime_->batchRecords()[1].fault_pages, 1u);
    // Batch 2 begins exactly when batch 1 ends (no interrupt round
    // trip — the driver optimization).
    EXPECT_EQ(runtime_->batchRecords()[1].begin,
              runtime_->batchRecords()[0].end);
}

TEST_F(UvmRuntimeTest, DuplicateFaultSamePageSharesEntry)
{
    makeRuntime(0);
    fault(1);
    fault(1);
    events_.run();
    EXPECT_EQ(wakes_.size(), 2u);
    EXPECT_EQ(runtime_->batchRecords()[0].fault_pages, 1u);
    EXPECT_EQ(runtime_->batchRecords()[0].duplicate_faults, 1u);
}

TEST_F(UvmRuntimeTest, FaultOnInFlightPageJoinsWaiters)
{
    makeRuntime(0);
    fault(1);
    // Fault the same page while its migration is in flight.
    events_.scheduleAt(usToCycles(23.0), [this] { fault(1); });
    events_.run();
    EXPECT_EQ(runtime_->batches(), 1u);
    EXPECT_EQ(wakes_.size(), 2u);
    EXPECT_EQ(wakes_[0].second, wakes_[1].second);
}

TEST_F(UvmRuntimeTest, FaultOnResidentPageWakesImmediately)
{
    makeRuntime(0);
    fault(1);
    events_.run();
    wakes_.clear();
    fault(1);
    EXPECT_EQ(wakes_.size(), 1u); // synchronous replay
    EXPECT_EQ(runtime_->batches(), 1u);
}

TEST_F(UvmRuntimeTest, MigrationsAreSortedByAddress)
{
    makeRuntime(0);
    fault(9);
    fault(3);
    fault(7);
    events_.run();
    ASSERT_EQ(wakes_.size(), 3u);
    // Ascending page order -> page 3 arrives first, then 7, then 9.
    EXPECT_EQ(wakes_[0].first, 3u);
    EXPECT_EQ(wakes_[1].first, 7u);
    EXPECT_EQ(wakes_[2].first, 9u);
    EXPECT_LT(wakes_[0].second, wakes_[1].second);
}

TEST_F(UvmRuntimeTest, HandlingTimeMatchesConfig)
{
    UvmConfig config;
    config.fault_handling_us = 45.0;
    makeRuntime(0, config);
    fault(1);
    events_.run();
    const auto &rec = runtime_->batchRecords()[0];
    EXPECT_EQ(rec.handlingTime(),
              usToCycles(45.0) +
                  usToCycles(config_.fault_handling_per_page_us));
}

TEST_F(UvmRuntimeTest, BaselineEvictionSerializes)
{
    makeRuntime(2);
    fault(1);
    fault(2);
    events_.run();
    wakes_.clear();
    // Memory full: two more pages, each needing an eviction.
    fault(3);
    fault(4);
    events_.run();
    ASSERT_EQ(wakes_.size(), 2u);
    const Cycle page = runtime_->pcie().transferCycles(kPage);
    // Serialized: evict,migrate,evict,migrate -> the second wake is a
    // full 2*page after the first.
    EXPECT_EQ(wakes_[1].second - wakes_[0].second, 2 * page);
    EXPECT_EQ(manager_->evictions(), 2u);
}

TEST_F(UvmRuntimeTest, UnobtrusiveEvictionOverlaps)
{
    UvmConfig config;
    config.unobtrusive_eviction = true;
    makeRuntime(2, config);
    fault(1);
    fault(2);
    events_.run();
    wakes_.clear();
    fault(3);
    fault(4);
    events_.run();
    ASSERT_EQ(wakes_.size(), 2u);
    const Cycle page = runtime_->pcie().transferCycles(kPage);
    // Pipelined: inbound transfers run back to back on the H2D channel.
    EXPECT_EQ(wakes_[1].second - wakes_[0].second, page);
    EXPECT_EQ(manager_->evictions(), 2u);
}

TEST_F(UvmRuntimeTest, UnobtrusiveBeatsBaselineEndToEnd)
{
    // Two separate fixtures (the event queue is not resettable):
    // measure the wall time to land 8 pages into full memory.
    auto run_policy = [](bool ue) {
        RuntimeHarness t;
        UvmConfig config;
        config.unobtrusive_eviction = ue;
        t.makeRuntime(4, config);
        for (PageNum p = 1; p <= 4; ++p)
            t.fault(p);
        t.events_.run();
        for (PageNum p = 5; p <= 12; ++p)
            t.fault(p);
        t.events_.run();
        return t.wakes_.back().second;
    };
    const Cycle baseline_done = run_policy(false);
    const Cycle ue_done = run_policy(true);
    EXPECT_LT(ue_done, baseline_done);
}

TEST_F(UvmRuntimeTest, IdealEvictionNoDeviceToHostTraffic)
{
    UvmConfig config;
    config.ideal_eviction = true;
    makeRuntime(2, config);
    fault(1);
    fault(2);
    events_.run();
    fault(3);
    events_.run();
    EXPECT_EQ(manager_->evictions(), 1u);
    EXPECT_EQ(runtime_->pcie().bytesMoved(PcieDir::DeviceToHost), 0u);
}

TEST_F(UvmRuntimeTest, EvictionShootsDownTlbAndUnmaps)
{
    makeRuntime(1);
    fault(1);
    events_.run();
    EXPECT_TRUE(manager_->isResident(1));
    fault(2);
    events_.run();
    EXPECT_FALSE(manager_->isResident(1));
    EXPECT_TRUE(manager_->isResident(2));
}

TEST_F(UvmRuntimeTest, ResidencyNeverExceedsCapacity)
{
    makeRuntime(4);
    for (PageNum p = 1; p <= 20; ++p)
        fault(p);
    events_.run();
    EXPECT_LE(manager_->pageTable().residentPages(), 4u);
    EXPECT_LE(manager_->committedFrames(), 4u);
}

TEST_F(UvmRuntimeTest, PrefetchRidesAlongWithDemand)
{
    UvmConfig config;
    config.prefetch_enabled = true;
    config_ = config;
    manager_ = std::make_unique<GpuMemoryManager>(config, 0);
    hierarchy_ = std::make_unique<MemoryHierarchy>(
        mem_config_, 1, config.page_bytes, manager_->pageTable());
    runtime_ = std::make_unique<UvmRuntime>(config, events_, *manager_,
                                            *hierarchy_);
    runtime_->registerAllocation(0, 1024 * kPage);
    // 3 of 4 pages in a subtree: the 4th is prefetched.
    fault(0);
    fault(1);
    fault(2);
    events_.run();
    EXPECT_EQ(runtime_->prefetchedPages(), 1u);
    EXPECT_TRUE(manager_->isResident(3));
    EXPECT_EQ(runtime_->batchRecords()[0].prefetch_pages, 1u);
}

TEST_F(UvmRuntimeTest, BatchProcessingTimeCoversAllMigrations)
{
    makeRuntime(0);
    for (PageNum p = 1; p <= 5; ++p)
        fault(p);
    events_.run();
    const auto &rec = runtime_->batchRecords()[0];
    const Cycle page = runtime_->pcie().transferCycles(kPage);
    EXPECT_EQ(rec.processingTime(),
              usToCycles(config_.fault_handling_us) +
                  5 * usToCycles(config_.fault_handling_per_page_us) +
                  5 * page);
    EXPECT_EQ(rec.fault_pages, 5u);
}

TEST_F(UvmRuntimeTest, AdviceCallbackFiresPerBatch)
{
    makeRuntime(0);
    int advice_calls = 0;
    runtime_->setAdviceCallback(
        [&](OversubAdvice) { ++advice_calls; });
    fault(1);
    events_.run();
    EXPECT_EQ(advice_calls, 1);
}

TEST_F(UvmRuntimeTest, ProactiveEvictionDrainsAtIdle)
{
    makeRuntime(4);
    runtime_->enableProactiveEviction(0.5);
    for (PageNum p = 1; p <= 4; ++p)
        fault(p);
    events_.run();
    // Idle now: proactive eviction should have pushed occupancy to
    // <= 50% of 4 frames.
    EXPECT_LE(manager_->committedFrames(), 2u);
}

} // namespace
} // namespace bauvm
