/**
 * @file
 * Tests for the Virtual Thread controller and the SM/dispatcher
 * interplay: switch triggering, costs, dynamic degree control.
 */

#include <gtest/gtest.h>

#include "src/core/presets.h"
#include "src/core/system.h"
#include "src/gpu/occupancy.h"
#include "src/gpu/virtual_thread.h"
#include "src/workloads/workload_registry.h"

namespace bauvm
{
namespace
{

KernelInfo
graphishKernel()
{
    KernelInfo k;
    k.name = "k";
    k.threads_per_block = 256;
    k.regs_per_thread = 56;
    return k;
}

TEST(VirtualThread, OneWayCostFollowsContextSize)
{
    ToConfig config;
    config.enabled = true;
    config.ctx_switch_bytes_per_cycle = 128;
    config.block_state_bytes = 5 * 1024;
    std::vector<std::unique_ptr<SmBase>> sms;
    VirtualThreadController vtc(config, sms);
    const KernelInfo k = graphishKernel();
    vtc.setKernel(&k);
    const std::uint64_t bytes = contextBytes(k, config.block_state_bytes);
    EXPECT_EQ(vtc.oneWayCost(), (bytes + 127) / 128);
}

TEST(VirtualThread, IdealSwitchCostsNothing)
{
    ToConfig config;
    config.enabled = true;
    config.ideal_ctx_switch = true;
    std::vector<std::unique_ptr<SmBase>> sms;
    VirtualThreadController vtc(config, sms);
    const KernelInfo k = graphishKernel();
    vtc.setKernel(&k);
    EXPECT_EQ(vtc.oneWayCost(), 0u);
}

TEST(VirtualThread, DisabledStartsWithZeroExtra)
{
    ToConfig config; // enabled = false
    std::vector<std::unique_ptr<SmBase>> sms;
    VirtualThreadController vtc(config, sms);
    EXPECT_EQ(vtc.allowedExtra(), 0u);
    EXPECT_FALSE(vtc.enabled());
}

TEST(VirtualThread, ThrottleAdviceShrinksDegree)
{
    ToConfig config;
    config.enabled = true;
    config.initial_extra_blocks = 2;
    std::vector<std::unique_ptr<SmBase>> sms;
    VirtualThreadController vtc(config, sms);
    EXPECT_EQ(vtc.allowedExtra(), 2u);
    vtc.onAdvice(OversubAdvice::Throttle);
    EXPECT_EQ(vtc.allowedExtra(), 1u);
    vtc.onAdvice(OversubAdvice::Throttle);
    vtc.onAdvice(OversubAdvice::Throttle); // floors at zero
    EXPECT_EQ(vtc.allowedExtra(), 0u);
    EXPECT_EQ(vtc.throttleEvents(), 2u);
}

TEST(VirtualThread, GrowthRequiresSustainedHealth)
{
    ToConfig config;
    config.enabled = true;
    config.initial_extra_blocks = 1;
    config.max_extra_blocks = 3;
    std::vector<std::unique_ptr<SmBase>> sms;
    VirtualThreadController vtc(config, sms);
    // A single healthy window must not grow the degree.
    vtc.onAdvice(OversubAdvice::Grow);
    EXPECT_EQ(vtc.allowedExtra(), 1u);
    for (int i = 0; i < 16; ++i)
        vtc.onAdvice(OversubAdvice::Grow);
    EXPECT_GT(vtc.allowedExtra(), 1u);
    EXPECT_LE(vtc.allowedExtra(), 3u);
}

TEST(VirtualThread, ThrottleResetsGrowStreak)
{
    ToConfig config;
    config.enabled = true;
    config.initial_extra_blocks = 0;
    config.max_extra_blocks = 3;
    std::vector<std::unique_ptr<SmBase>> sms;
    VirtualThreadController vtc(config, sms);
    for (int i = 0; i < 7; ++i)
        vtc.onAdvice(OversubAdvice::Grow);
    vtc.onAdvice(OversubAdvice::Throttle);
    for (int i = 0; i < 7; ++i)
        vtc.onAdvice(OversubAdvice::Grow);
    EXPECT_EQ(vtc.allowedExtra(), 0u);
}

// End-to-end properties of TO through the full system.

TEST(VirtualThreadSystem, ExtraBlocksAreDispatchedInactive)
{
    SimConfig config = applyPolicy(paperConfig(0.5), Policy::To);
    auto workload = WorkloadRegistry::instance().create("BFS-TWC");
    GpuUvmSystem system(config);
    system.run(*workload, WorkloadScale::Tiny);
    workload->validate();
    // Context switches happened and cost cycles.
    EXPECT_GT(system.gpu().vtc().contextSwitches(), 0u);
}

TEST(VirtualThreadSystem, IdealSwitchNotSlowerThanCostly)
{
    SimConfig costly = applyPolicy(paperConfig(0.5), Policy::To);
    SimConfig ideal = costly;
    ideal.to.ideal_ctx_switch = true;
    const RunResult rc =
        runWorkload(costly, "BFS-TWC", WorkloadScale::Tiny, true);
    const RunResult ri =
        runWorkload(ideal, "BFS-TWC", WorkloadScale::Tiny, true);
    EXPECT_EQ(ri.context_switch_cycles, 0u);
    // With free switches the run must not get slower by more than
    // scheduling noise.
    EXPECT_LE(ri.cycles, rc.cycles * 105 / 100);
}

TEST(VirtualThreadSystem, Fig5ModeDegradesPreloadedRun)
{
    // Traditional GPU (everything preloaded): forcing +1 block with
    // context switching on memory stalls must not help — the paper's
    // Fig 5 observation.
    SimConfig base = paperConfig(0.0);
    base.uvm.preload = true;
    SimConfig oversub = base;
    oversub.to.enabled = true;
    oversub.to.initial_extra_blocks = 1;
    oversub.to.max_extra_blocks = 1;
    oversub.to.switch_on_memory_stall = true;
    const RunResult rb =
        runWorkload(base, "BFS-TWC", WorkloadScale::Tiny, true);
    const RunResult ro =
        runWorkload(oversub, "BFS-TWC", WorkloadScale::Tiny, true);
    EXPECT_GT(ro.context_switches, 0u);
    EXPECT_GE(ro.cycles, rb.cycles);
}

} // namespace
} // namespace bauvm
