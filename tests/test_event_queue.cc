/**
 * @file
 * Unit tests for the discrete-event simulation kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.h"

namespace bauvm
{
namespace
{

TEST(EventQueue, StartsAtCycleZero)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.scheduleAt(30, [&] { order.push_back(3); });
    q.scheduleAt(10, [&] { order.push_back(1); });
    q.scheduleAt(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameCycleEventsRunInInsertionOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.scheduleAt(42, [&order, i] { order.push_back(i); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue q;
    Cycle seen = 0;
    q.scheduleAt(100, [&] {
        q.scheduleAfter(50, [&] { seen = q.now(); });
    });
    q.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    bool ran = false;
    const EventId id = q.scheduleAt(10, [&] { ran = true; });
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id)); // double cancel reports failure
    q.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(q.executedEvents(), 0u);
}

TEST(EventQueue, RunUntilLeavesFutureEventsPending)
{
    EventQueue q;
    int count = 0;
    q.scheduleAt(10, [&] { ++count; });
    q.scheduleAt(20, [&] { ++count; });
    q.scheduleAt(30, [&] { ++count; });
    q.run(20);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(q.pendingEvents(), 1u);
    q.run();
    EXPECT_EQ(count, 3);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue q;
    int count = 0;
    q.scheduleAt(5, [&] { ++count; });
    q.scheduleAt(6, [&] { ++count; });
    EXPECT_TRUE(q.step());
    EXPECT_EQ(count, 1);
    EXPECT_EQ(q.now(), 5u);
    EXPECT_TRUE(q.step());
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue q;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 10)
            q.scheduleAfter(1, chain);
    };
    q.scheduleAt(0, chain);
    q.run();
    EXPECT_EQ(depth, 10);
    EXPECT_EQ(q.now(), 9u);
}

TEST(EventQueue, RequestStopHaltsRun)
{
    EventQueue q;
    int count = 0;
    q.scheduleAt(1, [&] {
        ++count;
        q.requestStop();
    });
    q.scheduleAt(2, [&] { ++count; });
    q.run();
    EXPECT_EQ(count, 1);
    EXPECT_EQ(q.pendingEvents(), 1u);
}

TEST(EventQueue, PendingCountTracksCancellations)
{
    EventQueue q;
    const EventId a = q.scheduleAt(1, [] {});
    q.scheduleAt(2, [] {});
    EXPECT_EQ(q.pendingEvents(), 2u);
    q.cancel(a);
    EXPECT_EQ(q.pendingEvents(), 1u);
    q.run();
    EXPECT_EQ(q.pendingEvents(), 0u);
}

} // namespace
} // namespace bauvm
