/**
 * @file
 * Unit tests for the discrete-event simulation kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.h"
#ifdef BAUVM_LEGACY_DIFFERENTIAL
#include "src/sim/legacy_event_queue.h"
#endif // BAUVM_LEGACY_DIFFERENTIAL
#include "src/sim/rng.h"

namespace bauvm
{
namespace
{

TEST(EventQueue, StartsAtCycleZero)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.scheduleAt(30, [&] { order.push_back(3); });
    q.scheduleAt(10, [&] { order.push_back(1); });
    q.scheduleAt(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameCycleEventsRunInInsertionOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.scheduleAt(42, [&order, i] { order.push_back(i); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue q;
    Cycle seen = 0;
    q.scheduleAt(100, [&] {
        q.scheduleAfter(50, [&] { seen = q.now(); });
    });
    q.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    bool ran = false;
    const EventId id = q.scheduleAt(10, [&] { ran = true; });
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id)); // double cancel reports failure
    q.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(q.executedEvents(), 0u);
}

TEST(EventQueue, RunUntilLeavesFutureEventsPending)
{
    EventQueue q;
    int count = 0;
    q.scheduleAt(10, [&] { ++count; });
    q.scheduleAt(20, [&] { ++count; });
    q.scheduleAt(30, [&] { ++count; });
    q.run(20);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(q.pendingEvents(), 1u);
    q.run();
    EXPECT_EQ(count, 3);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue q;
    int count = 0;
    q.scheduleAt(5, [&] { ++count; });
    q.scheduleAt(6, [&] { ++count; });
    EXPECT_TRUE(q.step());
    EXPECT_EQ(count, 1);
    EXPECT_EQ(q.now(), 5u);
    EXPECT_TRUE(q.step());
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue q;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 10)
            q.scheduleAfter(1, chain);
    };
    q.scheduleAt(0, chain);
    q.run();
    EXPECT_EQ(depth, 10);
    EXPECT_EQ(q.now(), 9u);
}

TEST(EventQueue, RequestStopHaltsRun)
{
    EventQueue q;
    int count = 0;
    q.scheduleAt(1, [&] {
        ++count;
        q.requestStop();
    });
    q.scheduleAt(2, [&] { ++count; });
    q.run();
    EXPECT_EQ(count, 1);
    EXPECT_EQ(q.pendingEvents(), 1u);
}

TEST(EventQueue, PendingCountTracksCancellations)
{
    EventQueue q;
    const EventId a = q.scheduleAt(1, [] {});
    q.scheduleAt(2, [] {});
    EXPECT_EQ(q.pendingEvents(), 2u);
    q.cancel(a);
    EXPECT_EQ(q.pendingEvents(), 1u);
    q.run();
    EXPECT_EQ(q.pendingEvents(), 0u);
}

TEST(EventQueue, RunUntilBoundaryIsInclusive)
{
    EventQueue q;
    int count = 0;
    q.scheduleAt(100, [&] { ++count; });
    q.scheduleAt(101, [&] { ++count; });
    q.run(100); // event exactly AT the bound runs; beyond it stays
    EXPECT_EQ(count, 1);
    EXPECT_EQ(q.now(), 100u);
    EXPECT_EQ(q.pendingEvents(), 1u);
    q.run();
    EXPECT_EQ(count, 2);
    EXPECT_EQ(q.now(), 101u);
}

TEST(EventQueue, CancelledRingEventTombstonesUntilItsCycle)
{
    EventQueue q;
    bool ran = false;
    // Delay < kNearWindow: the record is an intrusive chain link, so
    // it parks as a tombstone instead of recycling immediately.
    const EventId id = q.scheduleAfter(5, [&] { ran = true; });
    ASSERT_TRUE(q.cancel(id));
    EXPECT_EQ(q.staleEntries(), 1u);
    q.scheduleAfter(10, [] {});
    q.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(q.staleEntries(), 0u); // reclaimed as it reached front
}

TEST(EventQueue, CancelThenRescheduleInvalidatesOldId)
{
    EventQueue q;
    // Far-future events recycle their slot immediately on cancel; the
    // next schedule reuses it under a new generation.
    const EventId stale =
        q.scheduleAt(50000, [] { FAIL() << "cancelled event ran"; });
    ASSERT_TRUE(q.cancel(stale));
    bool ran = false;
    const EventId fresh = q.scheduleAt(60000, [&] { ran = true; });
    EXPECT_NE(stale, fresh);
    EXPECT_FALSE(q.cancel(stale)); // old id must not hit the new event
    q.run();
    EXPECT_TRUE(ran);
}

TEST(EventQueue, SelfCancelInsideCallbackIsRejected)
{
    EventQueue q;
    EventId id = 0;
    bool cancel_result = true;
    id = q.scheduleAt(10, [&] { cancel_result = q.cancel(id); });
    q.run();
    EXPECT_FALSE(cancel_result); // the event is already running
    EXPECT_EQ(q.executedEvents(), 1u);
}

TEST(EventQueue, HeapTombstonesAreCompactedAway)
{
    EventQueue q;
    std::vector<EventId> ids;
    int survivors = 0;
    // All far-future (>= kNearWindow from now 0) => binary heap.
    for (int i = 0; i < 128; ++i)
        ids.push_back(q.scheduleAt(
            static_cast<Cycle>(100000 + i), [&] { ++survivors; }));
    for (int i = 0; i < 128; ++i) {
        if (i % 8 != 0)
            q.cancel(ids[i]);
    }
    EXPECT_GE(q.compactions(), 1u); // leak fix: tombstones reclaimed
    EXPECT_LT(q.staleEntries(), 64u);
    q.run();
    EXPECT_EQ(survivors, 16);
    EXPECT_EQ(q.staleEntries(), 0u);
}

TEST(EventQueue, HeapAndRingEventsAtSameCycleKeepInsertionOrder)
{
    // A far-future event (heap) and near-future events (ring) can land
    // on the same cycle once now() advances; insertion order must hold
    // across the two structures.
    EventQueue q;
    std::vector<int> order;
    const Cycle target = 2 * EventQueue::kNearWindow; // heap at t=0
    q.scheduleAt(target, [&] { order.push_back(0); });
    q.scheduleAt(target - 100, [&] {
        // Now within the window: these go to the calendar ring.
        q.scheduleAt(target, [&] { order.push_back(1); });
        q.scheduleAt(target, [&] { order.push_back(2); });
    });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(q.now(), target);
}

TEST(EventQueue, OversizedCaptureFallsBackToHeapOnce)
{
    const std::uint64_t before = EventQueue::Callback::heapFallbacks();
    EventQueue q;
    struct BigPayload {
        char pad[64]; // > kInlineCallbackBytes
        int *out;
        void operator()() { *out = pad[0]; }
    };
    int out = 0;
    BigPayload big{};
    big.pad[0] = 7;
    big.out = &out;
    q.scheduleAt(1, big);
    q.scheduleAt(2, [&out] { ++out; }); // small capture stays inline
    q.run();
    EXPECT_EQ(out, 8);
    EXPECT_EQ(EventQueue::Callback::heapFallbacks(), before + 1);
}

/**
 * Differential check: a deterministic schedule/cancel/run script must
 * produce the identical execution order on the slab/calendar kernel
 * and on the retained std::function + unordered_map reference.
 */
template <typename Queue>
std::vector<int>
runDifferentialScript()
{
    Queue q;
    Rng rng(0xbadc0ffee);
    std::vector<int> order;
    std::vector<std::uint64_t> ids; // EventId / LegacyEventId
    int label = 0;
    for (int i = 0; i < 300; ++i) {
        const auto when = static_cast<Cycle>(rng.nextBelow(6000));
        const int tag = label++;
        ids.push_back(q.scheduleAt(when, [&q, &order, tag, when] {
            order.push_back(tag);
            if (tag % 5 == 0) {
                // Chained follow-up straddling ring and heap horizons.
                q.scheduleAfter((tag % 2) ? 3 : 4000,
                                [&order, tag] {
                                    order.push_back(10000 + tag);
                                });
            }
        }));
    }
    for (std::size_t i = 0; i < ids.size(); i += 3)
        q.cancel(ids[i]);
    q.run(3000); // split the drain to exercise the until-boundary
    for (std::size_t i = 1; i < ids.size(); i += 7)
        q.cancel(ids[i]); // mostly stale by now; some still pending
    q.run();
    return order;
}

#ifdef BAUVM_LEGACY_DIFFERENTIAL
TEST(EventQueue, MatchesLegacyKernelOnRandomScript)
{
    const auto fast = runDifferentialScript<EventQueue>();
    const auto legacy = runDifferentialScript<LegacyEventQueue>();
    ASSERT_FALSE(fast.empty());
    EXPECT_EQ(fast, legacy);
}
#endif // BAUVM_LEGACY_DIFFERENTIAL

} // namespace
} // namespace bauvm
