/**
 * @file
 * Unit tests for the set-associative array underlying caches and TLBs.
 */

#include <gtest/gtest.h>

#include "src/mem/assoc_array.h"

namespace bauvm
{
namespace
{

TEST(AssocArray, MissOnEmpty)
{
    AssocArray a(8, 2);
    EXPECT_FALSE(a.lookup(5));
    EXPECT_FALSE(a.probe(5));
}

TEST(AssocArray, HitAfterInsert)
{
    AssocArray a(8, 2);
    a.insert(5);
    EXPECT_TRUE(a.lookup(5));
    EXPECT_TRUE(a.probe(5));
    EXPECT_EQ(a.validCount(), 1u);
}

TEST(AssocArray, LruEvictsOldestInSet)
{
    AssocArray a(4, 2); // 2 sets x 2 ways; keys 0,2,4 share set 0
    a.insert(0);
    a.insert(2);
    a.lookup(0); // refresh 0; 2 becomes LRU
    std::uint64_t evicted = 0;
    EXPECT_TRUE(a.insert(4, &evicted));
    EXPECT_EQ(evicted, 2u);
    EXPECT_TRUE(a.probe(0));
    EXPECT_FALSE(a.probe(2));
    EXPECT_TRUE(a.probe(4));
}

TEST(AssocArray, InsertExistingRefreshesWithoutEviction)
{
    AssocArray a(4, 2);
    a.insert(0);
    a.insert(2);
    EXPECT_FALSE(a.insert(0)); // no displacement
    std::uint64_t evicted = 0;
    a.insert(4, &evicted);
    EXPECT_EQ(evicted, 2u); // 0 was refreshed by the re-insert
}

TEST(AssocArray, SetsIsolateKeys)
{
    AssocArray a(4, 2); // keys 1,3 go to set 1
    a.insert(0);
    a.insert(2);
    a.insert(1); // different set: no eviction in set 0
    EXPECT_TRUE(a.probe(0));
    EXPECT_TRUE(a.probe(2));
}

TEST(AssocArray, FullyAssociativeUsesAllEntries)
{
    AssocArray a(4, 0);
    for (std::uint64_t k = 0; k < 4; ++k)
        a.insert(k * 17);
    EXPECT_EQ(a.validCount(), 4u);
    for (std::uint64_t k = 0; k < 4; ++k)
        EXPECT_TRUE(a.probe(k * 17));
    a.insert(999);
    EXPECT_EQ(a.validCount(), 4u); // one got displaced
}

TEST(AssocArray, InvalidateRemovesKey)
{
    AssocArray a(8, 2);
    a.insert(7);
    EXPECT_TRUE(a.invalidate(7));
    EXPECT_FALSE(a.invalidate(7));
    EXPECT_FALSE(a.probe(7));
}

TEST(AssocArray, FlushClearsEverything)
{
    AssocArray a(8, 0);
    for (std::uint64_t k = 0; k < 8; ++k)
        a.insert(k);
    a.flush();
    EXPECT_EQ(a.validCount(), 0u);
}

TEST(AssocArray, InvalidateIfPredicate)
{
    AssocArray a(8, 0);
    for (std::uint64_t k = 0; k < 8; ++k)
        a.insert(k);
    const std::size_t n =
        a.invalidateIf([](std::uint64_t k) { return k % 2 == 0; });
    EXPECT_EQ(n, 4u);
    EXPECT_EQ(a.validCount(), 4u);
    EXPECT_FALSE(a.probe(0));
    EXPECT_TRUE(a.probe(1));
}

TEST(AssocArray, InvalidateFullyClearsLineState)
{
    AssocArray a(4, 2);
    a.insert(0);
    a.insert(2);
    a.lookup(2); // give both lines nonzero last_use
    ASSERT_TRUE(a.invalidate(2));

    // The dead line must be wiped completely: a stale key could match
    // in a loop that forgets the valid check, and a stale last_use
    // would bias LRU victim choice.
    bool found_cleared = false;
    for (std::size_t s = 0; s < a.numSets(); ++s) {
        for (std::size_t w = 0; w < a.numWays(); ++w) {
            const auto l = a.lineAt(s, w);
            if (l.valid)
                continue;
            EXPECT_EQ(l.key, 0u);
            EXPECT_EQ(l.last_use, 0u);
            found_cleared = true;
        }
    }
    EXPECT_TRUE(found_cleared);

    // And a cleared line is treated as empty, not as the LRU loser:
    // the next insert into that set reuses it without displacing 0.
    std::uint64_t evicted = 0;
    EXPECT_FALSE(a.insert(4, &evicted));
    EXPECT_TRUE(a.probe(0));
}

TEST(AssocArray, FlushClearsLineStateEverywhere)
{
    AssocArray a(8, 0);
    for (std::uint64_t k = 0; k < 8; ++k)
        a.insert(k);
    a.flush();
    for (std::size_t w = 0; w < a.numWays(); ++w) {
        const auto l = a.lineAt(0, w);
        EXPECT_FALSE(l.valid);
        EXPECT_EQ(l.key, 0u);
        EXPECT_EQ(l.last_use, 0u);
    }
}

TEST(AssocArray, ProbeDoesNotDisturbLru)
{
    AssocArray a(4, 2);
    a.insert(0);
    a.insert(2);
    a.probe(0); // must NOT refresh
    std::uint64_t evicted = 0;
    a.insert(4, &evicted);
    EXPECT_EQ(evicted, 0u); // 0 still LRU
}

} // namespace
} // namespace bauvm
