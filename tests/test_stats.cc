/**
 * @file
 * Unit tests for RunningStat, Histogram and StatRegistry.
 */

#include <gtest/gtest.h>

#include <limits>

#include "src/sim/stats.h"

namespace bauvm
{
namespace
{

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStat, TracksMinMaxMeanSum)
{
    RunningStat s;
    for (double v : {4.0, 1.0, 7.0})
        s.add(v);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_EQ(s.min(), 1.0);
    EXPECT_EQ(s.max(), 7.0);
    EXPECT_DOUBLE_EQ(s.sum(), 12.0);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
}

TEST(RunningStat, MergeCombines)
{
    RunningStat a, b;
    a.add(1.0);
    a.add(2.0);
    b.add(10.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_EQ(a.max(), 10.0);
    EXPECT_EQ(a.min(), 1.0);
}

TEST(RunningStat, ResetClears)
{
    RunningStat s;
    s.add(5.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(Histogram, BucketsLinearly)
{
    Histogram h(10.0, 4); // [0,10) [10,20) [20,30) [30,40) + overflow
    h.add(0.0);
    h.add(9.999);
    h.add(10.0);
    h.add(35.0);
    h.add(40.0); // overflow
    h.add(1000.0);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 0u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.overflowCount(), 2u);
    EXPECT_EQ(h.summary().count(), 6u);
}

TEST(Histogram, FractionsSumToOne)
{
    Histogram h(1.0, 10);
    for (int i = 0; i < 10; ++i)
        h.add(i + 0.5);
    double total = 0.0;
    for (std::size_t i = 0; i < h.numBuckets(); ++i)
        total += h.bucketFraction(i);
    EXPECT_DOUBLE_EQ(total, 1.0);
}

TEST(RunningStat, NonFiniteSamplesAreTalliedNotFolded)
{
    RunningStat s;
    s.add(1.0);
    s.add(std::numeric_limits<double>::quiet_NaN());
    s.add(std::numeric_limits<double>::infinity());
    s.add(-std::numeric_limits<double>::infinity());
    s.add(3.0);
    // A single NaN must not poison mean/min/max/sum.
    EXPECT_EQ(s.count(), 2u);
    EXPECT_EQ(s.nonfiniteCount(), 3u);
    EXPECT_DOUBLE_EQ(s.sum(), 4.0);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_EQ(s.min(), 1.0);
    EXPECT_EQ(s.max(), 3.0);
}

TEST(RunningStat, MergePropagatesNonfiniteCount)
{
    RunningStat a, b;
    a.add(std::numeric_limits<double>::quiet_NaN());
    b.add(2.0);
    b.add(std::numeric_limits<double>::infinity());
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    EXPECT_EQ(a.nonfiniteCount(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(Histogram, NonFiniteSamplesDoNotTouchBuckets)
{
    Histogram h(1.0, 4);
    h.add(std::numeric_limits<double>::quiet_NaN()); // would be UB cast
    h.add(std::numeric_limits<double>::infinity());
    h.add(2.5);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.overflowCount(), 0u);
    EXPECT_EQ(h.summary().count(), 1u);
    EXPECT_EQ(h.summary().nonfiniteCount(), 2u);
}

TEST(Histogram, BucketLowBounds)
{
    Histogram h(2.5, 4);
    EXPECT_DOUBLE_EQ(h.bucketLow(0), 0.0);
    EXPECT_DOUBLE_EQ(h.bucketLow(3), 7.5);
}

TEST(StatRegistry, SnapshotEvaluatesLazily)
{
    StatRegistry reg;
    std::uint64_t counter = 0;
    reg.add("counter", &counter);
    counter = 42;
    const auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].first, "counter");
    EXPECT_EQ(snap[0].second, 42.0);
}

TEST(StatRegistry, ValueLookupByName)
{
    StatRegistry reg;
    reg.add("pi", [] { return 3.14; });
    EXPECT_DOUBLE_EQ(reg.value("pi"), 3.14);
    EXPECT_TRUE(reg.has("pi"));
    EXPECT_FALSE(reg.has("tau"));
}

} // namespace
} // namespace bauvm
