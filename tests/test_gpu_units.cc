/**
 * @file
 * Unit tests for the GPU-side building blocks: coalescer, occupancy,
 * warp coroutines.
 */

#include <gtest/gtest.h>

#include "src/gpu/coalescer.h"
#include "src/gpu/occupancy.h"
#include "src/gpu/warp_program.h"

namespace bauvm
{
namespace
{

TEST(Coalescer, FullyCoalescedWarpIsOneTransaction)
{
    Coalescer c(128);
    std::vector<VAddr> addrs;
    for (int lane = 0; lane < 32; ++lane)
        addrs.push_back(0x1000 + lane * 4);
    const auto lines = c.coalesce(addrs);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], 0x1000u);
}

TEST(Coalescer, StridedAccessSplits)
{
    Coalescer c(128);
    std::vector<VAddr> addrs;
    for (int lane = 0; lane < 32; ++lane)
        addrs.push_back(lane * 128);
    EXPECT_EQ(c.coalesce(addrs).size(), 32u);
}

TEST(Coalescer, DuplicateAddressesMerge)
{
    Coalescer c(128);
    std::vector<VAddr> addrs(32, 0x2000);
    EXPECT_EQ(c.coalesce(addrs).size(), 1u);
}

TEST(Coalescer, OutputSortedLineBases)
{
    Coalescer c(128);
    const auto lines = c.coalesce({1000, 5, 300});
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_EQ(lines[0], 0u);
    EXPECT_EQ(lines[1], 256u);
    EXPECT_EQ(lines[2], 896u);
}

TEST(Coalescer, DivergenceStatistic)
{
    Coalescer c(128);
    c.coalesce({0, 4, 8});       // 1 transaction
    c.coalesce({0, 128, 256});   // 3 transactions
    EXPECT_EQ(c.memoryInstructions(), 2u);
    EXPECT_EQ(c.transactions(), 4u);
    EXPECT_DOUBLE_EQ(c.transactionsPerInstruction(), 2.0);
}

KernelInfo
kernelWith(std::uint32_t tpb, std::uint32_t regs, std::uint32_t smem = 0)
{
    KernelInfo k;
    k.name = "test";
    k.threads_per_block = tpb;
    k.regs_per_thread = regs;
    k.smem_bytes_per_block = smem;
    return k;
}

TEST(Occupancy, ThreadLimited)
{
    GpuConfig g;
    const Occupancy occ = computeOccupancy(g, kernelWith(256, 8));
    EXPECT_EQ(occ.thread_limit, 4u);
    EXPECT_EQ(occ.blocks_per_sm, 4u);
    EXPECT_TRUE(occ.sparseCapacityForExtraBlock());
}

TEST(Occupancy, RegisterLimited)
{
    GpuConfig g; // 256 KB regfile
    // 128 threads x 200 regs x 4B = 100 KB per block -> 2 blocks.
    const Occupancy occ = computeOccupancy(g, kernelWith(128, 200));
    EXPECT_EQ(occ.register_limit, 2u);
    EXPECT_EQ(occ.blocks_per_sm, 2u);
}

TEST(Occupancy, GraphKernelHasNoSpareCapacity)
{
    // The paper's argument: at 256 threads x 56 regs, thread and
    // register limits are both ~4: baseline VT cannot host an extra
    // block for free.
    GpuConfig g;
    const Occupancy occ = computeOccupancy(g, kernelWith(256, 56));
    EXPECT_EQ(occ.blocks_per_sm, 4u);
    EXPECT_FALSE(occ.sparseCapacityForExtraBlock());
}

TEST(Occupancy, SharedMemoryLimited)
{
    GpuConfig g;
    const Occupancy occ = computeOccupancy(g, kernelWith(64, 8, 40000));
    EXPECT_EQ(occ.smem_limit, 1u);
    EXPECT_EQ(occ.blocks_per_sm, 1u);
}

TEST(Occupancy, ContextBytesCountRegistersPlusState)
{
    const KernelInfo k = kernelWith(256, 56);
    EXPECT_EQ(contextBytes(k, 5 * 1024), 256u * 56 * 4 + 5 * 1024);
}

WarpProgram
threeOps(WarpCtx)
{
    co_yield WarpOp::compute(5);
    co_yield loadOf(VAddr{0x100}, VAddr{0x200});
    co_yield WarpOp::sync();
}

TEST(WarpProgram, GeneratorYieldsOpsInOrder)
{
    WarpProgram p = threeOps(WarpCtx{});
    ASSERT_TRUE(p.advance());
    EXPECT_EQ(p.current().kind, WarpOp::Kind::Compute);
    EXPECT_EQ(p.current().cycles, 5u);
    ASSERT_TRUE(p.advance());
    EXPECT_EQ(p.current().kind, WarpOp::Kind::Load);
    EXPECT_EQ(p.current().addrs.size(), 2u);
    ASSERT_TRUE(p.advance());
    EXPECT_EQ(p.current().kind, WarpOp::Kind::Sync);
    EXPECT_FALSE(p.advance());
}

TEST(WarpProgram, MoveTransfersOwnership)
{
    WarpProgram p = threeOps(WarpCtx{});
    WarpProgram q = std::move(p);
    EXPECT_FALSE(p.valid());
    EXPECT_TRUE(q.valid());
    EXPECT_TRUE(q.advance());
}

TEST(WarpProgram, LaneHelpers)
{
    WarpCtx ctx;
    ctx.block_id = 3;
    ctx.warp_in_block = 2;
    ctx.threads_per_block = 96; // 3 warps of 32
    ctx.num_blocks = 8;
    EXPECT_EQ(ctx.laneCount(), 32u);
    EXPECT_EQ(ctx.globalThread(5), 3u * 96 + 2 * 32 + 5);
    EXPECT_EQ(ctx.totalThreads(), 768u);

    ctx.threads_per_block = 80; // warp 2 covers threads 64..79
    EXPECT_EQ(ctx.laneCount(), 16u);
    ctx.warp_in_block = 3; // past the end
    EXPECT_EQ(ctx.laneCount(), 0u);
}

TEST(WarpOp, KindPredicates)
{
    EXPECT_TRUE(WarpOp::load(LaneVec{}).isMemory());
    EXPECT_TRUE(WarpOp::store(LaneVec{}).isMemory());
    EXPECT_TRUE(WarpOp::atomic(LaneVec{}).isMemory());
    EXPECT_FALSE(WarpOp::compute(1).isMemory());
    EXPECT_FALSE(WarpOp::sync().isMemory());
}

} // namespace
} // namespace bauvm
