/**
 * @file
 * Dispatcher-level tests: initial assignment, refill, promotion of
 * inactive blocks at the grid tail, ETC-style SM disabling, and the
 * oversubscription pool.
 */

#include <gtest/gtest.h>

#include "src/core/presets.h"
#include "src/core/system.h"
#include "src/workloads/workload_registry.h"

namespace bauvm
{
namespace
{

/** Builds a tiny system and exposes dispatcher observables. */
struct DispatcherProbe {
    explicit DispatcherProbe(SimConfig config)
        : system(config)
    {
    }

    RunResult
    run(const std::string &name)
    {
        workload = WorkloadRegistry::instance().create(name);
        RunResult r = system.run(*workload,
                                 WorkloadScale::Tiny);
        workload->validate();
        return r;
    }

    GpuUvmSystem system;
    std::unique_ptr<Workload> workload;
};

TEST(BlockDispatcher, BaselineResidencyRespectsOccupancy)
{
    DispatcherProbe probe(paperConfig(0.0));
    probe.run("BFS-TTC");
    // After the run, every SM drained its blocks.
    for (std::uint32_t s = 0; s < probe.system.gpu().numSms(); ++s)
        EXPECT_EQ(probe.system.gpu().sm(s).activeBlocks(), 0u);
    EXPECT_TRUE(probe.system.gpu().dispatcher().done());
}

TEST(BlockDispatcher, AllBlocksFinishExactlyOnce)
{
    DispatcherProbe probe(paperConfig(0.5));
    probe.run("BFS-TWC");
    EXPECT_TRUE(probe.system.gpu().dispatcher().done());
}

TEST(BlockDispatcher, ToResidencyIncludesExtras)
{
    SimConfig config = applyPolicy(paperConfig(0.5), Policy::To);
    DispatcherProbe probe(config);
    const RunResult r = probe.run("BFS-TWC");
    // Oversubscribed blocks existed: context switches prove extras
    // were resident and used.
    EXPECT_GT(r.context_switches, 0u);
    EXPECT_TRUE(probe.system.gpu().dispatcher().done());
}

TEST(BlockDispatcher, DisabledSmsGetNoWork)
{
    SimConfig config = paperConfig(0.0);
    config.uvm.preload = true;
    auto workload = WorkloadRegistry::instance().create("PR");
    GpuUvmSystem system(config);
    // Disable the upper half before the run starts.
    for (std::uint32_t s = 8; s < 16; ++s)
        system.gpu().dispatcher().setSmEnabled(s, false);
    system.run(*workload, WorkloadScale::Tiny);
    workload->validate();
    for (std::uint32_t s = 8; s < 16; ++s)
        EXPECT_EQ(system.gpu().sm(s).issuedInstructions(), 0u);
    for (std::uint32_t s = 0; s < 8; ++s)
        EXPECT_GT(system.gpu().sm(s).issuedInstructions(), 0u);
    EXPECT_EQ(system.gpu().dispatcher().enabledSms(), 8u);
}

TEST(BlockDispatcher, ThrottledRunIsSlower)
{
    auto run_with_sms = [](std::uint32_t enabled) {
        SimConfig config = paperConfig(0.0);
        config.uvm.preload = true;
        auto workload = WorkloadRegistry::instance().create("PR");
        GpuUvmSystem system(config);
        for (std::uint32_t s = enabled; s < 16; ++s)
            system.gpu().dispatcher().setSmEnabled(s, false);
        return system.run(*workload, WorkloadScale::Tiny).cycles;
    };
    EXPECT_GT(run_with_sms(4), run_with_sms(16));
}

} // namespace
} // namespace bauvm
