/**
 * @file
 * Functional validation of every workload through the round-robin
 * executor (no timing model): each kernel sequence must converge and
 * reproduce the reference CPU algorithm's results. Parameterized over
 * all 11 irregular + 6 regular workloads.
 */

#include <gtest/gtest.h>

#include <set>

#include "src/workloads/workload.h"
#include "src/workloads/workload_registry.h"

namespace bauvm
{
namespace
{

class WorkloadFunctional
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadFunctional, ConvergesAndValidates)
{
    auto workload = WorkloadRegistry::instance().create(GetParam());
    workload->build(WorkloadScale::Tiny, /*seed=*/1);
    runFunctional(*workload);
    workload->validate();
}

TEST_P(WorkloadFunctional, DeterministicAcrossRebuilds)
{
    auto a = WorkloadRegistry::instance().create(GetParam());
    a->build(WorkloadScale::Tiny, 7);
    runFunctional(*a);
    auto b = WorkloadRegistry::instance().create(GetParam());
    b->build(WorkloadScale::Tiny, 7);
    runFunctional(*b);
    EXPECT_EQ(a->footprintBytes(), b->footprintBytes());
}

TEST_P(WorkloadFunctional, FootprintMatchesAllocations)
{
    auto workload = WorkloadRegistry::instance().create(GetParam());
    workload->build(WorkloadScale::Tiny, 1);
    std::uint64_t sum = 0;
    for (const auto &r : workload->allocator().ranges()) {
        EXPECT_EQ(r.base % workload->allocator().pageBytes(), 0u)
            << "allocation must be page aligned";
        sum += (r.bytes + 65535) / 65536 * 65536;
    }
    EXPECT_EQ(sum, workload->footprintBytes());
    EXPECT_GT(sum, 0u);
}

TEST_P(WorkloadFunctional, PagesTouchedStayInsideAllocations)
{
    auto workload = WorkloadRegistry::instance().create(GetParam());
    workload->build(WorkloadScale::Tiny, 1);
    std::set<PageNum> valid;
    for (const auto &r : workload->allocator().ranges()) {
        for (PageNum p = r.base / 65536;
             p <= (r.base + r.bytes - 1) / 65536; ++p) {
            valid.insert(p);
        }
    }
    bool violation = false;
    runFunctional(*workload, 65536,
                  [&](std::uint32_t, PageNum page) {
                      if (!valid.count(page))
                          violation = true;
                  });
    EXPECT_FALSE(violation) << "kernel touched unallocated memory";
}

std::vector<std::string>
allWorkloadNames()
{
    std::vector<std::string> names = WorkloadRegistry::instance().enumerate(WorkloadKind::Irregular);
    for (const auto &r : WorkloadRegistry::instance().enumerate(WorkloadKind::Regular))
        names.push_back(r);
    for (const auto &f : WorkloadRegistry::instance().enumerate(
             WorkloadKind::Frontier))
        names.push_back(f);
    return names;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadFunctional,
    ::testing::ValuesIn(allWorkloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace bauvm
