/**
 * @file
 * Parameterized property sweeps over hardware geometry: caches, TLBs,
 * fault-buffer capacity and PCIe bandwidth must respect monotonicity
 * and conservation invariants across their configuration spaces.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "src/mem/cache.h"
#include "src/mem/memory_hierarchy.h"
#include "src/mem/tlb.h"
#include "src/sim/rng.h"
#include "src/uvm/fault_buffer.h"
#include "src/uvm/pcie_link.h"

namespace bauvm
{
namespace
{

// ---------------------------------------------------------------- TLB

class TlbGeometry
    : public ::testing::TestWithParam<std::tuple<std::uint32_t,
                                                 std::uint32_t>>
{
};

TEST_P(TlbGeometry, WorkingSetWithinCapacityAlwaysHits)
{
    const auto [entries, assoc] = GetParam();
    Tlb tlb(TlbConfig{entries, assoc, 1}, "t");
    // Touch exactly `ways` pages of a single set, then re-touch: with
    // true LRU they all still hit.
    const std::uint32_t ways = assoc == 0 ? entries : assoc;
    const std::uint32_t sets = entries / ways;
    for (std::uint32_t i = 0; i < ways; ++i)
        tlb.insert(static_cast<PageNum>(i) * sets);
    for (std::uint32_t i = 0; i < ways; ++i)
        EXPECT_TRUE(tlb.lookup(static_cast<PageNum>(i) * sets));
}

TEST_P(TlbGeometry, HitsPlusMissesEqualLookups)
{
    const auto [entries, assoc] = GetParam();
    Tlb tlb(TlbConfig{entries, assoc, 1}, "t");
    Rng rng(3);
    const int lookups = 5000;
    for (int i = 0; i < lookups; ++i) {
        const PageNum vpn = rng.nextBelow(entries * 4);
        if (!tlb.lookup(vpn))
            tlb.insert(vpn);
    }
    EXPECT_EQ(tlb.hits() + tlb.misses(),
              static_cast<std::uint64_t>(lookups));
    EXPECT_GT(tlb.hits(), 0u);
    EXPECT_GT(tlb.misses(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TlbGeometry,
    ::testing::Values(std::make_tuple(16u, 0u),
                      std::make_tuple(64u, 0u),
                      std::make_tuple(64u, 4u),
                      std::make_tuple(1024u, 32u),
                      std::make_tuple(256u, 8u)));

// -------------------------------------------------------------- Cache

class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<std::uint64_t,
                                                 std::uint32_t>>
{
};

TEST_P(CacheGeometry, BiggerCacheNeverHitsLess)
{
    const auto [size, assoc] = GetParam();
    Cache small(CacheConfig{size, assoc, 128, 10}, "s");
    Cache big(CacheConfig{size * 4, assoc, 128, 10}, "b");
    Rng rng(11);
    for (int i = 0; i < 20000; ++i) {
        // Zipf-ish reuse: low line numbers dominate.
        const std::uint64_t line =
            rng.nextBelow(rng.nextBool(0.8) ? 64 : 4096);
        small.access(line, false);
        big.access(line, false);
    }
    EXPECT_GE(big.hits(), small.hits());
}

TEST_P(CacheGeometry, SequentialRefillEvictsEverything)
{
    const auto [size, assoc] = GetParam();
    Cache c(CacheConfig{size, assoc, 128, 10}, "c");
    const std::uint64_t lines = size / 128;
    // Two passes over 2x the capacity: second pass of the first half
    // must miss again (LRU evicted it during the tail of pass one).
    for (std::uint64_t i = 0; i < 2 * lines; ++i)
        c.access(i, false);
    const auto misses_before = c.misses();
    for (std::uint64_t i = 0; i < lines / 2; ++i)
        c.access(i, false);
    EXPECT_GT(c.misses(), misses_before);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(std::make_tuple(4096ull, 2u),
                      std::make_tuple(16384ull, 4u),
                      std::make_tuple(65536ull, 8u),
                      std::make_tuple(2097152ull, 16u)));

// -------------------------------------------------------- FaultBuffer

class FaultBufferCapacity
    : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(FaultBufferCapacity, NeverHoldsMoreThanCapacity)
{
    PageMetaTable meta;
    FaultBuffer fb(GetParam(), meta);
    for (PageNum p = 0; p < 4096; ++p)
        fb.insert(p, p);
    EXPECT_LE(fb.size(), GetParam());
}

TEST_P(FaultBufferCapacity, DrainsEverythingEventually)
{
    const std::uint32_t cap = GetParam();
    PageMetaTable meta;
    FaultBuffer fb(cap, meta);
    const PageNum total = cap * 3;
    for (PageNum p = 0; p < total; ++p)
        fb.insert(p, p);
    PageNum drained = 0;
    while (!fb.empty())
        drained += fb.drain().size();
    EXPECT_EQ(drained, total);
}

INSTANTIATE_TEST_SUITE_P(Capacities, FaultBufferCapacity,
                         ::testing::Values(1u, 16u, 64u, 256u, 1024u));

// --------------------------------------------------------------- PCIe

class PcieBandwidth : public ::testing::TestWithParam<double>
{
};

TEST_P(PcieBandwidth, DurationScalesInverselyWithBandwidth)
{
    UvmConfig config;
    config.pcie_gbps = GetParam();
    PcieLink link(config);
    const Cycle t = link.transferCycles(1 << 20);
    const double expected = (1 << 20) / GetParam();
    EXPECT_NEAR(static_cast<double>(t), expected, 1.0);
}

TEST_P(PcieBandwidth, BusyCyclesSumOfTransfers)
{
    UvmConfig config;
    config.pcie_gbps = GetParam();
    PcieLink link(config);
    Cycle sum = 0;
    for (int i = 0; i < 10; ++i)
        sum += link.transferCycles(64 * 1024);
    for (int i = 0; i < 10; ++i)
        link.transfer(PcieDir::HostToDevice, 64 * 1024, 0);
    EXPECT_EQ(link.busyCycles(PcieDir::HostToDevice), sum);
}

INSTANTIATE_TEST_SUITE_P(Rates, PcieBandwidth,
                         ::testing::Values(4.0, 15.75, 31.5, 63.0));

// -------------------------------------------- hierarchy monotonicity

class PageCountSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(PageCountSweep, ResidentPagesNeverFault)
{
    const std::uint32_t pages = GetParam();
    MemConfig config;
    PageTable pt;
    for (PageNum p = 0; p < pages; ++p)
        pt.map(p, p);
    MemoryHierarchy hier(config, 1, 64 * 1024, pt);
    Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
        const VAddr addr = rng.nextBelow(pages) * 64 * 1024 +
                           rng.nextBelow(64 * 1024 / 4) * 4;
        const MemResult r = hier.access(0, addr, false, i * 10);
        EXPECT_FALSE(r.fault);
    }
    EXPECT_EQ(hier.faults(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PageCountSweep,
                         ::testing::Values(1u, 8u, 64u, 512u));

} // namespace
} // namespace bauvm
