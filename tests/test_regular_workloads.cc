/**
 * @file
 * Tests for the Fig-1 regular workload suite: block-partitioned
 * working sets, functional correctness through both the functional
 * executor and the full simulator, and the Fig 1 contrast property.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/core/presets.h"
#include "src/core/system.h"
#include "src/workloads/workload.h"
#include "src/workloads/workload_registry.h"

namespace bauvm
{
namespace
{

class RegularWorkloads : public ::testing::TestWithParam<std::string>
{
};

TEST_P(RegularWorkloads, BlocksPartitionPages)
{
    // Each thread block must touch a disjoint-ish tile: across blocks,
    // a page may be shared only at tile boundaries, so the number of
    // pages shared by more than a handful of blocks must be zero.
    auto workload = WorkloadRegistry::instance().create(GetParam());
    workload->build(WorkloadScale::Small, 1);
    std::map<PageNum, std::set<std::uint32_t>> owners;
    runFunctional(*workload, 64 * 1024,
                  [&](std::uint32_t block, PageNum page) {
                      owners[page].insert(block);
                  });
    for (const auto &[page, blocks] : owners) {
        // A 64KB page spans at most a few 8KB-ish tiles.
        EXPECT_LE(blocks.size(), 10u)
            << "page " << page << " shared too widely for a "
            << "block-partitioned kernel";
    }
}

TEST_P(RegularWorkloads, SimulatedRunValidates)
{
    SimConfig config = paperConfig(0.5);
    const RunResult r = runWorkload(config, GetParam(),
                                    WorkloadScale::Tiny,
                                    /*validate=*/true);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.migrations, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, RegularWorkloads,
    ::testing::ValuesIn(WorkloadRegistry::instance().enumerate(WorkloadKind::Regular)));

TEST(Fig1Property, IrregularSharesPagesMoreThanRegular)
{
    // The Fig 1 contrast, as a testable property: the fraction of
    // pages touched by >25% of all blocks is much higher for a
    // warp-centric graph workload than for a regular tiled one.
    // The regular workload needs multi-page arrays for "sharing" to be
    // meaningful (at Tiny its whole array fits in one 64 KB page), so
    // it runs at Small; the graph workload is fine at Tiny.
    auto shared_fraction = [](const std::string &name) {
        auto workload = WorkloadRegistry::instance().create(name);
        workload->build(name == "GM" ? WorkloadScale::Small
                                     : WorkloadScale::Tiny,
                        1);
        std::map<PageNum, std::set<std::uint32_t>> owners;
        std::uint32_t max_block = 0;
        runFunctional(*workload, 64 * 1024,
                      [&](std::uint32_t block, PageNum page) {
                          owners[page].insert(block);
                          max_block = std::max(max_block, block);
                      });
        std::size_t shared = 0;
        for (const auto &[page, blocks] : owners) {
            if (blocks.size() > (max_block + 1) / 4)
                ++shared;
        }
        return static_cast<double>(shared) /
               static_cast<double>(owners.size());
    };
    EXPECT_GT(shared_fraction("PR"), shared_fraction("GM"));
}

} // namespace
} // namespace bauvm
