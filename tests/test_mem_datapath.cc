/**
 * @file
 * Tests pinning the dense-PageMetaTable memory data path to the
 * hash-map reference it replaced (src/uvm/legacy_mem_path.h):
 *
 *  - PageMeta mechanics: version wrap on unmap, refault (premature
 *    eviction) counting, waiter-list FIFO wake order through the
 *    runtime's pooled slab.
 *  - Randomized differential: identical commit/evict sequences through
 *    GpuMemoryManager and LegacyGpuMemoryManager must produce the same
 *    victim sequence and counters across chunk granularities.
 *  - Trace replay differential: a traced baseline fig11-style cell's
 *    Migration/Eviction stream, replayed through the legacy manager,
 *    must reproduce the production eviction order page for page.
 *  - Prefetcher and fault-buffer differentials against their legacy
 *    twins on randomized batches.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/core/experiment.h"
#include "src/core/presets.h"
#include "src/core/system.h"
#include "src/mem/memory_hierarchy.h"
#include "src/mem/page_table.h"
#include "src/runner/job.h"
#include "src/sim/event_queue.h"
#include "src/sim/rng.h"
#include "src/trace/trace_sink.h"
#include "src/uvm/fault_buffer.h"
#include "src/uvm/gpu_memory_manager.h"
#ifdef BAUVM_LEGACY_DIFFERENTIAL
#include "src/uvm/legacy_mem_path.h"
#endif // BAUVM_LEGACY_DIFFERENTIAL
#include "src/uvm/prefetcher.h"
#include "src/uvm/uvm_runtime.h"
#include "src/workloads/workload_registry.h"

namespace bauvm
{
namespace
{

// ----------------------------------------------------- PageMeta units

TEST(PageMeta, VersionWrapsOnUnmap)
{
    PageTable pt;
    pt.map(5, 1);
    // The version counter tags cache/TLB entries; it deliberately
    // wraps rather than saturating (stale tags are invalidated
    // eagerly, so reuse after 2^32 unmaps is harmless).
    pt.meta().at(5).version = 0xFFFFFFFFu;
    pt.unmap(5);
    EXPECT_EQ(pt.meta().version(5), 0u);
    pt.map(5, 2);
    pt.unmap(5);
    EXPECT_EQ(pt.meta().version(5), 1u);
}

TEST(PageMeta, ConstQueriesNeverGrowTheTable)
{
    PageMetaTable meta;
    meta.ensure(10);
    const std::size_t size = meta.size();
    const PageMetaTable &cmeta = meta;
    EXPECT_FALSE(cmeta.resident(1 << 20));
    EXPECT_FALSE(cmeta.valid(1 << 20));
    EXPECT_FALSE(cmeta.inFlight(1 << 20));
    EXPECT_EQ(cmeta.version(1 << 20), 0u);
    EXPECT_EQ(cmeta.find(1 << 20), nullptr);
    EXPECT_EQ(meta.size(), size);
}

TEST(GpuMemoryManagerMeta, RefaultCountsPrematureEvictions)
{
    UvmConfig config;
    GpuMemoryManager mgr(config, 2);
    mgr.reserveFrame();
    mgr.commitPage(7, 100);
    mgr.reserveFrame();
    mgr.commitPage(9, 110);

    PageNum victim = 0;
    ASSERT_TRUE(mgr.beginEviction(&victim, 200));
    EXPECT_EQ(victim, 7u);
    mgr.completeEviction(victim);
    EXPECT_EQ(mgr.prematureEvictions(), 0u);

    // Refaulting the evicted page marks that eviction premature...
    mgr.reserveFrame();
    mgr.commitPage(7, 300);
    EXPECT_EQ(mgr.prematureEvictions(), 1u);

    // ...exactly once: evict and refault again to prove the pending
    // count decrements instead of sticking.
    ASSERT_TRUE(mgr.beginEviction(&victim, 400));
    EXPECT_EQ(victim, 9u);
    mgr.completeEviction(victim);
    mgr.reserveFrame();
    mgr.commitPage(9, 500);
    EXPECT_EQ(mgr.prematureEvictions(), 2u);
    ASSERT_TRUE(mgr.beginEviction(&victim, 600));
    mgr.completeEviction(victim);
    mgr.reserveFrame();
    mgr.commitPage(victim, 700);
    EXPECT_EQ(mgr.prematureEvictions(), 3u);
}

TEST(UvmRuntimeWaiters, WakeInFifoRegistrationOrder)
{
    UvmConfig config;
    EventQueue events;
    GpuMemoryManager manager(config, 8);
    MemoryHierarchy hierarchy(MemConfig{}, 1, config.page_bytes,
                              manager.pageTable());
    UvmRuntime runtime(config, events, manager, hierarchy);
    runtime.registerAllocation(0, 16 * config.page_bytes);

    std::vector<int> order;
    for (int i = 0; i < 4; ++i)
        runtime.onPageFault(3, [&order, i](Cycle) {
            order.push_back(i);
        });
    events.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));

    // A waiter on an already-resident page is woken immediately,
    // without disturbing other pages' lists.
    bool woken = false;
    runtime.onPageFault(3, [&woken](Cycle) { woken = true; });
    EXPECT_TRUE(woken);
}

// ---------------------------------------- randomized differential LRU

#ifdef BAUVM_LEGACY_DIFFERENTIAL

class ManagerDifferential
    : public ::testing::TestWithParam<std::uint32_t>
{
};

/**
 * Drives the production and legacy managers through one identical
 * randomized commit/evict interleaving and asserts every eviction
 * victim and every counter matches.
 */
TEST_P(ManagerDifferential, VictimSequenceMatchesLegacy)
{
    UvmConfig config;
    config.root_chunk_pages = GetParam();
    const std::uint64_t kCapacity = 64;
    GpuMemoryManager mgr(config, kCapacity);
    LegacyGpuMemoryManager legacy(config, kCapacity);

    Rng rng(42 + GetParam());
    Cycle now = 0;
    std::uint64_t victims_checked = 0;
    for (int op = 0; op < 20000; ++op) {
        now += 1 + rng.nextBelow(5);
        const bool evict =
            mgr.committedFrames() > 0 &&
            (!mgr.hasFreeFrame() || rng.nextBool(0.3));
        if (evict) {
            PageNum v_new = 0, v_old = 0;
            const bool ok_new = mgr.beginEviction(&v_new, now);
            const bool ok_old = legacy.beginEviction(&v_old, now);
            ASSERT_EQ(ok_new, ok_old);
            if (ok_new) {
                ASSERT_EQ(v_new, v_old) << "op " << op;
                mgr.completeEviction(v_new);
                legacy.completeEviction(v_old);
                ++victims_checked;
            }
            continue;
        }
        // Commit a random non-resident page; skewed low so refaults
        // (premature evictions) actually happen.
        const PageNum vpn =
            rng.nextBelow(rng.nextBool(0.7) ? 128 : 1024);
        ASSERT_EQ(mgr.isResident(vpn), legacy.isResident(vpn));
        if (mgr.isResident(vpn))
            continue;
        mgr.reserveFrame();
        legacy.reserveFrame();
        mgr.commitPage(vpn, now);
        legacy.commitPage(vpn, now);
    }
    EXPECT_GT(victims_checked, 1000u);
    EXPECT_EQ(mgr.evictions(), legacy.evictions());
    EXPECT_EQ(mgr.migrations(), legacy.migrations());
    EXPECT_EQ(mgr.prematureEvictions(), legacy.prematureEvictions());
    EXPECT_GT(mgr.prematureEvictions(), 0u);
    EXPECT_EQ(mgr.committedFrames(), legacy.committedFrames());
    EXPECT_EQ(mgr.pageTable().residentPages(),
              legacy.pageTable().residentPages());
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, ManagerDifferential,
                         ::testing::Values(1u, 4u, 32u));

// --------------------------------------- trace replay differential

/**
 * Replays a traced cell's migration/eviction stream through the legacy
 * manager. Commits land at each Migration interval's end (the PCIe H2D
 * FIFO delivers arrivals in emission order), evictions at each Eviction
 * interval's begin (the victim was chosen when its D2H transfer was
 * launched); on a cycle tie the commit replays first, matching the
 * arrival -> re-pump call order. Chunk granularity 1 makes same-window
 * commits and evictions commute (a commit appends a non-resident
 * page's chunk to the LRU tail, an eviction pops a resident head), so
 * this reconstruction is exact.
 */
TEST(TraceReplayDifferential, EvictionOrderMatchesLegacyReplay)
{
    SimConfig config =
        paperConfig(0.5, deriveWorkloadSeed(1, "BFS-TWC"));
    config = applyPolicy(config, Policy::Baseline);
    config.trace.enabled = true;
    config.trace.buffer_records = 1u << 22;
    ASSERT_EQ(config.uvm.root_chunk_pages, 1u);

    auto workload = WorkloadRegistry::instance().create("BFS-TWC");
    GpuUvmSystem system(config);
    const RunResult r = system.run(*workload, WorkloadScale::Tiny);
    const TraceSink *sink = system.trace();
    ASSERT_NE(sink, nullptr);
    ASSERT_EQ(sink->droppedEvents(), 0u)
        << "ring too small to hold the full cell";
    ASSERT_GT(r.evictions, 0u) << "cell must run under pressure";

    struct Op {
        Cycle when;
        int kind; //!< 0 = commit (ties first), 1 = evict
        PageNum vpn;
    };
    std::vector<Op> ops;
    sink->forEach([&](const TraceRecord &rec) {
        const TraceEventType t = rec.eventType();
        if (t == TraceEventType::Migration)
            ops.push_back({rec.end, 0, rec.arg0});
        else if (t == TraceEventType::Eviction)
            ops.push_back({rec.begin, 1, rec.arg0});
    });
    ASSERT_EQ(ops.size(), r.migrations + r.evictions);
    std::stable_sort(ops.begin(), ops.end(),
                     [](const Op &a, const Op &b) {
                         return a.when != b.when ? a.when < b.when
                                                 : a.kind < b.kind;
                     });

    // Unlimited capacity: victim choice depends only on the LRU
    // state, and capacity decisions are already baked into the
    // recorded stream.
    LegacyGpuMemoryManager legacy(config.uvm, 0);
    std::uint64_t replayed = 0;
    for (const Op &op : ops) {
        if (op.kind == 0) {
            ASSERT_FALSE(legacy.isResident(op.vpn))
                << "replay desync at cycle " << op.when;
            legacy.reserveFrame();
            legacy.commitPage(op.vpn, op.when);
            continue;
        }
        PageNum victim = 0;
        ASSERT_TRUE(legacy.beginEviction(&victim, op.when));
        ASSERT_EQ(victim, op.vpn)
            << "eviction " << replayed << " at cycle " << op.when;
        legacy.completeEviction(victim);
        ++replayed;
    }
    EXPECT_EQ(replayed, r.evictions);
    EXPECT_EQ(legacy.prematureEvictions(), r.premature_evictions);
    EXPECT_EQ(legacy.migrations(), r.migrations);
}

// ------------------------------- fault buffer / prefetcher vs legacy

TEST(FaultBufferDifferential, RandomTrafficMatchesLegacy)
{
    PageMetaTable meta;
    FaultBuffer fb(64, meta);
    LegacyFaultBuffer legacy(64);
    Rng rng(7);
    Cycle now = 0;
    for (int round = 0; round < 200; ++round) {
        const int inserts = 1 + rng.nextBelow(150);
        for (int i = 0; i < inserts; ++i) {
            ++now;
            const PageNum vpn = rng.nextBelow(96);
            fb.insert(vpn, now);
            legacy.insert(vpn, now);
        }
        const auto got = fb.drain();
        const auto want = legacy.drain();
        ASSERT_EQ(got.size(), want.size()) << "round " << round;
        for (std::size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].vpn, want[i].vpn);
            EXPECT_EQ(got[i].first_cycle, want[i].first_cycle);
            EXPECT_EQ(got[i].duplicates, want[i].duplicates);
        }
    }
    EXPECT_EQ(fb.overflows(), legacy.overflows());
    EXPECT_GT(fb.overflows(), 0u);
    EXPECT_EQ(fb.totalFaults(), legacy.totalFaults());
    while (!fb.empty() || !legacy.empty()) {
        const auto got = fb.drain();
        const auto want = legacy.drain();
        ASSERT_EQ(got.size(), want.size());
    }
}

TEST(PrefetcherDifferential, RandomBatchesMatchLegacy)
{
    UvmConfig config;
    std::vector<char> resident(4096, 0);
    auto resident_fn = [&resident](PageNum vpn) {
        return vpn < resident.size() && resident[vpn] != 0;
    };
    auto valid_fn = [](PageNum vpn) { return vpn < 4096; };
    TreePrefetcher pf(config, resident_fn, valid_fn);
    LegacyTreePrefetcher legacy(config, resident_fn, valid_fn);

    Rng rng(13);
    for (int round = 0; round < 100; ++round) {
        for (auto &r : resident)
            r = rng.nextBool(0.3) ? 1 : 0;
        std::vector<PageNum> faulted;
        const int n = 1 + rng.nextBelow(128);
        for (int i = 0; i < n; ++i) {
            const PageNum vpn = rng.nextBelow(4096);
            if (!resident_fn(vpn))
                faulted.push_back(vpn);
        }
        std::sort(faulted.begin(), faulted.end());
        faulted.erase(std::unique(faulted.begin(), faulted.end()),
                      faulted.end());
        EXPECT_EQ(pf.computePrefetches(faulted),
                  legacy.computePrefetches(faulted))
            << "round " << round;
    }
}

TEST(PrefetcherDifferential, SequentialPolicyMatchesLegacy)
{
    UvmConfig config;
    config.sequential_prefetch_pages = 4;
    std::vector<char> resident(512, 0);
    auto resident_fn = [&resident](PageNum vpn) {
        return vpn < resident.size() && resident[vpn] != 0;
    };
    auto valid_fn = [](PageNum vpn) { return vpn < 512; };
    TreePrefetcher pf(config, resident_fn, valid_fn);
    LegacyTreePrefetcher legacy(config, resident_fn, valid_fn);

    Rng rng(29);
    for (int round = 0; round < 50; ++round) {
        for (auto &r : resident)
            r = rng.nextBool(0.4) ? 1 : 0;
        std::vector<PageNum> faulted;
        for (int i = 0; i < 32; ++i) {
            const PageNum vpn = rng.nextBelow(512);
            if (!resident_fn(vpn))
                faulted.push_back(vpn);
        }
        std::sort(faulted.begin(), faulted.end());
        faulted.erase(std::unique(faulted.begin(), faulted.end()),
                      faulted.end());
        EXPECT_EQ(pf.computePrefetches(faulted),
                  legacy.computePrefetches(faulted))
            << "round " << round;
    }
}

#endif // BAUVM_LEGACY_DIFFERENTIAL

} // namespace
} // namespace bauvm
